// Package qtag is the public API of the Q-Tag viewability measurement
// library — a faithful Go reproduction of "Q-Tag: A transparent solution
// to measure ads viewability rate in online advertising campaigns"
// (Callejo, Pastor, Cuevas & Cuevas, CoNEXT 2019).
//
// The library has three faces:
//
//   - The measurement technique itself: a Q-Tag ad tag that infers an ad
//     creative's visibility from the refresh rate of monitoring pixels
//     planted inside its (cross-origin) iframe, evaluates the IAB/MRC
//     viewability standard, and beacons in-view / out-of-view events to a
//     monitoring server. See NewTag and the Tag/Runtime types.
//
//   - The monitoring side a DSP deploys: an idempotent event store with
//     an HTTP collection API and aggregation endpoints. See NewCollector,
//     NewCollectionServer and HTTPSink.
//
//   - The evaluation harness that reproduces every table and figure of
//     the paper on a deterministic browser/DSP simulator: the Figure 2
//     layout sweep (LayoutSweep), the Table 1 certification suite
//     (RunCertification), the Figure 3 / Table 2 production comparison
//     (RunProductionSim, Figure3, Table2) and the §6.1 revenue model
//     (RevenueUplift).
//
// Everything is pure standard library; all simulation is deterministic
// given a seed. See DESIGN.md for the architecture and EXPERIMENTS.md
// for the paper-vs-reproduction numbers.
package qtag

import (
	"qtag/internal/adtag"
	"qtag/internal/analytics"
	"qtag/internal/audit"
	"qtag/internal/beacon"
	"qtag/internal/campaign"
	"qtag/internal/cert"
	"qtag/internal/commercial"
	"qtag/internal/economics"
	"qtag/internal/layouteval"
	"qtag/internal/predict"
	"qtag/internal/qtag"
	"qtag/internal/stress"
	"qtag/internal/viewability"
)

// ---- The measurement technique -------------------------------------------

// TagConfig tunes a Q-Tag instance; its zero value selects the paper's
// defaults (25-pixel X layout, 20 fps visibility threshold, 100 ms
// sampling, rectangle-inference area estimation).
type TagConfig = qtag.Config

// Layout is a monitoring-pixel arrangement (X, dice or +).
type Layout = qtag.Layout

// Pixel layouts compared in the paper's Figure 2.
const (
	LayoutX    = qtag.LayoutX
	LayoutDice = qtag.LayoutDice
	LayoutPlus = qtag.LayoutPlus
)

// Tag is a deployable measurement script (Q-Tag or a baseline).
type Tag = adtag.Tag

// Runtime is the capability surface a tag executes against inside a
// creative iframe: timers, pixel paint observation, beacon transport and
// SOP-guarded geometry.
type Runtime = adtag.Runtime

// Impression identifies the ad impression a tag instance measures.
type Impression = adtag.Impression

// NewTag returns a Q-Tag measurement tag.
func NewTag(cfg TagConfig) Tag { return qtag.New(cfg) }

// NewCommercialTag returns the geometry-API-based baseline verifier the
// paper compares against.
func NewCommercialTag() Tag { return commercial.New(commercial.Config{}) }

// NewRuntime wires a tag runtime to a creative element on a simulated
// page; see the examples/ directory for full setups.
var NewRuntime = adtag.NewRuntime

// ---- The viewability standard --------------------------------------------

// Criteria is an IAB/MRC viewability condition (minimum visible area
// fraction held for a minimum continuous duration).
type Criteria = viewability.Criteria

// Format is the standard's ad-format taxonomy.
type Format = viewability.Format

// Ad formats with distinct standard criteria.
const (
	Display      = viewability.Display
	LargeDisplay = viewability.LargeDisplay
	Video        = viewability.Video
)

// StandardCriteria returns the IAB/MRC criteria for a format: display
// ≥50 %/1 s, large display ≥30 %/1 s, video ≥50 %/2 s.
var StandardCriteria = viewability.StandardCriteria

// ---- The monitoring server ------------------------------------------------

// Event is one beacon message (served / loaded / in-view / out-of-view).
type Event = beacon.Event

// Sink consumes beacon events.
type Sink = beacon.Sink

// Collector is the idempotent in-memory event store with aggregation
// counters.
type Collector = beacon.Store

// CollectionServer is the HTTP collection API over a Collector.
type CollectionServer = beacon.Server

// HTTPSink delivers tag beacons to a CollectionServer over HTTP.
type HTTPSink = beacon.HTTPSink

// NewCollector returns an empty event store.
func NewCollector() *Collector { return beacon.NewStore() }

// NewCollectionServer wraps a collector with the HTTP API
// (POST /v1/events, GET /v1/stats, GET /v1/campaigns/{id}/stats,
// GET /healthz).
func NewCollectionServer(c *Collector) *CollectionServer { return beacon.NewServer(c) }

// ---- Reproduction: Figure 2 (layout validation) ---------------------------

// LayoutSweepConfig parameterises the Figure 2 sweep.
type LayoutSweepConfig = layouteval.Config

// LayoutPoint is one point of a Figure 2 curve.
type LayoutPoint = layouteval.Point

// LayoutSweep computes the theoretical area-estimation error for every
// layout × pixel count × sliding scenario (Figure 2).
var LayoutSweep = layouteval.Sweep

// ---- Reproduction: Table 1 (certification) --------------------------------

// CertificationConfig sizes a certification matrix run.
type CertificationConfig = cert.SuiteConfig

// CertificationReport aggregates a certification run.
type CertificationReport = cert.SuiteReport

// RunCertification executes the 7 × 2 × 6 ABC certification matrix
// (§4.2); with the paper's repetition counts it reproduces the 93.4 %
// accuracy with failures confined to the automation-racy tests 4 and 5.
var RunCertification = cert.RunSuite

// RunRandomPlacements is the §4.3 in-view accuracy analysis: n random
// placements of a double cross-domain iframe checked against exact
// geometry.
var RunRandomPlacements = cert.RunRandomPlacements

// ---- Reproduction: Figure 3 / Table 2 (production comparison) -------------

// SimConfig sizes a production-deployment simulation.
type SimConfig = campaign.Config

// SimResult is a production simulation outcome.
type SimResult = campaign.Result

// RunProductionSim simulates DSP campaigns with Q-Tag (and, on the
// comparison subset, the commercial verifier) deployed on synthetic
// traffic calibrated to the paper's Table 2 environment capabilities.
func RunProductionSim(cfg SimConfig) *SimResult { return campaign.New(cfg).Run() }

// SolutionSummary is one Figure 3 bar (mean ± std across campaigns).
type SolutionSummary = analytics.SolutionSummary

// Figure3 computes measured-rate and viewability-rate summaries per
// solution from a simulation result.
var Figure3 = analytics.Figure3

// Table2Cell is one site-type × OS row of Table 2.
type Table2Cell = analytics.Table2Cell

// Table2 slices measured rates by site type × OS for mobile traffic of
// the comparison subset (the campaigns carrying both tags).
var Table2 = analytics.Table2ForResult

// ---- Reproduction: §6.1 (economics) ----------------------------------------

// EconomicsParams describes a DSP's traffic for the revenue model.
type EconomicsParams = economics.Params

// RevenueUplift evaluates the viewable-impression-pricing revenue model.
var RevenueUplift = economics.Compute

// PaperMidSizeDSP is the §6.1 mid-size scenario (100 M ads/day, $1 CPM).
var PaperMidSizeDSP = economics.PaperMidSize

// PaperLargeDSP is the §6.1 large scenario (1 B ads/day).
var PaperLargeDSP = economics.PaperLargeSize

// ---- Extensions -------------------------------------------------------------

// GenerateJS emits the deployable JavaScript tag for a configuration —
// the artifact a real DSP embeds in creatives. Algorithm identical to
// the Go tag.
var GenerateJS = qtag.GenerateJS

// AuditReport is the outcome of a beacon-stream consistency audit.
type AuditReport = audit.Report

// AuditOptions tunes the audit.
type AuditOptions = audit.Options

// Audit verifies a collector's beacon stream against the protocol and
// the standard's physical timing constraints — the operational form of
// the paper's transparency/auditability claim.
func Audit(c *Collector, opts AuditOptions) *AuditReport { return audit.Run(c, opts) }

// PredictionModel estimates P(viewed) from placement depth and device
// class (the related-work prediction baseline; see internal/predict).
type PredictionModel = predict.Model

// TrainPredictor fits a prediction model on ground-truth-labelled
// impressions from a simulation run with RecordImpressions set.
func TrainPredictor(res *SimResult) *PredictionModel {
	return predict.Train(predict.SamplesFromResult(res), predict.TrainConfig{})
}

// StressResult aggregates a randomized differential stress batch.
type StressResult = stress.BatchResult

// RunStress executes n random adversarial browsing scenarios and
// differentially checks Q-Tag against a tolerance-bracketed oracle. A
// correct build reports zero mismatches.
var RunStress = stress.RunBatch

// Certification walkthrough: drives one ABC viewability-certification
// scenario step by step (§4.2 / Table 1), showing how the simulated
// browser, the automation driver and Q-Tag interact, then runs a small
// slice of the full matrix.
//
// Run with: go run ./examples/certification
package main

import (
	"fmt"

	"qtag/internal/browser"
	"qtag/internal/cert"
	"qtag/internal/simrand"
)

func main() {
	// Step through test 5 ("page is scrolled"): the ad must register an
	// in-view event once the criteria are met, then an out-of-view event
	// when the scroll pushes it out of the viewport.
	fmt.Println("Table 1, test (5):", cert.TestPageScrolled.Description())
	runner := &cert.Runner{Automated: false} // manual execution: no flake possible
	for _, prof := range browser.CertificationProfiles() {
		res := runner.Run(cert.TestPageScrolled, cert.FormatBanner, prof)
		fmt.Printf("  %-22s in-view=%v out-of-view=%v pass=%v\n",
			prof.Name, res.Outcome.InView, res.Outcome.OutOfView, res.Pass)
	}

	// The same test through the automation layer reproduces the paper's
	// Selenium artifact: some runs register no events at all.
	fmt.Println("\nsame test automated (WebDriver race enabled):")
	auto := &cert.Runner{Automated: true, RNG: simrand.New(99)}
	failures := 0
	const reps = 50
	for i := 0; i < reps; i++ {
		res := auto.Run(cert.TestPageScrolled, cert.FormatBanner, browser.CertificationProfiles()[0])
		if !res.Pass {
			failures++
		}
	}
	fmt.Printf("  %d/%d automated runs failed (≈20%% expected — the paper's 6.6%% overall)\n", failures, reps)

	// A reduced matrix run (the full 36k-run suite lives in cmd/qtag-cert).
	fmt.Println("\nreduced certification matrix (7 tests × 2 formats × 6 browsers × 10 reps):")
	rep := cert.RunSuite(cert.SuiteConfig{Seed: 5, AutomatedReps: 10, ManualReps: 3})
	fmt.Print(rep)
}

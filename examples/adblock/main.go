// Adblock & privacy behaviour (§4.3): shows that content blockers stop
// the whole delivery chain (neither the ad nor Q-Tag deploys), that
// Brave's built-in shields behave the same, and that privacy-enhanced
// browsers which merely block third-party cookies leave Q-Tag fully
// functional — it is plain script and needs no cookies.
//
// Run with: go run ./examples/adblock
package main

import (
	"fmt"

	"qtag/internal/browser"
	"qtag/internal/cert"
)

func main() {
	fmt.Println("Adblock Plus-style extension on Chrome:")
	for _, r := range cert.RunAdblockCheck(browser.CertificationProfiles()[1], true, 1) {
		fmt.Printf("  %-14s %d/%d deliveries blocked, %d tags deployed, %d beacons\n",
			r.AdType, r.Blocked, r.Attempts, r.TagsDeployed, r.EventsEmitted)
	}

	fmt.Println("\nBrave (built-in shields):")
	for _, r := range cert.RunAdblockCheck(browser.BraveProfile(), false, 2) {
		fmt.Printf("  %-14s %d/%d deliveries blocked, %d tags deployed, %d beacons\n",
			r.AdType, r.Blocked, r.Attempts, r.TagsDeployed, r.EventsEmitted)
	}

	fmt.Println("\nprivacy-enhanced browsers (third-party cookies blocked by default):")
	for _, prof := range browser.PrivacyProfiles() {
		r := cert.RunPrivacyBrowserCheck(prof)
		fmt.Printf("  %-18s delivered=%v qtag-measured=%v in-view=%v\n",
			r.Profile, r.DeliveredNormally, r.QTagMeasured, r.QTagInView)
	}
	fmt.Println("\nconclusion: blockers suppress Q-Tag together with the ad (no phantom")
	fmt.Println("measurements); cookie blocking alone does not affect it at all.")
}

// Campaign measurement end-to-end over HTTP: this example starts a real
// Q-Tag collection server on a loopback socket, runs a small production
// simulation whose tags mirror every beacon to that server over HTTP,
// and then queries the server's aggregation API for the campaign stats —
// the full pipeline a DSP would operate (§5 of the paper).
//
// Run with: go run ./examples/campaign
package main

import (
	"fmt"
	"net"
	"net/http"

	qtagapi "qtag"
	"qtag/internal/beacon"
)

func main() {
	// 1. The monitoring server (cmd/qtag-server runs the same thing).
	collector := qtagapi.NewCollector()
	server := qtagapi.NewCollectionServer(collector)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	go func() { _ = http.Serve(ln, server) }()
	baseURL := "http://" + ln.Addr().String()
	fmt.Println("collection server listening on", baseURL)

	// 2. A small production run: 8 campaigns, 3 of them instrumented with
	// both Q-Tag and the commercial verifier. Every beacon also travels
	// over the real HTTP socket.
	sink := &qtagapi.HTTPSink{BaseURL: baseURL, Retries: 2}
	res := qtagapi.RunProductionSim(qtagapi.SimConfig{
		Seed:                   7,
		Campaigns:              8,
		ImpressionsPerCampaign: 60,
		BothCampaigns:          3,
		ExtraSink:              sink,
	})

	// 3. Query the server back over HTTP for per-campaign stats.
	fmt.Println("\nper-campaign stats fetched from the HTTP API:")
	for _, c := range res.Campaigns {
		stats, err := sink.FetchStats(c.Spec.ID)
		if err != nil {
			panic(err)
		}
		q := stats.Sources[string(beacon.SourceQTag)]
		line := fmt.Sprintf("  %s  served=%4d  qtag: measured %5.1f%% viewability %5.1f%%",
			c.Spec.ID, stats.Served, q.MeasuredRate*100, q.ViewabilityRate*100)
		if c.Spec.Both {
			comm := stats.Sources[string(beacon.SourceCommercial)]
			line += fmt.Sprintf("  commercial: measured %5.1f%% viewability %5.1f%%",
				comm.MeasuredRate*100, comm.ViewabilityRate*100)
		}
		fmt.Println(line)
	}

	// 4. Global Figure 3 style summary.
	global, err := sink.FetchStats("")
	if err != nil {
		panic(err)
	}
	q := global.Sources[string(beacon.SourceQTag)]
	c := global.Sources[string(beacon.SourceCommercial)]
	fmt.Printf("\nglobal: served=%d\n", global.Served)
	fmt.Printf("  qtag:       measured %5.1f%%  viewability %5.1f%%\n", q.MeasuredRate*100, q.ViewabilityRate*100)
	fmt.Printf("  commercial: measured %5.1f%% (of all served; only %d campaigns carried it)\n",
		c.MeasuredRate*100, 3)
	fmt.Println("\n(the measured-rate gap is the paper's Figure 3(a); see cmd/qtag-sim for the full run)")
}

// JS tag generation and ingestion: emits the deployable JavaScript
// Q-Tag (the artifact a real DSP ships inside creatives), shows the
// embed snippet, and demonstrates that the collection server ingests the
// tag's legacy image-pixel fallback (GET /v1/events?e=...) as well as
// sendBeacon POSTs.
//
// Run with: go run ./examples/jstag
package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"time"

	qtagapi "qtag"
	"qtag/internal/beacon"
	"qtag/internal/geom"
	"qtag/internal/qtag"
)

func main() {
	// 1. A live collection server.
	collector := qtagapi.NewCollector()
	srv := httptest.NewServer(qtagapi.NewCollectionServer(collector))
	defer srv.Close()
	endpoint := srv.URL + "/v1/events"

	// 2. Generate the JavaScript tag for a 300×250 creative with the
	// paper's defaults.
	js := qtag.GenerateJS(qtag.Config{}, endpoint, geom.Size{W: 300, H: 250})
	head := strings.SplitAfterN(js, "})();", 1)[0]
	fmt.Println("generated tag (first lines):")
	for i, line := range strings.Split(head, "\n") {
		if i >= 12 {
			fmt.Println("  …")
			break
		}
		fmt.Println("  " + line)
	}
	fmt.Printf("\ntotal size: %d bytes of self-contained ES5\n", len(js))
	fmt.Println("\nembed as:")
	fmt.Println(`  <script data-impression="imp-123" data-campaign="camp-7"`)
	fmt.Println(`          data-format="display" src="qtag.js"></script>`)

	// 3. Simulate what the tag's beacons look like on the wire — first a
	// sendBeacon POST, then the image-pixel GET fallback.
	post := map[string]string{
		"impression_id": "imp-123", "campaign_id": "camp-7",
		"source": "qtag", "type": "loaded",
		"at": time.Now().UTC().Format(time.RFC3339),
	}
	body, _ := json.Marshal(post)
	resp, err := http.Post(endpoint, "application/json", strings.NewReader(string(body)))
	if err != nil {
		panic(err)
	}
	resp.Body.Close()

	pixelPayload := `{"impression_id":"imp-123","campaign_id":"camp-7","source":"qtag","type":"in-view"}`
	resp, err = http.Get(endpoint + "?e=" + url.QueryEscape(pixelPayload))
	if err != nil {
		panic(err)
	}
	fmt.Printf("\npixel fallback answered with %s (%s)\n",
		resp.Status, resp.Header.Get("Content-Type"))
	resp.Body.Close()

	fmt.Println("\nevents the server holds now:")
	for _, e := range collector.Events() {
		fmt.Printf("  %s\n", e)
	}
	fmt.Printf("\ncampaign camp-7: measured=%v viewed=%v\n",
		collector.Loaded("camp-7", beacon.SourceQTag) > 0,
		collector.InView("camp-7", beacon.SourceQTag) > 0)
}

// Quickstart: measure the viewability of a single ad impression with
// Q-Tag on the simulated browser.
//
// It builds a publisher page holding the paper's canonical delivery
// structure — a creative inside two cross-domain iframes — deploys Q-Tag
// inside the creative, lets the user "look" at the page for a while,
// scrolls the ad away, and prints the beacons the monitoring store
// received.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	qtagapi "qtag"
	"qtag/internal/browser"
	"qtag/internal/dom"
	"qtag/internal/geom"
	"qtag/internal/simclock"
)

func main() {
	// A virtual clock drives everything; nothing sleeps.
	clock := simclock.New()
	b := browser.New(clock, browser.Options{Profile: browser.CertificationProfiles()[1]}) // Chrome 75 / Win10
	defer b.Close()

	// Publisher page: 1280×720 viewport over a 6000px-tall page.
	window := b.OpenWindow(geom.Point{}, geom.Size{W: 1280, H: 720})
	doc := dom.NewDocument("https://publisher.example", geom.Size{W: 1280, H: 6000})
	page := window.ActiveTab().Navigate(doc)

	// The ad: a 300×250 creative inside exchange→DSP cross-domain iframes,
	// 150px below the top of the page (above the fold).
	exchangeFrame := doc.Root().AttachIframe("https://exchange.example",
		geom.Rect{X: 200, Y: 150, W: 300, H: 250})
	dspFrame := exchangeFrame.Root().AttachIframe("https://dsp.example",
		geom.Rect{X: 0, Y: 0, W: 300, H: 250})
	creative := dspFrame.Root().AppendChild("creative", geom.Rect{X: 0, Y: 0, W: 300, H: 250})

	// SOP in action: the creative cannot learn its position in the top
	// viewport — the reason Q-Tag exists.
	if _, err := creative.BoundingRectInTop(); err != nil {
		fmt.Println("geometry API from the creative iframe:", err)
	}

	// Deploy Q-Tag with the paper's defaults (25-pixel X layout, 20fps
	// threshold) and an in-process collector as the monitoring server.
	collector := qtagapi.NewCollector()
	rt := qtagapi.NewRuntime(page, creative, collector, qtagapi.Impression{
		ID: "imp-0001", CampaignID: "quickstart", Format: qtagapi.Display,
	})
	if err := qtagapi.NewTag(qtagapi.TagConfig{}).Deploy(rt); err != nil {
		panic(err)
	}

	// The user looks at the page for 2 seconds (the ad is in view, so the
	// ≥50%-for-≥1s display criteria are met)...
	clock.Advance(2 * time.Second)
	// ...then scrolls deep into the article, pushing the ad out of view.
	page.ScrollTo(geom.Point{Y: 3000})
	clock.Advance(1 * time.Second)

	fmt.Println("\nbeacons received by the monitoring store:")
	for _, e := range collector.Events() {
		fmt.Printf("  %-12s at %6v\n", e.Type, e.At.Sub(simclock.Epoch))
	}
	fmt.Printf("\nimpression measured: %v, viewed: %v\n",
		collector.Loaded("quickstart", "qtag") > 0,
		collector.InView("quickstart", "qtag") > 0)
}

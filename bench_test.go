// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index). Each benchmark
// both measures the cost of the experiment and reports the reproduced
// headline numbers as custom metrics, so `go test -bench=. -benchmem`
// doubles as a miniature reproduction report:
//
//	Figure 2  → BenchmarkFigure2LayoutError      (layout error curves)
//	Table 1   → BenchmarkTable1Certification     (certification accuracy)
//	§4.3      → BenchmarkRandomPlacement         (in-view decision accuracy)
//	Figure 3  → BenchmarkFigure3MeasuredRate,
//	            BenchmarkFigure3ViewabilityRate  (production comparison)
//	Table 2   → BenchmarkTable2SiteOS            (site-type × OS slices)
//	§6.1      → BenchmarkEconomics               (revenue model)
//	Ablations → BenchmarkAblationFPSThreshold, BenchmarkAblationPixelCount,
//	            BenchmarkAblationAreaEstimator
//
// Full paper-scale runs (500 certification reps, larger campaign sizes)
// live in cmd/qtag-cert and cmd/qtag-sim.
package qtag_test

import (
	"fmt"
	"testing"

	qtagapi "qtag"
	"qtag/internal/beacon"
	"qtag/internal/browser"
	"qtag/internal/campaign"
	"qtag/internal/cert"
	"qtag/internal/layouteval"
	"qtag/internal/qtag"
)

// BenchmarkFigure2LayoutError regenerates the Figure 2 grid: three
// layouts × the 9–60 pixel sweep × three sliding scenarios.
func BenchmarkFigure2LayoutError(b *testing.B) {
	var points []layouteval.Point
	for i := 0; i < b.N; i++ {
		points = qtagapi.LayoutSweep(qtagapi.LayoutSweepConfig{Steps: 200}, nil)
	}
	for _, l := range qtag.Layouts() {
		xs, ys := layouteval.Curve(points, l)
		for i, n := range xs {
			if n == 25 {
				b.ReportMetric(ys[i], fmt.Sprintf("err25px-%v", l))
			}
		}
	}
}

// BenchmarkTable1Certification runs the certification matrix (7 tests ×
// 2 formats × 6 browser–OS pairs) at a reduced repetition count and
// reports the reproduced accuracy (paper: 0.934).
func BenchmarkTable1Certification(b *testing.B) {
	var rep *qtagapi.CertificationReport
	for i := 0; i < b.N; i++ {
		rep = qtagapi.RunCertification(qtagapi.CertificationConfig{
			Seed: uint64(i) + 1, AutomatedReps: 10, ManualReps: 2,
		})
	}
	b.ReportMetric(rep.Accuracy(), "accuracy")
	b.ReportMetric(float64(rep.FailuresOutsideRacyTests()), "failures-outside-4/5")
}

// BenchmarkRandomPlacement runs the §4.3 random-placement accuracy check
// (paper: 10,000/10,000 correct).
func BenchmarkRandomPlacement(b *testing.B) {
	var res cert.PlacementResult
	for i := 0; i < b.N; i++ {
		res = qtagapi.RunRandomPlacements(250, uint64(i)+1)
	}
	b.ReportMetric(res.Accuracy(), "accuracy")
}

func runFigure3Sim(b *testing.B) *campaign.Result {
	b.Helper()
	var res *campaign.Result
	for i := 0; i < b.N; i++ {
		res = qtagapi.RunProductionSim(qtagapi.SimConfig{
			Seed: uint64(i) + 1, Campaigns: 20, ImpressionsPerCampaign: 60, BothCampaigns: 20,
		})
	}
	return res
}

// BenchmarkFigure3MeasuredRate reproduces Figure 3(a): measured rate per
// solution (paper: Q-Tag 93 %, commercial 74 %).
func BenchmarkFigure3MeasuredRate(b *testing.B) {
	res := runFigure3Sim(b)
	fig := qtagapi.Figure3(res)
	b.ReportMetric(fig[beacon.SourceQTag].MeanMeasured, "qtag-measured")
	b.ReportMetric(fig[beacon.SourceCommercial].MeanMeasured, "commercial-measured")
}

// BenchmarkFigure3ViewabilityRate reproduces Figure 3(b): viewability
// rate per solution (paper: ≈50 % both).
func BenchmarkFigure3ViewabilityRate(b *testing.B) {
	res := runFigure3Sim(b)
	fig := qtagapi.Figure3(res)
	b.ReportMetric(fig[beacon.SourceQTag].MeanViewability, "qtag-viewability")
	b.ReportMetric(fig[beacon.SourceCommercial].MeanViewability, "commercial-viewability")
}

// BenchmarkTable2SiteOS reproduces Table 2: measured rate sliced by site
// type × OS (paper: Q-Tag 90.6/97.0/94.4/94.6 vs commercial
// 53.4/83.8/86.7/91.1).
func BenchmarkTable2SiteOS(b *testing.B) {
	res := runFigure3Sim(b)
	for _, cell := range qtagapi.Table2(res) {
		key := cell.SiteType + "-" + string(cell.OS[0])
		b.ReportMetric(cell.QTag, "qtag-"+key)
		b.ReportMetric(cell.Commercial, "comm-"+key)
	}
}

// BenchmarkEconomics evaluates the §6.1 revenue model (paper: $9.5k/day,
// ≈$3.5M/year mid-size; ×10 large).
func BenchmarkEconomics(b *testing.B) {
	var daily float64
	for i := 0; i < b.N; i++ {
		daily = qtagapi.RevenueUplift(qtagapi.PaperMidSizeDSP()).DailyUSD
	}
	b.ReportMetric(daily, "daily-usd")
	b.ReportMetric(qtagapi.RevenueUplift(qtagapi.PaperLargeDSP()).AnnualUSD/1e6, "large-annual-musd")
}

// BenchmarkAblationFPSThreshold replays one certification scenario at the
// paper's alternative thresholds (20/30/40/50 fps — §3 reports no major
// difference).
func BenchmarkAblationFPSThreshold(b *testing.B) {
	for _, thr := range []float64{20, 30, 40, 50} {
		thr := thr
		b.Run(fmt.Sprintf("fps=%.0f", thr), func(b *testing.B) {
			prof := browser.CertificationProfiles()[1]
			passes := 0
			for i := 0; i < b.N; i++ {
				runner := &cert.Runner{Automated: false, TagConfig: qtag.Config{FPSThreshold: thr}}
				res := runner.Run(cert.TestPageScrolled, cert.FormatBanner, prof)
				if res.Pass {
					passes++
				}
			}
			b.ReportMetric(float64(passes)/float64(b.N), "pass-rate")
		})
	}
}

// BenchmarkAblationPixelCount measures the accuracy/cost trade-off behind
// the paper's 25-pixel recommendation.
func BenchmarkAblationPixelCount(b *testing.B) {
	for _, n := range []int{9, 17, 25, 41, 60} {
		n := n
		b.Run(fmt.Sprintf("pixels=%d", n), func(b *testing.B) {
			var err float64
			cfg := layouteval.Config{Steps: 200}
			for i := 0; i < b.N; i++ {
				err = (layouteval.MeanError(cfg, qtag.LayoutX, n, layouteval.Vertical) +
					layouteval.MeanError(cfg, qtag.LayoutX, n, layouteval.Horizontal) +
					layouteval.MeanError(cfg, qtag.LayoutX, n, layouteval.Diagonal)) / 3
			}
			b.ReportMetric(err, "mean-error")
		})
	}
}

// BenchmarkAblationAreaEstimator compares the production rectangle-
// inference estimator against the Voronoi and uniform ablations
// (DESIGN.md A3).
func BenchmarkAblationAreaEstimator(b *testing.B) {
	for _, m := range []qtag.Method{qtag.MethodRectInference, qtag.MethodVoronoi, qtag.MethodUniform} {
		m := m
		b.Run(m.String(), func(b *testing.B) {
			var err float64
			cfg := layouteval.Config{Steps: 200, Method: m}
			for i := 0; i < b.N; i++ {
				err = (layouteval.MeanError(cfg, qtag.LayoutX, 25, layouteval.Vertical) +
					layouteval.MeanError(cfg, qtag.LayoutX, 25, layouteval.Horizontal) +
					layouteval.MeanError(cfg, qtag.LayoutX, 25, layouteval.Diagonal)) / 3
			}
			b.ReportMetric(err, "mean-error")
		})
	}
}

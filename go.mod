module qtag

go 1.22

package qtag_test

import (
	"fmt"
	"time"

	qtagapi "qtag"
	"qtag/internal/browser"
	"qtag/internal/dom"
	"qtag/internal/geom"
	"qtag/internal/simclock"
)

// Example_measureOneImpression shows the core flow: deploy Q-Tag inside a
// cross-origin creative iframe on the simulated browser and read the
// verdict off the collector.
func Example_measureOneImpression() {
	clock := simclock.New()
	b := browser.New(clock, browser.Options{Profile: browser.CertificationProfiles()[1]})
	defer b.Close()
	w := b.OpenWindow(geom.Point{}, geom.Size{W: 1280, H: 720})
	doc := dom.NewDocument("https://publisher.example", geom.Size{W: 1280, H: 4000})
	page := w.ActiveTab().Navigate(doc)
	frame := doc.Root().AttachIframe("https://dsp.example", geom.Rect{X: 100, Y: 120, W: 300, H: 250})
	creative := frame.Root().AppendChild("creative", geom.Rect{W: 300, H: 250})

	collector := qtagapi.NewCollector()
	rt := qtagapi.NewRuntime(page, creative, collector, qtagapi.Impression{
		ID: "imp-1", CampaignID: "launch", Format: qtagapi.Display,
	})
	if err := qtagapi.NewTag(qtagapi.TagConfig{}).Deploy(rt); err != nil {
		panic(err)
	}
	clock.Advance(1500 * time.Millisecond) // the user looks at the page

	fmt.Println("measured:", collector.Loaded("launch", "qtag") == 1)
	fmt.Println("viewed:  ", collector.InView("launch", "qtag") == 1)
	// Output:
	// measured: true
	// viewed:   true
}

// Example_revenueModel reproduces the paper's §6.1 headline arithmetic.
func Example_revenueModel() {
	uplift := qtagapi.RevenueUplift(qtagapi.PaperMidSizeDSP())
	fmt.Printf("mid-size DSP: $%.1fk/day, $%.2fM/year\n", uplift.DailyUSD/1e3, uplift.AnnualUSD/1e6)
	// Output:
	// mid-size DSP: $9.5k/day, $3.47M/year
}

// Example_generateJS emits the first line of the deployable JavaScript
// tag.
func Example_generateJS() {
	js := qtagapi.GenerateJS(qtagapi.TagConfig{}, "https://monitor.example/v1/events",
		geom.Size{W: 300, H: 250})
	fmt.Println(js[:3])
	// Output:
	// /*!
}

// Command qtag-stress runs the randomized lab stress harness: random
// adversarial browsing scenarios with a differential check of Q-Tag's
// verdict against a tolerance-bracketed ground-truth oracle.
//
// Usage:
//
//	qtag-stress [-n 1000] [-seed 2019] [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	"qtag/internal/stress"
)

func main() {
	n := flag.Int("n", 1000, "number of random scenarios")
	seed := flag.Uint64("seed", 2019, "scenario seed")
	verbose := flag.Bool("v", false, "print mismatching scenarios")
	flag.Parse()

	batch := stress.RunBatch(*n, *seed)
	fmt.Println(batch)
	if *verbose {
		for _, m := range batch.Mismatches {
			fmt.Printf("  tag=%v strict=%v nominal=%v lenient=%v adY=%.0f video=%v steps=%d\n",
				m.TagInView, m.OracleStrict, m.OracleNom, m.OracleLen,
				m.Scenario.AdY, m.Scenario.Video, len(m.Scenario.Steps))
		}
	}
	if batch.Mismatch > 0 {
		fmt.Fprintln(os.Stderr, "FAIL: the tag contradicted a robust ground truth")
		os.Exit(1)
	}
	fmt.Println("PASS: no mismatches on robust scenarios")
}

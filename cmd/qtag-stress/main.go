// Command qtag-stress runs the Q-Tag stress harnesses.
//
// Default mode — randomized lab scenarios with a differential check of
// the tag's verdict against a tolerance-bracketed ground-truth oracle:
//
//	qtag-stress [-n 1000] [-seed 2019] [-v]
//
// Load mode — a concurrent load generator for the ingest server. With
// -url it drives an already-running server; without, it boots the full
// in-process ingest stack (sharded store + WAL) itself:
//
//	qtag-stress -load [-workers 8] [-events 20000] [-batch 1]
//	            [-url http://host:8080] [-shards 16] [-wal-dir DIR]
//	            [-fsync always] [-group-commit] [-sync-durability]
//	            [-binary]
//
// Bench mode — the PR acceptance benchmark: fsync=always synchronous
// durability at {1 shard, no group commit} vs {4, 16 shards with group
// commit}, plus the forwarding rung (two-node cluster), the tracing
// rungs (distributed tracing at 1% and 100% head sampling), the
// overload rung (admission-controlled stack at 10× concurrency) and
// the binary-codec rungs (compact wire format at 1 and 16 shards,
// with codec microbench allocation counts), written to a JSON report:
//
//	qtag-stress -load -bench-out BENCH_PR10.json [-workers 8] [-events 5000]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/debug"
	"time"

	"qtag/internal/stress"
	"qtag/internal/wal"
)

func main() {
	n := flag.Int("n", 1000, "number of random scenarios")
	seed := flag.Uint64("seed", 2019, "scenario seed")
	verbose := flag.Bool("v", false, "print mismatching scenarios")

	load := flag.Bool("load", false, "run the ingest load generator instead of lab scenarios")
	url := flag.String("url", "", "load: target base URL (default: boot an in-process server)")
	workers := flag.Int("workers", 8, "load: concurrent client goroutines")
	events := flag.Int("events", 20000, "load: total events to send")
	batch := flag.Int("batch", 1, "load: events per POST request")
	shards := flag.Int("shards", 16, "load: store shard count for the in-process server")
	walDir := flag.String("wal-dir", "", "load: WAL directory for the in-process server (empty: memory only)")
	fsyncMode := flag.String("fsync", "always", "load: WAL fsync policy (always|batch|interval)")
	groupCommit := flag.Bool("group-commit", true, "load: coalesce WAL fsyncs across concurrent requests")
	gcMaxBatch := flag.Int("group-commit-max-batch", 256, "load: max records per group commit")
	gcMaxWait := flag.Duration("group-commit-max-wait", 0, "load: how long to hold a group open to grow it")
	syncDur := flag.Bool("sync-durability", true, "load: ack requests only after fsync (WAL on the request path)")
	binary := flag.Bool("binary", false, "load: post the compact binary beacon codec instead of JSON")
	benchOut := flag.String("bench-out", "", "load: run the shard-scaling benchmark and write the JSON report here")
	benchReps := flag.Int("bench-reps", 3, "load: repetitions per bench configuration (best run is reported)")
	flag.Parse()

	if *load {
		if *benchOut != "" {
			if err := runBench(*benchOut, *workers, *events, *batch, *gcMaxBatch, *gcMaxWait, *benchReps); err != nil {
				fmt.Fprintln(os.Stderr, "FAIL:", err)
				os.Exit(1)
			}
			return
		}
		if err := runLoad(*url, *workers, *events, *batch, *shards, *walDir, *fsyncMode,
			*groupCommit, *gcMaxBatch, *gcMaxWait, *syncDur, *binary); err != nil {
			fmt.Fprintln(os.Stderr, "FAIL:", err)
			os.Exit(1)
		}
		return
	}

	b := stress.RunBatch(*n, *seed)
	fmt.Println(b)
	if *verbose {
		for _, m := range b.Mismatches {
			fmt.Printf("  tag=%v strict=%v nominal=%v lenient=%v adY=%.0f video=%v steps=%d\n",
				m.TagInView, m.OracleStrict, m.OracleNom, m.OracleLen,
				m.Scenario.AdY, m.Scenario.Video, len(m.Scenario.Steps))
		}
	}
	if b.Mismatch > 0 {
		fmt.Fprintln(os.Stderr, "FAIL: the tag contradicted a robust ground truth")
		os.Exit(1)
	}
	fmt.Println("PASS: no mismatches on robust scenarios")
}

func runLoad(url string, workers, events, batchSize, shards int, walDir, fsyncMode string,
	groupCommit bool, gcMaxBatch int, gcMaxWait time.Duration, syncDur, binary bool) error {
	target := url
	if target == "" {
		policy, err := wal.ParseFsyncPolicy(fsyncMode)
		if err != nil {
			return err
		}
		srv, err := stress.StartIngestServer(stress.IngestServerConfig{
			Shards:              shards,
			WALDir:              walDir,
			Fsync:               policy,
			GroupCommit:         groupCommit,
			GroupCommitMaxBatch: gcMaxBatch,
			GroupCommitMaxWait:  gcMaxWait,
			SyncDurability:      syncDur,
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		target = srv.URL
		fmt.Printf("in-process server at %s (shards=%d wal=%q fsync=%s group-commit=%v sync-durability=%v)\n",
			target, shards, walDir, fsyncMode, groupCommit, syncDur)
	}
	rep, err := stress.RunLoad(target, stress.LoadOptions{
		Workers: workers, Events: events, BatchSize: batchSize, Seed: 2019, Binary: binary,
	})
	fmt.Println(rep)
	if err != nil {
		return err
	}
	if rep.Errors > 0 {
		return fmt.Errorf("%d requests errored", rep.Errors)
	}
	return nil
}

// runBench runs the shard-scaling ladder (stress.RunBenchLadder) and
// writes the JSON report — the PR acceptance measurement.
func runBench(outPath string, workers, events, batchSize, gcMaxBatch int, gcMaxWait time.Duration, reps int) error {
	// The harness and server share this process (and often one core); a
	// default-tuned GC would tax every configuration's measured run.
	// Applied once, before any case, so all rows pay the same rules.
	debug.SetGCPercent(400)
	rep, err := stress.RunBenchLadder(stress.BenchOptions{
		Workers:             workers,
		Events:              events,
		BatchSize:           batchSize,
		Reps:                reps,
		GroupCommitMaxBatch: gcMaxBatch,
		GroupCommitMaxWait:  gcMaxWait,
		MinSpeedup16:        3,
		MinBinarySpeedup:    3,
		Out:                 os.Stdout,
	})
	if len(rep.Entries) == stress.LadderRungs { // a complete ladder is worth recording even if the floor failed
		if werr := rep.WriteJSON(outPath); werr != nil && err == nil {
			err = werr
		}
		fmt.Printf("report: %s\n", outPath)
	}
	return err
}

// Command qtag-cert replicates the ABC/JICWEBS certification suite
// (§4.2, Table 1) and the §4.3 extra analyses, printing the accuracy
// report. With the default repetition counts (500 automated / 10 manual)
// it executes the paper's full 36 120-run matrix.
//
// Usage:
//
//	qtag-cert [-reps 500] [-manual-reps 10] [-seed 2019]
//	          [-placements 10000] [-skip-extras]
package main

import (
	"flag"
	"fmt"

	"qtag/internal/browser"
	"qtag/internal/cert"
	"qtag/internal/report"
)

func main() {
	reps := flag.Int("reps", 500, "automated repetitions per scenario (paper: 500)")
	manualReps := flag.Int("manual-reps", 10, "manual repetitions for test 6 (paper: 10)")
	seed := flag.Uint64("seed", 2019, "seed for the automation-race draws")
	placements := flag.Int("placements", 10000, "random placements for the §4.3 accuracy check")
	skipExtras := flag.Bool("skip-extras", false, "run only the Table 1 matrix")
	cells := flag.Bool("cells", false, "print the per-cell matrix and failure analysis")
	flag.Parse()

	fmt.Printf("certification matrix: 7 tests × 2 formats × 6 browser–OS, %d/%d reps (seed %d)\n\n",
		*reps, *manualReps, *seed)
	rep := cert.RunSuite(cert.SuiteConfig{
		Seed:          *seed,
		AutomatedReps: *reps,
		ManualReps:    *manualReps,
	})

	rows := make([][]string, 0, 7)
	for _, t := range cert.AllTests() {
		r := rep.PerTest[t]
		mode := "automated"
		if t.Manual() {
			mode = "manual"
		}
		rows = append(rows, []string{
			fmt.Sprintf("(%d)", int(t)),
			t.Description(),
			mode,
			fmt.Sprintf("%d/%d", r.Hits, r.Total),
			report.Percent(r.Value()),
		})
	}
	fmt.Print(report.Table([]string{"Test", "Description", "Mode", "Correct", "Rate"}, rows))
	fmt.Printf("\noverall accuracy: %s over %d runs (paper: 93.4%% over 36k)\n",
		report.Percent(rep.Accuracy()), rep.Total.Total)
	fmt.Printf("failures outside tests 4/5: %d (paper: 0 — all failures are automation races)\n",
		rep.FailuresOutsideRacyTests())
	fmt.Printf("automation-race suppressed runs: %d\n", rep.FlakedRuns)

	if *cells {
		fmt.Println("\nper-cell matrix (correct/runs):")
		fmt.Print(rep.CellTable())
		fmt.Println()
		fmt.Print(rep.FailureAnalysis())
	}

	if *skipExtras {
		return
	}

	fmt.Println("\n§4.3 extra analyses")
	pl := cert.RunRandomPlacements(*placements, *seed)
	fmt.Printf("  in-view accuracy: %s (paper: 10000/10000)\n", pl)

	for _, prof := range []browser.Profile{
		browser.AndroidWebViewProfile(true),
		browser.IOSWebViewProfile(false),
	} {
		for _, r := range cert.RunMobileInApp(prof) {
			fmt.Printf("  mobile in-app %s %v: measured=%v in-view=%v\n",
				r.Profile, r.AdSize, r.Measured, r.InView)
		}
	}

	for _, r := range cert.RunAdblockCheck(browser.CertificationProfiles()[1], true, *seed) {
		fmt.Printf("  adblock %s: %d/%d blocked, %d tag deployments, %d events\n",
			r.AdType, r.Blocked, r.Attempts, r.TagsDeployed, r.EventsEmitted)
	}
	for _, r := range cert.RunAdblockCheck(browser.BraveProfile(), false, *seed+1) {
		fmt.Printf("  brave   %s: %d/%d blocked, %d tag deployments, %d events\n",
			r.AdType, r.Blocked, r.Attempts, r.TagsDeployed, r.EventsEmitted)
	}
	for _, prof := range browser.PrivacyProfiles() {
		r := cert.RunPrivacyBrowserCheck(prof)
		fmt.Printf("  privacy %s: cookies-blocked=%v qtag-measured=%v in-view=%v\n",
			r.Profile, r.CookiesBlocked, r.QTagMeasured, r.QTagInView)
	}
}

// Command qtag-econ evaluates the §6.1 revenue model: the value of a
// higher measured rate under viewable-impression pricing.
//
// Usage:
//
//	qtag-econ [-ads 100000000] [-cpm 1.0] [-qtag 0.93] [-commercial 0.74]
//	          [-viewability 0.50]
package main

import (
	"flag"
	"fmt"

	"qtag/internal/economics"
)

func main() {
	ads := flag.Float64("ads", 100e6, "ads served per day")
	cpm := flag.Float64("cpm", 1.0, "average CPM in USD")
	qtagRate := flag.Float64("qtag", 0.93, "Q-Tag measured rate")
	commRate := flag.Float64("commercial", 0.74, "commercial solution measured rate")
	view := flag.Float64("viewability", 0.50, "viewability rate of measured ads")
	flag.Parse()

	p := economics.Params{
		AdsPerDay:              *ads,
		CPM:                    *cpm,
		MeasuredRateQTag:       *qtagRate,
		MeasuredRateCommercial: *commRate,
		ViewabilityRate:        *view,
	}
	u := economics.Compute(p)
	fmt.Printf("DSP serving %.0fM ads/day at $%.2f CPM\n", *ads/1e6, *cpm)
	fmt.Printf("measured rate: Q-Tag %.1f%% vs commercial %.1f%% (+%.1f pp)\n",
		*qtagRate*100, *commRate*100, (*qtagRate-*commRate)*100)
	fmt.Printf("viewability rate: %.1f%%\n\n", *view*100)
	fmt.Printf("uplift: %s\n", u)

	fmt.Println("\npaper reference points:")
	fmt.Printf("  mid-size (100M/day): %s\n", economics.Compute(economics.PaperMidSize()))
	fmt.Printf("  large    (1B/day):   %s\n", economics.Compute(economics.PaperLargeSize()))
}

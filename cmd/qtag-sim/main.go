// Command qtag-sim runs the production-deployment simulation (§5–6) and
// prints the paper's Figure 3 comparison, Table 2 slices and §6.1
// economics computed from the *measured* rates of the run.
//
// Usage:
//
//	qtag-sim [-campaigns 99] [-impressions 120] [-both 4] [-both-factor 3.9]
//	         [-seed 2019] [-server http://host:8640] [-breakdown]
//	         [-fault-drop 0.1] [-fault-err 0.05]
//	         [-queue] [-queue-cap 4096] [-breaker]
//	         [-fault-http-drop 0.1] [-fault-http-5xx 0.1] [-fault-http-latency 5ms]
//	         [-metrics] [-trace] [-pprof :6060] [-log-level info]
//
// With -server, every beacon of the simulation is additionally delivered
// to a live qtag-server over HTTP; -queue buffers that delivery through a
// store-and-forward QueueSink and -breaker adds a circuit breaker, so an
// unreachable collector degrades the mirror instead of the run.
//
// -fault-drop / -fault-err inject deterministic beacon loss on the tag →
// collector path (internal/faults): the same seed reproduces the same
// measured-rate / not-measured counts run after run, which is how the
// paper's "not measured" population is reproduced as a function of
// injected loss. -fault-http-* degrade the HTTP mirror path instead.
//
// -metrics dumps the run's metrics registry (campaign totals plus, with
// -server, the mirror sink/queue/breaker series) in Prometheus text
// format at the end of the run — the counts reconcile with a scrape of
// the collector's /metrics. -trace records a per-impression lifecycle
// trace and prints its deterministic summary. -pprof serves
// net/http/pprof on a separate listener for profiling long runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"runtime"
	"time"

	"qtag/internal/analytics"
	"qtag/internal/beacon"
	"qtag/internal/campaign"
	"qtag/internal/economics"
	"qtag/internal/faults"
	"qtag/internal/obs"
	"qtag/internal/report"
	"qtag/internal/simrand"

	_ "net/http/pprof" // registers /debug/pprof on the -pprof listener's DefaultServeMux
)

func main() {
	campaigns := flag.Int("campaigns", 99, "number of campaigns (paper: 99)")
	impressions := flag.Int("impressions", 120, "mean impressions per campaign")
	both := flag.Int("both", 4, "campaigns instrumented with both tags (paper: 4)")
	bothFactor := flag.Float64("both-factor", 3.9, "size multiplier for both-tag campaigns")
	seed := flag.Uint64("seed", 2019, "simulation seed")
	serverURL := flag.String("server", "", "optional collection-server URL to mirror beacons to")
	binaryBeacons := flag.Bool("binary-beacons", false, "mirror beacons with the compact binary codec (falls back to JSON against pre-binary servers)")
	breakdown := flag.Bool("breakdown", false, "print the per-campaign table")
	parallel := flag.Int("parallel", runtime.NumCPU(), "campaigns simulated concurrently")
	faultDrop := flag.Float64("fault-drop", 0, "probability a tag beacon is silently lost in transit")
	faultErr := flag.Float64("fault-err", 0, "probability a tag beacon submission fails with an error")
	useQueue := flag.Bool("queue", false, "buffer the -server mirror through a store-and-forward queue")
	queueCap := flag.Int("queue-cap", 4096, "mirror queue capacity (events)")
	useBreaker := flag.Bool("breaker", false, "wrap the -server mirror in a circuit breaker")
	breakerThreshold := flag.Int("breaker-threshold", beacon.DefaultBreakerThreshold, "consecutive failures before the mirror breaker opens")
	breakerCooldown := flag.Duration("breaker-cooldown", 5*time.Second, "mirror breaker cool-down")
	httpDrop := flag.Float64("fault-http-drop", 0, "probability a mirror HTTP request is dropped on the wire")
	http5xx := flag.Float64("fault-http-5xx", 0, "probability a mirror HTTP request is answered with an injected 503")
	httpLatency := flag.Duration("fault-http-latency", 0, "max injected latency per mirror HTTP request")
	metricsDump := flag.Bool("metrics", false, "print the run's metrics in Prometheus text format at the end")
	traceRun := flag.Bool("trace", false, "record a per-impression lifecycle trace and print its summary")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. :6060; empty = off)")
	logLevel := flag.String("log-level", "info", "log level (debug, info, warn, error)")
	flag.Parse()

	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
		slog.Error("bad -log-level", "value", *logLevel, "err", err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))
	slog.SetDefault(logger)

	if *pprofAddr != "" {
		go func() {
			// The blank net/http/pprof import registered its handlers on
			// http.DefaultServeMux; serve them on a side listener so
			// profiling never mixes with the report on stdout.
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				logger.Warn("pprof listener", "err", err)
			}
		}()
	}

	cfg := campaign.Config{
		Seed:                   *seed,
		Campaigns:              *campaigns,
		ImpressionsPerCampaign: *impressions,
		BothCampaigns:          *both,
		BothImpressionsFactor:  *bothFactor,
		Parallelism:            *parallel,
		TagFaults:              faults.Profile{Drop: *faultDrop, Error: *faultErr},
		TraceLifecycle:         *traceRun,
	}

	reg := obs.NewRegistry()
	var queue *beacon.QueueSink
	var breaker *beacon.CircuitBreaker
	var httpFaults *faults.RoundTripper
	var httpSink *beacon.HTTPSink
	if *serverURL != "" {
		httpSink = &beacon.HTTPSink{BaseURL: *serverURL, Retries: 2, Binary: *binaryBeacons}
		httpSink.RegisterMetrics(reg)
		wireFaults := faults.Profile{Drop: *httpDrop, Error: *http5xx, Latency: *httpLatency}
		if wireFaults.Enabled() {
			httpFaults = faults.NewRoundTripper(nil, simrand.New(*seed).Fork("http-faults"), wireFaults)
			httpSink.Client = &http.Client{Transport: httpFaults}
			logger.Info("mirror wire faults", "profile", wireFaults.String())
		}
		var mirror beacon.Sink = httpSink
		if *useBreaker {
			breaker = beacon.NewCircuitBreaker(mirror, *breakerThreshold, *breakerCooldown)
			breaker.RegisterMetrics(reg)
			mirror = breaker
		}
		if *useQueue {
			queue = beacon.NewQueueSink(mirror, beacon.QueueOptions{Capacity: *queueCap})
			queue.RegisterMetrics(reg)
			mirror = queue
		}
		cfg.ExtraSink = mirror
		logger.Info("mirroring beacons", "server", *serverURL)
	}

	res := campaign.New(cfg).Run()

	if queue != nil {
		// Drain the store-and-forward buffer before reporting.
		drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if err := queue.Close(drainCtx); err != nil {
			logger.Warn("mirror drain", "err", err)
		}
		cancel()
	}

	var served int
	for _, c := range res.Campaigns {
		served += c.Served
	}
	fmt.Printf("simulated %d campaigns, %d impressions (seed %d)\n\n", len(res.Campaigns), served, *seed)

	if cfg.TagFaults.Enabled() {
		var drops, errs, loaded int
		for _, c := range res.Campaigns {
			drops += c.FaultDrops
			errs += c.FaultErrors
			loaded += c.QTagLoaded
		}
		notMeasured := served - loaded
		fmt.Printf("fault injection (%s): beacons dropped=%d errored=%d\n", cfg.TagFaults, drops, errs)
		fmt.Printf("  q-tag not measured: %d of %d served (%.1f%%)\n\n", notMeasured, served,
			100*float64(notMeasured)/float64(max(served, 1)))
	}

	fig := analytics.Figure3(res)
	q := fig[beacon.SourceQTag]
	c := fig[beacon.SourceCommercial]

	fmt.Println("Figure 3(a) — measured rate (mean ± std across campaigns)")
	fmt.Println("  " + report.Bar("Q-Tag", q.MeanMeasured, 1, 40) + fmt.Sprintf(" ±%.1f", q.StdMeasured*100))
	fmt.Println("  " + report.Bar("Commercial", c.MeanMeasured, 1, 40) + fmt.Sprintf(" ±%.1f", c.StdMeasured*100))
	fmt.Println()
	fmt.Println("Figure 3(b) — viewability rate (mean ± std across campaigns)")
	fmt.Println("  " + report.Bar("Q-Tag", q.MeanViewability, 1, 40) + fmt.Sprintf(" ±%.1f", q.StdViewability*100))
	fmt.Println("  " + report.Bar("Commercial", c.MeanViewability, 1, 40) + fmt.Sprintf(" ±%.1f", c.StdViewability*100))
	fmt.Println()

	fmt.Println("Table 2 — measured rate by site type and OS (mobile impressions, both-tag campaigns)")
	rows := make([][]string, 0, 4)
	for _, cell := range analytics.Table2ForResult(res) {
		rows = append(rows, []string{
			cell.SiteType, cell.OS,
			report.Percent(cell.QTag), report.Percent(cell.Commercial),
			fmt.Sprint(cell.Served),
		})
	}
	fmt.Print(report.Table([]string{"Site type", "OS", "Q-Tag", "Commercial", "n"}, rows))
	fmt.Println()

	fmt.Println("§6.1 — economics at the measured rates of this run")
	params := economics.PaperMidSize()
	params.MeasuredRateQTag = q.MeanMeasured
	params.MeasuredRateCommercial = c.MeanMeasured
	params.ViewabilityRate = q.MeanViewability
	fmt.Printf("  mid-size DSP (100M ads/day): %s\n", economics.Compute(params))
	params.AdsPerDay = 1e9
	fmt.Printf("  large DSP    (1B ads/day):  %s\n", economics.Compute(params))

	if *breakdown {
		fmt.Println("\nPer-campaign breakdown")
		rows = rows[:0]
		for _, r := range analytics.Breakdown(res) {
			comm := "-"
			if r.Both {
				comm = report.Percent(r.CommMeasured)
			}
			rows = append(rows, []string{
				r.ID, fmt.Sprint(r.Served),
				report.Percent(r.QTagMeasured), report.Percent(r.QTagViewability), comm,
			})
		}
		fmt.Print(report.Table([]string{"Campaign", "Served", "Q-Tag meas.", "Q-Tag view.", "Comm. meas."}, rows))
	}

	if httpSink != nil {
		health := fmt.Sprintf("delivered=%d retried=%d failed=%d", httpSink.Delivered(), httpSink.Retried(), httpSink.Failed())
		if breaker != nil {
			health += fmt.Sprintf(" breaker=%s tripped=%d rejected=%d", breaker.State(), breaker.Tripped(), breaker.Rejected())
		}
		if queue != nil {
			health += " queue[" + queue.Stats().String() + "]"
		}
		if httpFaults != nil {
			health += " wire[" + httpFaults.Stats().String() + "]"
		}
		logger.Info("mirror delivery health", "health", health)
	}

	if *traceRun && res.Trace != nil {
		fmt.Println("\nLifecycle trace (deterministic for a given seed at any -parallel)")
		fmt.Println(res.Trace.Summary())
	}

	if *metricsDump {
		// End-of-run registry dump. Beacon totals come from the store (the
		// ground truth every mirror scrape must reconcile with); the mirror
		// sink/queue/breaker series were registered as the chain was built.
		var loaded, inview int
		for _, cr := range res.Campaigns {
			loaded += cr.QTagLoaded
			inview += cr.QTagInView
		}
		servedTotal, loadedTotal, inviewTotal := int64(served), int64(loaded), int64(inview)
		reg.CounterFunc("qtag_sim_served_total", "Impressions served across all campaigns of the run.",
			func() int64 { return servedTotal })
		reg.CounterFunc("qtag_sim_qtag_loaded_total", "Impressions measured by Q-Tag (loaded beacons).",
			func() int64 { return loadedTotal })
		reg.CounterFunc("qtag_sim_qtag_inview_total", "Impressions Q-Tag reported in view.",
			func() int64 { return inviewTotal })
		reg.GaugeFunc("qtag_sim_store_events", "Beacon events held by the run's in-memory store.",
			func() float64 { return float64(res.Store.Len()) })
		fmt.Println("\n# end-of-run metrics")
		fmt.Print(reg.Render())
	}

	if q.MeanMeasured <= c.MeanMeasured {
		fmt.Fprintln(os.Stderr, "WARNING: expected Q-Tag to out-measure the commercial baseline")
		os.Exit(1)
	}
}

// Command qtag-sim runs the production-deployment simulation (§5–6) and
// prints the paper's Figure 3 comparison, Table 2 slices and §6.1
// economics computed from the *measured* rates of the run.
//
// Usage:
//
//	qtag-sim [-campaigns 99] [-impressions 120] [-both 4] [-both-factor 3.9]
//	         [-seed 2019] [-server http://host:8640] [-breakdown]
//
// With -server, every beacon of the simulation is additionally delivered
// to a live qtag-server over HTTP.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"qtag/internal/analytics"
	"qtag/internal/beacon"
	"qtag/internal/campaign"
	"qtag/internal/economics"
	"qtag/internal/report"
)

func main() {
	campaigns := flag.Int("campaigns", 99, "number of campaigns (paper: 99)")
	impressions := flag.Int("impressions", 120, "mean impressions per campaign")
	both := flag.Int("both", 4, "campaigns instrumented with both tags (paper: 4)")
	bothFactor := flag.Float64("both-factor", 3.9, "size multiplier for both-tag campaigns")
	seed := flag.Uint64("seed", 2019, "simulation seed")
	serverURL := flag.String("server", "", "optional collection-server URL to mirror beacons to")
	breakdown := flag.Bool("breakdown", false, "print the per-campaign table")
	parallel := flag.Int("parallel", runtime.NumCPU(), "campaigns simulated concurrently")
	flag.Parse()

	cfg := campaign.Config{
		Seed:                   *seed,
		Campaigns:              *campaigns,
		ImpressionsPerCampaign: *impressions,
		BothCampaigns:          *both,
		BothImpressionsFactor:  *bothFactor,
		Parallelism:            *parallel,
	}
	if *serverURL != "" {
		cfg.ExtraSink = &beacon.HTTPSink{BaseURL: *serverURL, Retries: 2}
		log.Printf("mirroring beacons to %s", *serverURL)
	}

	res := campaign.New(cfg).Run()

	var served int
	for _, c := range res.Campaigns {
		served += c.Served
	}
	fmt.Printf("simulated %d campaigns, %d impressions (seed %d)\n\n", len(res.Campaigns), served, *seed)

	fig := analytics.Figure3(res)
	q := fig[beacon.SourceQTag]
	c := fig[beacon.SourceCommercial]

	fmt.Println("Figure 3(a) — measured rate (mean ± std across campaigns)")
	fmt.Println("  " + report.Bar("Q-Tag", q.MeanMeasured, 1, 40) + fmt.Sprintf(" ±%.1f", q.StdMeasured*100))
	fmt.Println("  " + report.Bar("Commercial", c.MeanMeasured, 1, 40) + fmt.Sprintf(" ±%.1f", c.StdMeasured*100))
	fmt.Println()
	fmt.Println("Figure 3(b) — viewability rate (mean ± std across campaigns)")
	fmt.Println("  " + report.Bar("Q-Tag", q.MeanViewability, 1, 40) + fmt.Sprintf(" ±%.1f", q.StdViewability*100))
	fmt.Println("  " + report.Bar("Commercial", c.MeanViewability, 1, 40) + fmt.Sprintf(" ±%.1f", c.StdViewability*100))
	fmt.Println()

	fmt.Println("Table 2 — measured rate by site type and OS (mobile impressions, both-tag campaigns)")
	rows := make([][]string, 0, 4)
	for _, cell := range analytics.Table2ForResult(res) {
		rows = append(rows, []string{
			cell.SiteType, cell.OS,
			report.Percent(cell.QTag), report.Percent(cell.Commercial),
			fmt.Sprint(cell.Served),
		})
	}
	fmt.Print(report.Table([]string{"Site type", "OS", "Q-Tag", "Commercial", "n"}, rows))
	fmt.Println()

	fmt.Println("§6.1 — economics at the measured rates of this run")
	params := economics.PaperMidSize()
	params.MeasuredRateQTag = q.MeanMeasured
	params.MeasuredRateCommercial = c.MeanMeasured
	params.ViewabilityRate = q.MeanViewability
	fmt.Printf("  mid-size DSP (100M ads/day): %s\n", economics.Compute(params))
	params.AdsPerDay = 1e9
	fmt.Printf("  large DSP    (1B ads/day):  %s\n", economics.Compute(params))

	if *breakdown {
		fmt.Println("\nPer-campaign breakdown")
		rows = rows[:0]
		for _, r := range analytics.Breakdown(res) {
			comm := "-"
			if r.Both {
				comm = report.Percent(r.CommMeasured)
			}
			rows = append(rows, []string{
				r.ID, fmt.Sprint(r.Served),
				report.Percent(r.QTagMeasured), report.Percent(r.QTagViewability), comm,
			})
		}
		fmt.Print(report.Table([]string{"Campaign", "Served", "Q-Tag meas.", "Q-Tag view.", "Comm. meas."}, rows))
	}

	if q.MeanMeasured <= c.MeanMeasured {
		fmt.Fprintln(os.Stderr, "WARNING: expected Q-Tag to out-measure the commercial baseline")
		os.Exit(1)
	}
}

// Command qtag-replay reads a beacon journal and either prints the
// aggregated stats or re-submits every event to a live collection
// server. -journal accepts both formats qtag-server writes: a JSONL
// file (-journal mode) or a WAL directory (-wal-dir mode — newest valid
// snapshot first, then every record past its coverage, read-only and
// safe to point at a live or crashed server's directory).
//
// Replay is tolerant by design: a corrupted or truncated trailing line
// (the signature of a crash mid-write) is skipped and counted, not
// fatal — the tool reports "skipped N malformed lines" (for a WAL
// directory, undecodable records and quarantined corruption are
// reported separately, with byte counts) and still exits 0 with the
// stats for everything readable. Ingestion is idempotent end to end, so
// replaying into a server that already holds part of the journal is
// safe.
//
// -report switches the output to the streaming campaign viewability
// report: the journal is replayed through the same aggregation
// accumulators qtag-server feeds at ingest time (per campaign × format
// viewed / not-viewed / not-measured splits, viewability rates, dwell
// quantiles), proving the aggregates rebuild from the WAL alone.
// -report-json emits the same report as JSON for piping.
//
// -detect additionally rebuilds the streaming fraud scores
// (internal/detect) from the journal and appends them to the -report
// output (and the "fraud" object of -report-json). The journal records
// every accepted submission, duplicates included, so replay reproduces
// the duplicate-flood scores a live server computed; a torn tail only
// costs the unreadable records, never the scores for what was read.
// One caveat: a WAL snapshot stores the deduplicated store state, so
// duplicate counts for records the snapshot covers are compacted away
// (DESIGN.md §15).
//
// Usage:
//
//	qtag-replay -journal beacons.jsonl                # print stats
//	qtag-replay -journal beacons.wal                  # WAL directory
//	qtag-replay -journal beacons.wal -report          # viewability report
//	qtag-replay -journal beacons.wal -report -detect  # + fraud scores
//	qtag-replay -journal beacons.jsonl -server URL    # re-submit over HTTP
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"qtag/internal/aggregate"
	"qtag/internal/analytics"
	"qtag/internal/beacon"
	"qtag/internal/detect"
	"qtag/internal/report"
)

func main() {
	journalPath := flag.String("journal", "", "journal to read: a JSONL file or a WAL directory (required)")
	serverURL := flag.String("server", "", "collection server to re-submit events to")
	binaryBeacons := flag.Bool("binary-beacons", false, "re-submit with the compact binary codec (falls back to JSON against pre-binary servers)")
	reportMode := flag.Bool("report", false, "print the streaming campaign viewability report rebuilt from the journal")
	reportJSON := flag.Bool("report-json", false, "like -report, but emit JSON")
	detectMode := flag.Bool("detect", false, "rebuild the streaming fraud scores too; printed with -report, embedded in -report-json")
	flag.Parse()
	if *journalPath == "" {
		fmt.Fprintln(os.Stderr, "usage: qtag-replay -journal <beacons.jsonl | wal-dir> [-server URL]")
		os.Exit(2)
	}

	info, err := os.Stat(*journalPath)
	if err != nil {
		log.Fatalf("open journal: %v", err)
	}

	store := beacon.NewStore()
	// Rebuild the streaming aggregates alongside the store: the observer
	// fires once per first-seen event during replay, exactly as it does
	// at ingest time, so -report proves the WAL alone reproduces them.
	agg := aggregate.New(aggregate.Options{TTL: -1})
	store.AddObserver(agg.Observe)
	// The fraud layer hooks both seams: first-seen events and duplicate
	// submissions. The journal holds every accepted submission, so the
	// store's idempotent replay routes repeats to the duplicate hook and
	// the flood scores come back exactly as the live server saw them.
	var det *detect.Detector
	if *detectMode {
		det = detect.New(detect.Options{TTL: -1})
		store.AddObserver(det.Observe)
		store.AddDupObserver(det.ObserveDup)
	}
	var sink beacon.Sink = store
	if *serverURL != "" {
		sink = beacon.Tee(store, &beacon.HTTPSink{BaseURL: *serverURL, Retries: 2, Binary: *binaryBeacons})
	}

	replayed := 0
	if info.IsDir() {
		rec, err := beacon.ReplayWALDir(*journalPath, sink)
		if err != nil {
			// Partial reads still count: report what we got and move on.
			fmt.Fprintf(os.Stderr, "warning: wal replay ended early: %v\n", err)
		}
		replayed = rec.SnapshotRestored + rec.Replayed
		if rec.SnapshotRestored > 0 {
			fmt.Printf("restored %d events from snapshot (covers record %d)\n", rec.SnapshotRestored, rec.SnapshotIndex)
		}
		if rec.TornTail {
			fmt.Fprintf(os.Stderr, "warning: journal tail is torn (%d bytes unreadable) — a crash mid-write; everything before it was replayed\n", rec.TruncatedBytes)
		}
		// Undecodable records (one line each) and quarantined corruption
		// (chunks or whole segments, each possibly holding many records)
		// are different losses — report them separately so the operator's
		// accounting is exact.
		if skipped := rec.ReplaySkipped + rec.SnapshotSkipped; skipped > 0 {
			fmt.Printf("skipped %d undecodable records\n", skipped)
		}
		if rec.Quarantined > 0 {
			fmt.Printf("%d corrupted chunks (%d bytes) quarantined\n", rec.Quarantined, rec.QuarantinedBytes)
		}
	} else {
		f, err := os.Open(*journalPath)
		if err != nil {
			log.Fatalf("open journal: %v", err)
		}
		st, rerr := beacon.ReplayJournal(f, sink)
		f.Close()
		if rerr != nil {
			// A truncated or corrupted tail must not hide the readable
			// prefix: warn, keep the stats, exit 0.
			fmt.Fprintf(os.Stderr, "warning: journal read ended early: %v\n", rerr)
		}
		replayed = st.Replayed
		if st.Skipped > 0 {
			fmt.Printf("skipped %d malformed lines\n", st.Skipped)
		}
	}
	if *reportJSON {
		out := report.ViewabilityReport{Campaigns: agg.Snapshot()}
		if det != nil {
			fraud := det.Snapshot()
			out.Fraud = &fraud
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatalf("encode report: %v", err)
		}
		return
	}
	fmt.Printf("replayed %d events from %s\n", replayed, *journalPath)
	fmt.Println()
	if *serverURL != "" {
		fmt.Printf("re-submitted to %s\n\n", *serverURL)
	}
	if *reportMode {
		fmt.Print(report.Text(agg.Snapshot()))
		if det != nil {
			fmt.Println()
			fmt.Print(det.Snapshot().Text())
		}
		return
	}

	ids := store.CampaignIDs()
	rows := make([][]string, 0, len(ids))
	for _, id := range ids {
		served := store.Served(id)
		ql := store.Loaded(id, beacon.SourceQTag)
		qi := store.InView(id, beacon.SourceQTag)
		m, v := 0.0, 0.0
		if served > 0 {
			m = float64(ql) / float64(served)
		}
		if ql > 0 {
			v = float64(qi) / float64(ql)
		}
		rows = append(rows, []string{id, fmt.Sprint(served), report.Percent(m), report.Percent(v)})
	}
	fmt.Print(report.Table([]string{"Campaign", "Served", "Q-Tag measured", "Q-Tag viewability"}, rows))

	if slices := analytics.BreakdownBy(store, analytics.ByOS); len(slices) > 0 {
		fmt.Println("\nby OS:")
		for _, s := range slices {
			fmt.Printf("  %-10s served=%6d qtag=%s commercial=%s\n",
				s.Key, s.Served, report.Percent(s.QTag), report.Percent(s.Commercial))
		}
	}
}

// Command qtag-replay reads a beacon journal (JSONL, as written by
// qtag-server -journal) and either prints the aggregated stats or
// re-submits every event to a live collection server. Ingestion is
// idempotent end to end, so replaying into a server that already holds
// part of the journal is safe.
//
// Usage:
//
//	qtag-replay -journal beacons.jsonl                # print stats
//	qtag-replay -journal beacons.jsonl -server URL    # re-submit over HTTP
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"qtag/internal/analytics"
	"qtag/internal/beacon"
	"qtag/internal/report"
)

func main() {
	journalPath := flag.String("journal", "", "journal file to read (required)")
	serverURL := flag.String("server", "", "collection server to re-submit events to")
	flag.Parse()
	if *journalPath == "" {
		fmt.Fprintln(os.Stderr, "usage: qtag-replay -journal beacons.jsonl [-server URL]")
		os.Exit(2)
	}

	f, err := os.Open(*journalPath)
	if err != nil {
		log.Fatalf("open journal: %v", err)
	}
	defer f.Close()

	store := beacon.NewStore()
	var sink beacon.Sink = store
	if *serverURL != "" {
		sink = beacon.Tee(store, &beacon.HTTPSink{BaseURL: *serverURL, Retries: 2})
	}
	st, err := beacon.ReplayJournal(f, sink)
	if err != nil {
		log.Fatalf("replay: %v", err)
	}
	fmt.Printf("replayed %d events (%d skipped) from %s\n\n", st.Replayed, st.Skipped, *journalPath)
	if *serverURL != "" {
		fmt.Printf("re-submitted to %s\n\n", *serverURL)
	}

	ids := store.CampaignIDs()
	rows := make([][]string, 0, len(ids))
	for _, id := range ids {
		served := store.Served(id)
		ql := store.Loaded(id, beacon.SourceQTag)
		qi := store.InView(id, beacon.SourceQTag)
		m, v := 0.0, 0.0
		if served > 0 {
			m = float64(ql) / float64(served)
		}
		if ql > 0 {
			v = float64(qi) / float64(ql)
		}
		rows = append(rows, []string{id, fmt.Sprint(served), report.Percent(m), report.Percent(v)})
	}
	fmt.Print(report.Table([]string{"Campaign", "Served", "Q-Tag measured", "Q-Tag viewability"}, rows))

	if slices := analytics.BreakdownBy(store, analytics.ByOS); len(slices) > 0 {
		fmt.Println("\nby OS:")
		for _, s := range slices {
			fmt.Printf("  %-10s served=%6d qtag=%s commercial=%s\n",
				s.Key, s.Served, report.Percent(s.QTag), report.Percent(s.Commercial))
		}
	}
}

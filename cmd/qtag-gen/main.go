// Command qtag-gen emits the deployable JavaScript Q-Tag for a given
// configuration — the artifact a DSP embeds in its creatives alongside
// the ad markup. The emitted tag implements exactly the algorithm of the
// Go library (same layouts, same fps threshold, same rectangle-inference
// area estimator, same state machine).
//
// Usage:
//
//	qtag-gen [-endpoint https://monitor.example/v1/events]
//	         [-layout X|dice|+] [-pixels 25] [-fps 20] [-sample 100ms]
//	         [-w 300] [-h 250]
//
// Embed the output as:
//
//	<script data-impression="imp-123" data-campaign="camp-7"
//	        data-format="display" src="qtag.js"></script>
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"qtag/internal/geom"
	"qtag/internal/qtag"
)

func main() {
	endpoint := flag.String("endpoint", "https://monitor.example/v1/events", "collection server ingest URL")
	layout := flag.String("layout", "X", "pixel layout: X, dice or +")
	pixels := flag.Int("pixels", 25, "number of monitoring pixels")
	fps := flag.Float64("fps", 20, "visibility fps threshold")
	sample := flag.Duration("sample", 100*time.Millisecond, "sampling interval")
	w := flag.Float64("w", 300, "creative width")
	h := flag.Float64("h", 250, "creative height")
	flag.Parse()

	var l qtag.Layout
	switch *layout {
	case "X", "x":
		l = qtag.LayoutX
	case "dice":
		l = qtag.LayoutDice
	case "+", "plus":
		l = qtag.LayoutPlus
	default:
		fmt.Fprintf(os.Stderr, "unknown layout %q (want X, dice or +)\n", *layout)
		os.Exit(2)
	}

	cfg := qtag.Config{
		Layout:         l,
		PixelCount:     *pixels,
		FPSThreshold:   *fps,
		SampleInterval: *sample,
	}
	fmt.Print(qtag.GenerateJS(cfg, *endpoint, geom.Size{W: *w, H: *h}))
}

package main

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestParsePeers(t *testing.T) {
	peers, err := parsePeers("n1=http://a:1, n2=http://b:2 ,")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 || peers["n1"] != "http://a:1" || peers["n2"] != "http://b:2" {
		t.Fatalf("parsed %v", peers)
	}
	for _, bad := range []string{"n1", "=http://a", "n1=", "n1=http://a,n1=http://b"} {
		if _, err := parsePeers(bad); err == nil {
			t.Fatalf("parsePeers(%q) accepted", bad)
		}
	}
	if empty, err := parsePeers(""); err != nil || len(empty) != 0 {
		t.Fatalf("empty flag parsed to %v, %v", empty, err)
	}
}

func TestParseLogLevel(t *testing.T) {
	if _, err := parseLogLevel("debug"); err != nil {
		t.Fatal(err)
	}
	if _, err := parseLogLevel("nonsense"); err == nil {
		t.Fatal("bad level accepted")
	}
}

// The boot handler must answer liveness 200 and readiness 503 the
// moment the socket binds, shed everything else with Retry-After, and
// the swap must atomically hand the same connections to the real stack.
func TestBootHandlerAndSwap(t *testing.T) {
	var swap handlerSwap
	swap.Set(bootHandler())
	srv := httptest.NewServer(&swap)
	defer srv.Close()

	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if got := get("/healthz").StatusCode; got != http.StatusOK {
		t.Fatalf("/healthz during boot = %d, want 200", got)
	}
	if got := get("/readyz").StatusCode; got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during boot = %d, want 503", got)
	}
	resp := get("/v1/events")
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("ingest during boot = %d (Retry-After %q), want 503 with hint",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	swap.Set(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	}))
	if got := get("/v1/events").StatusCode; got != http.StatusTeapot {
		t.Fatalf("post-swap status = %d, want the real stack", got)
	}
}

// Command qtag-server runs the Q-Tag beacon collection server — the
// "monitoring server" of the paper's §3 — as a standalone HTTP service.
//
// Endpoints:
//
//	POST /v1/events               ingest one event or a JSON array
//	GET  /v1/stats                global measured/viewability rates
//	GET  /v1/campaigns/{id}/stats per-campaign rates
//	GET  /report                  streaming campaign viewability report
//	                              (JSON; ?format=prom for Prometheus text)
//	GET  /metrics                 Prometheus text-format metrics
//	GET  /healthz                 liveness (200 from the moment the
//	                              socket binds, including during WAL
//	                              boot replay)
//	GET  /readyz                  readiness (503 during boot replay and
//	                              while the handoff backlog is high)
//	GET  /debug/pprof/*           profiling (only with -pprof)
//	GET  /debug/traces            recent distributed traces (only with
//	                              -trace-sample > 0); ?trace=<id> for one
//	                              trace's full span tree, else summaries
//	                              filtered by ?min_ms= ?error=1 ?campaign=
//
// Usage:
//
//	qtag-server [-addr :8640] [-log-every 30s]
//	            [-ingest-shards 16] [-max-body-bytes 4194304]
//	            [-wal-dir beacons.wal] [-wal-segment-bytes 8388608]
//	            [-fsync batch] [-fsync-every 1s] [-snapshot-every 1m]
//	            [-group-commit] [-group-commit-max-batch 256]
//	            [-group-commit-max-wait 0] [-durable-sync]
//	            [-journal beacons.jsonl]
//	            [-shed-pending 10000] [-retry-after 2s]
//	            [-admission] [-admission-min-inflight 0]
//	            [-admission-max-inflight 0] [-admission-recovery-hold 2s]
//	            [-disk-low-bytes 0] [-disk-shed-bytes 0]
//	            [-disk-readonly-bytes 0] [-disk-check-every 2s]
//	            [-report-ttl 15m] [-report-sweep-every 1m]
//	            [-report-window 1m] [-report-windows 60]
//	            [-report-max-open 0]
//	            [-detect] [-detect-ttl 15m] [-detect-max-open 0]
//	            [-detect-flag-threshold 0.5]
//	            [-node-id n0] [-peers n1=http://...,n2=http://...]
//	            [-handoff-dir hints] [-probe-every 1s]
//	            [-ready-hint-backlog 10000]
//	            [-trace-sample 0.01] [-trace-buffer 4096]
//	            [-slow-request 250ms] [-access-log]
//	            [-metrics-exemplars]
//	            [-log-level info] [-pprof]
//
// Distributed tracing (-trace-sample > 0) propagates W3C traceparent
// context across every hop a beacon takes — ingest, peer forwards,
// hinted handoff and its drain replay, federated report fan-outs — and
// retains completed spans in a bounded in-memory ring served by
// GET /debug/traces. Sampling is head-based at the trace root; errored
// spans are always recorded. -slow-request and -access-log add request
// log lines carrying the trace id (cluster health probes are excluded),
// and -metrics-exemplars attaches trace-id exemplars to ingest latency
// histogram buckets in /metrics. See DESIGN.md §13.
//
// Cluster mode (-peers, with -node-id and -handoff-dir) runs several
// qtag-servers as one coordinator-free cluster: a consistent-hash ring
// over impression IDs names each beacon's owner node, non-owners
// forward, and unreachable owners degrade to durable hinted handoff
// replayed on recovery. GET /report?federated=1 merges every reachable
// node's snapshot and names unreachable ones in "degraded". See
// DESIGN.md §12.
//
// GET /report serves per-campaign × per-format viewed / not-viewed /
// not-measured splits, viewability rates and in-view dwell histograms
// from streaming accumulators updated at ingest time — it never scans
// the raw event store. The accumulators are fed by the store's
// first-seen-event hook, so they inherit ingest idempotency and are
// rebuilt deterministically by the WAL replay on boot. Per-impression
// working state is evicted after -report-ttl idle time (sweep cadence
// -report-sweep-every) so report memory stays bounded under unbounded
// traffic; campaign totals are never evicted.
//
// Fraud detection (-detect) attaches the streaming anomaly layer of
// internal/detect to the same store hooks that feed the aggregates:
// per-campaign × source fraud scores (beacon-rate anomalies, impossible
// dwell histograms, lifecycle sequencing violations, duplicate floods,
// geometry anomalies) appear in the "fraud" object of GET /report and
// as qtag_detect_* metrics. The detector sees duplicate submissions via
// the store's duplicate hook and is rebuilt by WAL boot replay exactly
// like the aggregates — the WAL journals every accepted submission,
// duplicates included. (WAL snapshots hold the deduplicated store
// state, so duplicate counts older than the newest snapshot are
// compacted away on restart; see DESIGN.md §15.) Its per-impression
// state shares the report
// sweeper cadence; -detect-ttl and -detect-max-open bound its memory
// the way -report-ttl / -report-max-open bound the aggregates. See
// DESIGN.md §15 for the threat model.
//
// The in-memory store is sharded by impression-id hash (-ingest-shards,
// rounded to a power of two) so concurrent ingestion contends per shard,
// not on one lock. Ingested events reach the store synchronously;
// durability is asynchronous by default: a store-and-forward queue
// drains them through a circuit breaker into the journal (or discards
// them when neither -wal-dir nor -journal is set), so /metrics always
// exposes the same queue/breaker/flush-latency series regardless of
// configuration. -durable-sync instead puts the WAL on the request path:
// a POST is acknowledged only once its events are journaled (fsynced,
// under -fsync always) — combine with -group-commit, which coalesces
// concurrent appends into one write + one fsync per group so the
// per-request durability cost is amortized instead of serialized.
//
// -wal-dir selects the crash-safe durability backend: a segmented,
// checksummed write-ahead journal (see internal/wal) recovered on boot —
// torn tails truncated, corrupted records quarantined, the newest valid
// snapshot restored first — with periodic snapshot + compaction bounding
// disk use. -journal keeps the legacy single-file JSONL journal; the two
// are mutually exclusive. A full disk never crashes the server: appends
// fail into the circuit breaker, ingestion keeps running from memory,
// and the qtag_wal_disk_full gauge raises the alarm.
//
// Overload control (-admission, on by default) guards every request
// behind an adaptive concurrency limiter: a gradient controller tracks
// observed ingest latency against its moving minimum and shrinks the
// in-flight limit when the node slows down, instead of waiting for a
// static backlog threshold to trip. Requests are classified — live
// ingest > hinted-handoff drain replays > federated /report fan-outs >
// /debug endpoints — and lower classes are shed first (503 +
// Retry-After), so a drain storm after a partition heals can never
// starve fresh beacons. Clients may stamp X-Qtag-Budget-Ms with their
// remaining deadline; requests that cannot finish in budget are
// rejected with 408 before any WAL append. -shed-pending remains the
// hard backstop on the unflushed backlog, and the -disk-*-bytes
// watermarks degrade the node as WAL disk space runs out: low relaxes
// fsync to batch, shed stops new ingest, read-only refuses all writes.
// Degraded modes surface on /readyz (503 while browned-out/read-only)
// and /healthz, and as qtag_admission_* / qtag_watermark_* metrics.
// -admission=false restores the legacy static -shed-pending guard
// alone. See DESIGN.md §14.
//
// With -admission=false and -shed-pending, the server sheds
// ingestion (503 + Retry-After) while the unflushed backlog exceeds the
// threshold, and /healthz reports the shed count and backlog. On
// SIGINT/SIGTERM the HTTP server drains, the queue flushes into the
// journal, a final snapshot is taken (WAL mode), then the journal is
// fsynced and closed before the final summary log line.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"qtag/internal/admission"
	"qtag/internal/aggregate"
	"qtag/internal/analytics"
	"qtag/internal/beacon"
	"qtag/internal/cluster"
	"qtag/internal/detect"
	"qtag/internal/obs"
	"qtag/internal/report"
	"qtag/internal/version"
	"qtag/internal/wal"
)

// parseLogLevel maps the -log-level flag onto a slog.Level.
func parseLogLevel(s string) (slog.Level, error) {
	var lvl slog.Level
	return lvl, lvl.UnmarshalText([]byte(s))
}

// parsePeers parses the -peers flag: "id=url,id=url". IDs must be
// unique and URLs non-empty.
func parsePeers(s string) (map[string]string, error) {
	peers := make(map[string]string)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("bad peer %q; want id=url", part)
		}
		if _, dup := peers[id]; dup {
			return nil, fmt.Errorf("duplicate peer id %q", id)
		}
		peers[id] = url
	}
	return peers, nil
}

// handlerSwap atomically swaps the live handler: the boot handler
// (liveness yes, readiness no) serves while WAL replay runs, then the
// full stack takes over. This is what splits liveness from readiness at
// boot — the process answers /healthz the instant the socket binds,
// but /readyz stays 503 until recovery completes.
type handlerSwap struct{ v atomic.Value }

func (h *handlerSwap) Set(next http.Handler) { h.v.Store(&next) }
func (h *handlerSwap) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	(*h.v.Load().(*http.Handler)).ServeHTTP(w, r)
}

// bootHandler answers probes during WAL boot replay: alive, not ready,
// everything else 503 with Retry-After.
func bootHandler() http.Handler {
	mux := http.NewServeMux()
	writeStatus := func(w http.ResponseWriter, code int, body map[string]string) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		_ = json.NewEncoder(w).Encode(body)
	}
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeStatus(w, http.StatusOK, map[string]string{"status": "booting"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		writeStatus(w, http.StatusServiceUnavailable, map[string]string{
			"status": "unready", "reason": "wal boot replay in progress",
		})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Retry-After", "1")
		writeStatus(w, http.StatusServiceUnavailable, map[string]string{
			"error": "booting: wal replay in progress",
		})
	})
	return mux
}

func main() {
	addr := flag.String("addr", ":8640", "listen address")
	logEvery := flag.Duration("log-every", 30*time.Second, "interval between stats log lines (0 disables)")
	journalPath := flag.String("journal", "", "JSONL journal file for durability (replayed on startup)")
	walDir := flag.String("wal-dir", "", "segmented write-ahead journal directory (crash-safe durability; excludes -journal)")
	walSegmentBytes := flag.Int64("wal-segment-bytes", 8<<20, "rotate WAL segments at this size")
	fsyncMode := flag.String("fsync", "batch", "WAL fsync policy: always, batch or interval")
	fsyncEvery := flag.Duration("fsync-every", time.Second, "fsync period for -fsync interval")
	snapshotEvery := flag.Duration("snapshot-every", time.Minute, "snapshot + compaction cadence for -wal-dir (0 disables)")
	ingestShards := flag.Int("ingest-shards", beacon.DefaultStoreShards, "store shard count (rounded up to a power of two)")
	maxBodyBytes := flag.Int64("max-body-bytes", beacon.DefaultMaxBodyBytes, "reject POST /v1/events bodies larger than this with 413")
	groupCommit := flag.Bool("group-commit", true, "coalesce concurrent WAL appends into shared fsyncs")
	gcMaxBatch := flag.Int("group-commit-max-batch", 256, "max records per WAL group commit")
	gcMaxWait := flag.Duration("group-commit-max-wait", 0, "hold small commit groups open this long to let more callers join")
	durableSync := flag.Bool("durable-sync", false, "acknowledge ingestion only after events are journaled (requires -wal-dir)")
	statsKey := flag.String("stats-key", "", "operator bearer token protecting the stats endpoints (empty = open)")
	ingestRate := flag.Float64("ingest-rate", 0, "per-client ingestion rate limit in req/s (0 = unlimited)")
	ingestBurst := flag.Float64("ingest-burst", 50, "per-client ingestion burst")
	shedPending := flag.Int("shed-pending", 0, "shed ingestion with 503 when this many journal events await flush (0 = disabled; the hard backstop behind -admission)")
	retryAfter := flag.Duration("retry-after", 2*time.Second, "Retry-After hint on shed responses")
	admissionOn := flag.Bool("admission", true, "adaptive admission control: gradient concurrency limiter, priority classes and degraded modes (false restores the legacy static -shed-pending guard)")
	admMinInflight := flag.Int("admission-min-inflight", 0, "adaptive concurrency limit floor (0 = package default)")
	admMaxInflight := flag.Int("admission-max-inflight", 0, "adaptive concurrency limit ceiling (0 = package default)")
	admRecoveryHold := flag.Duration("admission-recovery-hold", 2*time.Second, "calm period before a browned-out node reports healthy again")
	diskLowBytes := flag.Int64("disk-low-bytes", 0, "WAL-disk low watermark: relax fsync to batch below this free space (0 disables; needs -wal-dir)")
	diskShedBytes := flag.Int64("disk-shed-bytes", 0, "WAL-disk shed watermark: stop admitting new ingest below this free space (0 disables)")
	diskReadOnlyBytes := flag.Int64("disk-readonly-bytes", 0, "WAL-disk read-only watermark: refuse all writes below this free space (0 disables)")
	diskCheckEvery := flag.Duration("disk-check-every", 2*time.Second, "free-space probe cadence for the disk watermarks")
	reportMaxOpen := flag.Int("report-max-open", 0, "cap open per-impression aggregation states; past it the coldest is evicted, totals frozen (0 = unbounded)")
	queueCap := flag.Int("queue-cap", 4096, "durability queue capacity (events)")
	reportTTL := flag.Duration("report-ttl", 15*time.Minute, "evict idle per-impression aggregation state after this long (<0 disables)")
	reportSweep := flag.Duration("report-sweep-every", time.Minute, "aggregation eviction sweep cadence (0 disables)")
	reportWindow := flag.Duration("report-window", time.Minute, "rollup window width on GET /report")
	reportWindows := flag.Int("report-windows", 60, "rollup windows retained on GET /report")
	detectOn := flag.Bool("detect", false, "streaming fraud detection: per-campaign anomaly scores on GET /report and qtag_detect_* metrics")
	detectTTL := flag.Duration("detect-ttl", 15*time.Minute, "evict idle per-impression detection state after this long (<0 disables; needs -detect)")
	detectMaxOpen := flag.Int("detect-max-open", 0, "cap open per-impression detection states; past it the coldest is evicted (0 = unbounded)")
	detectFlagThreshold := flag.Float64("detect-flag-threshold", 0, "composite score at which a campaign is flagged fraudulent (0 = package default)")
	logLevel := flag.String("log-level", "info", "log level (debug, info, warn, error)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/")
	nodeID := flag.String("node-id", "", "this node's cluster id (cluster mode; requires -peers)")
	peersFlag := flag.String("peers", "", "cluster peers as id=url,id=url (enables cluster mode)")
	handoffDir := flag.String("handoff-dir", "", "hinted-handoff journal directory (required in cluster mode)")
	probeEvery := flag.Duration("probe-every", time.Second, "peer health probe interval (cluster mode)")
	readyBacklog := flag.Int64("ready-hint-backlog", 10000, "report unready when the handoff backlog exceeds this (0 disables)")
	binaryBeacons := flag.Bool("binary-beacons", true, "forward peer-owned beacons (and hint-drain replays) with the compact binary codec; falls back to JSON automatically against pre-binary peers")
	traceSample := flag.Float64("trace-sample", 0, "head sampling rate for distributed tracing in [0,1] (0 disables; errored spans always recorded)")
	traceBuffer := flag.Int("trace-buffer", obs.DefaultSpanBuffer, "completed spans retained in the in-memory ring behind /debug/traces")
	slowRequest := flag.Duration("slow-request", 0, "log requests slower than this, with their trace id (0 disables)")
	accessLog := flag.Bool("access-log", false, "log every request: method, path, status, bytes, duration, trace id")
	metricsExemplars := flag.Bool("metrics-exemplars", false, "attach OpenMetrics trace-id exemplars to /metrics histogram buckets")
	flag.Parse()

	lvl, err := parseLogLevel(*logLevel)
	if err != nil {
		slog.Error("bad -log-level", "value", *logLevel, "err", err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))
	slog.SetDefault(logger)

	if *walDir != "" && *journalPath != "" {
		slog.Error("-wal-dir and -journal are mutually exclusive; pick one durability backend")
		os.Exit(2)
	}
	if *durableSync && *walDir == "" {
		slog.Error("-durable-sync requires -wal-dir (synchronous durability needs a crash-safe journal)")
		os.Exit(2)
	}
	if *traceSample < 0 || *traceSample > 1 {
		slog.Error("-trace-sample must be in [0,1]", "value", *traceSample)
		os.Exit(2)
	}
	var peers map[string]string
	if *peersFlag != "" {
		var perr error
		peers, perr = parsePeers(*peersFlag)
		if perr != nil {
			slog.Error("bad -peers", "err", perr)
			os.Exit(2)
		}
		if *nodeID == "" {
			slog.Error("-peers requires -node-id")
			os.Exit(2)
		}
		if *handoffDir == "" {
			slog.Error("-peers requires -handoff-dir (hinted handoff needs a durable journal)")
			os.Exit(2)
		}
		if _, clash := peers[*nodeID]; clash {
			slog.Error("-peers must not contain this node's own -node-id", "node_id", *nodeID)
			os.Exit(2)
		}
	}

	// The shutdown context exists before anything else so it can be
	// threaded into every retrying client (forwarders abort their
	// backoff schedules the moment SIGTERM lands) and so boot replay
	// itself is interruptible.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Bind and serve immediately: the boot handler answers liveness from
	// the first instant while /readyz stays 503 until WAL replay (below)
	// completes and the real stack is swapped in. Orchestrators can tell
	// "slow boot" from "dead process" during long recoveries.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		slog.Error("listen", "addr", *addr, "err", err)
		os.Exit(1)
	}
	swap := &handlerSwap{}
	swap.Set(bootHandler())
	httpServer := &http.Server{Handler: swap, ReadHeaderTimeout: 5 * time.Second}
	errCh := make(chan error, 1)
	go func() { errCh <- httpServer.Serve(ln) }()

	store := beacon.NewStoreWithShards(*ingestShards)
	// The streaming aggregation layer observes every first-seen event the
	// store accepts. It must attach before WAL/journal replay below so
	// boot recovery rebuilds the /report accumulators too.
	agg := aggregate.New(aggregate.Options{
		Shards:     *ingestShards,
		TTL:        *reportTTL,
		Window:     *reportWindow,
		MaxWindows: *reportWindows,
		MaxOpen:    *reportMaxOpen,
	})
	store.AddObserver(agg.Observe)
	// The fraud layer hooks both observer seams — first-seen events and
	// duplicate submissions — and, like the aggregates, must attach
	// before WAL replay so boot recovery rebuilds its scores.
	var det *detect.Detector
	if *detectOn {
		det = detect.New(detect.Options{
			Shards:        *ingestShards,
			TTL:           *detectTTL,
			MaxOpen:       *detectMaxOpen,
			FlagThreshold: *detectFlagThreshold,
		})
		store.AddObserver(det.Observe)
		store.AddDupObserver(det.ObserveDup)
	}
	var wj *beacon.WALJournal
	if *walDir != "" {
		policy, err := wal.ParseFsyncPolicy(*fsyncMode)
		if err != nil {
			logger.Error("bad -fsync", "value", *fsyncMode, "err", err)
			os.Exit(2)
		}
		var rec beacon.DurableRecovery
		wj, rec, err = beacon.OpenDurable(wal.Options{
			Dir:                 *walDir,
			SegmentBytes:        *walSegmentBytes,
			Fsync:               policy,
			FsyncEvery:          *fsyncEvery,
			GroupCommit:         *groupCommit,
			GroupCommitMaxBatch: *gcMaxBatch,
			GroupCommitMaxWait:  *gcMaxWait,
		}, store)
		if err != nil {
			logger.Error("wal recovery", "dir", *walDir, "err", err)
			os.Exit(1)
		}
		logger.Info("wal recovered",
			"dir", *walDir,
			"segments", rec.Segments,
			"snapshot_restored", rec.SnapshotRestored,
			"replayed", rec.Replayed,
			"skipped", rec.ReplaySkipped,
			"quarantined", rec.Quarantined,
			"corrupt_snapshots", rec.CorruptSnapshots,
			"torn_tail", rec.TornTail,
			"duration", rec.Duration)
		defer wj.Close()
	}
	var journal *beacon.Journal
	if *journalPath != "" {
		// Replay an existing journal, then append to it. Idempotent
		// ingestion makes restarts safe.
		if f, err := os.Open(*journalPath); err == nil {
			st, rerr := beacon.ReplayJournal(f, store)
			f.Close()
			if rerr != nil {
				logger.Error("replay journal", "err", rerr)
				os.Exit(1)
			}
			logger.Info("journal replayed", "path", *journalPath, "replayed", st.Replayed, "skipped", st.Skipped)
		} else if !errors.Is(err, os.ErrNotExist) {
			logger.Error("open journal", "err", err)
			os.Exit(1)
		}
		f, err := os.OpenFile(*journalPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			logger.Error("append journal", "err", err)
			os.Exit(1)
		}
		journal = beacon.NewJournal(f)
		defer journal.Close()
	}

	// Durability pipeline: the store ingests synchronously; journal writes
	// drain asynchronously through queue → breaker → journal. Without a
	// journal the terminal sink discards, keeping the metric surface
	// identical either way. -durable-sync bypasses the queue and journals
	// on the request path (breaker still in front, so a dead disk degrades
	// to fast failures instead of hung requests); the idle queue keeps its
	// metric series registered.
	var durable beacon.Sink = beacon.Discard
	switch {
	case wj != nil:
		durable = wj
	case journal != nil:
		durable = journal
	}
	breaker := beacon.NewCircuitBreaker(durable, beacon.DefaultBreakerThreshold, 5*time.Second)
	queue := beacon.NewQueueSink(breaker, beacon.QueueOptions{Capacity: *queueCap})
	var sink beacon.Sink
	if *durableSync {
		sink = beacon.Tee(store, breaker)
	} else {
		sink = beacon.Tee(store, queue)
	}
	// Distributed tracing: one tracer feeds every layer (HTTP ingest,
	// cluster routing, federated reports) and records completed spans
	// into a bounded ring behind /debug/traces.
	var tracer *obs.Tracer
	var spanStore *obs.SpanStore
	if *traceSample > 0 {
		traceNode := *nodeID
		if traceNode == "" {
			traceNode = "qtag-server"
		}
		spanStore = obs.NewSpanStore(*traceBuffer)
		tracer = obs.NewTracer(obs.TracerConfig{
			Node:       traceNode,
			SampleRate: *traceSample,
			Store:      spanStore,
		})
	}
	// In cluster mode the routing node slots between the HTTP layer and
	// the local durable chain: owner-local beacons fall through to the
	// chain unchanged; remote-owned ones forward to their owner or
	// degrade to hinted handoff.
	var node *cluster.Node
	if peers != nil {
		node, err = cluster.NewNode(cluster.Config{
			Self:             *nodeID,
			Peers:            peers,
			Local:            sink,
			HandoffDir:       *handoffDir,
			Binary:           *binaryBeacons,
			ProbeEvery:       *probeEvery,
			ReadyHintBacklog: *readyBacklog,
			Tracer:           tracer,
			BaseContext:      func() context.Context { return ctx },
		})
		if err != nil {
			logger.Error("cluster node", "err", err)
			os.Exit(1)
		}
		sink = node
		logger.Info("cluster mode", "node_id", *nodeID, "peers", len(peers), "handoff_dir", *handoffDir)
	}
	// Stamp receive time onto beacons that arrive without one (browsers
	// with broken clocks, legacy pixels). In cluster mode the stamp
	// lands at the first node that sees the beacon, before any forward,
	// so the owner records the original arrival time.
	sink = &beacon.StampSink{Next: sink, Now: time.Now}
	server := beacon.NewServerWithSink(store, sink)
	server.SetMaxBodyBytes(*maxBodyBytes)
	server.Mount("GET /v1/breakdown", analytics.Handler(store))
	server.Mount("GET /v1/timeseries", analytics.Handler(store))
	if node != nil {
		server.Mount("GET /report", obs.TraceMiddleware(tracer, "report",
			cluster.FederatedHandler(agg, cluster.FederationConfig{
				Self:   *nodeID,
				Peers:  peers,
				Tracer: tracer,
			})))
		server.SetReadiness(node.Readiness())
		node.RegisterMetrics(server.Metrics())
		server.AddHealthMetric("hint_backlog", func() int64 { return node.Stats().HintBacklog })
	} else {
		// Fraud scores ride the plain single-node report; the federated
		// merge above stays aggregate-only (scores are per-node state).
		server.Mount("GET /report", obs.TraceMiddleware(tracer, "report", report.HandlerWithDetect(agg, det, nil)))
	}
	if tracer != nil {
		server.SetTracer(tracer)
		spanStore.RegisterMetrics(server.Metrics())
		server.Mount("GET /debug/traces", obs.TracesHandler(spanStore))
		logger.Info("tracing enabled", "sample", *traceSample, "buffer", *traceBuffer)
	}
	if *metricsExemplars {
		server.Metrics().SetExemplars(true)
	}
	obs.RegisterBuildInfo(server.Metrics(), version.Version, *nodeID)
	agg.RegisterMetrics(server.Metrics())
	if det != nil {
		det.RegisterMetrics(server.Metrics())
		logger.Info("fraud detection enabled",
			"ttl", *detectTTL, "max_open", *detectMaxOpen)
	}
	queue.RegisterMetrics(server.Metrics())
	breaker.RegisterMetrics(server.Metrics())
	if journal != nil {
		journal.RegisterMetrics(server.Metrics())
	}
	if wj != nil {
		wj.RegisterMetrics(server.Metrics())
	}
	if *pprofOn {
		server.Mount("GET /debug/pprof/", http.HandlerFunc(pprof.Index))
		server.Mount("GET /debug/pprof/cmdline", http.HandlerFunc(pprof.Cmdline))
		server.Mount("GET /debug/pprof/profile", http.HandlerFunc(pprof.Profile))
		server.Mount("GET /debug/pprof/symbol", http.HandlerFunc(pprof.Symbol))
		server.Mount("GET /debug/pprof/trace", http.HandlerFunc(pprof.Trace))
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}
	var handler http.Handler = server
	if *ingestRate > 0 {
		handler = beacon.NewRateLimiter(handler, *ingestRate, *ingestBurst)
	}
	// backlog counts events accepted but not yet durable: the journal's
	// unflushed (or un-fsynced) records plus whatever sits in the queue.
	var backlog func() int
	switch {
	case wj != nil:
		backlog = func() int { return wj.Pending() + queue.Depth() }
	case journal != nil:
		backlog = func() int { return journal.Pending() }
	}
	// shedCount reports total shed requests for the final stats line,
	// whichever guard variant is active.
	var shedCount func() int64
	if *admissionOn {
		acfg := admission.Config{
			Limiter: admission.LimiterConfig{
				MinLimit: *admMinInflight,
				MaxLimit: *admMaxInflight,
			},
			RetryAfter:   *retryAfter,
			RecoveryHold: *admRecoveryHold,
		}
		if backlog != nil && *shedPending > 0 {
			threshold := *shedPending
			acfg.Backstop = func() bool { return backlog() >= threshold }
		}
		if wj != nil && (*diskLowBytes > 0 || *diskShedBytes > 0 || *diskReadOnlyBytes > 0) {
			// Below the low watermark, trade fsync latency for headroom
			// (batch coalesces syncs); restore the configured policy once
			// the disk recovers. The shed/read-only levels feed the
			// controller's mode machine through acfg.Watermark.
			basePolicy := wj.FsyncPolicy()
			wm, err := admission.NewWatermark(admission.WatermarkConfig{
				Dir:           *walDir,
				LowBytes:      *diskLowBytes,
				ShedBytes:     *diskShedBytes,
				ReadOnlyBytes: *diskReadOnlyBytes,
				CheckEvery:    *diskCheckEvery,
				OnChange: func(from, to admission.Level) {
					if to >= admission.LevelLow && from < admission.LevelLow {
						wj.SetFsyncPolicy(wal.FsyncOnBatch)
					} else if to < admission.LevelLow && from >= admission.LevelLow {
						wj.SetFsyncPolicy(basePolicy)
					}
					logger.Warn("wal disk watermark", "from", from, "to", to)
				},
			})
			if err != nil {
				logger.Error("disk watermark", "err", err)
				os.Exit(2)
			}
			wm.Start()
			defer wm.Close()
			wm.RegisterMetrics(server.Metrics())
			acfg.Watermark = wm
		}
		ctrl := admission.NewController(acfg)
		ctrl.RegisterMetrics(server.Metrics())
		server.AddHealthMetric("shed", ctrl.TotalShed)
		server.AddHealthMetric("admission_mode", func() int64 { return int64(ctrl.Mode()) })
		if backlog != nil {
			server.AddHealthMetric("journal_pending", func() int64 { return int64(backlog()) })
		}
		// Readiness composes: the cluster node's own checks (when
		// clustered) first, then the admission mode — a browned-out or
		// read-only node must drop out of the load balancer even if its
		// handoff backlog looks fine.
		var nodeReady func() error
		if node != nil {
			nodeReady = node.Readiness()
		}
		server.SetReadiness(func() error {
			if nodeReady != nil {
				if err := nodeReady(); err != nil {
					return err
				}
			}
			if !ctrl.Ready() {
				return fmt.Errorf("admission: node is %s", ctrl.Mode())
			}
			return nil
		})
		handler = ctrl.Middleware(handler)
		shedCount = ctrl.TotalShed
		logger.Info("admission control enabled",
			"min_inflight", *admMinInflight, "max_inflight", *admMaxInflight,
			"backstop_pending", *shedPending, "recovery_hold", *admRecoveryHold)
	} else if backlog != nil && *shedPending > 0 {
		// Legacy static guard, kept for -admission=false: shed on the
		// journal backlog threshold alone.
		threshold := *shedPending
		guard := beacon.NewOverloadGuard(handler, func() bool {
			return backlog() >= threshold
		}, *retryAfter)
		guard.RegisterMetrics(server.Metrics())
		server.AddHealthMetric("shed", guard.Shed)
		server.AddHealthMetric("journal_pending", func() int64 { return int64(backlog()) })
		handler = guard
		shedCount = guard.Shed
	}
	if wj != nil {
		server.AddHealthMetric("wal_disk_full", func() int64 {
			if wj.DiskFull() {
				return 1
			}
			return 0
		})
	}
	if *statsKey != "" {
		handler = beacon.AuthStats(handler, *statsKey)
	}
	// Access/slow-request logging wraps outermost so it records the final
	// status of every middleware below it. Cluster health probes are
	// excluded by their User-Agent; AccessLog is a no-op pass-through
	// when both switches are off.
	handler = beacon.AccessLog(handler, beacon.AccessLogOptions{
		Logger:        logger,
		LogAll:        *accessLog,
		SlowThreshold: *slowRequest,
	})

	if *logEvery > 0 {
		go func() {
			ticker := time.NewTicker(*logEvery)
			defer ticker.Stop()
			for range ticker.C {
				if journal != nil {
					if err := journal.Flush(); err != nil {
						logger.Warn("journal flush", "err", err)
					}
				}
				if wj != nil {
					// Keep idle streams durable under the batch/interval
					// fsync policies. A full disk degrades (breaker opens,
					// alarm gauge raises) — it must never crash the server.
					if err := wj.Sync(); err != nil {
						logger.Warn("wal sync", "err", err)
					}
				}
				logger.Info("stats",
					"events", store.Len(),
					"accepted", server.Accepted(),
					"rejected", server.Rejected(),
					"campaigns", len(store.CampaignIDs()),
					"queue_depth", queue.Depth())
			}
		}()
	}

	if *reportSweep > 0 && *reportTTL >= 0 {
		go func() {
			ticker := time.NewTicker(*reportSweep)
			defer ticker.Stop()
			for now := range ticker.C {
				if n := agg.Sweep(now); n > 0 {
					logger.Debug("aggregate sweep",
						"evicted", n, "open", agg.OpenImpressions())
				}
				if det != nil {
					if n := det.Sweep(now); n > 0 {
						logger.Debug("detect sweep",
							"evicted", n, "open", det.OpenImpressions())
					}
				}
			}
		}()
	}

	if wj != nil && *snapshotEvery > 0 {
		go func() {
			ticker := time.NewTicker(*snapshotEvery)
			defer ticker.Stop()
			for range ticker.C {
				wrote, err := wj.Snapshot(store)
				if err != nil {
					logger.Warn("wal snapshot", "err", err)
					continue
				}
				if wrote {
					idx, _ := wj.SnapshotInfo()
					logger.Info("wal snapshot", "covers", idx, "segments", wj.WAL().Segments())
				}
			}
		}()
	}

	// Recovery is done and the full stack is assembled: swap out the
	// boot handler. From here /readyz answers from the real server
	// (cluster backlog checks included) and ingest is open.
	if node != nil {
		node.Start()
	}
	swap.Set(handler)
	logger.Info("qtag-server ready", "addr", *addr, "version", version.Version)

	select {
	case <-ctx.Done():
		logger.Info("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpServer.Shutdown(shutdownCtx); err != nil {
			logger.Warn("shutdown", "err", err)
		}
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("serve", "err", err)
			os.Exit(1)
		}
	}
	// Graceful drain, in dependency order: every in-flight request has
	// completed (Shutdown returned), so stop the cluster layer (probe
	// loop halts, in-flight hint drains finish, hint WALs fsync and
	// close — the shutdown context already aborted forwarder retries),
	// then drain the durability queue into the journal, then flush +
	// fsync + close the journal — a SIGTERM must not tear the last
	// beacons. Close is idempotent; the deferred Close becomes a no-op.
	if node != nil {
		if err := node.Close(); err != nil {
			logger.Warn("cluster close", "err", err)
		}
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := queue.Close(drainCtx); err != nil {
		logger.Warn("queue drain", "err", err)
	}
	cancel()
	journalPending := 0
	if journal != nil {
		journalPending = journal.Pending()
		if err := journal.Close(); err != nil {
			logger.Warn("journal close", "err", err)
		}
	}
	if wj != nil {
		// The queue has drained, so the WAL holds everything. Take a
		// parting snapshot (best effort — a full disk must not block
		// shutdown), then fsync and close.
		if *snapshotEvery > 0 {
			if _, err := wj.Snapshot(store); err != nil {
				logger.Warn("final snapshot", "err", err)
			}
		}
		journalPending = wj.Pending()
		if err := wj.Close(); err != nil {
			logger.Warn("wal close", "err", err)
		}
	}
	shed := int64(0)
	if shedCount != nil {
		shed = shedCount()
	}
	qs := queue.Stats()
	logger.Info("final",
		"events", store.Len(),
		"accepted", server.Accepted(),
		"rejected", server.Rejected(),
		"shed", shed,
		"journal_pending_at_close", journalPending,
		"queue_flushed", qs.Flushed,
		"queue_dropped", qs.Dropped)
}

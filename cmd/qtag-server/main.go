// Command qtag-server runs the Q-Tag beacon collection server — the
// "monitoring server" of the paper's §3 — as a standalone HTTP service.
//
// Endpoints:
//
//	POST /v1/events               ingest one event or a JSON array
//	GET  /v1/stats                global measured/viewability rates
//	GET  /v1/campaigns/{id}/stats per-campaign rates
//	GET  /healthz                 liveness
//
// Usage:
//
//	qtag-server [-addr :8640] [-log-every 30s] [-journal beacons.jsonl]
//	            [-shed-pending 10000] [-retry-after 2s]
//
// With -journal and -shed-pending, the server sheds ingestion (503 +
// Retry-After) while the journal's unflushed backlog exceeds the
// threshold, and /healthz reports the shed count and backlog. On
// SIGINT/SIGTERM the HTTP server drains, then the journal is flushed,
// fsynced and closed before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"qtag/internal/analytics"
	"qtag/internal/beacon"
)

func main() {
	addr := flag.String("addr", ":8640", "listen address")
	logEvery := flag.Duration("log-every", 30*time.Second, "interval between stats log lines (0 disables)")
	journalPath := flag.String("journal", "", "JSONL journal file for durability (replayed on startup)")
	statsKey := flag.String("stats-key", "", "operator bearer token protecting the stats endpoints (empty = open)")
	ingestRate := flag.Float64("ingest-rate", 0, "per-client ingestion rate limit in req/s (0 = unlimited)")
	ingestBurst := flag.Float64("ingest-burst", 50, "per-client ingestion burst")
	shedPending := flag.Int("shed-pending", 0, "shed ingestion with 503 when this many journal events await flush (0 = disabled)")
	retryAfter := flag.Duration("retry-after", 2*time.Second, "Retry-After hint on shed responses")
	flag.Parse()

	store := beacon.NewStore()
	var journal *beacon.Journal
	if *journalPath != "" {
		// Replay an existing journal, then append to it. Idempotent
		// ingestion makes restarts safe.
		if f, err := os.Open(*journalPath); err == nil {
			st, rerr := beacon.ReplayJournal(f, store)
			f.Close()
			if rerr != nil {
				log.Fatalf("replay journal: %v", rerr)
			}
			log.Printf("replayed %d events from %s (%d skipped)", st.Replayed, *journalPath, st.Skipped)
		} else if !errors.Is(err, os.ErrNotExist) {
			log.Fatalf("open journal: %v", err)
		}
		f, err := os.OpenFile(*journalPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("append journal: %v", err)
		}
		journal = beacon.NewJournal(f)
		defer journal.Close()
	}
	var sink beacon.Sink = store
	if journal != nil {
		sink = beacon.Tee(store, journal)
	}
	// Stamp receive time onto beacons that arrive without one (browsers
	// with broken clocks, legacy pixels).
	sink = &beacon.StampSink{Next: sink, Now: time.Now}
	server := beacon.NewServerWithSink(store, sink)
	server.Mount("GET /v1/breakdown", analytics.Handler(store))
	server.Mount("GET /v1/timeseries", analytics.Handler(store))
	var handler http.Handler = server
	if *ingestRate > 0 {
		handler = beacon.NewRateLimiter(handler, *ingestRate, *ingestBurst)
	}
	var guard *beacon.OverloadGuard
	if journal != nil && *shedPending > 0 {
		threshold := *shedPending
		guard = beacon.NewOverloadGuard(handler, func() bool {
			return journal.Pending() >= threshold
		}, *retryAfter)
		server.AddHealthMetric("shed", guard.Shed)
		server.AddHealthMetric("journal_pending", func() int64 { return int64(journal.Pending()) })
		handler = guard
	}
	if *statsKey != "" {
		handler = beacon.AuthStats(handler, *statsKey)
	}
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}

	if *logEvery > 0 {
		go func() {
			ticker := time.NewTicker(*logEvery)
			defer ticker.Stop()
			for range ticker.C {
				if journal != nil {
					if err := journal.Flush(); err != nil {
						log.Printf("journal flush: %v", err)
					}
				}
				log.Printf("events=%d accepted=%d rejected=%d campaigns=%d",
					store.Len(), server.Accepted(), server.Rejected(), len(store.CampaignIDs()))
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("qtag-server listening on %s", *addr)
		errCh <- httpServer.ListenAndServe()
	}()

	select {
	case <-ctx.Done():
		log.Print("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpServer.Shutdown(shutdownCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("serve: %v", err)
		}
	}
	// Graceful drain: every in-flight request has completed (Shutdown
	// returned), so flush + fsync + close the journal before the final
	// log line — a SIGTERM must not tear the last beacons. Close is
	// idempotent; the deferred Close becomes a no-op.
	if journal != nil {
		if err := journal.Close(); err != nil {
			log.Printf("journal close: %v", err)
		}
	}
	shed := int64(0)
	if guard != nil {
		shed = guard.Shed()
	}
	log.Printf("final: events=%d accepted=%d rejected=%d shed=%d", store.Len(), server.Accepted(), server.Rejected(), shed)
}

// Command qtag-layout reproduces Figure 2 (§4.1): the theoretical error
// of the X, dice and + monitoring-pixel layouts in measuring an ad's
// viewable area, for pixel counts from 9 to 60 under the three sliding
// scenarios.
//
// Usage:
//
//	qtag-layout [-steps 200] [-w 300] [-h 250] [-per-scenario]
package main

import (
	"flag"
	"fmt"

	"qtag/internal/geom"
	"qtag/internal/layouteval"
	"qtag/internal/qtag"
	"qtag/internal/report"
)

func main() {
	steps := flag.Int("steps", 200, "slide positions per scenario")
	w := flag.Float64("w", 300, "creative width")
	h := flag.Float64("h", 250, "creative height")
	perScenario := flag.Bool("per-scenario", false, "print each scenario separately instead of the average")
	plot := flag.Bool("plot", false, "render the averaged curves as an ASCII chart")
	flag.Parse()

	cfg := layouteval.Config{Size: geom.Size{W: *w, H: *h}, Steps: *steps}
	points := layouteval.Sweep(cfg, nil)

	fmt.Printf("Figure 2 — mean viewable-area error, %gx%g creative, %d slide steps\n\n", *w, *h, *steps)
	if *perScenario {
		for _, sc := range layouteval.Scenarios() {
			fmt.Printf("scenario: %v\n", sc)
			printCurves(points, sc)
			fmt.Println()
		}
		return
	}
	fmt.Println("average over the three scenarios:")
	printCurves(points)

	if *plot {
		var series []report.SeriesData
		for _, l := range qtag.Layouts() {
			xs, ys := layouteval.Curve(points, l)
			series = append(series, report.SeriesData{Name: l.String(), Xs: xs, Ys: ys})
		}
		fmt.Println()
		fmt.Print(report.Plot("mean error vs pixel count", series, 56, 14))
	}

	// The paper's trade-off point.
	for _, l := range qtag.Layouts() {
		xs, ys := layouteval.Curve(points, l)
		for i, n := range xs {
			if n == 25 {
				fmt.Printf("\n%-5v at 25 pixels: %.4f", l, ys[i])
			}
		}
	}
	fmt.Println("\n\n(25 pixels in the X layout is the paper's recommended trade-off)")
}

func printCurves(points []layouteval.Point, scenarios ...layouteval.Scenario) {
	headers := []string{"pixels", "X", "dice", "+"}
	var xs []int
	curves := map[qtag.Layout][]float64{}
	for _, l := range qtag.Layouts() {
		x, y := layouteval.Curve(points, l, scenarios...)
		xs = x
		curves[l] = y
	}
	rows := make([][]string, 0, len(xs))
	for i, n := range xs {
		rows = append(rows, []string{
			fmt.Sprint(n),
			fmt.Sprintf("%.4f", curves[qtag.LayoutX][i]),
			fmt.Sprintf("%.4f", curves[qtag.LayoutDice][i]),
			fmt.Sprintf("%.4f", curves[qtag.LayoutPlus][i]),
		})
	}
	fmt.Print(report.Table(headers, rows))
}

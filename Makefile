# Developer / CI entry points. `make ci` is what a pipeline should run:
# build, vet, and the full test suite under the race detector (the
# beacon drain goroutine, circuit breaker, and journal are concurrency
# hot spots — plain `go test` is not enough).

GO ?= go

.PHONY: all build vet test race bench ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

ci: build vet race

# Developer / CI entry points. `make ci` is what a pipeline should run:
# build, vet, the full test suite under the race detector (the beacon
# drain goroutine, circuit breaker, and journal are concurrency hot
# spots — plain `go test` is not enough), and the coverage gate.

GO ?= go

# Build version stamped into qtag_build_info (and probe User-Agents) via
# the linker: git describe when available, "dev" otherwise.
VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)
LDFLAGS = -ldflags "-X qtag/internal/version.Version=$(VERSION)"

# Total statement coverage must not fall below the seed repository's
# baseline. Raise the floor when coverage improves; never lower it.
COVER_FLOOR ?= 82.0
COVER_PROFILE ?= coverage.out

# Pinned linter versions: `go run pkg@version` gives hermetic, lockfile-
# free pinning — bump deliberately, never track latest.
STATICCHECK ?= honnef.co/go/tools/cmd/staticcheck@2025.1.1
GOVULNCHECK ?= golang.org/x/vuln/cmd/govulncheck@v1.1.4

# Where bench-gate writes the fresh benchmark run it compares against
# the committed BENCH_PR10.json baseline.
BENCH_FRESH ?= bench-fresh.json

# The allocation gate: the codec/key benchmarks whose allocs/op are
# deterministic enough to gate exactly (JSON and map benches vary across
# Go versions and are deliberately excluded), the committed baseline,
# and where the fresh run lands.
ALLOC_BENCH ?= BenchmarkBinaryCodec|BenchmarkEventKey
ALLOC_BASELINE ?= ALLOC_BASELINE.txt
ALLOC_FRESH ?= alloc-fresh.txt

.PHONY: all build vet test race bench cover chaos cluster-chaos trace-chaos overload-chaos fraud-chaos soak fuzz-smoke lint bench-gate alloc-gate alloc-baseline ci

all: ci

build:
	$(GO) build $(LDFLAGS) ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Ingest benchmarks: microbenchmarks for the sharded store, the WAL
# group committer and the binary beacon codec, then the end-to-end
# shard-scaling ladder (full HTTP server, WAL on the request path,
# fsync=always, JSON and binary rungs) written to BENCH_PR10.json.
bench:
	$(GO) test -run='^$$' -bench='BenchmarkStore|BenchmarkWALAppend|BenchmarkBinaryCodec|BenchmarkEventKey' -benchmem ./internal/beacon
	$(GO) run ./cmd/qtag-stress -load -workers 32 -events 8000 \
		-group-commit-max-wait 500us -bench-out BENCH_PR10.json

# Crash-safety sweep: the WAL, the crash-point harness, and the
# durability layer's torn-write / page-cache-loss / bit-rot / ENOSPC
# recovery tests, under the race detector.
chaos:
	$(GO) test -race -run 'Crash|Torn|Quarantine|ENOSPC|Snapshot|Recover|Durable|Flip' \
		./internal/wal/... ./internal/faults/... ./internal/beacon/...

# Cluster chaos: a 3-node in-process cluster (real HTTP servers, real
# WALs, real hint journals) through the whole-node kill/restart sweep,
# partition heal, federated degradation, and fault-injected forwarding
# suites — all under the race detector. Proves the cluster ack
# contract: acked-by-any-live-node ⊆ recovered-cluster-wide, zero
# duplicates, including hinted-handoff replay.
cluster-chaos:
	$(GO) test -race -count=1 -run 'TestCluster|TestForwarding|TestHintLog' \
		./internal/cluster/...

# Trace-propagation chaos: the same 3-node harness asserts every acked
# beacon's distributed trace is ONE connected tree — no orphan spans, no
# duplicate span IDs, a store.apply leaf — across retry storms,
# handoff-then-drain, and same-address restarts, under the race
# detector. Part of `make ci`: tracing that silently drops context under
# faults is worse than no tracing.
trace-chaos:
	$(GO) test -race -count=1 -run 'TestTracePropagation' \
		./internal/cluster/...

# Overload chaos: the 3-node harness under a 10× concurrency ramp with
# concurrent partition-heal drain storms and /report + /debug hammers,
# under the race detector. Proves the admission contract: zero
# acked-beacon loss, goodput held within a fixed band of baseline,
# low-priority classes shed first, and every node back to /readyz 200
# within a bounded window once the load subsides.
overload-chaos:
	$(GO) test -race -count=1 -run 'TestOverload' ./internal/cluster/...

# Fraud-detection chaos: the adversarial actor scenarios through the
# full HTTP ingest path, scored against the lifecycle-tracer oracle
# with per-scenario precision/recall floors; detector equivalence
# (order-insensitive, concurrent, WAL-crash-recovery) and the
# mid-campaign server restart that must not move a single score — all
# under the race detector. See DESIGN.md §15.
fraud-chaos:
	$(GO) test -race -count=1 -run 'TestFraud|TestDetect|TestTornWALTail|Actor|TestFaultDuplicate' \
		./internal/stress/... ./internal/detect/... ./internal/campaign/...

# Concurrency soak: the sharded store + group-commit WAL driven through
# the full HTTP server by concurrent clients, with store/WAL/counter
# reconciliation, plus the sharded-vs-seed and group-commit-vs-per-record
# equivalence property tests — all under the race detector.
soak:
	$(GO) test -race -count=1 -run 'Soak|Equivalence|ShardsRounding' \
		./internal/beacon/... ./internal/stress/... ./internal/aggregate/...

# Ten seconds of fuzzing each on the WAL record codec, the ingest
# handler, and the fraud detector's observe path — enough to catch a
# framing, checksum, batch-atomicity, or score-bound regression without
# stalling the pipeline. (One -fuzz pattern per invocation: go test
# rejects fuzzing multiple targets at once.)
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzWALRecord -fuzztime=10s ./internal/beacon
	$(GO) test -run='^$$' -fuzz=FuzzHandleEvents -fuzztime=10s ./internal/beacon
	$(GO) test -run='^$$' -fuzz=FuzzBinaryCodec -fuzztime=10s ./internal/beacon
	$(GO) test -run='^$$' -fuzz=FuzzDetectObserve -fuzztime=10s ./internal/detect

cover:
	$(GO) test -coverprofile=$(COVER_PROFILE) ./...
	@total=$$($(GO) tool cover -func=$(COVER_PROFILE) | awk '/^total:/ { gsub(/%/, "", $$3); print $$3 }'); \
	echo "total coverage: $$total% (floor: $(COVER_FLOOR)%)"; \
	awk -v got="$$total" -v floor="$(COVER_FLOOR)" 'BEGIN { exit (got + 0 < floor + 0) ? 1 : 0 }' \
		|| { echo "FAIL: coverage $$total% is below the floor $(COVER_FLOOR)%"; exit 1; }

# Static analysis + known-vulnerability scan, both version-pinned above.
# `go run pkg@version` downloads on first use (cached afterwards), so an
# air-gapped checkout that has never fetched the tools skips with a
# warning instead of failing on the download — CI always has the network
# and therefore always enforces.
lint:
	@if $(GO) run $(STATICCHECK) -version >/dev/null 2>&1; then \
		echo "staticcheck:"; $(GO) run $(STATICCHECK) ./...; \
	else \
		echo "WARN: skipping staticcheck ($(STATICCHECK) not fetchable — offline?)"; \
	fi
	@if $(GO) run $(GOVULNCHECK) -version >/dev/null 2>&1; then \
		echo "govulncheck:"; $(GO) run $(GOVULNCHECK) ./...; \
	else \
		echo "WARN: skipping govulncheck ($(GOVULNCHECK) not fetchable — offline?)"; \
	fi

# Throughput regression gate: re-run the shard-scaling benchmark ladder
# and fail if any sampling-off non-overload rung lost more than 20%
# events/sec against the committed BENCH_PR10.json baseline (traced and
# overload rungs are reported, not gated). Benchmarks are noisy on
# shared runners, so this runs as a scheduled/manual CI job, not per-PR;
# the committed baseline is only ever updated deliberately (make bench).
bench-gate:
	$(GO) run ./cmd/qtag-stress -load -workers 32 -events 8000 \
		-group-commit-max-wait 500us -bench-out $(BENCH_FRESH)
	$(GO) run ./scripts/benchgate.go -baseline BENCH_PR10.json -fresh $(BENCH_FRESH)

# Allocation regression gate — blocking, per-PR. Unlike nanoseconds,
# allocs/op is deterministic (for a given Go version), so a fixed
# -benchtime=1000x run is cheap and exact: any benchmark whose allocs/op
# rises above the committed ALLOC_BASELINE.txt fails the build. This is
# what keeps the zero-allocation decode path at zero.
alloc-gate:
	$(GO) test -run='^$$' -bench='$(ALLOC_BENCH)' -benchmem -benchtime=1000x -count=1 \
		./internal/beacon > $(ALLOC_FRESH) || { cat $(ALLOC_FRESH); exit 1; }
	@cat $(ALLOC_FRESH)
	$(GO) run ./scripts/benchgate.go -allocs -baseline $(ALLOC_BASELINE) -fresh $(ALLOC_FRESH)

# Deliberately refresh the committed allocation baseline (review the
# diff before committing — an unexplained increase is a regression, not
# a new baseline).
alloc-baseline:
	$(GO) test -run='^$$' -bench='$(ALLOC_BENCH)' -benchmem -benchtime=1000x -count=1 \
		./internal/beacon > $(ALLOC_BASELINE)
	@cat $(ALLOC_BASELINE)

# The blocking pipeline: correctness, analysis, coverage, crash-safety,
# trace propagation, allocation regressions. soak and fuzz-smoke run as
# a separate non-blocking CI job (see .github/workflows/ci.yml);
# bench-gate is scheduled/manual only.
ci: build vet lint race cover chaos trace-chaos alloc-gate

# Developer / CI entry points. `make ci` is what a pipeline should run:
# build, vet, the full test suite under the race detector (the beacon
# drain goroutine, circuit breaker, and journal are concurrency hot
# spots — plain `go test` is not enough), and the coverage gate.

GO ?= go

# Total statement coverage must not fall below the seed repository's
# baseline. Raise the floor when coverage improves; never lower it.
COVER_FLOOR ?= 81.0
COVER_PROFILE ?= coverage.out

.PHONY: all build vet test race bench cover chaos soak fuzz-smoke ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Ingest benchmarks: microbenchmarks for the sharded store and the WAL
# group committer, then the end-to-end shard-scaling ladder (full HTTP
# server, WAL on the request path, fsync=always) written to BENCH_PR4.json.
bench:
	$(GO) test -run='^$$' -bench='BenchmarkStore|BenchmarkWALAppend' -benchmem ./internal/beacon
	$(GO) run ./cmd/qtag-stress -load -workers 32 -events 8000 \
		-group-commit-max-wait 500us -bench-out BENCH_PR4.json

# Crash-safety sweep: the WAL, the crash-point harness, and the
# durability layer's torn-write / page-cache-loss / bit-rot / ENOSPC
# recovery tests, under the race detector.
chaos:
	$(GO) test -race -run 'Crash|Torn|Quarantine|ENOSPC|Snapshot|Recover|Durable|Flip' \
		./internal/wal/... ./internal/faults/... ./internal/beacon/...

# Concurrency soak: the sharded store + group-commit WAL driven through
# the full HTTP server by concurrent clients, with store/WAL/counter
# reconciliation, plus the sharded-vs-seed and group-commit-vs-per-record
# equivalence property tests — all under the race detector.
soak:
	$(GO) test -race -count=1 -run 'Soak|Equivalence|ShardsRounding' \
		./internal/beacon/... ./internal/stress/...

# Ten seconds of fuzzing each on the WAL record codec and the ingest
# handler — enough to catch a framing, checksum, or batch-atomicity
# regression without stalling the pipeline. (One -fuzz pattern per
# invocation: go test rejects fuzzing multiple targets at once.)
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzWALRecord -fuzztime=10s ./internal/beacon
	$(GO) test -run='^$$' -fuzz=FuzzHandleEvents -fuzztime=10s ./internal/beacon

cover:
	$(GO) test -coverprofile=$(COVER_PROFILE) ./...
	@total=$$($(GO) tool cover -func=$(COVER_PROFILE) | awk '/^total:/ { gsub(/%/, "", $$3); print $$3 }'); \
	echo "total coverage: $$total% (floor: $(COVER_FLOOR)%)"; \
	awk -v got="$$total" -v floor="$(COVER_FLOOR)" 'BEGIN { exit (got + 0 < floor + 0) ? 1 : 0 }' \
		|| { echo "FAIL: coverage $$total% is below the floor $(COVER_FLOOR)%"; exit 1; }

ci: build vet race cover soak chaos fuzz-smoke

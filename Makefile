# Developer / CI entry points. `make ci` is what a pipeline should run:
# build, vet, the full test suite under the race detector (the beacon
# drain goroutine, circuit breaker, and journal are concurrency hot
# spots — plain `go test` is not enough), and the coverage gate.

GO ?= go

# Total statement coverage must not fall below the seed repository's
# baseline. Raise the floor when coverage improves; never lower it.
COVER_FLOOR ?= 81.0
COVER_PROFILE ?= coverage.out

.PHONY: all build vet test race bench cover chaos fuzz-smoke ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# Crash-safety sweep: the WAL, the crash-point harness, and the
# durability layer's torn-write / page-cache-loss / bit-rot / ENOSPC
# recovery tests, under the race detector.
chaos:
	$(GO) test -race -run 'Crash|Torn|Quarantine|ENOSPC|Snapshot|Recover|Durable|Flip' \
		./internal/wal/... ./internal/faults/... ./internal/beacon/...

# Ten seconds of fuzzing on the WAL record codec — enough to catch a
# framing or checksum regression without stalling the pipeline.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzWALRecord -fuzztime=10s ./internal/beacon

cover:
	$(GO) test -coverprofile=$(COVER_PROFILE) ./...
	@total=$$($(GO) tool cover -func=$(COVER_PROFILE) | awk '/^total:/ { gsub(/%/, "", $$3); print $$3 }'); \
	echo "total coverage: $$total% (floor: $(COVER_FLOOR)%)"; \
	awk -v got="$$total" -v floor="$(COVER_FLOOR)" 'BEGIN { exit (got + 0 < floor + 0) ? 1 : 0 }' \
		|| { echo "FAIL: coverage $$total% is below the floor $(COVER_FLOOR)%"; exit 1; }

ci: build vet race cover chaos fuzz-smoke

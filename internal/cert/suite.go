package cert

import (
	"fmt"
	"sort"
	"strings"

	"qtag/internal/browser"
	"qtag/internal/simrand"
	"qtag/internal/stats"
)

// SuiteConfig sizes the certification matrix run.
type SuiteConfig struct {
	// Seed drives the automation-race randomness.
	Seed uint64
	// AutomatedReps is the repetition count for automatable tests (the
	// paper uses 500).
	AutomatedReps int
	// ManualReps is the repetition count for test 6 (the paper uses 10).
	ManualReps int
	// FlakeProbability overrides the automation race probability; 0
	// selects webdriver's calibrated default.
	FlakeProbability float64
	// Profiles overrides the browser–OS matrix (defaults to the six
	// certification profiles).
	Profiles []browser.Profile
}

func (c SuiteConfig) withDefaults() SuiteConfig {
	if c.AutomatedReps == 0 {
		c.AutomatedReps = 500
	}
	if c.ManualReps == 0 {
		c.ManualReps = 10
	}
	if len(c.Profiles) == 0 {
		c.Profiles = browser.CertificationProfiles()
	}
	return c
}

// CellKey identifies one cell of the certification matrix.
type CellKey struct {
	Test    TestType
	Format  Format
	Profile string
}

// SuiteReport aggregates a certification matrix run.
type SuiteReport struct {
	// Cells holds pass counts per matrix cell.
	Cells map[CellKey]*stats.Rate
	// PerTest holds pass counts per test type across all cells.
	PerTest map[TestType]*stats.Rate
	// Total is the overall pass rate (the paper reports 93.4 %).
	Total stats.Rate
	// FlakedRuns counts runs suppressed by the automation race.
	FlakedRuns int
}

// RunSuite executes the full certification matrix.
func RunSuite(cfg SuiteConfig) *SuiteReport {
	cfg = cfg.withDefaults()
	rng := simrand.New(cfg.Seed)
	rep := &SuiteReport{
		Cells:   make(map[CellKey]*stats.Rate),
		PerTest: make(map[TestType]*stats.Rate),
	}
	for _, test := range AllTests() {
		for _, format := range []Format{FormatBanner, FormatVideo} {
			for _, prof := range cfg.Profiles {
				runner := &Runner{
					Automated:        !test.Manual(),
					FlakeProbability: cfg.FlakeProbability,
					RNG:              rng.Fork(fmt.Sprintf("%d-%d-%s", test, format, prof.Name)),
				}
				reps := cfg.AutomatedReps
				if test.Manual() {
					reps = cfg.ManualReps
				}
				key := CellKey{Test: test, Format: format, Profile: prof.Name}
				cell := &stats.Rate{}
				rep.Cells[key] = cell
				for i := 0; i < reps; i++ {
					res := runner.Run(test, format, prof)
					cell.Observe(res.Pass)
					perTest := rep.PerTest[test]
					if perTest == nil {
						perTest = &stats.Rate{}
						rep.PerTest[test] = perTest
					}
					perTest.Observe(res.Pass)
					rep.Total.Observe(res.Pass)
					if res.Outcome.Flaked {
						rep.FlakedRuns++
					}
				}
			}
		}
	}
	return rep
}

// Accuracy returns the overall fraction of correct runs.
func (r *SuiteReport) Accuracy() float64 { return r.Total.Value() }

// FailuresOutsideRacyTests returns the number of failed runs in test
// types other than 4 and 5 — the paper observed zero.
func (r *SuiteReport) FailuresOutsideRacyTests() int {
	n := 0
	for t, rate := range r.PerTest {
		if t == TestWindowOffScreen || t == TestPageScrolled {
			continue
		}
		n += rate.Total - rate.Hits
	}
	return n
}

// String renders the report as the Table 1 result summary.
func (r *SuiteReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "certification runs: %d, accuracy: %.1f%%, flaked: %d\n",
		r.Total.Total, r.Total.Value()*100, r.FlakedRuns)
	tests := make([]TestType, 0, len(r.PerTest))
	for t := range r.PerTest {
		tests = append(tests, t)
	}
	sort.Slice(tests, func(i, j int) bool { return tests[i] < tests[j] })
	for _, t := range tests {
		rate := r.PerTest[t]
		fmt.Fprintf(&sb, "  test %d: %s\n", int(t), rate)
	}
	return sb.String()
}

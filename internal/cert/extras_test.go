package cert

import (
	"testing"

	"qtag/internal/browser"
)

// TestRandomPlacementAccuracy is the §4.3 in-view accuracy analysis,
// scaled down for the unit suite (the full 10,000-placement run lives in
// the benchmark and cmd/qtag-cert). The paper reports a perfect score.
func TestRandomPlacementAccuracy(t *testing.T) {
	res := RunRandomPlacements(400, 11)
	if res.Total != 400 {
		t.Fatalf("total = %d", res.Total)
	}
	if res.Correct != res.Total {
		t.Errorf("placement accuracy %s; want all correct", res)
	}
	// The sweep must actually cover both classes.
	if res.InViewGT == 0 || res.OutViewGT == 0 {
		t.Errorf("degenerate ground-truth split: %s", res)
	}
}

func TestMobileInApp(t *testing.T) {
	for _, prof := range []browser.Profile{
		browser.AndroidWebViewProfile(true),
		browser.IOSWebViewProfile(false),
	} {
		results := RunMobileInApp(prof)
		if len(results) != 2 {
			t.Fatalf("want 2 creative sizes, got %d", len(results))
		}
		for _, r := range results {
			if !r.Measured {
				t.Errorf("%s %v: Q-Tag should deploy in app webviews", r.Profile, r.AdSize)
			}
			if !r.InView {
				t.Errorf("%s %v: in-view ad should be reported viewable", r.Profile, r.AdSize)
			}
		}
	}
}

func TestAdblockSuppression(t *testing.T) {
	results := RunAdblockCheck(browser.CertificationProfiles()[1], true, 3)
	if len(results) != 3 {
		t.Fatalf("want 3 ad types, got %d", len(results))
	}
	for _, r := range results {
		if r.Blocked != r.Attempts {
			t.Errorf("%s: %d/%d blocked; adblock must block everything", r.AdType, r.Blocked, r.Attempts)
		}
		if r.TagsDeployed != 0 || r.EventsEmitted != 0 {
			t.Errorf("%s: tags=%d events=%d; nothing may deploy", r.AdType, r.TagsDeployed, r.EventsEmitted)
		}
	}
}

func TestBraveSuppression(t *testing.T) {
	results := RunAdblockCheck(browser.BraveProfile(), false, 5)
	for _, r := range results {
		if r.Blocked != r.Attempts || r.EventsEmitted != 0 {
			t.Errorf("Brave %s: blocked %d/%d events %d", r.AdType, r.Blocked, r.Attempts, r.EventsEmitted)
		}
	}
}

func TestPrivacyBrowsers(t *testing.T) {
	for _, prof := range browser.PrivacyProfiles() {
		res := RunPrivacyBrowserCheck(prof)
		if !res.CookiesBlocked {
			t.Errorf("%s should block third-party cookies", prof.Name)
		}
		if !res.DeliveredNormally || !res.QTagMeasured || !res.QTagInView {
			t.Errorf("%s: Q-Tag must operate normally: %+v", prof.Name, res)
		}
	}
}

func BenchmarkCertificationScenario(b *testing.B) {
	runner := &Runner{Automated: false}
	prof := browser.CertificationProfiles()[1]
	for i := 0; i < b.N; i++ {
		runner.Run(TestPageScrolled, FormatBanner, prof)
	}
}

package cert

import (
	"fmt"
	"sort"
	"strings"

	"qtag/internal/report"
)

// CellTable renders the full certification matrix as a text table: one
// row per (test, format), one column per browser–OS profile — the shape
// of ABC's published certification reports.
func (r *SuiteReport) CellTable() string {
	// Collect the profile columns in stable order.
	profileSet := map[string]bool{}
	for key := range r.Cells {
		profileSet[key.Profile] = true
	}
	profiles := make([]string, 0, len(profileSet))
	for p := range profileSet {
		profiles = append(profiles, p)
	}
	sort.Strings(profiles)

	headers := append([]string{"Test", "Format"}, profiles...)
	var rows [][]string
	for _, test := range AllTests() {
		for _, format := range []Format{FormatBanner, FormatVideo} {
			row := []string{fmt.Sprintf("(%d)", int(test)), format.String()}
			present := false
			for _, prof := range profiles {
				cell, ok := r.Cells[CellKey{Test: test, Format: format, Profile: prof}]
				if !ok || cell.Total == 0 {
					row = append(row, "-")
					continue
				}
				present = true
				row = append(row, fmt.Sprintf("%d/%d", cell.Hits, cell.Total))
			}
			if present {
				rows = append(rows, row)
			}
		}
	}
	return report.Table(headers, rows)
}

// FailureAnalysis summarises where and how runs failed, mirroring the
// paper's §4.2 discussion ("the reported 6.6% wrong results occur in
// tests type (4) and (5) … we are not able to register any event").
func (r *SuiteReport) FailureAnalysis() string {
	var sb strings.Builder
	totalFailures := r.Total.Total - r.Total.Hits
	fmt.Fprintf(&sb, "failures: %d of %d runs (%.1f%%)\n",
		totalFailures, r.Total.Total, 100*float64(totalFailures)/float64(max(1, r.Total.Total)))
	if totalFailures == 0 {
		return sb.String()
	}
	fmt.Fprintf(&sb, "  automation-race suppressed sessions: %d\n", r.FlakedRuns)
	fmt.Fprintf(&sb, "  failures outside racy tests (4/5):   %d\n", r.FailuresOutsideRacyTests())
	for _, t := range AllTests() {
		rate, ok := r.PerTest[t]
		if !ok {
			continue
		}
		if fails := rate.Total - rate.Hits; fails > 0 {
			fmt.Fprintf(&sb, "  test (%d): %d failures over %d runs — %s\n",
				int(t), fails, rate.Total, failureMode(t))
		}
	}
	return sb.String()
}

func failureMode(t TestType) string {
	if t == TestWindowOffScreen || t == TestPageScrolled {
		return "no events registered (WebDriver command race; manual reruns pass)"
	}
	return "unexpected — investigate the measurement solution"
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package cert

import (
	"errors"
	"fmt"
	"time"

	"qtag/internal/adserve"
	"qtag/internal/adtag"
	"qtag/internal/beacon"
	"qtag/internal/browser"
	"qtag/internal/dom"
	"qtag/internal/dsp"
	"qtag/internal/geom"
	"qtag/internal/qtag"
	"qtag/internal/simclock"
	"qtag/internal/simrand"
	"qtag/internal/viewability"
)

// PlacementResult is the outcome of the §4.3 random-placement analysis:
// N placements of a double cross-domain iframe, Q-Tag's in-view decision
// checked against exact geometry. The paper reports 10,000/10,000.
type PlacementResult struct {
	Total     int
	Correct   int
	Mismatch  int
	InViewGT  int // placements whose ground truth is "in view"
	OutViewGT int
}

// Accuracy returns Correct/Total.
func (p PlacementResult) Accuracy() float64 {
	if p.Total == 0 {
		return 0
	}
	return float64(p.Correct) / float64(p.Total)
}

// String implements fmt.Stringer.
func (p PlacementResult) String() string {
	return fmt.Sprintf("%d/%d correct (%.2f%%; ground truth %d in-view / %d out)",
		p.Correct, p.Total, p.Accuracy()*100, p.InViewGT, p.OutViewGT)
}

// RunRandomPlacements places a double-iframed ad at n random positions of
// the testing website (10-pixel grid with a 3-pixel offset, covering
// wholly visible, partially visible and out-of-view cases) and compares
// Q-Tag's in-view decision against the exact-geometry oracle.
func RunRandomPlacements(n int, seed uint64) PlacementResult {
	rng := simrand.New(seed)
	res := PlacementResult{Total: n}
	const (
		vpW, vpH = 1280.0, 720.0
		adW, adH = 300.0, 250.0
	)
	for i := 0; i < n; i++ {
		// Positions on the testing website: x within the page width,
		// y anywhere from above the fold to deep below it.
		x := float64(rng.Intn(int(vpW-adW)/10))*10 + 3
		y := float64(rng.Intn(200))*10 + 3 // 3 .. 1993

		clock := simclock.New()
		b := browser.New(clock, browser.Options{Profile: browser.CertificationProfiles()[1]})
		w := b.OpenWindow(geom.Point{}, geom.Size{W: vpW, H: vpH})
		doc := dom.NewDocument(pubOrigin, geom.Size{W: vpW, H: 4000})
		page := w.ActiveTab().Navigate(doc)
		outer := doc.Root().AttachIframe(exchangeOrigin, geom.Rect{X: x, Y: y, W: adW, H: adH})
		inner := outer.Root().AttachIframe(dspOrigin, geom.Rect{X: 0, Y: 0, W: adW, H: adH})
		creative := inner.Root().AppendChild("creative", geom.Rect{X: 0, Y: 0, W: adW, H: adH})

		store := beacon.NewStore()
		rt := adtag.NewRuntime(page, creative, store, adtag.Impression{
			ID: "p", CampaignID: "p", Format: viewability.Display,
		})
		if err := qtag.New(qtag.Config{}).Deploy(rt); err != nil {
			b.Close()
			continue
		}
		// Ground truth from exact geometry: ≥50% of the ad visible.
		truth := page.TrueVisibleFraction(creative) >= 0.5
		clock.Advance(2 * time.Second) // static exposure well past the 1s dwell
		got := store.InView("p", beacon.SourceQTag) > 0
		b.Close()

		if truth {
			res.InViewGT++
		} else {
			res.OutViewGT++
		}
		if got == truth {
			res.Correct++
		} else {
			res.Mismatch++
		}
	}
	return res
}

// MobileInAppResult is one §4.3 mobile in-app check.
type MobileInAppResult struct {
	Profile  string
	AdSize   geom.Size
	Measured bool
	InView   bool
}

// RunMobileInApp previews creatives inside an app webview (the paper uses
// Google's Creative Preview app) for the two creative sizes of the §5
// campaigns and reports whether Q-Tag measured them correctly.
func RunMobileInApp(prof browser.Profile) []MobileInAppResult {
	sizes := []geom.Size{{W: 300, H: 250}, {W: 320, H: 50}}
	var out []MobileInAppResult
	for _, size := range sizes {
		clock := simclock.New()
		b := browser.New(clock, browser.Options{Profile: prof})
		w := b.OpenWindow(geom.Point{}, geom.Size{W: 412, H: 800})
		doc := dom.NewDocument(pubOrigin, geom.Size{W: 412, H: 1600})
		page := w.ActiveTab().Navigate(doc)
		outer := doc.Root().AttachIframe(exchangeOrigin, geom.Rect{X: 20, Y: 120, W: size.W, H: size.H})
		inner := outer.Root().AttachIframe(dspOrigin, geom.Rect{X: 0, Y: 0, W: size.W, H: size.H})
		creative := inner.Root().AppendChild("creative", geom.Rect{X: 0, Y: 0, W: size.W, H: size.H})
		store := beacon.NewStore()
		rt := adtag.NewRuntime(page, creative, store, adtag.Impression{
			ID: "m", CampaignID: "m", Format: viewability.Display,
		})
		measured := qtag.New(qtag.Config{}).Deploy(rt) == nil
		clock.Advance(2 * time.Second)
		out = append(out, MobileInAppResult{
			Profile:  prof.Name,
			AdSize:   size,
			Measured: measured,
			InView:   store.InView("m", beacon.SourceQTag) > 0,
		})
		b.Close()
	}
	return out
}

// BlockerResult is the outcome of the §4.3 ad-blocker analysis for one ad
// type.
type BlockerResult struct {
	AdType        string
	Attempts      int
	Blocked       int
	TagsDeployed  int
	EventsEmitted int
}

// RunAdblockCheck attempts to deliver three ad types (display, large
// display, video) to 50 random slot positions each, in a browser with a
// content blocker, and verifies that neither the ad nor Q-Tag deploys.
// The same routine serves the Brave check by passing the Brave profile.
func RunAdblockCheck(prof browser.Profile, useExtension bool, seed uint64) []BlockerResult {
	rng := simrand.New(seed)
	types := []struct {
		name  string
		size  geom.Size
		video bool
	}{
		{"display", geom.Size{W: 300, H: 250}, false},
		{"large-display", geom.Size{W: 970, H: 250}, false},
		{"video", geom.Size{W: 640, H: 360}, true},
	}
	var out []BlockerResult
	for _, typ := range types {
		res := BlockerResult{AdType: typ.name, Attempts: 50}
		for i := 0; i < 50; i++ {
			clock := simclock.New()
			b := browser.New(clock, browser.Options{Profile: prof})
			if useExtension {
				b.SetAdBlockExtension(true)
			}
			w := b.OpenWindow(geom.Point{}, geom.Size{W: 1280, H: 720})
			doc := dom.NewDocument(pubOrigin, geom.Size{W: 1280, H: 4000})
			page := w.ActiveTab().Navigate(doc)
			slot := doc.Root().AppendChild("ad-slot", geom.Rect{
				X: float64(rng.Intn(900)), Y: float64(rng.Intn(3000)),
				W: typ.size.W, H: typ.size.H,
			})

			store := beacon.NewStore()
			exchange := adserve.NewExchange("appnexus")
			platform := dsp.New("sonata")
			platform.AddCampaign(&dsp.Campaign{
				ID: "ab-" + typ.name, BidCPM: 1,
				Creative: adserve.Creative{ID: typ.name, Size: typ.size, Video: typ.video},
				Tags:     []adtag.Tag{qtag.New(qtag.Config{})},
			})
			exchange.Register(platform)
			deliverer := &adserve.Deliverer{Exchange: exchange, ServerSink: store, TagSink: store}
			del, err := deliverer.Deliver(&adserve.SlotRequest{Page: page, Slot: slot})
			if errors.Is(err, adserve.ErrAdBlocked) {
				res.Blocked++
			} else if err == nil {
				res.TagsDeployed += len(del.Runtimes)
			}
			clock.Advance(2 * time.Second)
			res.EventsEmitted += store.Len()
			b.Close()
		}
		out = append(out, res)
	}
	return out
}

// PrivacyResult is the §4.3 privacy-enhanced-browser analysis for one
// profile.
type PrivacyResult struct {
	Profile           string
	CookiesBlocked    bool
	QTagMeasured      bool
	QTagInView        bool
	DeliveredNormally bool
}

// RunPrivacyBrowserCheck delivers an instrumented ad in a privacy-
// enhanced browser (third-party cookies blocked by default) and verifies
// Q-Tag operates normally — it is pure JavaScript and needs no cookies.
func RunPrivacyBrowserCheck(prof browser.Profile) PrivacyResult {
	clock := simclock.New()
	b := browser.New(clock, browser.Options{Profile: prof})
	defer b.Close()
	w := b.OpenWindow(geom.Point{}, geom.Size{W: 1280, H: 720})
	doc := dom.NewDocument(pubOrigin, geom.Size{W: 1280, H: 4000})
	page := w.ActiveTab().Navigate(doc)
	slot := doc.Root().AppendChild("ad-slot", geom.Rect{X: 200, Y: 100, W: 300, H: 250})

	store := beacon.NewStore()
	exchange := adserve.NewExchange("doubleclick")
	platform := dsp.New("sonata")
	platform.AddCampaign(&dsp.Campaign{
		ID: "privacy", BidCPM: 1,
		Creative: adserve.Creative{ID: "cr", Size: geom.Size{W: 300, H: 250}},
		Tags:     []adtag.Tag{qtag.New(qtag.Config{})},
	})
	exchange.Register(platform)
	deliverer := &adserve.Deliverer{Exchange: exchange, ServerSink: store, TagSink: store}
	del, err := deliverer.Deliver(&adserve.SlotRequest{Page: page, Slot: slot})
	clock.Advance(2 * time.Second)
	return PrivacyResult{
		Profile:           prof.Name,
		CookiesBlocked:    prof.BlocksThirdPartyCookies,
		QTagMeasured:      store.Loaded("privacy", beacon.SourceQTag) > 0,
		QTagInView:        store.InView("privacy", beacon.SourceQTag) > 0,
		DeliveredNormally: err == nil && del != nil && len(del.Runtimes) == 1,
	}
}

package cert

import (
	"math"
	"strings"
	"testing"
	"time"

	"qtag/internal/adserve"
	"qtag/internal/adtag"
	"qtag/internal/beacon"
	"qtag/internal/browser"
	"qtag/internal/dom"
	"qtag/internal/dsp"
	"qtag/internal/geom"
	"qtag/internal/qtag"
	"qtag/internal/simclock"
	"qtag/internal/simrand"
)

func TestTableOneMetadata(t *testing.T) {
	tests := AllTests()
	if len(tests) != 7 {
		t.Fatalf("want 7 tests, got %d", len(tests))
	}
	for _, tt := range tests {
		if tt.Description() == "" {
			t.Errorf("test %d missing description", int(tt))
		}
	}
	if TestType(99).Description() == "" {
		t.Error("unknown test should still describe itself")
	}
	// Expectations: 1–3 in-view only; 4–7 also out-of-view.
	for _, tt := range []TestType{TestCrossDomainIframes, TestBrowserResized, TestOutOfFocus} {
		if tt.ExpectsOutOfView() {
			t.Errorf("test %d must not expect out-of-view", int(tt))
		}
	}
	for _, tt := range []TestType{TestWindowOffScreen, TestPageScrolled, TestWindowObscured, TestTabObscured} {
		if !tt.ExpectsOutOfView() {
			t.Errorf("test %d must expect out-of-view", int(tt))
		}
	}
	if !TestWindowObscured.Manual() || TestPageScrolled.Manual() {
		t.Error("manual flags wrong")
	}
	if FormatBanner.String() != "banner" || FormatVideo.String() != "video" {
		t.Error("format names wrong")
	}
}

// TestEveryScenarioPassesWithoutAutomationFlakes runs the full 7×2×6
// matrix once per cell with flaking disabled: Q-Tag itself must pass all
// 84 scenarios (the paper's manual-rerun finding).
func TestEveryScenarioPassesWithoutAutomationFlakes(t *testing.T) {
	runner := &Runner{Automated: false} // manual: no flakes possible
	for _, test := range AllTests() {
		for _, format := range []Format{FormatBanner, FormatVideo} {
			for _, prof := range browser.CertificationProfiles() {
				res := runner.Run(test, format, prof)
				if !res.Pass {
					t.Errorf("test %d / %s / %s failed: %+v",
						int(test), format, prof.Name, res.Outcome)
				}
			}
		}
	}
}

func TestScenarioOutcomesDetailed(t *testing.T) {
	runner := &Runner{Automated: false}
	prof := browser.CertificationProfiles()[0]

	// Test 1 registers in-view but never out-of-view.
	res := runner.Run(TestCrossDomainIframes, FormatBanner, prof)
	if !res.Outcome.InView || res.Outcome.OutOfView {
		t.Errorf("test1 outcome = %+v", res.Outcome)
	}
	// Test 5 registers both.
	res = runner.Run(TestPageScrolled, FormatVideo, prof)
	if !res.Outcome.InView || !res.Outcome.OutOfView {
		t.Errorf("test5 video outcome = %+v", res.Outcome)
	}
	if !res.Outcome.Deployed || res.Outcome.Flaked {
		t.Errorf("manual run must deploy and never flake: %+v", res.Outcome)
	}
}

func TestAutomatedFlakeSuppressesAllEvents(t *testing.T) {
	runner := &Runner{Automated: true, FlakeProbability: 1, RNG: simrand.New(1)}
	res := runner.Run(TestWindowOffScreen, FormatBanner, browser.CertificationProfiles()[0])
	if !res.Outcome.Flaked {
		t.Fatal("run should have flaked with probability 1")
	}
	if res.Outcome.InView || res.Outcome.OutOfView {
		t.Error("flaked run must register no events")
	}
	if res.Pass {
		t.Error("flaked run must fail")
	}
	// Non-racy tests never flake even at probability 1.
	res = runner.Run(TestTabObscured, FormatBanner, browser.CertificationProfiles()[0])
	if res.Outcome.Flaked || !res.Pass {
		t.Errorf("tab test must not flake: %+v", res.Outcome)
	}
}

// TestCertificationAccuracy runs a scaled-down suite (the full 500-rep
// matrix lives in the benchmark and cmd/qtag-cert) and checks the paper's
// three findings: ≈93.4 % accuracy, failures confined to tests 4 and 5,
// and perfect manual results.
func TestCertificationAccuracy(t *testing.T) {
	rep := RunSuite(SuiteConfig{Seed: 7, AutomatedReps: 25, ManualReps: 4})
	wantRuns := 6*2*6*25 + 2*6*4
	if rep.Total.Total != wantRuns {
		t.Fatalf("total runs = %d, want %d", rep.Total.Total, wantRuns)
	}
	acc := rep.Accuracy()
	if math.Abs(acc-0.934) > 0.025 {
		t.Errorf("accuracy = %.3f, want ≈0.934", acc)
	}
	if n := rep.FailuresOutsideRacyTests(); n != 0 {
		t.Errorf("%d failures outside tests 4/5; the paper observed none", n)
	}
	if rep.PerTest[TestWindowObscured].Value() != 1 {
		t.Error("manual test 6 must pass 100%")
	}
	f45 := (rep.PerTest[TestWindowOffScreen].Total - rep.PerTest[TestWindowOffScreen].Hits) +
		(rep.PerTest[TestPageScrolled].Total - rep.PerTest[TestPageScrolled].Hits)
	if f45 != rep.FlakedRuns {
		t.Errorf("failures in tests 4/5 (%d) should equal flaked runs (%d)", f45, rep.FlakedRuns)
	}
	if rep.String() == "" {
		t.Error("report string empty")
	}
}

func TestSuiteDeterminism(t *testing.T) {
	a := RunSuite(SuiteConfig{Seed: 42, AutomatedReps: 5, ManualReps: 2})
	b := RunSuite(SuiteConfig{Seed: 42, AutomatedReps: 5, ManualReps: 2})
	if a.Total != b.Total || a.FlakedRuns != b.FlakedRuns {
		t.Error("same seed must reproduce identical results")
	}
	c := RunSuite(SuiteConfig{Seed: 43, AutomatedReps: 5, ManualReps: 2})
	_ = c // different seed may differ; just ensure it runs
}

func TestCellTableAndFailureAnalysis(t *testing.T) {
	rep := RunSuite(SuiteConfig{Seed: 3, AutomatedReps: 4, ManualReps: 2})
	table := rep.CellTable()
	for _, want := range []string{"(1)", "(7)", "banner", "video", "Chrome75-Win10", "4/4"} {
		if !strings.Contains(table, want) {
			t.Errorf("cell table missing %q:\n%s", want, table)
		}
	}
	analysis := rep.FailureAnalysis()
	if !strings.Contains(analysis, "failures:") {
		t.Errorf("analysis = %q", analysis)
	}
	// A flake-free run reports zero failures and stops there.
	clean := RunSuite(SuiteConfig{Seed: 3, AutomatedReps: 1, ManualReps: 1, FlakeProbability: 1e-12})
	if !strings.Contains(clean.FailureAnalysis(), "0 of") {
		t.Errorf("clean analysis = %q", clean.FailureAnalysis())
	}
}

// TestScenarioThroughFullDeliveryChain re-runs certification test 1 with
// the ad arriving via a real exchange auction instead of hand-built
// iframes: the delivered structure must measure identically.
func TestScenarioThroughFullDeliveryChain(t *testing.T) {
	clock := simclock.New()
	b := browser.New(clock, browser.Options{Profile: browser.CertificationProfiles()[1]})
	defer b.Close()
	w := b.OpenWindow(geom.Point{X: 100, Y: 100}, geom.Size{W: 1280, H: 720})
	doc := dom.NewDocument(pubOrigin, geom.Size{W: 1280, H: 6000})
	page := w.ActiveTab().Navigate(doc)
	slot := doc.Root().AppendChild("ad-slot", geom.Rect{X: 200, Y: 150, W: 300, H: 250})

	store := beacon.NewStore()
	platform := dsp.New("sonata")
	platform.AddCampaign(&dsp.Campaign{
		ID: "cert-e2e", BidCPM: 1,
		Creative: adserve.Creative{ID: "cr", Size: geom.Size{W: 300, H: 250}},
		Tags:     []adtag.Tag{qtag.New(qtag.Config{})},
	})
	exchange := adserve.NewExchange("appnexus")
	exchange.Register(platform)
	deliverer := &adserve.Deliverer{Exchange: exchange, ServerSink: store, TagSink: store}
	del, err := deliverer.Deliver(&adserve.SlotRequest{Page: page, Slot: slot})
	if err != nil {
		t.Fatal(err)
	}
	if len(del.CreativeElement.FrameChain()) != 2 {
		t.Fatal("expected the double cross-domain iframe structure")
	}
	clock.Advance(2 * time.Second)
	if store.InView("cert-e2e", beacon.SourceQTag) != 1 {
		t.Error("in-view missing through the full delivery chain")
	}
	// Scroll away (test 5's second half).
	page.ScrollTo(geom.Point{Y: 3000})
	clock.Advance(500 * time.Millisecond)
	outs := store.Count(func(k beacon.CounterKey) bool {
		return k.Type == beacon.EventOutOfView && k.Source == beacon.SourceQTag
	})
	if outs != 1 {
		t.Errorf("out-of-view count = %d", outs)
	}
}

// Package cert replicates the ABC/JICWEBS viewability certification tests
// the paper uses to validate Q-Tag (§4.2, Table 1), plus the additional
// §4.3 analyses (random placement accuracy, mobile in-app ads, ad
// blockers, privacy-enhanced browsers).
//
// The certification matrix is 7 test types × 2 ad formats (desktop banner
// and desktop video) × 6 browser–OS profiles. Six test types run
// automated (500 repetitions each in the paper); test 6 (window obscured
// by another application) cannot be automated and runs manually (10
// repetitions). The automation layer (package webdriver) reproduces the
// paper's Selenium artifact: a fraction of automated runs of the two
// "racy" test types (4: window moved off-screen, 5: page scrolled)
// register no events at all.
package cert

import (
	"fmt"
	"time"

	"qtag/internal/adtag"
	"qtag/internal/beacon"
	"qtag/internal/browser"
	"qtag/internal/dom"
	"qtag/internal/geom"
	"qtag/internal/qtag"
	"qtag/internal/simclock"
	"qtag/internal/simrand"
	"qtag/internal/viewability"
	"qtag/internal/webdriver"
)

// TestType enumerates the seven ABC certification tests of Table 1.
type TestType int

// The Table 1 tests.
const (
	// TestCrossDomainIframes (1): ad served within multiple cross-domain
	// iframes, meeting the viewability criteria.
	TestCrossDomainIframes TestType = iota + 1
	// TestBrowserResized (2): the browser is enlarged; the ad is always
	// in view.
	TestBrowserResized
	// TestOutOfFocus (3): the site loses focus but stays in view.
	TestOutOfFocus
	// TestWindowOffScreen (4): the window is moved off-screen after the
	// criteria are met.
	TestWindowOffScreen
	// TestPageScrolled (5): the page is scrolled after the criteria are
	// met.
	TestPageScrolled
	// TestWindowObscured (6): another application covers the browser
	// after the criteria are met. Manual-only.
	TestWindowObscured
	// TestTabObscured (7): the user switches to another tab after the
	// criteria are met.
	TestTabObscured
)

// AllTests returns the seven tests in Table 1 order.
func AllTests() []TestType {
	return []TestType{
		TestCrossDomainIframes, TestBrowserResized, TestOutOfFocus,
		TestWindowOffScreen, TestPageScrolled, TestWindowObscured, TestTabObscured,
	}
}

// Description returns the Table 1 description of the test.
func (t TestType) Description() string {
	switch t {
	case TestCrossDomainIframes:
		return "Ad served within multiple cross-domain iframes meeting the viewability standard criteria"
	case TestBrowserResized:
		return "The browser page is enlarged so that the ad is always in-view"
	case TestOutOfFocus:
		return "The site with the ad becomes out of focus but it is always in-view"
	case TestWindowOffScreen:
		return "The browser including an ad-space is moved off-screen after meeting the viewability criteria"
	case TestPageScrolled:
		return "The browser page including an ad-space is scrolled after the ad impression meets the viewability criteria"
	case TestWindowObscured:
		return "The user opens another app and the ad passes to background after it meets the viewability criteria"
	case TestTabObscured:
		return "The user switches to a new tab within the same browser after the ad impression meets the viewability criteria"
	default:
		return fmt.Sprintf("unknown test %d", int(t))
	}
}

// ExpectsOutOfView reports whether the correct result includes an
// out-of-view event (tests 4–7) in addition to the in-view event.
func (t TestType) ExpectsOutOfView() bool { return t >= TestWindowOffScreen }

// Manual reports whether the test cannot be automated (test 6).
func (t TestType) Manual() bool { return t == TestWindowObscured }

// Format is a certification ad format.
type Format int

// Formats certified by ABC.
const (
	// FormatBanner is a 300×250 desktop display banner.
	FormatBanner Format = iota
	// FormatVideo is a 640×360 desktop video ad.
	FormatVideo
)

// String implements fmt.Stringer.
func (f Format) String() string {
	if f == FormatVideo {
		return "video"
	}
	return "banner"
}

// Size returns the creative size for the format.
func (f Format) Size() geom.Size {
	if f == FormatVideo {
		return geom.Size{W: 640, H: 360}
	}
	return geom.Size{W: 300, H: 250}
}

// criteria returns the standard viewability criteria for the format.
func (f Format) criteria() viewability.Criteria {
	if f == FormatVideo {
		return viewability.StandardCriteria(viewability.Video)
	}
	return viewability.StandardCriteria(viewability.Display)
}

// Outcome records which events a run registered.
type Outcome struct {
	// Deployed reports whether the tag attached to the session at all.
	Deployed bool
	// InView reports an in-view event.
	InView bool
	// OutOfView reports an out-of-view event.
	OutOfView bool
	// Flaked reports that the automation race suppressed the session.
	Flaked bool
}

// RunResult is one certification run.
type RunResult struct {
	Test    TestType
	Format  Format
	Profile string
	Outcome Outcome
	// Pass reports whether the outcome matches Table 1's correct result.
	Pass bool
}

// Runner executes certification scenarios.
type Runner struct {
	// Automated selects WebDriver execution (with its race) over manual
	// execution.
	Automated bool
	// FlakeProbability overrides the automation race probability
	// (defaults to webdriver.DefaultFlakeProbability).
	FlakeProbability float64
	// RNG drives the flake draws; nil disables flaking.
	RNG *simrand.RNG
	// TagConfig overrides Q-Tag's configuration (zero value = paper
	// defaults). Used by the fps-threshold ablation.
	TagConfig qtag.Config
}

const (
	pubOrigin      = dom.Origin("https://testing-website.example")
	exchangeOrigin = dom.Origin("https://exchange.example")
	dspOrigin      = dom.Origin("https://dsp.example")
)

// Run executes one certification scenario and judges it against Table 1.
func (r *Runner) Run(test TestType, format Format, prof browser.Profile) RunResult {
	clock := simclock.New()
	b := browser.New(clock, browser.Options{Profile: prof})
	defer b.Close()

	// Initial window: on-screen, comfortably inside a 1920×1080 desktop.
	w := b.OpenWindow(geom.Point{X: 100, Y: 100}, geom.Size{W: 1280, H: 720})
	doc := dom.NewDocument(pubOrigin, geom.Size{W: 1280, H: 6000})
	page := w.ActiveTab().Navigate(doc)

	// The paper's setup: the creative inside two cross-domain iframes.
	size := format.Size()
	adPos := geom.Point{X: 200, Y: 150}
	outer := doc.Root().AttachIframe(exchangeOrigin, geom.Rect{X: adPos.X, Y: adPos.Y, W: size.W, H: size.H})
	inner := outer.Root().AttachIframe(dspOrigin, geom.Rect{X: 0, Y: 0, W: size.W, H: size.H})
	creative := inner.Root().AppendChild("creative", geom.Rect{X: 0, Y: 0, W: size.W, H: size.H})

	dwell := format.criteria().Dwell
	actAt := dwell + 700*time.Millisecond // after the criteria are met
	total := dwell + 2500*time.Millisecond

	script := buildScript(test, page, w, actAt)
	driver := webdriver.New(clock, r.RNG, r.Automated)
	if r.FlakeProbability > 0 {
		driver.FlakeProbability = r.FlakeProbability
	}
	flaked := driver.SessionFlakes(script)

	store := beacon.NewStore()
	var sink beacon.Sink = store
	if flaked {
		// The automation race wedged the tag injection: beacons go
		// nowhere because the tag never ran.
		sink = beacon.SinkFunc(func(beacon.Event) error { return nil })
	}
	fv := viewability.Display
	if format == FormatVideo {
		fv = viewability.Video
	}
	rt := adtag.NewRuntime(page, creative, sink, adtag.Impression{
		ID: "cert", CampaignID: "cert", Format: fv,
	})
	deployed := qtag.New(r.TagConfig).Deploy(rt) == nil && !flaked

	driver.Run(script, total)

	out := Outcome{
		Deployed:  deployed,
		InView:    store.InView("cert", beacon.SourceQTag) > 0,
		OutOfView: outOfViewCount(store) > 0,
		Flaked:    flaked,
	}
	pass := out.InView
	if test.ExpectsOutOfView() {
		pass = pass && out.OutOfView
	} else {
		pass = pass && !out.OutOfView
	}
	return RunResult{Test: test, Format: format, Profile: prof.Name, Outcome: out, Pass: pass}
}

func outOfViewCount(store *beacon.Store) int {
	return store.Count(func(k beacon.CounterKey) bool {
		return k.Type == beacon.EventOutOfView && k.Source == beacon.SourceQTag
	})
}

// buildScript translates a Table 1 test into a driver script.
func buildScript(test TestType, page *browser.Page, w *browser.Window, actAt time.Duration) webdriver.Script {
	switch test {
	case TestBrowserResized:
		// Enlarge mid-dwell; the ad stays in view throughout.
		return webdriver.Script{{
			At: 400 * time.Millisecond, Kind: webdriver.KindResize,
			Do: func() { w.Resize(geom.Size{W: 1400, H: 900}) },
		}}
	case TestOutOfFocus:
		return webdriver.Script{{
			At: 300 * time.Millisecond, Kind: webdriver.KindBlur,
			Do: func() { w.Blur() },
		}}
	case TestWindowOffScreen:
		return webdriver.Script{{
			At: actAt, Kind: webdriver.KindMoveWindow,
			Do: func() { w.MoveTo(geom.Point{X: 4000, Y: 4000}) },
		}}
	case TestPageScrolled:
		return webdriver.Script{{
			At: actAt, Kind: webdriver.KindScroll,
			Do: func() { page.ScrollTo(geom.Point{Y: 3000}) },
		}}
	case TestWindowObscured:
		return webdriver.Script{{
			At: actAt, Kind: webdriver.KindObscure,
			Do: func() { w.SetObscured(true) },
		}}
	case TestTabObscured:
		return webdriver.Script{{
			At: actAt, Kind: webdriver.KindSwitchTab,
			Do: func() { w.ActivateTab(w.NewTab()) },
		}}
	default: // TestCrossDomainIframes: no interaction
		return webdriver.Script{}
	}
}

package campaign

import (
	"testing"

	"qtag/internal/faults"
)

// faultyConfig is testConfig with beacon-delivery faults on the tag path.
func faultyConfig() Config {
	cfg := testConfig()
	cfg.TagFaults = faults.Profile{Drop: 0.15, Error: 0.05}
	return cfg
}

// TestTagFaultsDeterministicAcrossParallelism is the acceptance property
// of the fault harness: a fixed seed reproduces identical measured-rate /
// not-measured counts run after run, at any worker count, because every
// campaign draws its fault schedule from its own pre-forked RNG.
func TestTagFaultsDeterministicAcrossParallelism(t *testing.T) {
	run := func(parallelism int) []CampaignResult {
		cfg := faultyConfig()
		cfg.Parallelism = parallelism
		return New(cfg).Run().Campaigns
	}
	serial := run(1)
	parallel := run(8)
	rerun := run(8)
	if len(serial) != len(parallel) {
		t.Fatalf("campaign counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("campaign %d diverged across parallelism:\n serial  %+v\n parallel %+v",
				i, serial[i], parallel[i])
		}
		if parallel[i] != rerun[i] {
			t.Errorf("campaign %d diverged across runs:\n run1 %+v\n run2 %+v",
				i, parallel[i], rerun[i])
		}
	}
}

// TestTagFaultsShrinkMeasuredRate checks the harness reproduces the
// paper's mechanism: injected beacon loss moves impressions into the
// "not measured" population without touching the served counts.
func TestTagFaultsShrinkMeasuredRate(t *testing.T) {
	baseline := New(testConfig()).Run()
	faulty := New(faultyConfig()).Run()

	served := func(res *Result) (n int) {
		for _, c := range res.Campaigns {
			n += c.Served
		}
		return
	}
	loaded := func(res *Result) (n int) {
		for _, c := range res.Campaigns {
			n += c.QTagLoaded
		}
		return
	}
	if served(baseline) != served(faulty) {
		t.Errorf("served changed under faults: %d vs %d (DSP logs must be unaffected)",
			served(baseline), served(faulty))
	}
	if loaded(faulty) >= loaded(baseline) {
		t.Errorf("injected loss did not reduce measured impressions: %d vs %d",
			loaded(faulty), loaded(baseline))
	}
	var drops, errs int
	for _, c := range faulty.Campaigns {
		drops += c.FaultDrops
		errs += c.FaultErrors
	}
	if drops == 0 || errs == 0 {
		t.Errorf("fault counters empty: drops=%d errs=%d", drops, errs)
	}
	// Zero-profile runs must not even fork the fault RNG: the baseline
	// stream is bit-identical with faults disabled.
	again := New(testConfig()).Run()
	for i := range baseline.Campaigns {
		if baseline.Campaigns[i] != again.Campaigns[i] {
			t.Fatalf("baseline not reproducible; campaign %d differs", i)
		}
	}
}

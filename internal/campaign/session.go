package campaign

import (
	"time"

	"qtag/internal/browser"
	"qtag/internal/geom"
	"qtag/internal/simrand"
)

// sessionParams describes one user's browsing behaviour on the page
// carrying the ad. The constants are calibrated (see TestGroundTruth*)
// so that roughly half of all impressions meet the viewability standard,
// matching the ≈50 % viewability rate both solutions report in
// Figure 3(b).
type sessionParams struct {
	// duration is the total time the user stays on the page.
	duration time.Duration
	// bounce: the user never scrolls (reads only above the fold).
	bounce bool
	// stepEvery is the pause between scroll steps.
	stepEvery time.Duration
	// stepPx is the mean scroll amount per step.
	stepPx float64
	// tabSwitchAt, when positive, is when the user switches to another
	// tab for the rest of the session.
	tabSwitchAt time.Duration
}

// behavior holds the campaign-level audience parameters the per-user
// draws center on. Engagement scales session length; audiences differ
// across campaigns, which is what spreads the per-campaign viewability
// rates (the Figure 3 error bars).
type behavior struct {
	engagement float64
}

// drawBehavior samples a campaign's audience profile.
func drawBehavior(rng *simrand.RNG) behavior {
	return behavior{engagement: geom.Clamp(rng.LogNormal(0, 0.35), 0.5, 2.0)}
}

// drawSession samples one user's session.
func drawSession(rng *simrand.RNG, b behavior) sessionParams {
	dur := 1500*time.Millisecond +
		time.Duration(rng.Exponential(3800*b.engagement))*time.Millisecond
	if dur > 11*time.Second {
		dur = 11 * time.Second
	}
	p := sessionParams{
		duration:  dur,
		bounce:    rng.Bool(0.12),
		stepEvery: time.Duration(rng.Range(550, 900)) * time.Millisecond,
		stepPx:    rng.Range(280, 420),
	}
	if rng.Bool(0.06) {
		p.tabSwitchAt = time.Duration(rng.Range(0.3, 0.9) * float64(dur))
	}
	return p
}

// runSession schedules the user's behaviour on the page's clock and
// advances virtual time to the end of the session.
func runSession(page *browser.Page, p sessionParams, rng *simrand.RNG) {
	clock := page.Tab().Window().Browser().Clock()
	if !p.bounce {
		var ticker interface{ Stop() }
		ticker = clock.Every(p.stepEvery, func() {
			cur := page.Scroll()
			step := rng.Normal(p.stepPx, p.stepPx/3)
			if step < 0 {
				step = 0
			}
			page.ScrollTo(geom.Point{X: cur.X, Y: cur.Y + step})
			_ = ticker
		})
		clock.AfterFunc(p.duration, ticker.Stop)
	}
	if p.tabSwitchAt > 0 {
		clock.AfterFunc(p.tabSwitchAt, func() {
			w := page.Tab().Window()
			w.ActivateTab(w.NewTab())
		})
	}
	clock.Advance(p.duration)
}

package campaign

import (
	"testing"
	"time"

	"qtag/internal/browser"
	"qtag/internal/dom"
	"qtag/internal/geom"
	"qtag/internal/simclock"
	"qtag/internal/simrand"
)

func TestDrawBehaviorBounds(t *testing.T) {
	rng := simrand.New(1)
	for i := 0; i < 2000; i++ {
		b := drawBehavior(rng)
		if b.engagement < 0.5 || b.engagement > 2.0 {
			t.Fatalf("engagement out of bounds: %v", b.engagement)
		}
	}
}

func TestDrawSessionBounds(t *testing.T) {
	rng := simrand.New(2)
	bounces, switches := 0, 0
	const n = 5000
	for i := 0; i < n; i++ {
		p := drawSession(rng, behavior{engagement: 1})
		if p.duration < 1500*time.Millisecond || p.duration > 11*time.Second {
			t.Fatalf("duration out of bounds: %v", p.duration)
		}
		if p.stepEvery < 550*time.Millisecond || p.stepEvery > 900*time.Millisecond {
			t.Fatalf("step interval out of bounds: %v", p.stepEvery)
		}
		if p.stepPx < 280 || p.stepPx > 420 {
			t.Fatalf("step size out of bounds: %v", p.stepPx)
		}
		if p.bounce {
			bounces++
		}
		if p.tabSwitchAt > 0 {
			switches++
			if p.tabSwitchAt >= p.duration {
				t.Fatalf("tab switch after session end: %v of %v", p.tabSwitchAt, p.duration)
			}
		}
	}
	if br := float64(bounces) / n; br < 0.08 || br > 0.17 {
		t.Errorf("bounce rate = %.3f, want ≈0.12", br)
	}
	if sr := float64(switches) / n; sr < 0.03 || sr > 0.10 {
		t.Errorf("tab-switch rate = %.3f, want ≈0.06", sr)
	}
}

func TestEngagementLengthensSessions(t *testing.T) {
	rng := simrand.New(3)
	var lowSum, highSum time.Duration
	const n = 3000
	for i := 0; i < n; i++ {
		lowSum += drawSession(rng, behavior{engagement: 0.5}).duration
		highSum += drawSession(rng, behavior{engagement: 2.0}).duration
	}
	if highSum <= lowSum {
		t.Errorf("high engagement should lengthen sessions: %v vs %v", highSum/n, lowSum/n)
	}
}

func TestRunSessionScrollsAndEnds(t *testing.T) {
	clock := simclock.New()
	b := browser.New(clock, browser.Options{Profile: browser.AndroidChromeProfile()})
	defer b.Close()
	w := b.OpenWindow(geom.Point{}, geom.Size{W: 412, H: 800})
	doc := dom.NewDocument("https://p.example", geom.Size{W: 412, H: 3200})
	page := w.ActiveTab().Navigate(doc)

	rng := simrand.New(4)
	p := sessionParams{duration: 5 * time.Second, stepEvery: 700 * time.Millisecond, stepPx: 300}
	runSession(page, p, rng)
	if clock.Now() != 5*time.Second {
		t.Errorf("session did not advance the clock: %v", clock.Now())
	}
	if page.Scroll().Y <= 0 {
		t.Error("non-bouncing session should have scrolled")
	}
	// Scrolling stops with the session.
	endScroll := page.Scroll().Y
	clock.Advance(3 * time.Second)
	if page.Scroll().Y != endScroll {
		t.Error("scroll ticker leaked past the session end")
	}
}

func TestRunSessionBounceNeverScrolls(t *testing.T) {
	clock := simclock.New()
	b := browser.New(clock, browser.Options{Profile: browser.AndroidChromeProfile()})
	defer b.Close()
	w := b.OpenWindow(geom.Point{}, geom.Size{W: 412, H: 800})
	doc := dom.NewDocument("https://p.example", geom.Size{W: 412, H: 3200})
	page := w.ActiveTab().Navigate(doc)
	runSession(page, sessionParams{duration: 4 * time.Second, bounce: true,
		stepEvery: 700 * time.Millisecond, stepPx: 300}, simrand.New(5))
	if page.Scroll().Y != 0 {
		t.Errorf("bouncer scrolled to %v", page.Scroll().Y)
	}
}

func TestRunSessionTabSwitch(t *testing.T) {
	clock := simclock.New()
	b := browser.New(clock, browser.Options{Profile: browser.AndroidChromeProfile()})
	defer b.Close()
	w := b.OpenWindow(geom.Point{}, geom.Size{W: 412, H: 800})
	doc := dom.NewDocument("https://p.example", geom.Size{W: 412, H: 3200})
	page := w.ActiveTab().Navigate(doc)
	runSession(page, sessionParams{duration: 4 * time.Second, bounce: true,
		stepEvery: 700 * time.Millisecond, stepPx: 300,
		tabSwitchAt: 2 * time.Second}, simrand.New(6))
	if page.Tab().Active() {
		t.Error("session should have switched away from the ad's tab")
	}
}

package campaign

import (
	"fmt"
	"time"

	"qtag/internal/beacon"
	"qtag/internal/obs"
	"qtag/internal/simclock"
	"qtag/internal/simrand"
)

// ActorKind names one adversarial (or honest-baseline) traffic model.
// Every kind is deterministic from its RNG fork: same seed, same
// beacons — what lets the precision/recall harness pin exact floors.
type ActorKind string

// Traffic actor kinds. Each adversarial kind fabricates the beacon
// signature of one real-world fraud family (Marciel et al., PAPERS.md):
const (
	// ActorHonest is the clean baseline: full served → loaded →
	// in-view → out-of-view lifecycles, dwell spread naturally,
	// impressions across many placements. It exists so false-positive
	// floors are measured against realistic traffic, not absence of
	// traffic.
	ActorHonest ActorKind = "honest"
	// ActorReplayFarm is a bot farm replaying captured beacons: a
	// small set of real-looking lifecycles re-submitted byte-identical
	// many times over, compressed into a burst.
	ActorReplayFarm ActorKind = "replay-farm"
	// ActorAdStacking piles creatives onto one placement: every
	// lifecycle is individually plausible, but all in-views land on a
	// single publisher slot.
	ActorAdStacking ActorKind = "ad-stacking"
	// ActorHiddenIframe renders ads into invisible stuffed iframes:
	// the tag fires, but visibility collapses instantly — dwell mass
	// at ~0, often with degenerate 1×1 creative sizes.
	ActorHiddenIframe ActorKind = "hidden-iframe"
	// ActorSpoofedInView fabricates in-view beacons with no lifecycle
	// behind them: no served log, no tag check-in, just the billable
	// event.
	ActorSpoofedInView ActorKind = "spoofed-in-view"
	// ActorDuplicateFlood hammers a handful of impressions' beacons
	// thousands of times — a retry storm turned attack.
	ActorDuplicateFlood ActorKind = "duplicate-flood"
)

// Fraudulent reports whether the kind is an adversary (everything but
// the honest baseline).
func (k ActorKind) Fraudulent() bool { return k != ActorHonest && k != "" }

// FraudTag is the ground-truth span detail RunActor records for every
// impression: "fraud:<kind>" for adversaries, "honest" otherwise. The
// lifecycle tracer carrying these tags is the oracle the detection
// harness scores against.
func (k ActorKind) FraudTag() string {
	if k.Fraudulent() {
		return "fraud:" + string(k)
	}
	return "honest"
}

// ActorEpoch anchors actor event time. It matches simclock.Epoch so
// actor traffic and organic simulator traffic share one timeline.
var ActorEpoch = simclock.Epoch

// ActorSpec configures one traffic actor.
type ActorSpec struct {
	// Kind selects the traffic model.
	Kind ActorKind
	// CampaignID is the campaign the actor's beacons claim.
	CampaignID string
	// Impressions is the distinct impression count (defaults per kind:
	// 200 honest, 40 replay-farm, 120 stacking/hidden/spoofed, 10
	// duplicate-flood).
	Impressions int
	// Start offsets the actor's first event from ActorEpoch.
	Start time.Duration
	// Over spreads the actor's impressions across this span (defaults
	// per kind: minutes for slow actors, seconds for bursts).
	Over time.Duration
	// Source is the measurement solution the actor's tag beacons
	// claim (default qtag).
	Source beacon.Source
	// Replays is how many times replay-farm and duplicate-flood
	// re-submit each captured beacon (default 5 and 400).
	Replays int
}

func (a ActorSpec) withDefaults() ActorSpec {
	if a.Source == "" {
		a.Source = beacon.SourceQTag
	}
	if a.Impressions <= 0 {
		switch a.Kind {
		case ActorReplayFarm:
			a.Impressions = 40
		case ActorDuplicateFlood:
			a.Impressions = 10
		default:
			a.Impressions = 120
		}
	}
	if a.Over <= 0 {
		switch a.Kind {
		case ActorReplayFarm, ActorDuplicateFlood:
			a.Over = 10 * time.Second
		default:
			a.Over = 10 * time.Minute
		}
	}
	if a.Replays <= 0 {
		switch a.Kind {
		case ActorDuplicateFlood:
			a.Replays = 400
		default:
			a.Replays = 5
		}
	}
	return a
}

// honestSlots is how many publisher placements honest inventory
// spreads across.
const honestSlots = 24

// RunActor emits the actor's full beacon stream into sink and records
// one ground-truth span per impression (stage served, detail
// ActorKind.FraudTag) into tracer when it is non-nil. Submission
// errors are ignored — adversaries are best-effort by nature, and
// honest beacon loss is the fault layer's job, not ours. Returns the
// number of submissions attempted (replays included).
func RunActor(spec ActorSpec, rng *simrand.RNG, sink beacon.Sink, tracer *obs.LifecycleTracer) int {
	spec = spec.withDefaults()
	rng = rng.Fork("actor-" + string(spec.Kind) + "-" + spec.CampaignID)
	submitted := 0
	submit := func(e beacon.Event) {
		_ = sink.Submit(e)
		submitted++
	}
	trace := func(imp string, at time.Time) {
		if tracer != nil {
			tracer.Record(imp, spec.CampaignID, obs.StageServed, at, spec.Kind.FraudTag())
		}
	}

	start := ActorEpoch.Add(spec.Start)
	step := spec.Over / time.Duration(spec.Impressions)
	meta := beacon.Meta{AdSize: "300x250", OS: "android", SiteType: "web"}

	for i := 0; i < spec.Impressions; i++ {
		imp := fmt.Sprintf("%s-%s-%04d", spec.CampaignID, spec.Kind, i)
		at := start.Add(time.Duration(i) * step)
		trace(imp, at)

		switch spec.Kind {
		case ActorHonest:
			m := meta
			m.Slot = fmt.Sprintf("slot-%02d", i%honestSlots)
			submit(beacon.Event{ImpressionID: imp, CampaignID: spec.CampaignID, Type: beacon.EventServed, At: at, Meta: m})
			submit(beacon.Event{ImpressionID: imp, CampaignID: spec.CampaignID, Source: spec.Source, Type: beacon.EventLoaded, At: at.Add(80 * time.Millisecond), Meta: m})
			if rng.Bool(0.6) { // not every honest impression is viewed
				inAt := at.Add(time.Duration(rng.Range(200, 1200)) * time.Millisecond)
				// Natural dwell: lognormal around ~3s, essentially never
				// at zero or pinned to the 1s standard threshold.
				dwell := time.Duration(rng.LogNormal(1.1, 0.4) * float64(time.Second))
				submit(beacon.Event{ImpressionID: imp, CampaignID: spec.CampaignID, Source: spec.Source, Type: beacon.EventInView, At: inAt, Meta: m})
				submit(beacon.Event{ImpressionID: imp, CampaignID: spec.CampaignID, Source: spec.Source, Type: beacon.EventOutOfView, At: inAt.Add(dwell), Meta: m})
			}

		case ActorReplayFarm:
			// Capture a plausible lifecycle once, then replay the whole
			// beacon set byte-identically Replays times in a tight burst.
			m := meta
			m.Slot = fmt.Sprintf("slot-%02d", i%honestSlots)
			inAt := at.Add(300 * time.Millisecond)
			captured := []beacon.Event{
				{ImpressionID: imp, CampaignID: spec.CampaignID, Type: beacon.EventServed, At: at, Meta: m},
				{ImpressionID: imp, CampaignID: spec.CampaignID, Source: spec.Source, Type: beacon.EventLoaded, At: at.Add(80 * time.Millisecond), Meta: m},
				{ImpressionID: imp, CampaignID: spec.CampaignID, Source: spec.Source, Type: beacon.EventInView, At: inAt, Meta: m},
				{ImpressionID: imp, CampaignID: spec.CampaignID, Source: spec.Source, Type: beacon.EventOutOfView, At: inAt.Add(2 * time.Second), Meta: m},
			}
			for pass := 0; pass <= spec.Replays; pass++ {
				for _, e := range captured {
					submit(e)
				}
			}

		case ActorAdStacking:
			// Every lifecycle individually plausible, every in-view on
			// the same placement.
			m := meta
			m.Slot = "stacked-slot"
			inAt := at.Add(time.Duration(rng.Range(200, 1200)) * time.Millisecond)
			dwell := time.Duration(rng.LogNormal(1.1, 0.4) * float64(time.Second))
			submit(beacon.Event{ImpressionID: imp, CampaignID: spec.CampaignID, Type: beacon.EventServed, At: at, Meta: m})
			submit(beacon.Event{ImpressionID: imp, CampaignID: spec.CampaignID, Source: spec.Source, Type: beacon.EventLoaded, At: at.Add(80 * time.Millisecond), Meta: m})
			submit(beacon.Event{ImpressionID: imp, CampaignID: spec.CampaignID, Source: spec.Source, Type: beacon.EventInView, At: inAt, Meta: m})
			submit(beacon.Event{ImpressionID: imp, CampaignID: spec.CampaignID, Source: spec.Source, Type: beacon.EventOutOfView, At: inAt.Add(dwell), Meta: m})

		case ActorHiddenIframe:
			// The stuffed iframe fires the tag, then visibility
			// collapses within milliseconds; creative is a 1×1.
			m := meta
			m.AdSize = "1x1"
			m.Slot = fmt.Sprintf("slot-%02d", i%honestSlots)
			inAt := at.Add(150 * time.Millisecond)
			blip := time.Duration(rng.Range(1, 40)) * time.Millisecond
			submit(beacon.Event{ImpressionID: imp, CampaignID: spec.CampaignID, Type: beacon.EventServed, At: at, Meta: m})
			submit(beacon.Event{ImpressionID: imp, CampaignID: spec.CampaignID, Source: spec.Source, Type: beacon.EventLoaded, At: at.Add(60 * time.Millisecond), Meta: m})
			submit(beacon.Event{ImpressionID: imp, CampaignID: spec.CampaignID, Source: spec.Source, Type: beacon.EventInView, At: inAt, Meta: m})
			submit(beacon.Event{ImpressionID: imp, CampaignID: spec.CampaignID, Source: spec.Source, Type: beacon.EventOutOfView, At: inAt.Add(blip), Meta: m})

		case ActorSpoofedInView:
			// Just the billable event. No served log, no tag check-in.
			m := meta
			m.Slot = fmt.Sprintf("slot-%02d", i%honestSlots)
			submit(beacon.Event{ImpressionID: imp, CampaignID: spec.CampaignID, Source: spec.Source, Type: beacon.EventInView, At: at, Meta: m})

		case ActorDuplicateFlood:
			// A handful of real-ish lifecycles, each beacon hammered
			// Replays times.
			m := meta
			m.Slot = fmt.Sprintf("slot-%02d", i%honestSlots)
			served := beacon.Event{ImpressionID: imp, CampaignID: spec.CampaignID, Type: beacon.EventServed, At: at, Meta: m}
			loaded := beacon.Event{ImpressionID: imp, CampaignID: spec.CampaignID, Source: spec.Source, Type: beacon.EventLoaded, At: at.Add(80 * time.Millisecond), Meta: m}
			submit(served)
			submit(loaded)
			for pass := 0; pass < spec.Replays; pass++ {
				submit(served)
				submit(loaded)
			}

		default:
			// Unknown kinds emit nothing: a typo in a scenario table
			// should fail its assertions loudly, not fabricate traffic.
		}
	}
	return submitted
}

// OracleLabels extracts the ground-truth campaign labels from a
// lifecycle tracer fed by RunActor: campaign id → true when any of
// its impressions carries a fraud tag. This is the label set the
// precision/recall harness scores detector output against.
func OracleLabels(tr *obs.LifecycleTracer) map[string]bool {
	labels := make(map[string]bool)
	if tr == nil {
		return labels
	}
	for _, s := range tr.Spans() {
		if s.Stage != obs.StageServed {
			continue
		}
		switch {
		case len(s.Detail) > 6 && s.Detail[:6] == "fraud:":
			labels[s.Campaign] = true
		case s.Detail == "honest":
			if _, seen := labels[s.Campaign]; !seen {
				labels[s.Campaign] = false
			}
		}
	}
	return labels
}

// Package campaign simulates the production traffic of the paper's §5
// deployment: ad campaigns run by a DSP across real-time exchanges, user
// browsing sessions that determine ground-truth viewability, and the
// per-environment capability differences that produce the measured-rate
// gap between Q-Tag and the commercial verifier (Figure 3, Table 2).
//
// Substitution note (see DESIGN.md): the paper's numbers come from 12M
// production impressions; here the traffic is synthetic. Two model inputs
// are calibrated against the paper's published per-environment
// measurements (Table 2): the probability that a tag's script loads and
// its beacons arrive (TagLoadSuccess — this bounds *both* solutions and
// equals Q-Tag's measured rate), and the share of environments shipping
// an IntersectionObserver-capable engine (ModernAPIShare — the commercial
// tag can only measure there, since delivered ads are always
// cross-origin). Everything downstream — campaign-level averages,
// spreads, the 93 % vs 74 % gap, the Table 2 ordering — emerges from the
// simulation rather than being asserted.
package campaign

import (
	"fmt"

	"qtag/internal/browser"
	"qtag/internal/simrand"
)

// EnvClass is a traffic environment class: the OS × site-type cells of
// Table 2 plus desktop.
type EnvClass int

// Traffic classes.
const (
	// EnvAndroidApp is an Android in-app webview.
	EnvAndroidApp EnvClass = iota
	// EnvIOSApp is an iOS in-app webview.
	EnvIOSApp
	// EnvAndroidBrowser is Chrome on Android.
	EnvAndroidBrowser
	// EnvIOSBrowser is Safari on iOS.
	EnvIOSBrowser
	// EnvDesktop is desktop browser traffic.
	EnvDesktop
	numEnvClasses = 5
)

// String implements fmt.Stringer.
func (e EnvClass) String() string {
	switch e {
	case EnvAndroidApp:
		return "android-app"
	case EnvIOSApp:
		return "ios-app"
	case EnvAndroidBrowser:
		return "android-browser"
	case EnvIOSBrowser:
		return "ios-browser"
	case EnvDesktop:
		return "desktop"
	default:
		return fmt.Sprintf("EnvClass(%d)", int(e))
	}
}

// EnvClasses returns all classes in declaration order.
func EnvClasses() []EnvClass {
	return []EnvClass{EnvAndroidApp, EnvIOSApp, EnvAndroidBrowser, EnvIOSBrowser, EnvDesktop}
}

// EnvModel is the capability model of one traffic class.
type EnvModel struct {
	// Class identifies the traffic class.
	Class EnvClass
	// TagLoadSuccess is the probability that a measurement tag's script
	// loads, executes, and its check-in beacon is delivered. It applies
	// independently to each tag on the impression and is the ceiling of
	// any solution's measured rate in this class. Calibrated to Q-Tag's
	// Table 2 column (Q-Tag needs nothing else).
	TagLoadSuccess float64
	// ModernAPIShare is the fraction of environments in this class whose
	// engine provides an IntersectionObserver-style cross-origin
	// visibility API. Delivered ads sit in double cross-domain iframes,
	// so the geometry-based commercial tag can measure only there.
	// Calibrated to the ratio of the Table 2 columns.
	ModernAPIShare float64
}

// DefaultEnvModels returns the capability models calibrated to Table 2:
//
//	class            Q-Tag col   commercial col   → load    modern-API
//	android app        90.6%        53.4%            .906      .589
//	ios app            97.0%        83.8%            .970      .864
//	android browser    94.4%        86.7%            .944      .918
//	ios browser        94.6%        91.1%            .946      .963
//	desktop (no col)   ≈96%         ≈86%             .960      .900
func DefaultEnvModels() map[EnvClass]EnvModel {
	return map[EnvClass]EnvModel{
		EnvAndroidApp:     {Class: EnvAndroidApp, TagLoadSuccess: 0.906, ModernAPIShare: 0.589},
		EnvIOSApp:         {Class: EnvIOSApp, TagLoadSuccess: 0.970, ModernAPIShare: 0.864},
		EnvAndroidBrowser: {Class: EnvAndroidBrowser, TagLoadSuccess: 0.944, ModernAPIShare: 0.918},
		EnvIOSBrowser:     {Class: EnvIOSBrowser, TagLoadSuccess: 0.946, ModernAPIShare: 0.963},
		EnvDesktop:        {Class: EnvDesktop, TagLoadSuccess: 0.960, ModernAPIShare: 0.900},
	}
}

// Profile draws a concrete browser profile for an impression in this
// class: the class fixes browser/OS/site type, and the modern-API share
// decides whether this particular engine ships IntersectionObserver.
func (m EnvModel) Profile(rng *simrand.RNG) browser.Profile {
	modern := rng.Bool(m.ModernAPIShare)
	switch m.Class {
	case EnvAndroidApp:
		return browser.AndroidWebViewProfile(!modern)
	case EnvIOSApp:
		return browser.IOSWebViewProfile(modern)
	case EnvAndroidBrowser:
		p := browser.AndroidChromeProfile()
		p.SupportsIntersectionObserver = modern
		return p
	case EnvIOSBrowser:
		p := browser.IOSSafariProfile()
		p.SupportsIntersectionObserver = modern
		return p
	default:
		profs := browser.CertificationProfiles()
		p := profs[rng.Intn(len(profs))]
		p.SupportsIntersectionObserver = modern
		return p
	}
}

// TrafficMix is a weight per environment class (normalised on use).
type TrafficMix [numEnvClasses]float64

// DefaultTrafficMix is the base mix of the simulated DSP's mobile-heavy
// traffic. Combined with DefaultEnvModels it yields overall measured
// rates of ≈93 % (Q-Tag) and ≈74 % (commercial), the Figure 3(a)
// averages.
func DefaultTrafficMix() TrafficMix {
	return TrafficMix{
		EnvAndroidApp:     0.40,
		EnvIOSApp:         0.12,
		EnvAndroidBrowser: 0.20,
		EnvIOSBrowser:     0.13,
		EnvDesktop:        0.15,
	}
}

// Draw samples a class proportionally to the weights.
func (m TrafficMix) Draw(rng *simrand.RNG) EnvClass {
	return EnvClass(rng.Weighted(m[:]))
}

// Perturb returns a copy of the mix with each weight jittered
// multiplicatively (lognormal with the given sigma) — the per-campaign
// audience differences behind Figure 3's error bars.
func (m TrafficMix) Perturb(rng *simrand.RNG, sigma float64) TrafficMix {
	var out TrafficMix
	for i, w := range m {
		out[i] = w * rng.LogNormal(0, sigma)
	}
	return out
}

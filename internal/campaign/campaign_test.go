package campaign

import (
	"math"
	"testing"
	"time"

	"qtag/internal/beacon"
	"qtag/internal/browser"
	"qtag/internal/simrand"
	"qtag/internal/stats"
)

// testConfig is a scaled-down production run: every campaign carries both
// tags so the commercial slice has statistics even at small scale.
func testConfig() Config {
	return Config{
		Seed:                   1,
		Campaigns:              30,
		ImpressionsPerCampaign: 80,
		BothCampaigns:          30,
	}
}

func totals(res *Result) (served, ql, qi, cl, ci, tv int) {
	for _, c := range res.Campaigns {
		served += c.Served
		ql += c.QTagLoaded
		qi += c.QTagInView
		cl += c.CommercialLoaded
		ci += c.CommercialInView
		tv += c.TruthViewed
	}
	return
}

// TestFigure3Shape reproduces the paper's headline comparison: both
// solutions report ≈50 % viewability, but Q-Tag measures ≈93 % of
// impressions versus ≈74 % for the commercial solution.
func TestFigure3Shape(t *testing.T) {
	res := New(testConfig()).Run()
	served, ql, qi, cl, ci, tv := totals(res)
	if served == 0 {
		t.Fatal("no impressions served")
	}
	qm := float64(ql) / float64(served)
	cm := float64(cl) / float64(served)
	if qm < 0.90 || qm > 0.97 {
		t.Errorf("Q-Tag measured rate = %.3f, want ≈0.93", qm)
	}
	if cm < 0.68 || cm > 0.80 {
		t.Errorf("commercial measured rate = %.3f, want ≈0.74", cm)
	}
	if qm-cm < 0.12 {
		t.Errorf("measured-rate gap = %.3f, want ≈0.19", qm-cm)
	}
	qv := float64(qi) / float64(ql)
	cv := float64(ci) / float64(cl)
	if math.Abs(qv-0.5) > 0.08 || math.Abs(cv-0.5) > 0.08 {
		t.Errorf("viewability rates = %.3f / %.3f, want ≈0.50 both", qv, cv)
	}
	if math.Abs(qv-cv) > 0.05 {
		t.Errorf("solutions should report similar viewability: %.3f vs %.3f", qv, cv)
	}
	truth := float64(tv) / float64(served)
	if math.Abs(qv-truth) > 0.05 {
		t.Errorf("Q-Tag viewability %.3f should track ground truth %.3f", qv, truth)
	}
}

// TestTable2Ordering checks the measured-rate slices by OS × site type:
// Q-Tag beats the commercial solution everywhere, each cell is close to
// the paper's value, and the largest gap is Android in-app.
func TestTable2Ordering(t *testing.T) {
	res := New(testConfig()).Run()
	want := map[[2]string][2]float64{ // {os, site} → {qtag, commercial}
		{"Android", "app"}:     {0.906, 0.534},
		{"iOS", "app"}:         {0.970, 0.838},
		{"Android", "browser"}: {0.944, 0.867},
		{"iOS", "browser"}:     {0.946, 0.911},
	}
	gaps := map[[2]string]float64{}
	for cell, paper := range want {
		os, site := cell[0], cell[1]
		served := res.Store.Count(func(k beacon.CounterKey) bool {
			return k.Type == beacon.EventServed && k.OS == os && k.SiteType == site
		})
		if served < 100 {
			t.Fatalf("cell %v underpopulated: %d served", cell, served)
		}
		q := float64(res.Store.Count(func(k beacon.CounterKey) bool {
			return k.Type == beacon.EventLoaded && k.Source == beacon.SourceQTag && k.OS == os && k.SiteType == site
		})) / float64(served)
		c := float64(res.Store.Count(func(k beacon.CounterKey) bool {
			return k.Type == beacon.EventLoaded && k.Source == beacon.SourceCommercial && k.OS == os && k.SiteType == site
		})) / float64(served)
		if q <= c {
			t.Errorf("%v: Q-Tag (%.3f) must beat commercial (%.3f)", cell, q, c)
		}
		if math.Abs(q-paper[0]) > 0.04 {
			t.Errorf("%v: Q-Tag measured %.3f, paper %.3f", cell, q, paper[0])
		}
		if math.Abs(c-paper[1]) > 0.05 {
			t.Errorf("%v: commercial measured %.3f, paper %.3f", cell, c, paper[1])
		}
		gaps[cell] = q - c
	}
	worst := [2]string{"Android", "app"}
	for cell, gap := range gaps {
		if cell != worst && gap >= gaps[worst] {
			t.Errorf("largest gap should be Android app; %v has %.3f vs %.3f", cell, gap, gaps[worst])
		}
	}
}

func TestCampaignLevelSpread(t *testing.T) {
	res := New(testConfig()).Run()
	var measured, view []float64
	for _, c := range res.Campaigns {
		measured = append(measured, c.MeasuredRate(beacon.SourceQTag))
		view = append(view, c.ViewabilityRate(beacon.SourceQTag))
	}
	if sd := stats.StdDev(measured); sd <= 0 || sd > 0.10 {
		t.Errorf("measured-rate spread = %.3f; expected modest non-zero error bars", sd)
	}
	if sd := stats.StdDev(view); sd <= 0.01 || sd > 0.20 {
		t.Errorf("viewability spread = %.3f; expected visible error bars", sd)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{Seed: 9, Campaigns: 5, ImpressionsPerCampaign: 30, BothCampaigns: 2}
	a := New(cfg).Run()
	b := New(cfg).Run()
	as, aql, aqi, acl, aci, atv := totals(a)
	bs, bql, bqi, bcl, bci, btv := totals(b)
	if as != bs || aql != bql || aqi != bqi || acl != bcl || aci != bci || atv != btv {
		t.Error("same seed must reproduce identical aggregates")
	}
}

func TestGenerateSpecs(t *testing.T) {
	sim := New(Config{Seed: 2})
	specs := sim.GenerateSpecs()
	if len(specs) != 99 {
		t.Fatalf("default campaigns = %d, want 99", len(specs))
	}
	bothCount := 0
	ids := map[string]bool{}
	for i, sp := range specs {
		if sp.Both {
			bothCount++
			if i >= 4 {
				t.Error("both-tag campaigns must be the first 4")
			}
		}
		if ids[sp.ID] {
			t.Errorf("duplicate id %s", sp.ID)
		}
		ids[sp.ID] = true
		if sp.Impressions < 10 || sp.Sector == "" || sp.Country == "" || sp.Name == "" {
			t.Errorf("spec %d incomplete: %+v", i, sp)
		}
		if sp.Size != AdSizes[0] && sp.Size != AdSizes[1] {
			t.Errorf("unexpected ad size %v", sp.Size)
		}
		for _, w := range sp.Mix {
			if w <= 0 {
				t.Errorf("spec %d has non-positive mix weight", i)
			}
		}
	}
	if bothCount != 4 {
		t.Errorf("both-tag campaigns = %d, want 4", bothCount)
	}
}

func TestBothImpressionsFactor(t *testing.T) {
	sim := New(Config{Seed: 3, Campaigns: 10, ImpressionsPerCampaign: 100,
		BothCampaigns: 2, BothImpressionsFactor: 4})
	specs := sim.GenerateSpecs()
	var bothMean, restMean float64
	for i, sp := range specs {
		if i < 2 {
			bothMean += float64(sp.Impressions) / 2
		} else {
			restMean += float64(sp.Impressions) / 8
		}
	}
	if bothMean < 2*restMean {
		t.Errorf("both campaigns (%.0f avg) should be much larger than the rest (%.0f avg)", bothMean, restMean)
	}
}

func TestExtraSinkTee(t *testing.T) {
	extra := beacon.NewStore()
	cfg := Config{Seed: 4, Campaigns: 2, ImpressionsPerCampaign: 20, BothCampaigns: 1, ExtraSink: extra}
	res := New(cfg).Run()
	if extra.Len() == 0 {
		t.Fatal("extra sink received nothing")
	}
	if extra.Len() != res.Store.Len() {
		t.Errorf("tee mismatch: extra %d vs store %d", extra.Len(), res.Store.Len())
	}
}

func TestEnvClassStrings(t *testing.T) {
	names := map[EnvClass]string{
		EnvAndroidApp: "android-app", EnvIOSApp: "ios-app",
		EnvAndroidBrowser: "android-browser", EnvIOSBrowser: "ios-browser",
		EnvDesktop: "desktop",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("%d.String() = %q", int(c), c.String())
		}
	}
	if EnvClass(99).String() != "EnvClass(99)" {
		t.Error("unknown class string wrong")
	}
	if len(EnvClasses()) != 5 {
		t.Error("EnvClasses wrong")
	}
}

func TestEnvModelProfiles(t *testing.T) {
	rng := simrand.New(5)
	models := DefaultEnvModels()
	checks := map[EnvClass][2]string{ // class → {OS, site}
		EnvAndroidApp:     {"Android", "app"},
		EnvIOSApp:         {"iOS", "app"},
		EnvAndroidBrowser: {"Android", "browser"},
		EnvIOSBrowser:     {"iOS", "browser"},
	}
	for class, want := range checks {
		for i := 0; i < 20; i++ {
			p := models[class].Profile(rng)
			if string(p.OS) != want[0] || p.Site.String() != want[1] {
				t.Fatalf("%v profile = %s/%s", class, p.OS, p.Site)
			}
			if !p.SupportsFrameCallbacks {
				t.Fatalf("%v must support frame callbacks", class)
			}
		}
	}
	// Desktop draws from the certification profiles.
	p := models[EnvDesktop].Profile(rng)
	if p.Device != browser.Desktop {
		t.Errorf("desktop class produced %v", p.Device)
	}
	// Modern-API share is honoured statistically.
	model := models[EnvAndroidApp]
	modern := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if model.Profile(rng).SupportsIntersectionObserver {
			modern++
		}
	}
	share := float64(modern) / n
	if math.Abs(share-model.ModernAPIShare) > 0.03 {
		t.Errorf("modern share = %.3f, want %.3f", share, model.ModernAPIShare)
	}
}

func TestTrafficMix(t *testing.T) {
	mix := DefaultTrafficMix()
	var sum float64
	for _, w := range mix {
		if w <= 0 {
			t.Fatal("default mix must be strictly positive")
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("default mix sums to %v", sum)
	}
	rng := simrand.New(6)
	counts := map[EnvClass]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[mix.Draw(rng)]++
	}
	for _, class := range EnvClasses() {
		got := float64(counts[class]) / n
		if math.Abs(got-mix[class]) > 0.02 {
			t.Errorf("%v drawn %.3f, want %.3f", class, got, mix[class])
		}
	}
	pert := mix.Perturb(rng, 0.3)
	for i, w := range pert {
		if w <= 0 {
			t.Errorf("perturbed weight %d non-positive", i)
		}
	}
}

func BenchmarkImpression(b *testing.B) {
	sim := New(Config{Seed: 1, Campaigns: 1, ImpressionsPerCampaign: 1, BothCampaigns: 1})
	specs := sim.GenerateSpecs()
	spec := specs[0]
	spec.Impressions = b.N
	b.ResetTimer()
	sim.runCampaign(spec, simrand.New(1))
}

// TestParallelismDeterminism: any Parallelism yields bit-identical
// aggregates because campaign RNGs are pre-forked in order.
func TestParallelismDeterminism(t *testing.T) {
	base := Config{Seed: 77, Campaigns: 8, ImpressionsPerCampaign: 40, BothCampaigns: 3, RecordImpressions: true}
	seq := New(base).Run()
	par := base
	par.Parallelism = 4
	got := New(par).Run()
	if len(seq.Campaigns) != len(got.Campaigns) {
		t.Fatal("campaign counts differ")
	}
	for i := range seq.Campaigns {
		a, b := seq.Campaigns[i], got.Campaigns[i]
		if a.Served != b.Served || a.QTagLoaded != b.QTagLoaded ||
			a.QTagInView != b.QTagInView || a.TruthViewed != b.TruthViewed ||
			a.CommercialLoaded != b.CommercialLoaded {
			t.Errorf("campaign %d differs: %+v vs %+v", i, a, b)
		}
	}
	if seq.Store.Len() != got.Store.Len() {
		t.Errorf("store sizes differ: %d vs %d", seq.Store.Len(), got.Store.Len())
	}
	if len(seq.Impressions) != len(got.Impressions) {
		t.Fatalf("record counts differ: %d vs %d", len(seq.Impressions), len(got.Impressions))
	}
	for i := range seq.Impressions {
		if seq.Impressions[i] != got.Impressions[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, seq.Impressions[i], got.Impressions[i])
		}
	}
}

func TestSpreadOverTimestamps(t *testing.T) {
	res := New(Config{
		Seed: 51, Campaigns: 3, ImpressionsPerCampaign: 40, BothCampaigns: 0,
		SpreadOver: 7 * 24 * time.Hour,
	}).Run()
	var min, max time.Time
	for _, e := range res.Store.Events() {
		if e.At.IsZero() {
			t.Fatal("unstamped event")
		}
		if min.IsZero() || e.At.Before(min) {
			min = e.At
		}
		if e.At.After(max) {
			max = e.At
		}
	}
	if max.Sub(min) < 3*24*time.Hour {
		t.Errorf("timestamps span only %v; want several days", max.Sub(min))
	}
}

package campaign

import (
	"context"
	"io"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"qtag/internal/beacon"
	"qtag/internal/faults"
	"qtag/internal/obs"
)

func traceConfig(parallelism int) Config {
	return Config{
		Seed:                   77,
		Campaigns:              8,
		ImpressionsPerCampaign: 40,
		BothCampaigns:          2,
		Parallelism:            parallelism,
		TraceLifecycle:         true,
	}
}

// TestTraceDeterministicAcrossParallelism is the tentpole invariant: two
// identical runs at different worker counts produce byte-identical trace
// summaries (same spans, same order, same checksum).
func TestTraceDeterministicAcrossParallelism(t *testing.T) {
	serial := New(traceConfig(1)).Run()
	parallel := New(traceConfig(8)).Run()

	if serial.Trace == nil || parallel.Trace == nil {
		t.Fatal("TraceLifecycle must populate Result.Trace")
	}
	if serial.Trace.Len() == 0 {
		t.Fatal("trace recorded no spans")
	}
	s1, s2 := serial.Trace.Summary(), parallel.Trace.Summary()
	if s1 != s2 {
		t.Fatalf("trace summaries differ across parallelism:\n--- serial ---\n%s--- parallel ---\n%s", s1, s2)
	}
}

// TestTraceReconcilesWithAggregates cross-checks the span stream against
// the campaign aggregates computed from the store.
func TestTraceReconcilesWithAggregates(t *testing.T) {
	res := New(traceConfig(4)).Run()

	byStage := map[obs.Stage]int{}
	delivered := 0
	for _, s := range res.Trace.Spans() {
		byStage[s.Stage]++
		if s.Stage == obs.StageDelivered {
			delivered++
		}
	}
	var served int
	for _, c := range res.Campaigns {
		served += c.Served
	}
	if byStage[obs.StageServed] != served {
		t.Errorf("served spans = %d, aggregates say %d", byStage[obs.StageServed], served)
	}
	// No faults injected: every beacon that was enqueued (tag path) or
	// served (DSP path) reached the store.
	if want := byStage[obs.StageEnqueued] + served; delivered != want {
		t.Errorf("delivered spans = %d, want enqueued+served = %d", delivered, want)
	}
	if delivered != res.Store.Len() {
		t.Errorf("delivered spans = %d, store holds %d events", delivered, res.Store.Len())
	}
	if byStage[obs.StageDropped] != 0 {
		t.Errorf("dropped spans = %d, want 0 without faults", byStage[obs.StageDropped])
	}
}

// TestTraceShowsFaultDrops checks that injected silent drops surface as
// enqueued-without-delivered and injected errors as dropped spans.
func TestTraceShowsFaultDrops(t *testing.T) {
	cfg := traceConfig(2)
	cfg.TagFaults = faults.Profile{Drop: 0.3, Error: 0.1}
	res := New(cfg).Run()

	byStage := map[obs.Stage]int{}
	for _, s := range res.Trace.Spans() {
		byStage[s.Stage]++
	}
	var drops, errs, served int
	for _, c := range res.Campaigns {
		drops += c.FaultDrops
		errs += c.FaultErrors
		served += c.Served
	}
	if drops == 0 || errs == 0 {
		t.Fatalf("fault profile injected nothing: drops=%d errs=%d", drops, errs)
	}
	// Errored submissions record a dropped span at the enqueue wrapper.
	if byStage[obs.StageDropped] != errs {
		t.Errorf("dropped spans = %d, want errored count %d", byStage[obs.StageDropped], errs)
	}
	// Silent drops: enqueued but never delivered. Delivered = everything
	// that reached the store (tag beacons that survived + served events).
	if want := byStage[obs.StageEnqueued] - drops - errs + served; byStage[obs.StageDelivered] != want {
		t.Errorf("delivered spans = %d, want enqueued-drops-errs+served = %d",
			byStage[obs.StageDelivered], want)
	}
	if byStage[obs.StageDelivered] != res.Store.Len() {
		t.Errorf("delivered spans = %d, store holds %d", byStage[obs.StageDelivered], res.Store.Len())
	}
}

// TestTracingDoesNotPerturbResults guards the RNG streams: a traced run
// must produce exactly the aggregates of an untraced one.
func TestTracingDoesNotPerturbResults(t *testing.T) {
	traced := New(traceConfig(1)).Run()
	cfg := traceConfig(1)
	cfg.TraceLifecycle = false
	plain := New(cfg).Run()

	for i := range plain.Campaigns {
		a, b := plain.Campaigns[i], traced.Campaigns[i]
		if a != b {
			t.Fatalf("campaign %d aggregates diverge with tracing on:\n%+v\nvs\n%+v", i, a, b)
		}
	}
}

// parseProm extracts "name value" series (no labels) from a Prometheus
// text scrape.
func parseProm(text string) map[string]float64 {
	out := map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		out[fields[0]] = v
	}
	return out
}

// TestMetricsReconcileEndToEnd runs the full acceptance loop in-process:
// a simulation mirrors every beacon through QueueSink → HTTPSink to a
// live collection server, then the server's /metrics scrape must
// reconcile with the run's own numbers — accepted == flushed ==
// enqueued, zero drops, and the remote store matching the local one.
func TestMetricsReconcileEndToEnd(t *testing.T) {
	remote := beacon.NewStore()
	server := beacon.NewServerWithSink(remote, remote)
	collector := httptest.NewServer(server)
	defer collector.Close()

	sink := &beacon.HTTPSink{BaseURL: collector.URL, Retries: 2}
	queue := beacon.NewQueueSink(sink, beacon.QueueOptions{Capacity: 1 << 16})
	queue.RegisterMetrics(server.Metrics())
	sink.RegisterMetrics(server.Metrics())

	cfg := Config{
		Seed:                   99,
		Campaigns:              4,
		ImpressionsPerCampaign: 30,
		BothCampaigns:          1,
		Parallelism:            4,
		ExtraSink:              queue,
	}
	res := New(cfg).Run()
	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := queue.Close(drainCtx); err != nil {
		t.Fatalf("drain mirror queue: %v", err)
	}

	resp, err := collector.Client().Get(collector.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	m := parseProm(string(body))

	local := float64(res.Store.Len())
	if m["qtag_queue_enqueued_total"] != local {
		t.Errorf("enqueued = %g, local store has %g events", m["qtag_queue_enqueued_total"], local)
	}
	if m["qtag_queue_flushed_total"] != local {
		t.Errorf("flushed = %g, want %g", m["qtag_queue_flushed_total"], local)
	}
	if m["qtag_ingest_accepted_total"] != local {
		t.Errorf("server accepted = %g, want %g", m["qtag_ingest_accepted_total"], local)
	}
	if m["qtag_store_events"] != local {
		t.Errorf("remote store = %g, local store = %g", m["qtag_store_events"], local)
	}
	if m["qtag_queue_dropped_total"] != 0 || m["qtag_ingest_rejected_total"] != 0 {
		t.Errorf("lossless path expected: dropped=%g rejected=%g",
			m["qtag_queue_dropped_total"], m["qtag_ingest_rejected_total"])
	}
	if m["qtag_delivery_latency_seconds_count"] == 0 {
		t.Error("delivery latency histogram never observed")
	}
	if remote.Len() != res.Store.Len() {
		t.Errorf("remote store %d events, local %d", remote.Len(), res.Store.Len())
	}
}

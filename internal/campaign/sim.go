package campaign

import (
	"fmt"
	"sync"
	"time"

	"qtag/internal/adserve"
	"qtag/internal/adtag"
	"qtag/internal/beacon"
	"qtag/internal/browser"
	"qtag/internal/commercial"
	"qtag/internal/dom"
	"qtag/internal/dsp"
	"qtag/internal/faults"
	"qtag/internal/geom"
	"qtag/internal/obs"
	"qtag/internal/qtag"
	"qtag/internal/simclock"
	"qtag/internal/simrand"
	"qtag/internal/viewability"
)

// Exchanges are the ad exchanges of the paper's production dataset (§5).
var Exchanges = []string{
	"appnexus", "axonix", "doubleclick", "mopub", "openx", "rubicon", "smaato", "smart",
}

// Sectors are advertiser verticals (§5 names the first three).
var Sectors = []string{
	"Food & Drink", "Personal Finance", "Style & Fashion",
	"Travel", "Automotive", "Technology", "Retail", "Entertainment",
}

// Countries are the campaign target geographies of §5.
var Countries = []string{"US", "MX", "CO", "ES", "UK", "DE", "FR"}

// AdSizes are the creative sizes used across the §5 campaigns.
var AdSizes = []geom.Size{{W: 300, H: 250}, {W: 320, H: 50}}

// Spec is one simulated campaign's configuration.
type Spec struct {
	ID          string
	Name        string
	Sector      string
	Country     string
	Size        geom.Size
	Impressions int
	// Both instruments the campaign with the commercial verifier in
	// addition to Q-Tag (the paper's 4-campaign comparison subset).
	Both bool
	// Mix is the campaign's traffic mix over environment classes.
	Mix TrafficMix
	// Audience is the campaign's user-behaviour profile.
	Audience behavior
}

// Config sizes a production simulation.
type Config struct {
	// Seed drives all randomness; same seed, same results.
	Seed uint64
	// Campaigns is the number of campaigns (paper: 99).
	Campaigns int
	// ImpressionsPerCampaign is the mean campaign size. The paper's
	// dataset averages ≈121k; simulations scale this down (tests use
	// ~60–150, cmd/qtag-sim as much as you can wait for).
	ImpressionsPerCampaign int
	// BothCampaigns is how many campaigns also carry the commercial tag
	// (paper: 4).
	BothCampaigns int
	// BothImpressionsFactor scales the both-tag campaigns' size (the
	// paper's comparison campaigns average ≈3.9× the rest).
	BothImpressionsFactor float64
	// MixSigma is the per-campaign traffic-mix jitter.
	MixSigma float64
	// EnvModels overrides the capability models (defaults calibrated to
	// Table 2).
	EnvModels map[EnvClass]EnvModel
	// ExtraSink, when set, additionally receives every beacon (e.g. an
	// HTTP sink towards a live collection server). The internal store is
	// always populated.
	ExtraSink beacon.Sink
	// RecordImpressions retains a per-impression record in the Result —
	// the training data for the viewability-prediction extension and a
	// debugging aid. Off by default to keep big runs lean.
	RecordImpressions bool
	// Parallelism is the number of campaigns simulated concurrently
	// (default 1). Each campaign is an independent virtual world with a
	// pre-forked RNG, so results are bit-identical at any parallelism.
	Parallelism int
	// SpreadOver distributes impression start times uniformly across a
	// monitoring window (the paper monitors campaigns for one week).
	// Zero keeps every impression at the virtual epoch; set it to make
	// the analytics time series meaningful.
	SpreadOver time.Duration
	// TagFaults injects delivery faults on the tag → collector beacon
	// path (internal/faults): drops silently lose beacons, errors make
	// the tag's check-in fail, so the impression joins the "not measured"
	// population exactly as a lost beacon does in §4.4. Served events are
	// logged server-side by the DSP and are not affected. Each campaign
	// draws its schedule from its own forked RNG, so results stay
	// bit-identical at any Parallelism. The zero profile disables
	// injection and leaves the RNG streams untouched.
	TagFaults faults.Profile
	// TraceLifecycle records a per-impression lifecycle trace (served →
	// tag start → pixel classification → state transitions → beacon
	// enqueue → delivery/drop) into Result.Trace. Spans are timestamped
	// on the virtual clock and each campaign records into its own tracer,
	// merged in campaign order — traces are byte-identical at any
	// Parallelism. Off by default to keep big runs lean.
	TraceLifecycle bool
	// Adversaries adds deterministic adversarial traffic actors (bot
	// replay farms, ad stacking, hidden iframes, spoofed in-views,
	// duplicate floods — see ActorKind) running after the organic
	// campaigns, against the same sink. With TraceLifecycle set, every
	// actor impression carries its ground-truth fraud tag in
	// Result.Trace, which is what the detection harness scores against.
	Adversaries []ActorSpec
}

func (c Config) withDefaults() Config {
	if c.Campaigns == 0 {
		c.Campaigns = 99
	}
	if c.ImpressionsPerCampaign == 0 {
		c.ImpressionsPerCampaign = 100
	}
	if c.BothCampaigns == 0 {
		c.BothCampaigns = 4
	}
	if c.BothImpressionsFactor == 0 {
		c.BothImpressionsFactor = 1
	}
	if c.MixSigma == 0 {
		c.MixSigma = 0.25
	}
	if c.EnvModels == nil {
		c.EnvModels = DefaultEnvModels()
	}
	if c.Parallelism == 0 {
		c.Parallelism = 1
	}
	return c
}

// CampaignResult aggregates one campaign's outcome.
type CampaignResult struct {
	Spec             Spec
	Served           int
	QTagLoaded       int
	QTagInView       int
	CommercialLoaded int
	CommercialInView int
	// TruthViewed counts impressions whose ground-truth exposure met the
	// standard (known to the simulator, not to any tag).
	TruthViewed int
	// FaultDrops and FaultErrors count beacons lost / failed by the
	// injected fault profile (zero when Config.TagFaults is disabled).
	FaultDrops  int
	FaultErrors int
}

// MeasuredRate returns loaded/served for a solution.
func (c CampaignResult) MeasuredRate(src beacon.Source) float64 {
	if c.Served == 0 {
		return 0
	}
	switch src {
	case beacon.SourceCommercial:
		return float64(c.CommercialLoaded) / float64(c.Served)
	default:
		return float64(c.QTagLoaded) / float64(c.Served)
	}
}

// ViewabilityRate returns in-view/loaded for a solution.
func (c CampaignResult) ViewabilityRate(src beacon.Source) float64 {
	switch src {
	case beacon.SourceCommercial:
		if c.CommercialLoaded == 0 {
			return 0
		}
		return float64(c.CommercialInView) / float64(c.CommercialLoaded)
	default:
		if c.QTagLoaded == 0 {
			return 0
		}
		return float64(c.QTagInView) / float64(c.QTagLoaded)
	}
}

// TruthViewabilityRate returns the ground-truth viewed fraction.
func (c CampaignResult) TruthViewabilityRate() float64 {
	if c.Served == 0 {
		return 0
	}
	return float64(c.TruthViewed) / float64(c.Served)
}

// ImpressionRecord is one impression's ground truth (only collected with
// Config.RecordImpressions).
type ImpressionRecord struct {
	CampaignID string
	Env        EnvClass
	Mobile     bool
	// DepthFraction is the ad slot's position as a fraction of the page
	// height below the initial viewport (0 = above the fold).
	DepthFraction float64
	// Viewed is the oracle's ground truth.
	Viewed bool
	// QTagMeasured reports whether Q-Tag checked in on this impression.
	QTagMeasured bool
}

// Result is a full simulation outcome.
type Result struct {
	Config    Config
	Campaigns []CampaignResult
	// Store holds every beacon of the run, for slicing (Table 2).
	Store *beacon.Store
	// Impressions holds per-impression records when
	// Config.RecordImpressions is set.
	Impressions []ImpressionRecord
	// Trace is the merged per-impression lifecycle trace when
	// Config.TraceLifecycle is set; nil otherwise.
	Trace *obs.LifecycleTracer
}

// Simulator runs the production-deployment simulation.
type Simulator struct {
	cfg   Config
	rng   *simrand.RNG
	store *beacon.Store
	sink  beacon.Sink
}

// New creates a simulator.
func New(cfg Config) *Simulator {
	cfg = cfg.withDefaults()
	store := beacon.NewStore()
	var sink beacon.Sink = store
	if cfg.ExtraSink != nil {
		extra := cfg.ExtraSink
		sink = beacon.SinkFunc(func(e beacon.Event) error {
			if err := store.Submit(e); err != nil {
				return err
			}
			return extra.Submit(e)
		})
	}
	return &Simulator{cfg: cfg, rng: simrand.New(cfg.Seed), store: store, sink: sink}
}

// GenerateSpecs produces the campaign roster deterministically from the
// seed. The first BothCampaigns carry both tags.
func (s *Simulator) GenerateSpecs() []Spec {
	rng := s.rng.Fork("specs")
	specs := make([]Spec, 0, s.cfg.Campaigns)
	base := DefaultTrafficMix()
	for i := 0; i < s.cfg.Campaigns; i++ {
		both := i < s.cfg.BothCampaigns
		imps := float64(s.cfg.ImpressionsPerCampaign) * rng.LogNormal(0, 0.3)
		if both {
			imps *= s.cfg.BothImpressionsFactor
		}
		n := int(imps)
		if n < 10 {
			n = 10
		}
		specs = append(specs, Spec{
			ID:          fmt.Sprintf("camp-%03d", i+1),
			Name:        fmt.Sprintf("%s %03d", Sectors[i%len(Sectors)], i+1),
			Sector:      Sectors[i%len(Sectors)],
			Country:     Countries[i%len(Countries)],
			Size:        AdSizes[i%len(AdSizes)],
			Impressions: n,
			Both:        both,
			Mix:         base.Perturb(rng, s.cfg.MixSigma),
			Audience:    drawBehavior(rng),
		})
	}
	return specs
}

// Run executes the whole simulation and returns per-campaign aggregates.
// Campaigns run Parallelism at a time; determinism is preserved because
// every campaign's RNG is forked from the root stream up front, in
// campaign order, and per-campaign outputs are merged back in order.
func (s *Simulator) Run() *Result {
	specs := s.GenerateSpecs()
	res := &Result{Config: s.cfg, Store: s.store, Campaigns: make([]CampaignResult, len(specs))}

	// Pre-fork one RNG per campaign in deterministic order.
	rngs := make([]*simrand.RNG, len(specs))
	for i, spec := range specs {
		rngs[i] = s.rng.Fork("campaign-" + spec.ID)
	}

	workers := s.cfg.Parallelism
	if workers > len(specs) {
		workers = len(specs)
	}
	records := make([][]ImpressionRecord, len(specs))
	tracers := make([]*obs.LifecycleTracer, len(specs))
	if workers <= 1 {
		for i, spec := range specs {
			res.Campaigns[i], records[i], tracers[i] = s.runCampaign(spec, rngs[i])
		}
	} else {
		var wg sync.WaitGroup
		jobs := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					res.Campaigns[i], records[i], tracers[i] = s.runCampaign(specs[i], rngs[i])
				}
			}()
		}
		for i := range specs {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}
	for _, recs := range records {
		res.Impressions = append(res.Impressions, recs...)
	}

	// Adversarial actors run after the organic campaigns, in spec
	// order, each on its own RNG fork — bit-identical at any
	// Parallelism, like everything else.
	advTracers := make([]*obs.LifecycleTracer, 0, len(s.cfg.Adversaries))
	for _, adv := range s.cfg.Adversaries {
		var tr *obs.LifecycleTracer
		if s.cfg.TraceLifecycle {
			tr = obs.NewLifecycleTracer(simclock.Epoch)
			advTracers = append(advTracers, tr)
		}
		RunActor(adv, s.rng, s.sink, tr)
	}

	if s.cfg.TraceLifecycle {
		// Merge the per-campaign tracers in campaign order: the combined
		// span stream is identical at any worker count.
		res.Trace = obs.NewLifecycleTracer(simclock.Epoch)
		res.Trace.Merge(tracers...)
		res.Trace.Merge(advTracers...)
	}
	return res
}

// runCampaign delivers and measures every impression of one campaign.
// It is safe to call concurrently for distinct campaigns: the only shared
// state it touches is the thread-safe beacon sink.
func (s *Simulator) runCampaign(spec Spec, rng *simrand.RNG) (CampaignResult, []ImpressionRecord, *obs.LifecycleTracer) {
	tags := []adtag.Tag{qtag.New(qtag.Config{})}
	if spec.Both {
		tags = append(tags, commercial.New(commercial.Config{}))
	}
	platform := dsp.New("sonata")
	platform.AddCampaign(&dsp.Campaign{
		ID: spec.ID, Name: spec.Name, Sector: spec.Sector, Country: spec.Country,
		Creative: adserve.Creative{ID: "cr-" + spec.ID, Size: spec.Size},
		BidCPM:   1,
		Tags:     tags,
	})

	// Each campaign records into its own tracer so the merged stream is
	// deterministic at any parallelism. Tracing wraps the sinks without
	// consuming any RNG, so traced and untraced runs are bit-identical.
	var tracer *obs.LifecycleTracer
	serverSink := s.sink
	tagSink := s.sink
	if s.cfg.TraceLifecycle {
		tracer = obs.NewLifecycleTracer(simclock.Epoch)
		serverSink = &ackSink{next: s.sink, tr: tracer}
		tagSink = &ackSink{next: s.sink, tr: tracer}
	}

	// The tag → collector path may be degraded by an injected fault
	// profile; the DSP's own served log never is. Forking the fault
	// stream here (once, before any impression) keeps the campaign's
	// behaviour stream identical to a run with a different fault rate.
	var faultSink *faults.Sink
	if s.cfg.TagFaults.Enabled() {
		faultSink = faults.NewSink(tagSink, rng.Fork("faults"), s.cfg.TagFaults)
		// Simulations run on a virtual clock; injected latency is counted
		// but must not wall-sleep.
		faultSink.SetSleep(nil)
		tagSink = faultSink
	}
	if tracer != nil {
		// Outermost wrapper: every tag beacon records an enqueue span (and
		// a state-transition span for in-view/out-of-view) before faults
		// or the store see it. A beacon that is enqueued but never
		// delivered was lost in transit — the trace shows exactly which.
		tagSink = &enqueueSink{next: tagSink, tr: tracer}
	}

	out := CampaignResult{Spec: spec}
	var records []ImpressionRecord
	for i := 0; i < spec.Impressions; i++ {
		if rec, ok := s.runImpression(spec, platform, rng, serverSink, tagSink, tracer, &out); ok && s.cfg.RecordImpressions {
			records = append(records, rec)
		}
	}
	if faultSink != nil {
		snap := faultSink.Stats()
		out.FaultDrops = int(snap.Dropped)
		out.FaultErrors = int(snap.Errored)
	}
	// Aggregate the beacon counts for this campaign from the store.
	out.Served = s.store.Served(spec.ID)
	out.QTagLoaded = s.store.Loaded(spec.ID, beacon.SourceQTag)
	out.QTagInView = s.store.InView(spec.ID, beacon.SourceQTag)
	out.CommercialLoaded = s.store.Loaded(spec.ID, beacon.SourceCommercial)
	out.CommercialInView = s.store.InView(spec.ID, beacon.SourceCommercial)
	return out, records, tracer
}

// enqueueSink is the tracing wrapper at the top of the tag beacon path: it
// records a state-transition span for in-view/out-of-view events and an
// enqueue span for every event, then forwards. A forwarding error (an
// injected fault, a validation reject) records a drop span — the beacon
// left the tag but never reached the store.
type enqueueSink struct {
	next beacon.Sink
	tr   *obs.LifecycleTracer
}

// Submit implements beacon.Sink.
func (s *enqueueSink) Submit(e beacon.Event) error {
	detail := string(e.Source) + ":" + string(e.Type)
	if e.Type == beacon.EventInView || e.Type == beacon.EventOutOfView {
		s.tr.Record(e.ImpressionID, e.CampaignID, obs.StageTransition, e.At, detail)
	}
	s.tr.Record(e.ImpressionID, e.CampaignID, obs.StageEnqueued, e.At, detail)
	if err := s.next.Submit(e); err != nil {
		s.tr.Record(e.ImpressionID, e.CampaignID, obs.StageDropped, e.At, err.Error())
		return err
	}
	return nil
}

// ackSink sits directly above the store and records a delivery span once
// the store has accepted the event. A beacon with an enqueue span but no
// delivery span was silently lost in transit (a fault-profile drop).
type ackSink struct {
	next beacon.Sink
	tr   *obs.LifecycleTracer
}

// Submit implements beacon.Sink.
func (s *ackSink) Submit(e beacon.Event) error {
	if err := s.next.Submit(e); err != nil {
		return err
	}
	s.tr.Record(e.ImpressionID, e.CampaignID, obs.StageDelivered, e.At, string(e.Type))
	return nil
}

const sessionPageOrigin = dom.Origin("https://publisher.example")

// runImpression simulates one served ad: environment draw, delivery
// through an exchange, the user's session, and ground-truth tracking.
func (s *Simulator) runImpression(spec Spec, platform *dsp.DSP, rng *simrand.RNG, serverSink, tagSink beacon.Sink, tracer *obs.LifecycleTracer, out *CampaignResult) (ImpressionRecord, bool) {
	envClass := spec.Mix.Draw(rng)
	model := s.cfg.EnvModels[envClass]
	prof := model.Profile(rng)

	clock := simclock.New()
	if s.cfg.SpreadOver > 0 {
		// Place this impression somewhere in the monitoring window; the
		// empty clock advances in O(1).
		clock.Advance(time.Duration(rng.Float64() * float64(s.cfg.SpreadOver)))
	}
	b := browser.New(clock, browser.Options{Profile: prof})
	defer b.Close()

	vp := geom.Size{W: 1280, H: 720}
	if prof.Device == browser.Mobile {
		vp = geom.Size{W: 412, H: 800}
	}
	pageH := 3200.0
	w := b.OpenWindow(geom.Point{}, vp)
	doc := dom.NewDocument(sessionPageOrigin, geom.Size{W: vp.W, H: pageH})
	page := w.ActiveTab().Navigate(doc)

	adY := rng.Range(60, pageH-spec.Size.H-60)
	adX := geom.Clamp((vp.W-spec.Size.W)/2, 0, vp.W)
	slot := doc.Root().AppendChild("ad-slot", geom.Rect{X: adX, Y: adY, W: spec.Size.W, H: spec.Size.H})

	exchange := adserve.NewExchange(Exchanges[rng.Intn(len(Exchanges))])
	exchange.Register(platform)
	deliverer := &adserve.Deliverer{
		Exchange:   exchange,
		ServerSink: serverSink,
		TagSink:    tagSink,
		Tracer:     tracer,
		TagLoadFails: func(adtag.Tag) bool {
			return !rng.Bool(model.TagLoadSuccess)
		},
	}
	req := &adserve.SlotRequest{
		Page: page, Slot: slot,
		Meta: beacon.Meta{
			OS:       string(prof.OS),
			SiteType: prof.Site.String(),
			Country:  spec.Country,
		},
	}
	del, err := deliverer.Deliver(req)
	if err != nil {
		return ImpressionRecord{}, false // no bid / blocked: not served
	}
	defer del.Close()

	// Ground-truth oracle sampled from compositor truth.
	criteria := viewability.CriteriaForSize(spec.Size, false)
	oracle := viewability.NewOracle(criteria)
	sampler := clock.Every(50*time.Millisecond, func() {
		oracle.Observe(clock.Now(), page.TrueVisibleFraction(del.CreativeElement))
	})

	runSession(page, drawSession(rng, spec.Audience), rng)
	sampler.Stop()
	viewed := oracle.FinishAt(clock.Now())
	if viewed {
		out.TruthViewed++
	}
	depth := (adY - vp.H) / pageH
	if depth < 0 {
		depth = 0
	}
	_, qtagFailed := del.TagErrors["qtag"]
	return ImpressionRecord{
		CampaignID:    spec.ID,
		Env:           envClass,
		Mobile:        prof.Device == browser.Mobile,
		DepthFraction: depth,
		Viewed:        viewed,
		QTagMeasured:  !qtagFailed,
	}, true
}

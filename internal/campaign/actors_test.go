package campaign_test

import (
	"reflect"
	"testing"

	"qtag/internal/beacon"
	. "qtag/internal/campaign"
	"qtag/internal/faults"
	"qtag/internal/obs"
	"qtag/internal/simrand"
)

// captureSink records every submission in order.
type captureSink struct{ events []beacon.Event }

func (c *captureSink) Submit(e beacon.Event) error {
	c.events = append(c.events, e)
	return nil
}

// TestRunActorDeterministic: same seed, same beacon stream and same
// ground-truth spans — byte for byte.
func TestRunActorDeterministic(t *testing.T) {
	for _, kind := range []ActorKind{
		ActorHonest, ActorReplayFarm, ActorAdStacking,
		ActorHiddenIframe, ActorSpoofedInView, ActorDuplicateFlood,
	} {
		run := func() ([]beacon.Event, []obs.LifecycleSpan, int) {
			sink := &captureSink{}
			tr := obs.NewLifecycleTracer(ActorEpoch)
			n := RunActor(ActorSpec{Kind: kind, CampaignID: "camp-x", Impressions: 20}, simrand.New(7), sink, tr)
			return sink.events, tr.Spans(), n
		}
		e1, s1, n1 := run()
		e2, s2, n2 := run()
		if n1 == 0 {
			t.Fatalf("%s emitted nothing", kind)
		}
		if n1 != n2 || !reflect.DeepEqual(e1, e2) || !reflect.DeepEqual(s1, s2) {
			t.Fatalf("%s is not deterministic", kind)
		}
		// One ground-truth span per impression, correctly tagged.
		if len(s1) != 20 {
			t.Fatalf("%s recorded %d oracle spans, want 20", kind, len(s1))
		}
		for _, sp := range s1 {
			if sp.Detail != kind.FraudTag() {
				t.Fatalf("%s span detail = %q, want %q", kind, sp.Detail, kind.FraudTag())
			}
		}
	}
}

// TestActorFraudTags: the fraud/honest split and tag format the
// oracle depends on.
func TestActorFraudTags(t *testing.T) {
	if ActorHonest.Fraudulent() {
		t.Fatal("honest marked fraudulent")
	}
	for _, k := range []ActorKind{ActorReplayFarm, ActorAdStacking, ActorHiddenIframe, ActorSpoofedInView, ActorDuplicateFlood} {
		if !k.Fraudulent() {
			t.Fatalf("%s not marked fraudulent", k)
		}
		if k.FraudTag() != "fraud:"+string(k) {
			t.Fatalf("%s tag = %q", k, k.FraudTag())
		}
	}
	if ActorHonest.FraudTag() != "honest" {
		t.Fatalf("honest tag = %q", ActorHonest.FraudTag())
	}
}

// TestSimulatorAdversaries: Config.Adversaries runs actors against
// the simulation sink and their ground truth lands in Result.Trace,
// separable from organic traffic by OracleLabels.
func TestSimulatorAdversaries(t *testing.T) {
	cfg := Config{
		Seed: 11, Campaigns: 2, ImpressionsPerCampaign: 20, BothCampaigns: 1,
		TraceLifecycle: true,
		Adversaries: []ActorSpec{
			{Kind: ActorHonest, CampaignID: "camp-clean", Impressions: 15},
			{Kind: ActorSpoofedInView, CampaignID: "camp-spoof", Impressions: 15},
		},
	}
	res := New(cfg).Run()
	if res.Store.InView("camp-spoof", beacon.SourceQTag) != 15 {
		t.Fatalf("spoofed in-views missing from store: %d", res.Store.InView("camp-spoof", beacon.SourceQTag))
	}
	labels := OracleLabels(res.Trace)
	if fraud, ok := labels["camp-spoof"]; !ok || !fraud {
		t.Fatalf("oracle labels = %v, want camp-spoof fraudulent", labels)
	}
	if fraud, ok := labels["camp-clean"]; !ok || fraud {
		t.Fatalf("oracle labels = %v, want camp-clean honest", labels)
	}
	// Organic campaigns carry no actor tags and stay out of the label set.
	if _, ok := labels["camp-001"]; ok {
		t.Fatalf("organic campaign leaked into oracle labels: %v", labels)
	}

	// Determinism end to end, adversaries included.
	res2 := New(cfg).Run()
	if !reflect.DeepEqual(res.Store.Events(), res2.Store.Events()) {
		t.Fatal("adversarial runs are not reproducible")
	}
}

// TestFaultDuplicateInjection: the Duplicate knob re-submits accepted
// events; the store absorbs them while the dup hook sees every one.
func TestFaultDuplicateInjection(t *testing.T) {
	store := beacon.NewStore()
	dups := 0
	store.AddDupObserver(func(beacon.Event) { dups++ })
	sink := faults.NewSink(store, simrand.New(3), faults.Profile{Duplicate: 0.5})
	n := RunActor(ActorSpec{Kind: ActorHonest, CampaignID: "camp-dup", Impressions: 100}, simrand.New(3), sink, nil)
	snap := sink.Stats()
	if snap.Duplicated == 0 {
		t.Fatal("no duplicates injected at rate 0.5")
	}
	if int64(dups) != snap.Duplicated {
		t.Fatalf("store dup hook saw %d, injector reports %d", dups, snap.Duplicated)
	}
	// Every actor submission is distinct, so the store holds exactly n:
	// the injected re-submissions were absorbed, not double-counted.
	if store.Len() != n {
		t.Fatalf("store len %d, want %d (injected dups must be absorbed)", store.Len(), n)
	}
}

// Package adserve implements the programmatic delivery chain that puts an
// ad (and its measurement tags) onto a page: ad slots, a real-time-auction
// ad exchange, and the delivery step that builds the nested cross-domain
// iframe sandwich the paper calls out as the common case DSPs face (§3,
// §4.2 footnote 2).
//
// Delivery of one impression:
//
//  1. the publisher page exposes an ad slot (an element);
//  2. the slot's request goes to an Exchange, which runs a second-price
//     auction across its bidders (DSPs);
//  3. the winning bid's creative is injected as
//     publisher page → exchange iframe → DSP iframe → creative,
//     each boundary cross-origin;
//  4. the DSP logs a server-side "served" event (always reliable — it
//     does not depend on anything running in the browser);
//  5. each measurement tag attached to the bid is deployed inside the
//     creative iframe. Tag deployment may fail (no usable API, script
//     load failure) without affecting delivery.
//
// Ad blockers and Brave shields cut the chain at step 2: the request to
// the third-party exchange never leaves the browser, so neither the ad
// nor any tag is deployed (§4.3).
package adserve

import (
	"errors"
	"fmt"
	"sort"

	"qtag/internal/adtag"
	"qtag/internal/beacon"
	"qtag/internal/browser"
	"qtag/internal/dom"
	"qtag/internal/geom"
	"qtag/internal/obs"
	"qtag/internal/simclock"
)

// Delivery errors.
var (
	// ErrAdBlocked reports that a content blocker prevented the ad
	// request from reaching the exchange.
	ErrAdBlocked = errors.New("adserve: ad request blocked by content blocker")
	// ErrNoBid reports that no bidder returned a bid for the request.
	ErrNoBid = errors.New("adserve: auction produced no bid")
)

// Creative is an ad creative to render.
type Creative struct {
	// ID identifies the creative.
	ID string
	// Size is the creative's pixel dimensions.
	Size geom.Size
	// Video reports video content (selects the video viewability
	// criteria).
	Video bool
}

// SlotRequest is one ad opportunity sent to the exchange.
type SlotRequest struct {
	// Page is the publisher page containing the slot.
	Page *browser.Page
	// Slot is the container element the ad renders into.
	Slot *dom.Element
	// Meta carries targeting/reporting attributes (country, exchange name
	// is filled by the exchange, OS and site type by the caller).
	Meta beacon.Meta
}

// Bid is a bidder's answer to a slot request.
type Bid struct {
	// PriceCPM is the bid price per thousand impressions.
	PriceCPM float64
	// Creative is what the bidder wants to render.
	Creative Creative
	// Origin is the bidder's iframe origin.
	Origin dom.Origin
	// Impression identifies the impression for measurement.
	Impression adtag.Impression
	// Tags are the measurement tags to deploy with the creative.
	Tags []adtag.Tag
}

// Bidder is a buy-side participant in the exchange's auctions.
type Bidder interface {
	// Name identifies the bidder.
	Name() string
	// Bid returns the bidder's bid for a request, or ok=false to pass.
	Bid(req *SlotRequest) (bid Bid, ok bool)
}

// WinNotifier is implemented by bidders that track spend: the exchange
// calls NotifyWin with the second-price clearing CPM when the bidder wins
// an auction.
type WinNotifier interface {
	NotifyWin(imp adtag.Impression, clearingCPM float64)
}

// Exchange connects sell-side slot requests with buy-side bidders through
// second-price auctions.
type Exchange struct {
	name    string
	origin  dom.Origin
	bidders []Bidder
}

// NewExchange creates an exchange with the given name; its iframes use
// origin https://<name>.example.
func NewExchange(name string) *Exchange {
	return &Exchange{name: name, origin: dom.Origin("https://" + name + ".example")}
}

// Name returns the exchange's name.
func (x *Exchange) Name() string { return x.name }

// Origin returns the origin of the exchange's delivery iframes.
func (x *Exchange) Origin() dom.Origin { return x.origin }

// Register adds a bidder to the exchange's auctions.
func (x *Exchange) Register(b Bidder) { x.bidders = append(x.bidders, b) }

// AuctionOutcome describes a completed auction.
type AuctionOutcome struct {
	// Winner is the winning bidder's name.
	Winner string
	// Bid is the winning bid.
	Bid Bid
	// ClearingPriceCPM is the second-price amount the winner pays (the
	// runner-up's price, or the winner's own bid when unopposed).
	ClearingPriceCPM float64
	// Participants is the number of bidders that returned bids.
	Participants int
}

// RunAuction collects bids and resolves a second-price auction. Ties are
// broken by bidder registration order (deterministic).
func (x *Exchange) RunAuction(req *SlotRequest) (AuctionOutcome, error) {
	req.Meta.Exchange = x.name
	type entry struct {
		bidder Bidder
		bid    Bid
		ord    int
	}
	var entries []entry
	for i, b := range x.bidders {
		if bid, ok := b.Bid(req); ok {
			if bid.PriceCPM <= 0 {
				continue
			}
			bid.Impression.Meta = mergeMeta(req.Meta, bid.Impression.Meta)
			entries = append(entries, entry{bidder: b, bid: bid, ord: i})
		}
	}
	if len(entries) == 0 {
		return AuctionOutcome{}, ErrNoBid
	}
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].bid.PriceCPM != entries[j].bid.PriceCPM {
			return entries[i].bid.PriceCPM > entries[j].bid.PriceCPM
		}
		return entries[i].ord < entries[j].ord
	})
	out := AuctionOutcome{
		Winner:       entries[0].bidder.Name(),
		Bid:          entries[0].bid,
		Participants: len(entries),
	}
	if len(entries) > 1 {
		out.ClearingPriceCPM = entries[1].bid.PriceCPM
	} else {
		out.ClearingPriceCPM = entries[0].bid.PriceCPM
	}
	if wn, ok := entries[0].bidder.(WinNotifier); ok {
		wn.NotifyWin(out.Bid.Impression, out.ClearingPriceCPM)
	}
	return out, nil
}

func mergeMeta(base, override beacon.Meta) beacon.Meta {
	if override.OS != "" {
		base.OS = override.OS
	}
	if override.SiteType != "" {
		base.SiteType = override.SiteType
	}
	if override.AdSize != "" {
		base.AdSize = override.AdSize
	}
	if override.Format != "" {
		base.Format = override.Format
	}
	if override.Country != "" {
		base.Country = override.Country
	}
	if override.Exchange != "" {
		base.Exchange = override.Exchange
	}
	return base
}

// Deliverer performs the browser-side delivery step.
type Deliverer struct {
	// Exchange runs the auctions.
	Exchange *Exchange
	// ServerSink receives the server-side served events (the DSP's own
	// logs; reliable by construction).
	ServerSink beacon.Sink
	// TagSink receives the beacons emitted by measurement tags (may be
	// lossy or remote).
	TagSink beacon.Sink
	// TagLoadFails optionally simulates tag script fetch failures: when
	// it returns true the tag is never executed for this impression.
	// Mobile networks and short-lived webviews make this the dominant
	// reason even Q-Tag misses ~3–9 % of impressions (Table 2).
	TagLoadFails func(adtag.Tag) bool
	// Tracer, when set, records lifecycle spans for every delivered
	// impression (served log, tag start, tag failures) and is handed to
	// each tag runtime so tags can record their own stages.
	Tracer *obs.LifecycleTracer
}

// Delivery is the result of delivering one impression.
type Delivery struct {
	// Outcome is the auction result.
	Outcome AuctionOutcome
	// CreativeElement is the rendered creative inside the iframe chain.
	CreativeElement *dom.Element
	// Runtimes holds the tag runtimes that deployed successfully.
	Runtimes []*adtag.Runtime
	// TagErrors records tags that could not deploy, keyed by tag name
	// ("load-failed" entries never executed; others returned an error).
	TagErrors map[string]error
}

// ErrTagLoadFailed marks tags whose script never loaded.
var ErrTagLoadFailed = errors.New("adserve: tag script failed to load")

// Deliver runs the full chain for one slot request. On success the
// creative is attached to the page inside exchange→DSP iframes, the
// served event is logged, and all loadable tags are deployed.
func (d *Deliverer) Deliver(req *SlotRequest) (*Delivery, error) {
	if req.Page.Tab().Window().Browser().BlocksAds() {
		// The request to the third-party exchange never leaves the
		// browser: no auction, no served log, no tags.
		return nil, ErrAdBlocked
	}
	outcome, err := d.Exchange.RunAuction(req)
	if err != nil {
		return nil, err
	}
	bid := outcome.Bid

	// Build the double cross-domain iframe sandwich inside the slot.
	slotRect := req.Slot.Rect()
	size := bid.Creative.Size
	outer := req.Slot.AttachIframe(d.Exchange.Origin(),
		geom.Rect{X: slotRect.X, Y: slotRect.Y, W: size.W, H: size.H})
	inner := outer.Root().AttachIframe(bid.Origin,
		geom.Rect{X: 0, Y: 0, W: size.W, H: size.H})
	creative := inner.Root().AppendChild("creative", geom.Rect{X: 0, Y: 0, W: size.W, H: size.H})
	req.Page.Tab().Window().Browser().InvalidateLayout()

	// Server-side impression log.
	clock := req.Page.Tab().Window().Browser().Clock()
	served := beacon.Event{
		ImpressionID: bid.Impression.ID,
		CampaignID:   bid.Impression.CampaignID,
		Type:         beacon.EventServed,
		At:           simclock.Epoch.Add(clock.Now()),
		Meta:         bid.Impression.Meta,
	}
	d.trace(bid, obs.StageServed, clock, d.Exchange.Name())
	if err := d.ServerSink.Submit(served); err != nil {
		return nil, fmt.Errorf("adserve: served log: %w", err)
	}

	del := &Delivery{Outcome: outcome, CreativeElement: creative, TagErrors: map[string]error{}}
	for _, tag := range bid.Tags {
		if d.TagLoadFails != nil && d.TagLoadFails(tag) {
			del.TagErrors[tag.Name()] = ErrTagLoadFailed
			d.trace(bid, obs.StageTagFailed, clock, tag.Name()+": load-failed")
			continue
		}
		rt := adtag.NewRuntime(req.Page, creative, d.TagSink, bid.Impression)
		rt.SetTracer(d.Tracer)
		d.trace(bid, obs.StageTagStart, clock, tag.Name())
		if err := tag.Deploy(rt); err != nil {
			del.TagErrors[tag.Name()] = err
			d.trace(bid, obs.StageTagFailed, clock, tag.Name()+": "+err.Error())
			continue
		}
		del.Runtimes = append(del.Runtimes, rt)
	}
	return del, nil
}

// trace records one lifecycle span at the page's current virtual time; a
// nil tracer makes it a no-op.
func (d *Deliverer) trace(bid Bid, stage obs.Stage, clock *simclock.Clock, detail string) {
	if d.Tracer == nil {
		return
	}
	d.Tracer.Record(bid.Impression.ID, bid.Impression.CampaignID, stage,
		simclock.Epoch.Add(clock.Now()), detail)
}

// Close tears down all tag runtimes of a delivery (end of session).
func (del *Delivery) Close() {
	for _, rt := range del.Runtimes {
		rt.Close()
	}
}

package adserve

import (
	"errors"
	"testing"
	"time"

	"qtag/internal/adtag"
	"qtag/internal/beacon"
	"qtag/internal/browser"
	"qtag/internal/commercial"
	"qtag/internal/dom"
	"qtag/internal/geom"
	"qtag/internal/qtag"
	"qtag/internal/simclock"
)

const pub = dom.Origin("https://publisher.example")

// stubBidder returns a fixed bid.
type stubBidder struct {
	name  string
	price float64
	pass  bool
	tags  []adtag.Tag
}

func (s *stubBidder) Name() string { return s.name }

func (s *stubBidder) Bid(req *SlotRequest) (Bid, bool) {
	if s.pass {
		return Bid{}, false
	}
	return Bid{
		PriceCPM: s.price,
		Creative: Creative{ID: "cr-" + s.name, Size: geom.Size{W: 300, H: 250}},
		Origin:   dom.Origin("https://" + s.name + ".example"),
		Impression: adtag.Impression{
			ID: "imp-" + s.name, CampaignID: "camp-" + s.name,
		},
		Tags: s.tags,
	}, true
}

func newPage(t *testing.T, prof browser.Profile) (*simclock.Clock, *browser.Browser, *browser.Page, *dom.Element) {
	t.Helper()
	clock := simclock.New()
	b := browser.New(clock, browser.Options{Profile: prof})
	t.Cleanup(b.Close)
	w := b.OpenWindow(geom.Point{}, geom.Size{W: 1280, H: 720})
	doc := dom.NewDocument(pub, geom.Size{W: 1280, H: 4000})
	page := w.ActiveTab().Navigate(doc)
	slot := doc.Root().AppendChild("ad-slot", geom.Rect{X: 200, Y: 100, W: 300, H: 250})
	return clock, b, page, slot
}

func chrome() browser.Profile { return browser.CertificationProfiles()[1] }

func TestSecondPriceAuction(t *testing.T) {
	x := NewExchange("appnexus")
	x.Register(&stubBidder{name: "dsp-a", price: 2.5})
	x.Register(&stubBidder{name: "dsp-b", price: 4.0})
	x.Register(&stubBidder{name: "dsp-c", price: 1.0})
	x.Register(&stubBidder{name: "dsp-d", pass: true})

	_, _, page, slot := newPage(t, chrome())
	req := &SlotRequest{Page: page, Slot: slot}
	out, err := x.RunAuction(req)
	if err != nil {
		t.Fatal(err)
	}
	if out.Winner != "dsp-b" {
		t.Errorf("winner = %s", out.Winner)
	}
	if out.ClearingPriceCPM != 2.5 {
		t.Errorf("clearing price = %v, want second price 2.5", out.ClearingPriceCPM)
	}
	if out.Participants != 3 {
		t.Errorf("participants = %d", out.Participants)
	}
	if req.Meta.Exchange != "appnexus" {
		t.Errorf("exchange meta = %q", req.Meta.Exchange)
	}
}

func TestAuctionSingleBidderPaysOwnBid(t *testing.T) {
	x := NewExchange("openx")
	x.Register(&stubBidder{name: "solo", price: 3.0})
	_, _, page, slot := newPage(t, chrome())
	out, err := x.RunAuction(&SlotRequest{Page: page, Slot: slot})
	if err != nil {
		t.Fatal(err)
	}
	if out.ClearingPriceCPM != 3.0 {
		t.Errorf("clearing price = %v", out.ClearingPriceCPM)
	}
}

func TestAuctionNoBid(t *testing.T) {
	x := NewExchange("rubicon")
	x.Register(&stubBidder{name: "passer", pass: true})
	x.Register(&stubBidder{name: "zero", price: 0})
	_, _, page, slot := newPage(t, chrome())
	if _, err := x.RunAuction(&SlotRequest{Page: page, Slot: slot}); !errors.Is(err, ErrNoBid) {
		t.Errorf("err = %v, want ErrNoBid", err)
	}
}

func TestAuctionTieBreaksByRegistrationOrder(t *testing.T) {
	x := NewExchange("smaato")
	x.Register(&stubBidder{name: "first", price: 2})
	x.Register(&stubBidder{name: "second", price: 2})
	_, _, page, slot := newPage(t, chrome())
	out, err := x.RunAuction(&SlotRequest{Page: page, Slot: slot})
	if err != nil {
		t.Fatal(err)
	}
	if out.Winner != "first" {
		t.Errorf("tie winner = %s", out.Winner)
	}
}

func TestDeliverBuildsCrossDomainSandwich(t *testing.T) {
	x := NewExchange("doubleclick")
	x.Register(&stubBidder{name: "winner", price: 1})
	store := beacon.NewStore()
	d := &Deliverer{Exchange: x, ServerSink: store, TagSink: store}
	_, _, page, slot := newPage(t, chrome())
	del, err := d.Deliver(&SlotRequest{Page: page, Slot: slot})
	if err != nil {
		t.Fatal(err)
	}
	creative := del.CreativeElement
	chain := creative.FrameChain()
	if len(chain) != 2 {
		t.Fatalf("frame chain depth = %d, want 2 (double iframe)", len(chain))
	}
	if chain[0].ContentDocument().Origin() != x.Origin() {
		t.Error("outer iframe should be the exchange's origin")
	}
	if chain[1].ContentDocument().Origin() != dom.Origin("https://winner.example") {
		t.Error("inner iframe should be the DSP's origin")
	}
	if _, err := creative.BoundingRectInTop(); !errors.Is(err, dom.ErrCrossOrigin) {
		t.Error("the delivered creative must be SOP-isolated from the top page")
	}
	// Geometry: the creative lands exactly on the slot.
	if got := creative.AbsoluteRect(); got != (geom.Rect{X: 200, Y: 100, W: 300, H: 250}) {
		t.Errorf("creative absolute rect = %v", got)
	}
	// Served event logged with the impression identity.
	if store.Served("camp-winner") != 1 {
		t.Error("served event missing")
	}
}

func TestDeliverDeploysQTag(t *testing.T) {
	x := NewExchange("mopub")
	x.Register(&stubBidder{name: "dsp", price: 1, tags: []adtag.Tag{qtag.New(qtag.Config{})}})
	store := beacon.NewStore()
	d := &Deliverer{Exchange: x, ServerSink: store, TagSink: store}
	clock, _, page, slot := newPage(t, chrome())
	del, err := d.Deliver(&SlotRequest{Page: page, Slot: slot})
	if err != nil {
		t.Fatal(err)
	}
	if len(del.Runtimes) != 1 || len(del.TagErrors) != 0 {
		t.Fatalf("runtimes=%d errors=%v", len(del.Runtimes), del.TagErrors)
	}
	if store.Loaded("camp-dsp", beacon.SourceQTag) != 1 {
		t.Error("qtag loaded beacon missing")
	}
	clock.Advance(1500 * time.Millisecond)
	if store.InView("camp-dsp", beacon.SourceQTag) != 1 {
		t.Error("qtag in-view missing for an above-the-fold delivery")
	}
	del.Close()
}

func TestDeliverTagLoadFailure(t *testing.T) {
	x := NewExchange("axonix")
	x.Register(&stubBidder{name: "dsp", price: 1, tags: []adtag.Tag{qtag.New(qtag.Config{})}})
	store := beacon.NewStore()
	d := &Deliverer{
		Exchange: x, ServerSink: store, TagSink: store,
		TagLoadFails: func(adtag.Tag) bool { return true },
	}
	_, _, page, slot := newPage(t, chrome())
	del, err := d.Deliver(&SlotRequest{Page: page, Slot: slot})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(del.TagErrors["qtag"], ErrTagLoadFailed) {
		t.Errorf("tag error = %v", del.TagErrors["qtag"])
	}
	if store.Served("camp-dsp") != 1 {
		t.Error("served must be logged even when the tag fails to load")
	}
	if store.Loaded("camp-dsp", beacon.SourceQTag) != 0 {
		t.Error("failed tag must not check in")
	}
}

func TestDeliverBlockedByAdBlockExtension(t *testing.T) {
	x := NewExchange("smart")
	x.Register(&stubBidder{name: "dsp", price: 1})
	store := beacon.NewStore()
	d := &Deliverer{Exchange: x, ServerSink: store, TagSink: store}
	_, b, page, slot := newPage(t, chrome())
	b.SetAdBlockExtension(true)
	_, err := d.Deliver(&SlotRequest{Page: page, Slot: slot})
	if !errors.Is(err, ErrAdBlocked) {
		t.Fatalf("err = %v, want ErrAdBlocked", err)
	}
	if store.Len() != 0 {
		t.Error("blocked delivery must emit nothing")
	}
	// The DOM is untouched: no iframe was attached to the slot.
	if len(slot.Children()) != 0 {
		t.Error("blocked delivery must not touch the page")
	}
}

func TestDeliverBlockedByBrave(t *testing.T) {
	x := NewExchange("smart")
	x.Register(&stubBidder{name: "dsp", price: 1})
	store := beacon.NewStore()
	d := &Deliverer{Exchange: x, ServerSink: store, TagSink: store}
	_, _, page, slot := newPage(t, browser.BraveProfile())
	if _, err := d.Deliver(&SlotRequest{Page: page, Slot: slot}); !errors.Is(err, ErrAdBlocked) {
		t.Fatalf("err = %v, want ErrAdBlocked", err)
	}
}

func TestDeliverNoBidPropagates(t *testing.T) {
	x := NewExchange("empty")
	store := beacon.NewStore()
	d := &Deliverer{Exchange: x, ServerSink: store, TagSink: store}
	_, _, page, slot := newPage(t, chrome())
	if _, err := d.Deliver(&SlotRequest{Page: page, Slot: slot}); !errors.Is(err, ErrNoBid) {
		t.Errorf("err = %v, want ErrNoBid", err)
	}
}

func TestMergeMeta(t *testing.T) {
	base := beacon.Meta{OS: "Android", SiteType: "app", Country: "US"}
	override := beacon.Meta{AdSize: "300x250", Format: "display", Country: "MX", Exchange: "x"}
	got := mergeMeta(base, override)
	if got.OS != "Android" || got.SiteType != "app" {
		t.Error("base fields lost")
	}
	if got.AdSize != "300x250" || got.Country != "MX" || got.Exchange != "x" {
		t.Errorf("override fields lost: %+v", got)
	}
}

// TestMultipleSlotsOnOnePage: a page with three ad slots, each delivered
// and measured independently by its own tag instance (real pages carry
// several ads; measurement must not cross-talk).
func TestMultipleSlotsOnOnePage(t *testing.T) {
	x := NewExchange("appnexus")
	x.Register(&stubBidder{name: "dsp", price: 1, tags: []adtag.Tag{qtag.New(qtag.Config{})}})
	store := beacon.NewStore()
	d := &Deliverer{Exchange: x, ServerSink: store, TagSink: store}

	clock := simclock.New()
	b := browser.New(clock, browser.Options{Profile: chrome()})
	defer b.Close()
	w := b.OpenWindow(geom.Point{}, geom.Size{W: 1280, H: 720})
	doc := dom.NewDocument(pub, geom.Size{W: 1280, H: 6000})
	page := w.ActiveTab().Navigate(doc)

	// Slot A above the fold, slot B straddling it, slot C far below.
	positions := []float64{100, 600, 3000}
	var deliveries []*Delivery
	for _, y := range positions {
		slot := doc.Root().AppendChild("ad-slot", geom.Rect{X: 200, Y: y, W: 300, H: 250})
		del, err := d.Deliver(&SlotRequest{Page: page, Slot: slot})
		if err != nil {
			t.Fatal(err)
		}
		deliveries = append(deliveries, del)
	}
	clock.Advance(2 * time.Second)

	// The stub bidder reuses one campaign id but distinct impressions are
	// generated per call? stubBidder uses a fixed impression id — verify
	// per-delivery creatives paint independently instead.
	fracs := make([]float64, 3)
	for i, del := range deliveries {
		fracs[i] = page.TrueVisibleFraction(del.CreativeElement)
	}
	if fracs[0] != 1 {
		t.Errorf("slot A fraction = %v, want 1", fracs[0])
	}
	if fracs[1] <= 0 || fracs[1] >= 1 {
		t.Errorf("slot B fraction = %v, want partial", fracs[1])
	}
	if fracs[2] != 0 {
		t.Errorf("slot C fraction = %v, want 0", fracs[2])
	}
	for _, del := range deliveries {
		del.Close()
	}
}

// TestBothTagsOnOneImpression: Q-Tag and the commercial tag measure the
// same creative side by side (the paper's 4-campaign comparison setup)
// and agree on the verdict in an IntersectionObserver-capable browser.
func TestBothTagsOnOneImpression(t *testing.T) {
	x := NewExchange("doubleclick")
	x.Register(&stubBidder{name: "dsp", price: 1, tags: []adtag.Tag{
		qtag.New(qtag.Config{}),
		commercial.New(commercial.Config{}),
	}})
	store := beacon.NewStore()
	d := &Deliverer{Exchange: x, ServerSink: store, TagSink: store}
	clock, _, page, slot := newPage(t, chrome())
	del, err := d.Deliver(&SlotRequest{Page: page, Slot: slot})
	if err != nil {
		t.Fatal(err)
	}
	if len(del.Runtimes) != 2 {
		t.Fatalf("runtimes = %d, want both tags", len(del.Runtimes))
	}
	clock.Advance(2 * time.Second)
	if store.InView("camp-dsp", beacon.SourceQTag) != 1 {
		t.Error("qtag in-view missing")
	}
	if store.InView("camp-dsp", beacon.SourceCommercial) != 1 {
		t.Error("commercial in-view missing")
	}
	// Scroll away: both report out-of-view.
	page.ScrollTo(geom.Point{Y: 3000})
	clock.Advance(time.Second)
	outs := store.Count(func(k beacon.CounterKey) bool { return k.Type == beacon.EventOutOfView })
	if outs != 2 {
		t.Errorf("out-of-view count = %d, want 2", outs)
	}
}

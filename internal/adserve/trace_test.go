package adserve

import (
	"testing"
	"time"

	"qtag/internal/adtag"
	"qtag/internal/beacon"
	"qtag/internal/obs"
	"qtag/internal/qtag"
	"qtag/internal/simclock"
)

// TestDeliverTraces checks the delivery step's lifecycle spans: a served
// span before the DSP log, a tag-start span per deployable tag, the tag's
// own classified span, and a tag-failed span when the script never loads.
func TestDeliverTraces(t *testing.T) {
	x := NewExchange("mopub")
	x.Register(&stubBidder{name: "dsp", price: 1, tags: []adtag.Tag{qtag.New(qtag.Config{})}})
	store := beacon.NewStore()
	tr := obs.NewLifecycleTracer(simclock.Epoch)
	d := &Deliverer{Exchange: x, ServerSink: store, TagSink: store, Tracer: tr}
	clock, _, page, slot := newPage(t, chrome())
	clock.Advance(200 * time.Millisecond)
	del, err := d.Deliver(&SlotRequest{Page: page, Slot: slot})
	if err != nil {
		t.Fatal(err)
	}
	defer del.Close()

	byStage := map[obs.Stage]int{}
	for _, s := range tr.Spans() {
		byStage[s.Stage]++
		if s.Impression != "imp-dsp" || s.Campaign != "camp-dsp" {
			t.Errorf("span identity = %s/%s", s.Impression, s.Campaign)
		}
		if s.At != 200*time.Millisecond {
			t.Errorf("span At = %v, want the 200ms virtual clock offset", s.At)
		}
	}
	if byStage[obs.StageServed] != 1 || byStage[obs.StageTagStart] != 1 {
		t.Errorf("stages = %v, want one served + one tag-start", byStage)
	}
	// The tag runtime inherited the tracer and recorded its pixel
	// classification arming.
	if byStage[obs.StageClassified] != 1 {
		t.Errorf("stages = %v, want one classified span from the tag", byStage)
	}

	spans := tr.Spans()
	if spans[0].Stage != obs.StageServed {
		t.Errorf("first span = %s, want served before everything else", spans[0].Stage)
	}
	if spans[0].Detail != "mopub" {
		t.Errorf("served span detail = %q, want the exchange name", spans[0].Detail)
	}
}

func TestDeliverTracesTagLoadFailure(t *testing.T) {
	x := NewExchange("axonix")
	x.Register(&stubBidder{name: "dsp", price: 1, tags: []adtag.Tag{qtag.New(qtag.Config{})}})
	tr := obs.NewLifecycleTracer(simclock.Epoch)
	store := beacon.NewStore()
	d := &Deliverer{
		Exchange: x, ServerSink: store, TagSink: store, Tracer: tr,
		TagLoadFails: func(adtag.Tag) bool { return true },
	}
	_, _, page, slot := newPage(t, chrome())
	del, err := d.Deliver(&SlotRequest{Page: page, Slot: slot})
	if err != nil {
		t.Fatal(err)
	}
	defer del.Close()

	var failed int
	for _, s := range tr.Spans() {
		if s.Stage == obs.StageTagFailed {
			failed++
			if s.Detail != "qtag: load-failed" {
				t.Errorf("tag-failed detail = %q", s.Detail)
			}
		}
		if s.Stage == obs.StageTagStart {
			t.Error("a tag that never loads must not record tag-start")
		}
	}
	if failed != 1 {
		t.Errorf("tag-failed spans = %d, want 1", failed)
	}
}

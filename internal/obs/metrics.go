// Package obs is the zero-dependency observability layer of the Q-Tag
// system: a metrics registry (atomic counters, callback-backed gauges,
// fixed-bucket latency histograms) exported in Prometheus text format,
// and a per-impression lifecycle tracer whose timestamps come from the
// simulation's virtual clock so traces are deterministic under test.
//
// Every delivery-pipeline component (beacon server, store-and-forward
// queue, circuit breaker, HTTP sink, overload guard, journal) owns its
// instruments and registers them on a Registry via a RegisterMetrics
// method; binaries expose the registry as GET /metrics (qtag-server) or
// as an end-of-run dump (qtag-sim). /healthz remains a thin JSON view
// over the same instruments.
package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter. The zero value is ready
// to use; all methods are safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// NewCounter returns a fresh counter at zero.
func NewCounter() *Counter { return &Counter{} }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Negative deltas are ignored — counters only go up.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Default histogram buckets, chosen to match the delivery pipeline's
// operating ranges.
var (
	// LatencyBuckets covers sub-millisecond in-process flushes up to
	// multi-second wire retries (seconds, like Prometheus conventions).
	LatencyBuckets = []float64{.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}
	// SizeBuckets covers batch sizes from single events to a full queue
	// drain at the default MaxBatch and beyond.
	SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
	// DwellBuckets covers in-view dwell times (seconds): the standard
	// viewability thresholds sit at 1 s (display) and 2 s (video), so the
	// buckets resolve finely around them and coarsely up to a minute.
	DwellBuckets = []float64{.1, .25, .5, 1, 2, 5, 10, 30, 60}
)

// Histogram is a fixed-bucket histogram with cumulative-bucket export à
// la Prometheus: an observation v is counted in every bucket whose upper
// bound is ≥ v ("le" semantics — a value exactly on a boundary lands in
// that boundary's bucket). The zero value is not usable; construct with
// NewHistogram. Safe for concurrent use.
type Histogram struct {
	bounds    []float64
	counts    []int64 // len(bounds)+1; last is +Inf, accessed atomically
	count     atomic.Int64
	sumBits   atomic.Uint64 // float64 bits of the running sum
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar links one concrete observation — and the trace that caused
// it — to a histogram bucket, so a scrape of qtag_ingest_latency can
// jump straight to /debug/traces?trace=<id> for a slow request.
type Exemplar struct {
	Value   float64
	TraceID string
	At      time.Time
}

// NewHistogram builds a histogram over the given ascending upper bounds.
// With no bounds it defaults to LatencyBuckets. Bounds are sorted and
// deduplicated defensively.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	uniq := b[:0]
	for i, v := range b {
		if i == 0 || v != b[i-1] {
			uniq = append(uniq, v)
		}
	}
	return &Histogram{
		bounds:    uniq,
		counts:    make([]int64, len(uniq)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(uniq)+1),
	}
}

// Observe records one value. NaN observations are ignored — they would
// poison the sum without carrying information.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v; len(bounds) → +Inf
	atomic.AddInt64(&h.counts[i], 1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		upd := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, upd) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveExemplar records a value like Observe and, when traceID is
// non-empty, remembers it as the bucket's exemplar (last write wins).
func (h *Histogram) ObserveExemplar(v float64, traceID string, at time.Time) {
	if math.IsNaN(v) {
		return
	}
	h.Observe(v)
	if traceID == "" {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.exemplars[i].Store(&Exemplar{Value: v, TraceID: traceID, At: at})
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// HistogramSnapshot is a point-in-time copy of a histogram. Counts are
// per-bucket (not cumulative); the final entry is the +Inf bucket.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []int64
	Count  int64
	Sum    float64
	// Exemplars holds one entry per bucket (nil when the bucket never saw
	// an exemplar observation); the final entry is the +Inf bucket's.
	Exemplars []*Exemplar
}

// Snapshot copies the histogram's state. The bucket counts and the total
// are read without a global lock, so under concurrent observation the
// snapshot is approximate (each individual value is atomic).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		s.Counts[i] = atomic.LoadInt64(&h.counts[i])
	}
	s.Exemplars = make([]*Exemplar, len(h.exemplars))
	for i := range h.exemplars {
		s.Exemplars[i] = h.exemplars[i].Load()
	}
	return s
}

// Cumulative returns the running bucket totals, Prometheus-style: entry i
// counts observations ≤ Bounds[i]; the last entry equals the total count.
func (s HistogramSnapshot) Cumulative() []int64 {
	out := make([]int64, len(s.Counts))
	var run int64
	for i, c := range s.Counts {
		run += c
		out[i] = run
	}
	return out
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the bucket containing the target rank, the same estimate
// Prometheus' histogram_quantile computes. Observations in the +Inf
// bucket clamp to the highest finite bound. Returns NaN when empty.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, c := range s.Counts {
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i == len(s.Bounds) { // +Inf bucket
			if len(s.Bounds) == 0 {
				return math.NaN()
			}
			return s.Bounds[len(s.Bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = s.Bounds[i-1]
		}
		upper := s.Bounds[i]
		if c == 0 {
			return upper
		}
		return lower + (upper-lower)*(rank-float64(prev))/float64(c)
	}
	return math.NaN()
}

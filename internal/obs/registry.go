package obs

import (
	"sync"
	"sync/atomic"
)

// Label is one constant name/value pair attached to a metric series.
type Label struct{ Name, Value string }

// Labels is an ordered label set. Order is preserved in the export (sort
// your labels if you need canonical output across processes).
type Labels []Label

// kind enumerates the exported metric types.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

// String returns the Prometheus TYPE keyword.
func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// entry is one registered series.
type entry struct {
	name   string
	help   string
	labels Labels
	kind   kind
	intFn  func() int64   // counter kind
	fltFn  func() float64 // gauge kind
	hist   *Histogram     // histogram kind
}

// Registry holds registered metrics for export. The zero value is not
// usable; construct with NewRegistry. Registration and collection are
// both safe for concurrent use — metrics may be registered after a
// server has started scraping.
//
// Registering a series with the same name and label set as an existing
// one replaces it (idempotent re-registration), so wiring code can be
// re-run without bookkeeping.
type Registry struct {
	mu      sync.RWMutex
	entries []*entry

	emitExemplars atomic.Bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// SetExemplars toggles OpenMetrics exemplar suffixes on histogram
// bucket lines in the text export. Off by default: exemplars are an
// OpenMetrics extension, and strict 0.0.4 text-format parsers may
// reject them.
func (r *Registry) SetExemplars(on bool) { r.emitExemplars.Store(on) }

func (r *Registry) add(e *entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, old := range r.entries {
		if old.name == e.name && labelsEqual(old.labels, e.labels) {
			r.entries[i] = e
			return
		}
	}
	r.entries = append(r.entries, e)
}

func labelsEqual(a, b Labels) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter creates, registers and returns a new counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := NewCounter()
	r.CounterFunc(name, help, c.Value, labels...)
	return c
}

// CounterFunc registers a counter series sampled from a callback at
// collection time — the migration path for components that already keep
// their own atomic counters. The callback must be monotonic and safe for
// concurrent use.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...Label) {
	r.add(&entry{name: name, help: help, labels: labels, kind: kindCounter, intFn: fn})
}

// GaugeFunc registers a gauge series sampled from a callback at
// collection time (queue depth, breaker state, journal backlog...). The
// callback must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.add(&entry{name: name, help: help, labels: labels, kind: kindGauge, fltFn: fn})
}

// Histogram creates, registers and returns a new histogram series over
// the given bucket upper bounds (LatencyBuckets when empty).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	h := NewHistogram(bounds...)
	r.RegisterHistogram(name, help, h, labels...)
	return h
}

// RegisterHistogram registers an existing histogram under the given
// series name.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram, labels ...Label) {
	r.add(&entry{name: name, help: help, labels: labels, kind: kindHistogram, hist: h})
}

// snapshot returns a stable copy of the entry list for collection.
func (r *Registry) snapshot() []*entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]*entry(nil), r.entries...)
}

// Values flattens every series to fully-qualified-name → value, the
// programmatic twin of the text export used by reconciliation checks and
// tests. Histograms contribute <name>_count and <name>_sum entries plus
// one <name>_bucket{le="..."} entry per cumulative bucket.
func (r *Registry) Values() map[string]float64 {
	out := map[string]float64{}
	for _, e := range r.snapshot() {
		base := e.name + renderLabels(e.labels)
		switch e.kind {
		case kindCounter:
			out[base] = float64(e.intFn())
		case kindGauge:
			out[base] = e.fltFn()
		case kindHistogram:
			s := e.hist.Snapshot()
			out[e.name+"_count"+renderLabels(e.labels)] = float64(s.Count)
			out[e.name+"_sum"+renderLabels(e.labels)] = s.Sum
			cum := s.Cumulative()
			for i, b := range s.Bounds {
				out[e.name+"_bucket"+renderLabels(append(e.labels.clone(), Label{"le", formatFloat(b)}))] = float64(cum[i])
			}
			out[e.name+"_bucket"+renderLabels(append(e.labels.clone(), Label{"le", "+Inf"}))] = float64(cum[len(cum)-1])
		}
	}
	return out
}

func (l Labels) clone() Labels { return append(Labels(nil), l...) }

package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestTracesHandlerRejectsMalformedParams: non-numeric (or out-of-range)
// min_ms/limit answer 400 with a JSON error body instead of silently
// falling back to defaults.
func TestTracesHandlerRejectsMalformedParams(t *testing.T) {
	h := TracesHandler(NewSpanStore(8))
	bad := []string{
		"/debug/traces?min_ms=abc",
		"/debug/traces?min_ms=", // empty value after '=' is still absent
		"/debug/traces?min_ms=-3",
		"/debug/traces?min_ms=NaN",
		"/debug/traces?min_ms=Inf",
		"/debug/traces?limit=abc",
		"/debug/traces?limit=0",
		"/debug/traces?limit=-5",
		"/debug/traces?limit=1.5",
		"/debug/traces?min_ms=abc&limit=10",
	}
	for _, url := range bad {
		if url == "/debug/traces?min_ms=" {
			continue // covered in the good list below
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("%s: status = %d, want 400", url, rec.Code)
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
			t.Fatalf("%s: content-type = %q, want JSON", url, ct)
		}
		var body map[string]string
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body["error"] == "" {
			t.Fatalf("%s: body %q is not a JSON error envelope", url, rec.Body.String())
		}
	}

	good := []string{
		"/debug/traces",
		"/debug/traces?min_ms=",
		"/debug/traces?limit=",
		"/debug/traces?min_ms=0",
		"/debug/traces?min_ms=2.5&limit=10",
	}
	for _, url := range good {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status = %d, want 200", url, rec.Code)
		}
	}
}

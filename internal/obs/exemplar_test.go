package obs

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestObserveExemplarCountsAndStores(t *testing.T) {
	h := NewHistogram(0.01, 0.1, 1)
	h.ObserveExemplar(0.05, "deadbeefdeadbeefdeadbeefdeadbeef", time.Unix(1700000000, 0))
	h.ObserveExemplar(0.05, "", time.Time{}) // counted, no exemplar
	s := h.Snapshot()
	if s.Count != 2 {
		t.Fatalf("count = %d, want 2", s.Count)
	}
	if s.Exemplars[1] == nil || s.Exemplars[1].TraceID != "deadbeefdeadbeefdeadbeefdeadbeef" {
		t.Fatalf("bucket 0.1 exemplar = %+v", s.Exemplars[1])
	}
	if s.Exemplars[0] != nil || s.Exemplars[2] != nil || s.Exemplars[3] != nil {
		t.Fatalf("unexpected exemplars in other buckets: %+v", s.Exemplars)
	}
	// Last write wins within a bucket.
	h.ObserveExemplar(0.09, "cafecafecafecafecafecafecafecafe", time.Unix(1700000001, 0))
	if got := h.Snapshot().Exemplars[1].TraceID; got != "cafecafecafecafecafecafecafecafe" {
		t.Fatalf("exemplar not replaced: %s", got)
	}
}

func TestPrometheusExemplarRendering(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("qtag_test_latency_seconds", "test", []float64{0.1, 1})
	h.ObserveExemplar(0.05, "deadbeefdeadbeefdeadbeefdeadbeef", time.Unix(1700000000, 500_000_000))

	// Default: plain 0.0.4 text, no exemplar suffixes.
	if out := reg.Render(); strings.Contains(out, "# {") {
		t.Fatalf("exemplars leaked into default output:\n%s", out)
	}

	reg.SetExemplars(true)
	out := reg.Render()
	want := `qtag_test_latency_seconds_bucket{le="0.1"} 1 # {trace_id="deadbeefdeadbeefdeadbeefdeadbeef"} 0.05 1700000000.500`
	if !strings.Contains(out, want) {
		t.Fatalf("exemplar line missing.\nwant substring: %s\ngot:\n%s", want, out)
	}
	// Buckets without exemplars render bare.
	if !strings.Contains(out, "qtag_test_latency_seconds_bucket{le=\"1\"} 1\n") {
		t.Fatalf("bare bucket line missing:\n%s", out)
	}

	reg.SetExemplars(false)
	if out := reg.Render(); strings.Contains(out, "# {") {
		t.Fatalf("exemplars must toggle off:\n%s", out)
	}
}

func TestRegisterBuildInfo(t *testing.T) {
	reg := NewRegistry()
	RegisterBuildInfo(reg, "v1.2.3", "node-a")
	out := reg.Render()
	want := `qtag_build_info{version="v1.2.3",go_version="` + runtime.Version() + `",node_id="node-a"} 1`
	if !strings.Contains(out, want) {
		t.Fatalf("build info missing.\nwant: %s\ngot:\n%s", want, out)
	}
	// Empty node id omits the label.
	reg2 := NewRegistry()
	RegisterBuildInfo(reg2, "dev", "")
	if strings.Contains(reg2.Render(), "node_id") {
		t.Fatalf("node_id label must be omitted when empty:\n%s", reg2.Render())
	}
}

package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// SpanRecord is one finished span as retained by the SpanStore and
// exported on /debug/traces. IDs are lowercase hex.
type SpanRecord struct {
	TraceID  string        `json:"trace_id"`
	SpanID   string        `json:"span_id"`
	ParentID string        `json:"parent_id,omitempty"`
	Name     string        `json:"name"`
	Node     string        `json:"node,omitempty"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Error    string        `json:"error,omitempty"`
	Attrs    []Attr        `json:"attrs,omitempty"`
}

// Attr lookup by key; "" when absent.
func (r SpanRecord) Attr(key string) string {
	for _, a := range r.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// DefaultSpanBuffer is the SpanStore capacity when none is given.
const DefaultSpanBuffer = 4096

// SpanStore is a bounded ring buffer of finished spans: the newest
// Cap records win, older ones are overwritten. It is the in-process
// stand-in for a trace collector — cheap enough to keep on at all
// times, bounded so a retry storm cannot eat the heap.
type SpanStore struct {
	mu      sync.Mutex
	buf     []SpanRecord
	next    int
	full    bool
	added   uint64
	evicted uint64
}

// NewSpanStore returns a store retaining the newest capacity spans
// (DefaultSpanBuffer when capacity <= 0).
func NewSpanStore(capacity int) *SpanStore {
	if capacity <= 0 {
		capacity = DefaultSpanBuffer
	}
	return &SpanStore{buf: make([]SpanRecord, 0, capacity)}
}

// Add retains rec, evicting the oldest record once full.
func (s *SpanStore) Add(rec SpanRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.added++
	if !s.full {
		s.buf = append(s.buf, rec)
		if len(s.buf) == cap(s.buf) {
			s.full = true
		}
		return
	}
	s.buf[s.next] = rec
	s.next = (s.next + 1) % len(s.buf)
	s.evicted++
}

// Len returns the number of retained spans.
func (s *SpanStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.buf)
}

// Stats returns total spans ever added and how many were evicted by
// the ring wrapping — the buffer-sizing signal for /metrics.
func (s *SpanStore) Stats() (added, evicted uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.added, s.evicted
}

// Snapshot returns the retained spans, oldest first.
func (s *SpanStore) Snapshot() []SpanRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SpanRecord, 0, len(s.buf))
	out = append(out, s.buf[s.next:]...)
	out = append(out, s.buf[:s.next]...)
	return out
}

// Trace returns the retained spans of one trace, oldest first.
func (s *SpanStore) Trace(traceID string) []SpanRecord {
	var out []SpanRecord
	for _, rec := range s.Snapshot() {
		if rec.TraceID == traceID {
			out = append(out, rec)
		}
	}
	return out
}

// RegisterMetrics exposes the store's occupancy on reg.
func (s *SpanStore) RegisterMetrics(reg *Registry) {
	reg.GaugeFunc("qtag_trace_spans_stored", "Spans currently retained in the trace ring buffer.",
		func() float64 { return float64(s.Len()) })
	reg.CounterFunc("qtag_trace_spans_evicted_total", "Spans overwritten by the trace ring buffer wrapping.",
		func() int64 { _, ev := s.Stats(); return int64(ev) })
}

// traceSummary is one row of the /debug/traces listing.
type traceSummary struct {
	TraceID    string    `json:"trace_id"`
	Root       string    `json:"root"`
	Campaign   string    `json:"campaign,omitempty"`
	Nodes      []string  `json:"nodes,omitempty"`
	Start      time.Time `json:"start"`
	DurationMs float64   `json:"duration_ms"`
	Spans      int       `json:"spans"`
	Error      bool      `json:"error"`
}

// TracesHandler serves GET /debug/traces from store.
//
//	?trace=<32-hex id>   full span list for one trace
//	?min_ms=<float>      only traces at least this long
//	?error=1             only traces containing an errored span
//	?campaign=<id>       only traces touching this campaign
//	?limit=<n>           at most n summaries (default 50)
//
// Listings are newest-first by trace start time.
func TracesHandler(store *SpanStore) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, `{"error":"method not allowed"}`, http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		q := r.URL.Query()
		if id := q.Get("trace"); id != "" {
			spans := store.Trace(id)
			_ = json.NewEncoder(w).Encode(map[string]any{
				"trace_id": id,
				"spans":    spans,
			})
			return
		}
		// Malformed filters are a caller bug and answer 400 — a silent
		// fallback to the defaults would make a typo'd query look like
		// "no slow traces exist".
		var minMs float64
		if raw := q.Get("min_ms"); raw != "" {
			v, err := strconv.ParseFloat(raw, 64)
			if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				w.WriteHeader(http.StatusBadRequest)
				_ = json.NewEncoder(w).Encode(map[string]string{
					"error": fmt.Sprintf("bad min_ms %q: want a non-negative number of milliseconds", raw),
				})
				return
			}
			minMs = v
		}
		onlyErr := q.Get("error") == "1" || q.Get("error") == "true"
		campaign := q.Get("campaign")
		limit := 50
		if raw := q.Get("limit"); raw != "" {
			v, err := strconv.Atoi(raw)
			if err != nil || v <= 0 {
				w.WriteHeader(http.StatusBadRequest)
				_ = json.NewEncoder(w).Encode(map[string]string{
					"error": fmt.Sprintf("bad limit %q: want a positive integer", raw),
				})
				return
			}
			limit = v
		}

		sums := summarize(store.Snapshot())
		out := make([]traceSummary, 0, len(sums))
		for _, ts := range sums {
			if ts.DurationMs < minMs {
				continue
			}
			if onlyErr && !ts.Error {
				continue
			}
			if campaign != "" && ts.Campaign != campaign {
				continue
			}
			out = append(out, ts)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
		if len(out) > limit {
			out = out[:limit]
		}
		_ = json.NewEncoder(w).Encode(map[string]any{
			"count":  len(out),
			"traces": out,
		})
	})
}

// summarize folds a span snapshot into one summary per trace. The
// root is the span with no parent when retained, otherwise the
// earliest span; the trace duration spans min start to max end.
func summarize(spans []SpanRecord) []traceSummary {
	type acc struct {
		sum      traceSummary
		earliest time.Time
		latest   time.Time
		rooted   bool
		nodes    map[string]struct{}
	}
	byTrace := map[string]*acc{}
	for _, sp := range spans {
		a := byTrace[sp.TraceID]
		if a == nil {
			a = &acc{nodes: map[string]struct{}{}}
			a.sum.TraceID = sp.TraceID
			a.sum.Root = sp.Name
			a.earliest = sp.Start
			a.latest = sp.Start.Add(sp.Duration)
			byTrace[sp.TraceID] = a
		}
		a.sum.Spans++
		if sp.Error != "" {
			a.sum.Error = true
		}
		if sp.Node != "" {
			a.nodes[sp.Node] = struct{}{}
		}
		if c := sp.Attr("campaign"); c != "" && a.sum.Campaign == "" {
			a.sum.Campaign = c
		}
		if sp.ParentID == "" && !a.rooted {
			a.rooted = true
			a.sum.Root = sp.Name
		}
		if sp.Start.Before(a.earliest) {
			a.earliest = sp.Start
			if !a.rooted {
				a.sum.Root = sp.Name
			}
		}
		if end := sp.Start.Add(sp.Duration); end.After(a.latest) {
			a.latest = end
		}
	}
	out := make([]traceSummary, 0, len(byTrace))
	for _, a := range byTrace {
		a.sum.Start = a.earliest
		a.sum.DurationMs = float64(a.latest.Sub(a.earliest)) / float64(time.Millisecond)
		for n := range a.nodes {
			a.sum.Nodes = append(a.sum.Nodes, n)
		}
		sort.Strings(a.sum.Nodes)
		out = append(out, a.sum)
	}
	return out
}

package obs

import "runtime"

// RegisterBuildInfo exposes the conventional constant-1 build-identity
// gauge, so dashboards and alerts can pivot any other series on the
// code version and node that produced it:
//
//	qtag_build_info{version="v1.2.3",go_version="go1.23.0",node_id="a"} 1
func RegisterBuildInfo(reg *Registry, version, nodeID string) {
	labels := Labels{{Name: "version", Value: version}, {Name: "go_version", Value: runtime.Version()}}
	if nodeID != "" {
		labels = append(labels, Label{Name: "node_id", Value: nodeID})
	}
	reg.GaugeFunc("qtag_build_info", "Constant 1, labeled with the build's version, Go toolchain, and node identity.",
		func() float64 { return 1 }, labels...)
}

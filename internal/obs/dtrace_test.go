package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// fixedRand returns a deterministic, non-zero uint64 stream.
func fixedRand() func() uint64 {
	var n uint64
	return func() uint64 {
		n += 0x9e3779b97f4a7c15
		return n
	}
}

func testTracer(store *SpanStore, rate float64) *Tracer {
	return NewTracer(TracerConfig{Node: "n1", SampleRate: rate, Store: store, Rand: fixedRand()})
}

func TestTraceParentRoundTrip(t *testing.T) {
	tr := testTracer(nil, 1)
	sp := tr.StartSpan(SpanContext{}, "root")
	tp := sp.TraceParent()
	if len(tp) != 55 || !strings.HasPrefix(tp, "00-") {
		t.Fatalf("traceparent %q malformed", tp)
	}
	got, err := ParseTraceParent(tp)
	if err != nil {
		t.Fatalf("ParseTraceParent(%q): %v", tp, err)
	}
	if got != sp.Context() {
		t.Fatalf("round trip: got %+v want %+v", got, sp.Context())
	}
	if !got.Sampled() {
		t.Fatal("rate-1 root must be sampled")
	}
}

func TestParseTraceParentRejects(t *testing.T) {
	bad := []string{
		"",
		"00-abc",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span id
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // reserved version
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra",
		"zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"00-4bf92f3577b34da6a3ce929d0e0e473X-00f067aa0ba902b7-01",
		"00x4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
	}
	for _, s := range bad {
		if _, err := ParseTraceParent(s); err == nil {
			t.Errorf("ParseTraceParent(%q) accepted, want error", s)
		}
	}
	// A future version with trailing fields parses (spec: best-effort).
	ok := "01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-whatever"
	if _, err := ParseTraceParent(ok); err != nil {
		t.Errorf("ParseTraceParent(%q): %v", ok, err)
	}
}

func TestChildSpanInheritsTraceAndSampling(t *testing.T) {
	store := NewSpanStore(16)
	tr := testTracer(store, 1)
	root := tr.StartSpan(SpanContext{}, "root")
	child := tr.StartSpan(root.Context(), "child")
	if child.Context().TraceID != root.Context().TraceID {
		t.Fatal("child must share the trace id")
	}
	if child.Context().SpanID == root.Context().SpanID {
		t.Fatal("child must have a fresh span id")
	}
	if !child.Sampled() {
		t.Fatal("child must inherit the sampled flag")
	}
	child.End()
	root.End()
	spans := store.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("stored %d spans, want 2", len(spans))
	}
	if spans[0].ParentID != root.Context().SpanID.String() {
		t.Fatalf("child parent = %q, want root span id %s", spans[0].ParentID, root.Context().SpanID)
	}
	if spans[1].ParentID != "" {
		t.Fatalf("root parent = %q, want empty", spans[1].ParentID)
	}
}

func TestSamplingRateZeroKeepsOnlyErrors(t *testing.T) {
	store := NewSpanStore(16)
	tr := testTracer(store, 0)
	ok := tr.StartSpan(SpanContext{}, "ok")
	if ok.Sampled() {
		t.Fatal("rate-0 root must not be sampled")
	}
	ok.End()
	bad := tr.StartSpan(SpanContext{}, "bad")
	bad.SetError("boom")
	bad.End()
	spans := store.Snapshot()
	if len(spans) != 1 || spans[0].Name != "bad" || spans[0].Error != "boom" {
		t.Fatalf("stored %+v, want only the errored span", spans)
	}
}

func TestSamplingRateIsProbabilistic(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleRate: 0.25, Rand: fixedRand()})
	sampled := 0
	const n = 4000
	for i := 0; i < n; i++ {
		if tr.StartSpan(SpanContext{}, "x").Sampled() {
			sampled++
		}
	}
	frac := float64(sampled) / n
	if frac < 0.15 || frac > 0.35 {
		t.Fatalf("sampled fraction %.3f, want ~0.25", frac)
	}
}

func TestNilTracerAndNilSpanAreSafe(t *testing.T) {
	var tr *Tracer
	sp := tr.StartSpan(SpanContext{}, "x")
	if sp != nil {
		t.Fatal("nil tracer must return nil span")
	}
	sp.SetAttr("k", "v")
	sp.SetError("e")
	sp.End()
	if sp.TraceParent() != "" || sp.Sampled() || sp.Context().Valid() {
		t.Fatal("nil span accessors must return zero values")
	}
	if tr.StartSpanParent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", "x") != nil {
		t.Fatal("nil tracer StartSpanParent must return nil")
	}
}

func TestEndIsIdempotent(t *testing.T) {
	store := NewSpanStore(16)
	tr := testTracer(store, 1)
	sp := tr.StartSpan(SpanContext{}, "once")
	sp.End()
	sp.End()
	sp.End()
	if got := store.Len(); got != 1 {
		t.Fatalf("stored %d spans, want 1", got)
	}
}

func TestSpanDurationIsMonotonic(t *testing.T) {
	now := time.Now()
	clock := now
	tr := NewTracer(TracerConfig{
		SampleRate: 1,
		Store:      NewSpanStore(4),
		Rand:       fixedRand(),
		Now:        func() time.Time { clock = clock.Add(5 * time.Millisecond); return clock },
	})
	sp := tr.StartSpan(SpanContext{}, "timed")
	sp.End()
	rec := tr.store.Snapshot()[0]
	if rec.Duration != 5*time.Millisecond {
		t.Fatalf("duration %v, want 5ms", rec.Duration)
	}
}

func TestStartSpanParentMalformedStartsNewRoot(t *testing.T) {
	tr := testTracer(nil, 1)
	sp := tr.StartSpanParent("garbage", "x")
	if !sp.Context().Valid() {
		t.Fatal("must mint a fresh valid context")
	}
	if sp.Context().TraceID.IsZero() {
		t.Fatal("trace id must be non-zero")
	}
}

func TestTraceMiddleware(t *testing.T) {
	store := NewSpanStore(16)
	tr := testTracer(store, 1)
	var inner *Span
	var innerTP string
	h := TraceMiddleware(tr, "http.test", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		inner = SpanFromContext(r.Context())
		innerTP = r.Header.Get(TraceParentHeader)
		w.WriteHeader(http.StatusAccepted)
	}))

	// Continues an inbound traceparent.
	parent := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	req := httptest.NewRequest(http.MethodPost, "/v1/events", nil)
	req.Header.Set(TraceParentHeader, parent)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if inner == nil {
		t.Fatal("span missing from request context")
	}
	if got := inner.Context().TraceID.String(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace id %s, want inherited", got)
	}
	if innerTP != inner.TraceParent() {
		t.Fatalf("request traceparent %q not rewritten to the server span %q", innerTP, inner.TraceParent())
	}
	if got := rr.Header().Get(TraceIDResponseHeader); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("Trace-Id response header %q", got)
	}
	recs := store.Snapshot()
	if len(recs) != 1 || recs[0].Attr("http.status") != "202" {
		t.Fatalf("stored %+v, want one span with status 202", recs)
	}

	// 5xx marks the span errored even without sampling.
	store2 := NewSpanStore(16)
	tr2 := testTracer(store2, 0)
	h2 := TraceMiddleware(tr2, "http.test", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusInternalServerError)
	}))
	rr2 := httptest.NewRecorder()
	h2.ServeHTTP(rr2, httptest.NewRequest(http.MethodGet, "/x", nil))
	recs2 := store2.Snapshot()
	if len(recs2) != 1 || recs2[0].Error == "" {
		t.Fatalf("stored %+v, want one errored span", recs2)
	}

	// Nil tracer returns next unchanged.
	next := http.NotFoundHandler()
	if TraceMiddleware(nil, "x", next) == nil {
		t.Fatal("nil tracer must pass through")
	}
}

package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func rec(trace, span, parent, name string, start time.Time, dur time.Duration) SpanRecord {
	return SpanRecord{TraceID: trace, SpanID: span, ParentID: parent, Name: name, Start: start, Duration: dur}
}

func TestSpanStoreRingEviction(t *testing.T) {
	s := NewSpanStore(3)
	base := time.Now()
	for i := 0; i < 5; i++ {
		s.Add(rec(fmt.Sprintf("t%d", i), "s", "", "n", base, 0))
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	snap := s.Snapshot()
	if snap[0].TraceID != "t2" || snap[2].TraceID != "t4" {
		t.Fatalf("snapshot order wrong: %+v", snap)
	}
	added, evicted := s.Stats()
	if added != 5 || evicted != 2 {
		t.Fatalf("stats added=%d evicted=%d, want 5/2", added, evicted)
	}
}

func TestSpanStoreTraceLookup(t *testing.T) {
	s := NewSpanStore(8)
	base := time.Now()
	s.Add(rec("aaa", "1", "", "root", base, time.Millisecond))
	s.Add(rec("bbb", "2", "", "other", base, time.Millisecond))
	s.Add(rec("aaa", "3", "1", "child", base, time.Millisecond))
	got := s.Trace("aaa")
	if len(got) != 2 || got[0].SpanID != "1" || got[1].SpanID != "3" {
		t.Fatalf("Trace(aaa) = %+v", got)
	}
}

func TestSpanStoreDefaultCapacity(t *testing.T) {
	s := NewSpanStore(0)
	if cap(s.buf) != DefaultSpanBuffer {
		t.Fatalf("cap = %d, want %d", cap(s.buf), DefaultSpanBuffer)
	}
}

// tracesGet hits the handler and decodes the JSON body into out.
func tracesGet(t *testing.T, h http.Handler, url string, out any) {
	t.Helper()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, url, nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", url, rr.Code, rr.Body.String())
	}
	if err := json.Unmarshal(rr.Body.Bytes(), out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
}

type tracesPage struct {
	Count  int `json:"count"`
	Traces []struct {
		TraceID    string   `json:"trace_id"`
		Root       string   `json:"root"`
		Campaign   string   `json:"campaign"`
		Nodes      []string `json:"nodes"`
		DurationMs float64  `json:"duration_ms"`
		Spans      int      `json:"spans"`
		Error      bool     `json:"error"`
	} `json:"traces"`
}

func TestTracesHandlerListingAndFilters(t *testing.T) {
	s := NewSpanStore(32)
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

	// Trace "slow": 2 spans across two nodes, 40ms, campaign camp-9.
	slow := rec("f00d000000000000000000000000slow", "a1", "", "ingest", base.Add(time.Second), 40*time.Millisecond)
	slow.Node = "node-a"
	slow.Attrs = []Attr{{Key: "campaign", Value: "camp-9"}}
	s.Add(slow)
	slowChild := rec("f00d000000000000000000000000slow", "a2", "a1", "forward", base.Add(time.Second), 10*time.Millisecond)
	slowChild.Node = "node-b"
	s.Add(slowChild)

	// Trace "fast": 1 span, 1ms, errored, newer.
	fast := rec("f00d000000000000000000000000fast", "b1", "", "ingest", base.Add(2*time.Second), time.Millisecond)
	fast.Error = "boom"
	s.Add(fast)

	h := TracesHandler(s)

	var page tracesPage
	tracesGet(t, h, "/debug/traces", &page)
	if page.Count != 2 {
		t.Fatalf("count = %d, want 2", page.Count)
	}
	// Newest first.
	if page.Traces[0].TraceID != "f00d000000000000000000000000fast" {
		t.Fatalf("order wrong: %+v", page.Traces)
	}
	if got := page.Traces[1]; got.Spans != 2 || got.Root != "ingest" || got.Campaign != "camp-9" ||
		len(got.Nodes) != 2 || got.DurationMs != 40 {
		t.Fatalf("slow summary wrong: %+v", got)
	}

	tracesGet(t, h, "/debug/traces?min_ms=20", &page)
	if page.Count != 1 || page.Traces[0].Campaign != "camp-9" {
		t.Fatalf("min_ms filter: %+v", page)
	}
	tracesGet(t, h, "/debug/traces?error=1", &page)
	if page.Count != 1 || !page.Traces[0].Error {
		t.Fatalf("error filter: %+v", page)
	}
	tracesGet(t, h, "/debug/traces?campaign=camp-9", &page)
	if page.Count != 1 || page.Traces[0].Spans != 2 {
		t.Fatalf("campaign filter: %+v", page)
	}
	tracesGet(t, h, "/debug/traces?limit=1", &page)
	if page.Count != 1 {
		t.Fatalf("limit: %+v", page)
	}

	var one struct {
		TraceID string       `json:"trace_id"`
		Spans   []SpanRecord `json:"spans"`
	}
	tracesGet(t, h, "/debug/traces?trace=f00d000000000000000000000000slow", &one)
	if len(one.Spans) != 2 || one.Spans[1].ParentID != "a1" {
		t.Fatalf("single-trace view: %+v", one)
	}

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/debug/traces", nil))
	if rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST = %d, want 405", rr.Code)
	}
}

func TestSpanStoreMetrics(t *testing.T) {
	s := NewSpanStore(2)
	reg := NewRegistry()
	s.RegisterMetrics(reg)
	s.Add(rec("t1", "s1", "", "a", time.Now(), 0))
	s.Add(rec("t2", "s2", "", "b", time.Now(), 0))
	s.Add(rec("t3", "s3", "", "c", time.Now(), 0))
	vals := reg.Values()
	if vals["qtag_trace_spans_stored"] != 2 {
		t.Fatalf("stored gauge = %v", vals["qtag_trace_spans_stored"])
	}
	if vals["qtag_trace_spans_evicted_total"] != 1 {
		t.Fatalf("evicted counter = %v", vals["qtag_trace_spans_evicted_total"])
	}
}

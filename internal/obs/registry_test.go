package obs

import "testing"

func TestRegistryCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events_total", "Events.")
	c.Add(3)
	depth := 7.0
	r.GaugeFunc("depth", "Depth.", func() float64 { return depth })

	v := r.Values()
	if v["events_total"] != 3 {
		t.Errorf("events_total = %g, want 3", v["events_total"])
	}
	if v["depth"] != 7 {
		t.Errorf("depth = %g, want 7", v["depth"])
	}
}

func TestRegistryIdempotentReRegistration(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("x_total", "first", func() int64 { return 1 })
	r.CounterFunc("x_total", "second", func() int64 { return 2 })
	v := r.Values()
	if len(v) != 1 {
		t.Fatalf("re-registration must replace, got %d series: %v", len(v), v)
	}
	if v["x_total"] != 2 {
		t.Fatalf("x_total = %g, want the replacement's 2", v["x_total"])
	}

	// A different label set is a different series, not a replacement.
	r.CounterFunc("x_total", "labeled", func() int64 { return 9 }, Label{"code", "200"})
	v = r.Values()
	if len(v) != 2 {
		t.Fatalf("labeled series must coexist, got %v", v)
	}
	if v[`x_total{code="200"}`] != 9 {
		t.Fatalf(`x_total{code="200"} = %g, want 9`, v[`x_total{code="200"}`])
	}
}

func TestRegistryHistogramValues(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(99)

	v := r.Values()
	if v["lat_seconds_count"] != 3 {
		t.Errorf("count = %g, want 3", v["lat_seconds_count"])
	}
	if v["lat_seconds_sum"] != 101 {
		t.Errorf("sum = %g, want 101", v["lat_seconds_sum"])
	}
	if v[`lat_seconds_bucket{le="1"}`] != 1 {
		t.Errorf(`bucket le=1 = %g, want 1`, v[`lat_seconds_bucket{le="1"}`])
	}
	if v[`lat_seconds_bucket{le="2"}`] != 2 {
		t.Errorf(`bucket le=2 = %g, want 2`, v[`lat_seconds_bucket{le="2"}`])
	}
	if v[`lat_seconds_bucket{le="+Inf"}`] != 3 {
		t.Errorf(`bucket le=+Inf = %g, want 3`, v[`lat_seconds_bucket{le="+Inf"}`])
	}
}

package obs

import (
	"context"
	"encoding/hex"
	"fmt"
	"math"
	"math/rand/v2"
	"net/http"
	"sync"
	"time"
)

// This file is the distributed-tracing layer: real-clock spans that
// cross process boundaries via the W3C trace-context `traceparent`
// header. It is distinct from the sim-side LifecycleTracer (trace.go),
// which records virtual-clock impression lifecycles: a lifecycle span
// answers "what happened to impression X", a distributed span answers
// "where did request Y spend its time across the cluster".

// TraceParentHeader is the W3C trace-context request header.
const TraceParentHeader = "traceparent"

// TraceIDResponseHeader carries the server-assigned trace ID back to
// the caller so a client can correlate its ack with /debug/traces.
const TraceIDResponseHeader = "Trace-Id"

// FlagSampled is the W3C trace-flags bit meaning "recorded upstream".
const FlagSampled byte = 0x01

// TraceID is a 16-byte W3C trace identifier.
type TraceID [16]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the ID as 32 lowercase hex characters.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// SpanID is an 8-byte W3C span identifier.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as 16 lowercase hex characters.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// SpanContext is the propagated part of a span: everything a remote
// hop needs to parent its own spans onto the same trace.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	Flags   byte
}

// Valid reports whether the context identifies a real span.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// Sampled reports whether the trace was selected for recording at the
// root. Error spans are recorded regardless (see Span.End).
func (sc SpanContext) Sampled() bool { return sc.Flags&FlagSampled != 0 }

// TraceParent encodes the context in W3C version-00 form:
// 00-<32 hex traceid>-<16 hex spanid>-<2 hex flags>. Invalid contexts
// encode as "" so callers can stamp headers/fields unconditionally.
func (sc SpanContext) TraceParent() string {
	if !sc.Valid() {
		return ""
	}
	return fmt.Sprintf("00-%s-%s-%02x", sc.TraceID, sc.SpanID, sc.Flags)
}

// ParseTraceParent decodes a W3C traceparent value. Unknown versions
// are accepted if they carry the version-00 prefix fields (per spec),
// except the reserved version ff. All-zero trace or span IDs are
// rejected, as is anything malformed.
func ParseTraceParent(s string) (SpanContext, error) {
	var sc SpanContext
	if len(s) < 55 {
		return sc, fmt.Errorf("traceparent: too short (%d bytes)", len(s))
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return sc, fmt.Errorf("traceparent: bad field separators")
	}
	ver, err := hex.DecodeString(s[0:2])
	if err != nil {
		return sc, fmt.Errorf("traceparent: bad version: %w", err)
	}
	if ver[0] == 0xff {
		return sc, fmt.Errorf("traceparent: reserved version ff")
	}
	if ver[0] == 0 && len(s) != 55 {
		return sc, fmt.Errorf("traceparent: version 00 must be 55 bytes, got %d", len(s))
	}
	if _, err := hex.Decode(sc.TraceID[:], []byte(s[3:35])); err != nil {
		return sc, fmt.Errorf("traceparent: bad trace-id: %w", err)
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(s[36:52])); err != nil {
		return sc, fmt.Errorf("traceparent: bad parent-id: %w", err)
	}
	flags, err := hex.DecodeString(s[53:55])
	if err != nil {
		return sc, fmt.Errorf("traceparent: bad flags: %w", err)
	}
	sc.Flags = flags[0]
	if sc.TraceID.IsZero() || sc.SpanID.IsZero() {
		return sc, fmt.Errorf("traceparent: all-zero id")
	}
	return sc, nil
}

// Attr is one span attribute. A small slice beats a map for the 1–3
// attrs a hot-path span carries.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// TracerConfig configures NewTracer. Zero values are usable: no store
// (spans are timed but never retained), sample rate 0 (only error
// spans record), real clock, process-global RNG.
type TracerConfig struct {
	// Node labels every recorded span with the emitting node's identity.
	Node string
	// SampleRate is the head-based probability, at trace-root creation,
	// that the whole trace is recorded. <=0 never samples, >=1 always.
	SampleRate float64
	// Store receives finished spans. Nil disables retention (error
	// spans included) but not propagation.
	Store *SpanStore
	// Now overrides the clock (tests). Defaults to time.Now, whose
	// monotonic reading makes durations immune to wall-clock steps.
	Now func() time.Time
	// Rand overrides ID/sampling randomness (tests). Must be safe for
	// concurrent use. Defaults to math/rand/v2's global generator.
	Rand func() uint64
}

// Tracer mints spans. A nil *Tracer is a valid no-op: StartSpan
// returns nil and every *Span method tolerates a nil receiver, so
// call sites need no "tracing enabled?" branches.
type Tracer struct {
	node      string
	store     *SpanStore
	now       func() time.Time
	rand      func() uint64
	threshold uint64 // sample iff rand() < threshold
}

// NewTracer builds a Tracer from cfg.
func NewTracer(cfg TracerConfig) *Tracer {
	t := &Tracer{node: cfg.Node, store: cfg.Store, now: cfg.Now, rand: cfg.Rand}
	if t.now == nil {
		t.now = time.Now
	}
	if t.rand == nil {
		t.rand = rand.Uint64
	}
	switch {
	case cfg.SampleRate >= 1:
		t.threshold = math.MaxUint64
	case cfg.SampleRate > 0:
		t.threshold = uint64(cfg.SampleRate * float64(1<<63) * 2)
	}
	return t
}

// sampled draws the head-based sampling decision for a new root.
func (t *Tracer) sampled() bool {
	if t.threshold == math.MaxUint64 {
		return true
	}
	if t.threshold == 0 {
		return false
	}
	return t.rand() < t.threshold
}

// newTraceID / newSpanID mint non-zero random IDs.
func (t *Tracer) newTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		a, b := t.rand(), t.rand()
		for i := 0; i < 8; i++ {
			id[i] = byte(a >> (8 * i))
			id[8+i] = byte(b >> (8 * i))
		}
	}
	return id
}

func (t *Tracer) newSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		a := t.rand()
		for i := 0; i < 8; i++ {
			id[i] = byte(a >> (8 * i))
		}
	}
	return id
}

// StartSpan opens a span. A valid parent continues that trace (and
// inherits its sampling decision); an invalid parent starts a new
// root, drawing a fresh sampling decision. Always End() the result.
func (t *Tracer) StartSpan(parent SpanContext, name string) *Span {
	if t == nil {
		return nil
	}
	sp := &Span{tracer: t, name: name, start: t.now()}
	if parent.Valid() {
		sp.ctx.TraceID = parent.TraceID
		sp.ctx.Flags = parent.Flags
		sp.parent = parent.SpanID
	} else {
		sp.ctx.TraceID = t.newTraceID()
		if t.sampled() {
			sp.ctx.Flags = FlagSampled
		}
	}
	sp.ctx.SpanID = t.newSpanID()
	return sp
}

// StartSpanParent is StartSpan with the parent given as a traceparent
// string (e.g. straight from a header or an Event.Trace field); a
// malformed or empty value starts a new root.
func (t *Tracer) StartSpanParent(traceparent, name string) *Span {
	if t == nil {
		return nil
	}
	parent, _ := ParseTraceParent(traceparent)
	return t.StartSpan(parent, name)
}

// Span is one timed operation. Methods are safe on a nil receiver and
// safe for concurrent use; End is idempotent.
type Span struct {
	tracer *Tracer
	name   string
	start  time.Time
	ctx    SpanContext
	parent SpanID

	mu    sync.Mutex
	attrs []Attr
	err   string
	ended bool
}

// Context returns the span's propagation context (zero for nil spans).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.ctx
}

// TraceParent is shorthand for Context().TraceParent(); "" for nil.
func (s *Span) TraceParent() string {
	if s == nil {
		return ""
	}
	return s.ctx.TraceParent()
}

// Sampled reports the trace's head-based sampling decision.
func (s *Span) Sampled() bool { return s != nil && s.ctx.Sampled() }

// SetAttr attaches a key/value attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// SetError marks the span failed. Errored spans are retained even in
// unsampled traces so failures are never invisible.
func (s *Span) SetError(msg string) {
	if s == nil || msg == "" {
		return
	}
	s.mu.Lock()
	s.err = msg
	s.mu.Unlock()
}

// End closes the span, computing its monotonic duration, and hands it
// to the tracer's store when the trace is sampled or the span errored.
// Second and later calls are no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := s.tracer.now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	err := s.err
	attrs := s.attrs
	s.mu.Unlock()
	if s.tracer.store == nil || (!s.ctx.Sampled() && err == "") {
		return
	}
	rec := SpanRecord{
		TraceID:  s.ctx.TraceID.String(),
		SpanID:   s.ctx.SpanID.String(),
		Name:     s.name,
		Node:     s.tracer.node,
		Start:    s.start,
		Duration: end.Sub(s.start),
		Error:    err,
		Attrs:    attrs,
	}
	if !s.parent.IsZero() {
		rec.ParentID = s.parent.String()
	}
	s.tracer.store.Add(rec)
}

type spanCtxKey struct{}

// ContextWithSpan stashes sp in ctx for downstream handlers.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// SpanFromContext retrieves the span placed by ContextWithSpan, or nil.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}

// TraceMiddleware wraps next so every request runs inside a span named
// name: the span continues an inbound traceparent (or roots a new
// trace), is reachable via SpanFromContext, and the request's
// traceparent header is rewritten to the new span so naive proxying of
// headers downstream still yields correct parentage. The response
// carries Trace-Id for client-side correlation, and status >= 500
// marks the span errored. A nil tracer returns next unchanged.
func TraceMiddleware(t *Tracer, name string, next http.Handler) http.Handler {
	if t == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sp := t.StartSpanParent(r.Header.Get(TraceParentHeader), name)
		defer sp.End()
		r.Header.Set(TraceParentHeader, sp.TraceParent())
		w.Header().Set(TraceIDResponseHeader, sp.Context().TraceID.String())
		sw := &statusCapture{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r.WithContext(ContextWithSpan(r.Context(), sp)))
		sp.SetAttr("http.status", fmt.Sprintf("%d", sw.status))
		if sw.status >= 500 {
			sp.SetError(fmt.Sprintf("http status %d", sw.status))
		}
	})
}

// statusCapture records the response status code for span attributes.
type statusCapture struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (s *statusCapture) WriteHeader(code int) {
	if !s.wrote {
		s.status = code
		s.wrote = true
	}
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusCapture) Write(p []byte) (int, error) {
	s.wrote = true
	return s.ResponseWriter.Write(p)
}

package obs

import (
	"strings"
	"testing"
	"time"
)

var epoch = time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC)

func TestTracerRecordOffsets(t *testing.T) {
	tr := NewLifecycleTracer(epoch)
	tr.Record("imp-1", "camp-1", StageServed, epoch.Add(250*time.Millisecond), "x")
	tr.Record("imp-1", "camp-1", StageEnqueued, time.Time{}, "") // zero time → offset 0
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("Len = %d, want 2", len(spans))
	}
	if spans[0].At != 250*time.Millisecond {
		t.Errorf("At = %v, want 250ms", spans[0].At)
	}
	if spans[1].At != 0 {
		t.Errorf("zero-timestamp span At = %v, want 0", spans[1].At)
	}
}

func TestTracerMergeOrderAndSummaryDeterminism(t *testing.T) {
	mk := func() (*LifecycleTracer, *LifecycleTracer) {
		a := NewLifecycleTracer(epoch)
		a.Record("a-1", "camp-a", StageServed, epoch, "ex")
		a.Record("a-1", "camp-a", StageEnqueued, epoch.Add(time.Second), "qtag:loaded")
		b := NewLifecycleTracer(epoch)
		b.Record("b-1", "camp-b", StageServed, epoch, "ex")
		b.Record("b-1", "camp-b", StageDropped, epoch.Add(2*time.Second), "fault")
		return a, b
	}

	a1, b1 := mk()
	m1 := NewLifecycleTracer(epoch)
	m1.Merge(a1, nil, b1) // nil tracers are skipped
	a2, b2 := mk()
	m2 := NewLifecycleTracer(epoch)
	m2.Merge(a2, nil, b2)

	if m1.Len() != 4 {
		t.Fatalf("merged Len = %d, want 4", m1.Len())
	}
	if s1, s2 := m1.Summary(), m2.Summary(); s1 != s2 {
		t.Fatalf("identical merges must summarize identically:\n%s\nvs\n%s", s1, s2)
	}

	// Merge order is part of the stream: swapping it changes the checksum.
	a3, b3 := mk()
	m3 := NewLifecycleTracer(epoch)
	m3.Merge(b3, a3)
	if m1.Summary() == m3.Summary() {
		t.Fatal("merge order must be reflected in the summary checksum")
	}
}

func TestSummaryContents(t *testing.T) {
	tr := NewLifecycleTracer(epoch)
	tr.Record("i1", "c1", StageServed, epoch, "")
	tr.Record("i1", "c1", StageTagStart, epoch, "")
	tr.Record("i2", "c1", StageServed, epoch, "")
	s := tr.Summary()
	if !strings.Contains(s, "spans=3") || !strings.Contains(s, "impressions=2") {
		t.Fatalf("summary totals wrong:\n%s", s)
	}
	// Stages render in canonical lifecycle order.
	if strings.Index(s, "served") > strings.Index(s, "tag-start") {
		t.Fatalf("stage order wrong:\n%s", s)
	}
	// Unknown stages still render (sorted after the canonical ones).
	tr.Record("i1", "c1", Stage("custom"), epoch, "")
	if !strings.Contains(tr.Summary(), "custom") {
		t.Fatalf("extra stage missing:\n%s", tr.Summary())
	}
}

func TestSummaryChecksumSensitivity(t *testing.T) {
	one := NewLifecycleTracer(epoch)
	one.Record("i1", "c1", StageServed, epoch, "a")
	two := NewLifecycleTracer(epoch)
	two.Record("i1", "c1", StageServed, epoch, "b") // only the detail differs
	if one.Summary() == two.Summary() {
		t.Fatal("checksum must cover span details")
	}
}

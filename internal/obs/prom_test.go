package obs

import (
	"net/http/httptest"
	"sync"
	"testing"
)

// TestWritePrometheusGolden pins the exact text exposition: families
// sorted by name, HELP/TYPE once per family, series within a family
// sorted by label set, cumulative le buckets with +Inf, _sum and _count.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	// Registered deliberately out of name and label order.
	c500 := r.Counter("test_requests_total", "Total requests.", Label{"code", "500"})
	c500.Inc()
	c200 := r.Counter("test_requests_total", "Total requests.", Label{"code", "200"})
	c200.Add(3)
	h := r.Histogram("test_latency_seconds", "Request latency.", []float64{0.25, 1})
	h.Observe(0.25) // boundary value: lands in the le=0.25 bucket
	h.Observe(0.5)
	h.Observe(2)
	r.GaugeFunc("test_depth", "Queue depth.", func() float64 { return 2.5 })

	want := `# HELP test_depth Queue depth.
# TYPE test_depth gauge
test_depth 2.5
# HELP test_latency_seconds Request latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.25"} 1
test_latency_seconds_bucket{le="1"} 2
test_latency_seconds_bucket{le="+Inf"} 3
test_latency_seconds_sum 2.75
test_latency_seconds_count 3
# HELP test_requests_total Total requests.
# TYPE test_requests_total counter
test_requests_total{code="200"} 3
test_requests_total{code="500"} 1
`
	if got := r.Render(); got != want {
		t.Fatalf("Render() mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "X.").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if got := rec.Header().Get("Content-Type"); got != contentType {
		t.Fatalf("Content-Type = %q, want %q", got, contentType)
	}
	if rec.Body.Len() == 0 {
		t.Fatal("empty scrape body")
	}
}

func TestEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("esc_total", "line1\nline2 \\ done", func() int64 { return 1 },
		Label{"path", `a"b\c` + "\n"})
	want := `# HELP esc_total line1\nline2 \\ done
# TYPE esc_total counter
esc_total{path="a\"b\\c\n"} 1
`
	if got := r.Render(); got != want {
		t.Fatalf("Render() mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestConcurrentScrapeWhileIngesting hammers a registry with observations,
// counter increments and late registrations while scraping it. Run under
// -race this proves collection needs no stop-the-world.
func TestConcurrentScrapeWhileIngesting(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("busy_total", "Busy.")
	h := r.Histogram("busy_seconds", "Busy latency.", LatencyBuckets)

	const writers = 4
	const perWriter = 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc()
				h.Observe(float64(i%100) / 100)
				if i%500 == 0 {
					// Late (re-)registration mid-scrape must be safe too.
					r.GaugeFunc("busy_gauge", "Busy gauge.", func() float64 { return float64(w) })
				}
			}
		}()
	}
	stop := make(chan struct{})
	var scrapes sync.WaitGroup
	scrapes.Add(1)
	go func() {
		defer scrapes.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = r.Render()
			}
		}
	}()
	wg.Wait()
	close(stop)
	scrapes.Wait()

	v := r.Values()
	if v["busy_total"] != writers*perWriter {
		t.Fatalf("busy_total = %g, want %d", v["busy_total"], writers*perWriter)
	}
	if v["busy_seconds_count"] != writers*perWriter {
		t.Fatalf("busy_seconds_count = %g, want %d", v["busy_seconds_count"], writers*perWriter)
	}
}

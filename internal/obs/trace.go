package obs

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"time"
)

// Stage names one step of an impression's lifecycle. The delivery chain
// records, in order: the DSP's served log, the tag bootstrapping inside
// the creative iframe, its monitoring-pixel classification arming, the
// viewability state-machine transitions, and each beacon's journey
// through enqueue → flush → delivery (or drop).
type Stage string

// Lifecycle stages.
const (
	// StageServed is the DSP's server-side impression log.
	StageServed Stage = "served"
	// StageTagStart marks a measurement tag beginning execution inside
	// the creative iframe.
	StageTagStart Stage = "tag-start"
	// StageTagFailed marks a tag that never executed (script load
	// failure) or whose deployment errored.
	StageTagFailed Stage = "tag-failed"
	// StageClassified marks the tag's pixel classification armed: paint
	// observers are attached and visibility sampling is live.
	StageClassified Stage = "classified"
	// StageTransition is a viewability state-machine transition (in-view,
	// out-of-view).
	StageTransition Stage = "transition"
	// StageEnqueued marks a beacon handed to the delivery pipeline.
	StageEnqueued Stage = "enqueued"
	// StageFlushed marks a beacon flushed downstream by a
	// store-and-forward queue.
	StageFlushed Stage = "flushed"
	// StageDelivered marks a beacon acknowledged by its terminal sink.
	StageDelivered Stage = "delivered"
	// StageDropped marks a beacon lost: overflow, permanent rejection, or
	// an injected fault.
	StageDropped Stage = "dropped"
)

// stageOrder fixes the rendering order of stage aggregates in summaries.
var stageOrder = []Stage{
	StageServed, StageTagStart, StageTagFailed, StageClassified,
	StageTransition, StageEnqueued, StageFlushed, StageDelivered, StageDropped,
}

// LifecycleSpan is one recorded lifecycle step. At is an offset from the tracer's
// epoch — virtual time when the recording clock is a simclock, so span
// streams are bit-identical across runs.
type LifecycleSpan struct {
	Impression string
	Campaign   string
	Stage      Stage
	At         time.Duration
	Detail     string
}

// String renders one span as a log-friendly line.
func (s LifecycleSpan) String() string {
	d := ""
	if s.Detail != "" {
		d = " " + s.Detail
	}
	return fmt.Sprintf("%-12s t=%-12s camp=%s imp=%s%s", s.Stage, s.At, s.Campaign, s.Impression, d)
}

// LifecycleTracer accumulates lifecycle spans. It is safe for concurrent use; for
// deterministic output across worker counts, give each deterministic
// unit of work (a campaign) its own tracer and Merge them in a fixed
// order afterwards.
type LifecycleTracer struct {
	epoch time.Time

	mu    sync.Mutex
	spans []LifecycleSpan
}

// NewLifecycleTracer returns a tracer whose Record timestamps are measured as
// offsets from epoch (typically simclock.Epoch). A zero epoch records
// all spans at offset 0 unless recorded via RecordSpan.
func NewLifecycleTracer(epoch time.Time) *LifecycleTracer { return &LifecycleTracer{epoch: epoch} }

// Record appends a span, converting the absolute timestamp to an offset
// from the tracer's epoch. Zero timestamps record as offset 0.
func (t *LifecycleTracer) Record(impression, campaign string, stage Stage, at time.Time, detail string) {
	var off time.Duration
	if !at.IsZero() && !t.epoch.IsZero() {
		off = at.Sub(t.epoch)
	}
	t.RecordSpan(LifecycleSpan{Impression: impression, Campaign: campaign, Stage: stage, At: off, Detail: detail})
}

// RecordSpan appends a fully-formed span.
func (t *LifecycleTracer) RecordSpan(s LifecycleSpan) {
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// Len returns the number of recorded spans.
func (t *LifecycleTracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Spans returns a copy of the recorded spans in recording order.
func (t *LifecycleTracer) Spans() []LifecycleSpan {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]LifecycleSpan(nil), t.spans...)
}

// Merge appends the spans of others, in argument order, to t. Merging
// per-campaign tracers in campaign order yields a deterministic combined
// stream regardless of how many workers recorded them.
func (t *LifecycleTracer) Merge(others ...*LifecycleTracer) {
	for _, o := range others {
		if o == nil {
			continue
		}
		t.mu.Lock()
		t.spans = append(t.spans, o.Spans()...)
		t.mu.Unlock()
	}
}

// Summary renders a deterministic digest of the trace: span and
// impression totals, a checksum over the full ordered span stream, and
// per-stage counts in canonical stage order (extra stages follow,
// sorted). Two runs that measured the same impressions the same way
// produce byte-identical summaries.
func (t *LifecycleTracer) Summary() string {
	spans := t.Spans()
	byStage := map[Stage]int{}
	imps := map[string]struct{}{}
	h := fnv.New64a()
	for _, s := range spans {
		byStage[s.Stage]++
		imps[s.Impression] = struct{}{}
		fmt.Fprintf(h, "%s|%s|%s|%d|%s\n", s.Campaign, s.Impression, s.Stage, int64(s.At), s.Detail)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace: spans=%d impressions=%d checksum=%016x\n", len(spans), len(imps), h.Sum64())
	seen := map[Stage]bool{}
	for _, st := range stageOrder {
		seen[st] = true
		if n, ok := byStage[st]; ok {
			fmt.Fprintf(&b, "  %-12s %d\n", st, n)
		}
	}
	var extra []string
	for st := range byStage {
		if !seen[st] {
			extra = append(extra, string(st))
		}
	}
	sort.Strings(extra)
	for _, st := range extra {
		fmt.Fprintf(&b, "  %-12s %d\n", st, byStage[Stage(st)])
	}
	return b.String()
}

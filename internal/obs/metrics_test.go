package obs

import (
	"math"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Inc()
	c.Add(4)
	c.Add(-7) // counters only go up: ignored
	c.Add(0)  // not a positive delta: ignored
	if got := c.Value(); got != 5 {
		t.Fatalf("Value() = %d, want 5", got)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram(1, 2.5, 5)
	// A value exactly on a bucket's upper bound lands in that bucket
	// ("le" semantics).
	cases := []struct {
		v    float64
		want int // bucket index; 3 = +Inf
	}{
		{0, 0}, {1, 0}, {1.0001, 1}, {2.5, 1}, {2.50001, 2}, {5, 2}, {5.0001, 3}, {math.Inf(1), 3},
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	s := h.Snapshot()
	wantCounts := make([]int64, 4)
	for _, c := range cases {
		wantCounts[c.want]++
	}
	for i, want := range wantCounts {
		if s.Counts[i] != want {
			t.Errorf("bucket %d: count %d, want %d (snapshot %v)", i, s.Counts[i], want, s.Counts)
		}
	}
	if s.Count != int64(len(cases)) {
		t.Errorf("Count = %d, want %d", s.Count, len(cases))
	}
	cum := s.Cumulative()
	if cum[len(cum)-1] != int64(len(cases)) {
		t.Errorf("last cumulative bucket = %d, want total %d", cum[len(cum)-1], len(cases))
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Errorf("cumulative counts not monotonic: %v", cum)
		}
	}
}

func TestHistogramIgnoresNaN(t *testing.T) {
	h := NewHistogram(1)
	h.Observe(math.NaN())
	h.Observe(0.5)
	if h.Count() != 1 {
		t.Fatalf("Count = %d, want 1 (NaN must be ignored)", h.Count())
	}
	if h.Sum() != 0.5 {
		t.Fatalf("Sum = %g, want 0.5", h.Sum())
	}
}

func TestHistogramSortsAndDedupesBounds(t *testing.T) {
	h := NewHistogram(5, 1, 2.5, 1)
	want := []float64{1, 2.5, 5}
	s := h.Snapshot()
	if len(s.Bounds) != len(want) {
		t.Fatalf("bounds = %v, want %v", s.Bounds, want)
	}
	for i := range want {
		if s.Bounds[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", s.Bounds, want)
		}
	}
}

func TestHistogramDefaultsToLatencyBuckets(t *testing.T) {
	h := NewHistogram()
	if got, want := len(h.Snapshot().Bounds), len(LatencyBuckets); got != want {
		t.Fatalf("default bounds = %d, want %d", got, want)
	}
}

func TestObserveDuration(t *testing.T) {
	h := NewHistogram(0.1, 1)
	h.ObserveDuration(250 * time.Millisecond)
	s := h.Snapshot()
	if s.Counts[1] != 1 {
		t.Fatalf("250ms must land in the le=1 bucket: %v", s.Counts)
	}
	if s.Sum != 0.25 {
		t.Fatalf("Sum = %g, want 0.25", s.Sum)
	}
}

func TestQuantile(t *testing.T) {
	h := NewHistogram(1, 2, 4)
	// 2 observations per finite bucket, none in +Inf.
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// Median rank 3 is halfway through the (1,2] bucket (cumulative 2→4):
	// interpolates to 1.5, exactly what histogram_quantile would report.
	if got := s.Quantile(0.5); got != 1.5 {
		t.Errorf("Quantile(0.5) = %g, want 1.5", got)
	}
	// Rank 1.5 is halfway through the first bucket [0,1].
	if got := s.Quantile(0.25); got != 0.75 {
		t.Errorf("Quantile(0.25) = %g, want 0.75", got)
	}
	if got := s.Quantile(1); got != 4 {
		t.Errorf("Quantile(1) = %g, want 4", got)
	}
	// Out-of-range q clamps.
	if got := s.Quantile(2); got != 4 {
		t.Errorf("Quantile(2) = %g, want 4", got)
	}
}

func TestQuantileInfBucketClampsToHighestBound(t *testing.T) {
	h := NewHistogram(1, 2)
	h.Observe(100) // +Inf bucket
	if got := h.Snapshot().Quantile(0.99); got != 2 {
		t.Fatalf("Quantile over the +Inf bucket = %g, want clamp to 2", got)
	}
}

func TestQuantileEmpty(t *testing.T) {
	h := NewHistogram(1)
	if got := h.Snapshot().Quantile(0.5); !math.IsNaN(got) {
		t.Fatalf("Quantile on empty histogram = %g, want NaN", got)
	}
}

package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// contentType is the Prometheus text exposition format version this
// package emits.
const contentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered series in Prometheus text
// exposition format. Output is deterministic: series are sorted by name,
// then by rendered label set, and HELP/TYPE headers are emitted once per
// metric family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	entries := r.snapshot()
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].name != entries[j].name {
			return entries[i].name < entries[j].name
		}
		return renderLabels(entries[i].labels) < renderLabels(entries[j].labels)
	})
	exemplars := r.emitExemplars.Load()
	var b strings.Builder
	lastFamily := ""
	for _, e := range entries {
		if e.name != lastFamily {
			lastFamily = e.name
			if e.help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", e.name, escapeHelp(e.help))
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", e.name, e.kind)
		}
		switch e.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%s%s %d\n", e.name, renderLabels(e.labels), e.intFn())
		case kindGauge:
			fmt.Fprintf(&b, "%s%s %s\n", e.name, renderLabels(e.labels), formatFloat(e.fltFn()))
		case kindHistogram:
			s := e.hist.Snapshot()
			cum := s.Cumulative()
			for i, bound := range s.Bounds {
				le := append(e.labels.clone(), Label{"le", formatFloat(bound)})
				fmt.Fprintf(&b, "%s_bucket%s %d%s\n", e.name, renderLabels(le), cum[i], renderExemplar(s, i, exemplars))
			}
			inf := append(e.labels.clone(), Label{"le", "+Inf"})
			fmt.Fprintf(&b, "%s_bucket%s %d%s\n", e.name, renderLabels(inf), cum[len(cum)-1], renderExemplar(s, len(s.Bounds), exemplars))
			fmt.Fprintf(&b, "%s_sum%s %s\n", e.name, renderLabels(e.labels), formatFloat(s.Sum))
			fmt.Fprintf(&b, "%s_count%s %d\n", e.name, renderLabels(e.labels), s.Count)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Render returns the text exposition as a string.
func (r *Registry) Render() string {
	var b strings.Builder
	_ = r.WritePrometheus(&b)
	return b.String()
}

// Handler returns an http.Handler serving the registry as a Prometheus
// scrape endpoint — mount it at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", contentType)
		_ = r.WritePrometheus(w)
	})
}

// renderExemplar renders the OpenMetrics exemplar suffix for bucket i
// (` # {trace_id="..."} <value> <unix seconds>`), or "" when exemplars
// are disabled or the bucket has none.
func renderExemplar(s HistogramSnapshot, i int, enabled bool) string {
	if !enabled || i >= len(s.Exemplars) {
		return ""
	}
	ex := s.Exemplars[i]
	if ex == nil {
		return ""
	}
	ts := ""
	if !ex.At.IsZero() {
		ts = " " + strconv.FormatFloat(float64(ex.At.UnixNano())/1e9, 'f', 3, 64)
	}
	return fmt.Sprintf(" # {trace_id=%q} %s%s", ex.TraceID, formatFloat(ex.Value), ts)
}

// renderLabels renders {a="b",c="d"}, or "" for an empty set.
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// Package version holds the build-time version stamp shared by every
// binary and by cluster probe traffic. The variable is overridden at
// link time by the Makefile:
//
//	go build -ldflags "-X qtag/internal/version.Version=$(VERSION)"
package version

// Version is the build's human-readable identity (git describe output
// in Makefile builds). "dev" means an unstamped `go build` / `go test`.
var Version = "dev"

// ProbeUserAgentPrefix identifies cluster-internal health probes; it is
// matched as a prefix so mixed-version clusters still recognize each
// other's probes.
const ProbeUserAgentPrefix = "qtag-probe/"

// ProbeUserAgent is the User-Agent the failure detector sends on
// /healthz probes, distinct from real traffic so probe requests can be
// excluded from ingest histograms and access logs.
func ProbeUserAgent() string { return ProbeUserAgentPrefix + Version }

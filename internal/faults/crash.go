package faults

import (
	"fmt"
	"io"
	"os"
	"sync"

	"qtag/internal/wal"
)

// ErrCrashed is returned by every operation on a crash-injected writer
// or filesystem after the configured crash point has been hit: from the
// program's point of view the process died at that exact byte.
var ErrCrashed = fmt.Errorf("%w: process crashed", ErrInjected)

// CrashWriter wraps an io.Writer and kills the write stream at the Nth
// byte: writes pass through until the budget is exhausted, the write
// straddling the boundary lands only its prefix (a torn write), and
// everything after fails with ErrCrashed. Deterministic by construction
// — no randomness involved.
type CrashWriter struct {
	mu        sync.Mutex
	w         io.Writer
	remaining int64
	crashed   bool
}

// NewCrashWriter wraps w, crashing after crashAfter bytes.
func NewCrashWriter(w io.Writer, crashAfter int64) *CrashWriter {
	return &CrashWriter{w: w, remaining: crashAfter}
}

// Crashed reports whether the crash point has been hit.
func (c *CrashWriter) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// Write implements io.Writer.
func (c *CrashWriter) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return 0, ErrCrashed
	}
	if int64(len(p)) <= c.remaining {
		c.remaining -= int64(len(p))
		return c.w.Write(p)
	}
	cut := c.remaining
	c.remaining = 0
	c.crashed = true
	if cut > 0 {
		if n, err := c.w.Write(p[:cut]); err != nil {
			return n, err
		}
	}
	return int(cut), ErrCrashed
}

// CrashFS implements wal.FS over an inner filesystem with a shared byte
// budget across every file it opens — the deterministic crash-point
// harness for the durability layer. Two modes:
//
//   - Crash mode (CrashAfterBytes): once the total bytes written reach
//     N, the write straddling the boundary lands only its prefix and
//     every later mutation fails with ErrCrashed — the process died at
//     byte N. With DiscardUnsynced(true), data written after each
//     file's last Sync is rolled back at the crash instant, modelling
//     the loss of the OS page cache; without it the torn prefix stays,
//     modelling a cache that happened to reach the platter.
//   - ENOSPC mode (FailWith): once the budget is exhausted, writes fail
//     with the injected error (typically syscall.ENOSPC) but the
//     process lives on — sync, close and reads keep working, and
//     Refill models space being freed.
type CrashFS struct {
	inner wal.FS

	mu      sync.Mutex
	armed   bool
	budget  int64
	crashed bool
	discard bool
	failErr error
	written int64
	torn    int64
	files   map[*crashFile]struct{}
}

// NewCrashFS wraps inner (the real filesystem when nil).
func NewCrashFS(inner wal.FS) *CrashFS {
	if inner == nil {
		inner = wal.OS
	}
	return &CrashFS{inner: inner, files: make(map[*crashFile]struct{})}
}

// CrashAfterBytes arms the crash point: the process dies when n more
// bytes have been written (across all files).
func (c *CrashFS) CrashAfterBytes(n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.armed = true
	c.budget = n
}

// DiscardUnsynced selects whether a crash also loses every byte written
// after each file's last successful Sync (page-cache loss).
func (c *CrashFS) DiscardUnsynced(v bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.discard = v
}

// FailWith switches to ENOSPC mode: once the byte budget is exhausted,
// writes fail with err instead of crashing the filesystem.
func (c *CrashFS) FailWith(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failErr = err
}

// Refill grants n more bytes of budget and, in ENOSPC mode, lets writes
// proceed again — space was freed.
func (c *CrashFS) Refill(n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.budget += n
}

// Crashed reports whether the crash point has been hit.
func (c *CrashFS) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// BytesWritten returns the total bytes accepted across all files.
func (c *CrashFS) BytesWritten() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.written
}

// TornWrites returns the number of writes cut short at the crash point.
func (c *CrashFS) TornWrites() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.torn
}

// failedLocked reports the error mutations must return, if any.
func (c *CrashFS) failedLocked() error {
	if c.crashed {
		return ErrCrashed
	}
	return nil
}

// MkdirAll implements wal.FS.
func (c *CrashFS) MkdirAll(dir string) error {
	c.mu.Lock()
	err := c.failedLocked()
	c.mu.Unlock()
	if err != nil {
		return err
	}
	return c.inner.MkdirAll(dir)
}

// OpenAppend implements wal.FS.
func (c *CrashFS) OpenAppend(name string) (wal.File, error) { return c.open(name, false) }

// Create implements wal.FS.
func (c *CrashFS) Create(name string) (wal.File, error) { return c.open(name, true) }

func (c *CrashFS) open(name string, create bool) (wal.File, error) {
	c.mu.Lock()
	err := c.failedLocked()
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	var f wal.File
	if create {
		f, err = c.inner.Create(name)
	} else {
		f, err = c.inner.OpenAppend(name)
	}
	if err != nil {
		return nil, err
	}
	size := int64(0)
	if !create {
		if data, rerr := c.inner.ReadFile(name); rerr == nil {
			size = int64(len(data))
		}
	}
	cf := &crashFile{fs: c, inner: f, size: size, synced: size}
	c.mu.Lock()
	c.files[cf] = struct{}{}
	c.mu.Unlock()
	return cf, nil
}

// ReadFile implements wal.FS. Reads keep working after a crash so the
// "restarted process" can share the FS in tests.
func (c *CrashFS) ReadFile(name string) ([]byte, error) { return c.inner.ReadFile(name) }

// List implements wal.FS.
func (c *CrashFS) List(dir string) ([]string, error) { return c.inner.List(dir) }

// Rename implements wal.FS.
func (c *CrashFS) Rename(oldPath, newPath string) error {
	c.mu.Lock()
	err := c.failedLocked()
	c.mu.Unlock()
	if err != nil {
		return err
	}
	return c.inner.Rename(oldPath, newPath)
}

// SyncDir implements wal.FS. Directory-entry durability is not modelled
// (the harness tracks per-file page-cache loss only), so a live FS just
// passes through; after a crash it fails like every other mutation.
func (c *CrashFS) SyncDir(dir string) error {
	c.mu.Lock()
	err := c.failedLocked()
	c.mu.Unlock()
	if err != nil {
		return err
	}
	return c.inner.SyncDir(dir)
}

// Remove implements wal.FS.
func (c *CrashFS) Remove(name string) error {
	c.mu.Lock()
	err := c.failedLocked()
	c.mu.Unlock()
	if err != nil {
		return err
	}
	return c.inner.Remove(name)
}

// crashFile is one open file under a CrashFS.
type crashFile struct {
	fs     *CrashFS
	inner  wal.File
	size   int64 // bytes written (as seen by the program)
	synced int64 // size at the last successful Sync
	closed bool
}

// Write implements wal.File, consuming the shared budget.
func (f *crashFile) Write(p []byte) (int, error) {
	c := f.fs
	c.mu.Lock()
	defer c.mu.Unlock()
	if f.closed {
		return 0, os.ErrClosed
	}
	if err := c.failedLocked(); err != nil {
		return 0, err
	}
	if c.armed && int64(len(p)) > c.budget {
		if c.failErr != nil {
			// ENOSPC mode: the write fails whole, nothing lands, the
			// process survives.
			return 0, c.failErr
		}
		// Crash mode: the prefix that fit reaches the file (a torn
		// write), then the process dies.
		cut := c.budget
		c.budget = 0
		c.crashed = true
		c.torn++
		if cut > 0 {
			n, err := f.inner.Write(p[:cut])
			f.size += int64(n)
			c.written += int64(n)
			if err != nil {
				return n, err
			}
		}
		if c.discard {
			// The page cache dies with the process: roll every open
			// file back to its last-synced length.
			for of := range c.files {
				if of.size > of.synced {
					of.inner.Truncate(of.synced)
					of.size = of.synced
				}
			}
		}
		return int(cut), ErrCrashed
	}
	if c.armed {
		c.budget -= int64(len(p))
	}
	n, err := f.inner.Write(p)
	f.size += int64(n)
	c.written += int64(n)
	return n, err
}

// Sync implements wal.File.
func (f *crashFile) Sync() error {
	c := f.fs
	c.mu.Lock()
	defer c.mu.Unlock()
	if f.closed {
		return os.ErrClosed
	}
	if err := c.failedLocked(); err != nil {
		return err
	}
	if err := f.inner.Sync(); err != nil {
		return err
	}
	f.synced = f.size
	return nil
}

// Truncate implements wal.File.
func (f *crashFile) Truncate(size int64) error {
	c := f.fs
	c.mu.Lock()
	defer c.mu.Unlock()
	if f.closed {
		return os.ErrClosed
	}
	if err := c.failedLocked(); err != nil {
		return err
	}
	if err := f.inner.Truncate(size); err != nil {
		return err
	}
	f.size = size
	if f.synced > size {
		f.synced = size
	}
	return nil
}

// Close implements wal.File. The inner file is always closed (so test
// temp dirs can be cleaned up), but after a crash the close reports
// ErrCrashed like every other post-mortem operation.
func (f *crashFile) Close() error {
	c := f.fs
	c.mu.Lock()
	if f.closed {
		c.mu.Unlock()
		return os.ErrClosed
	}
	f.closed = true
	delete(c.files, f)
	crashed := c.crashed && c.failErr == nil
	c.mu.Unlock()
	err := f.inner.Close()
	if crashed {
		return ErrCrashed
	}
	return err
}

// FlipBit flips one bit of the file at path — the corruption primitive
// for checksum-validation tests. offset addresses the byte, bit the bit
// within it (0 = least significant).
func FlipBit(path string, offset int64, bit uint) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], offset); err != nil {
		return err
	}
	b[0] ^= 1 << (bit % 8)
	if _, err := f.WriteAt(b[:], offset); err != nil {
		return err
	}
	return f.Sync()
}

package faults_test

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"qtag/internal/beacon"
	"qtag/internal/faults"
	"qtag/internal/simrand"
)

// TestChaosPipelineZeroLoss pushes 10k events through the full resilient
// client stack — QueueSink → CircuitBreaker → HTTPSink — against a real
// collection server reached through a fault-injecting RoundTripper
// (drops, 5xx with Retry-After, latency, and ambiguous partial
// failures). Below the queue-overflow threshold the pipeline must lose
// nothing: at-least-once retries plus idempotent ingestion land every
// event exactly once in the store.
func TestChaosPipelineZeroLoss(t *testing.T) {
	const total = 10000

	store := beacon.NewStore()
	srv := httptest.NewServer(beacon.NewServer(store))
	defer srv.Close()

	rt := faults.NewRoundTripper(nil, simrand.New(2019), faults.Profile{
		Drop:       0.15,
		Error:      0.15,
		RetryAfter: 0, // exercise the exponential backoff path
		Latency:    500 * time.Microsecond,
		Partial:    0.08,
	})
	httpSink := &beacon.HTTPSink{
		BaseURL:     srv.URL,
		Client:      &http.Client{Transport: rt},
		Retries:     8,
		Timeout:     5 * time.Second,
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
		Jitter:      simrand.New(77).Float64,
	}
	breaker := beacon.NewCircuitBreaker(httpSink, 5, 20*time.Millisecond)
	queue := beacon.NewQueueSink(breaker, beacon.QueueOptions{
		Capacity:   total, // no overflow in this scenario
		MaxBatch:   25,    // many small batches → many chances to hit faults
		RetryDelay: 2 * time.Millisecond,
	})

	for i := 0; i < total; i++ {
		if err := queue.Submit(beacon.Event{
			ImpressionID: itoa(i),
			CampaignID:   "chaos",
			Source:       beacon.SourceQTag,
			Type:         beacon.EventLoaded,
		}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := queue.Close(ctx); err != nil {
		t.Fatalf("drain: %v (queue %s)", err, queue.Stats())
	}

	if store.Len() != total {
		t.Errorf("store has %d events, want %d (zero loss). queue: %s, wire: %s",
			store.Len(), total, queue.Stats(), rt.Stats())
	}
	st := queue.Stats()
	if st.Dropped != 0 || st.Failed != 0 {
		t.Errorf("unexpected client-side loss: %s", st)
	}
	if st.Flushed != total {
		t.Errorf("flushed = %d, want %d", st.Flushed, total)
	}
	wire := rt.Stats()
	if wire.Dropped == 0 || wire.Errored == 0 || wire.Partial == 0 {
		t.Errorf("chaos profile injected too little: %s", wire)
	}
	t.Logf("delivered %d events: http retried=%d, breaker tripped=%d rejected=%d, queue retried=%d, wire faults [%s]",
		total, httpSink.Retried(), breaker.Tripped(), breaker.Rejected(), st.Retried, wire)
}

// TestChaosPipelineOverflowAccounting drives the same stack against a
// collector that is hard-down (every request errors) with a tiny queue:
// above the overflow threshold events must be dropped *and counted* —
// the counters, not wishful thinking, describe the loss.
func TestChaosPipelineOverflowAccounting(t *testing.T) {
	const total = 2000
	const capacity = 64

	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	httpSink := &beacon.HTTPSink{
		BaseURL:     srv.URL,
		Retries:     1,
		BackoffBase: time.Microsecond,
		BackoffMax:  time.Microsecond,
		Sleep:       func(time.Duration) {},
	}
	breaker := beacon.NewCircuitBreaker(httpSink, 3, time.Hour) // opens and stays open
	queue := beacon.NewQueueSink(breaker, beacon.QueueOptions{
		Capacity:   capacity,
		MaxBatch:   16,
		RetryDelay: time.Millisecond,
	})

	accepted := 0
	for i := 0; i < total; i++ {
		if err := queue.Submit(beacon.Event{
			ImpressionID: itoa(i),
			CampaignID:   "chaos",
			Source:       beacon.SourceQTag,
			Type:         beacon.EventLoaded,
		}); err == nil {
			accepted++
		}
	}

	st := queue.Stats()
	if st.Enqueued != int64(accepted) {
		t.Errorf("enqueued %d != accepted %d", st.Enqueued, accepted)
	}
	if st.Enqueued+st.Dropped != total {
		t.Errorf("enqueued %d + dropped %d != %d submitted", st.Enqueued, st.Dropped, total)
	}
	if st.Dropped < total-capacity-int64(total)/10 {
		// Nearly everything beyond capacity must have been shed; the
		// slack allows for batches in flight during the submit loop.
		t.Errorf("dropped = %d with capacity %d over %d submits", st.Dropped, capacity, total)
	}

	// Abandon the undeliverable remainder and verify total accounting.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := queue.Close(ctx); err == nil {
		t.Error("expected deadline error closing against a dead collector")
	}
	st = queue.Stats()
	if st.Flushed+st.Failed+st.Dropped != total {
		t.Errorf("accounting leak: flushed %d + failed %d + dropped %d != %d",
			st.Flushed, st.Failed, st.Dropped, total)
	}
	if breaker.State() != beacon.BreakerOpen {
		t.Errorf("breaker = %v, want open against a dead collector", breaker.State())
	}
}

// TestReplayJournalTornWrites reproduces the crash-durability scenario:
// a journal written through a TornWriter (writes silently truncated, the
// way a dying process tears its final flushes) must still replay, with
// the corrupt lines counted as skipped, and a double replay must be
// idempotent.
func TestReplayJournalTornWrites(t *testing.T) {
	const total = 400

	var file bytes.Buffer
	torn := faults.NewTornWriter(&file, simrand.New(9), 0.5)
	journal := beacon.NewJournal(torn)
	for i := 0; i < total; i++ {
		err := journal.Submit(beacon.Event{
			ImpressionID: itoa(i),
			CampaignID:   "torn",
			Source:       beacon.SourceQTag,
			Type:         beacon.EventLoaded,
		})
		if err != nil {
			t.Fatalf("journal submit %d: %v", i, err)
		}
		// Flush frequently so many Writes (and therefore tears) happen.
		if i%25 == 24 {
			if err := journal.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := journal.Close(); err != nil {
		t.Fatal(err)
	}
	if torn.Tears() == 0 {
		t.Fatal("no tears injected; test is vacuous")
	}

	raw := file.Bytes()
	store := beacon.NewStore()
	first, err := beacon.ReplayJournal(bytes.NewReader(raw), store)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if first.Skipped == 0 {
		t.Error("torn journal replayed with zero skips")
	}
	if first.Replayed == 0 {
		t.Fatal("nothing replayed")
	}
	if first.Replayed+first.Skipped > total {
		t.Errorf("replayed %d + skipped %d > %d written", first.Replayed, first.Skipped, total)
	}
	if store.Len() != first.Replayed {
		t.Errorf("store %d != replayed %d", store.Len(), first.Replayed)
	}

	// Double replay: identical stats, no double counting in the store.
	lenAfterFirst := store.Len()
	second, err := beacon.ReplayJournal(bytes.NewReader(raw), store)
	if err != nil {
		t.Fatalf("second replay: %v", err)
	}
	if second != first {
		t.Errorf("second replay %+v != first %+v", second, first)
	}
	if store.Len() != lenAfterFirst {
		t.Errorf("store grew on double replay: %d → %d", lenAfterFirst, store.Len())
	}
}

package faults_test

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"qtag/internal/beacon"
	"qtag/internal/faults"
	"qtag/internal/simrand"
)

func ev(imp string) beacon.Event {
	return beacon.Event{ImpressionID: imp, CampaignID: "c1", Source: beacon.SourceQTag, Type: beacon.EventLoaded}
}

func TestSinkDeterministicSchedule(t *testing.T) {
	profile := faults.Profile{Drop: 0.3, Error: 0.2}
	run := func() (delivered int, snap faults.Snapshot, outcomes []string) {
		store := beacon.NewStore()
		s := faults.NewSink(store, simrand.New(42), profile)
		for i := 0; i < 500; i++ {
			err := s.Submit(ev(itoa(i)))
			switch {
			case err != nil:
				outcomes = append(outcomes, "err")
			default:
				outcomes = append(outcomes, "ok")
			}
		}
		return store.Len(), s.Stats(), outcomes
	}
	d1, s1, o1 := run()
	d2, s2, o2 := run()
	if d1 != d2 || s1 != s2 {
		t.Fatalf("same seed diverged: %d/%+v vs %d/%+v", d1, s1, d2, s2)
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("outcome %d diverged: %s vs %s", i, o1[i], o2[i])
		}
	}
	if s1.Dropped == 0 || s1.Errored == 0 {
		t.Errorf("profile injected nothing: %+v", s1)
	}
	if d1+int(s1.Dropped)+int(s1.Errored) != 500 {
		t.Errorf("accounting: delivered %d + dropped %d + errored %d != 500", d1, s1.Dropped, s1.Errored)
	}
}

func TestSinkZeroProfilePassesThrough(t *testing.T) {
	store := beacon.NewStore()
	s := faults.NewSink(store, simrand.New(1), faults.Profile{})
	for i := 0; i < 100; i++ {
		if err := s.Submit(ev(itoa(i))); err != nil {
			t.Fatal(err)
		}
	}
	if store.Len() != 100 {
		t.Errorf("stored %d", store.Len())
	}
	if s.Stats() != (faults.Snapshot{}) {
		t.Errorf("zero profile injected: %+v", s.Stats())
	}
}

// failSecondSink delivers the first Submit of each event and errors on
// repeats — the shape of a downstream that dedup-rejects loudly.
type failSecondSink struct {
	seen map[string]bool
}

func (f *failSecondSink) Submit(e beacon.Event) error {
	if f.seen == nil {
		f.seen = make(map[string]bool)
	}
	k := e.Key()
	if f.seen[k] {
		return faults.ErrInjected
	}
	f.seen[k] = true
	return nil
}

func TestSinkDuplicateRetryFailureStaysInvisible(t *testing.T) {
	s := faults.NewSink(&failSecondSink{}, simrand.New(7), faults.Profile{Duplicate: 1})
	for i := 0; i < 20; i++ {
		if err := s.Submit(ev(itoa(i))); err != nil {
			t.Fatalf("delivered event reported error via its duplicate retry: %v", err)
		}
	}
	if got := s.Stats().Duplicated; got != 20 {
		t.Fatalf("Duplicated = %d, want 20", got)
	}
}

func TestRoundTripperInjects5xxWithRetryAfter(t *testing.T) {
	srv := httptest.NewServer(beacon.NewServer(beacon.NewStore()))
	defer srv.Close()

	rt := faults.NewRoundTripper(nil, simrand.New(7), faults.Profile{
		Error: 1, RetryAfter: 3 * time.Second,
	})
	client := &http.Client{Transport: rt}
	resp, err := client.Post(srv.URL+"/v1/events", "application/json", strings.NewReader("[]"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want injected 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "3" {
		t.Errorf("Retry-After = %q", resp.Header.Get("Retry-After"))
	}
	if rt.Stats().Errored != 1 {
		t.Errorf("stats = %+v", rt.Stats())
	}
}

func TestRoundTripperDrop(t *testing.T) {
	srv := httptest.NewServer(beacon.NewServer(beacon.NewStore()))
	defer srv.Close()
	rt := faults.NewRoundTripper(nil, simrand.New(7), faults.Profile{Drop: 1})
	client := &http.Client{Transport: rt}
	_, err := client.Get(srv.URL + "/healthz")
	if err == nil || !strings.Contains(err.Error(), "connection dropped") {
		t.Errorf("err = %v, want injected connection drop", err)
	}
}

func TestRoundTripperPartialDeliversButReportsError(t *testing.T) {
	store := beacon.NewStore()
	srv := httptest.NewServer(beacon.NewServer(store))
	defer srv.Close()

	rt := faults.NewRoundTripper(nil, simrand.New(7), faults.Profile{Partial: 1})
	client := &http.Client{Transport: rt}
	body := `{"impression_id":"i1","campaign_id":"c1","type":"served"}`
	_, err := client.Post(srv.URL+"/v1/events", "application/json", strings.NewReader(body))
	if err == nil || !strings.Contains(err.Error(), "response lost") {
		t.Fatalf("err = %v, want response-lost", err)
	}
	// The ambiguous failure: the server DID ingest the event.
	if store.Len() != 1 {
		t.Errorf("store = %d, want 1 (request was delivered)", store.Len())
	}
	// A retry (what HTTPSink would do) is safe: idempotent ingest.
	rt2 := faults.NewRoundTripper(nil, simrand.New(7), faults.Profile{})
	client2 := &http.Client{Transport: rt2}
	resp, err := client2.Post(srv.URL+"/v1/events", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if store.Len() != 1 {
		t.Errorf("store after retry = %d, duplicate not absorbed", store.Len())
	}
}

func TestTornWriterTears(t *testing.T) {
	var sb strings.Builder
	tw := faults.NewTornWriter(&sb, simrand.New(3), 1) // every write tears
	n, err := tw.Write([]byte("hello world"))
	if err != nil || n != 11 {
		t.Fatalf("torn write reported (%d, %v), want full success", n, err)
	}
	if sb.Len() >= 11 || sb.Len() < 1 {
		t.Errorf("underlying got %d bytes, want a strict prefix", sb.Len())
	}
	if tw.Tears() != 1 {
		t.Errorf("Tears = %d", tw.Tears())
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	pos := len(b)
	for i > 0 {
		pos--
		b[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(b[pos:])
}

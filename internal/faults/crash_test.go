package faults

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"qtag/internal/wal"
)

func TestCrashWriterTearsAtExactByte(t *testing.T) {
	var buf bytes.Buffer
	cw := NewCrashWriter(&buf, 10)
	if n, err := cw.Write([]byte("12345678")); n != 8 || err != nil {
		t.Fatalf("pre-crash write: n=%d err=%v", n, err)
	}
	// This write straddles byte 10: 2 bytes land, then the crash.
	n, err := cw.Write([]byte("abcdef"))
	if n != 2 || !errors.Is(err, ErrCrashed) {
		t.Fatalf("straddling write: n=%d err=%v", n, err)
	}
	if !cw.Crashed() {
		t.Fatal("not crashed")
	}
	if n, err := cw.Write([]byte("x")); n != 0 || !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write: n=%d err=%v", n, err)
	}
	if got := buf.String(); got != "12345678ab" {
		t.Fatalf("persisted %q, want exactly 10 bytes", got)
	}
}

func TestCrashWriterExactBoundaryIsNotTorn(t *testing.T) {
	var buf bytes.Buffer
	cw := NewCrashWriter(&buf, 4)
	if n, err := cw.Write([]byte("1234")); n != 4 || err != nil {
		t.Fatalf("boundary write: n=%d err=%v", n, err)
	}
	if cw.Crashed() {
		t.Fatal("write that exactly fits must not crash")
	}
	if n, err := cw.Write([]byte("5")); n != 0 || !errors.Is(err, ErrCrashed) {
		t.Fatalf("next write: n=%d err=%v", n, err)
	}
}

func TestCrashFSTornWriteKeepsPrefix(t *testing.T) {
	dir := t.TempDir()
	cfs := NewCrashFS(nil)
	cfs.CrashAfterBytes(6)
	f, err := cfs.Create(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := f.Write([]byte("abcd")); n != 4 || err != nil {
		t.Fatalf("write: %d %v", n, err)
	}
	n, err := f.Write([]byte("efgh"))
	if n != 2 || !errors.Is(err, ErrCrashed) {
		t.Fatalf("torn write: %d %v", n, err)
	}
	if cfs.TornWrites() != 1 || !cfs.Crashed() {
		t.Fatalf("torn=%d crashed=%v", cfs.TornWrites(), cfs.Crashed())
	}
	// Post-mortem mutations all fail; the torn prefix is on disk.
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync: %v", err)
	}
	if _, err := cfs.Create(filepath.Join(dir, "g")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash create: %v", err)
	}
	if err := f.Close(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash close: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "abcdef" {
		t.Fatalf("persisted %q, want abcdef", data)
	}
}

func TestCrashFSDiscardUnsynced(t *testing.T) {
	dir := t.TempDir()
	cfs := NewCrashFS(nil)
	cfs.CrashAfterBytes(10)
	cfs.DiscardUnsynced(true)
	f, err := cfs.Create(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("dur"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("memo")) // in "page cache" only
	if _, err := f.Write([]byte("ryzz")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("want crash, got %v", err)
	}
	f.Close()
	data, err := os.ReadFile(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "dur" {
		t.Fatalf("persisted %q, want only the synced prefix \"dur\"", data)
	}
}

func TestCrashFSENOSPCModeSurvivesAndRefills(t *testing.T) {
	dir := t.TempDir()
	cfs := NewCrashFS(nil)
	cfs.CrashAfterBytes(4)
	cfs.FailWith(syscall.ENOSPC)
	f, err := cfs.Create(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("1234")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC, got %v", err)
	}
	if cfs.Crashed() {
		t.Fatal("ENOSPC mode must not crash the filesystem")
	}
	// Sync and close still work; freeing space lets writes resume.
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	cfs.Refill(100)
	if _, err := f.Write([]byte("5678")); err != nil {
		t.Fatalf("write after refill: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(filepath.Join(dir, "f"))
	if string(data) != "12345678" {
		t.Fatalf("persisted %q", data)
	}
}

func TestCrashFSOpenAppendTracksExistingSize(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if err := os.WriteFile(path, []byte("pre-existing"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfs := NewCrashFS(nil)
	cfs.CrashAfterBytes(2)
	cfs.DiscardUnsynced(true)
	f, err := cfs.OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	// The pre-existing bytes count as synced: the crash rollback must
	// not eat them.
	if _, err := f.Write([]byte("abcd")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("want crash, got %v", err)
	}
	f.Close()
	data, _ := os.ReadFile(path)
	if string(data) != "pre-existing" {
		t.Fatalf("persisted %q, want the pre-existing content intact", data)
	}
}

func TestFlipBit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if err := os.WriteFile(path, []byte{0x00, 0xff}, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := FlipBit(path, 0, 3); err != nil {
		t.Fatal(err)
	}
	if err := FlipBit(path, 1, 0); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	if data[0] != 0x08 || data[1] != 0xfe {
		t.Fatalf("flipped to % x", data)
	}
	if err := FlipBit(path, 99, 0); err == nil {
		t.Fatal("out-of-range offset must error")
	}
}

// TestCrashFSDrivesWAL is the integration smoke: a WAL writing through a
// CrashFS crashes at a byte boundary, and recovery over the same
// directory yields exactly the synced prefix.
func TestCrashFSDrivesWAL(t *testing.T) {
	dir := t.TempDir()
	cfs := NewCrashFS(nil)
	cfs.DiscardUnsynced(true)
	w, _, err := wal.Open(wal.Options{Dir: dir, FS: cfs, Fsync: wal.FsyncAlways}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Arm after the segment header so the first records fit.
	cfs.CrashAfterBytes(100)
	acked := 0
	for i := 0; i < 100; i++ {
		if err := w.Append([]byte("0123456789abcdef")); err != nil {
			break
		}
		acked++
	}
	if acked == 0 || acked >= 100 {
		t.Fatalf("acked %d appends, want a crash mid-run", acked)
	}
	w.Close()
	got := 0
	_, res, err := wal.Open(wal.Options{Dir: dir}, func(uint64, []byte) error {
		got++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != acked {
		t.Fatalf("recovered %d records, acked %d (result %+v)", got, acked, res)
	}
}

func TestCrashFSPassThroughAndPostMortem(t *testing.T) {
	dir := t.TempDir()
	cfs := NewCrashFS(nil)
	sub := filepath.Join(dir, "sub")
	if err := cfs.MkdirAll(sub); err != nil {
		t.Fatal(err)
	}
	a, b := filepath.Join(sub, "a"), filepath.Join(sub, "b")
	f, err := cfs.Create(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("data")); err != nil {
		t.Fatal(err)
	}
	// Truncate before any crash adjusts both size and synced tracking.
	if err := f.Truncate(2); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); !errors.Is(err, os.ErrClosed) {
		t.Fatalf("double close: %v", err)
	}
	if got := cfs.BytesWritten(); got != 4 {
		t.Fatalf("BytesWritten = %d", got)
	}
	if err := cfs.Rename(a, b); err != nil {
		t.Fatal(err)
	}
	data, err := cfs.ReadFile(b)
	if err != nil || string(data) != "da" {
		t.Fatalf("ReadFile: %q %v", data, err)
	}
	names, err := cfs.List(sub)
	if err != nil || len(names) != 1 || names[0] != "b" {
		t.Fatalf("List: %v %v", names, err)
	}
	if err := cfs.Remove(b); err != nil {
		t.Fatal(err)
	}

	// Crash the filesystem: every mutation fails, reads keep working.
	g, err := cfs.Create(a)
	if err != nil {
		t.Fatal(err)
	}
	cfs.CrashAfterBytes(0)
	if _, err := g.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-arm write: %v", err)
	}
	if err := g.Truncate(0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash truncate: %v", err)
	}
	if err := cfs.MkdirAll(filepath.Join(dir, "x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash mkdir: %v", err)
	}
	if err := cfs.Rename(a, b); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash rename: %v", err)
	}
	if err := cfs.Remove(a); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash remove: %v", err)
	}
	if _, err := cfs.OpenAppend(a); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash open: %v", err)
	}
	if _, err := cfs.ReadFile(a); err != nil {
		t.Fatalf("post-crash read must work: %v", err)
	}
	if _, err := cfs.List(sub); err != nil {
		t.Fatalf("post-crash list must work: %v", err)
	}
}

// Package faults is the deterministic chaos layer for the beacon
// delivery pipeline. It injects the failure modes third-party tag
// traffic actually sees — silent drops, server 5xx pushback, added
// latency, and ambiguous "request sent, response lost" partial failures —
// at two seams:
//
//   - Sink wraps any beacon.Sink (the in-process simulation path), so
//     campaign runs can model beacon loss between tag and collector.
//   - RoundTripper wraps an http.RoundTripper (the real wire path), so
//     integration and chaos tests exercise HTTPSink/QueueSink/
//     CircuitBreaker against injected network weather.
//   - TornWriter wraps an io.Writer, tearing journal writes the way a
//     crash mid-flush does, to test replay robustness.
//
// All randomness comes from an injected simrand.RNG, so a fault schedule
// replays bit-identically from its seed: two runs with the same seed see
// the same drops in the same places, which is what lets the campaign
// simulator reproduce the paper's "not measured" population as a function
// of injected loss.
package faults

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qtag/internal/beacon"
	"qtag/internal/simrand"
)

// Injected failure errors.
var (
	// ErrInjected is the base error for injected sink failures.
	ErrInjected = errors.New("faults: injected failure")
	// ErrConnDropped models a connection that never reached the server.
	ErrConnDropped = fmt.Errorf("%w: connection dropped", ErrInjected)
	// ErrResponseLost models the ambiguous partial failure: the server
	// processed the request but the response was lost in transit, so the
	// client cannot tell whether the write landed.
	ErrResponseLost = fmt.Errorf("%w: response lost after delivery", ErrInjected)
)

// Profile describes one fault schedule. The zero value injects nothing.
type Profile struct {
	// Drop is the probability a submission is silently lost (the sink
	// reports success, the event vanishes — the classic beacon-loss mode
	// of §4.4's "not measured" population).
	Drop float64
	// Error is the probability of a failed submission: Sink returns an
	// error, RoundTripper synthesizes an HTTP error response.
	Error float64
	// ErrorCode is the synthesized HTTP status for RoundTripper error
	// injections; 503 when zero.
	ErrorCode int
	// RetryAfter, when positive, is advertised on injected HTTP errors so
	// clients exercising Retry-After handling can be driven
	// deterministically.
	RetryAfter time.Duration
	// Latency is the maximum injected delay; each affected call sleeps a
	// uniform draw from [0, Latency).
	Latency time.Duration
	// Partial is the probability (RoundTripper only) that a request is
	// delivered to the server but its response is discarded and an error
	// returned — at-least-once clients must retry and rely on idempotent
	// ingestion.
	Partial float64
	// Duplicate is the probability (Sink only) that a successfully
	// delivered submission is immediately re-submitted — the benign
	// at-least-once retry noise every real beacon path carries. The
	// store absorbs the repeats; the duplicate-flood detector must NOT
	// flag traffic at honest Duplicate rates, which is exactly what
	// the detection harness's false-positive floor checks.
	Duplicate float64
}

// Enabled reports whether the profile injects any fault at all.
func (p Profile) Enabled() bool {
	return p.Drop > 0 || p.Error > 0 || p.Latency > 0 || p.Partial > 0 || p.Duplicate > 0
}

// String implements fmt.Stringer for log lines.
func (p Profile) String() string {
	return fmt.Sprintf("drop=%.3f err=%.3f latency=%s partial=%.3f dup=%.3f", p.Drop, p.Error, p.Latency, p.Partial, p.Duplicate)
}

// Stats counts injected faults. All fields are atomics; one Stats may be
// shared across several injectors to aggregate a whole run.
type Stats struct {
	Dropped    atomic.Int64
	Errored    atomic.Int64
	Delayed    atomic.Int64
	Partial    atomic.Int64
	Duplicated atomic.Int64
}

// Snapshot is a point-in-time copy of Stats.
type Snapshot struct {
	Dropped    int64
	Errored    int64
	Delayed    int64
	Partial    int64
	Duplicated int64
}

// Snapshot returns a copy of the counters.
func (s *Stats) Snapshot() Snapshot {
	return Snapshot{
		Dropped:    s.Dropped.Load(),
		Errored:    s.Errored.Load(),
		Delayed:    s.Delayed.Load(),
		Partial:    s.Partial.Load(),
		Duplicated: s.Duplicated.Load(),
	}
}

// String implements fmt.Stringer.
func (s Snapshot) String() string {
	return fmt.Sprintf("dropped=%d errored=%d delayed=%d partial=%d duplicated=%d", s.Dropped, s.Errored, s.Delayed, s.Partial, s.Duplicated)
}

// Sink injects faults between a tag and a beacon.Sink. It is safe for
// concurrent use (draws are serialized), but deterministic replay
// additionally requires a deterministic submission order — fork one Sink
// per single-threaded producer (as the campaign simulator does per
// campaign) to stay replayable under parallelism.
type Sink struct {
	next  beacon.Sink
	p     Profile
	sleep func(time.Duration)

	mu  sync.Mutex
	rng *simrand.RNG

	stats *Stats
}

// NewSink wraps next with the fault profile, drawing from rng.
func NewSink(next beacon.Sink, rng *simrand.RNG, p Profile) *Sink {
	return NewSinkWithStats(next, rng, p, &Stats{})
}

// NewSinkWithStats is NewSink with a caller-owned (possibly shared)
// counter block.
func NewSinkWithStats(next beacon.Sink, rng *simrand.RNG, p Profile, stats *Stats) *Sink {
	return &Sink{next: next, p: p, rng: rng, sleep: time.Sleep, stats: stats}
}

// SetSleep overrides the latency-injection sleeper (tests, virtual-clock
// simulations). A nil fn disables sleeping while still counting delays.
func (s *Sink) SetSleep(fn func(time.Duration)) { s.sleep = fn }

// Stats returns a snapshot of the injected-fault counters.
func (s *Sink) Stats() Snapshot { return s.stats.Snapshot() }

// Submit implements beacon.Sink.
func (s *Sink) Submit(e beacon.Event) error {
	s.mu.Lock()
	delay := time.Duration(0)
	if s.p.Latency > 0 {
		delay = time.Duration(s.rng.Float64() * float64(s.p.Latency))
	}
	drop := s.rng.Bool(s.p.Drop)
	fail := !drop && s.rng.Bool(s.p.Error)
	dup := !drop && !fail && s.rng.Bool(s.p.Duplicate)
	s.mu.Unlock()

	if delay > 0 {
		s.stats.Delayed.Add(1)
		if s.sleep != nil {
			s.sleep(delay)
		}
	}
	if drop {
		s.stats.Dropped.Add(1)
		return nil // lost in transit; the tag never learns
	}
	if fail {
		s.stats.Errored.Add(1)
		return ErrInjected
	}
	if err := s.next.Submit(e); err != nil {
		return err
	}
	if dup {
		// An at-least-once retry after a lost ack: the same event goes
		// down the pipe twice and idempotent ingestion absorbs it. The
		// original delivery already succeeded, so the retry's own fate
		// must not surface — a caller seeing an error for a delivered
		// event would retry again and skew the harness's accounting.
		s.stats.Duplicated.Add(1)
		_ = s.next.Submit(e)
	}
	return nil
}

// RoundTripper injects network weather under an http.Client. Decisions
// are drawn per request in submission order under a lock; see Sink for
// the determinism caveat under concurrency.
type RoundTripper struct {
	next  http.RoundTripper
	p     Profile
	sleep func(time.Duration)

	mu  sync.Mutex
	rng *simrand.RNG

	stats *Stats
}

// NewRoundTripper wraps next (http.DefaultTransport when nil) with the
// fault profile, drawing from rng.
func NewRoundTripper(next http.RoundTripper, rng *simrand.RNG, p Profile) *RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	return &RoundTripper{next: next, p: p, rng: rng, sleep: time.Sleep, stats: &Stats{}}
}

// SetSleep overrides the latency-injection sleeper (tests).
func (t *RoundTripper) SetSleep(fn func(time.Duration)) { t.sleep = fn }

// Stats returns a snapshot of the injected-fault counters.
func (t *RoundTripper) Stats() Snapshot { return t.stats.Snapshot() }

// RoundTrip implements http.RoundTripper.
func (t *RoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	delay := time.Duration(0)
	if t.p.Latency > 0 {
		delay = time.Duration(t.rng.Float64() * float64(t.p.Latency))
	}
	drop := t.rng.Bool(t.p.Drop)
	fail := !drop && t.rng.Bool(t.p.Error)
	partial := !drop && !fail && t.rng.Bool(t.p.Partial)
	t.mu.Unlock()

	if delay > 0 {
		t.stats.Delayed.Add(1)
		if t.sleep != nil {
			t.sleep(delay)
		}
	}
	if drop {
		// The request never reaches the server.
		if req.Body != nil {
			req.Body.Close()
		}
		t.stats.Dropped.Add(1)
		return nil, ErrConnDropped
	}
	if fail {
		// The server (or an intermediary) pushes back without ingesting.
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		t.stats.Errored.Add(1)
		code := t.p.ErrorCode
		if code == 0 {
			code = http.StatusServiceUnavailable
		}
		header := make(http.Header)
		header.Set("Content-Type", "application/json")
		if t.p.RetryAfter > 0 {
			secs := int(t.p.RetryAfter / time.Second)
			if secs < 1 {
				secs = 1
			}
			header.Set("Retry-After", strconv.Itoa(secs))
		}
		return &http.Response{
			Status:     fmt.Sprintf("%d %s", code, http.StatusText(code)),
			StatusCode: code,
			Proto:      "HTTP/1.1",
			ProtoMajor: 1,
			ProtoMinor: 1,
			Header:     header,
			Body:       io.NopCloser(strings.NewReader(`{"error":"injected fault"}`)),
			Request:    req,
		}, nil
	}
	resp, err := t.next.RoundTrip(req)
	if err != nil {
		return resp, err
	}
	if partial {
		// The server processed the request; the client never learns.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		t.stats.Partial.Add(1)
		return nil, ErrResponseLost
	}
	return resp, nil
}

// TornWriter wraps an io.Writer and, with probability Rate per Write,
// silently truncates the buffer to a random prefix while still reporting
// full success — the way a crash mid-flush tears the tail of a buffered
// journal write. Downstream bytes after a tear are lost, and the line
// spanning the tear decodes as garbage, which is exactly the corruption
// beacon.ReplayJournal must skip past.
type TornWriter struct {
	w    io.Writer
	rate float64

	mu    sync.Mutex
	rng   *simrand.RNG
	tears atomic.Int64
}

// NewTornWriter wraps w, tearing each Write with probability rate.
func NewTornWriter(w io.Writer, rng *simrand.RNG, rate float64) *TornWriter {
	return &TornWriter{w: w, rng: rng, rate: rate}
}

// Tears returns the number of injected torn writes.
func (t *TornWriter) Tears() int64 { return t.tears.Load() }

// Write implements io.Writer. It lies about n on a tear, by design.
func (t *TornWriter) Write(p []byte) (int, error) {
	t.mu.Lock()
	tear := t.rng.Bool(t.rate) && len(p) > 1
	cut := 0
	if tear {
		cut = 1 + t.rng.Intn(len(p)-1)
	}
	t.mu.Unlock()
	if tear {
		t.tears.Add(1)
		if _, err := t.w.Write(p[:cut]); err != nil {
			return 0, err
		}
		return len(p), nil
	}
	return t.w.Write(p)
}

package report

import (
	"strings"
	"testing"
)

func TestTable(t *testing.T) {
	out := Table([]string{"name", "value"}, [][]string{
		{"alpha", "1"},
		{"a-much-longer-name", "22"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// All rows align to the same width.
	w := len(lines[1])
	for i, l := range lines {
		if len(strings.TrimRight(l, " ")) > w {
			t.Errorf("line %d wider than separator: %q", i, l)
		}
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[2], "alpha") {
		t.Errorf("content missing:\n%s", out)
	}
	if !strings.HasPrefix(lines[1], "----") {
		t.Errorf("separator missing: %q", lines[1])
	}
}

func TestTableShortRowPadded(t *testing.T) {
	out := Table([]string{"a", "b", "c"}, [][]string{{"only"}})
	if !strings.Contains(out, "only") {
		t.Error("short row dropped")
	}
}

func TestBar(t *testing.T) {
	full := Bar("qtag", 0.93, 1.0, 20)
	if !strings.Contains(full, "93.0%") {
		t.Errorf("Bar = %q", full)
	}
	if strings.Count(full, "█") != 19 { // 0.93*20 rounds to 19
		t.Errorf("fill chars = %d in %q", strings.Count(full, "█"), full)
	}
	empty := Bar("none", 0, 1, 10)
	if strings.Count(empty, "█") != 0 || strings.Count(empty, "░") != 10 {
		t.Errorf("empty bar = %q", empty)
	}
	// Overflow and zero-max are clamped.
	over := Bar("x", 2, 1, 10)
	if strings.Count(over, "█") != 10 {
		t.Errorf("overflow bar = %q", over)
	}
	zero := Bar("x", 0.5, 0, 10)
	if strings.Count(zero, "█") != 0 {
		t.Errorf("zero-max bar = %q", zero)
	}
	// Default width kicks in for non-positive widths.
	if !strings.Contains(Bar("x", 0.5, 1, 0), "░") {
		t.Error("default width missing")
	}
}

func TestPercent(t *testing.T) {
	if Percent(0.934) != "93.4%" {
		t.Errorf("Percent = %q", Percent(0.934))
	}
}

func TestSeries(t *testing.T) {
	out := Series("X layout", []int{9, 25}, []float64{0.08, 0.02}, nil)
	if !strings.Contains(out, "X layout") || !strings.Contains(out, "25") || !strings.Contains(out, "0.0200") {
		t.Errorf("Series = %q", out)
	}
	custom := Series("t", []int{1}, []float64{0.5}, func(v float64) string { return "CUSTOM" })
	if !strings.Contains(custom, "CUSTOM") {
		t.Error("custom formatter ignored")
	}
}

func TestPlot(t *testing.T) {
	out := Plot("Figure 2", []SeriesData{
		{Name: "X", Xs: []int{9, 25, 60}, Ys: []float64{0.07, 0.02, 0.01}},
		{Name: "dice", Xs: []int{9, 25, 60}, Ys: []float64{0.09, 0.08, 0.08}},
	}, 40, 10)
	for _, want := range []string{"Figure 2", "x=X", "o=dice", "│", "└"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "x") < 3 {
		t.Errorf("markers missing:\n%s", out)
	}
	// Degenerate inputs do not panic.
	if !strings.Contains(Plot("empty", nil, 0, 0), "no data") {
		t.Error("empty plot should say so")
	}
	if !strings.Contains(Plot("flat", []SeriesData{{Name: "z", Xs: []int{1}, Ys: []float64{0}}}, 10, 5), "no data") {
		t.Error("all-zero plot should say so")
	}
	// Single-x series lands everything in column 0 without dividing by 0.
	one := Plot("one", []SeriesData{{Name: "p", Xs: []int{5, 5}, Ys: []float64{0.5, 1.0}}}, 10, 5)
	if !strings.Contains(one, "x") {
		t.Error("single-x plot missing markers")
	}
}

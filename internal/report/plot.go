package report

import (
	"fmt"
	"math"
	"strings"
)

// SeriesData is one named curve for Plot.
type SeriesData struct {
	Name string
	Xs   []int
	Ys   []float64
}

// Plot renders one or more curves as an ASCII scatter chart with a y
// axis, suitable for terminal reproduction of the paper's figures. Each
// series is drawn with its own marker (1, 2, 3, … by position). Width
// and height are the plot area in characters; sensible defaults apply
// when non-positive.
func Plot(title string, series []SeriesData, width, height int) string {
	if width <= 0 {
		width = 60
	}
	if height <= 0 {
		height = 16
	}
	// Establish ranges.
	minX, maxX := math.MaxInt32, math.MinInt32
	maxY := 0.0
	for _, s := range series {
		for i := range s.Xs {
			if s.Xs[i] < minX {
				minX = s.Xs[i]
			}
			if s.Xs[i] > maxX {
				maxX = s.Xs[i]
			}
			if s.Ys[i] > maxY {
				maxY = s.Ys[i]
			}
		}
	}
	if minX > maxX || maxY == 0 {
		return title + "\n(no data)\n"
	}

	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	markers := []rune{'x', 'o', '+', '*', '#', '@'}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i := range s.Xs {
			col := 0
			if maxX > minX {
				col = int(float64(s.Xs[i]-minX) / float64(maxX-minX) * float64(width-1))
			}
			row := height - 1 - int(s.Ys[i]/maxY*float64(height-1)+0.5)
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = m
		}
	}

	var sb strings.Builder
	sb.WriteString(title)
	sb.WriteByte('\n')
	for r, line := range grid {
		yVal := maxY * float64(height-1-r) / float64(height-1)
		fmt.Fprintf(&sb, "%7.4f │%s\n", yVal, string(line))
	}
	sb.WriteString("        └" + strings.Repeat("─", width) + "\n")
	fmt.Fprintf(&sb, "         %-d%s%d\n", minX, strings.Repeat(" ", maxInt(1, width-len(fmt.Sprint(minX))-len(fmt.Sprint(maxX)))), maxX)
	legend := make([]string, 0, len(series))
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", markers[si%len(markers)], s.Name))
	}
	sb.WriteString("         " + strings.Join(legend, "  ") + "\n")
	return sb.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package report

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"qtag/internal/aggregate"
	"qtag/internal/beacon"
	"qtag/internal/detect"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden files instead of comparing")

// goldenStack builds the aggregate + detect pair behind the golden
// report: camp-good carries clean lifecycles (30 impressions, enough
// volume to clear the detector's MinEvents gate honestly), camp-spoof
// carries bare in-view beacons with duplicate re-submissions — one
// honest row and one flagged row, so the golden file pins the full
// fraud schema, contributions and all.
func goldenStack(t *testing.T) (*aggregate.Aggregator, *detect.Detector) {
	t.Helper()
	a := aggregate.New(aggregate.Options{TTL: -1, Now: func() time.Time { return rt0 }})
	d := detect.New(detect.Options{TTL: -1, Now: func() time.Time { return rt0 }})
	store := beacon.NewStore()
	store.AddObserver(a.Observe)
	store.AddObserver(d.Observe)
	store.AddDupObserver(d.ObserveDup)

	meta := beacon.Meta{Format: "banner", AdSize: "300x250"}
	submit := func(e beacon.Event) {
		t.Helper()
		if err := store.Submit(e); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	for i := 0; i < 30; i++ {
		imp := "good-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		m := meta
		m.Slot = "slot-" + string(rune('a'+i%8))
		at := rt0.Add(time.Duration(i) * 10 * time.Second)
		submit(beacon.Event{ImpressionID: imp, CampaignID: "camp-good", Type: beacon.EventServed, At: at, Meta: m})
		submit(beacon.Event{ImpressionID: imp, CampaignID: "camp-good", Source: beacon.SourceQTag, Type: beacon.EventLoaded, At: at.Add(80 * time.Millisecond), Meta: m})
		if i%2 == 0 {
			submit(beacon.Event{ImpressionID: imp, CampaignID: "camp-good", Source: beacon.SourceQTag, Type: beacon.EventInView, At: at.Add(300 * time.Millisecond), Meta: m})
			submit(beacon.Event{ImpressionID: imp, CampaignID: "camp-good", Source: beacon.SourceQTag, Type: beacon.EventOutOfView, At: at.Add(2500 * time.Millisecond), Meta: m})
		}
	}
	for i := 0; i < 30; i++ {
		imp := "spoof-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		at := rt0.Add(time.Duration(i) * 10 * time.Second)
		ev := beacon.Event{ImpressionID: imp, CampaignID: "camp-spoof", Source: beacon.SourceQTag, Type: beacon.EventInView, At: at, Meta: meta}
		submit(ev)
		submit(ev) // at-least-once retry, routed to the duplicate hook
	}
	return a, d
}

// TestReportGoldenJSON pins the exact GET /report JSON schema — honest
// aggregate fields plus the fraud object — against
// testdata/report_golden.json. Run with -update after an intentional
// schema change; an unintentional one fails here first. The schema is
// documented in README.md.
func TestReportGoldenJSON(t *testing.T) {
	a, d := goldenStack(t)
	h := HandlerWithDetect(a, d, func() time.Time { return rt0 })
	rr := get(t, h, "/report?windows=0")
	if rr.Code != 200 {
		t.Fatalf("status = %d, body = %s", rr.Code, rr.Body)
	}
	var pretty bytes.Buffer
	if err := json.Indent(&pretty, rr.Body.Bytes(), "", "  "); err != nil {
		t.Fatalf("indent: %v", err)
	}
	pretty.WriteByte('\n')

	golden := filepath.Join("testdata", "report_golden.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, pretty.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(pretty.Bytes(), want) {
		t.Fatalf("GET /report JSON drifted from golden; run with -update if intentional\n got:\n%s\nwant:\n%s", pretty.Bytes(), want)
	}
}

// TestReportPrometheusDetect spot-checks the qtag_detect_* exposition
// the same stack serves under ?format=prom.
func TestReportPrometheusDetect(t *testing.T) {
	a, d := goldenStack(t)
	h := HandlerWithDetect(a, d, func() time.Time { return rt0 })
	body := get(t, h, "/report?format=prom").Body.String()
	for _, line := range []string{
		`qtag_detect_score{campaign="camp-spoof",source="qtag"} 1`,
		`qtag_detect_flagged{campaign="camp-spoof",source="qtag"} 1`,
		`qtag_detect_flagged{campaign="camp-good",source="qtag"} 0`,
		`qtag_detect_contribution{campaign="camp-spoof",source="qtag",detector="sequence"} 1`,
		`qtag_detect_row_dups{campaign="camp-spoof",source="qtag"} 30`,
	} {
		if !strings.Contains(body, line) {
			t.Errorf("prom exposition missing %q", line)
		}
	}
	// A nil detector must serve the pre-detect exposition untouched.
	plain := get(t, Handler(a, nil), "/report?format=prom").Body.String()
	if strings.Contains(plain, "qtag_detect_") {
		t.Error("nil detector leaked qtag_detect_* families")
	}
}

package report

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"qtag/internal/aggregate"
	"qtag/internal/detect"
	"qtag/internal/obs"
)

// Handler serves the streaming campaign viewability report — the
// campaign-level product the paper's §4–§5 monetize — straight from the
// aggregate accumulators, for mounting next to the collection API:
//
//	GET /report                  JSON: per campaign × format counts,
//	                             rates, dwell histograms, rollup windows
//	GET /report?format=prom      Prometheus text exposition of the same
//	GET /report?windows=0        JSON without the rollup windows
//
// Memory per request is bounded by campaigns × formats — the raw event
// store is never consulted, let alone scanned.
func Handler(a *aggregate.Aggregator, now func() time.Time) http.Handler {
	return HandlerWithDetect(a, nil, now)
}

// HandlerWithDetect is Handler plus the fraud layer: with a non-nil
// detector the JSON payload gains a "fraud" object (per campaign ×
// solution scores, per-detector contributions, flagged campaigns) and
// the Prometheus exposition gains the qtag_detect_* families. A nil
// detector serves the exact pre-detect schema — the golden-file test
// pins both shapes.
func HandlerWithDetect(a *aggregate.Aggregator, d *detect.Detector, now func() time.Time) http.Handler {
	if now == nil {
		now = time.Now
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// When the route is mounted behind obs.TraceMiddleware, annotate
		// the request's span with the report's shape; SpanFromContext is
		// nil-safe, so untraced deployments pay nothing here.
		sp := obs.SpanFromContext(r.Context())
		switch r.URL.Query().Get("format") {
		case "", "json":
			resp := ViewabilityReport{
				GeneratedAt:     now().UTC(),
				Campaigns:       a.Snapshot(),
				OpenImpressions: a.OpenImpressions(),
				Evicted:         a.Evicted(),
			}
			if r.URL.Query().Get("windows") != "0" {
				resp.Windows = a.Windows()
			}
			if d != nil {
				fraud := d.Snapshot()
				resp.Fraud = &fraud
				sp.SetAttr("report.flagged_campaigns", strconv.Itoa(len(fraud.Flagged)))
			}
			sp.SetAttr("report.campaign_rows", strconv.Itoa(len(resp.Campaigns.Rows)))
			sp.SetAttr("report.open_impressions", strconv.Itoa(resp.OpenImpressions))
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(resp)
		case "prom", "prometheus":
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_, _ = w.Write([]byte(Prometheus(a.Snapshot())))
			if d != nil {
				_, _ = w.Write([]byte(PrometheusDetect(d.Snapshot())))
			}
		default:
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusBadRequest)
			_ = json.NewEncoder(w).Encode(map[string]string{"error": "unknown format; want json or prom"})
		}
	})
}

// ViewabilityReport is the GET /report JSON payload.
type ViewabilityReport struct {
	GeneratedAt     time.Time                  `json:"generated_at"`
	Campaigns       aggregate.Snapshot         `json:"campaigns"`
	OpenImpressions int                        `json:"open_impressions"`
	Evicted         int64                      `json:"evicted_impression_states"`
	Windows         []aggregate.WindowSnapshot `json:"windows,omitempty"`
	// Fraud carries the detection layer's scores when the server runs
	// with -detect; absent otherwise.
	Fraud *detect.Snapshot `json:"fraud,omitempty"`
}

// Prometheus renders a snapshot in Prometheus text exposition format
// (deterministic: the snapshot is already sorted).
func Prometheus(s aggregate.Snapshot) string {
	var b strings.Builder
	writeHeader := func(name, help, typ string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}

	type series struct {
		labels string
		value  string
	}
	families := []struct {
		name, help, typ string
		collect         func(r aggregate.Row, src string, c aggregate.SourceCounts) (string, bool)
	}{
		{"qtag_report_impressions", "Distinct impressions observed per campaign and format.", "gauge",
			func(r aggregate.Row, src string, _ aggregate.SourceCounts) (string, bool) {
				return strconv.FormatInt(r.Impressions, 10), src == ""
			}},
		{"qtag_report_served", "Impressions with a served event per campaign and format.", "gauge",
			func(r aggregate.Row, src string, _ aggregate.SourceCounts) (string, bool) {
				return strconv.FormatInt(r.Served, 10), src == ""
			}},
		{"qtag_report_measured", "Impressions a solution checked in on.", "gauge",
			func(_ aggregate.Row, src string, c aggregate.SourceCounts) (string, bool) {
				return strconv.FormatInt(c.Measured, 10), src != ""
			}},
		{"qtag_report_viewed", "Impressions classified viewed by a solution.", "gauge",
			func(_ aggregate.Row, src string, c aggregate.SourceCounts) (string, bool) {
				return strconv.FormatInt(c.Viewed, 10), src != ""
			}},
		{"qtag_report_not_viewed", "Impressions measured but not viewed.", "gauge",
			func(_ aggregate.Row, src string, c aggregate.SourceCounts) (string, bool) {
				return strconv.FormatInt(c.NotViewed, 10), src != ""
			}},
		{"qtag_report_not_measured", "Impressions a solution never checked in on.", "gauge",
			func(_ aggregate.Row, src string, c aggregate.SourceCounts) (string, bool) {
				return strconv.FormatInt(c.NotMeasured, 10), src != ""
			}},
		{"qtag_report_measured_rate", "Measured / served per solution.", "gauge",
			func(_ aggregate.Row, src string, c aggregate.SourceCounts) (string, bool) {
				return formatFloat(c.MeasuredRate), src != ""
			}},
		{"qtag_report_viewability_rate", "Viewed / measured per solution — the campaign viewability rate.", "gauge",
			func(_ aggregate.Row, src string, c aggregate.SourceCounts) (string, bool) {
				return formatFloat(c.ViewabilityRate), src != ""
			}},
	}
	for _, fam := range families {
		var out []series
		for _, r := range s.Rows {
			if v, ok := fam.collect(r, "", aggregate.SourceCounts{}); ok {
				out = append(out, series{labelSet("campaign", r.CampaignID, "format", r.Format), v})
			}
			for _, src := range sortedSources(r.Sources) {
				if v, ok := fam.collect(r, src, r.Sources[src]); ok {
					out = append(out, series{labelSet("campaign", r.CampaignID, "format", r.Format, "source", src), v})
				}
			}
		}
		if len(out) == 0 {
			continue
		}
		writeHeader(fam.name, fam.help, fam.typ)
		for _, s := range out {
			fmt.Fprintf(&b, "%s%s %s\n", fam.name, s.labels, s.value)
		}
	}

	if len(s.Dwell) > 0 {
		writeHeader("qtag_report_dwell_seconds", "In-view dwell per completed in-view/out-of-view cycle.", "histogram")
		for _, d := range s.Dwell {
			base := []string{"campaign", d.CampaignID, "source", d.Source}
			cum := int64(0)
			for i, c := range d.Dwell.Buckets {
				cum += c
				le := "+Inf"
				if i < len(d.Dwell.Bounds) {
					le = formatFloat(d.Dwell.Bounds[i])
				}
				fmt.Fprintf(&b, "qtag_report_dwell_seconds_bucket%s %d\n",
					labelSet(append(append([]string(nil), base...), "le", le)...), cum)
			}
			fmt.Fprintf(&b, "qtag_report_dwell_seconds_sum%s %s\n",
				labelSet(base...), formatFloat(time.Duration(d.Dwell.SumNs).Seconds()))
			fmt.Fprintf(&b, "qtag_report_dwell_seconds_count%s %d\n", labelSet(base...), d.Dwell.Count)
		}
	}
	return b.String()
}

// PrometheusDetect renders a detection snapshot as the qtag_detect_*
// per-row score families (deterministic: the snapshot is sorted). The
// detector's own throughput/eviction counters are registered on the
// process metrics registry instead; this covers the per-campaign view.
func PrometheusDetect(s detect.Snapshot) string {
	if len(s.Rows) == 0 {
		return ""
	}
	var b strings.Builder
	writeHeader := func(name, help, typ string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}

	writeHeader("qtag_detect_score", "Composite fraud score per campaign and solution (max of detector contributions).", "gauge")
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "qtag_detect_score%s %s\n", labelSet("campaign", r.CampaignID, "source", r.Source), formatFloat(r.Score))
	}
	writeHeader("qtag_detect_flagged", "1 when the row's composite score is at or over the flag threshold with enough volume.", "gauge")
	for _, r := range s.Rows {
		v := "0"
		if r.Flagged {
			v = "1"
		}
		fmt.Fprintf(&b, "qtag_detect_flagged%s %s\n", labelSet("campaign", r.CampaignID, "source", r.Source), v)
	}
	writeHeader("qtag_detect_contribution", "Per-detector fraud score contribution.", "gauge")
	for _, r := range s.Rows {
		for _, det := range detect.Detectors {
			fmt.Fprintf(&b, "qtag_detect_contribution%s %s\n",
				labelSet("campaign", r.CampaignID, "source", r.Source, "detector", det), formatFloat(r.Contribs[det]))
		}
	}
	writeHeader("qtag_detect_row_events", "First-seen events scored per campaign and solution.", "gauge")
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "qtag_detect_row_events%s %d\n", labelSet("campaign", r.CampaignID, "source", r.Source), r.Events)
	}
	writeHeader("qtag_detect_row_dups", "Duplicate submissions scored per campaign and solution.", "gauge")
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "qtag_detect_row_dups%s %d\n", labelSet("campaign", r.CampaignID, "source", r.Source), r.Dups)
	}
	return b.String()
}

func sortedSources(m map[string]aggregate.SourceCounts) []string {
	out := make([]string, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// labelSet renders {k="v",...} from alternating key/value arguments,
// escaping values per the exposition format.
func labelSet(kv ...string) string {
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Text renders the snapshot as the aligned plain-text table the cmd/
// tools print (qtag-replay -report): one line per campaign × format ×
// source, since the wire accepts any solution name, not just the two
// canonical ones.
func Text(s aggregate.Snapshot) string {
	rows := make([][]string, 0, len(s.Rows))
	for _, r := range s.Rows {
		format := r.Format
		if format == "" {
			format = "-"
		}
		for _, src := range sortedSources(r.Sources) {
			c := r.Sources[src]
			rows = append(rows, []string{
				r.CampaignID, format, src,
				fmt.Sprint(r.Impressions), fmt.Sprint(r.Served),
				fmt.Sprint(c.Viewed), fmt.Sprint(c.NotViewed), fmt.Sprint(c.NotMeasured),
				Percent(c.ViewabilityRate),
			})
		}
	}
	var b strings.Builder
	b.WriteString(Table(
		[]string{"Campaign", "Format", "Source", "Impressions", "Served", "Viewed", "Not viewed", "Not measured", "Viewability"},
		rows))
	if len(s.Dwell) > 0 {
		b.WriteString("\nin-view dwell (completed cycles):\n")
		for _, d := range s.Dwell {
			b.WriteString(fmt.Sprintf("  %-12s %-10s n=%-6d mean=%.2fs p50=%.2fs p90=%.2fs\n",
				d.CampaignID, d.Source, d.Dwell.Count,
				d.Dwell.MeanSeconds(), d.Dwell.Quantile(0.50), d.Dwell.Quantile(0.90)))
		}
	}
	return b.String()
}

package report

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"qtag/internal/aggregate"
	"qtag/internal/beacon"
)

var rt0 = time.Unix(1600000000, 0).UTC()

// reportAgg builds an aggregator with one fully-classified campaign:
// 3 impressions — one viewed (with a 2s dwell cycle), one loaded-only,
// one served-only.
func reportAgg(t *testing.T) *aggregate.Aggregator {
	t.Helper()
	a := aggregate.New(aggregate.Options{TTL: -1, Now: func() time.Time { return rt0 }})
	store := beacon.NewStore()
	store.AddObserver(a.Observe)
	events := []beacon.Event{
		{ImpressionID: "i1", CampaignID: "camp-a", Type: beacon.EventServed, At: rt0, Meta: beacon.Meta{Format: "banner"}},
		{ImpressionID: "i1", CampaignID: "camp-a", Source: beacon.SourceQTag, Type: beacon.EventLoaded, At: rt0, Meta: beacon.Meta{Format: "banner"}},
		{ImpressionID: "i1", CampaignID: "camp-a", Source: beacon.SourceQTag, Type: beacon.EventInView, At: rt0, Meta: beacon.Meta{Format: "banner"}},
		{ImpressionID: "i1", CampaignID: "camp-a", Source: beacon.SourceQTag, Type: beacon.EventOutOfView, At: rt0.Add(2 * time.Second), Meta: beacon.Meta{Format: "banner"}},
		{ImpressionID: "i2", CampaignID: "camp-a", Type: beacon.EventServed, At: rt0, Meta: beacon.Meta{Format: "banner"}},
		{ImpressionID: "i2", CampaignID: "camp-a", Source: beacon.SourceQTag, Type: beacon.EventLoaded, At: rt0, Meta: beacon.Meta{Format: "banner"}},
		{ImpressionID: "i3", CampaignID: "camp-a", Type: beacon.EventServed, At: rt0, Meta: beacon.Meta{Format: "banner"}},
	}
	for _, e := range events {
		if err := store.Submit(e); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	return a
}

func get(t *testing.T, h http.Handler, url string) *httptest.ResponseRecorder {
	t.Helper()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", url, nil))
	return rr
}

func TestHandlerJSON(t *testing.T) {
	h := Handler(reportAgg(t), func() time.Time { return rt0 })
	rr := get(t, h, "/report")
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d, body = %s", rr.Code, rr.Body)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type = %q", ct)
	}
	var resp ViewabilityReport
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !resp.GeneratedAt.Equal(rt0) {
		t.Errorf("generated_at = %v", resp.GeneratedAt)
	}
	if resp.OpenImpressions != 3 || resp.Evicted != 0 {
		t.Errorf("open=%d evicted=%d", resp.OpenImpressions, resp.Evicted)
	}
	if len(resp.Campaigns.Rows) != 1 {
		t.Fatalf("rows = %+v", resp.Campaigns.Rows)
	}
	r := resp.Campaigns.Rows[0]
	if r.CampaignID != "camp-a" || r.Format != "banner" || r.Impressions != 3 || r.Served != 3 {
		t.Fatalf("row = %+v", r)
	}
	q := r.Sources["qtag"]
	if q.Measured != 2 || q.Viewed != 1 || q.NotViewed != 1 || q.NotMeasured != 1 {
		t.Fatalf("qtag = %+v", q)
	}
	if len(resp.Windows) == 0 {
		t.Error("windows missing from default JSON")
	}
	if len(resp.Campaigns.Dwell) != 1 || resp.Campaigns.Dwell[0].Dwell.SumNs != int64(2*time.Second) {
		t.Errorf("dwell = %+v", resp.Campaigns.Dwell)
	}

	// ?windows=0 strips the rollups but nothing else.
	var lean ViewabilityReport
	if err := json.Unmarshal(get(t, h, "/report?windows=0").Body.Bytes(), &lean); err != nil {
		t.Fatalf("decode lean: %v", err)
	}
	if len(lean.Windows) != 0 {
		t.Errorf("windows=0 still returned %d windows", len(lean.Windows))
	}
	if len(lean.Campaigns.Rows) != 1 {
		t.Errorf("windows=0 dropped campaign rows")
	}
}

func TestHandlerPrometheus(t *testing.T) {
	h := Handler(reportAgg(t), nil)
	rr := get(t, h, "/report?format=prom")
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type = %q", ct)
	}
	body := rr.Body.String()
	for _, want := range []string{
		`qtag_report_impressions{campaign="camp-a",format="banner"} 3`,
		`qtag_report_served{campaign="camp-a",format="banner"} 3`,
		`qtag_report_measured{campaign="camp-a",format="banner",source="qtag"} 2`,
		`qtag_report_viewed{campaign="camp-a",format="banner",source="qtag"} 1`,
		`qtag_report_not_viewed{campaign="camp-a",format="banner",source="qtag"} 1`,
		`qtag_report_not_measured{campaign="camp-a",format="banner",source="qtag"} 1`,
		`qtag_report_not_measured{campaign="camp-a",format="banner",source="commercial"} 3`,
		`qtag_report_viewability_rate{campaign="camp-a",format="banner",source="qtag"} 0.5`,
		`qtag_report_dwell_seconds_sum{campaign="camp-a",source="qtag"} 2`,
		`qtag_report_dwell_seconds_count{campaign="camp-a",source="qtag"} 1`,
		"# TYPE qtag_report_dwell_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q\n%s", want, body)
		}
	}
	// Histogram buckets must be cumulative and end at +Inf == count.
	if !strings.Contains(body, `qtag_report_dwell_seconds_bucket{campaign="camp-a",source="qtag",le="+Inf"} 1`) {
		t.Errorf("missing +Inf bucket:\n%s", body)
	}
}

func TestHandlerBadFormat(t *testing.T) {
	rr := get(t, Handler(reportAgg(t), nil), "/report?format=xml")
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("status = %d", rr.Code)
	}
	var e map[string]string
	if err := json.Unmarshal(rr.Body.Bytes(), &e); err != nil || e["error"] == "" {
		t.Fatalf("error body = %s (%v)", rr.Body, err)
	}
}

func TestPrometheusEscaping(t *testing.T) {
	if got := labelSet("campaign", "a\"b\\c\nd"); got != `{campaign="a\"b\\c\nd"}` {
		t.Fatalf("labelSet = %s", got)
	}
}

func TestTextReport(t *testing.T) {
	out := Text(reportAgg(t).Snapshot())
	for _, want := range []string{"camp-a", "banner", "Viewability", "50.0%", "in-view dwell", "p50"} {
		if !strings.Contains(out, want) {
			t.Errorf("text report missing %q:\n%s", want, out)
		}
	}
}

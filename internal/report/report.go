// Package report renders the paper's tables and figure series as plain
// text for the cmd/ tools, EXPERIMENTS.md and test logs.
package report

import (
	"fmt"
	"strings"
)

// Table renders rows under headers with column-aligned plain-text
// formatting. Rows shorter than the header are padded with empty cells.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len([]rune(h))
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len([]rune(cell)) > widths[i] {
				widths[i] = len([]rune(cell))
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, w := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			sb.WriteString(pad(cell, w))
			if i < len(widths)-1 {
				sb.WriteString("  ")
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return sb.String()
}

func pad(s string, w int) string {
	n := w - len([]rune(s))
	if n <= 0 {
		return s
	}
	return s + strings.Repeat(" ", n)
}

// Bar renders one labelled horizontal bar scaled to max over width
// characters, with the numeric value appended — used for the Figure 3
// style comparisons.
func Bar(label string, value, max float64, width int) string {
	if width <= 0 {
		width = 40
	}
	frac := 0.0
	if max > 0 {
		frac = value / max
	}
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac*float64(width) + 0.5)
	return fmt.Sprintf("%-24s %s%s %6.1f%%",
		label, strings.Repeat("█", n), strings.Repeat("░", width-n), value*100)
}

// Percent formats a fraction as a percentage with one decimal.
func Percent(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// Series renders an x→y series as aligned "x  y" lines with a title —
// used for the Figure 2 error curves.
func Series(title string, xs []int, ys []float64, yFmt func(float64) string) string {
	if yFmt == nil {
		yFmt = func(v float64) string { return fmt.Sprintf("%.4f", v) }
	}
	var sb strings.Builder
	sb.WriteString(title)
	sb.WriteByte('\n')
	for i := range xs {
		fmt.Fprintf(&sb, "  %4d  %s\n", xs[i], yFmt(ys[i]))
	}
	return sb.String()
}

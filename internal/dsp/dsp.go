// Package dsp implements the buy-side platform that runs ad campaigns —
// the role Sonata (TAPTAP Digital's DSP) plays in the paper's §5
// deployment. It holds campaign configurations, answers exchange auctions
// with bids, assigns impression identities, and attaches the measurement
// tags (Q-Tag and/or the commercial verifier) each campaign is
// instrumented with.
package dsp

import (
	"fmt"

	"qtag/internal/adserve"
	"qtag/internal/adtag"
	"qtag/internal/beacon"
	"qtag/internal/dom"
	"qtag/internal/viewability"
)

// Campaign is one advertiser campaign configured in the DSP.
type Campaign struct {
	// ID identifies the campaign in all beacons and reports.
	ID string
	// Name is the human-readable campaign name.
	Name string
	// Sector is the advertiser's vertical (Food & Drink, Personal
	// Finance, ... — §5 lists the diversity of the production dataset).
	Sector string
	// Country is the campaign's geographic target; a bid is only placed
	// for requests whose country matches (empty matches everything).
	Country string
	// Creative is the ad to deliver.
	Creative adserve.Creative
	// BidCPM is the campaign's bid price per thousand impressions.
	BidCPM float64
	// Tags are the measurement tags the DSP deploys with the creative.
	Tags []adtag.Tag
	// MaxImpressions caps delivery (0 = unlimited).
	MaxImpressions int
	// BudgetUSD caps total spend (0 = unlimited); the DSP stops bidding
	// for a campaign whose spend at auction clearing prices reaches it.
	BudgetUSD float64

	served int
	spend  float64
}

// Served returns the number of impressions the DSP has assigned to this
// campaign so far.
func (c *Campaign) Served() int { return c.served }

// SpendUSD returns the campaign's accumulated spend at auction clearing
// prices.
func (c *Campaign) SpendUSD() float64 { return c.spend }

// DSP is a demand-side platform participating in exchange auctions. It
// implements adserve.Bidder.
type DSP struct {
	name      string
	origin    dom.Origin
	campaigns []*Campaign
	rr        int // round-robin cursor over eligible campaigns
	nextImp   int
}

// New creates a DSP; its delivery iframes use origin
// https://<name>.example.
func New(name string) *DSP {
	return &DSP{name: name, origin: dom.Origin("https://" + name + ".example")}
}

// Name implements adserve.Bidder.
func (d *DSP) Name() string { return d.name }

// Origin returns the DSP's iframe origin.
func (d *DSP) Origin() dom.Origin { return d.origin }

// AddCampaign registers a campaign. It panics on duplicate campaign ids —
// that would corrupt all downstream aggregation.
func (d *DSP) AddCampaign(c *Campaign) {
	for _, existing := range d.campaigns {
		if existing.ID == c.ID {
			panic(fmt.Sprintf("dsp: duplicate campaign id %q", c.ID))
		}
	}
	d.campaigns = append(d.campaigns, c)
}

// Campaigns returns the registered campaigns in registration order.
func (d *DSP) Campaigns() []*Campaign { return d.campaigns }

// Campaign returns the campaign with the given id, or nil.
func (d *DSP) Campaign(id string) *Campaign {
	for _, c := range d.campaigns {
		if c.ID == id {
			return c
		}
	}
	return nil
}

// Bid implements adserve.Bidder: it selects the next eligible campaign
// (country targeting + pacing cap) round-robin and returns its bid with a
// fresh impression identity and the campaign's measurement tags attached.
func (d *DSP) Bid(req *adserve.SlotRequest) (adserve.Bid, bool) {
	n := len(d.campaigns)
	if n == 0 {
		return adserve.Bid{}, false
	}
	for probe := 0; probe < n; probe++ {
		c := d.campaigns[(d.rr+probe)%n]
		if !c.eligible(req) {
			continue
		}
		d.rr = (d.rr + probe + 1) % n
		c.served++
		d.nextImp++
		format := viewability.ClassifySize(c.Creative.Size, c.Creative.Video)
		imp := adtag.Impression{
			ID:         fmt.Sprintf("%s-%s-%08d", d.name, c.ID, d.nextImp),
			CampaignID: c.ID,
			Format:     format,
			Meta: beacon.Meta{
				AdSize:  c.Creative.Size.String(),
				Format:  format.String(),
				Country: c.Country,
			},
		}
		return adserve.Bid{
			PriceCPM:   c.BidCPM,
			Creative:   c.Creative,
			Origin:     d.origin,
			Impression: imp,
			Tags:       c.Tags,
		}, true
	}
	return adserve.Bid{}, false
}

// NotifyWin implements adserve.WinNotifier: it books the clearing price
// against the winning campaign's budget.
func (d *DSP) NotifyWin(imp adtag.Impression, clearingCPM float64) {
	if c := d.Campaign(imp.CampaignID); c != nil {
		c.spend += clearingCPM / 1000
	}
}

func (c *Campaign) eligible(req *adserve.SlotRequest) bool {
	if c.MaxImpressions > 0 && c.served >= c.MaxImpressions {
		return false
	}
	if c.BudgetUSD > 0 && c.spend >= c.BudgetUSD {
		return false
	}
	if c.Country != "" && req.Meta.Country != "" && c.Country != req.Meta.Country {
		return false
	}
	return true
}

package dsp

import (
	"strings"
	"testing"

	"qtag/internal/adserve"
	"qtag/internal/adtag"
	"qtag/internal/beacon"
	"qtag/internal/geom"
	"qtag/internal/qtag"
)

func banner() adserve.Creative {
	return adserve.Creative{ID: "cr-1", Size: geom.Size{W: 300, H: 250}}
}

func TestAddCampaignDuplicatePanics(t *testing.T) {
	d := New("sonata")
	d.AddCampaign(&Campaign{ID: "c1", Creative: banner(), BidCPM: 1})
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate id")
		}
	}()
	d.AddCampaign(&Campaign{ID: "c1", Creative: banner(), BidCPM: 1})
}

func TestBidRoundRobin(t *testing.T) {
	d := New("sonata")
	for _, id := range []string{"c1", "c2", "c3"} {
		d.AddCampaign(&Campaign{ID: id, Creative: banner(), BidCPM: 1})
	}
	var order []string
	for i := 0; i < 6; i++ {
		bid, ok := d.Bid(&adserve.SlotRequest{})
		if !ok {
			t.Fatal("bid expected")
		}
		order = append(order, bid.Impression.CampaignID)
	}
	want := "c1 c2 c3 c1 c2 c3"
	if got := strings.Join(order, " "); got != want {
		t.Errorf("rotation = %q, want %q", got, want)
	}
	if d.Campaign("c1").Served() != 2 {
		t.Errorf("c1 served = %d", d.Campaign("c1").Served())
	}
}

func TestBidCountryTargeting(t *testing.T) {
	d := New("sonata")
	d.AddCampaign(&Campaign{ID: "us", Country: "US", Creative: banner(), BidCPM: 1})
	d.AddCampaign(&Campaign{ID: "mx", Country: "MX", Creative: banner(), BidCPM: 1})
	for i := 0; i < 3; i++ {
		bid, ok := d.Bid(&adserve.SlotRequest{Meta: beacon.Meta{Country: "MX"}})
		if !ok || bid.Impression.CampaignID != "mx" {
			t.Fatalf("request %d matched %v", i, bid.Impression.CampaignID)
		}
	}
	// No campaign matches an untargeted country.
	if _, ok := d.Bid(&adserve.SlotRequest{Meta: beacon.Meta{Country: "JP"}}); ok {
		t.Error("JP request should not match")
	}
}

func TestBidPacingCap(t *testing.T) {
	d := New("sonata")
	d.AddCampaign(&Campaign{ID: "capped", Creative: banner(), BidCPM: 1, MaxImpressions: 2})
	for i := 0; i < 2; i++ {
		if _, ok := d.Bid(&adserve.SlotRequest{}); !ok {
			t.Fatal("bid expected under cap")
		}
	}
	if _, ok := d.Bid(&adserve.SlotRequest{}); ok {
		t.Error("bid beyond the pacing cap")
	}
}

func TestBidImpressionIdentity(t *testing.T) {
	d := New("sonata")
	d.AddCampaign(&Campaign{
		ID: "c9", Country: "ES",
		Creative: adserve.Creative{ID: "v", Size: geom.Size{W: 640, H: 360}, Video: true},
		BidCPM:   2,
		Tags:     []adtag.Tag{qtag.New(qtag.Config{})},
	})
	bid, ok := d.Bid(&adserve.SlotRequest{Meta: beacon.Meta{Country: "ES"}})
	if !ok {
		t.Fatal("bid expected")
	}
	if bid.Impression.CampaignID != "c9" || bid.Impression.ID == "" {
		t.Errorf("impression identity = %+v", bid.Impression)
	}
	if bid.Impression.Format.String() != "video" {
		t.Errorf("format = %v", bid.Impression.Format)
	}
	if bid.Impression.Meta.AdSize != "640x360" || bid.Impression.Meta.Country != "ES" {
		t.Errorf("meta = %+v", bid.Impression.Meta)
	}
	if len(bid.Tags) != 1 || bid.Tags[0].Name() != "qtag" {
		t.Error("tags not attached")
	}
	// Unique ids across bids.
	bid2, _ := d.Bid(&adserve.SlotRequest{Meta: beacon.Meta{Country: "ES"}})
	if bid.Impression.ID == bid2.Impression.ID {
		t.Error("impression ids must be unique")
	}
}

func TestEmptyDSPPasses(t *testing.T) {
	d := New("sonata")
	if _, ok := d.Bid(&adserve.SlotRequest{}); ok {
		t.Error("empty DSP must pass")
	}
	if d.Name() != "sonata" || d.Origin() == "" {
		t.Error("accessors wrong")
	}
	if d.Campaign("missing") != nil || len(d.Campaigns()) != 0 {
		t.Error("campaign lookups wrong")
	}
}

func TestBudgetPacing(t *testing.T) {
	d := New("sonata")
	// $0.002 budget at $1 CPM clearing = 2 impressions.
	d.AddCampaign(&Campaign{ID: "budgeted", Creative: banner(), BidCPM: 1, BudgetUSD: 0.002})
	for i := 0; i < 2; i++ {
		bid, ok := d.Bid(&adserve.SlotRequest{})
		if !ok {
			t.Fatalf("bid %d expected under budget", i)
		}
		d.NotifyWin(bid.Impression, 1.0) // cleared at $1 CPM
	}
	if got := d.Campaign("budgeted").SpendUSD(); got != 0.002 {
		t.Errorf("spend = %v", got)
	}
	if _, ok := d.Bid(&adserve.SlotRequest{}); ok {
		t.Error("bid beyond exhausted budget")
	}
}

func TestNotifyWinUnknownCampaign(t *testing.T) {
	d := New("sonata")
	d.NotifyWin(adtag.Impression{CampaignID: "ghost"}, 5) // must not panic
}

func TestExchangeNotifiesWinner(t *testing.T) {
	d := New("sonata")
	d.AddCampaign(&Campaign{ID: "c", Creative: banner(), BidCPM: 2})
	x := adserve.NewExchange("openx")
	x.Register(d)
	out, err := x.RunAuction(&adserve.SlotRequest{})
	if err != nil {
		t.Fatal(err)
	}
	// Sole bidder pays its own bid; spend books automatically.
	if out.ClearingPriceCPM != 2 {
		t.Fatalf("clearing = %v", out.ClearingPriceCPM)
	}
	if got := d.Campaign("c").SpendUSD(); got != 0.002 {
		t.Errorf("auto-booked spend = %v", got)
	}
}

//go:build !linux

package admission

// platformStatfs has no binding off Linux; the watermark counts the
// probe error and holds LevelOK, i.e. disk watermarks quietly disable
// themselves rather than guessing.
func platformStatfs(dir string) (free, total int64, err error) {
	return 0, 0, ErrStatfsUnsupported
}

package admission

import (
	"testing"
	"time"
)

// fakeClock is a manual clock for deterministic limiter tests.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestLimiterDefaults(t *testing.T) {
	l := NewLimiter(LimiterConfig{})
	if got := l.Limit(); got != 16 {
		t.Fatalf("default initial limit = %v, want 16 (4×MinLimit)", got)
	}
	if !l.Acquire(1.0) {
		t.Fatal("fresh limiter refused the first request")
	}
	l.Release(time.Millisecond, true)
	if l.Inflight() != 0 {
		t.Fatalf("inflight = %d after release, want 0", l.Inflight())
	}
}

func TestLimiterAcquireRespectsFraction(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(LimiterConfig{MinLimit: 4, MaxLimit: 64, InitialLimit: 8, Now: clk.now})
	// Debug fraction 0.25 of limit 8 = 2 slots.
	if !l.Acquire(0.25) || !l.Acquire(0.25) {
		t.Fatal("debug class should get 2 of 8 slots")
	}
	if l.Acquire(0.25) {
		t.Fatal("third debug acquire should shed at fraction 0.25")
	}
	// Live still has headroom at the same instant.
	if !l.Acquire(1.0) {
		t.Fatal("live class starved while limit has headroom")
	}
}

func TestLimiterGradientDecreasesUnderLatencyInflation(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(LimiterConfig{MinLimit: 2, MaxLimit: 128, InitialLimit: 32, Now: clk.now})
	// Establish a fast baseline.
	for i := 0; i < 20; i++ {
		if !l.Acquire(1.0) {
			t.Fatalf("acquire %d refused at baseline", i)
		}
		l.Release(1*time.Millisecond, true)
	}
	base := l.Limit()
	// Latency inflates 20×: the gradient must cut the limit.
	for i := 0; i < 50; i++ {
		if !l.Acquire(1.0) {
			break // shedding is fine; keep feeding what's admitted
		}
		l.Release(20*time.Millisecond, true)
	}
	if got := l.Limit(); got >= base {
		t.Fatalf("limit %v did not decrease from %v under 20× latency", got, base)
	}
}

func TestLimiterAdditiveIncreaseWhenUtilized(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(LimiterConfig{MinLimit: 2, MaxLimit: 128, InitialLimit: 4, Now: clk.now})
	// Keep the limiter saturated with healthy latency: limit should grow.
	for i := 0; i < 100; i++ {
		var held int
		for l.Acquire(1.0) {
			held++
		}
		for j := 0; j < held; j++ {
			l.Release(time.Millisecond, true)
		}
	}
	if got := l.Limit(); got <= 4 {
		t.Fatalf("limit %v did not grow under healthy saturation", got)
	}
}

func TestLimiterFloorAndCeiling(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(LimiterConfig{MinLimit: 3, MaxLimit: 5, InitialLimit: 4, Now: clk.now})
	// Hammer with terrible latency: floor holds.
	l.Release(time.Microsecond, true) // fast baseline sample (no acquire needed for the math)
	for i := 0; i < 200; i++ {
		if l.Acquire(1.0) {
			l.Release(time.Second, true)
		}
	}
	if got := l.Limit(); got != 3 {
		t.Fatalf("limit = %v under sustained overload, want floor 3", got)
	}
	// Recover with fast latency while saturated: ceiling holds.
	for i := 0; i < 500; i++ {
		var held int
		for l.Acquire(1.0) {
			held++
		}
		for j := 0; j < held; j++ {
			l.Release(time.Microsecond, true)
		}
	}
	if got := l.Limit(); got > 5 {
		t.Fatalf("limit = %v, want ceiling 5", got)
	}
}

func TestLimiterMinRTTRebaselinesAfterWindow(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(LimiterConfig{MinLimit: 2, MaxLimit: 64, InitialLimit: 8,
		MinRTTWindow: time.Second, Now: clk.now})
	if l.Acquire(1.0) {
		l.Release(1*time.Millisecond, true)
	}
	if got := l.MinRTT(); got != 0.001 {
		t.Fatalf("minRTT = %v, want 0.001", got)
	}
	// The disk permanently slowed to 3ms. After the window expires the
	// baseline must drift upward (bounded at 2× per window) instead of
	// treating 3ms as overload forever.
	clk.advance(2 * time.Second)
	if l.Acquire(1.0) {
		l.Release(3*time.Millisecond, true)
	}
	if got := l.MinRTT(); got != 0.002 { // 2× the stale 1ms baseline
		t.Fatalf("rebaselined minRTT = %v, want 0.002 (doubling bound)", got)
	}
	clk.advance(2 * time.Second)
	if l.Acquire(1.0) {
		l.Release(3*time.Millisecond, true)
	}
	if got := l.MinRTT(); got != 0.003 { // next window reaches the true new floor
		t.Fatalf("rebaselined minRTT = %v, want 0.003", got)
	}
}

func TestLimiterErrorsDoNotTeachTheGradient(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(LimiterConfig{MinLimit: 2, MaxLimit: 64, InitialLimit: 8, Now: clk.now})
	if l.Acquire(1.0) {
		l.Release(time.Millisecond, true)
	}
	before := l.Limit()
	for i := 0; i < 50; i++ {
		if l.Acquire(1.0) {
			l.Release(5*time.Second, false) // observe=false: failed request
		}
	}
	if got := l.Limit(); got != before {
		t.Fatalf("limit moved %v→%v on unobserved (error) samples", before, got)
	}
}

package admission

import (
	"sync"
	"time"
)

// LimiterConfig tunes the gradient concurrency limiter. The zero value
// gets sane defaults from NewLimiter.
type LimiterConfig struct {
	// MinLimit is the floor the limit can never drop below; live
	// traffic always has at least this much concurrency. Default 4.
	MinLimit int
	// MaxLimit caps growth. Default 256.
	MaxLimit int
	// InitialLimit is the starting limit. Default 4×MinLimit,
	// clamped into [MinLimit, MaxLimit].
	InitialLimit int
	// Tolerance is how far the short-term latency EWMA may rise above
	// the moving-minimum baseline before the limiter treats the node as
	// past its knee and decreases multiplicatively. Default 2.0.
	Tolerance float64
	// Smoothing is the EWMA weight for new latency samples. Default 0.2.
	Smoothing float64
	// DecreaseFactor is the multiplicative backoff applied when the
	// gradient trips. Default 0.9.
	DecreaseFactor float64
	// MinRTTWindow bounds how long a stale minimum is trusted: once the
	// stored minimum is older than this, the next sample re-baselines it
	// (bounded to at most doubling) so a permanently slower disk does
	// not read as eternal overload. Default 10s.
	MinRTTWindow time.Duration
	// Now is the clock; defaults to time.Now. Injectable for tests.
	Now func() time.Time
}

func (c *LimiterConfig) fill() {
	if c.MinLimit <= 0 {
		c.MinLimit = 4
	}
	if c.MaxLimit <= 0 {
		c.MaxLimit = 256
	}
	if c.MaxLimit < c.MinLimit {
		c.MaxLimit = c.MinLimit
	}
	if c.InitialLimit <= 0 {
		c.InitialLimit = 4 * c.MinLimit
	}
	if c.InitialLimit < c.MinLimit {
		c.InitialLimit = c.MinLimit
	}
	if c.InitialLimit > c.MaxLimit {
		c.InitialLimit = c.MaxLimit
	}
	if c.Tolerance <= 1 {
		c.Tolerance = 2.0
	}
	if c.Smoothing <= 0 || c.Smoothing > 1 {
		c.Smoothing = 0.2
	}
	if c.DecreaseFactor <= 0 || c.DecreaseFactor >= 1 {
		c.DecreaseFactor = 0.9
	}
	if c.MinRTTWindow <= 0 {
		c.MinRTTWindow = 10 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// Limiter is a gradient/AIMD adaptive concurrency limiter in the spirit
// of Netflix's concurrency-limits and TCP Vegas: it compares a
// short-term EWMA of ingest latency against a decaying moving minimum
// (the no-queueing baseline). While the EWMA stays within Tolerance of
// the baseline, high utilization earns additive limit increases; once
// latency gradients past the knee, the limit decreases multiplicatively.
// Unlike a static backlog threshold, the knee is learned per machine.
type Limiter struct {
	cfg LimiterConfig

	mu       sync.Mutex
	limit    float64
	inflight int
	shortRTT float64 // EWMA of recent samples, seconds
	minRTT   float64 // moving-minimum baseline, seconds
	minSetAt time.Time
}

// NewLimiter builds a limiter; zero-valued config fields get defaults.
func NewLimiter(cfg LimiterConfig) *Limiter {
	cfg.fill()
	return &Limiter{cfg: cfg, limit: float64(cfg.InitialLimit)}
}

// Acquire tries to admit one request at the given limit fraction
// (Class.Fraction). It returns false — shed — when the class's share of
// the current limit is exhausted. Every true return must be paired with
// exactly one Release.
func (l *Limiter) Acquire(fraction float64) bool {
	if fraction <= 0 {
		fraction = 1
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	cap := l.limit * fraction
	if cap < 1 {
		cap = 1
	}
	if float64(l.inflight) >= cap {
		return false
	}
	l.inflight++
	return true
}

// Release returns an admission slot. When observe is true the request's
// latency feeds the gradient — callers pass observe only for successful
// live-class requests, so error latencies and deliberately-shed
// background classes never teach the limiter a false baseline.
func (l *Limiter) Release(latency time.Duration, observe bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.inflight > 0 {
		l.inflight--
	}
	if !observe || latency <= 0 {
		return
	}
	s := latency.Seconds()
	if l.shortRTT == 0 {
		l.shortRTT = s
	} else {
		l.shortRTT += l.cfg.Smoothing * (s - l.shortRTT)
	}
	now := l.cfg.Now()
	switch {
	case l.minRTT == 0 || s < l.minRTT:
		l.minRTT = s
		l.minSetAt = now
	case now.Sub(l.minSetAt) > l.cfg.MinRTTWindow:
		// The baseline has aged out: re-adopt from the current sample,
		// but never more than doubling per window, so a transient stall
		// can't instantly legitimize itself as the new normal.
		next := s
		if next > l.minRTT*2 {
			next = l.minRTT * 2
		}
		l.minRTT = next
		l.minSetAt = now
	}

	if l.shortRTT > l.minRTT*l.cfg.Tolerance {
		// Past the knee: multiplicative decrease.
		l.limit *= l.cfg.DecreaseFactor
		if l.limit < float64(l.cfg.MinLimit) {
			l.limit = float64(l.cfg.MinLimit)
		}
	} else if float64(l.inflight+1) >= l.limit*0.9 {
		// Healthy latency and the limit is actually being used:
		// additive increase to probe for headroom.
		l.limit++
		if l.limit > float64(l.cfg.MaxLimit) {
			l.limit = float64(l.cfg.MaxLimit)
		}
	}
}

// Limit is the current adaptive concurrency limit.
func (l *Limiter) Limit() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.limit
}

// Inflight is the number of currently admitted requests.
func (l *Limiter) Inflight() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inflight
}

// MinRTT exposes the current latency baseline in seconds (0 until the
// first observed sample).
func (l *Limiter) MinRTT() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.minRTT
}

// Package admission is the collection server's overload-control layer:
// an adaptive concurrency limiter driven by observed ingest latency, a
// priority-class scheme that sheds background work before fresh beacons,
// a degraded-mode state machine fed by resource watermarks (WAL disk
// space), and deadline propagation so the pipeline stops spending fsyncs
// and forwards on requests whose client has already given up.
//
// The layer replaces the static journal-backlog threshold as the primary
// overload signal: instead of a single tunable that is wrong on every
// other machine, the limiter learns the ingest path's achievable
// concurrency from the latency gradient (short-term EWMA vs. a moving
// minimum) and sheds — lowest priority class first — only when latency
// says the node is past its knee. The backlog guard survives as a hard
// backstop behind the limiter.
//
// Priority classes, highest first:
//
//	live      fresh beacons on POST/GET /v1/events — the reason the
//	          service exists; always gets the full concurrency limit
//	drain     hinted-handoff replays from peers (X-Qtag-Class: drain) —
//	          durable on the sender, so shedding them loses nothing
//	federate  GET /report fan-in and dashboards — partial reports degrade
//	          gracefully (the "degraded" field exists for this)
//	debug     GET /debug/* — always the first to go
//
// /healthz, /readyz, /metrics and the stats endpoints are never gated:
// operators and the failure detector need them exactly when the node is
// struggling.
package admission

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Class is a request's admission priority.
type Class int

// Classes in descending priority order. The integer order matters:
// metrics and shed accounting index by it.
const (
	ClassLive Class = iota
	ClassDrain
	ClassFederate
	ClassDebug
	numClasses
)

// String implements fmt.Stringer (the metric label values).
func (c Class) String() string {
	switch c {
	case ClassLive:
		return "live"
	case ClassDrain:
		return "drain"
	case ClassFederate:
		return "federate"
	case ClassDebug:
		return "debug"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Fraction is the share of the adaptive concurrency limit a class may
// use. Live traffic gets the whole limit; lower classes saturate — and
// therefore shed — progressively earlier as inflight load grows, which
// is what keeps a post-partition drain storm from starving fresh ingest.
func (c Class) Fraction() float64 {
	switch c {
	case ClassLive:
		return 1.0
	case ClassDrain:
		return 0.5
	case ClassFederate:
		return 0.35
	default:
		return 0.25
	}
}

// Wire headers.
const (
	// ClassHeader marks a request's admission class. Only "drain" is
	// meaningful on the wire today: hinted-handoff replays mark
	// themselves so the receiver can shed them before live beacons
	// (requests without the header default by path — see Classify).
	ClassHeader = "X-Qtag-Class"
	// BudgetHeader carries the client's remaining per-request budget in
	// integer milliseconds. Relative, not absolute: no clock agreement
	// between client and server is assumed (the same reason gRPC and
	// W3C use relative timeouts). The server rejects requests whose
	// budget is already spent before any WAL append, and cluster
	// forwards re-stamp the decremented remainder.
	BudgetHeader = "X-Qtag-Budget-Ms"
)

// ParseClass maps a header value onto a class; unknown values (and the
// empty string) are live — a request that does not identify itself gets
// the default, highest-priority treatment its path implies.
func ParseClass(s string) Class {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "drain":
		return ClassDrain
	case "federate":
		return ClassFederate
	case "debug":
		return ClassDebug
	default:
		return ClassLive
	}
}

// Classify maps a request onto its admission class and reports whether
// the request is gated at all. Health, readiness, metrics and the stats
// endpoints are never gated.
func Classify(r *http.Request) (Class, bool) {
	switch {
	case r.URL.Path == "/v1/events":
		if ParseClass(r.Header.Get(ClassHeader)) == ClassDrain {
			return ClassDrain, true
		}
		return ClassLive, true
	case r.URL.Path == "/report":
		return ClassFederate, true
	case strings.HasPrefix(r.URL.Path, "/debug/"):
		return ClassDebug, true
	default:
		return ClassLive, false
	}
}

// ParseBudget reads the remaining-budget header. ok reports whether the
// header was present; err is non-nil when it was present but malformed.
// A zero or negative budget is valid input and means the request is
// already doomed.
func ParseBudget(h http.Header) (budget time.Duration, ok bool, err error) {
	raw := h.Get(BudgetHeader)
	if raw == "" {
		return 0, false, nil
	}
	ms, perr := strconv.ParseInt(strings.TrimSpace(raw), 10, 64)
	if perr != nil {
		return 0, true, fmt.Errorf("admission: bad %s %q: want integer milliseconds", BudgetHeader, raw)
	}
	return time.Duration(ms) * time.Millisecond, true, nil
}

// FormatBudget renders a budget for the wire, rounding down to whole
// milliseconds (a sub-millisecond remainder is as good as spent).
func FormatBudget(d time.Duration) string {
	return strconv.FormatInt(int64(d/time.Millisecond), 10)
}

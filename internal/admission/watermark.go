package admission

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"qtag/internal/obs"
)

// Level is the WAL-directory free-space degradation level. Ordered:
// each level implies everything the previous one did.
type Level int32

const (
	// LevelOK — plenty of disk; no degradation.
	LevelOK Level = iota
	// LevelLow — free space under the low watermark: relax fsync to the
	// batch policy (fewer barriers, bounded loss window) to slow the
	// burn and shrink write amplification.
	LevelLow
	// LevelShed — free space under the shed watermark: stop admitting
	// new ingest (the controller browns the node out) while drains and
	// compaction get a chance to reclaim space.
	LevelShed
	// LevelReadOnly — critically low: refuse every write class; only
	// reads, health and metrics survive. The last stop before ENOSPC
	// corrupts the tail of the journal.
	LevelReadOnly
)

// String implements fmt.Stringer (metric label values).
func (l Level) String() string {
	switch l {
	case LevelOK:
		return "ok"
	case LevelLow:
		return "low"
	case LevelShed:
		return "shed"
	case LevelReadOnly:
		return "read-only"
	default:
		return fmt.Sprintf("level(%d)", int32(l))
	}
}

// ErrStatfsUnsupported is returned by the platform prober on systems
// without a statfs syscall binding; the watermark then stays at LevelOK.
var ErrStatfsUnsupported = errors.New("admission: statfs unsupported on this platform")

// WatermarkConfig configures the free-space monitor.
type WatermarkConfig struct {
	// Dir is the directory whose filesystem is monitored (the WAL dir).
	Dir string
	// LowBytes, ShedBytes, ReadOnlyBytes are free-space thresholds for
	// the corresponding levels; a zero threshold disables that level.
	// Must be ordered ReadOnlyBytes ≤ ShedBytes ≤ LowBytes where set.
	LowBytes      int64
	ShedBytes     int64
	ReadOnlyBytes int64
	// CheckEvery is the polling period for Start. Default 2s.
	CheckEvery time.Duration
	// Statfs probes free/total bytes for a directory; defaults to the
	// platform implementation. Injectable for tests and fault drills.
	Statfs func(dir string) (free, total int64, err error)
	// OnChange, when set, fires on every level transition (from the
	// polling goroutine or whichever caller ran Tick). Used to flip the
	// WAL fsync policy on LevelLow and restore it on the way back.
	OnChange func(from, to Level)
}

// Watermark polls filesystem free space and maps it onto a degradation
// Level. Probe errors are counted and keep the previous level — a
// flapping statfs must not bounce the node in and out of read-only.
type Watermark struct {
	cfg WatermarkConfig

	level     atomic.Int32
	freeBytes atomic.Int64
	total     atomic.Int64
	checkErrs atomic.Int64

	mu       sync.Mutex // serializes Tick's read-compare-swap + OnChange
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewWatermark validates the thresholds and returns a monitor at
// LevelOK. Call Tick for a one-shot probe or Start for background
// polling.
func NewWatermark(cfg WatermarkConfig) (*Watermark, error) {
	if cfg.Dir == "" {
		return nil, errors.New("admission: watermark needs a directory")
	}
	if cfg.CheckEvery <= 0 {
		cfg.CheckEvery = 2 * time.Second
	}
	if cfg.Statfs == nil {
		cfg.Statfs = platformStatfs
	}
	// Where multiple thresholds are set they must nest, or some levels
	// would be unreachable.
	if cfg.ShedBytes > 0 && cfg.LowBytes > 0 && cfg.ShedBytes > cfg.LowBytes {
		return nil, fmt.Errorf("admission: shed watermark %d above low watermark %d", cfg.ShedBytes, cfg.LowBytes)
	}
	if cfg.ReadOnlyBytes > 0 && cfg.ShedBytes > 0 && cfg.ReadOnlyBytes > cfg.ShedBytes {
		return nil, fmt.Errorf("admission: read-only watermark %d above shed watermark %d", cfg.ReadOnlyBytes, cfg.ShedBytes)
	}
	if cfg.ReadOnlyBytes > 0 && cfg.LowBytes > 0 && cfg.ReadOnlyBytes > cfg.LowBytes {
		return nil, fmt.Errorf("admission: read-only watermark %d above low watermark %d", cfg.ReadOnlyBytes, cfg.LowBytes)
	}
	return &Watermark{
		cfg:  cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}, nil
}

// Tick probes free space once and returns the (possibly updated) level.
func (w *Watermark) Tick() Level {
	w.mu.Lock()
	defer w.mu.Unlock()
	free, total, err := w.cfg.Statfs(w.cfg.Dir)
	if err != nil {
		w.checkErrs.Add(1)
		return Level(w.level.Load())
	}
	w.freeBytes.Store(free)
	w.total.Store(total)
	next := LevelOK
	switch {
	case w.cfg.ReadOnlyBytes > 0 && free <= w.cfg.ReadOnlyBytes:
		next = LevelReadOnly
	case w.cfg.ShedBytes > 0 && free <= w.cfg.ShedBytes:
		next = LevelShed
	case w.cfg.LowBytes > 0 && free <= w.cfg.LowBytes:
		next = LevelLow
	}
	prev := Level(w.level.Swap(int32(next)))
	if prev != next && w.cfg.OnChange != nil {
		w.cfg.OnChange(prev, next)
	}
	return next
}

// Start launches the background poller. Close stops it.
func (w *Watermark) Start() {
	go func() {
		defer close(w.done)
		t := time.NewTicker(w.cfg.CheckEvery)
		defer t.Stop()
		w.Tick()
		for {
			select {
			case <-w.stop:
				return
			case <-t.C:
				w.Tick()
			}
		}
	}()
}

// Close stops the poller started by Start (safe to call without Start
// having run; safe to call twice).
func (w *Watermark) Close() {
	w.stopOnce.Do(func() { close(w.stop) })
	select {
	case <-w.done:
	default:
		// Start was never called; done will never close. Don't block.
		select {
		case <-w.done:
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// Level is the most recently probed degradation level.
func (w *Watermark) Level() Level { return Level(w.level.Load()) }

// FreeBytes is the most recently probed free-space figure.
func (w *Watermark) FreeBytes() int64 { return w.freeBytes.Load() }

// CheckErrors counts statfs probe failures.
func (w *Watermark) CheckErrors() int64 { return w.checkErrs.Load() }

// RegisterMetrics exposes the watermark state as qtag_watermark_*.
func (w *Watermark) RegisterMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	r.GaugeFunc("qtag_watermark_free_bytes", "Free bytes on the WAL filesystem at the last probe.",
		func() float64 { return float64(w.freeBytes.Load()) })
	r.GaugeFunc("qtag_watermark_total_bytes", "Total bytes on the WAL filesystem at the last probe.",
		func() float64 { return float64(w.total.Load()) })
	r.CounterFunc("qtag_watermark_check_errors_total", "Free-space probes that failed (level held).",
		w.checkErrs.Load)
	for _, lvl := range []Level{LevelOK, LevelLow, LevelShed, LevelReadOnly} {
		lvl := lvl
		r.GaugeFunc("qtag_watermark_level", "Current free-space degradation level (1 on the active level).",
			func() float64 {
				if Level(w.level.Load()) == lvl {
					return 1
				}
				return 0
			}, obs.Label{Name: "level", Value: lvl.String()})
	}
}

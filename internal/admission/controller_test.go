package admission

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"qtag/internal/obs"
)

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
	})
}

func doReq(t *testing.T, h http.Handler, method, path string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestClassify(t *testing.T) {
	cases := []struct {
		path  string
		hdr   string
		class Class
		gated bool
	}{
		{"/v1/events", "", ClassLive, true},
		{"/v1/events", "drain", ClassDrain, true},
		{"/v1/events", "DRAIN", ClassDrain, true},
		{"/v1/events", "bogus", ClassLive, true},
		{"/report", "", ClassFederate, true},
		{"/debug/traces", "", ClassDebug, true},
		{"/debug/pprof/heap", "", ClassDebug, true},
		{"/healthz", "", ClassLive, false},
		{"/readyz", "", ClassLive, false},
		{"/metrics", "", ClassLive, false},
		{"/v1/stats", "", ClassLive, false},
	}
	for _, c := range cases {
		req := httptest.NewRequest("GET", c.path, nil)
		if c.hdr != "" {
			req.Header.Set(ClassHeader, c.hdr)
		}
		class, gated := Classify(req)
		if class != c.class || gated != c.gated {
			t.Fatalf("Classify(%s, hdr=%q) = (%v,%v), want (%v,%v)",
				c.path, c.hdr, class, gated, c.class, c.gated)
		}
	}
}

func TestBudgetHeaderRoundTrip(t *testing.T) {
	h := http.Header{}
	h.Set(BudgetHeader, FormatBudget(1500*time.Millisecond))
	d, ok, err := ParseBudget(h)
	if err != nil || !ok || d != 1500*time.Millisecond {
		t.Fatalf("round trip = (%v,%v,%v)", d, ok, err)
	}
	h.Set(BudgetHeader, "not-a-number")
	if _, ok, err := ParseBudget(h); !ok || err == nil {
		t.Fatal("malformed budget must report present+error")
	}
	if _, ok, err := ParseBudget(http.Header{}); ok || err != nil {
		t.Fatal("absent budget must be (false, nil)")
	}
	h.Set(BudgetHeader, "-5")
	d, ok, err = ParseBudget(h)
	if err != nil || !ok || d >= 0 {
		t.Fatalf("negative budget = (%v,%v,%v), want valid negative duration", d, ok, err)
	}
}

func TestControllerUngatedPathsBypass(t *testing.T) {
	// A limiter with zero capacity headroom: everything gated sheds.
	c := NewController(Config{Limiter: LimiterConfig{MinLimit: 1, MaxLimit: 1, InitialLimit: 1}})
	for c.limiter.Acquire(1.0) {
	} // exhaust
	h := c.Middleware(okHandler())
	if rec := doReq(t, h, "GET", "/healthz", nil); rec.Code != http.StatusAccepted {
		t.Fatalf("/healthz = %d, want pass-through 202", rec.Code)
	}
	if rec := doReq(t, h, "POST", "/v1/events", nil); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/v1/events = %d, want 503 when saturated", rec.Code)
	}
	if c.Shed(ClassLive) != 1 {
		t.Fatalf("Shed(live) = %d, want 1", c.Shed(ClassLive))
	}
}

func TestControllerShedsLowPriorityFirst(t *testing.T) {
	clk := newFakeClock()
	c := NewController(Config{
		Limiter: LimiterConfig{MinLimit: 8, MaxLimit: 8, InitialLimit: 8, Now: clk.now},
		Now:     clk.now,
	})
	// Occupy half the limit (4 of 8) with live work.
	for i := 0; i < 4; i++ {
		if !c.limiter.Acquire(1.0) {
			t.Fatal("setup acquire failed")
		}
	}
	h := c.Middleware(okHandler())
	// Drain fraction 0.5 → cap 4, already full → shed.
	if rec := doReq(t, h, "POST", "/v1/events", map[string]string{ClassHeader: "drain"}); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("drain = %d, want 503 at half occupancy", rec.Code)
	}
	if rec := doReq(t, h, "GET", "/report", nil); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("federate = %d, want 503 at half occupancy", rec.Code)
	}
	if rec := doReq(t, h, "GET", "/debug/traces", nil); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("debug = %d, want 503 at half occupancy", rec.Code)
	}
	// Live still admitted at the same occupancy.
	if rec := doReq(t, h, "POST", "/v1/events", nil); rec.Code != http.StatusAccepted {
		t.Fatalf("live = %d, want 202 while low classes shed", rec.Code)
	}
	if c.Shed(ClassDrain) != 1 || c.Shed(ClassFederate) != 1 || c.Shed(ClassDebug) != 1 || c.Shed(ClassLive) != 0 {
		t.Fatalf("shed counts live=%d drain=%d federate=%d debug=%d",
			c.Shed(ClassLive), c.Shed(ClassDrain), c.Shed(ClassFederate), c.Shed(ClassDebug))
	}
	if c.Admitted(ClassLive) != 1 {
		t.Fatalf("Admitted(live) = %d, want 1", c.Admitted(ClassLive))
	}
	// A shed response carries Retry-After and a JSON error body.
	rec := doReq(t, h, "GET", "/debug/traces", nil)
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	var body map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body["error"] == "" {
		t.Fatalf("shed body %q not a JSON error", rec.Body.String())
	}
}

func TestControllerBackstopShedsIngestOnly(t *testing.T) {
	clk := newFakeClock()
	var tripped atomic.Bool
	tripped.Store(true)
	c := NewController(Config{
		Limiter:  LimiterConfig{MinLimit: 8, MaxLimit: 8, InitialLimit: 8, Now: clk.now},
		Backstop: tripped.Load,
		Now:      clk.now,
	})
	h := c.Middleware(okHandler())
	if rec := doReq(t, h, "POST", "/v1/events", nil); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("live = %d, want 503 under backstop", rec.Code)
	}
	if rec := doReq(t, h, "POST", "/v1/events", map[string]string{ClassHeader: "drain"}); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("drain = %d, want 503 under backstop", rec.Code)
	}
	// Reads are not the backlog's problem; they still ride the limiter.
	if rec := doReq(t, h, "GET", "/report", nil); rec.Code != http.StatusAccepted {
		t.Fatalf("federate = %d, want 202 under backstop", rec.Code)
	}
	if c.Mode() != ModeBrownedOut {
		t.Fatalf("mode = %v, want browned-out while backstop trips", c.Mode())
	}
	if c.Ready() {
		t.Fatal("Ready() = true while browned out")
	}
}

func TestControllerModeMachineRecovers(t *testing.T) {
	clk := newFakeClock()
	var tripped atomic.Bool
	tripped.Store(true)
	c := NewController(Config{
		Limiter:      LimiterConfig{MinLimit: 8, MaxLimit: 8, InitialLimit: 8, Now: clk.now},
		Backstop:     tripped.Load,
		RecoveryHold: time.Second,
		Now:          clk.now,
	})
	if c.Mode() != ModeBrownedOut {
		t.Fatalf("mode = %v, want browned-out", c.Mode())
	}
	tripped.Store(false)
	// Pressure memory keeps it browned out inside the hold window…
	clk.advance(500 * time.Millisecond)
	if c.Mode() != ModeBrownedOut {
		t.Fatalf("mode = %v, want browned-out during pressure memory", c.Mode())
	}
	// …then recovering (ready again), then healthy after the hold.
	clk.advance(600 * time.Millisecond)
	if c.Mode() != ModeRecovering {
		t.Fatalf("mode = %v, want recovering", c.Mode())
	}
	if !c.Ready() {
		t.Fatal("Ready() = false while recovering; recovering nodes serve")
	}
	clk.advance(1100 * time.Millisecond)
	if c.Mode() != ModeHealthy {
		t.Fatalf("mode = %v, want healthy after hold", c.Mode())
	}
}

func TestControllerReadOnlyRefusesWritesAllowsReads(t *testing.T) {
	clk := newFakeClock()
	fs := &fakeFS{free: 10, total: 10000}
	w, err := NewWatermark(WatermarkConfig{
		Dir: "/wal", LowBytes: 1000, ShedBytes: 500, ReadOnlyBytes: 100, Statfs: fs.statfs,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Tick()
	c := NewController(Config{
		Limiter:      LimiterConfig{MinLimit: 8, MaxLimit: 8, InitialLimit: 8, Now: clk.now},
		Watermark:    w,
		RecoveryHold: time.Second,
		Now:          clk.now,
	})
	h := c.Middleware(okHandler())
	if rec := doReq(t, h, "POST", "/v1/events", nil); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("live = %d, want 503 in read-only", rec.Code)
	}
	if rec := doReq(t, h, "POST", "/v1/events", map[string]string{ClassHeader: "drain"}); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("drain = %d, want 503 in read-only", rec.Code)
	}
	if rec := doReq(t, h, "GET", "/report", nil); rec.Code != http.StatusAccepted {
		t.Fatalf("report = %d, want reads admitted in read-only", rec.Code)
	}
	if c.Mode() != ModeReadOnly {
		t.Fatalf("mode = %v, want read-only", c.Mode())
	}
	if c.Ready() {
		t.Fatal("Ready() = true in read-only")
	}
	// Disk reclaimed: read-only exits through recovering to healthy.
	fs.free = 5000
	w.Tick()
	clk.advance(2 * time.Second)
	if c.Mode() != ModeRecovering {
		t.Fatalf("mode = %v, want recovering after reclaim", c.Mode())
	}
	clk.advance(2 * time.Second)
	if c.Mode() != ModeHealthy {
		t.Fatalf("mode = %v, want healthy", c.Mode())
	}
}

func TestControllerMetrics(t *testing.T) {
	clk := newFakeClock()
	c := NewController(Config{
		Limiter: LimiterConfig{MinLimit: 2, MaxLimit: 2, InitialLimit: 2, Now: clk.now},
		Now:     clk.now,
	})
	h := c.Middleware(okHandler())
	doReq(t, h, "POST", "/v1/events", nil)
	for c.limiter.Acquire(1.0) {
	}
	doReq(t, h, "POST", "/v1/events", nil) // shed
	reg := obs.NewRegistry()
	c.RegisterMetrics(reg)
	vals := reg.Values()
	if got := vals[`qtag_admission_admitted_total{class="live"}`]; got != 1 {
		t.Fatalf(`admitted{live} = %v, want 1`, got)
	}
	if got := vals[`qtag_admission_shed_total{class="live"}`]; got != 1 {
		t.Fatalf(`shed{live} = %v, want 1`, got)
	}
	if got := vals[`qtag_admission_limit`]; got != 2 {
		t.Fatalf("limit gauge = %v, want 2", got)
	}
	if got := vals[`qtag_admission_inflight`]; got != 2 {
		t.Fatalf("inflight gauge = %v, want 2", got)
	}
	if got := vals[`qtag_admission_mode{mode="browned-out"}`]; got != 1 {
		t.Fatalf(`mode{browned-out} = %v, want 1 right after a shed`, got)
	}
	if got := vals[`qtag_admission_mode{mode="healthy"}`]; got != 0 {
		t.Fatalf(`mode{healthy} = %v, want 0`, got)
	}
}

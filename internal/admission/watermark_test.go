package admission

import (
	"errors"
	"testing"

	"qtag/internal/obs"
)

// fakeFS is an injectable statfs with a settable free-byte figure.
type fakeFS struct {
	free  int64
	total int64
	err   error
}

func (f *fakeFS) statfs(string) (int64, int64, error) { return f.free, f.total, f.err }

func newTestWatermark(t *testing.T, fs *fakeFS, onChange func(from, to Level)) *Watermark {
	t.Helper()
	w, err := NewWatermark(WatermarkConfig{
		Dir:           "/wal",
		LowBytes:      1000,
		ShedBytes:     500,
		ReadOnlyBytes: 100,
		Statfs:        fs.statfs,
		OnChange:      onChange,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestWatermarkLevelsDescendAndRecover(t *testing.T) {
	fs := &fakeFS{free: 5000, total: 10000}
	var transitions []Level
	w := newTestWatermark(t, fs, func(from, to Level) { transitions = append(transitions, to) })

	steps := []struct {
		free int64
		want Level
	}{
		{5000, LevelOK},
		{900, LevelLow},
		{400, LevelShed},
		{50, LevelReadOnly},
		{400, LevelShed}, // reclaim climbs back out
		{5000, LevelOK},
	}
	for _, s := range steps {
		fs.free = s.free
		if got := w.Tick(); got != s.want {
			t.Fatalf("free=%d: level = %v, want %v", s.free, got, s.want)
		}
		if w.Level() != s.want {
			t.Fatalf("free=%d: Level() = %v, want %v", s.free, w.Level(), s.want)
		}
	}
	want := []Level{LevelLow, LevelShed, LevelReadOnly, LevelShed, LevelOK}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transition %d = %v, want %v", i, transitions[i], want[i])
		}
	}
	if w.FreeBytes() != 5000 {
		t.Fatalf("FreeBytes = %d, want 5000", w.FreeBytes())
	}
}

func TestWatermarkProbeErrorHoldsLevel(t *testing.T) {
	fs := &fakeFS{free: 400, total: 10000}
	w := newTestWatermark(t, fs, nil)
	if got := w.Tick(); got != LevelShed {
		t.Fatalf("level = %v, want shed", got)
	}
	fs.err = errors.New("statfs: io error")
	if got := w.Tick(); got != LevelShed {
		t.Fatalf("level after probe error = %v, want held at shed", got)
	}
	if w.CheckErrors() != 1 {
		t.Fatalf("CheckErrors = %d, want 1", w.CheckErrors())
	}
}

func TestWatermarkRejectsInvertedThresholds(t *testing.T) {
	bad := []WatermarkConfig{
		{Dir: "/wal", LowBytes: 100, ShedBytes: 500},
		{Dir: "/wal", ShedBytes: 100, ReadOnlyBytes: 500},
		{Dir: "/wal", LowBytes: 100, ReadOnlyBytes: 500},
		{}, // no dir
	}
	for i, cfg := range bad {
		if _, err := NewWatermark(cfg); err == nil {
			t.Fatalf("config %d: want error, got nil", i)
		}
	}
}

func TestWatermarkZeroThresholdDisablesLevel(t *testing.T) {
	fs := &fakeFS{free: 1, total: 10000}
	w, err := NewWatermark(WatermarkConfig{Dir: "/wal", LowBytes: 1000, Statfs: fs.statfs})
	if err != nil {
		t.Fatal(err)
	}
	// Only the low watermark is armed: even 1 free byte is just "low".
	if got := w.Tick(); got != LevelLow {
		t.Fatalf("level = %v, want low (shed/read-only disarmed)", got)
	}
}

func TestWatermarkMetrics(t *testing.T) {
	fs := &fakeFS{free: 50, total: 10000}
	w := newTestWatermark(t, fs, nil)
	w.Tick()
	reg := obs.NewRegistry()
	w.RegisterMetrics(reg)
	vals := reg.Values()
	if got := vals[`qtag_watermark_free_bytes`]; got != 50 {
		t.Fatalf("free_bytes = %v, want 50", got)
	}
	if got := vals[`qtag_watermark_level{level="read-only"}`]; got != 1 {
		t.Fatalf(`level{read-only} = %v, want 1`, got)
	}
	if got := vals[`qtag_watermark_level{level="ok"}`]; got != 0 {
		t.Fatalf(`level{ok} = %v, want 0`, got)
	}
}

func TestWatermarkStartCloseAndUnsupportedPlatformStub(t *testing.T) {
	fs := &fakeFS{free: 5000, total: 10000}
	w := newTestWatermark(t, fs, nil)
	w.Start()
	w.Close() // must not hang or panic
	w.Close() // idempotent

	// The non-Linux stub (compiled on Linux too? no — just exercise the
	// exported sentinel) participates in the API contract.
	if ErrStatfsUnsupported == nil {
		t.Fatal("ErrStatfsUnsupported must be a sentinel error")
	}
}

package admission

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"qtag/internal/obs"
)

// Mode is the node's degraded-mode state.
type Mode int32

const (
	// ModeHealthy — no overload signal; everything admitted subject to
	// the limiter.
	ModeHealthy Mode = iota
	// ModeBrownedOut — the limiter is shedding, the backlog backstop
	// tripped, or the disk is past the shed watermark. /readyz goes 503
	// so load balancers steer new traffic elsewhere; admitted requests
	// still complete.
	ModeBrownedOut
	// ModeReadOnly — the disk is critically low: all write classes are
	// refused outright; reads, health and metrics survive.
	ModeReadOnly
	// ModeRecovering — pressure has cleared but the node holds the
	// brown-out memory for RecoveryHold before declaring itself healthy,
	// so a load balancer re-adding it doesn't immediately re-tip it.
	// /readyz is 200 in this mode: the node IS serving.
	ModeRecovering
)

// String implements fmt.Stringer (metric label values).
func (m Mode) String() string {
	switch m {
	case ModeHealthy:
		return "healthy"
	case ModeBrownedOut:
		return "browned-out"
	case ModeReadOnly:
		return "read-only"
	case ModeRecovering:
		return "recovering"
	default:
		return "unknown"
	}
}

// modes in export order.
var modes = []Mode{ModeHealthy, ModeBrownedOut, ModeReadOnly, ModeRecovering}

// Config assembles a Controller.
type Config struct {
	// Limiter tunes the adaptive concurrency limiter (zero value: see
	// LimiterConfig defaults).
	Limiter LimiterConfig
	// Backstop, when set, is the hard overload guard behind the
	// adaptive limiter — the journal-backlog predicate that used to be
	// the only signal. While true, live and drain ingest is shed
	// unconditionally.
	Backstop func() bool
	// Watermark, when set, feeds disk free-space levels into the mode
	// machine: LevelShed browns the node out, LevelReadOnly refuses all
	// write classes.
	Watermark *Watermark
	// RetryAfter is the Retry-After hint on 503 sheds. Default 1s.
	RetryAfter time.Duration
	// RecoveryHold is how long after the last pressure signal the node
	// stays in ModeRecovering before returning to ModeHealthy, and also
	// how long a recent shed keeps it browned out. Default 2s.
	RecoveryHold time.Duration
	// Now is the clock; defaults to time.Now.
	Now func() time.Time
}

// Controller is the admission front door: per-request it classifies,
// consults the mode machine, the backstop and the limiter, and either
// forwards to the wrapped handler (timing the request to feed the
// gradient) or sheds with 503 + Retry-After. It also owns the
// healthy → browned-out → read-only → recovering state machine exposed
// on /readyz and /metrics.
type Controller struct {
	cfg     Config
	limiter *Limiter

	mu           sync.Mutex
	mode         Mode
	lastPressure time.Time // last instant any pressure signal was asserted
	calmSince    time.Time // when ModeRecovering began

	admitted [numClasses]atomic.Int64
	shed     [numClasses]atomic.Int64
	backstop atomic.Int64 // sheds attributed to the backlog backstop
	readOnly atomic.Int64 // sheds attributed to read-only mode
}

// NewController builds a controller in ModeHealthy.
func NewController(cfg Config) *Controller {
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.RecoveryHold <= 0 {
		cfg.RecoveryHold = 2 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Controller{cfg: cfg, limiter: NewLimiter(cfg.Limiter)}
}

// Limiter exposes the underlying adaptive limiter (metrics, tests).
func (c *Controller) Limiter() *Limiter { return c.limiter }

// statusRecorder captures the wrapped handler's status so only
// successful requests feed the latency gradient.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Middleware wraps an HTTP stack with admission control. Ungated paths
// (health, readiness, metrics, stats) pass straight through.
func (c *Controller) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		class, gated := Classify(r)
		if !gated {
			next.ServeHTTP(w, r)
			return
		}
		now := c.cfg.Now()
		mode := c.evaluate(now)

		ingest := class == ClassLive || class == ClassDrain
		if mode == ModeReadOnly && ingest {
			c.readOnly.Add(1)
			c.shedResponse(w, class, "node is read-only: WAL disk critically low")
			return
		}
		if ingest && c.cfg.Backstop != nil && c.cfg.Backstop() {
			c.backstop.Add(1)
			c.notePressure(now)
			c.shedResponse(w, class, "journal backlog backstop tripped")
			return
		}
		if !c.limiter.Acquire(class.Fraction()) {
			c.notePressure(now)
			c.shedResponse(w, class, "adaptive concurrency limit reached for class "+class.String())
			return
		}
		start := now
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		// Only successful live requests teach the gradient: errors have
		// unrepresentative latency, and background classes run on purpose-
		// slack capacity whose timing says nothing about the ingest knee.
		c.limiter.Release(c.cfg.Now().Sub(start), class == ClassLive && rec.status < 400)
		c.admitted[class].Add(1)
	})
}

// shedResponse writes the 503 + Retry-After shed answer, mirroring the
// beacon server's JSON error envelope.
func (c *Controller) shedResponse(w http.ResponseWriter, class Class, reason string) {
	c.shed[class].Add(1)
	w.Header().Set("Retry-After", strconv.Itoa(int(c.cfg.RetryAfter/time.Second)))
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(http.StatusServiceUnavailable)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": reason})
}

// notePressure records that an overload signal fired now.
func (c *Controller) notePressure(now time.Time) {
	c.mu.Lock()
	if now.After(c.lastPressure) {
		c.lastPressure = now
	}
	c.mu.Unlock()
}

// evaluate advances the mode machine and returns the current mode. It
// runs on every gated request and on every readiness probe, so recovery
// progresses as long as anything at all looks at the node.
func (c *Controller) evaluate(now time.Time) Mode {
	var level Level
	if c.cfg.Watermark != nil {
		level = c.cfg.Watermark.Level()
	}
	pressure := level >= LevelShed
	if !pressure && c.cfg.Backstop != nil && c.cfg.Backstop() {
		pressure = true
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if pressure {
		c.lastPressure = now
	}
	recent := !c.lastPressure.IsZero() && now.Sub(c.lastPressure) < c.cfg.RecoveryHold
	switch {
	case level >= LevelReadOnly:
		c.mode = ModeReadOnly
	case pressure || recent:
		c.mode = ModeBrownedOut
	default:
		switch c.mode {
		case ModeBrownedOut, ModeReadOnly:
			c.mode = ModeRecovering
			c.calmSince = now
		case ModeRecovering:
			if now.Sub(c.calmSince) >= c.cfg.RecoveryHold {
				c.mode = ModeHealthy
			}
		}
	}
	return c.mode
}

// Mode re-evaluates and returns the current degraded-mode state.
func (c *Controller) Mode() Mode { return c.evaluate(c.cfg.Now()) }

// Ready reports whether the node should advertise readiness:
// browned-out and read-only answer 503; healthy and recovering are
// ready (a recovering node is fully serving — the hold only delays the
// "healthy" label, not traffic).
func (c *Controller) Ready() bool {
	m := c.evaluate(c.cfg.Now())
	return m != ModeBrownedOut && m != ModeReadOnly
}

// Shed returns how many requests of a class were shed.
func (c *Controller) Shed(class Class) int64 {
	if class < 0 || class >= numClasses {
		return 0
	}
	return c.shed[class].Load()
}

// Admitted returns how many requests of a class completed admission.
func (c *Controller) Admitted(class Class) int64 {
	if class < 0 || class >= numClasses {
		return 0
	}
	return c.admitted[class].Load()
}

// TotalShed sums sheds across all classes.
func (c *Controller) TotalShed() int64 {
	var n int64
	for i := range c.shed {
		n += c.shed[i].Load()
	}
	return n
}

// RegisterMetrics exposes admission state as qtag_admission_*.
func (c *Controller) RegisterMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	r.GaugeFunc("qtag_admission_limit", "Current adaptive concurrency limit.",
		func() float64 { return c.limiter.Limit() })
	r.GaugeFunc("qtag_admission_inflight", "Requests currently admitted and executing.",
		func() float64 { return float64(c.limiter.Inflight()) })
	r.GaugeFunc("qtag_admission_min_rtt_seconds", "Moving-minimum ingest latency baseline.",
		func() float64 { return c.limiter.MinRTT() })
	r.CounterFunc("qtag_admission_backstop_shed_total", "Requests shed by the journal-backlog backstop.",
		c.backstop.Load)
	r.CounterFunc("qtag_admission_readonly_shed_total", "Write requests refused while read-only.",
		c.readOnly.Load)
	for cl := ClassLive; cl < numClasses; cl++ {
		cl := cl
		lbl := obs.Label{Name: "class", Value: cl.String()}
		r.CounterFunc("qtag_admission_admitted_total", "Requests admitted, by class.",
			c.admitted[cl].Load, lbl)
		r.CounterFunc("qtag_admission_shed_total", "Requests shed, by class.",
			c.shed[cl].Load, lbl)
	}
	for _, m := range modes {
		m := m
		r.GaugeFunc("qtag_admission_mode", "Degraded-mode state machine (1 on the active mode).",
			func() float64 {
				if c.evaluate(c.cfg.Now()) == m {
					return 1
				}
				return 0
			}, obs.Label{Name: "mode", Value: m.String()})
	}
}

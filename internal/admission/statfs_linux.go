//go:build linux

package admission

import "syscall"

// platformStatfs reports free (available to unprivileged writers) and
// total bytes for the filesystem holding dir.
func platformStatfs(dir string) (free, total int64, err error) {
	var st syscall.Statfs_t
	if err := syscall.Statfs(dir, &st); err != nil {
		return 0, 0, err
	}
	bsize := int64(st.Bsize)
	return int64(st.Bavail) * bsize, int64(st.Blocks) * bsize, nil
}

package beacon

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func authedServer(t *testing.T, keys ...string) *httptest.Server {
	t.Helper()
	store := NewStore()
	mustSubmit(t, store, ev("i", "c", "", EventServed))
	srv := httptest.NewServer(AuthStats(NewServer(store), keys...))
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, url string, header ...string) *http.Response {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, url, nil)
	for i := 0; i+1 < len(header); i += 2 {
		req.Header.Set(header[i], header[i+1])
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func TestAuthStatsProtectsReads(t *testing.T) {
	srv := authedServer(t, "secret-1", "secret-2")
	// Unauthenticated stats: denied.
	if resp := get(t, srv.URL+"/v1/stats"); resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("unauthenticated stats = %d", resp.StatusCode)
	}
	if resp := get(t, srv.URL+"/v1/campaigns/c/stats"); resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("unauthenticated campaign stats = %d", resp.StatusCode)
	}
	// Bearer token works; either configured key is accepted.
	if resp := get(t, srv.URL+"/v1/stats", "Authorization", "Bearer secret-2"); resp.StatusCode != http.StatusOK {
		t.Errorf("bearer stats = %d", resp.StatusCode)
	}
	// Query key works.
	if resp := get(t, srv.URL+"/v1/stats?key=secret-1"); resp.StatusCode != http.StatusOK {
		t.Errorf("query-key stats = %d", resp.StatusCode)
	}
	// Wrong key denied.
	if resp := get(t, srv.URL+"/v1/stats?key=wrong"); resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("wrong key = %d", resp.StatusCode)
	}
}

func TestAuthStatsLeavesIngestionOpen(t *testing.T) {
	srv := authedServer(t, "secret")
	resp, err := http.Post(srv.URL+"/v1/events", "application/json",
		strings.NewReader(`{"impression_id":"x","campaign_id":"c","type":"served"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("open ingestion = %d", resp.StatusCode)
	}
	if r := get(t, srv.URL+"/healthz"); r.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", r.StatusCode)
	}
	if r := get(t, srv.URL+"/v1/events?e="); r.StatusCode != http.StatusOK {
		t.Errorf("pixel = %d", r.StatusCode)
	}
}

func TestAuthStatsNoKeysPassThrough(t *testing.T) {
	srv := authedServer(t) // no keys
	if resp := get(t, srv.URL+"/v1/stats"); resp.StatusCode != http.StatusOK {
		t.Errorf("keyless deployment should stay open: %d", resp.StatusCode)
	}
}

func TestRateLimiter(t *testing.T) {
	store := NewStore()
	limiter := NewRateLimiter(NewServer(store), 2, 3) // 2/s, burst 3
	now := time.Unix(1000, 0)
	limiter.SetClock(func() time.Time { return now })
	srv := httptest.NewServer(limiter)
	defer srv.Close()

	post := func() int {
		resp, err := http.Post(srv.URL+"/v1/events", "application/json",
			strings.NewReader(`{"impression_id":"x","campaign_id":"c","type":"served","seq":1}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	// Burst of 3 allowed, 4th rejected.
	for i := 0; i < 3; i++ {
		if got := post(); got != http.StatusAccepted {
			t.Fatalf("burst request %d = %d", i, got)
		}
	}
	if got := post(); got != http.StatusTooManyRequests {
		t.Fatalf("over-burst = %d", got)
	}
	// Tokens refill with time: +1s → 2 tokens.
	now = now.Add(time.Second)
	if got := post(); got != http.StatusAccepted {
		t.Errorf("post-refill = %d", got)
	}
	// Reads are never limited.
	if r := get(t, srv.URL+"/v1/stats"); r.StatusCode != http.StatusOK {
		t.Errorf("stats limited: %d", r.StatusCode)
	}
}

func TestRateLimiterDisabled(t *testing.T) {
	store := NewStore()
	srv := httptest.NewServer(NewRateLimiter(NewServer(store), 0, 0))
	defer srv.Close()
	for i := 0; i < 20; i++ {
		resp, err := http.Post(srv.URL+"/v1/events", "application/json",
			strings.NewReader(`{"impression_id":"x","campaign_id":"c","type":"served"}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("disabled limiter rejected request %d", i)
		}
	}
}

func TestRateLimiterSweep(t *testing.T) {
	limiter := NewRateLimiter(http.NotFoundHandler(), 10, 5)
	now := time.Unix(0, 0)
	limiter.SetClock(func() time.Time { return now })
	// Create buckets for many clients.
	for i := 0; i < 50; i++ {
		limiter.allow(strings.Repeat("a", i+1))
	}
	if len(limiter.buckets) != 50 {
		t.Fatalf("buckets = %d", len(limiter.buckets))
	}
	// Far in the future, a new request sweeps the idle buckets.
	now = now.Add(time.Hour)
	limiter.allow("fresh")
	if len(limiter.buckets) != 1 {
		t.Errorf("buckets after sweep = %d, want 1", len(limiter.buckets))
	}
}

func TestClientIP(t *testing.T) {
	r := httptest.NewRequest(http.MethodPost, "/v1/events", nil)
	r.RemoteAddr = "203.0.113.9:4711"
	if got := clientIP(r); got != "203.0.113.9" {
		t.Errorf("clientIP = %q", got)
	}
	r.RemoteAddr = "bare-host"
	if got := clientIP(r); got != "bare-host" {
		t.Errorf("fallback clientIP = %q", got)
	}
}

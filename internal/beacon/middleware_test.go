package beacon

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func authedServer(t *testing.T, keys ...string) *httptest.Server {
	t.Helper()
	store := NewStore()
	mustSubmit(t, store, ev("i", "c", "", EventServed))
	srv := httptest.NewServer(AuthStats(NewServer(store), keys...))
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, url string, header ...string) *http.Response {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, url, nil)
	for i := 0; i+1 < len(header); i += 2 {
		req.Header.Set(header[i], header[i+1])
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func TestAuthStatsProtectsReads(t *testing.T) {
	srv := authedServer(t, "secret-1", "secret-2")
	// Unauthenticated stats: denied.
	if resp := get(t, srv.URL+"/v1/stats"); resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("unauthenticated stats = %d", resp.StatusCode)
	}
	if resp := get(t, srv.URL+"/v1/campaigns/c/stats"); resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("unauthenticated campaign stats = %d", resp.StatusCode)
	}
	// Bearer token works; either configured key is accepted.
	if resp := get(t, srv.URL+"/v1/stats", "Authorization", "Bearer secret-2"); resp.StatusCode != http.StatusOK {
		t.Errorf("bearer stats = %d", resp.StatusCode)
	}
	// Query key works.
	if resp := get(t, srv.URL+"/v1/stats?key=secret-1"); resp.StatusCode != http.StatusOK {
		t.Errorf("query-key stats = %d", resp.StatusCode)
	}
	// Wrong key denied.
	if resp := get(t, srv.URL+"/v1/stats?key=wrong"); resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("wrong key = %d", resp.StatusCode)
	}
}

func TestAuthStatsLeavesIngestionOpen(t *testing.T) {
	srv := authedServer(t, "secret")
	resp, err := http.Post(srv.URL+"/v1/events", "application/json",
		strings.NewReader(`{"impression_id":"x","campaign_id":"c","type":"served"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("open ingestion = %d", resp.StatusCode)
	}
	if r := get(t, srv.URL+"/healthz"); r.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", r.StatusCode)
	}
	if r := get(t, srv.URL+"/v1/events?e="); r.StatusCode != http.StatusOK {
		t.Errorf("pixel = %d", r.StatusCode)
	}
}

func TestAuthStatsNoKeysPassThrough(t *testing.T) {
	srv := authedServer(t) // no keys
	if resp := get(t, srv.URL+"/v1/stats"); resp.StatusCode != http.StatusOK {
		t.Errorf("keyless deployment should stay open: %d", resp.StatusCode)
	}
}

func TestRateLimiter(t *testing.T) {
	store := NewStore()
	limiter := NewRateLimiter(NewServer(store), 2, 3) // 2/s, burst 3
	now := time.Unix(1000, 0)
	limiter.SetClock(func() time.Time { return now })
	srv := httptest.NewServer(limiter)
	defer srv.Close()

	post := func() int {
		resp, err := http.Post(srv.URL+"/v1/events", "application/json",
			strings.NewReader(`{"impression_id":"x","campaign_id":"c","type":"served","seq":1}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	// Burst of 3 allowed, 4th rejected.
	for i := 0; i < 3; i++ {
		if got := post(); got != http.StatusAccepted {
			t.Fatalf("burst request %d = %d", i, got)
		}
	}
	if got := post(); got != http.StatusTooManyRequests {
		t.Fatalf("over-burst = %d", got)
	}
	// Tokens refill with time: +1s → 2 tokens.
	now = now.Add(time.Second)
	if got := post(); got != http.StatusAccepted {
		t.Errorf("post-refill = %d", got)
	}
	// Reads are never limited.
	if r := get(t, srv.URL+"/v1/stats"); r.StatusCode != http.StatusOK {
		t.Errorf("stats limited: %d", r.StatusCode)
	}
}

func TestRateLimiterDisabled(t *testing.T) {
	store := NewStore()
	srv := httptest.NewServer(NewRateLimiter(NewServer(store), 0, 0))
	defer srv.Close()
	for i := 0; i < 20; i++ {
		resp, err := http.Post(srv.URL+"/v1/events", "application/json",
			strings.NewReader(`{"impression_id":"x","campaign_id":"c","type":"served"}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("disabled limiter rejected request %d", i)
		}
	}
}

func TestRateLimiterSweep(t *testing.T) {
	limiter := NewRateLimiter(http.NotFoundHandler(), 10, 5)
	now := time.Unix(0, 0)
	limiter.SetClock(func() time.Time { return now })
	// Create buckets for many clients.
	for i := 0; i < 50; i++ {
		limiter.allow(strings.Repeat("a", i+1))
	}
	if len(limiter.buckets) != 50 {
		t.Fatalf("buckets = %d", len(limiter.buckets))
	}
	// Far in the future, a new request sweeps the idle buckets.
	now = now.Add(time.Hour)
	limiter.allow("fresh")
	if len(limiter.buckets) != 1 {
		t.Errorf("buckets after sweep = %d, want 1", len(limiter.buckets))
	}
}

func TestOverloadGuardShedsIngestion(t *testing.T) {
	store := NewStore()
	server := NewServer(store)
	overloaded := false
	guard := NewOverloadGuard(server, func() bool { return overloaded }, 2*time.Second)
	server.AddHealthMetric("shed", guard.Shed)
	srv := httptest.NewServer(guard)
	defer srv.Close()

	post := func() *http.Response {
		resp, err := http.Post(srv.URL+"/v1/events", "application/json",
			strings.NewReader(`{"impression_id":"x","campaign_id":"c","type":"served"}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// Healthy: ingestion flows.
	if resp := post(); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("healthy ingest = %d", resp.StatusCode)
	}

	// Overloaded: ingestion shed with 503 + Retry-After; reads still work.
	overloaded = true
	resp := post()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overloaded ingest = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "2" {
		t.Errorf("Retry-After = %q, want 2", resp.Header.Get("Retry-After"))
	}
	if r := get(t, srv.URL+"/v1/stats"); r.StatusCode != http.StatusOK {
		t.Errorf("reads shed under overload: %d", r.StatusCode)
	}
	if guard.Shed() != 1 {
		t.Errorf("Shed = %d", guard.Shed())
	}

	// The shed counter is visible on /healthz.
	hr, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var payload map[string]any
	if err := json.NewDecoder(hr.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if shed, ok := payload["shed"].(float64); !ok || shed != 1 {
		t.Errorf("healthz shed = %v", payload["shed"])
	}
	if payload["accepted"].(float64) != 1 {
		t.Errorf("healthz accepted = %v", payload["accepted"])
	}

	// Recovery: ingestion flows again and HTTPSink's retry loop would
	// have held the event in the meantime.
	overloaded = false
	if resp := post(); resp.StatusCode != http.StatusAccepted {
		t.Errorf("recovered ingest = %d", resp.StatusCode)
	}
}

func TestOverloadGuardEndToEndWithHTTPSink(t *testing.T) {
	store := NewStore()
	server := NewServer(store)
	var calls int
	guard := NewOverloadGuard(server, func() bool { calls++; return calls <= 2 }, time.Second)
	srv := httptest.NewServer(guard)
	defer srv.Close()

	var slept []time.Duration
	sink := &HTTPSink{BaseURL: srv.URL, Retries: 3, Sleep: func(d time.Duration) { slept = append(slept, d) }}
	if err := sink.Submit(ev("i1", "c1", "", EventServed)); err != nil {
		t.Fatalf("sink should ride out the shed window: %v", err)
	}
	if store.Len() != 1 {
		t.Error("event lost across shed window")
	}
	for _, d := range slept {
		if d != time.Second {
			t.Errorf("client ignored Retry-After: slept %v", d)
		}
	}
}

func TestClientIP(t *testing.T) {
	r := httptest.NewRequest(http.MethodPost, "/v1/events", nil)
	r.RemoteAddr = "203.0.113.9:4711"
	if got := clientIP(r); got != "203.0.113.9" {
		t.Errorf("clientIP = %q", got)
	}
	r.RemoteAddr = "bare-host"
	if got := clientIP(r); got != "bare-host" {
		t.Errorf("fallback clientIP = %q", got)
	}
}

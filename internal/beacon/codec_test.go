package beacon

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"qtag/internal/wal"
)

// codecSampleEvents covers every encoding branch: coded and literal
// types/sources, zero and non-zero timestamps, empty and populated
// Meta, negative Seq, multi-byte UTF-8, and an event long enough to
// force the batch encoder's widen-in-place length prefix.
func codecSampleEvents() []Event {
	return []Event{
		{
			ImpressionID: "imp-1", CampaignID: "camp-1", Type: EventServed,
			At: time.Unix(1500000000, 123456789).UTC(),
			Meta: Meta{OS: "android", SiteType: "news", AdSize: "300x250",
				Format: "banner", Country: "fr", Exchange: "appnexus", Slot: "atf-1"},
		},
		{
			ImpressionID: "imp-2", CampaignID: "camp-2", Type: EventInView,
			Source: SourceQTag, Seq: 3, At: time.Unix(1500000001, 0).UTC(),
			Trace: "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		},
		{
			ImpressionID: "imp-3", CampaignID: "camp-3", Type: EventLoaded,
			Source: SourceCommercial, At: time.Unix(1500000002, 999999999).UTC(),
		},
		// Zero time, negative seq, literal (unknown) type and source:
		// the codec must round-trip whatever JSON can carry, valid or not.
		{
			ImpressionID: "imp-4", CampaignID: "camp-4",
			Type: EventType("custom-type"), Source: Source("custom-src"), Seq: -7,
		},
		// Multi-byte UTF-8 and an encoding well past 127 bytes, so the
		// reserved 1-byte batch length prefix must widen in place.
		{
			ImpressionID: strings.Repeat("長い印象-", 20), CampaignID: "캠페인-üñï",
			Type: EventOutOfView, Source: SourceQTag,
			At:   time.Unix(-62135596800, 1).UTC(), // year 1: negative unix seconds
			Meta: Meta{OS: strings.Repeat("x", 150), Slot: "слот"},
		},
	}
}

// eventsEqual compares events semantically: At by instant (the codec
// normalizes to UTC), everything else exactly.
func eventsEqual(a, b Event) bool {
	if !a.At.Equal(b.At) {
		return false
	}
	a.At, b.At = time.Time{}, time.Time{}
	return reflect.DeepEqual(a, b)
}

func TestBinaryEventRoundTrip(t *testing.T) {
	for i, e := range codecSampleEvents() {
		enc := AppendBinaryEvent(nil, e)
		got, err := DecodeBinaryEvent(enc)
		if err != nil {
			t.Fatalf("event %d: decode: %v", i, err)
		}
		if !eventsEqual(e, got) {
			t.Fatalf("event %d round trip:\n in: %+v\nout: %+v", i, e, got)
		}
	}
}

func TestBinaryBatchRoundTrip(t *testing.T) {
	events := codecSampleEvents()
	frame := AppendBinaryEvents(nil, events)

	copied, err := DecodeBinaryEvents(frame)
	if err != nil {
		t.Fatalf("copying decode: %v", err)
	}
	var dec BatchDecoder
	aliased, err := dec.Decode(frame)
	if err != nil {
		t.Fatalf("alias decode: %v", err)
	}
	if len(copied) != len(events) || len(aliased) != len(events) {
		t.Fatalf("decoded %d / %d events, want %d", len(copied), len(aliased), len(events))
	}
	for i := range events {
		if !eventsEqual(events[i], copied[i]) {
			t.Errorf("copying decode event %d:\n in: %+v\nout: %+v", i, events[i], copied[i])
		}
		if !eventsEqual(events[i], aliased[i]) {
			t.Errorf("alias decode event %d:\n in: %+v\nout: %+v", i, events[i], aliased[i])
		}
	}

	// An empty batch is a valid frame.
	empty, err := DecodeBinaryEvents(AppendBinaryEvents(nil, nil))
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty batch: %v, %d events", err, len(empty))
	}
}

// The deadline is ephemeral by design (json:"-"): the codec must drop
// it, exactly like the JSON path does on WAL records and forwards.
func TestBinaryCodecDropsDeadline(t *testing.T) {
	e := codecSampleEvents()[1]
	e.Deadline = time.Now().Add(time.Second)
	got, err := DecodeBinaryEvent(AppendBinaryEvent(nil, e))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Deadline.IsZero() {
		t.Fatalf("deadline survived the wire: %v", got.Deadline)
	}
}

// A BatchDecoder is reused across requests from a pool; a later, smaller
// batch must not see (or keep alive) the previous batch's strings.
func TestBatchDecoderReuse(t *testing.T) {
	var dec BatchDecoder
	big := AppendBinaryEvents(nil, codecSampleEvents())
	if _, err := dec.Decode(big); err != nil {
		t.Fatal(err)
	}
	small := AppendBinaryEvents(nil, []Event{{
		ImpressionID: "solo", CampaignID: "c", Type: EventServed,
		At: time.Unix(1500000000, 0).UTC(),
	}})
	got, err := dec.Decode(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ImpressionID != "solo" || got[0].Meta.OS != "" {
		t.Fatalf("reused decoder leaked previous batch: %+v", got)
	}
	// The scratch beyond the live slice must be cleared, or the big
	// batch's arena stays pinned for the decoder's pool lifetime.
	scratch := got[:cap(got)]
	for i := 1; i < len(scratch); i++ {
		if scratch[i].ImpressionID != "" {
			t.Fatalf("scratch slot %d still pins old strings: %+v", i, scratch[i])
		}
	}
}

func TestBinaryDecodeTruncation(t *testing.T) {
	// Every strict prefix of a valid encoding must error, never panic or
	// return a bogus event.
	enc := AppendBinaryEvent(nil, codecSampleEvents()[0])
	for i := 0; i < len(enc); i++ {
		if _, err := DecodeBinaryEvent(enc[:i]); err == nil {
			t.Fatalf("truncated event at %d/%d decoded", i, len(enc))
		}
	}
	frame := AppendBinaryEvents(nil, codecSampleEvents()[:2])
	for i := 0; i < len(frame); i++ {
		if _, err := DecodeBinaryEvents(frame[:i]); err == nil {
			t.Fatalf("truncated batch at %d/%d decoded", i, len(frame))
		}
	}
}

func TestBinaryDecodeErrors(t *testing.T) {
	valid := AppendBinaryEvent(nil, codecSampleEvents()[0])
	frame := AppendBinaryEvents(nil, codecSampleEvents()[:1])

	// Unknown event version / batch magic → ErrBinaryVersion (the 415
	// signal); corruption inside a spoken version → plain error (400).
	badVer := append([]byte{}, valid...)
	badVer[0] = 0x02
	if _, err := DecodeBinaryEvent(badVer); !errors.Is(err, ErrBinaryVersion) {
		t.Fatalf("future event version: %v", err)
	}
	badMagic := append([]byte{}, frame...)
	badMagic[0] = 0xF2
	if _, err := DecodeBinaryEvents(badMagic); !errors.Is(err, ErrBinaryVersion) {
		t.Fatalf("bad batch magic: %v", err)
	}
	badFrameVer := append([]byte{}, frame...)
	badFrameVer[1] = 0x02
	if _, err := DecodeBinaryEvents(badFrameVer); !errors.Is(err, ErrBinaryVersion) {
		t.Fatalf("future batch version: %v", err)
	}

	// Unknown type / source codes are corruption, not versions.
	badType := append([]byte{}, valid...)
	badType[2] = 9
	if _, err := DecodeBinaryEvent(badType); err == nil || errors.Is(err, ErrBinaryVersion) {
		t.Fatalf("unknown type code: %v", err)
	}
	badSrc := append([]byte{}, valid...)
	badSrc[3] = 9
	if _, err := DecodeBinaryEvent(badSrc); err == nil || errors.Is(err, ErrBinaryVersion) {
		t.Fatalf("unknown source code: %v", err)
	}

	// Nanoseconds past 1s would silently shift the instant.
	nsOverflow := []byte{binaryEventVersion, 0, 1, 0}
	nsOverflow = append(nsOverflow, 0)                            // sec = 0
	nsOverflow = append(nsOverflow, 0x80, 0x94, 0xEB, 0xDC, 0x04) // nsec = 1_300_000_000
	if _, err := DecodeBinaryEvent(nsOverflow); err == nil {
		t.Fatal("nsec overflow decoded")
	}

	// Trailing bytes after a complete event or frame are corruption.
	if _, err := DecodeBinaryEvent(append(append([]byte{}, valid...), 0)); err == nil {
		t.Fatal("trailing bytes after event decoded")
	}
	if _, err := DecodeBinaryEvents(append(append([]byte{}, frame...), 0)); err == nil {
		t.Fatal("trailing bytes after batch decoded")
	}

	// A forged count must not drive a huge preallocation: frame header
	// claiming 2^40 events in 3 bytes.
	forged := []byte{binaryBatchMagic, binaryEventVersion, 0x80, 0x80, 0x80, 0x80, 0x80, 0x20, 1, 2, 3}
	if _, err := DecodeBinaryEvents(forged); err == nil {
		t.Fatal("forged count decoded")
	}
}

// DecodeStoredEvent dispatches on the payload's first byte, so one WAL
// (or hint backlog) can hold JSON records written before the binary
// codec next to binary records written after.
func TestDecodeStoredEventDispatch(t *testing.T) {
	e := codecSampleEvents()[1]
	fromBinary, err := DecodeStoredEvent(AppendBinaryEvent(nil, e))
	if err != nil {
		t.Fatal(err)
	}
	jsonPayload, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	fromJSON, err := DecodeStoredEvent(jsonPayload)
	if err != nil {
		t.Fatal(err)
	}
	if !eventsEqual(fromBinary, fromJSON) || !eventsEqual(e, fromBinary) {
		t.Fatalf("dispatch mismatch:\nbinary: %+v\n  json: %+v", fromBinary, fromJSON)
	}
	if _, err := DecodeStoredEvent(nil); err == nil {
		t.Fatal("empty payload decoded")
	}
	if _, err := DecodeStoredEvent([]byte("not a payload")); err == nil {
		t.Fatal("garbage payload decoded")
	}
}

// A WAL directory written entirely by a pre-binary process (JSON
// payloads) must replay identically through the upgraded journal.
func TestJSONWALReplaysThroughBinaryJournal(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	w, _, err := wal.Open(wal.Options{Dir: dir}, func(uint64, []byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	// Only validation-clean events: replay submits to the store, and the
	// codec samples deliberately include an invalid literal-typed event.
	var events []Event
	for _, e := range codecSampleEvents() {
		if e.Validate() == nil {
			events = append(events, e)
		}
	}
	if len(events) < 3 {
		t.Fatalf("only %d valid sample events", len(events))
	}
	for _, e := range events {
		payload, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	store := NewStore()
	j, rec, err := OpenDurable(wal.Options{Dir: dir}, store)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Replayed != len(events) || rec.ReplaySkipped != 0 {
		t.Fatalf("JSON WAL replay: %+v", rec)
	}
	// The upgraded journal appends binary records to the same directory;
	// a restart then replays the mixed JSON+binary log in full.
	extra := Event{ImpressionID: "post-upgrade", CampaignID: "camp-1",
		Type: EventServed, At: time.Unix(1500000100, 0).UTC()}
	if err := j.Submit(extra); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	store2 := NewStore()
	rec2, err := ReplayWALDir(dir, store2)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Replayed != len(events)+1 || rec2.ReplaySkipped != 0 {
		t.Fatalf("mixed WAL replay: %+v", rec2)
	}
	if store2.Len() != store.Len()+1 {
		t.Fatalf("store after mixed replay: %d events, want %d", store2.Len(), store.Len()+1)
	}
}

type binaryVector struct {
	Name  string `json:"name"`
	Hex   string `json:"hex"`
	Event Event  `json:"event"`
}

// The golden vectors pin the wire format byte for byte: an encoder
// change that alters any hex string is a wire-format break, which needs
// a new version byte, not a silent re-baseline.
func TestBinaryGoldenVectors(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "binary_vectors.json"))
	if err != nil {
		t.Fatal(err)
	}
	var vectors []binaryVector
	if err := json.Unmarshal(raw, &vectors); err != nil {
		t.Fatal(err)
	}
	if len(vectors) < 4 {
		t.Fatalf("only %d golden vectors", len(vectors))
	}
	for _, v := range vectors {
		t.Run(v.Name, func(t *testing.T) {
			want, err := hex.DecodeString(v.Hex)
			if err != nil {
				t.Fatal(err)
			}
			if got := AppendBinaryEvent(nil, v.Event); !bytes.Equal(got, want) {
				t.Fatalf("encoding drifted from the golden vector:\n got %x\nwant %x", got, want)
			}
			decoded, err := DecodeBinaryEvent(want)
			if err != nil {
				t.Fatal(err)
			}
			if !eventsEqual(v.Event, decoded) {
				t.Fatalf("golden bytes decode:\n got %+v\nwant %+v", decoded, v.Event)
			}
		})
	}
}

// The server negotiates the codec on Content-Type: a binary POST lands
// through the zero-allocation decoder, and the JSON path is untouched.
func TestServerBinaryIngest(t *testing.T) {
	store := NewStore()
	srv := httptest.NewServer(NewServer(store))
	defer srv.Close()

	events := []Event{
		{ImpressionID: "b-1", CampaignID: "c", Type: EventServed, At: time.Unix(1500000000, 0).UTC()},
		{ImpressionID: "b-1", CampaignID: "c", Type: EventInView, Source: SourceQTag, At: time.Unix(1500000001, 0).UTC()},
	}
	resp, err := http.Post(srv.URL+"/v1/events", BinaryContentType,
		bytes.NewReader(AppendBinaryEvents(nil, events)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("binary POST: %d", resp.StatusCode)
	}
	if store.Len() != 2 {
		t.Fatalf("store holds %d events, want 2", store.Len())
	}

	// A future frame version is 415 — the fall-back-to-JSON signal —
	// while corruption within this version is a plain 400.
	future := AppendBinaryEvents(nil, events[:1])
	future[1] = 0x7F
	resp, err = http.Post(srv.URL+"/v1/events", BinaryContentType, bytes.NewReader(future))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("future-version POST: %d, want 415", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/v1/events", BinaryContentType, bytes.NewReader([]byte{binaryBatchMagic, binaryEventVersion, 5, 1}))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt-frame POST: %d, want 400", resp.StatusCode)
	}
}

// HTTPSink in binary mode delivers binary to a binary-speaking server —
// no fallback latch.
func TestHTTPSinkBinary(t *testing.T) {
	store := NewStore()
	srv := httptest.NewServer(NewServer(store))
	defer srv.Close()

	sink := &HTTPSink{BaseURL: srv.URL, Binary: true}
	err := sink.SubmitBatch([]Event{
		{ImpressionID: "hb-1", CampaignID: "c", Type: EventServed, At: time.Unix(1500000000, 0).UTC()},
		{ImpressionID: "hb-2", CampaignID: "c", Type: EventServed, At: time.Unix(1500000000, 0).UTC()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sink.FellBack() {
		t.Fatal("sink fell back against a binary-speaking server")
	}
	if store.Len() != 2 {
		t.Fatalf("store holds %d events, want 2", store.Len())
	}
}

// Against a pre-binary server (one that only parses JSON and answers
// 400 to everything else), the sink must redeliver the same batch as
// JSON within the same SubmitBatch call, then latch so later batches
// skip the doomed binary attempt.
func TestHTTPSinkBinaryFallback(t *testing.T) {
	var binaryPosts, jsonPosts int
	store := NewStore()
	legacy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body := new(bytes.Buffer)
		body.ReadFrom(r.Body)
		if !strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
			binaryPosts++
			http.Error(w, "cannot parse", http.StatusBadRequest)
			return
		}
		jsonPosts++
		var events []Event
		if err := json.Unmarshal(body.Bytes(), &events); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		for _, e := range events {
			store.Submit(e)
		}
		w.WriteHeader(http.StatusAccepted)
	}))
	defer legacy.Close()

	sink := &HTTPSink{BaseURL: legacy.URL, Binary: true}
	batch := []Event{{ImpressionID: "fb-1", CampaignID: "c", Type: EventServed, At: time.Unix(1500000000, 0).UTC()}}
	if err := sink.SubmitBatch(batch); err != nil {
		t.Fatal(err)
	}
	if !sink.FellBack() {
		t.Fatal("sink did not latch JSON fallback")
	}
	if binaryPosts != 1 || jsonPosts != 1 {
		t.Fatalf("first batch: %d binary / %d json posts, want 1/1", binaryPosts, jsonPosts)
	}
	if store.Len() != 1 {
		t.Fatalf("store holds %d events, want 1", store.Len())
	}
	// Latched: the second batch goes straight to JSON.
	batch[0].ImpressionID = "fb-2"
	if err := sink.SubmitBatch(batch); err != nil {
		t.Fatal(err)
	}
	if binaryPosts != 1 || jsonPosts != 2 {
		t.Fatalf("after latch: %d binary / %d json posts, want 1/2", binaryPosts, jsonPosts)
	}
	// The failed negotiation attempt is protocol, not a delivery
	// failure: every event landed and the failure counter stayed zero.
	if n := sink.Failed(); n != 0 {
		t.Fatalf("negotiation counted as %d failed deliveries", n)
	}
}

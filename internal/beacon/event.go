// Package beacon implements the monitoring side of Q-Tag: the event wire
// format ad tags emit, an idempotent in-memory event store with
// aggregation counters, an HTTP collection server (the "monitoring
// server" of §3), and a client transport for tags.
//
// Event flow for one impression:
//
//	DSP ad server  ──served──▶ store
//	measurement tag ──loaded──▶ store          (tag executed: impression is *measured*)
//	measurement tag ──in-view──▶ store          (viewability criteria met)
//	measurement tag ──out-of-view──▶ store      (visibility lost afterwards)
//
// An impression with a served event but no loaded event from a solution is
// *not measured* by that solution; one with loaded but no in-view is
// measured-not-viewed. These definitions implement the paper's measured
// rate and viewability rate metrics (§6).
package beacon

import (
	"errors"
	"fmt"
	"strconv"
	"time"
)

// EventType enumerates the beacon event kinds.
type EventType string

// Event kinds.
const (
	// EventServed is logged server-side by the DSP when the ad is
	// delivered. It has no Source.
	EventServed EventType = "served"
	// EventLoaded is the tag's check-in: the measurement code executed.
	EventLoaded EventType = "loaded"
	// EventInView reports that the viewability standard criteria were met.
	EventInView EventType = "in-view"
	// EventOutOfView reports that visibility was lost after an in-view.
	EventOutOfView EventType = "out-of-view"
)

// Source identifies which measurement solution emitted an event.
type Source string

// Measurement solutions compared in the paper.
const (
	// SourceQTag is this paper's solution.
	SourceQTag Source = "qtag"
	// SourceCommercial is the anonymous commercial verifier baseline.
	SourceCommercial Source = "commercial"
)

// Meta carries the impression attributes used for slicing (Table 2 slices
// by OS and site type).
type Meta struct {
	OS       string `json:"os,omitempty"`
	SiteType string `json:"site_type,omitempty"`
	AdSize   string `json:"ad_size,omitempty"`
	Format   string `json:"format,omitempty"`
	Country  string `json:"country,omitempty"`
	Exchange string `json:"exchange,omitempty"`
	// Slot is the publisher placement the creative rendered in. Honest
	// inventory spreads impressions over many placements; ad stacking
	// concentrates simultaneous in-views onto one, which is what the
	// geometry detector in internal/detect keys on. Optional on the wire.
	Slot string `json:"slot,omitempty"`
}

// Event is one beacon message.
type Event struct {
	// ImpressionID uniquely identifies the ad impression.
	ImpressionID string `json:"impression_id"`
	// CampaignID identifies the ad campaign the impression belongs to.
	CampaignID string `json:"campaign_id"`
	// Source is the emitting measurement solution; empty for served
	// events, required otherwise.
	Source Source `json:"source,omitempty"`
	// Type is the event kind.
	Type EventType `json:"type"`
	// At is the event timestamp.
	At time.Time `json:"at"`
	// Seq distinguishes repeated in-view/out-of-view cycles within one
	// impression; 0 for the first cycle.
	Seq int `json:"seq,omitempty"`
	// Meta carries slicing attributes.
	Meta Meta `json:"meta,omitempty"`
	// Trace is the W3C traceparent of the distributed-tracing span that
	// last handled this event, so the trace survives hops that outlive
	// any single HTTP request: queue requeues, hinted-handoff WAL
	// records, drain replay. It is not part of the idempotency Key and
	// never affects dedup or aggregation.
	Trace string `json:"trace,omitempty"`
	// Deadline is the absolute instant after which the submitting
	// client no longer cares about this event's outcome, derived from
	// the X-Qtag-Budget-Ms request header. Ephemeral by design
	// (json:"-"): it never reaches the WAL, snapshots, or hint records —
	// replayed and drained work is background work with no waiting
	// client, so it carries no deadline. HTTPSink decrements the
	// remaining budget when forwarding to peers; a zero Deadline means
	// "no deadline".
	Deadline time.Time `json:"-"`
}

// Validation errors.
var (
	ErrNoImpression = errors.New("beacon: event missing impression id")
	ErrNoCampaign   = errors.New("beacon: event missing campaign id")
	ErrBadType      = errors.New("beacon: unknown event type")
	ErrBadSource    = errors.New("beacon: event source invalid for type")
)

// Validate checks structural invariants of the event.
func (e Event) Validate() error {
	if e.ImpressionID == "" {
		return ErrNoImpression
	}
	if e.CampaignID == "" {
		return ErrNoCampaign
	}
	switch e.Type {
	case EventServed:
		if e.Source != "" {
			return fmt.Errorf("%w: served events carry no source", ErrBadSource)
		}
	case EventLoaded, EventInView, EventOutOfView:
		if e.Source == "" {
			return fmt.Errorf("%w: %s events require a source", ErrBadSource, e.Type)
		}
	default:
		return fmt.Errorf("%w: %q", ErrBadType, e.Type)
	}
	return nil
}

// AppendKey appends the idempotency key to dst and returns the extended
// slice — the zero-copy form of Key. Store.Submit feeds it a
// stack-allocated scratch buffer and looks the shard map up via
// string(key), which the compiler compiles to an allocation-free
// lookup; the only key allocation left on the ingest path is the map
// insert for a first-seen event, which must own its key anyway.
func (e Event) AppendKey(dst []byte) []byte {
	dst = append(dst, e.CampaignID...)
	dst = append(dst, '|')
	dst = append(dst, e.ImpressionID...)
	dst = append(dst, '|')
	dst = append(dst, e.Source...)
	dst = append(dst, '|')
	dst = append(dst, e.Type...)
	dst = append(dst, '|')
	return strconv.AppendInt(dst, int64(e.Seq), 10)
}

// Key returns the idempotency key: re-submitting an event with the same
// key is a no-op at the store.
func (e Event) Key() string {
	var buf [96]byte
	return string(e.AppendKey(buf[:0]))
}

// String implements fmt.Stringer.
func (e Event) String() string {
	src := string(e.Source)
	if src == "" {
		src = "dsp"
	}
	return fmt.Sprintf("%s %s imp=%s camp=%s", src, e.Type, e.ImpressionID, e.CampaignID)
}

// Sink consumes beacon events. Implementations include *Store (direct,
// in-process) and *HTTPSink (over the wire to a collection Server).
type Sink interface {
	Submit(Event) error
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event) error

// Submit implements Sink.
func (f SinkFunc) Submit(e Event) error { return f(e) }

// discardSink accepts and discards everything — the terminal sink of a
// durability pipeline that has no journal configured.
type discardSink struct{}

// Submit implements Sink.
func (discardSink) Submit(Event) error { return nil }

// SubmitBatch implements BatchSink.
func (discardSink) SubmitBatch([]Event) error { return nil }

// Discard is a Sink (and BatchSink) that accepts every event and drops
// it. qtag-server uses it as the durability pipeline's terminal when no
// journal is configured, so the queue/breaker metrics keep the same
// shape either way.
var Discard BatchSink = discardSink{}

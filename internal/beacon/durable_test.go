// The durable-layer tests live in an external test package so they can
// drive the WAL through the fault-injection harness: internal/faults
// imports internal/beacon, so an in-package test importing faults would
// be an import cycle.
package beacon_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	. "qtag/internal/beacon"
	"qtag/internal/faults"
	"qtag/internal/obs"
	"qtag/internal/wal"
)

// durEvent builds the i-th event of a deterministic workload; every
// index yields a distinct idempotency key.
func durEvent(i int) Event {
	return Event{
		ImpressionID: fmt.Sprintf("i-%04d", i),
		CampaignID:   "c1",
		Source:       SourceQTag,
		Type:         EventLoaded,
		At:           time.Unix(0, int64(i+1)).UTC(),
	}
}

func TestOpenDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	store := NewStore()
	j, rec, err := OpenDurable(wal.Options{Dir: dir}, store)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Records != 0 || rec.SnapshotRestored != 0 {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	for i := 0; i < 5; i++ {
		if err := j.Submit(durEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	batch := []Event{durEvent(5), durEvent(6), durEvent(7)}
	if err := j.SubmitBatch(batch); err != nil {
		t.Fatal(err)
	}
	if j.Len() != 8 {
		t.Fatalf("Len = %d, want 8", j.Len())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	restored := NewStore()
	j2, rec2, err := OpenDurable(wal.Options{Dir: dir}, restored)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if rec2.Replayed != 8 || restored.Len() != 8 {
		t.Fatalf("replayed %d into %d events, want 8/8 (%+v)", rec2.Replayed, restored.Len(), rec2)
	}
	if rec2.ReplaySkipped != 0 || rec2.Quarantined != 0 || rec2.TornTail {
		t.Fatalf("clean journal recovered dirty: %+v", rec2)
	}
	// The replayed store holds exactly the submitted workload.
	keys := make(map[string]bool)
	for _, e := range restored.Events() {
		keys[e.Key()] = true
	}
	for i := 0; i < 8; i++ {
		if !keys[durEvent(i).Key()] {
			t.Fatalf("event %d missing after replay", i)
		}
	}
}

func TestWALJournalSubmitValidates(t *testing.T) {
	dir := t.TempDir()
	j, _, err := OpenDurable(wal.Options{Dir: dir}, NewStore())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Submit(Event{}); !errors.Is(err, ErrNoImpression) {
		t.Fatalf("invalid event: %v", err)
	}
	if err := j.SubmitBatch([]Event{durEvent(0), {}}); !errors.Is(err, ErrNoImpression) {
		t.Fatalf("invalid batch: %v", err)
	}
	if j.Len() != 0 {
		t.Fatalf("invalid submissions landed: Len=%d", j.Len())
	}
}

func TestWALJournalSnapshotAndCompact(t *testing.T) {
	dir := t.TempDir()
	store := NewStore()
	// Tiny segments so the workload spans several files.
	opts := wal.Options{Dir: dir, SegmentBytes: 512}
	j, _, err := OpenDurable(opts, store)
	if err != nil {
		t.Fatal(err)
	}
	const total = 40
	for i := 0; i < total; i++ {
		e := durEvent(i)
		if err := store.Submit(e); err != nil { // Tee order: store first
			t.Fatal(err)
		}
		if err := j.Submit(e); err != nil {
			t.Fatal(err)
		}
	}
	if j.WAL().Segments() < 3 {
		t.Fatalf("workload did not rotate: %d segments", j.WAL().Segments())
	}
	wrote, err := j.Snapshot(store)
	if err != nil || !wrote {
		t.Fatalf("snapshot: wrote=%v err=%v", wrote, err)
	}
	// Every sealed segment is covered by the snapshot; only the active
	// segment survives compaction.
	if got := j.WAL().Segments(); got != 1 {
		t.Fatalf("segments after compaction = %d, want 1", got)
	}
	idx, at := j.SnapshotInfo()
	if idx != uint64(total) || at.IsZero() {
		t.Fatalf("snapshot info: idx=%d at=%v", idx, at)
	}
	// No new records: the next snapshot is a no-op.
	if wrote, err := j.Snapshot(store); err != nil || wrote {
		t.Fatalf("idle snapshot: wrote=%v err=%v", wrote, err)
	}
	// More events after the snapshot land in the WAL tail.
	for i := total; i < total+10; i++ {
		e := durEvent(i)
		store.Submit(e)
		if err := j.Submit(e); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	restored := NewStore()
	j2, rec, err := OpenDurable(opts, restored)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if rec.SnapshotIndex != uint64(total) || rec.SnapshotRestored != total {
		t.Fatalf("snapshot recovery: %+v", rec)
	}
	if rec.Replayed != 10 {
		t.Fatalf("tail replay = %d, want 10 (%+v)", rec.Replayed, rec)
	}
	if restored.Len() != total+10 {
		t.Fatalf("restored %d events, want %d", restored.Len(), total+10)
	}
	// Appending must continue from the pre-restart index.
	if got := j2.WAL().NextIndex(); got != uint64(total+10+1) {
		t.Fatalf("NextIndex = %d, want %d", got, total+10+1)
	}
}

func TestWALJournalSnapshotOverlapIsIdempotent(t *testing.T) {
	// A snapshot taken while the WAL still holds the same records (no
	// compaction possible: all in the active segment) makes recovery see
	// the data twice. The index check must skip the overlap.
	dir := t.TempDir()
	store := NewStore()
	j, _, err := OpenDurable(wal.Options{Dir: dir}, store)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		e := durEvent(i)
		store.Submit(e)
		if err := j.Submit(e); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := j.Snapshot(store); err != nil {
		t.Fatal(err)
	}
	j.Close()
	restored := NewStore()
	j2, rec, err := OpenDurable(wal.Options{Dir: dir}, restored)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if restored.Len() != 7 {
		t.Fatalf("restored %d events, want 7 (duplicates?)", restored.Len())
	}
	if rec.SnapshotRestored != 7 || rec.Replayed != 0 {
		t.Fatalf("overlap not skipped: %+v", rec)
	}
}

func TestWALJournalFlushIsDurable(t *testing.T) {
	// Flush must honour the legacy Journal contract: after it returns,
	// nothing is pending. Under the default on-batch policy a lone
	// Submit is unsynced until then.
	dir := t.TempDir()
	j, _, err := OpenDurable(wal.Options{Dir: dir}, NewStore())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Submit(durEvent(0)); err != nil {
		t.Fatal(err)
	}
	if j.Pending() != 1 {
		t.Fatalf("pending before Flush = %d, want 1", j.Pending())
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	if j.Pending() != 0 {
		t.Fatalf("pending after Flush = %d, want 0", j.Pending())
	}
}

func TestSnapshotCoverageNeverExceedsDurableTail(t *testing.T) {
	// The review scenario: under a deferred-fsync policy, a snapshot
	// whose coverage index ran ahead of the fsynced tail would — after a
	// crash that loses the page cache — leave the WAL's next index BELOW
	// the snapshot's coverage. Post-restart appends would then reuse
	// covered indices, and the next recovery's skip would silently drop
	// them. Snapshot now syncs before capturing coverage, and OpenDurable
	// skips the WAL forward past the snapshot, so events accepted after
	// the crash must always survive the following restart.
	dir := t.TempDir()
	cfs := faults.NewCrashFS(nil)
	cfs.DiscardUnsynced(true)
	store := NewStore()
	opts := wal.Options{Dir: dir, FS: cfs, Fsync: wal.FsyncInterval, FsyncEvery: time.Hour}
	j, _, err := OpenDurable(opts, store)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		e := durEvent(i)
		store.Submit(e)
		if err := j.Submit(e); err != nil {
			t.Fatal(err)
		}
	}
	if j.Pending() != 5 {
		t.Fatalf("pending = %d, want 5 (interval policy must defer fsync)", j.Pending())
	}
	wrote, err := j.Snapshot(store)
	if err != nil || !wrote {
		t.Fatalf("snapshot: wrote=%v err=%v", wrote, err)
	}
	// Coverage was captured with a sync: nothing the snapshot claims can
	// be lost by the crash below.
	if j.Pending() != 0 {
		t.Fatalf("pending after snapshot = %d, want 0", j.Pending())
	}
	// Crash with page-cache loss on the next write.
	cfs.CrashAfterBytes(0)
	if err := j.Submit(durEvent(5)); err == nil {
		t.Fatal("submit after crash point must fail")
	}

	// Restart 1: the snapshot restores everything; new events must get
	// indices past its coverage.
	restored := NewStore()
	j2, rec, err := OpenDurable(wal.Options{Dir: dir}, restored)
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotIndex != 5 || restored.Len() != 5 {
		t.Fatalf("restart 1: snapIndex=%d len=%d, want 5/5 (%+v)", rec.SnapshotIndex, restored.Len(), rec)
	}
	if got := j2.WAL().NextIndex(); got != 6 {
		t.Fatalf("restart 1: NextIndex = %d, want 6 (must not regress below snapshot coverage)", got)
	}
	for i := 5; i < 8; i++ {
		e := durEvent(i)
		restored.Submit(e)
		if err := j2.Submit(e); err != nil {
			t.Fatal(err)
		}
	}
	j2.Close()

	// Restart 2: the post-crash events must replay — with the old index
	// regression they would have been skipped as snapshot-covered.
	final := NewStore()
	j3, rec3, err := OpenDurable(wal.Options{Dir: dir}, final)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if rec3.Replayed != 3 || final.Len() != 8 {
		t.Fatalf("restart 2: replayed=%d len=%d, want 3/8 (%+v)", rec3.Replayed, final.Len(), rec3)
	}
}

func TestWALJournalDiskFullDegrades(t *testing.T) {
	dir := t.TempDir()
	cfs := faults.NewCrashFS(nil)
	cfs.FailWith(syscall.ENOSPC)
	store := NewStore()
	j, _, err := OpenDurable(wal.Options{Dir: dir, FS: cfs, Fsync: wal.FsyncAlways}, store)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	cfs.CrashAfterBytes(256) // the "disk" has 256 bytes left
	acked := 0
	var full error
	for i := 0; i < 100; i++ {
		if err := j.Submit(durEvent(i)); err != nil {
			full = err
			break
		}
		acked++
	}
	if full == nil || !wal.IsDiskFull(full) {
		t.Fatalf("want ENOSPC after %d acks, got %v", acked, full)
	}
	if !j.DiskFull() {
		t.Fatal("DiskFull must report the condition")
	}
	// The process survives: freeing space lets appends resume and clears
	// the alarm.
	cfs.Refill(1 << 20)
	if err := j.Submit(durEvent(200)); err != nil {
		t.Fatalf("append after refill: %v", err)
	}
	if j.DiskFull() {
		t.Fatal("DiskFull must clear on the next successful append")
	}
}

func TestWALJournalCorruptRecordQuarantined(t *testing.T) {
	dir := t.TempDir()
	store := NewStore()
	j, _, err := OpenDurable(wal.Options{Dir: dir}, store)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := j.Submit(durEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	// Flip a payload bit in the middle of the file: one record fails its
	// CRC, the rest replay.
	info, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := faults.FlipBit(segs[0], info.Size()/2, 1); err != nil {
		t.Fatal(err)
	}
	restored := NewStore()
	j2, rec, err := OpenDurable(wal.Options{Dir: dir}, restored)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Quarantined != 1 || len(rec.QuarantineFiles) != 1 {
		t.Fatalf("quarantine accounting: %+v", rec)
	}
	if restored.Len() != 5 || rec.Replayed != 5 {
		t.Fatalf("recovered %d events (replayed %d), want 5", restored.Len(), rec.Replayed)
	}
	side1, err := os.ReadFile(rec.QuarantineFiles[0])
	if err != nil {
		t.Fatal(err)
	}
	j2.Close()
	// A second recovery produces a byte-identical sidecar: quarantine
	// contents are a pure function of the segment.
	j3, rec3, err := OpenDurable(wal.Options{Dir: dir}, NewStore())
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	side2, err := os.ReadFile(rec3.QuarantineFiles[0])
	if err != nil {
		t.Fatal(err)
	}
	if string(side1) != string(side2) {
		t.Fatalf("quarantine sidecar not deterministic: %d vs %d bytes", len(side1), len(side2))
	}
}

func TestWALJournalMetrics(t *testing.T) {
	dir := t.TempDir()
	store := NewStore()
	j, _, err := OpenDurable(wal.Options{Dir: dir}, store)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	reg := obs.NewRegistry()
	j.RegisterMetrics(reg)
	vals := reg.Values()
	for _, name := range []string{
		"qtag_journal_events", "qtag_journal_pending",
		"qtag_wal_segments", "qtag_wal_active_segment_bytes",
		"qtag_wal_appended_total", "qtag_wal_syncs_total",
		"qtag_wal_rotations_total", "qtag_wal_append_errors_total",
		"qtag_wal_disk_full", "qtag_wal_recovery_seconds",
		"qtag_wal_recovery_segments", "qtag_wal_recovery_records",
		"qtag_wal_quarantined_records_total", "qtag_wal_replay_skipped_total",
		"qtag_wal_snapshots_total", "qtag_wal_compacted_segments_total",
		"qtag_wal_snapshot_age_seconds",
	} {
		if _, ok := vals[name]; !ok {
			t.Fatalf("metric %s missing (have %v)", name, vals)
		}
	}
	if vals["qtag_wal_snapshot_age_seconds"] != -1 {
		t.Fatalf("snapshot age before any snapshot = %v, want -1", vals["qtag_wal_snapshot_age_seconds"])
	}
	e := durEvent(0)
	store.Submit(e)
	j.Submit(e)
	if _, err := j.Snapshot(store); err != nil {
		t.Fatal(err)
	}
	vals = reg.Values()
	if vals["qtag_wal_snapshots_total"] != 1 {
		t.Fatalf("snapshots_total = %v", vals["qtag_wal_snapshots_total"])
	}
	if age := vals["qtag_wal_snapshot_age_seconds"]; age < 0 || age > 60 {
		t.Fatalf("snapshot age = %v", age)
	}
	if vals["qtag_wal_appended_total"] != 1 || vals["qtag_journal_events"] != 1 {
		t.Fatalf("append counters: %v", vals)
	}
}

func TestReplayWALDirReadOnly(t *testing.T) {
	dir := t.TempDir()
	store := NewStore()
	j, _, err := OpenDurable(wal.Options{Dir: dir, SegmentBytes: 512}, store)
	if err != nil {
		t.Fatal(err)
	}
	const total = 20
	for i := 0; i < total; i++ {
		e := durEvent(i)
		store.Submit(e)
		if err := j.Submit(e); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := j.Snapshot(store); err != nil {
		t.Fatal(err)
	}
	for i := total; i < total+5; i++ {
		e := durEvent(i)
		store.Submit(e)
		if err := j.Submit(e); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Corrupt one record in the tail segment.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	last := segs[len(segs)-1]
	info, _ := os.Stat(last)
	if err := faults.FlipBit(last, info.Size()-3, 0); err != nil {
		t.Fatal(err)
	}

	sink := NewStore()
	rec, err := ReplayWALDir(dir, sink)
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotRestored != total {
		t.Fatalf("snapshot restored %d, want %d (%+v)", rec.SnapshotRestored, total, rec)
	}
	if rec.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1 (%+v)", rec.Quarantined, rec)
	}
	if sink.Len() != total+4 {
		t.Fatalf("replayed into %d events, want %d", sink.Len(), total+4)
	}
	// Read-only: the scan must not have created quarantine sidecars or
	// modified the directory.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".quarantine") {
			t.Fatalf("read-only replay wrote %s", e.Name())
		}
	}
	// A missing directory replays to nothing, without error.
	rec, err = ReplayWALDir(filepath.Join(dir, "nope"), NewStore())
	if err != nil || rec.Records != 0 || rec.SnapshotRestored != 0 {
		t.Fatalf("missing dir: %+v %v", rec, err)
	}
}

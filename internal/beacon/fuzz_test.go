package beacon

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"qtag/internal/wal"
)

// FuzzDecodeEvents hardens the HTTP ingest path: arbitrary request bodies
// must never panic, and whatever decodes must survive validation or be
// rejected cleanly.
func FuzzDecodeEvents(f *testing.F) {
	f.Add(`{"impression_id":"a","campaign_id":"c","type":"served"}`)
	f.Add(`[{"impression_id":"a","campaign_id":"c","source":"qtag","type":"loaded"}]`)
	f.Add(`[]`)
	f.Add(``)
	f.Add(`not json`)
	f.Add(`{"type":"bogus","seq":-1}`)
	f.Add(`[{},{},{}]`)
	f.Add(`{"impression_id":"` + strings.Repeat("x", 1000) + `"}`)
	f.Add("[{\"impression_id\":\"\\u0000\"}]")
	f.Fuzz(func(t *testing.T, body string) {
		events, err := decodeEvents([]byte(body))
		if err != nil {
			return
		}
		store := NewStore()
		for _, e := range events {
			_ = store.Submit(e) // must not panic; invalid events error cleanly
		}
	})
}

// FuzzJournalReplay hardens journal recovery: any byte soup replays
// without panicking, and whatever is accepted round-trips.
func FuzzJournalReplay(f *testing.F) {
	valid, _ := json.Marshal(Event{ImpressionID: "a", CampaignID: "c", Type: EventServed})
	f.Add(string(valid) + "\n")
	f.Add(string(valid) + "\ngarbage\n" + string(valid))
	f.Add("\n\n\n")
	f.Add(strings.Repeat("{", 100))
	f.Fuzz(func(t *testing.T, journal string) {
		store := NewStore()
		st, err := ReplayJournal(strings.NewReader(journal), store)
		if err != nil {
			return
		}
		if st.Replayed != store.Len() {
			// Replays can only differ when the journal contains duplicate
			// idempotency keys; re-replaying must then be a no-op.
			st2, _ := ReplayJournal(strings.NewReader(journal), store)
			if store.Len() > st.Replayed || st2.Replayed != st.Replayed {
				t.Fatalf("replay accounting inconsistent: %+v then %+v, store %d",
					st, st2, store.Len())
			}
		}
	})
}

// FuzzEventKeyUniqueness: events differing in any identity field must
// have distinct idempotency keys.
func FuzzEventKeyUniqueness(f *testing.F) {
	f.Add("a", "c", "qtag", "in-view", 0, "b", "c", "qtag", "in-view", 0)
	f.Add("a", "c", "", "served", 0, "a", "c", "", "served", 1)
	f.Fuzz(func(t *testing.T, imp1, camp1, src1, typ1 string, seq1 int,
		imp2, camp2, src2, typ2 string, seq2 int) {
		e1 := Event{ImpressionID: imp1, CampaignID: camp1, Source: Source(src1), Type: EventType(typ1), Seq: seq1}
		e2 := Event{ImpressionID: imp2, CampaignID: camp2, Source: Source(src2), Type: EventType(typ2), Seq: seq2}
		identical := imp1 == imp2 && camp1 == camp2 && src1 == src2 && typ1 == typ2 && seq1 == seq2
		sep := !strings.Contains(imp1+imp2+camp1+camp2+src1+src2+typ1+typ2, "|")
		if !identical && sep && e1.Key() == e2.Key() {
			t.Fatalf("distinct events share key %q", e1.Key())
		}
		if identical && e1.Key() != e2.Key() {
			t.Fatal("identical events with distinct keys")
		}
	})
}

// FuzzWALRecord hardens the WAL record codec under the beacon payloads
// it carries: every payload must round-trip exactly, arbitrary bytes
// must decode without panicking and only ever self-consistently, and a
// single flipped bit in a valid frame must never validate as the
// original record.
func FuzzWALRecord(f *testing.F) {
	valid, _ := json.Marshal(Event{ImpressionID: "a", CampaignID: "c", Type: EventServed})
	f.Add(valid, []byte{}, uint(0))
	f.Add([]byte(""), []byte{0, 1, 2, 3}, uint(3))
	f.Add([]byte("payload"), []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, uint(17))
	f.Add(bytes.Repeat([]byte{0}, 300), valid, uint(64))
	f.Fuzz(func(t *testing.T, payload, soup []byte, flip uint) {
		// Round-trip: encode → decode yields the payload back, even with
		// trailing bytes (the next record, or a torn tail) behind it.
		frame := wal.EncodeRecord(nil, payload)
		got, n, err := wal.DecodeRecord(append(append([]byte{}, frame...), soup...), 0)
		if err != nil || n != len(frame) || !bytes.Equal(got, payload) {
			t.Fatalf("round trip: n=%d err=%v got %d bytes, want %d", n, err, len(got), len(payload))
		}

		// Arbitrary byte soup: decoding must not panic, and a successful
		// decode must be self-consistent — re-encoding the payload
		// reproduces the exact consumed frame.
		if sp, sn, serr := wal.DecodeRecord(soup, 0); serr == nil {
			if sn < wal.RecordHeaderSize || sn > len(soup) {
				t.Fatalf("decode consumed %d of %d bytes", sn, len(soup))
			}
			if re := wal.EncodeRecord(nil, sp); !bytes.Equal(re, soup[:sn]) {
				t.Fatalf("decoded frame does not re-encode to itself")
			}
		}

		// Single-bit corruption: CRC32C catches every 1-bit error in the
		// payload or checksum, and a length flip reframes the record — in
		// no case may the corrupted frame decode to the original payload.
		if len(frame) > 0 {
			bit := flip % uint(len(frame)*8)
			frame[bit/8] ^= 1 << (bit % 8)
			if cp, _, cerr := wal.DecodeRecord(frame, 0); cerr == nil && bytes.Equal(cp, payload) {
				t.Fatalf("bit %d flip went undetected", bit)
			}
		}
	})
}

func TestDecodeEventsLargeBatch(t *testing.T) {
	var events []Event
	for i := 0; i < 500; i++ {
		events = append(events, Event{
			ImpressionID: strings.Repeat("i", i%20+1),
			CampaignID:   "c",
			Type:         EventServed,
			Seq:          i,
		})
	}
	body, err := json.Marshal(events)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeEvents(body)
	if err != nil || len(got) != 500 {
		t.Fatalf("decoded %d, err %v", len(got), err)
	}
	if !bytes.Equal([]byte(got[0].CampaignID), []byte("c")) {
		t.Error("content mangled")
	}
}

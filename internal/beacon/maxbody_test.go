package beacon

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestHandleEventsOversizedBody pins the body-size limit contract: a
// POST over the limit is refused with 413, the store is untouched, the
// rejection is counted on its own metric (not as a validation reject),
// and a right-sized request still works afterwards.
func TestHandleEventsOversizedBody(t *testing.T) {
	store := NewStore()
	srv := NewServer(store)
	srv.SetMaxBodyBytes(1024)

	var batch []Event
	for i := 0; len(batch) < 64; i++ {
		batch = append(batch, Event{
			ImpressionID: fmt.Sprintf("imp-big-%03d", i),
			CampaignID:   "camp-1",
			Source:       SourceQTag,
			Type:         EventLoaded,
			At:           time.Unix(1500000000, 0).UTC(),
		})
	}
	big, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(big) <= 1024 {
		t.Fatalf("test batch is only %d bytes, need > 1024", len(big))
	}

	rr := httptest.NewRecorder()
	srv.ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/v1/events", bytes.NewReader(big)))
	if rr.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d, want 413 (body: %s)", rr.Code, rr.Body.String())
	}
	if !strings.Contains(rr.Body.String(), "exceeds 1024 bytes") {
		t.Fatalf("413 body does not name the limit: %s", rr.Body.String())
	}
	if store.Len() != 0 {
		t.Fatalf("oversized request reached the store: %d events", store.Len())
	}
	if got := srv.Oversized(); got != 1 {
		t.Fatalf("Oversized() = %d, want 1", got)
	}
	if got := srv.Rejected(); got != 0 {
		t.Fatalf("oversized must not count as a validation reject, Rejected() = %d", got)
	}

	// The counter must surface on /metrics under its own name.
	mr := httptest.NewRecorder()
	srv.ServeHTTP(mr, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if !strings.Contains(mr.Body.String(), "qtag_ingest_oversized_total 1") {
		t.Fatalf("/metrics missing qtag_ingest_oversized_total 1:\n%s", mr.Body.String())
	}

	// A request within the limit still lands.
	small, _ := json.Marshal(batch[0])
	ok := httptest.NewRecorder()
	srv.ServeHTTP(ok, httptest.NewRequest(http.MethodPost, "/v1/events", bytes.NewReader(small)))
	if ok.Code != http.StatusAccepted {
		t.Fatalf("in-limit body after a 413 = %d, want 202", ok.Code)
	}
	if store.Len() != 1 {
		t.Fatalf("store has %d events, want 1", store.Len())
	}

	// n <= 0 restores the default limit; the big batch now fits.
	srv.SetMaxBodyBytes(0)
	again := httptest.NewRecorder()
	srv.ServeHTTP(again, httptest.NewRequest(http.MethodPost, "/v1/events", bytes.NewReader(big)))
	if again.Code != http.StatusAccepted {
		t.Fatalf("default-limit body = %d, want 202", again.Code)
	}
}

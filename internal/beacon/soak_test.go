// Concurrency soak: the full HTTP ingest stack — sharded store, WAL
// with group commit, fsync=always — hammered by concurrent clients, then
// reconciled three ways: accepted counters vs store contents vs a replay
// of the WAL directory. Runs in `make ci` under the race detector (the
// soak target), which is what actually proves the sharded Submit path
// and the committer handoff are data-race free.
package beacon_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	. "qtag/internal/beacon"
	"qtag/internal/wal"
)

// soakEvent is the w-th worker's i-th event; all keys distinct.
func soakEvent(w, i int) Event {
	return Event{
		ImpressionID: fmt.Sprintf("soak-w%d-i%04d", w, i),
		CampaignID:   fmt.Sprintf("camp-%d", w%3),
		Source:       SourceQTag,
		Type:         EventInView,
		At:           time.Unix(1600000000+int64(i), 0).UTC(),
	}
}

// TestIngestSoakWALGroupCommit drives goroutines × events of mixed
// single/batch POSTs through a real HTTP server with the WAL on the
// request path (fsync=always, group commit), plus a duplicate pass, and
// asserts exact accounting end to end.
func TestIngestSoakWALGroupCommit(t *testing.T) {
	const (
		workers   = 8
		perWorker = 150
	)
	dir := t.TempDir()
	store := NewStoreWithShards(16)
	wj, _, err := OpenDurable(wal.Options{
		Dir:         dir,
		Fsync:       wal.FsyncAlways,
		GroupCommit: true,
	}, store)
	if err != nil {
		t.Fatal(err)
	}
	if rec := wj.Recovery(); rec.Replayed != 0 {
		t.Fatalf("fresh dir replayed %d events", rec.Replayed)
	}
	server := NewServerWithSink(store, Tee(store, wj))
	srv := httptest.NewServer(server)
	defer srv.Close()

	client := &http.Client{Timeout: 30 * time.Second}
	post := func(body []byte) error {
		resp, err := client.Post(srv.URL+"/v1/events", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		return nil
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; {
				if i%10 == 0 && i+5 <= perWorker {
					// Every tenth step: a 5-event batch.
					batch := make([]Event, 0, 5)
					for k := 0; k < 5; k++ {
						batch = append(batch, soakEvent(w, i+k))
					}
					body, _ := json.Marshal(batch)
					if err := post(body); err != nil {
						errs <- fmt.Errorf("worker %d batch at %d: %w", w, i, err)
						return
					}
					i += 5
					continue
				}
				body, _ := json.Marshal(soakEvent(w, i))
				if err := post(body); err != nil {
					errs <- fmt.Errorf("worker %d event %d: %w", w, i, err)
					return
				}
				i++
			}
			// Duplicate pass: re-send this worker's first 20 events; the
			// store and the replay must both absorb them.
			for i := 0; i < 20; i++ {
				body, _ := json.Marshal(soakEvent(w, i))
				if err := post(body); err != nil {
					errs <- fmt.Errorf("worker %d dup %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	total := workers * perWorker
	if got := store.Len(); got != total {
		t.Fatalf("store holds %d events, want %d", got, total)
	}
	if got := server.Accepted(); got != int64(total+workers*20) {
		t.Fatalf("accepted = %d, want %d (duplicates are accepted, then absorbed)", got, total+workers*20)
	}
	if got := server.Rejected(); got != 0 {
		t.Fatalf("rejected = %d, want 0", got)
	}
	if wj.WAL().GroupCommits() == 0 {
		t.Fatal("soak never exercised the group committer")
	}
	if err := wj.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart reconciliation: replaying the WAL reproduces the store.
	restored := NewStore()
	rec, err := ReplayWALDir(dir, restored)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != total {
		t.Fatalf("replay restored %d events, want %d (%+v)", restored.Len(), total, rec)
	}
	if !bytes.Equal(EncodeStoreSnapshot(restored), EncodeStoreSnapshot(store)) {
		t.Fatal("replayed state diverges from the live store")
	}
}

// TestMergedReadsUnderSoak exercises the merged read paths (/healthz,
// /metrics, stats, snapshot serialization) concurrently with sharded
// writes — the reader/writer interleaving the per-shard RWMutex must
// survive under -race, with reads always observing a consistent
// (monotonic) event count.
func TestMergedReadsUnderSoak(t *testing.T) {
	store := NewStoreWithShards(8)
	wj, _, err := OpenDurable(wal.Options{Dir: t.TempDir(), GroupCommit: true}, store)
	if err != nil {
		t.Fatal(err)
	}
	server := NewServerWithSink(store, Tee(store, wj))
	wj.RegisterMetrics(server.Metrics())
	srv := httptest.NewServer(server)
	defer srv.Close()

	const (
		writers   = 4
		perWriter = 1500
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				e := soakEvent(w+100, i)
				if err := store.Submit(e); err != nil {
					t.Error(err)
					return
				}
				if err := wj.Submit(e); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	writersDone := make(chan struct{})
	go func() { wg.Wait(); close(writersDone) }()

	client := &http.Client{Timeout: 10 * time.Second}
	last := 0
	running := true
	for i := 0; i < 40 || running; i++ {
		select {
		case <-writersDone:
			running = false
		default:
		}
		for _, path := range []string{"/healthz", "/metrics", "/v1/stats"} {
			resp, err := client.Get(srv.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s: status %d", path, resp.StatusCode)
			}
		}
		if n := store.Len(); n < last {
			t.Fatalf("store shrank during soak: %d -> %d", last, n)
		} else {
			last = n
		}
		_ = EncodeStoreSnapshot(store) // snapshot serialization vs live writes
		_ = store.Counters()
		_ = store.CampaignIDs()
	}
	if err := wj.Close(); err != nil {
		t.Fatal(err)
	}
	if got := store.Len(); got != writers*perWriter {
		t.Fatalf("store holds %d events, want %d", got, writers*perWriter)
	}
}

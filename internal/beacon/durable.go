package beacon

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"qtag/internal/obs"
	"qtag/internal/wal"
)

// DurableRecovery is the full boot-time recovery accounting: the WAL
// scan result plus what the snapshot contributed and how the replayed
// payloads decoded.
type DurableRecovery struct {
	wal.RecoverResult

	// SnapshotIndex is the WAL record index the restored snapshot covers
	// (0 when no snapshot was found).
	SnapshotIndex uint64
	// SnapshotRestored counts events rebuilt from the snapshot payload.
	SnapshotRestored int
	// SnapshotSkipped counts malformed lines inside the snapshot payload
	// (should be zero — the payload is checksummed).
	SnapshotSkipped int
	// CorruptSnapshots counts snapshot files that failed validation and
	// were skipped in favour of an older snapshot or a full replay.
	CorruptSnapshots int
	// Replayed counts WAL records decoded and submitted to the store.
	Replayed int
	// ReplaySkipped counts WAL records whose payload passed the CRC but
	// did not decode into a valid event; they are counted, not fatal.
	ReplaySkipped int
}

// WALJournal is the Journal API layered on the segmented WAL: a
// Sink/BatchSink whose records are binary-codec-encoded events
// (DESIGN.md §16), giving the collection server crash-safe durability.
// Replay dispatches on the payload's version tag, so directories
// written by pre-binary versions — whose records are JSONL events —
// replay unchanged, and qtag-replay reads both. Snapshots stay JSONL
// either way: they are line-framed store dumps, not per-event records.
// It is safe for concurrent use.
type WALJournal struct {
	w   *wal.WAL
	fs  wal.FS
	dir string
	now func() time.Time

	recovery DurableRecovery // immutable after OpenDurable

	mu        sync.Mutex
	snapIndex uint64
	snapAt    time.Time

	snapshots atomic.Int64
	compacted atomic.Int64

	// Group-commit instrumentation, populated by the WAL's CommitObserver
	// hook (always collected; registering on an obs.Registry exports it).
	commitBatch   *obs.Histogram
	commitLatency *obs.Histogram
}

// EncodeStoreSnapshot serializes the store's full event set as JSONL —
// the snapshot payload. Snapshots carry complete events (not just
// counters) so a restored store retains its whole dedup map, which is
// what makes replaying a WAL region that overlaps the snapshot
// idempotent, and therefore makes compaction safe.
func EncodeStoreSnapshot(store *Store) []byte {
	var buf bytes.Buffer
	for _, e := range store.Events() {
		line, err := json.Marshal(e)
		if err != nil {
			continue // events in the store have already validated
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// OpenDurable recovers the WAL directory into the store and returns a
// WALJournal positioned to append: newest valid snapshot first, then
// every WAL record past the snapshot's coverage. Corrupt snapshots,
// quarantined records and undecodable payloads are counted in the
// returned DurableRecovery, never fatal — the only hard errors are I/O
// failures that leave the directory unusable.
func OpenDurable(opts wal.Options, store *Store) (*WALJournal, DurableRecovery, error) {
	var rec DurableRecovery
	commitBatch := obs.NewHistogram(obs.SizeBuckets...)
	commitLatency := obs.NewHistogram(obs.LatencyBuckets...)
	if opts.GroupCommit && opts.CommitObserver == nil {
		opts.CommitObserver = func(records int, latency time.Duration) {
			commitBatch.Observe(float64(records))
			commitLatency.ObserveDuration(latency)
		}
	}
	snap, corrupt, err := wal.LoadSnapshot(opts.FS, opts.Dir)
	if err != nil {
		return nil, rec, err
	}
	rec.CorruptSnapshots = corrupt
	var snapAt time.Time
	if snap != nil {
		st, err := ReplayJournal(bytes.NewReader(snap.Payload), store)
		if err != nil {
			return nil, rec, fmt.Errorf("beacon: replay snapshot: %w", err)
		}
		rec.SnapshotIndex = snap.LastIndex
		rec.SnapshotRestored = st.Replayed
		rec.SnapshotSkipped = st.Skipped
		snapAt = snap.CreatedAt
	}
	replay := func(index uint64, payload []byte) error {
		if index <= rec.SnapshotIndex {
			return nil // already covered by the snapshot
		}
		e, err := DecodeStoredEvent(payload)
		if err != nil {
			rec.ReplaySkipped++
			return nil
		}
		if err := store.Submit(e); err != nil {
			rec.ReplaySkipped++
			return nil
		}
		rec.Replayed++
		return nil
	}
	w, res, err := wal.Open(opts, replay)
	if err != nil {
		return nil, rec, err
	}
	rec.RecoverResult = res
	// Recovery can leave the WAL's next index below the snapshot's
	// coverage (truncated torn tail, quarantined final segment). New
	// appends must never reuse covered indices — the replay skip above
	// would silently drop them on the next boot — so skip forward past
	// the snapshot before accepting events.
	if err := w.SkipTo(rec.SnapshotIndex + 1); err != nil {
		w.Close()
		return nil, rec, fmt.Errorf("beacon: advance wal past snapshot: %w", err)
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	j := &WALJournal{
		w:             w,
		fs:            opts.FS,
		dir:           opts.Dir,
		now:           now,
		recovery:      rec,
		snapIndex:     rec.SnapshotIndex,
		snapAt:        snapAt,
		commitBatch:   commitBatch,
		commitLatency: commitLatency,
	}
	return j, rec, nil
}

// Submit implements Sink: the event becomes one binary-codec WAL
// record, encoded into a pooled buffer. The WAL blocks until the
// record is written (group commit releases callers only after their
// group's write), so returning the buffer to the pool afterwards is
// safe.
func (j *WALJournal) Submit(e Event) error {
	if err := e.Validate(); err != nil {
		return err
	}
	buf := getEncBuf()
	payload := AppendBinaryEvent((*buf)[:0], e)
	err := j.w.Append(payload)
	*buf = payload[:0]
	putEncBuf(buf)
	return err
}

// SubmitBatch implements BatchSink: the batch lands as consecutive WAL
// records in a single write, synced per the WAL's fsync policy. All
// records encode into one pooled buffer (sliced per event afterwards —
// appending first would invalidate earlier slices on growth). A
// failed batch may leave a prefix behind; retrying callers re-append
// the whole batch, which is safe because replay feeds an idempotent
// store.
func (j *WALJournal) SubmitBatch(events []Event) error {
	buf := getEncBuf()
	defer putEncBuf(buf)
	b := (*buf)[:0]
	offsets := make([]int, len(events)+1)
	for i, e := range events {
		if err := e.Validate(); err != nil {
			return err
		}
		b = AppendBinaryEvent(b, e)
		offsets[i+1] = len(b)
	}
	*buf = b[:0]
	payloads := make([][]byte, len(events))
	for i := range events {
		payloads[i] = b[offsets[i]:offsets[i+1]]
	}
	return j.w.AppendBatch(payloads)
}

// Snapshot serializes the store, publishes it as a WAL snapshot and
// compacts the segments it covers. It returns whether a snapshot was
// actually written — when no records arrived since the last one it is
// a no-op. The coverage index is captured before the store is encoded:
// events reach the store before the WAL (Tee order), so every record
// at or below that index is already reflected in the encoded state.
// The WAL is synced first and the index captured atomically with the
// sync, so coverage never exceeds the durable tail — a crash right
// after the snapshot must not leave it claiming records the WAL lost.
func (j *WALJournal) Snapshot(store *Store) (bool, error) {
	last, err := j.w.SyncIndex()
	if err != nil {
		return false, err
	}
	j.mu.Lock()
	unchanged := last == j.snapIndex
	j.mu.Unlock()
	if unchanged {
		return false, nil
	}
	payload := EncodeStoreSnapshot(store)
	at := j.now()
	if _, err := wal.WriteSnapshot(j.fs, j.dir, last, at, payload); err != nil {
		return false, err
	}
	removed, cerr := j.w.Compact(last)
	j.mu.Lock()
	j.snapIndex = last
	j.snapAt = at
	j.mu.Unlock()
	j.snapshots.Add(1)
	j.compacted.Add(int64(removed))
	return true, cerr
}

// SnapshotInfo returns the coverage index and creation time of the
// newest snapshot (zero values when none exists yet).
func (j *WALJournal) SnapshotInfo() (uint64, time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapIndex, j.snapAt
}

// Recovery returns the boot-time recovery accounting.
func (j *WALJournal) Recovery() DurableRecovery { return j.recovery }

// WAL exposes the underlying journal for telemetry and tests.
func (j *WALJournal) WAL() *wal.WAL { return j.w }

// Len returns the number of events appended since startup (compatible
// with Journal.Len).
func (j *WALJournal) Len() int { return int(j.w.Appended()) }

// Pending returns the number of events appended but not yet fsynced —
// the window a crash can lose, and the overload guard's backlog signal.
func (j *WALJournal) Pending() int { return j.w.Pending() }

// Flush forces everything appended so far to stable storage — the same
// durability contract as Journal.Flush. Under the batch/interval fsync
// policies this is what drains Pending to zero.
func (j *WALJournal) Flush() error { return j.w.Sync() }

// Sync forces everything appended so far to stable storage.
func (j *WALJournal) Sync() error { return j.w.Sync() }

// SetFsyncPolicy switches the underlying WAL's durability policy at
// runtime (disk-watermark degradation: always → batch under low space).
func (j *WALJournal) SetFsyncPolicy(p wal.FsyncPolicy) { j.w.SetFsyncPolicy(p) }

// FsyncPolicy reports the WAL's currently active durability policy.
func (j *WALJournal) FsyncPolicy() wal.FsyncPolicy { return j.w.FsyncPolicyNow() }

// DiskFull reports whether the most recent append or sync hit an
// out-of-space error.
func (j *WALJournal) DiskFull() bool { return j.w.DiskFull() }

// Close syncs and closes the WAL. Close is idempotent.
func (j *WALJournal) Close() error { return j.w.Close() }

// RegisterMetrics exports the durability counters: the compatibility
// pair the plain Journal exposed, plus the WAL lifecycle, recovery,
// quarantine and snapshot series the /metrics contract requires.
func (j *WALJournal) RegisterMetrics(r *obs.Registry) {
	r.GaugeFunc("qtag_journal_pending", "Events accepted since the last fsync — the durability backlog.",
		func() float64 { return float64(j.Pending()) })
	r.GaugeFunc("qtag_journal_events", "Events written to the journal since startup.",
		func() float64 { return float64(j.Len()) })

	r.GaugeFunc("qtag_wal_segments", "Live WAL segment files (sealed + active).",
		func() float64 { return float64(j.w.Segments()) })
	r.GaugeFunc("qtag_wal_active_segment_bytes", "Size of the active WAL segment.",
		func() float64 { return float64(j.w.ActiveSegmentBytes()) })
	r.CounterFunc("qtag_wal_appended_total", "WAL records appended since startup.", j.w.Appended)
	r.CounterFunc("qtag_wal_syncs_total", "Successful WAL fsyncs since startup.", j.w.Syncs)
	r.CounterFunc("qtag_wal_rotations_total", "WAL segment rotations since startup.", j.w.Rotations)
	r.CounterFunc("qtag_wal_append_errors_total", "Failed WAL appends since startup.", j.w.AppendErrors)
	r.GaugeFunc("qtag_wal_disk_full", "1 while the WAL is hitting out-of-space errors, else 0.",
		func() float64 {
			if j.w.DiskFull() {
				return 1
			}
			return 0
		})

	rec := j.recovery
	r.GaugeFunc("qtag_wal_recovery_seconds", "Wall time of the boot-time WAL recovery.",
		func() float64 { return rec.Duration.Seconds() })
	r.GaugeFunc("qtag_wal_recovery_segments", "Segments scanned during boot-time recovery.",
		func() float64 { return float64(rec.Segments) })
	r.GaugeFunc("qtag_wal_recovery_records", "Records replayed during boot-time recovery (snapshot events included).",
		func() float64 { return float64(rec.Records + rec.SnapshotRestored) })
	r.GaugeFunc("qtag_wal_quarantined_records_total", "Corrupted chunks quarantined by boot-time recovery.",
		func() float64 { return float64(rec.Quarantined) })
	r.GaugeFunc("qtag_wal_replay_skipped_total", "WAL records that passed the CRC but did not decode into valid events.",
		func() float64 { return float64(rec.ReplaySkipped + rec.SnapshotSkipped) })

	r.GaugeFunc("qtag_wal_group_commit_enabled", "1 when WAL appends go through the group committer, else 0.",
		func() float64 {
			if j.w.GroupCommitEnabled() {
				return 1
			}
			return 0
		})
	r.CounterFunc("qtag_wal_group_commits_total", "Successful WAL group commits since startup.", j.w.GroupCommits)
	r.GaugeFunc("qtag_wal_group_commit_queue", "Callers currently waiting on the group committer.",
		func() float64 { return float64(j.w.GroupQueueDepth()) })
	r.RegisterHistogram("qtag_wal_group_commit_batch_size", "Records coalesced per WAL group commit.", j.commitBatch)
	r.RegisterHistogram("qtag_wal_group_commit_latency_seconds", "Enqueue-to-durable latency per WAL group commit.", j.commitLatency)

	r.CounterFunc("qtag_wal_snapshots_total", "Snapshots written since startup.", j.snapshots.Load)
	r.CounterFunc("qtag_wal_compacted_segments_total", "Sealed segments retired by compaction since startup.", j.compacted.Load)
	r.GaugeFunc("qtag_wal_snapshot_age_seconds", "Age of the newest snapshot; -1 when none exists.",
		func() float64 {
			_, at := j.SnapshotInfo()
			if at.IsZero() {
				return -1
			}
			return j.now().Sub(at).Seconds()
		})
}

// ReplayWALDir is the read-only replay used by qtag-replay: it rebuilds
// state from a WAL directory — newest valid snapshot, then every record
// past its coverage — without truncating, quarantining or creating
// anything, so it is safe to point at a live or crashed server's
// directory.
func ReplayWALDir(dir string, sink Sink) (DurableRecovery, error) {
	var rec DurableRecovery
	snap, corrupt, err := wal.LoadSnapshot(nil, dir)
	if err != nil {
		return rec, err
	}
	rec.CorruptSnapshots = corrupt
	if snap != nil {
		st, err := ReplayJournal(bytes.NewReader(snap.Payload), sink)
		if err != nil {
			return rec, fmt.Errorf("beacon: replay snapshot: %w", err)
		}
		rec.SnapshotIndex = snap.LastIndex
		rec.SnapshotRestored = st.Replayed
		rec.SnapshotSkipped = st.Skipped
	}
	res, err := wal.Scan(nil, dir, func(index uint64, payload []byte) error {
		if index <= rec.SnapshotIndex {
			return nil
		}
		e, uerr := DecodeStoredEvent(payload)
		if uerr != nil {
			rec.ReplaySkipped++
			return nil
		}
		if serr := sink.Submit(e); serr != nil {
			rec.ReplaySkipped++
			return nil
		}
		rec.Replayed++
		return nil
	})
	rec.RecoverResult = res
	return rec, err
}

package beacon

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qtag/internal/admission"
	"qtag/internal/obs"
)

// Server is the HTTP collection endpoint tags send beacons to — the
// "monitoring server" of §3. It exposes:
//
//	POST /v1/events              ingest one event or a JSON array of events
//	GET  /v1/stats               global measured/viewability rates per source
//	GET  /v1/campaigns/{id}/stats  per-campaign rates
//	GET  /healthz                liveness probe
//	GET  /readyz                 readiness probe (see SetReadiness)
//
// Ingestion is idempotent (see Store.Submit), so tags may retry beacons
// freely.
type Server struct {
	store     *Store
	sink      Sink
	mux       *http.ServeMux
	accepted  atomic.Int64
	rejected  atomic.Int64
	oversized atomic.Int64
	doomed    atomic.Int64 // requests refused because their budget was already spent
	maxBody   atomic.Int64 // request-body cap for POST /v1/events

	// reg is the server's metrics registry, exported at GET /metrics in
	// Prometheus text format. The ingest counters above are registered on
	// it at construction; /healthz stays a thin JSON view over the same
	// instruments.
	reg           *obs.Registry
	ingestLatency *obs.Histogram
	now           func() time.Time

	// tracer is the distributed tracer for ingest requests; nil (the
	// default) keeps the pre-tracing behavior: latency histograms only.
	tracer atomic.Pointer[obs.Tracer]

	healthMu     sync.Mutex
	healthExtras []healthMetric

	readyMu sync.Mutex
	ready   func() error
}

// healthMetric is one operator-registered /healthz gauge.
type healthMetric struct {
	name string
	fn   func() int64
}

// DefaultMaxBodyBytes bounds request bodies; a batch of beacons is
// small, and an unbounded read would let a client exhaust memory.
// Override per server with SetMaxBodyBytes.
const DefaultMaxBodyBytes = 4 << 20

// NewServer wraps a store with the HTTP collection API.
func NewServer(store *Store) *Server { return NewServerWithSink(store, store) }

// NewServerWithSink separates ingestion from aggregation: incoming events
// go to sink (typically Tee(store, journal)) while stats endpoints read
// from store. The sink must (directly or indirectly) feed the store or
// the stats will stay empty.
func NewServerWithSink(store *Store, sink Sink) *Server {
	s := &Server{store: store, sink: sink, mux: http.NewServeMux(), reg: obs.NewRegistry(), now: time.Now}
	s.maxBody.Store(DefaultMaxBodyBytes)
	s.reg.CounterFunc("qtag_ingest_accepted_total", "Events accepted by the collection endpoints.", s.accepted.Load)
	s.reg.CounterFunc("qtag_ingest_rejected_total", "Events refused by validation.", s.rejected.Load)
	s.reg.CounterFunc("qtag_ingest_oversized_total", "Requests refused because the body exceeded the size limit.", s.oversized.Load)
	s.reg.CounterFunc("qtag_ingest_doomed_total", "Requests refused before any WAL work because their deadline budget was already spent.", s.doomed.Load)
	s.reg.GaugeFunc("qtag_store_events", "Distinct events held by the in-memory store.",
		func() float64 { return float64(store.Len()) })
	s.reg.GaugeFunc("qtag_store_campaigns", "Distinct campaigns observed by the store.",
		func() float64 { return float64(len(store.CampaignIDs())) })
	s.ingestLatency = s.reg.Histogram("qtag_ingest_latency_seconds",
		"Wall time spent handling one /v1/events ingestion request.", obs.LatencyBuckets)
	s.mux.HandleFunc("POST /v1/events", s.instrument("ingest.events", s.handleEvents))
	s.mux.HandleFunc("GET /v1/events", s.instrument("ingest.pixel", s.handlePixelEvent))
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/campaigns/{id}/stats", s.handleCampaignStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.Handle("GET /metrics", s.reg.Handler())
	return s
}

// Metrics returns the server's registry so callers can register the rest
// of the pipeline (queue, breaker, journal, overload guard) for export
// on the same GET /metrics endpoint.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// SetClock overrides the server's time source for the handler-latency
// histogram (tests).
func (s *Server) SetClock(now func() time.Time) { s.now = now }

// SetTracer installs the distributed tracer for the ingestion routes.
// Each /v1/events request then runs inside a span that continues the
// caller's traceparent (or roots a new trace), and sampled traces stamp
// their context into every accepted event so downstream hops — queue,
// forwarder, hinted handoff — stay on the same trace. Safe to call
// concurrently with serving; nil uninstalls.
func (s *Server) SetTracer(t *obs.Tracer) { s.tracer.Store(t) }

// instrument wraps an ingestion handler with the handler-latency
// histogram and, when a tracer is installed, a server span named op.
// The span rides the request context (obs.SpanFromContext); sampled
// requests also pin their trace ID to the latency histogram bucket as
// an OpenMetrics exemplar.
func (s *Server) instrument(op string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := s.now()
		tr := s.tracer.Load()
		if tr == nil {
			h(w, r)
			s.ingestLatency.ObserveDuration(s.now().Sub(start))
			return
		}
		sp := tr.StartSpanParent(r.Header.Get(obs.TraceParentHeader), op)
		r.Header.Set(obs.TraceParentHeader, sp.TraceParent())
		w.Header().Set(obs.TraceIDResponseHeader, sp.Context().TraceID.String())
		rec := &responseRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r.WithContext(obs.ContextWithSpan(r.Context(), sp)))
		elapsed := s.now().Sub(start)
		if sp.Sampled() {
			s.ingestLatency.ObserveExemplar(elapsed.Seconds(), sp.Context().TraceID.String(), s.now())
		} else {
			s.ingestLatency.ObserveDuration(elapsed)
		}
		sp.SetAttr("http.status", strconv.Itoa(rec.status))
		if rec.status >= 500 {
			sp.SetError("http status " + strconv.Itoa(rec.status))
		}
		sp.End()
	}
}

// AddHealthMetric registers an extra delivery-health gauge reported in
// the /healthz payload (e.g. overload-guard shed count, journal backlog).
// Stress harnesses assert on these to verify graceful degradation.
//
// AddHealthMetric is safe to call concurrently and after the server has
// started serving: the gauge slice is mutex-guarded against in-flight
// /healthz collections. fn itself must be safe for concurrent use — it
// is invoked from request goroutines.
func (s *Server) AddHealthMetric(name string, fn func() int64) {
	s.healthMu.Lock()
	s.healthExtras = append(s.healthExtras, healthMetric{name: name, fn: fn})
	s.healthMu.Unlock()
}

// handleHealthz reports liveness plus the collector's delivery-health
// counters: stored events, ingestion accept/reject totals, and any
// registered extras.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	payload := map[string]any{
		"status":   "ok",
		"events":   s.store.Len(),
		"accepted": s.accepted.Load(),
		"rejected": s.rejected.Load(),
	}
	s.healthMu.Lock()
	for _, m := range s.healthExtras {
		payload[m.name] = m.fn()
	}
	s.healthMu.Unlock()
	writeJSON(w, http.StatusOK, payload)
}

// SetReadiness installs the readiness check behind GET /readyz.
// Liveness (/healthz) answers "is the process up" and never flips on
// load; readiness answers "should traffic be routed here right now" —
// a load balancer or cluster peer consults it so it never sends
// beacons to a node that would shed them (WAL boot replay still
// running, hinted-handoff drain backlog over its threshold, overload
// shedding active). fn returning nil means ready; a non-nil error is
// reported as the 503 reason. fn must be safe for concurrent use; a
// nil fn (the default) reports always-ready.
//
// SetReadiness is safe to call concurrently and after the server has
// started serving — boot code flips from a "replaying" check to the
// steady-state one once recovery completes.
func (s *Server) SetReadiness(fn func() error) {
	s.readyMu.Lock()
	s.ready = fn
	s.readyMu.Unlock()
}

// handleReadyz reports readiness: 200 when the readiness check passes
// (or none is installed), 503 with the reason otherwise.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	s.readyMu.Lock()
	fn := s.ready
	s.readyMu.Unlock()
	if fn != nil {
		if err := fn(); err != nil {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{
				"status": "unready",
				"reason": err.Error(),
			})
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Mount attaches an additional handler under the server's mux — used to
// co-host the analytics query API (internal/analytics.Handler) with the
// collection endpoints. The pattern follows net/http ServeMux syntax and
// must not collide with the built-in routes.
func (s *Server) Mount(pattern string, h http.Handler) { s.mux.Handle(pattern, h) }

// Accepted returns the number of events ingested since startup.
func (s *Server) Accepted() int64 { return s.accepted.Load() }

// Rejected returns the number of events refused by validation.
func (s *Server) Rejected() int64 { return s.rejected.Load() }

// ingestResponse is the POST /v1/events reply body.
type ingestResponse struct {
	Accepted int    `json:"accepted"`
	Rejected int    `json:"rejected"`
	Error    string `json:"error,omitempty"`
}

// SetMaxBodyBytes overrides the POST /v1/events body-size limit. Safe to
// call concurrently with serving; n <= 0 restores the default.
func (s *Server) SetMaxBodyBytes(n int64) {
	if n <= 0 {
		n = DefaultMaxBodyBytes
	}
	s.maxBody.Store(n)
}

// Oversized returns the number of requests refused for exceeding the
// body-size limit.
func (s *Server) Oversized() int64 { return s.oversized.Load() }

// Doomed returns the number of requests refused because their deadline
// budget was already spent on arrival.
func (s *Server) Doomed() int64 { return s.doomed.Load() }

// handleEvents ingests one event or a JSON array. A batch is applied
// atomically with respect to validation: every event is validated before
// any is submitted, so a malformed or invalid entry rejects the whole
// request (422) and the store is untouched — a retrying client never
// has to reason about which half of its batch landed.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	// Deadline propagation: a client (or forwarding peer) may stamp its
	// remaining per-request budget. A request whose budget is already
	// spent is doomed — the caller has given up — so refuse it here,
	// before any decode, store or WAL work is spent on it. The deadline
	// is re-checked against the server clock only at arrival; in-flight
	// queueing after this point is bounded by the handler itself.
	budget, hasBudget, berr := admission.ParseBudget(r.Header)
	if berr != nil {
		httpError(w, http.StatusBadRequest, berr.Error())
		return
	}
	var deadline time.Time
	if hasBudget {
		if budget <= 0 {
			s.doomed.Add(1)
			httpError(w, http.StatusRequestTimeout, "deadline budget already spent")
			return
		}
		deadline = s.now().Add(budget)
	}
	limit := s.maxBody.Load()
	binary := strings.HasPrefix(r.Header.Get("Content-Type"), BinaryContentType)
	var events []Event
	if binary {
		// Binary path: the request body buffer is the decode arena. It is
		// freshly allocated (never pooled) so the alias-decoded events may
		// outlive the handler — the store retains them, and they pin the
		// buffer via their strings, which is exactly one allocation of
		// string memory per request. The decoder's []Event scratch IS
		// pooled: the store copies event values on Submit, so the slice is
		// free for reuse the moment the handler returns.
		body, rerr := readBinaryBody(w, r, limit)
		if rerr != nil {
			var tooLarge *http.MaxBytesError
			if errors.As(rerr, &tooLarge) {
				s.oversized.Add(1)
				httpError(w, http.StatusRequestEntityTooLarge,
					fmt.Sprintf("body exceeds %d bytes", limit))
				return
			}
			httpError(w, http.StatusBadRequest, "read body: "+rerr.Error())
			return
		}
		dec := batchDecoderPool.Get().(*BatchDecoder)
		defer batchDecoderPool.Put(dec)
		var derr error
		events, derr = dec.Decode(body)
		if derr != nil {
			if errors.Is(derr, ErrBinaryVersion) {
				// A codec version this server does not speak: answer 415 so
				// the client knows to renegotiate (HTTPSink falls back to
				// JSON), distinct from 400 for a corrupt frame it cannot fix.
				httpError(w, http.StatusUnsupportedMediaType, derr.Error())
				return
			}
			httpError(w, http.StatusBadRequest, derr.Error())
			return
		}
	} else {
		// JSON path: json.Unmarshal copies every field out of the body, so
		// the read buffer itself can be pooled and returned immediately.
		buf := bodyBufPool.Get().(*bytes.Buffer)
		defer bodyBufPool.Put(buf)
		buf.Reset()
		if _, rerr := buf.ReadFrom(http.MaxBytesReader(w, r.Body, limit)); rerr != nil {
			var tooLarge *http.MaxBytesError
			if errors.As(rerr, &tooLarge) {
				s.oversized.Add(1)
				httpError(w, http.StatusRequestEntityTooLarge,
					fmt.Sprintf("body exceeds %d bytes", limit))
				return
			}
			httpError(w, http.StatusBadRequest, "read body: "+rerr.Error())
			return
		}
		var derr error
		events, derr = decodeEvents(buf.Bytes())
		if derr != nil {
			httpError(w, http.StatusBadRequest, derr.Error())
			return
		}
	}
	for _, e := range events {
		if verr := e.Validate(); verr != nil {
			s.rejected.Add(int64(len(events)))
			writeJSON(w, http.StatusUnprocessableEntity, ingestResponse{
				Rejected: len(events),
				Error:    verr.Error(),
			})
			return
		}
	}
	if sp := obs.SpanFromContext(r.Context()); sp != nil {
		sp.SetAttr("events", strconv.Itoa(len(events)))
		if len(events) > 0 {
			sp.SetAttr("campaign", events[0].CampaignID)
		}
		// Only sampled traces stamp context into events — unsampled
		// traces would pay propagation cost for spans nobody records.
		if tp := sp.TraceParent(); sp.Sampled() && tp != "" {
			for i := range events {
				if events[i].Trace == "" {
					events[i].Trace = tp
				}
			}
		}
	}
	if !deadline.IsZero() {
		// Carry the remaining budget with each event so downstream hops
		// (cluster forwards) can decrement it — and a last-instant doom
		// check guards the expensive Submit path itself.
		if !deadline.After(s.now()) {
			s.doomed.Add(1)
			httpError(w, http.StatusRequestTimeout, "deadline budget spent before durable apply")
			return
		}
		for i := range events {
			events[i].Deadline = deadline
		}
	}
	resp := ingestResponse{}
	for _, e := range events {
		// Validation passed for the whole batch; a Submit failure here is
		// infrastructure (queue full, journal down), counted per event.
		if err := s.sink.Submit(e); err != nil {
			resp.Rejected++
			resp.Error = err.Error()
			continue
		}
		resp.Accepted++
	}
	s.accepted.Add(int64(resp.Accepted))
	s.rejected.Add(int64(resp.Rejected))
	status := http.StatusAccepted
	if resp.Rejected > 0 && resp.Accepted == 0 {
		status = http.StatusUnprocessableEntity
	}
	writeJSON(w, status, resp)
}

// handlePixelEvent ingests a single event passed as the "e" query
// parameter — the legacy image-pixel fallback path used by the generated
// JavaScript tag in browsers without navigator.sendBeacon. It answers
// with a 1×1 GIF regardless of validation outcome (the requesting <img>
// cannot do anything with an error anyway), but still counts rejects.
func (s *Server) handlePixelEvent(w http.ResponseWriter, r *http.Request) {
	raw := r.URL.Query().Get("e")
	if raw != "" {
		var e Event
		if err := json.Unmarshal([]byte(raw), &e); err == nil && s.sink.Submit(e) == nil {
			s.accepted.Add(1)
		} else {
			s.rejected.Add(1)
		}
	}
	w.Header().Set("Content-Type", "image/gif")
	w.Header().Set("Cache-Control", "no-store")
	_, _ = w.Write(transparentGIF)
}

// transparentGIF is the canonical 1×1 transparent tracking pixel.
var transparentGIF = []byte{
	0x47, 0x49, 0x46, 0x38, 0x39, 0x61, 0x01, 0x00, 0x01, 0x00, 0x80, 0x00,
	0x00, 0x00, 0x00, 0x00, 0xff, 0xff, 0xff, 0x21, 0xf9, 0x04, 0x01, 0x00,
	0x00, 0x00, 0x00, 0x2c, 0x00, 0x00, 0x00, 0x00, 0x01, 0x00, 0x01, 0x00,
	0x00, 0x02, 0x02, 0x44, 0x01, 0x00, 0x3b,
}

// bodyBufPool recycles JSON request-body read buffers. Safe only for
// the JSON path: json.Unmarshal copies, so nothing aliases the buffer
// after decode. The binary path must NOT use it — see readBinaryBody.
var bodyBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// readBinaryBody reads a binary request body into a fresh, exactly
// sized, GC-owned buffer. Fresh is the point: the alias decoder slices
// event strings straight out of this buffer and the store retains
// them, so the buffer's lifetime must be garbage-collector-managed,
// never pool-managed. Content-Length sizes the single allocation;
// chunked bodies fall back to io.ReadAll growth.
func readBinaryBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, error) {
	rd := http.MaxBytesReader(w, r.Body, limit)
	if n := r.ContentLength; n > 0 && n <= limit {
		body := make([]byte, n)
		if _, err := io.ReadFull(rd, body); err != nil {
			return nil, err
		}
		return body, nil
	}
	return io.ReadAll(rd)
}

// decodeEvents accepts either a single JSON event object or a JSON array
// of events.
func decodeEvents(body []byte) ([]Event, error) {
	trimmed := strings.TrimSpace(string(body))
	if trimmed == "" {
		return nil, errors.New("empty body")
	}
	if trimmed[0] == '[' {
		var events []Event
		if err := json.Unmarshal(body, &events); err != nil {
			return nil, fmt.Errorf("decode event array: %w", err)
		}
		return events, nil
	}
	var e Event
	if err := json.Unmarshal(body, &e); err != nil {
		return nil, fmt.Errorf("decode event: %w", err)
	}
	return []Event{e}, nil
}

// SourceStats is the per-solution block of a stats reply.
type SourceStats struct {
	Loaded          int     `json:"loaded"`
	InView          int     `json:"in_view"`
	MeasuredRate    float64 `json:"measured_rate"`
	ViewabilityRate float64 `json:"viewability_rate"`
}

// StatsResponse is the GET stats reply body.
type StatsResponse struct {
	CampaignID string                 `json:"campaign_id,omitempty"`
	Served     int                    `json:"served"`
	Sources    map[string]SourceStats `json:"sources"`
}

func (s *Server) statsFor(campaignID string) StatsResponse {
	resp := StatsResponse{
		CampaignID: campaignID,
		Served:     s.store.Served(campaignID),
		Sources:    make(map[string]SourceStats),
	}
	for _, src := range []Source{SourceQTag, SourceCommercial} {
		loaded := s.store.Loaded(campaignID, src)
		inView := s.store.InView(campaignID, src)
		st := SourceStats{Loaded: loaded, InView: inView}
		if resp.Served > 0 {
			st.MeasuredRate = float64(loaded) / float64(resp.Served)
		}
		if loaded > 0 {
			st.ViewabilityRate = float64(inView) / float64(loaded)
		}
		resp.Sources[string(src)] = st
	}
	return resp
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.statsFor(""))
}

func (s *Server) handleCampaignStats(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if id == "" {
		httpError(w, http.StatusBadRequest, "missing campaign id")
		return
	}
	resp := s.statsFor(id)
	if resp.Served == 0 && resp.Sources[string(SourceQTag)].Loaded == 0 &&
		resp.Sources[string(SourceCommercial)].Loaded == 0 {
		httpError(w, http.StatusNotFound, "unknown campaign "+id)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

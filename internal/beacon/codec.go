package beacon

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"
	"unsafe"
)

// This file is the compact binary beacon codec (DESIGN.md §16): a
// length-prefixed, varint-field wire format for Event negotiated via
// Content-Type alongside the JSON path. It exists because the ladder's
// bottleneck moved off the locks and onto JSON decode and per-event
// allocation — the binary path decodes a whole batch with zero
// steady-state allocations (BatchDecoder) or exactly two (the copying
// DecodeBinaryEvents), versus one-per-field for encoding/json.
//
// Wire format, one event (all multi-byte integers are varints):
//
//	byte    version        0x01
//	byte    flags          bit0: At is the zero time.Time
//	byte    type code      1 served, 2 loaded, 3 in-view, 4 out-of-view,
//	                       0 = literal string follows the IDs
//	byte    source code    0 none, 1 qtag, 2 commercial,
//	                       0xFF = literal string follows
//	varint  At unix seconds (zigzag; 0 under the zero-time flag)
//	uvarint At nanoseconds
//	varint  Seq (zigzag)
//	str     ImpressionID
//	str     CampaignID
//	[str    Type literal, only when type code is 0]
//	[str    Source literal, only when source code is 0xFF]
//	str     Trace
//	str     Meta.OS, SiteType, AdSize, Format, Country, Exchange, Slot
//
// where str is a uvarint byte length followed by raw UTF-8. Deadline is
// ephemeral by design (like its json:"-" tag) and never encoded.
// Timestamps normalize to UTC on decode: the codec preserves the
// instant, not the wall-clock offset, and nothing downstream (dedup
// keys, aggregation, fraud scoring) reads the offset.
//
// A batch frame is:
//
//	byte    0xF1 batch magic
//	byte    version 0x01
//	uvarint event count
//	count × (uvarint event byte length, event bytes)
//
// The version byte doubles as the WAL payload tag: binary payloads
// start 0x01, while every legacy JSON payload starts '{' (0x7B) — so
// DecodeStoredEvent dispatches on the first byte and old JSONL-payload
// WAL directories and hint backlogs replay unchanged.
const (
	binaryEventVersion = 0x01
	binaryBatchMagic   = 0xF1
)

// BinaryContentType negotiates the binary codec on POST /v1/events.
// A server that does not speak the requested binary version answers
// 415; HTTPSink then falls back to JSON and latches, so mixed-version
// deployments keep flowing.
const BinaryContentType = "application/x-qtag-binary"

// ErrBinaryVersion reports a binary payload whose version (or batch
// magic) this codec does not speak — the server maps it to 415 so
// newer clients know to fall back, distinct from a framing error in a
// version it does speak (400).
var ErrBinaryVersion = errors.New("beacon: unsupported binary codec version")

var errBinaryTruncated = errors.New("beacon: truncated binary event")

// Event type and source dispatch tables. Code 0 (type) and 0xFF
// (source) escape to a literal string so the codec round-trips any
// Event JSON can carry, valid or not — the differential fuzz depends
// on that.
const srcLiteral = 0xFF

func typeCode(t EventType) byte {
	switch t {
	case EventServed:
		return 1
	case EventLoaded:
		return 2
	case EventInView:
		return 3
	case EventOutOfView:
		return 4
	default:
		return 0
	}
}

func typeFromCode(c byte) (EventType, bool) {
	switch c {
	case 1:
		return EventServed, true
	case 2:
		return EventLoaded, true
	case 3:
		return EventInView, true
	case 4:
		return EventOutOfView, true
	default:
		return "", false
	}
}

func sourceCode(s Source) byte {
	switch s {
	case "":
		return 0
	case SourceQTag:
		return 1
	case SourceCommercial:
		return 2
	default:
		return srcLiteral
	}
}

func sourceFromCode(c byte) (Source, bool) {
	switch c {
	case 0:
		return "", true
	case 1:
		return SourceQTag, true
	case 2:
		return SourceCommercial, true
	default:
		return "", false
	}
}

// appendStr appends one length-prefixed string field.
func appendStr(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendBinaryEvent appends e's binary encoding to dst and returns the
// extended slice. Allocation-free when dst has capacity — the WAL
// journal and HTTPSink feed it pooled buffers.
func AppendBinaryEvent(dst []byte, e Event) []byte {
	var flags byte
	if e.At.IsZero() {
		flags |= 1
	}
	tc, sc := typeCode(e.Type), sourceCode(e.Source)
	dst = append(dst, binaryEventVersion, flags, tc, sc)
	if flags&1 != 0 {
		dst = append(dst, 0, 0) // zero-time: sec and nsec collapse to single bytes
	} else {
		dst = binary.AppendVarint(dst, e.At.Unix())
		dst = binary.AppendUvarint(dst, uint64(e.At.Nanosecond()))
	}
	dst = binary.AppendVarint(dst, int64(e.Seq))
	dst = appendStr(dst, e.ImpressionID)
	dst = appendStr(dst, e.CampaignID)
	if tc == 0 {
		dst = appendStr(dst, string(e.Type))
	}
	if sc == srcLiteral {
		dst = appendStr(dst, string(e.Source))
	}
	dst = appendStr(dst, e.Trace)
	dst = appendStr(dst, e.Meta.OS)
	dst = appendStr(dst, e.Meta.SiteType)
	dst = appendStr(dst, e.Meta.AdSize)
	dst = appendStr(dst, e.Meta.Format)
	dst = appendStr(dst, e.Meta.Country)
	dst = appendStr(dst, e.Meta.Exchange)
	dst = appendStr(dst, e.Meta.Slot)
	return dst
}

// AppendBinaryEvents appends the batch frame for events to dst. The
// per-event length prefix is what lets the decoder skip or arena-slice
// each event without re-parsing on framing errors.
func AppendBinaryEvents(dst []byte, events []Event) []byte {
	dst = append(dst, binaryBatchMagic, binaryEventVersion)
	dst = binary.AppendUvarint(dst, uint64(len(events)))
	for _, e := range events {
		// Reserve a 1-byte length prefix (events under 128 bytes, the
		// common beacon), encode, then widen the prefix in place when the
		// event turned out larger — one overlapping copy, no re-encode.
		lenAt := len(dst)
		dst = append(dst, 0)
		body := lenAt + 1
		dst = AppendBinaryEvent(dst, e)
		n := len(dst) - body
		var pfx [binary.MaxVarintLen64]byte
		w := binary.PutUvarint(pfx[:], uint64(n))
		if w > 1 {
			dst = append(dst, pfx[:w-1]...) // grow; contents overwritten below
			copy(dst[body+w-1:], dst[body:body+n])
		}
		copy(dst[lenAt:], pfx[:w])
	}
	return dst
}

// uvarintStr reads a uvarint from s at off; ok is false on truncation
// or overflow.
func uvarintStr(s string, off int) (v uint64, next int, ok bool) {
	var shift uint
	for i := off; i < len(s); i++ {
		b := s[i]
		if shift >= 64 || (shift == 63 && b > 1) {
			return 0, 0, false
		}
		if b < 0x80 {
			return v | uint64(b)<<shift, i + 1, true
		}
		v |= uint64(b&0x7F) << shift
		shift += 7
	}
	return 0, 0, false
}

// varintStr reads a zigzag varint from s at off.
func varintStr(s string, off int) (int64, int, bool) {
	u, next, ok := uvarintStr(s, off)
	if !ok {
		return 0, 0, false
	}
	v := int64(u >> 1)
	if u&1 != 0 {
		v = ^v
	}
	return v, next, true
}

// strField reads one length-prefixed string field. The result aliases
// s's backing memory — copying versus aliasing is decided by whoever
// built s (see DecodeBinaryEvents vs BatchDecoder).
func strField(s string, off int) (string, int, bool) {
	n, off, ok := uvarintStr(s, off)
	if !ok || n > uint64(len(s)-off) {
		return "", 0, false
	}
	end := off + int(n)
	return s[off:end], end, true
}

// decodeEventStr decodes one event encoding from s starting at off,
// returning the offset past it. Strings alias s.
func decodeEventStr(s string, off int) (Event, int, error) {
	var e Event
	if len(s)-off < 4 {
		return e, 0, errBinaryTruncated
	}
	if s[off] != binaryEventVersion {
		return e, 0, fmt.Errorf("%w: event version 0x%02x", ErrBinaryVersion, s[off])
	}
	flags, tc, sc := s[off+1], s[off+2], s[off+3]
	off += 4
	sec, off, ok := varintStr(s, off)
	if !ok {
		return e, 0, errBinaryTruncated
	}
	nsec, off, ok := uvarintStr(s, off)
	if !ok || nsec > 999_999_999 {
		return e, 0, errBinaryTruncated
	}
	seq, off, ok := varintStr(s, off)
	if !ok {
		return e, 0, errBinaryTruncated
	}
	if flags&1 == 0 {
		e.At = time.Unix(sec, int64(nsec)).UTC()
	}
	e.Seq = int(seq)
	if e.ImpressionID, off, ok = strField(s, off); !ok {
		return e, 0, errBinaryTruncated
	}
	if e.CampaignID, off, ok = strField(s, off); !ok {
		return e, 0, errBinaryTruncated
	}
	if t, known := typeFromCode(tc); known {
		e.Type = t
	} else if tc == 0 {
		var lit string
		if lit, off, ok = strField(s, off); !ok {
			return e, 0, errBinaryTruncated
		}
		e.Type = EventType(lit)
	} else {
		return e, 0, fmt.Errorf("beacon: unknown binary event type code 0x%02x", tc)
	}
	if src, known := sourceFromCode(sc); known {
		e.Source = src
	} else if sc == srcLiteral {
		var lit string
		if lit, off, ok = strField(s, off); !ok {
			return e, 0, errBinaryTruncated
		}
		e.Source = Source(lit)
	} else {
		return e, 0, fmt.Errorf("beacon: unknown binary event source code 0x%02x", sc)
	}
	if e.Trace, off, ok = strField(s, off); !ok {
		return e, 0, errBinaryTruncated
	}
	for _, field := range [...]*string{
		&e.Meta.OS, &e.Meta.SiteType, &e.Meta.AdSize, &e.Meta.Format,
		&e.Meta.Country, &e.Meta.Exchange, &e.Meta.Slot,
	} {
		if *field, off, ok = strField(s, off); !ok {
			return e, 0, errBinaryTruncated
		}
	}
	return e, off, nil
}

// minEventBytes is the floor of any valid event encoding (header, three
// single-byte varints, ten empty string prefixes) — the batch decoder's
// defence against a forged count forcing a huge preallocation.
const minEventBytes = 17

// decodeBatchStr decodes a batch frame from s, appending onto events.
func decodeBatchStr(s string, events []Event) ([]Event, error) {
	if len(s) < 2 {
		return nil, errBinaryTruncated
	}
	if s[0] != binaryBatchMagic || s[1] != binaryEventVersion {
		return nil, fmt.Errorf("%w: frame 0x%02x 0x%02x", ErrBinaryVersion, s[0], s[1])
	}
	count, off, ok := uvarintStr(s, 2)
	if !ok {
		return nil, errBinaryTruncated
	}
	if maxCount := uint64(len(s)-off)/minEventBytes + 1; count > maxCount {
		return nil, fmt.Errorf("beacon: binary batch claims %d events in %d bytes", count, len(s)-off)
	}
	if events == nil {
		events = make([]Event, 0, count)
	}
	for i := uint64(0); i < count; i++ {
		n, next, ok := uvarintStr(s, off)
		if !ok || n > uint64(len(s)-next) {
			return nil, errBinaryTruncated
		}
		end := next + int(n)
		e, at, err := decodeEventStr(s[:end], next)
		if err != nil {
			return nil, fmt.Errorf("beacon: binary event %d: %w", i, err)
		}
		if at != end {
			return nil, fmt.Errorf("beacon: binary event %d: %d trailing bytes", i, end-at)
		}
		events = append(events, e)
		off = end
	}
	if off != len(s) {
		return nil, fmt.Errorf("beacon: %d trailing bytes after binary batch", len(s)-off)
	}
	return events, nil
}

// aliasString views b as a string without copying. The caller owns the
// aliasing contract: the string (and everything sliced from it) is
// valid only while b's memory is, and only while b is not rewritten.
func aliasString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// DecodeBinaryEvents decodes a batch frame, copying all string data out
// of b — one arena allocation shared by every field, so the result is
// safe to retain however long b's buffer is reused or pooled. This is
// the decode for replay paths (WAL, hint drains) whose scan buffers
// recycle under the events.
func DecodeBinaryEvents(b []byte) ([]Event, error) {
	return decodeBatchStr(string(b), nil)
}

// DecodeBinaryEvent decodes a single event encoding (a WAL or hint
// record payload), copying its strings out of payload via one arena
// allocation.
func DecodeBinaryEvent(payload []byte) (Event, error) {
	s := string(payload)
	e, off, err := decodeEventStr(s, 0)
	if err != nil {
		return Event{}, err
	}
	if off != len(s) {
		return Event{}, fmt.Errorf("beacon: %d trailing bytes after binary event", len(s)-off)
	}
	return e, nil
}

// BatchDecoder decodes binary batch frames with zero steady-state
// allocations: decoded string fields alias b's memory and the returned
// slice is reused across calls. The aliasing contract mirrors
// wal.DecodeRecord: the events (struct values included, since their
// strings alias) are valid only while b's buffer is live and unwritten,
// and only until the next Decode call on the same decoder. The ingest
// server satisfies it by decoding each request into a fresh GC-owned
// body buffer — the request body is the arena — and copying event
// values into the store before the decoder returns to its pool.
type BatchDecoder struct {
	events []Event
}

// Decode parses one batch frame from b under the aliasing contract
// above.
func (d *BatchDecoder) Decode(b []byte) ([]Event, error) {
	if d.events == nil {
		d.events = make([]Event, 0, 16)
	}
	// Clear before reuse so stale strings from the previous batch don't
	// pin that batch's arena past its lifetime.
	clear(d.events[:cap(d.events)])
	events, err := decodeBatchStr(aliasString(b), d.events[:0])
	d.events = events[:0]
	if err != nil {
		return nil, err
	}
	return events, nil
}

// DecodeStoredEvent decodes one durable record payload — a WAL record,
// a hint-log record — dispatching on the version tag: binary payloads
// start with the codec version byte, legacy JSONL payloads with '{'.
// This is what keeps pre-binary WAL directories replaying byte-for-byte
// after the journal switched to binary appends.
func DecodeStoredEvent(payload []byte) (Event, error) {
	if len(payload) > 0 && payload[0] == binaryEventVersion {
		return DecodeBinaryEvent(payload)
	}
	var e Event
	if err := json.Unmarshal(payload, &e); err != nil {
		return Event{}, err
	}
	return e, nil
}

// encBufPool holds the pooled encode buffers shared by the binary
// client path and the WAL journal's record encoding.
var encBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

func getEncBuf() *[]byte  { return encBufPool.Get().(*[]byte) }
func putEncBuf(b *[]byte) { encBufPool.Put(b) }

// batchDecoderPool recycles the server's per-request batch decoders
// (the []Event scratch inside them).
var batchDecoderPool = sync.Pool{New: func() any { return new(BatchDecoder) }}

package beacon

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"qtag/internal/obs"
)

// BatchSink is a Sink that can deliver several events in one call.
// *HTTPSink and *CircuitBreaker implement it; QueueSink uses it to
// coalesce queued events into batch submissions.
type BatchSink interface {
	Sink
	SubmitBatch([]Event) error
}

// Queue errors.
var (
	// ErrQueueFull is returned by Submit when the buffer is at capacity;
	// the event has been dropped and counted.
	ErrQueueFull = errors.New("beacon: queue full, event dropped")
	// ErrQueueClosed is returned by Submit after Close.
	ErrQueueClosed = errors.New("beacon: queue closed")
)

// QueueOptions tunes a QueueSink. The zero value picks sensible defaults.
type QueueOptions struct {
	// Capacity bounds the in-memory buffer; events submitted beyond it
	// are dropped (and counted). Default 4096.
	Capacity int
	// MaxBatch is the largest batch handed to the downstream sink in one
	// call. Default 128.
	MaxBatch int
	// RetryDelay is how long the drain goroutine waits after a retryable
	// flush failure before trying again. Default 250ms.
	RetryDelay time.Duration
	// Sleep overrides the retry delay function (tests); time.Sleep when
	// nil. The drain goroutine aborts a pending delay when the queue is
	// force-stopped regardless of the implementation.
	Sleep func(time.Duration)
}

func (o QueueOptions) withDefaults() QueueOptions {
	if o.Capacity <= 0 {
		o.Capacity = 4096
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 128
	}
	if o.RetryDelay <= 0 {
		o.RetryDelay = 250 * time.Millisecond
	}
	return o
}

// QueueSink is a store-and-forward buffer between a tag and an unreliable
// downstream sink (typically CircuitBreaker over HTTPSink). Submit is
// non-blocking: it appends to a bounded in-memory buffer and returns; a
// background goroutine drains the buffer in batches. A retryable flush
// failure re-queues the batch at the front and backs off, so delivery is
// at-least-once for every event accepted below capacity — duplicates are
// absorbed downstream by idempotent ingestion. When the buffer is full,
// new events are dropped and counted (overflow-drop policy): under
// sustained outage the tag sheds load instead of growing memory.
//
// QueueSink is safe for concurrent use.
type QueueSink struct {
	next      Sink
	batchNext BatchSink // non-nil when next supports batching
	opts      QueueOptions

	mu     sync.Mutex
	cond   *sync.Cond
	buf    []Event
	closed bool

	stop     chan struct{} // force-stop: abandon the buffer
	stopOnce sync.Once
	done     chan struct{} // drain goroutine exited

	enqueued atomic.Int64
	dropped  atomic.Int64
	flushed  atomic.Int64
	failed   atomic.Int64
	retried  atomic.Int64

	// dropped, split by reason for the labeled metric series:
	// droppedOverflow counts ErrQueueFull rejects, droppedShutdown
	// counts closed-queue submits plus buffers abandoned at Close
	// deadline. Permanent downstream rejections are tracked by failed.
	// droppedOverflow + droppedShutdown == dropped, always.
	droppedOverflow atomic.Int64
	droppedShutdown atomic.Int64

	// Flush instrumentation: batch size and downstream delivery latency
	// per flush attempt. Always collected (the cost is one atomic add per
	// flush); export them by registering the queue on an obs.Registry.
	flushBatch   *obs.Histogram
	flushLatency *obs.Histogram
	now          func() time.Time
	tracer       atomic.Pointer[obs.LifecycleTracer]
}

// NewQueueSink wraps next and starts the drain goroutine. Call Close to
// flush and stop it.
func NewQueueSink(next Sink, opts QueueOptions) *QueueSink {
	q := &QueueSink{
		next:         next,
		opts:         opts.withDefaults(),
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
		flushBatch:   obs.NewHistogram(obs.SizeBuckets...),
		flushLatency: obs.NewHistogram(obs.LatencyBuckets...),
		now:          time.Now,
	}
	if b, ok := next.(BatchSink); ok {
		q.batchNext = b
	}
	q.cond = sync.NewCond(&q.mu)
	go q.drain()
	return q
}

// Submit implements Sink. It never blocks on the network: the event is
// buffered (or dropped with ErrQueueFull when the buffer is at capacity).
func (q *QueueSink) Submit(e Event) error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		q.dropped.Add(1)
		q.droppedShutdown.Add(1)
		return ErrQueueClosed
	}
	if len(q.buf) >= q.opts.Capacity {
		q.mu.Unlock()
		q.dropped.Add(1)
		q.droppedOverflow.Add(1)
		return ErrQueueFull
	}
	q.buf = append(q.buf, e)
	q.enqueued.Add(1)
	q.cond.Signal()
	q.mu.Unlock()
	return nil
}

// Close stops intake and drains the remaining buffer, blocking until it
// is empty or ctx expires. On expiry the drain goroutine is stopped and
// the undelivered events are counted as dropped.
func (q *QueueSink) Close(ctx context.Context) error {
	q.mu.Lock()
	alreadyClosed := q.closed
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
	if alreadyClosed {
		<-q.done
		return nil
	}
	select {
	case <-q.done:
		return nil
	case <-ctx.Done():
		q.stopOnce.Do(func() { close(q.stop) })
		<-q.done
		q.mu.Lock()
		abandoned := len(q.buf)
		q.buf = nil
		q.mu.Unlock()
		q.dropped.Add(int64(abandoned))
		q.droppedShutdown.Add(int64(abandoned))
		return fmt.Errorf("beacon: queue closed with %d undelivered events: %w", abandoned, ctx.Err())
	}
}

// drain is the background flush loop.
func (q *QueueSink) drain() {
	defer close(q.done)
	for {
		q.mu.Lock()
		for len(q.buf) == 0 && !q.closed {
			q.cond.Wait()
		}
		if len(q.buf) == 0 && q.closed {
			q.mu.Unlock()
			return
		}
		if q.stopped() {
			q.mu.Unlock()
			return
		}
		n := len(q.buf)
		if n > q.opts.MaxBatch {
			n = q.opts.MaxBatch
		}
		batch := make([]Event, n)
		copy(batch, q.buf)
		q.mu.Unlock()

		start := q.now()
		rejected, err := q.deliver(batch)
		q.flushLatency.ObserveDuration(q.now().Sub(start))
		q.flushBatch.Observe(float64(n))

		q.mu.Lock()
		if err == nil || IsPermanent(err) {
			// The front n elements are exactly the batch: Submit only
			// appends at the tail and overflow drops the incoming event,
			// never queued ones.
			q.buf = append(q.buf[:0], q.buf[n:]...)
			if err == nil {
				q.flushed.Add(int64(n - rejected))
				q.failed.Add(int64(rejected))
			} else {
				// Delivered-and-rejected: retrying identical bytes cannot
				// succeed, so drop the batch rather than wedge the queue.
				q.failed.Add(int64(n))
			}
			q.mu.Unlock()
			if tr := q.tracer.Load(); tr != nil {
				stage := obs.StageFlushed
				if err != nil {
					stage = obs.StageDropped
				}
				for _, e := range batch {
					tr.Record(e.ImpressionID, e.CampaignID, stage, e.At, string(e.Type))
				}
			}
			continue
		}
		q.mu.Unlock()
		// Retryable failure: leave the batch at the front and back off.
		q.retried.Add(1)
		if !q.pause(q.opts.RetryDelay) {
			return
		}
	}
}

// deliver pushes one batch downstream, preferring the batch interface.
// rejected counts events the downstream permanently refused while the
// batch as a whole succeeded (per-event path only).
func (q *QueueSink) deliver(batch []Event) (rejected int, err error) {
	if q.batchNext != nil {
		return 0, q.batchNext.SubmitBatch(batch)
	}
	for _, e := range batch {
		if err := q.next.Submit(e); err != nil {
			if IsPermanent(err) {
				// Skip the poison event and keep going; earlier events
				// already landed and idempotency covers re-delivery.
				rejected++
				continue
			}
			// A retryable failure re-queues the whole batch; re-delivery
			// of the already-landed prefix is safe (idempotent ingest).
			return 0, err
		}
	}
	return rejected, nil
}

// pause sleeps for d unless the queue is force-stopped first; it reports
// whether draining should continue.
func (q *QueueSink) pause(d time.Duration) bool {
	if q.opts.Sleep != nil {
		q.opts.Sleep(d)
		return !q.stopped()
	}
	select {
	case <-time.After(d):
		return true
	case <-q.stop:
		return false
	}
}

func (q *QueueSink) stopped() bool {
	select {
	case <-q.stop:
		return true
	default:
		return false
	}
}

// Depth returns the number of events currently buffered.
func (q *QueueSink) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buf)
}

// QueueStats is a point-in-time snapshot of a QueueSink's delivery-health
// counters.
type QueueStats struct {
	// Depth is the current buffer occupancy.
	Depth int
	// Enqueued counts events accepted into the buffer.
	Enqueued int64
	// Dropped counts events lost to overflow, closed-queue submits, or an
	// abandoned drain (Close deadline).
	Dropped int64
	// Flushed counts events delivered downstream.
	Flushed int64
	// Failed counts events the downstream permanently rejected.
	Failed int64
	// Retried counts flush attempts that failed retryably and were
	// re-queued.
	Retried int64
}

// Stats returns a snapshot of the queue's counters.
func (q *QueueSink) Stats() QueueStats {
	return QueueStats{
		Depth:    q.Depth(),
		Enqueued: q.enqueued.Load(),
		Dropped:  q.dropped.Load(),
		Flushed:  q.flushed.Load(),
		Failed:   q.failed.Load(),
		Retried:  q.retried.Load(),
	}
}

// String implements fmt.Stringer for log lines.
func (s QueueStats) String() string {
	return fmt.Sprintf("depth=%d enqueued=%d flushed=%d dropped=%d failed=%d retried=%d",
		s.Depth, s.Enqueued, s.Flushed, s.Dropped, s.Failed, s.Retried)
}

// SetTracer attaches a lifecycle tracer: every flushed (or permanently
// dropped) event records a span with the event's own timestamp, so the
// trace stream stays virtual-clock-driven even though flushing happens
// on a background goroutine.
func (q *QueueSink) SetTracer(tr *obs.LifecycleTracer) { q.tracer.Store(tr) }

// FlushLatency exposes the per-flush downstream delivery latency
// histogram.
func (q *QueueSink) FlushLatency() *obs.Histogram { return q.flushLatency }

// RegisterMetrics exports the queue's delivery-health counters and flush
// histograms on the registry.
func (q *QueueSink) RegisterMetrics(r *obs.Registry) {
	r.GaugeFunc("qtag_queue_depth", "Events currently buffered in the store-and-forward queue.",
		func() float64 { return float64(q.Depth()) })
	r.CounterFunc("qtag_queue_enqueued_total", "Events accepted into the queue buffer.", q.enqueued.Load)
	r.CounterFunc("qtag_queue_dropped_total", "Events lost to overflow, closed-queue submits, or an abandoned drain.", q.dropped.Load)
	// The same losses, split by reason. The unlabeled total above is kept
	// for dashboard compatibility; permanent-error mirrors
	// qtag_queue_failed_total under the shared dropped-by-reason name so
	// one query surfaces every way an event leaves the queue undelivered.
	r.CounterFunc("qtag_queue_dropped_total", "Events dropped because the buffer was at capacity.",
		q.droppedOverflow.Load, obs.Label{Name: "reason", Value: "overflow"})
	r.CounterFunc("qtag_queue_dropped_total", "Events dropped at shutdown: closed-queue submits and abandoned drains.",
		q.droppedShutdown.Load, obs.Label{Name: "reason", Value: "shutdown"})
	r.CounterFunc("qtag_queue_dropped_total", "Events the downstream permanently rejected.",
		q.failed.Load, obs.Label{Name: "reason", Value: "permanent-error"})
	r.CounterFunc("qtag_queue_flushed_total", "Events delivered downstream.", q.flushed.Load)
	r.CounterFunc("qtag_queue_failed_total", "Events the downstream permanently rejected.", q.failed.Load)
	r.CounterFunc("qtag_queue_retries_total", "Flush attempts that failed retryably and were re-queued.", q.retried.Load)
	r.RegisterHistogram("qtag_queue_flush_batch_size", "Batch size per flush attempt.", q.flushBatch)
	r.RegisterHistogram("qtag_queue_flush_latency_seconds", "Downstream delivery latency per flush attempt.", q.flushLatency)
}

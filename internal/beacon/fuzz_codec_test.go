package beacon

import (
	"encoding/json"
	"testing"
	"time"
	"unicode/utf8"
)

// eventUTF8 reports whether every string field is valid UTF-8 — the
// precondition for the JSON differential, since encoding/json coerces
// invalid bytes to U+FFFD while the binary codec preserves them.
func eventUTF8(e Event) bool {
	for _, s := range []string{
		e.ImpressionID, e.CampaignID, string(e.Source), string(e.Type), e.Trace,
		e.Meta.OS, e.Meta.SiteType, e.Meta.AdSize, e.Meta.Format,
		e.Meta.Country, e.Meta.Exchange, e.Meta.Slot,
	} {
		if !utf8.ValidString(s) {
			return false
		}
	}
	return true
}

// FuzzBinaryCodec hammers the binary decoder with arbitrary bytes and
// holds three properties:
//
//  1. No panic, ever — both the copying and the pooled alias decoder
//     must reject garbage with an error, not an index fault.
//  2. Round trip — whatever decodes must re-encode and decode back to
//     the same events (the canonical-encoding check is deliberately
//     omitted: varints have one encoding here, but a future version may
//     not, and semantic equality is the contract).
//  3. Differential vs JSON — a decodable binary batch, re-marshalled as
//     JSON and fed through the server's JSON decode path, must yield
//     identical events (timestamps by instant) and identical dedup
//     keys. This is the proof that the two Content-Types are the same
//     protocol.
func FuzzBinaryCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{binaryBatchMagic, binaryEventVersion, 0})
	f.Add(AppendBinaryEvents(nil, nil))
	f.Add(AppendBinaryEvents(nil, []Event{{
		ImpressionID: "imp-1", CampaignID: "camp-1", Type: EventServed,
		At: time.Unix(1500000000, 123456789).UTC(),
		Meta: Meta{OS: "android", SiteType: "news", AdSize: "300x250",
			Format: "banner", Country: "fr", Exchange: "appnexus", Slot: "atf-1"},
	}}))
	f.Add(AppendBinaryEvents(nil, []Event{
		{ImpressionID: "imp-2", CampaignID: "camp-2", Type: EventInView,
			Source: SourceQTag, Seq: 3, At: time.Unix(1500000001, 0).UTC(),
			Trace: "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"},
		{ImpressionID: "imp-4", CampaignID: "camp-4",
			Type: EventType("custom-type"), Source: Source("custom-src"), Seq: -7},
	}))
	f.Add(AppendBinaryEvent(nil, Event{
		ImpressionID: "single", CampaignID: "c", Type: EventLoaded,
		Source: SourceCommercial, At: time.Unix(1500000002, 999999999).UTC(),
	}))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Single-record decode (the WAL payload shape) must never panic.
		DecodeBinaryEvent(data)
		DecodeStoredEvent(data)

		events, err := DecodeBinaryEvents(data)
		var dec BatchDecoder
		aliased, aliasErr := dec.Decode(data)
		if (err == nil) != (aliasErr == nil) {
			t.Fatalf("copying and alias decoders disagree: %v vs %v", err, aliasErr)
		}
		if err != nil {
			return
		}
		if len(events) != len(aliased) {
			t.Fatalf("copying decoded %d events, alias %d", len(events), len(aliased))
		}
		for i := range events {
			if !eventsEqual(events[i], aliased[i]) {
				t.Fatalf("event %d: copying %+v != alias %+v", i, events[i], aliased[i])
			}
		}

		// Round trip.
		redecoded, err := DecodeBinaryEvents(AppendBinaryEvents(nil, events))
		if err != nil {
			t.Fatalf("re-encoded batch does not decode: %v", err)
		}
		if len(redecoded) != len(events) {
			t.Fatalf("round trip: %d events became %d", len(events), len(redecoded))
		}

		// Differential vs the JSON ingest path — only inside JSON's
		// narrower domain. The binary codec round-trips raw bytes and the
		// full time range; encoding/json coerces invalid UTF-8 to U+FFFD
		// and refuses years outside [0, 9999], so those inputs have no
		// JSON twin to compare against. An empty batch has no JSON array
		// framing to exercise either.
		if len(events) == 0 {
			return
		}
		for _, e := range events {
			if !eventUTF8(e) {
				return
			}
		}
		body, err := json.Marshal(events)
		if err != nil {
			// The time package's year-range refusal; nothing else in an
			// Event can fail to marshal.
			return
		}
		viaJSON, err := decodeEvents(body)
		if err != nil {
			t.Fatalf("JSON path rejected re-marshalled events: %v", err)
		}
		if len(viaJSON) != len(events) {
			t.Fatalf("JSON path decoded %d events, binary %d", len(viaJSON), len(events))
		}
		for i := range events {
			if !eventsEqual(events[i], redecoded[i]) || !eventsEqual(events[i], viaJSON[i]) {
				t.Fatalf("event %d diverged:\nbinary: %+v\nretrip: %+v\n  json: %+v",
					i, events[i], redecoded[i], viaJSON[i])
			}
			if events[i].Key() != viaJSON[i].Key() {
				t.Fatalf("event %d dedup key diverged: %q vs %q",
					i, events[i].Key(), viaJSON[i].Key())
			}
		}
	})
}

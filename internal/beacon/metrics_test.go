package beacon

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"qtag/internal/obs"
)

func postEvent(t *testing.T, url string, e Event) {
	t.Helper()
	body, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/events", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status = %d, want 202", resp.StatusCode)
	}
}

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("scrape Content-Type = %q", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestServerMetricsEndpoint wires the qtag-server durability chain (queue
// → breaker → discard) onto a server and checks the scrape exposes every
// family the binary's /metrics promises, with reconciling counts.
func TestServerMetricsEndpoint(t *testing.T) {
	store := NewStore()
	breaker := NewCircuitBreaker(Discard, DefaultBreakerThreshold, time.Second)
	queue := NewQueueSink(breaker, QueueOptions{})
	server := NewServerWithSink(store, Tee(store, queue))
	// Freeze the ingest clock so handler latency observations are exactly
	// zero and the histogram output is deterministic.
	fixed := time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC)
	server.SetClock(func() time.Time { return fixed })
	queue.RegisterMetrics(server.Metrics())
	breaker.RegisterMetrics(server.Metrics())

	srv := httptest.NewServer(server)
	defer srv.Close()

	const n = 5
	for i := 0; i < n; i++ {
		postEvent(t, srv.URL, Event{
			ImpressionID: fmt.Sprintf("imp-%d", i), CampaignID: "camp-1",
			Type: EventServed, At: fixed,
		})
	}
	drainQueue(t, queue)

	text := scrape(t, srv.URL)
	for _, family := range []string{
		"qtag_ingest_accepted_total", "qtag_ingest_rejected_total",
		"qtag_ingest_latency_seconds_bucket", "qtag_ingest_latency_seconds_count",
		"qtag_queue_depth", "qtag_queue_enqueued_total", "qtag_queue_flushed_total",
		"qtag_queue_flush_latency_seconds_bucket",
		"qtag_breaker_state", "qtag_breaker_trips_total",
		"qtag_store_events",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("scrape missing %s:\n%s", family, text)
		}
	}

	v := server.Metrics().Values()
	if v["qtag_ingest_accepted_total"] != n {
		t.Errorf("accepted = %g, want %d", v["qtag_ingest_accepted_total"], n)
	}
	if v["qtag_queue_enqueued_total"] != n || v["qtag_queue_flushed_total"] != n {
		t.Errorf("queue enqueued=%g flushed=%g, want both %d",
			v["qtag_queue_enqueued_total"], v["qtag_queue_flushed_total"], n)
	}
	if v["qtag_store_events"] != n {
		t.Errorf("store events = %g, want %d", v["qtag_store_events"], n)
	}
	// Zero-latency clock: every ingest observation lands in the first
	// bucket, and the scrape line is byte-predictable.
	if !strings.Contains(text, `qtag_ingest_latency_seconds_bucket{le="0.0005"} 5`) {
		t.Errorf("frozen-clock latency bucket line missing:\n%s", text)
	}
	if !strings.Contains(text, "qtag_ingest_latency_seconds_sum 0\n") {
		t.Errorf("frozen-clock latency sum must be exactly 0:\n%s", text)
	}
}

// drainQueue waits for the queue's background goroutine to flush
// everything it has accepted.
func drainQueue(t *testing.T, q *QueueSink) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if q.Depth() == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queue did not drain: depth=%d", q.Depth())
}

// TestServerMetricsScrapeDuringIngest scrapes /metrics continuously while
// events pour in; under -race this proves the collection path does not
// race the hot ingest path.
func TestServerMetricsScrapeDuringIngest(t *testing.T) {
	store := NewStore()
	breaker := NewCircuitBreaker(Discard, DefaultBreakerThreshold, time.Second)
	queue := NewQueueSink(breaker, QueueOptions{})
	server := NewServerWithSink(store, Tee(store, queue))
	queue.RegisterMetrics(server.Metrics())
	breaker.RegisterMetrics(server.Metrics())
	srv := httptest.NewServer(server)
	defer srv.Close()

	const writers, perWriter = 4, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				postEvent(t, srv.URL, Event{
					ImpressionID: fmt.Sprintf("imp-%d-%d", w, i), CampaignID: "camp-race",
					Type: EventServed, At: time.Now(),
				})
			}
		}()
	}
	stop := make(chan struct{})
	var scrapes sync.WaitGroup
	scrapes.Add(1)
	go func() {
		defer scrapes.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = scrape(t, srv.URL)
			}
		}
	}()
	wg.Wait()
	close(stop)
	scrapes.Wait()
	drainQueue(t, queue)

	v := server.Metrics().Values()
	if v["qtag_ingest_accepted_total"] != writers*perWriter {
		t.Fatalf("accepted = %g, want %d", v["qtag_ingest_accepted_total"], writers*perWriter)
	}
	if v["qtag_queue_flushed_total"] != writers*perWriter {
		t.Fatalf("flushed = %g, want %d", v["qtag_queue_flushed_total"], writers*perWriter)
	}
}

// TestAddHealthMetricConcurrent registers health metrics while /healthz
// is being served; under -race this pins the documented guarantee.
func TestAddHealthMetricConcurrent(t *testing.T) {
	server := NewServer(NewStore())
	srv := httptest.NewServer(server)
	defer srv.Close()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				server.AddHealthMetric(fmt.Sprintf("extra_%d", w), func() int64 { return int64(i) })
				resp, err := http.Get(srv.URL + "/healthz")
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
}

// TestHTTPSinkDeliveryLatencyMetric checks the wire-delivery histogram
// fills and exports through RegisterMetrics.
func TestHTTPSinkDeliveryLatencyMetric(t *testing.T) {
	store := NewStore()
	collector := httptest.NewServer(NewServer(store))
	defer collector.Close()

	sink := &HTTPSink{BaseURL: collector.URL}
	reg := obs.NewRegistry()
	sink.RegisterMetrics(reg)
	if err := sink.SubmitBatch([]Event{
		{ImpressionID: "i1", CampaignID: "c1", Type: EventServed, At: time.Now()},
		{ImpressionID: "i2", CampaignID: "c1", Type: EventServed, At: time.Now()},
	}); err != nil {
		t.Fatal(err)
	}
	v := reg.Values()
	// Delivered counts successful batch submissions, not events.
	if v["qtag_sink_delivered_total"] != 1 {
		t.Fatalf("delivered = %g, want 1 batch", v["qtag_sink_delivered_total"])
	}
	if v["qtag_delivery_latency_seconds_count"] != 1 {
		t.Fatalf("latency count = %g, want 1 batch observation", v["qtag_delivery_latency_seconds_count"])
	}
	if sink.DeliveryLatency().Sum() <= 0 {
		t.Fatal("delivery latency sum must be positive for a real round trip")
	}
}

package beacon

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"qtag/internal/obs"
)

// Journal persists events as JSON Lines to an io.Writer — the durability
// layer under the in-memory Store. A collection server typically fans
// events into both via Tee; after a restart, ReplayJournal rebuilds the
// store (idempotent ingestion makes replays safe even with overlapping
// journals).
//
// Journal implements Sink and is safe for concurrent use.
type Journal struct {
	mu      sync.Mutex
	w       io.Writer
	buf     *bufio.Writer
	n       int
	pending int // events accepted since the last Flush
	closed  bool
}

// NewJournal wraps the writer. The caller owns the writer's lifecycle
// (e.g. closing the underlying file) but must call Flush/Close on the
// journal first.
func NewJournal(w io.Writer) *Journal {
	return &Journal{w: w, buf: bufio.NewWriter(w)}
}

// Submit implements Sink: it appends the event as one JSON line.
func (j *Journal) Submit(e Event) error {
	if err := e.Validate(); err != nil {
		return err
	}
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("beacon: journal encode: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.buf.Write(line); err != nil {
		return fmt.Errorf("beacon: journal write: %w", err)
	}
	if err := j.buf.WriteByte('\n'); err != nil {
		return fmt.Errorf("beacon: journal write: %w", err)
	}
	j.n++
	j.pending++
	return nil
}

// SubmitBatch implements BatchSink: it appends the whole batch under a
// single lock acquisition, one JSON line per event. Encoding happens
// outside the lock. A write error mid-batch may leave a prefix of the
// batch in the journal; the retrying caller re-appends the whole batch,
// which is safe because replay feeds an idempotent store.
func (j *Journal) SubmitBatch(events []Event) error {
	lines := make([][]byte, 0, len(events))
	for _, e := range events {
		if err := e.Validate(); err != nil {
			return err
		}
		line, err := json.Marshal(e)
		if err != nil {
			return fmt.Errorf("beacon: journal encode: %w", err)
		}
		lines = append(lines, line)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, line := range lines {
		if _, err := j.buf.Write(line); err != nil {
			return fmt.Errorf("beacon: journal write: %w", err)
		}
		if err := j.buf.WriteByte('\n'); err != nil {
			return fmt.Errorf("beacon: journal write: %w", err)
		}
		j.n++
		j.pending++
	}
	return nil
}

// RegisterMetrics exports the journal's durability counters on the
// registry.
func (j *Journal) RegisterMetrics(r *obs.Registry) {
	r.GaugeFunc("qtag_journal_pending", "Events accepted since the last flush — the durability backlog.",
		func() float64 { return float64(j.Pending()) })
	r.GaugeFunc("qtag_journal_events", "Events written to the journal since startup.",
		func() float64 { return float64(j.Len()) })
}

// Len returns the number of events written.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// Pending returns the number of events accepted since the last Flush —
// the durability backlog. An overload guard can shed ingestion when this
// falls too far behind (the journal writer is not keeping up).
func (j *Journal) Pending() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.pending
}

// Flush pushes buffered lines to the underlying writer.
func (j *Journal) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.flushLocked()
}

func (j *Journal) flushLocked() error {
	if err := j.buf.Flush(); err != nil {
		return err
	}
	j.pending = 0
	return nil
}

// Sync flushes and, when the underlying writer supports it (an *os.File
// does), forces the data to stable storage.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.flushLocked(); err != nil {
		return err
	}
	if s, ok := j.w.(interface{ Sync() error }); ok {
		return s.Sync()
	}
	return nil
}

// Close flushes, fsyncs when possible and, when the underlying writer is
// an io.Closer, closes it. Close is idempotent: the graceful-shutdown
// path closes explicitly after the HTTP server drains, and a deferred
// Close becomes a no-op.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if err := j.flushLocked(); err != nil {
		return err
	}
	if s, ok := j.w.(interface{ Sync() error }); ok {
		if err := s.Sync(); err != nil {
			return err
		}
	}
	if c, ok := j.w.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// ReplayStats summarises a journal replay.
type ReplayStats struct {
	// Replayed counts events successfully submitted to the sink.
	Replayed int
	// Skipped counts undecodable or invalid lines (e.g. a torn final
	// write after a crash); replay continues past them.
	Skipped int
}

// ReplayJournal streams a JSONL journal into a sink. Corrupt lines are
// skipped and counted rather than aborting the replay — a torn tail
// write must not make the whole journal unreadable.
func ReplayJournal(r io.Reader, sink Sink) (ReplayStats, error) {
	var st ReplayStats
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			st.Skipped++
			continue
		}
		if err := sink.Submit(e); err != nil {
			st.Skipped++
			continue
		}
		st.Replayed++
	}
	if err := sc.Err(); err != nil {
		return st, fmt.Errorf("beacon: journal read: %w", err)
	}
	return st, nil
}

// Tee returns a Sink fanning every event to all sinks in order. The
// first error aborts the fan-out and is returned; earlier sinks have
// already ingested the event, which is safe because ingestion is
// idempotent everywhere in this package.
func Tee(sinks ...Sink) Sink {
	return SinkFunc(func(e Event) error {
		for _, s := range sinks {
			if err := s.Submit(e); err != nil {
				return err
			}
		}
		return nil
	})
}

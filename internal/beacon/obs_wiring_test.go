package beacon

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"qtag/internal/obs"
)

var obsEpoch = time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC)

func mkEvent(id string) Event {
	return Event{ImpressionID: id, CampaignID: "c1", Type: EventServed, At: obsEpoch.Add(time.Second)}
}

func TestJournalSubmitBatch(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	if err := j.SubmitBatch([]Event{mkEvent("i1"), mkEvent("i2")}); err != nil {
		t.Fatal(err)
	}
	if j.Len() != 2 || j.Pending() != 2 {
		t.Fatalf("Len=%d Pending=%d, want 2/2", j.Len(), j.Pending())
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	if j.Pending() != 0 {
		t.Fatalf("Pending after flush = %d, want 0", j.Pending())
	}
	if got := strings.Count(buf.String(), "\n"); got != 2 {
		t.Fatalf("journal holds %d lines, want 2", got)
	}
	// Replay round-trip: both events land in a store.
	store := NewStore()
	if _, err := ReplayJournal(&buf, store); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 2 {
		t.Fatalf("replayed %d events, want 2", store.Len())
	}
	// An invalid event rejects the whole batch before any write.
	if err := j.SubmitBatch([]Event{{CampaignID: "c1", Type: EventServed}}); err == nil {
		t.Fatal("invalid batch accepted")
	}
	if j.Len() != 2 {
		t.Fatalf("invalid batch must not write: Len=%d", j.Len())
	}
}

func TestJournalRegisterMetrics(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	reg := obs.NewRegistry()
	j.RegisterMetrics(reg)
	if err := j.Submit(mkEvent("i1")); err != nil {
		t.Fatal(err)
	}
	v := reg.Values()
	if v["qtag_journal_events"] != 1 || v["qtag_journal_pending"] != 1 {
		t.Fatalf("journal gauges = %v", v)
	}
	j.Flush()
	if got := reg.Values()["qtag_journal_pending"]; got != 0 {
		t.Fatalf("pending after flush = %g, want 0", got)
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestDiscardSink(t *testing.T) {
	if err := Discard.Submit(mkEvent("i1")); err != nil {
		t.Fatal(err)
	}
	if err := Discard.SubmitBatch([]Event{mkEvent("i1"), mkEvent("i2")}); err != nil {
		t.Fatal(err)
	}
}

func TestOverloadGuardRegisterMetrics(t *testing.T) {
	overloaded := true
	guard := NewOverloadGuard(NewServer(NewStore()), func() bool { return overloaded }, time.Second)
	reg := obs.NewRegistry()
	guard.RegisterMetrics(reg)

	srv := httptest.NewServer(guard)
	defer srv.Close()
	resp, err := srv.Client().Post(srv.URL+"/v1/events", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("status = %d, want 503 while overloaded", resp.StatusCode)
	}
	if got := reg.Values()["qtag_shed_total"]; got != 1 {
		t.Fatalf("qtag_shed_total = %g, want 1", got)
	}
}

func TestQueueTracerRecordsFlushes(t *testing.T) {
	store := NewStore()
	q := NewQueueSink(store, QueueOptions{})
	tr := obs.NewLifecycleTracer(obsEpoch)
	q.SetTracer(tr)
	if err := q.Submit(mkEvent("i1")); err != nil {
		t.Fatal(err)
	}
	waitDrained(t, q)

	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Stage != obs.StageFlushed {
		t.Fatalf("spans = %v, want one flushed span", spans)
	}
	// Span timestamps come from the event, not the wall clock.
	if spans[0].At != time.Second {
		t.Fatalf("span At = %v, want the event's 1s offset", spans[0].At)
	}
	if q.FlushLatency().Count() == 0 {
		t.Fatal("flush latency histogram never observed")
	}
}

func TestQueueTracerRecordsPermanentDrops(t *testing.T) {
	permanent := SinkFunc(func(Event) error {
		return &PermanentError{Err: errors.New("rejected")}
	})
	q := NewQueueSink(permanent, QueueOptions{})
	tr := obs.NewLifecycleTracer(obsEpoch)
	q.SetTracer(tr)
	if err := q.Submit(mkEvent("i1")); err != nil {
		t.Fatal(err)
	}
	waitFailed(t, q)
	// The per-event delivery path skips poison events; the batch itself
	// succeeds, so the span is recorded as flushed with the event counted
	// failed. A batch-level permanent error (batch sink) records dropped.
	if tr.Len() == 0 {
		t.Fatal("no spans recorded for permanently rejected event")
	}
}

func TestQueueTracerRecordsBatchDrops(t *testing.T) {
	permanent := batchSinkFunc(func([]Event) error {
		return &PermanentError{Err: errors.New("rejected")}
	})
	q := NewQueueSink(permanent, QueueOptions{})
	tr := obs.NewLifecycleTracer(obsEpoch)
	q.SetTracer(tr)
	if err := q.Submit(mkEvent("i1")); err != nil {
		t.Fatal(err)
	}
	waitFailed(t, q)
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Stage != obs.StageDropped {
		t.Fatalf("spans = %v, want one dropped span", spans)
	}
}

// batchSinkFunc adapts a function to BatchSink for tests.
type batchSinkFunc func([]Event) error

func (f batchSinkFunc) Submit(e Event) error         { return f([]Event{e}) }
func (f batchSinkFunc) SubmitBatch(es []Event) error { return f(es) }

func waitDrained(t *testing.T, q *QueueSink) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s := q.Stats(); s.Depth == 0 && s.Flushed+s.Failed+s.Dropped >= s.Enqueued {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queue never drained: %s", q.Stats())
}

func waitFailed(t *testing.T, q *QueueSink) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if q.Stats().Failed > 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queue never recorded a failure: %s", q.Stats())
}

func TestHTTPSinkTracer(t *testing.T) {
	store := NewStore()
	collector := httptest.NewServer(NewServer(store))
	defer collector.Close()

	tr := obs.NewLifecycleTracer(obsEpoch)
	sink := &HTTPSink{BaseURL: collector.URL, Tracer: tr}
	if err := sink.SubmitBatch([]Event{mkEvent("i1"), mkEvent("i2")}); err != nil {
		t.Fatal(err)
	}
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	for _, s := range spans {
		if s.Stage != obs.StageDelivered {
			t.Fatalf("stage = %s, want delivered", s.Stage)
		}
	}

	// A permanent rejection records dropped spans.
	trBad := obs.NewLifecycleTracer(obsEpoch)
	bad := &HTTPSink{BaseURL: collector.URL, Tracer: trBad}
	if err := bad.SubmitBatch([]Event{{ImpressionID: "ix", CampaignID: "c1", Type: "bogus", At: obsEpoch}}); err == nil {
		t.Fatal("bogus event accepted")
	}
	spans = trBad.Spans()
	if len(spans) != 1 || spans[0].Stage != obs.StageDropped {
		t.Fatalf("spans = %v, want one dropped span", spans)
	}
}

func TestStringersAndAccessors(t *testing.T) {
	if got := (QueueStats{Depth: 1, Enqueued: 2, Flushed: 1, Dropped: 1}).String(); !strings.Contains(got, "depth=1") {
		t.Errorf("QueueStats.String() = %q", got)
	}
	for state, want := range map[BreakerState]string{
		BreakerClosed: "closed", BreakerOpen: "open", BreakerHalfOpen: "half-open",
	} {
		if state.String() != want {
			t.Errorf("BreakerState(%d).String() = %q, want %q", state, state.String(), want)
		}
	}
	inner := errors.New("boom")
	perr := &PermanentError{Err: inner}
	if perr.Error() != "boom" || !errors.Is(perr, inner) {
		t.Errorf("PermanentError Error/Unwrap broken: %v", perr)
	}

	store := NewStore()
	collector := httptest.NewServer(NewServer(store))
	defer collector.Close()
	sink := &HTTPSink{BaseURL: collector.URL}
	if err := sink.Submit(mkEvent("i1")); err != nil {
		t.Fatal(err)
	}
	if sink.Delivered() != 1 {
		t.Errorf("Delivered() = %d, want 1", sink.Delivered())
	}
	// A permanent server rejection surfaces the status in the error text.
	err := sink.SubmitBatch([]Event{{ImpressionID: "ix", CampaignID: "c1", Type: "bogus", At: obsEpoch}})
	if err == nil || !strings.Contains(err.Error(), "422") {
		t.Errorf("rejection error = %v, want status 422 in text", err)
	}
}

func TestServerMount(t *testing.T) {
	server := NewServer(NewStore())
	server.Mount("GET /custom", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	}))
	srv := httptest.NewServer(server)
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/custom")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTeapot {
		t.Fatalf("/custom = %d, want 418", resp.StatusCode)
	}
}

func TestBreakerStateMetric(t *testing.T) {
	failing := SinkFunc(func(Event) error { return errors.New("down") })
	b := NewCircuitBreaker(failing, 2, time.Minute)
	reg := obs.NewRegistry()
	b.RegisterMetrics(reg)

	if got := reg.Values()["qtag_breaker_state"]; got != 0 {
		t.Fatalf("closed breaker state = %g, want 0", got)
	}
	for i := 0; i < 2; i++ {
		_ = b.Submit(mkEvent("i1"))
	}
	v := reg.Values()
	if v["qtag_breaker_state"] != 1 {
		t.Fatalf("open breaker state = %g, want 1", v["qtag_breaker_state"])
	}
	if v["qtag_breaker_trips_total"] != 1 {
		t.Fatalf("trips = %g, want 1", v["qtag_breaker_trips_total"])
	}
	_ = b.Submit(mkEvent("i2")) // rejected while open
	if got := reg.Values()["qtag_breaker_rejected_total"]; got != 1 {
		t.Fatalf("rejected = %g, want 1", got)
	}
	if s := b.State().String(); s != "open" {
		t.Fatalf("State() = %q, want open", s)
	}
}

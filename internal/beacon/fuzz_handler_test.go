package beacon

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// FuzzHandleEvents fuzzes the full POST /v1/events handler — body size
// limiting, JSON decoding, validation, and the atomic-batch contract —
// through a real ServeHTTP round trip. Invariants for ANY body:
//
//   - the handler never panics and never answers 5xx: malformed input is
//     the client's fault (4xx), a well-formed batch is accepted (2xx);
//   - a batch is never partially applied: any non-2xx response leaves
//     the store exactly as it was (422 means the WHOLE batch bounced);
//   - on 2xx the store grows by at most the accepted count (duplicates
//     are absorbed, never double-counted).
func FuzzHandleEvents(f *testing.F) {
	f.Add(`{"impression_id":"a","campaign_id":"c","type":"served"}`)
	f.Add(`[{"impression_id":"a","campaign_id":"c","source":"qtag","type":"loaded"}]`)
	f.Add(`[{"impression_id":"a","campaign_id":"c","type":"served"},{"type":"bogus"}]`)
	f.Add(`[]`)
	f.Add(``)
	f.Add(`not json`)
	f.Add(`null`)
	f.Add(`{"impression_id":"a","impression_id":"b","type":"served"}`)
	f.Add(`{"unknown_field":true,"type":"served"}`)
	f.Add(`[{},{},{}]`)
	f.Add(`{"type":"in_view","seq":-1}`)
	f.Add(`[` + strings.Repeat(`{"impression_id":"x","campaign_id":"c","type":"served"},`, 40) + `{}]`)
	f.Add(strings.Repeat("A", 4096)) // over the shrunken body limit
	f.Add("[{\"impression_id\":\"\\u0000\",\"campaign_id\":\"c\",\"type\":\"served\"}]")
	f.Fuzz(func(t *testing.T, body string) {
		store := NewStore()
		server := NewServer(store)
		server.SetMaxBodyBytes(2048) // small enough for the fuzzer to cross

		before := store.Len()
		req := httptest.NewRequest(http.MethodPost, "/v1/events", bytes.NewReader([]byte(body)))
		req.Header.Set("Content-Type", "application/json")
		w := httptest.NewRecorder()
		server.ServeHTTP(w, req) // a panic here fails the fuzz run

		code := w.Code
		if code >= 500 {
			t.Fatalf("5xx from handler: %d %q for body %q", code, w.Body.String(), body)
		}
		if code < 200 || code >= 300 {
			// Atomic batch: a rejected request applies nothing.
			if store.Len() != before {
				t.Fatalf("status %d but store grew %d -> %d for body %q", code, before, store.Len(), body)
			}
			if len(body) > 2048 && code != http.StatusRequestEntityTooLarge {
				t.Fatalf("oversized body answered %d, want 413", code)
			}
			return
		}
		if got := store.Len(); int64(got) > server.Accepted() {
			t.Fatalf("store holds %d events but only %d were ever accepted", got, server.Accepted())
		}
	})
}

package beacon

import (
	"bytes"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"qtag/internal/obs"
	"qtag/internal/version"
)

// traceRand returns a deterministic non-zero uint64 stream for tracers.
func traceRand() func() uint64 {
	var mu sync.Mutex
	var n uint64
	return func() uint64 {
		mu.Lock()
		defer mu.Unlock()
		n += 0x9e3779b97f4a7c15
		return n
	}
}

func newTestTracer(store *obs.SpanStore, rate float64) *obs.Tracer {
	return obs.NewTracer(obs.TracerConfig{Node: "test", SampleRate: rate, Store: store, Rand: traceRand()})
}

// captureSink retains every submitted event.
type captureSink struct {
	mu     sync.Mutex
	events []Event
}

func (c *captureSink) Submit(e Event) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, e)
	return nil
}

func (c *captureSink) all() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

func postEvents(t *testing.T, s *Server, body string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/events", strings.NewReader(body))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, req)
	return rr
}

func TestServerTracingStampsSampledEvents(t *testing.T) {
	spans := obs.NewSpanStore(32)
	cap := &captureSink{}
	s := NewServerWithSink(NewStore(), cap)
	s.SetTracer(newTestTracer(spans, 1))

	rr := postEvents(t, s, `[{"impression_id":"i1","campaign_id":"c1","type":"served"},
		{"impression_id":"i1","campaign_id":"c1","source":"qtag","type":"loaded"}]`, nil)
	if rr.Code != http.StatusAccepted {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	traceID := rr.Header().Get(obs.TraceIDResponseHeader)
	if len(traceID) != 32 {
		t.Fatalf("Trace-Id header %q", traceID)
	}
	evs := cap.all()
	if len(evs) != 2 {
		t.Fatalf("submitted %d events", len(evs))
	}
	for _, e := range evs {
		sc, err := obs.ParseTraceParent(e.Trace)
		if err != nil {
			t.Fatalf("event trace %q: %v", e.Trace, err)
		}
		if sc.TraceID.String() != traceID {
			t.Fatalf("event trace id %s != response trace id %s", sc.TraceID, traceID)
		}
		if !sc.Sampled() {
			t.Fatal("stamped context must carry the sampled flag")
		}
	}
	recs := spans.Trace(traceID)
	if len(recs) != 1 || recs[0].Name != "ingest.events" {
		t.Fatalf("span store: %+v", recs)
	}
	if recs[0].Attr("campaign") != "c1" || recs[0].Attr("events") != "2" {
		t.Fatalf("span attrs: %+v", recs[0].Attrs)
	}
	// The ingest latency histogram carries the trace as an exemplar.
	s.Metrics().SetExemplars(true)
	if out := s.Metrics().Render(); !strings.Contains(out, `trace_id="`+traceID+`"`) {
		t.Fatalf("exemplar missing from /metrics:\n%s", out)
	}
}

func TestServerTracingContinuesInboundTraceparent(t *testing.T) {
	spans := obs.NewSpanStore(32)
	cap := &captureSink{}
	s := NewServerWithSink(NewStore(), cap)
	s.SetTracer(newTestTracer(spans, 0)) // rate irrelevant: parent decides

	parent := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	rr := postEvents(t, s, `{"impression_id":"i1","campaign_id":"c1","type":"served"}`,
		map[string]string{obs.TraceParentHeader: parent})
	if rr.Code != http.StatusAccepted {
		t.Fatalf("status %d", rr.Code)
	}
	if got := rr.Header().Get(obs.TraceIDResponseHeader); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("Trace-Id %q, want the inherited trace id", got)
	}
	evs := cap.all()
	sc, err := obs.ParseTraceParent(evs[0].Trace)
	if err != nil || sc.TraceID.String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("event trace %q (%v)", evs[0].Trace, err)
	}
	recs := spans.Trace("4bf92f3577b34da6a3ce929d0e0e4736")
	if len(recs) != 1 || recs[0].ParentID != "00f067aa0ba902b7" {
		t.Fatalf("server span must parent on the inbound context: %+v", recs)
	}
}

func TestServerTracingUnsampledLeavesEventsUnstamped(t *testing.T) {
	spans := obs.NewSpanStore(32)
	cap := &captureSink{}
	s := NewServerWithSink(NewStore(), cap)
	s.SetTracer(newTestTracer(spans, 0))

	rr := postEvents(t, s, `{"impression_id":"i1","campaign_id":"c1","type":"served"}`, nil)
	if rr.Code != http.StatusAccepted {
		t.Fatalf("status %d", rr.Code)
	}
	if evs := cap.all(); evs[0].Trace != "" {
		t.Fatalf("unsampled request must not stamp events, got %q", evs[0].Trace)
	}
	if spans.Len() != 0 {
		t.Fatalf("unsampled ok spans must not be stored: %+v", spans.Snapshot())
	}
	// An existing per-event trace is never overwritten.
	rr = postEvents(t, s, `{"impression_id":"i2","campaign_id":"c1","type":"served","trace":"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"}`, nil)
	if rr.Code != http.StatusAccepted {
		t.Fatalf("status %d", rr.Code)
	}
	evs := cap.all()
	if evs[1].Trace != "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01" {
		t.Fatalf("pre-existing event trace clobbered: %q", evs[1].Trace)
	}
}

func TestHTTPSinkPropagatesTraceContext(t *testing.T) {
	var mu sync.Mutex
	var gotTraceparent []string
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		gotTraceparent = append(gotTraceparent, r.Header.Get(obs.TraceParentHeader))
		mu.Unlock()
		w.WriteHeader(http.StatusAccepted)
	}))
	defer upstream.Close()

	// Without a Spans tracer the event's own context rides the header.
	sink := &HTTPSink{BaseURL: upstream.URL}
	ev := Event{ImpressionID: "i1", CampaignID: "c1", Type: EventServed,
		Trace: "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"}
	if err := sink.Submit(ev); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	first := gotTraceparent[0]
	mu.Unlock()
	if first != ev.Trace {
		t.Fatalf("traceparent %q, want pass-through %q", first, ev.Trace)
	}

	// With a Spans tracer the header is a child span of the event trace.
	spans := obs.NewSpanStore(32)
	sink2 := &HTTPSink{BaseURL: upstream.URL, Spans: newTestTracer(spans, 0)}
	if err := sink2.Submit(ev); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	second := gotTraceparent[1]
	mu.Unlock()
	sc, err := obs.ParseTraceParent(second)
	if err != nil {
		t.Fatalf("traceparent %q: %v", second, err)
	}
	if sc.TraceID.String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("delivery span must stay on the event's trace, got %s", sc.TraceID)
	}
	if sc.SpanID.String() == "00f067aa0ba902b7" {
		t.Fatal("delivery span must mint its own span id")
	}
	recs := spans.Trace("4bf92f3577b34da6a3ce929d0e0e4736")
	if len(recs) != 1 || recs[0].Name != "sink.deliver" || recs[0].ParentID != "00f067aa0ba902b7" {
		t.Fatalf("delivery span record: %+v", recs)
	}
}

func TestHTTPSinkDeliverySpanSurvivesRetries(t *testing.T) {
	var calls int
	var mu sync.Mutex
	var headers []string
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		n := calls
		headers = append(headers, r.Header.Get(obs.TraceParentHeader))
		mu.Unlock()
		if n < 3 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusAccepted)
	}))
	defer upstream.Close()

	spans := obs.NewSpanStore(32)
	sink := &HTTPSink{
		BaseURL: upstream.URL,
		Retries: 5,
		Sleep:   func(time.Duration) {},
		Spans:   newTestTracer(spans, 1),
	}
	if err := sink.Submit(Event{ImpressionID: "i1", CampaignID: "c1", Type: EventServed}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(headers) != 3 {
		t.Fatalf("attempts = %d, want 3", len(headers))
	}
	if headers[0] != headers[1] || headers[1] != headers[2] {
		t.Fatalf("retries must reuse one delivery span: %v", headers)
	}
	if got := spans.Snapshot(); len(got) != 1 || got[0].Attr("retries") != "2" {
		t.Fatalf("spans: %+v", got)
	}
}

func TestAccessLogLinesAndProbeExclusion(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	s := NewServerWithSink(NewStore(), &captureSink{})
	s.SetTracer(newTestTracer(obs.NewSpanStore(8), 1))
	h := AccessLog(s, AccessLogOptions{Logger: logger, LogAll: true})

	req := httptest.NewRequest(http.MethodPost, "/v1/events",
		strings.NewReader(`{"impression_id":"i1","campaign_id":"c1","type":"served"}`))
	h.ServeHTTP(httptest.NewRecorder(), req)
	line := buf.String()
	for _, want := range []string{"method=POST", "path=/v1/events", "status=202", "bytes=", "duration=", "trace_id="} {
		if !strings.Contains(line, want) {
			t.Fatalf("access log missing %s:\n%s", want, line)
		}
	}

	// Probe traffic is excluded from both the access log and the ingest
	// latency histogram (probes hit /healthz, which is uninstrumented).
	before := s.ingestLatency.Count()
	buf.Reset()
	probe := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	probe.Header.Set("User-Agent", version.ProbeUserAgent())
	h.ServeHTTP(httptest.NewRecorder(), probe)
	if buf.Len() != 0 {
		t.Fatalf("probe request must not be access-logged:\n%s", buf.String())
	}
	if got := s.ingestLatency.Count(); got != before {
		t.Fatalf("probe request leaked into the ingest histogram: %d -> %d", before, got)
	}

	// 4xx logs at warn.
	buf.Reset()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodPost, "/v1/events", strings.NewReader("")))
	if !strings.Contains(buf.String(), "level=WARN") {
		t.Fatalf("4xx must log at warn:\n%s", buf.String())
	}
}

func TestAccessLogSlowRequestOnly(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	clock := time.Now()
	step := time.Duration(0)
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		step = 80 * time.Millisecond
		w.WriteHeader(http.StatusAccepted)
	})
	h := AccessLog(slow, AccessLogOptions{
		Logger:        logger,
		SlowThreshold: 50 * time.Millisecond,
		Now:           func() time.Time { clock = clock.Add(step); return clock },
	})
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/x", nil))
	if !strings.Contains(buf.String(), "slow request") || !strings.Contains(buf.String(), "level=WARN") {
		t.Fatalf("slow request line missing:\n%s", buf.String())
	}

	// Fast requests stay silent when only SlowThreshold is set.
	buf.Reset()
	fast := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusOK) })
	h2 := AccessLog(fast, AccessLogOptions{Logger: logger, SlowThreshold: 50 * time.Millisecond})
	h2.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/x", nil))
	if buf.Len() != 0 {
		t.Fatalf("fast request must not log:\n%s", buf.String())
	}
}

func TestAccessLogDisabledIsPassThrough(t *testing.T) {
	next := http.NewServeMux()
	if got := AccessLog(next, AccessLogOptions{}); got != http.Handler(next) {
		t.Fatal("disabled access log must return next unchanged")
	}
}

package beacon

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"qtag/internal/admission"
	"qtag/internal/obs"
)

// errDoomed marks a submission abandoned because the batch's propagated
// deadline was already spent before an attempt could be sent. It is
// wrapped in PermanentError: the client that cared about this work has
// given up, so retrying is pure waste.
var errDoomed = errors.New("beacon: deadline budget spent before send")

// PermanentError marks a delivery failure that retrying cannot heal —
// the server received and understood the request and refused it (a 4xx
// other than 429). Retry layers (HTTPSink's own loop, QueueSink,
// CircuitBreaker) treat permanent errors as delivered-and-rejected: the
// event is dropped rather than retried, and the breaker does not count
// it as an availability failure.
type PermanentError struct{ Err error }

// Error implements error.
func (p *PermanentError) Error() string { return p.Err.Error() }

// Unwrap exposes the underlying error to errors.Is/As.
func (p *PermanentError) Unwrap() error { return p.Err }

// IsPermanent reports whether err is marked non-retryable.
func IsPermanent(err error) bool {
	var p *PermanentError
	return errors.As(err, &p)
}

// Default retry tuning for HTTPSink. Overridable per sink.
const (
	DefaultTimeout     = 10 * time.Second
	DefaultBackoffBase = 50 * time.Millisecond
	DefaultBackoffMax  = 5 * time.Second
	// maxRetryAfter caps how long a server-supplied Retry-After header can
	// stall one submission; anything longer is a misconfigured server, not
	// a reason to hang the tag.
	maxRetryAfter = 30 * time.Second
)

// HTTPSink delivers events to a collection Server over HTTP. It implements
// Sink (and BatchSink), so an ad tag is indifferent to whether its beacons
// land in an in-process Store (fast simulation path) or cross a real socket
// (integration tests, examples, production).
//
// Failure handling: transport errors, 5xx and 429 are retried up to
// Retries times with capped exponential backoff, honoring a server
// Retry-After header when one is present (the server's own RateLimiter
// and OverloadGuard emit them). Other 4xx responses are returned as
// *PermanentError immediately — the server rejected the payload and
// resubmitting the same bytes cannot succeed.
type HTTPSink struct {
	// BaseURL is the collection server root, e.g. "http://127.0.0.1:8640".
	BaseURL string
	// Client is the HTTP client to use; http.DefaultClient when nil.
	Client *http.Client
	// Retries is the number of re-submissions attempted after a retryable
	// failure. Ingestion is idempotent, so retries are always safe.
	Retries int
	// Timeout bounds each individual request attempt (not the whole retry
	// loop) via context; DefaultTimeout when zero, negative disables.
	Timeout time.Duration
	// BackoffBase is the first retry delay; DefaultBackoffBase when zero.
	// Delay doubles per attempt up to BackoffMax.
	BackoffBase time.Duration
	// BackoffMax caps the backoff growth; DefaultBackoffMax when zero.
	BackoffMax time.Duration
	// Jitter, when set, returns a uniform value in [0, 1) used to spread
	// retry delays over [delay/2, delay) — equal jitter. Inject a
	// deterministic source (e.g. simrand.RNG.Float64) to make retry
	// schedules replayable; nil applies the full undithered delay.
	Jitter func() float64
	// BaseContext, when set, supplies the context every submission runs
	// under: each request attempt derives its per-attempt timeout from
	// it, and the backoff sleeps between attempts abort as soon as it is
	// cancelled. Wire a server's shutdown context here so SIGTERM tears
	// down in-flight retries immediately instead of waiting out the
	// backoff schedule. nil means context.Background().
	BaseContext func() context.Context
	// Sleep is the delay function; time.Sleep when nil (tests inject a
	// recorder or no-op).
	Sleep func(time.Duration)
	// Tracer, when set, records a delivered (or dropped) lifecycle span
	// for every event in a batch once the server acknowledges (or
	// permanently rejects) it.
	Tracer *obs.LifecycleTracer
	// Spans, when set, wraps every batch submission in a distributed
	// "sink.deliver" span parented on the batch's first traced event (or
	// rooting a new trace when none carries context), and injects the
	// span's traceparent on the outbound request so the receiving server
	// continues the same trace. Even without Spans, a traced batch still
	// propagates its own context on the wire.
	Spans *obs.Tracer
	// Class, when set, stamps the admission class header (X-Qtag-Class)
	// on every request so the receiving server can prioritize under
	// overload. The hinted-handoff drainer marks its replay sinks
	// "drain"; empty means the server classifies by path (live).
	Class string
	// Binary switches submissions to the compact binary beacon codec
	// (Content-Type: application/x-qtag-binary), encoded into pooled
	// buffers instead of json.Marshal. A server that does not speak it
	// (a pre-binary deployment answers 400, a newer one that dropped
	// this version answers 415) triggers an automatic, latched fallback
	// to JSON: the batch is re-encoded and re-delivered in the same
	// call — ingestion is idempotent, so the extra attempt is safe —
	// and every later submission goes straight to JSON.
	Binary bool

	jsonFallback atomic.Bool
	retried      atomic.Int64
	delivered    atomic.Int64
	failed       atomic.Int64
	latency      onceHistogram
}

// errBinaryNotAccepted signals, inside one SubmitBatch, that the server
// refused the binary content type and the call should re-deliver as
// JSON. It never escapes to callers.
var errBinaryNotAccepted = errors.New("beacon: server refused binary codec")

// FellBack reports whether a binary-mode sink has latched its JSON
// fallback.
func (h *HTTPSink) FellBack() bool { return h.jsonFallback.Load() }

// onceHistogram lazily builds the delivery-latency histogram — HTTPSink
// is constructed as a struct literal, so there is no constructor to hook.
type onceHistogram struct {
	once sync.Once
	h    *obs.Histogram
}

func (o *onceHistogram) get() *obs.Histogram {
	o.once.Do(func() { o.h = obs.NewHistogram(obs.LatencyBuckets...) })
	return o.h
}

// RegisterMetrics exports the sink's delivery counters and wire-latency
// histogram on the registry.
func (h *HTTPSink) RegisterMetrics(r *obs.Registry) {
	r.CounterFunc("qtag_sink_delivered_total", "Successful batch submissions to the collection server.", h.delivered.Load)
	r.CounterFunc("qtag_sink_retried_total", "Retry attempts after retryable delivery failures.", h.retried.Load)
	r.CounterFunc("qtag_sink_failed_total", "Submissions that exhausted retries or were permanently rejected.", h.failed.Load)
	r.RegisterHistogram("qtag_delivery_latency_seconds", "Wire latency per delivery attempt (request to response).", h.latency.get())
}

// DeliveryLatency exposes the per-attempt wire latency histogram.
func (h *HTTPSink) DeliveryLatency() *obs.Histogram { return h.latency.get() }

// Retried returns the number of retry attempts performed (first attempts
// are not counted).
func (h *HTTPSink) Retried() int64 { return h.retried.Load() }

// Delivered returns the number of successful batch submissions.
func (h *HTTPSink) Delivered() int64 { return h.delivered.Load() }

// Failed returns the number of submissions that exhausted retries or hit
// a permanent error.
func (h *HTTPSink) Failed() int64 { return h.failed.Load() }

// Submit implements Sink by POSTing the event to /v1/events.
func (h *HTTPSink) Submit(e Event) error {
	return h.SubmitBatch([]Event{e})
}

// SubmitBatch posts several events in a single request, retrying
// retryable failures with capped exponential backoff.
func (h *HTTPSink) SubmitBatch(events []Event) error {
	if len(events) == 0 {
		return nil
	}
	client := h.Client
	if client == nil {
		client = http.DefaultClient
	}
	url := h.BaseURL + "/v1/events"
	ctx := context.Background()
	if h.BaseContext != nil {
		if c := h.BaseContext(); c != nil {
			ctx = c
		}
	}
	// The outbound traceparent: the delivery span when one is minted,
	// otherwise the batch's own trace context passed through verbatim.
	// The span survives the whole retry loop, so a storm of attempts is
	// one span with a retries attribute, not N disconnected spans.
	traceparent := firstTrace(events)
	sp := h.Spans.StartSpanParent(traceparent, "sink.deliver")
	if sp != nil {
		sp.SetAttr("events", strconv.Itoa(len(events)))
		if tp := sp.TraceParent(); tp != "" {
			traceparent = tp
		}
	}
	defer sp.End()
	// The tightest per-event deadline bounds the whole retry loop: once
	// it passes, whoever submitted these events has stopped waiting, so
	// further attempts (and the receiver's fsyncs) would be pure waste.
	deadline := batchDeadline(events)
	if h.Binary && !h.jsonFallback.Load() {
		buf := getEncBuf()
		body := AppendBinaryEvents((*buf)[:0], events)
		err := h.deliver(ctx, client, url, body, BinaryContentType, traceparent, deadline, sp, events)
		*buf = body[:0] // keep the grown capacity for the pool
		putEncBuf(buf)
		if !errors.Is(err, errBinaryNotAccepted) {
			return err
		}
		// The server parsed the request far enough to refuse the codec —
		// latch and re-deliver this batch as JSON.
		h.jsonFallback.Store(true)
		sp.SetAttr("binary_fallback", "json")
	}
	body, err := json.Marshal(events)
	if err != nil {
		return &PermanentError{Err: fmt.Errorf("beacon: encode events: %w", err)}
	}
	return h.deliver(ctx, client, url, body, "application/json", traceparent, deadline, sp, events)
}

// deliver runs the retry loop for one encoded body. In binary mode a
// 415 (or a pre-binary server's 400) aborts the loop with
// errBinaryNotAccepted — without counting a failure — so SubmitBatch
// can fall back to JSON.
func (h *HTTPSink) deliver(ctx context.Context, client *http.Client, url string, body []byte, contentType, traceparent string, deadline time.Time, sp *obs.Span, events []Event) error {
	var lastErr error
	for attempt := 0; attempt <= h.Retries; attempt++ {
		if attempt > 0 {
			h.retried.Add(1)
			if err := h.sleep(ctx, h.backoff(attempt, lastErr)); err != nil {
				// Shutdown (or caller cancellation) aborts the retry loop
				// mid-backoff. The error is retryable — a QueueSink above
				// keeps the events for the journal drain — but this
				// submission is over now, not after the schedule runs out.
				h.failed.Add(1)
				sp.SetError("aborted: " + err.Error())
				return fmt.Errorf("beacon: submit aborted: %w (last error: %v)", err, lastErr)
			}
		}
		if err := ctx.Err(); err != nil {
			h.failed.Add(1)
			sp.SetError("aborted: " + err.Error())
			return fmt.Errorf("beacon: submit aborted: %w (last error: %v)", err, lastErr)
		}
		if !deadline.IsZero() && !deadline.After(time.Now()) {
			h.failed.Add(1)
			h.trace(events, obs.StageDropped)
			sp.SetError(errDoomed.Error())
			return &PermanentError{Err: fmt.Errorf("%w (last error: %v)", errDoomed, lastErr)}
		}
		start := time.Now()
		status, respBody, retryAfter, err := h.post(ctx, client, url, body, contentType, traceparent, deadline)
		h.latency.get().ObserveDuration(time.Since(start))
		if err != nil {
			lastErr = err
			continue
		}
		if status == http.StatusAccepted {
			h.delivered.Add(1)
			h.trace(events, obs.StageDelivered)
			if attempt > 0 {
				sp.SetAttr("retries", strconv.Itoa(attempt))
			}
			return nil
		}
		lastErr = &statusError{status: status, body: respBody, retryAfter: retryAfter}
		if retryableStatus(status) {
			continue
		}
		if contentType == BinaryContentType &&
			(status == http.StatusUnsupportedMediaType || status == http.StatusBadRequest) {
			// 415 is the canonical "codec not spoken"; 400 is what a
			// pre-binary server answers when it tries to parse the binary
			// frame as JSON. Either way the bytes are undeliverable in this
			// encoding but the batch is not lost — signal the JSON retry
			// instead of recording a failure.
			return fmt.Errorf("%w: %w", errBinaryNotAccepted, lastErr)
		}
		// Other client errors will not heal on retry: the server parsed
		// the request and rejected it.
		h.failed.Add(1)
		h.trace(events, obs.StageDropped)
		sp.SetError(lastErr.Error())
		return &PermanentError{Err: lastErr}
	}
	h.failed.Add(1)
	sp.SetError(fmt.Sprintf("exhausted %d attempts: %v", h.Retries+1, lastErr))
	return fmt.Errorf("beacon: submit failed after %d attempts: %w", h.Retries+1, lastErr)
}

// batchDeadline returns the earliest non-zero per-event deadline — the
// remaining-budget bound the whole batch must honor (zero: none set).
func batchDeadline(events []Event) time.Time {
	var d time.Time
	for _, e := range events {
		if e.Deadline.IsZero() {
			continue
		}
		if d.IsZero() || e.Deadline.Before(d) {
			d = e.Deadline
		}
	}
	return d
}

// firstTrace returns the first non-empty per-event trace context in the
// batch. Batches are grouped per originating request upstream, so the
// first traced event speaks for the batch.
func firstTrace(events []Event) string {
	for _, e := range events {
		if e.Trace != "" {
			return e.Trace
		}
	}
	return ""
}

// trace records a lifecycle span per event when a tracer is attached.
// Spans carry the event's own timestamp, keeping traces on virtual time.
func (h *HTTPSink) trace(events []Event, stage obs.Stage) {
	if h.Tracer == nil {
		return
	}
	for _, e := range events {
		h.Tracer.Record(e.ImpressionID, e.CampaignID, stage, e.At, string(e.Type))
	}
}

// post performs one attempt under the per-request timeout, derived from
// the submission's base context so shutdown aborts the attempt too. The
// attempt advertises its remaining budget (X-Qtag-Budget-Ms): the
// per-attempt timeout, further clipped by the batch's propagated
// deadline when one is set — so the server can refuse doomed work
// before spending WAL bandwidth on it, and cluster forwards naturally
// hand peers the decremented remainder.
func (h *HTTPSink) post(ctx context.Context, client *http.Client, url string, body []byte, contentType, traceparent string, deadline time.Time) (status int, respBody []byte, retryAfter time.Duration, err error) {
	timeout := h.Timeout
	if timeout == 0 {
		timeout = DefaultTimeout
	}
	budget := timeout
	if !deadline.IsZero() {
		if rem := time.Until(deadline); budget <= 0 || rem < budget {
			budget = rem
		}
	}
	if budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, budget)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, nil, 0, err
	}
	req.Header.Set("Content-Type", contentType)
	if budget > 0 {
		req.Header.Set(admission.BudgetHeader, admission.FormatBudget(budget))
	}
	if h.Class != "" {
		req.Header.Set(admission.ClassHeader, h.Class)
	}
	if traceparent != "" {
		req.Header.Set(obs.TraceParentHeader, traceparent)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, 0, err
	}
	defer resp.Body.Close()
	respBody, _ = io.ReadAll(io.LimitReader(resp.Body, 4096))
	return resp.StatusCode, bytes.TrimSpace(respBody), parseRetryAfter(resp.Header.Get("Retry-After")), nil
}

// statusError is a non-2xx response, carrying the server's pushback hint.
type statusError struct {
	status     int
	body       []byte
	retryAfter time.Duration
}

func (e *statusError) Error() string {
	return fmt.Sprintf("beacon: server returned %d: %s", e.status, e.body)
}

// retryableStatus reports whether a response status is worth retrying:
// server errors, plus the two explicit "come back later" pushback codes.
func retryableStatus(status int) bool {
	return status >= 500 || status == http.StatusTooManyRequests
}

// backoff computes the delay before the given (1-based) retry attempt. A
// server-supplied Retry-After overrides the exponential schedule.
func (h *HTTPSink) backoff(attempt int, lastErr error) time.Duration {
	var se *statusError
	if errors.As(lastErr, &se) && se.retryAfter > 0 {
		if se.retryAfter > maxRetryAfter {
			return maxRetryAfter
		}
		return se.retryAfter
	}
	base := h.BackoffBase
	if base <= 0 {
		base = DefaultBackoffBase
	}
	max := h.BackoffMax
	if max <= 0 {
		max = DefaultBackoffMax
	}
	delay := base
	for i := 1; i < attempt && delay < max; i++ {
		delay *= 2
	}
	if delay > max {
		delay = max
	}
	if h.Jitter != nil {
		delay = delay/2 + time.Duration(h.Jitter()*float64(delay/2))
	}
	return delay
}

// sleep waits out a backoff delay, returning early with the context's
// error when it is cancelled first. An injected Sleep (tests, virtual
// clocks) is used as-is — determinism beats cancellation there — but a
// pre-cancelled context still short-circuits it.
func (h *HTTPSink) sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	if h.Sleep != nil {
		h.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// parseRetryAfter decodes a Retry-After header value. Only the
// delta-seconds form is honored; the HTTP-date form depends on clock
// agreement with the server and is ignored.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// FetchStats retrieves aggregate stats from the server; campaignID may be
// empty for global stats.
func (h *HTTPSink) FetchStats(campaignID string) (StatsResponse, error) {
	client := h.Client
	if client == nil {
		client = http.DefaultClient
	}
	url := h.BaseURL + "/v1/stats"
	if campaignID != "" {
		url = h.BaseURL + "/v1/campaigns/" + campaignID + "/stats"
	}
	resp, err := client.Get(url)
	if err != nil {
		return StatsResponse{}, fmt.Errorf("beacon: fetch stats: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return StatsResponse{}, fmt.Errorf("beacon: stats returned %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	var out StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return StatsResponse{}, fmt.Errorf("beacon: decode stats: %w", err)
	}
	return out, nil
}

// LossySink wraps a Sink and drops each event with a fixed probability,
// modelling beacon loss on flaky mobile networks. The drop decision
// function is injected so campaign simulations can drive it from their
// deterministic RNG. internal/faults provides the richer chaos layer
// (injected errors, latency, torn writes) built on the same idea.
type LossySink struct {
	// Next is the underlying sink.
	Next Sink
	// Drop reports whether to discard the given event.
	Drop func(Event) bool
}

// Submit implements Sink.
func (l *LossySink) Submit(e Event) error {
	if l.Drop != nil && l.Drop(e) {
		return nil // lost in transit; the tag never learns
	}
	return l.Next.Submit(e)
}

// StampSink wraps a Sink and fills in the At timestamp from a clock
// function when the event carries none.
type StampSink struct {
	Next Sink
	Now  func() time.Time
}

// Submit implements Sink.
func (s *StampSink) Submit(e Event) error {
	if e.At.IsZero() && s.Now != nil {
		e.At = s.Now()
	}
	return s.Next.Submit(e)
}

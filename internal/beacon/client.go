package beacon

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// HTTPSink delivers events to a collection Server over HTTP. It implements
// Sink, so an ad tag is indifferent to whether its beacons land in an
// in-process Store (fast simulation path) or cross a real socket
// (integration tests, examples, production).
type HTTPSink struct {
	// BaseURL is the collection server root, e.g. "http://127.0.0.1:8640".
	BaseURL string
	// Client is the HTTP client to use; http.DefaultClient when nil.
	Client *http.Client
	// Retries is the number of re-submissions attempted after a transport
	// failure. Ingestion is idempotent, so retries are always safe.
	Retries int
}

// Submit implements Sink by POSTing the event to /v1/events.
func (h *HTTPSink) Submit(e Event) error {
	return h.SubmitBatch([]Event{e})
}

// SubmitBatch posts several events in a single request.
func (h *HTTPSink) SubmitBatch(events []Event) error {
	if len(events) == 0 {
		return nil
	}
	body, err := json.Marshal(events)
	if err != nil {
		return fmt.Errorf("beacon: encode events: %w", err)
	}
	client := h.Client
	if client == nil {
		client = http.DefaultClient
	}
	url := h.BaseURL + "/v1/events"
	var lastErr error
	for attempt := 0; attempt <= h.Retries; attempt++ {
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			lastErr = err
			continue
		}
		status := resp.StatusCode
		respBody, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		if status == http.StatusAccepted {
			return nil
		}
		lastErr = fmt.Errorf("beacon: server returned %d: %s", status, bytes.TrimSpace(respBody))
		if status >= 400 && status < 500 {
			// Client errors will not heal on retry.
			return lastErr
		}
	}
	return fmt.Errorf("beacon: submit failed after %d attempts: %w", h.Retries+1, lastErr)
}

// FetchStats retrieves aggregate stats from the server; campaignID may be
// empty for global stats.
func (h *HTTPSink) FetchStats(campaignID string) (StatsResponse, error) {
	client := h.Client
	if client == nil {
		client = http.DefaultClient
	}
	url := h.BaseURL + "/v1/stats"
	if campaignID != "" {
		url = h.BaseURL + "/v1/campaigns/" + campaignID + "/stats"
	}
	resp, err := client.Get(url)
	if err != nil {
		return StatsResponse{}, fmt.Errorf("beacon: fetch stats: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return StatsResponse{}, fmt.Errorf("beacon: stats returned %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	var out StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return StatsResponse{}, fmt.Errorf("beacon: decode stats: %w", err)
	}
	return out, nil
}

// LossySink wraps a Sink and drops each event with a fixed probability,
// modelling beacon loss on flaky mobile networks. The drop decision
// function is injected so campaign simulations can drive it from their
// deterministic RNG.
type LossySink struct {
	// Next is the underlying sink.
	Next Sink
	// Drop reports whether to discard the given event.
	Drop func(Event) bool
}

// Submit implements Sink.
func (l *LossySink) Submit(e Event) error {
	if l.Drop != nil && l.Drop(e) {
		return nil // lost in transit; the tag never learns
	}
	return l.Next.Submit(e)
}

// StampSink wraps a Sink and fills in the At timestamp from a clock
// function when the event carries none.
type StampSink struct {
	Next Sink
	Now  func() time.Time
}

// Submit implements Sink.
func (s *StampSink) Submit(e Event) error {
	if e.At.IsZero() && s.Now != nil {
		e.At = s.Now()
	}
	return s.Next.Submit(e)
}

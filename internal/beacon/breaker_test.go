package beacon

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// togglingSink fails while down, and records successful submissions.
type togglingSink struct {
	mu    sync.Mutex
	down  bool
	err   error
	count int
}

func (s *togglingSink) Submit(Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down {
		if s.err != nil {
			return s.err
		}
		return errors.New("down")
	}
	s.count++
	return nil
}

func TestBreakerTripsAndRecovers(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	next := &togglingSink{down: true}
	b := NewCircuitBreaker(next, 3, 10*time.Second)
	b.SetClock(clock)

	e := ev("i1", "c1", SourceQTag, EventLoaded)
	// Three consecutive failures trip the breaker.
	for i := 0; i < 3; i++ {
		if err := b.Submit(e); err == nil {
			t.Fatal("expected failure")
		}
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
	if b.Tripped() != 1 {
		t.Errorf("Tripped = %d", b.Tripped())
	}

	// While open, submissions fail fast without touching the sink.
	if err := b.Submit(e); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker returned %v", err)
	}
	if b.Rejected() != 1 {
		t.Errorf("Rejected = %d", b.Rejected())
	}

	// After the cool-down a probe goes through; it fails → re-open.
	now = now.Add(11 * time.Second)
	if err := b.Submit(e); err == nil || errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("probe should reach the sink and fail, got %v", err)
	}
	if b.State() != BreakerOpen || b.Tripped() != 2 {
		t.Fatalf("failed probe: state=%v tripped=%d", b.State(), b.Tripped())
	}

	// Heal the sink; next probe closes the breaker.
	next.mu.Lock()
	next.down = false
	next.mu.Unlock()
	now = now.Add(11 * time.Second)
	if err := b.Submit(e); err != nil {
		t.Fatalf("probe after heal: %v", err)
	}
	if b.State() != BreakerClosed {
		t.Errorf("state = %v, want closed", b.State())
	}
	// And traffic flows again.
	if err := b.Submit(e); err != nil {
		t.Fatalf("closed breaker: %v", err)
	}
	if next.count != 2 {
		t.Errorf("sink saw %d successes, want 2", next.count)
	}
}

func TestBreakerIgnoresPermanentErrors(t *testing.T) {
	next := &togglingSink{down: true, err: &PermanentError{Err: errors.New("422")}}
	b := NewCircuitBreaker(next, 2, time.Minute)
	e := ev("i1", "c1", SourceQTag, EventLoaded)
	for i := 0; i < 10; i++ {
		if err := b.Submit(e); err == nil {
			t.Fatal("expected error")
		}
	}
	if b.State() != BreakerClosed {
		t.Errorf("permanent errors tripped the breaker: %v", b.State())
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	next := &togglingSink{}
	b := NewCircuitBreaker(next, 3, time.Minute)
	e := ev("i1", "c1", SourceQTag, EventLoaded)
	fail := func() {
		next.mu.Lock()
		next.down = true
		next.mu.Unlock()
	}
	heal := func() {
		next.mu.Lock()
		next.down = false
		next.mu.Unlock()
	}
	for i := 0; i < 5; i++ {
		fail()
		_ = b.Submit(e)
		_ = b.Submit(e)
		heal()
		if err := b.Submit(e); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	if b.State() != BreakerClosed || b.Tripped() != 0 {
		t.Errorf("interleaved failures below threshold tripped: state=%v tripped=%d", b.State(), b.Tripped())
	}
}

func TestBreakerBatchPath(t *testing.T) {
	store := NewStore()
	b := NewCircuitBreaker(store, 2, time.Minute)
	events := []Event{
		ev("i1", "c1", "", EventServed),
		ev("i2", "c1", "", EventServed),
	}
	if err := b.SubmitBatch(events); err != nil {
		t.Fatalf("batch: %v", err)
	}
	if store.Len() != 2 {
		t.Errorf("store has %d events", store.Len())
	}
}

package beacon_test

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	. "qtag/internal/beacon"
	"qtag/internal/wal"
)

func benchEvent(i int64) Event {
	return Event{
		ImpressionID: fmt.Sprintf("bench-i%09d", i),
		CampaignID:   fmt.Sprintf("camp-%d", i%8),
		Source:       SourceQTag,
		Type:         EventInView,
		At:           time.Unix(1600000000, 0).UTC(),
	}
}

// BenchmarkStoreSubmit measures raw in-memory ingest contention at each
// shard count: with one shard every Submit serializes on one mutex (the
// seed behavior); sharding spreads the writers.
func BenchmarkStoreSubmit(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			store := NewStoreWithShards(shards)
			var seq atomic.Int64
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if err := store.Submit(benchEvent(seq.Add(1))); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkStoreMixedReadWrite adds merged-read pressure (Len + Count)
// alongside the writers, the /healthz-during-ingest pattern.
func BenchmarkStoreMixedReadWrite(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			store := NewStoreWithShards(shards)
			var seq atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					n := seq.Add(1)
					if n%16 == 0 {
						_ = store.Len()
						_ = store.Count(func(k CounterKey) bool { return k.CampaignID == "camp-0" })
						continue
					}
					if err := store.Submit(benchEvent(n)); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkWALAppendGroupCommit compares per-record fsync against group
// commit under concurrent appenders — the amortization the group
// committer exists for.
func BenchmarkWALAppendGroupCommit(b *testing.B) {
	payload := []byte(`{"impression_id":"bench","campaign_id":"c","source":"qtag","type":"in_view"}`)
	for _, gc := range []bool{false, true} {
		b.Run(fmt.Sprintf("group_commit=%v", gc), func(b *testing.B) {
			w, _, err := wal.Open(wal.Options{
				Dir:         b.TempDir(),
				Fsync:       wal.FsyncAlways,
				GroupCommit: gc,
			}, nil)
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if err := w.Append(payload); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

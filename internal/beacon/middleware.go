package beacon

import (
	"crypto/subtle"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qtag/internal/obs"
)

// AuthStats wraps a collection server so that read endpoints (stats,
// breakdowns, time series) require an operator bearer token, while the
// ingestion endpoints stay open — beacons come from anonymous browsers
// that cannot hold secrets, but aggregated campaign performance is
// business-sensitive.
//
// Accepted credentials: "Authorization: Bearer <key>" or "?key=<key>".
// With no keys configured the wrapper is a transparent pass-through.
func AuthStats(next http.Handler, keys ...string) http.Handler {
	if len(keys) == 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !statsPath(r.URL.Path) || authorized(r, keys) {
			next.ServeHTTP(w, r)
			return
		}
		w.Header().Set("WWW-Authenticate", `Bearer realm="qtag-stats"`)
		httpError(w, http.StatusUnauthorized, "stats endpoints require an operator key")
	})
}

func statsPath(path string) bool {
	switch {
	case path == "/v1/stats",
		strings.HasPrefix(path, "/v1/campaigns/"),
		path == "/v1/breakdown",
		path == "/v1/timeseries":
		return true
	default:
		return false
	}
}

func authorized(r *http.Request, keys []string) bool {
	presented := r.URL.Query().Get("key")
	if h := r.Header.Get("Authorization"); strings.HasPrefix(h, "Bearer ") {
		presented = strings.TrimPrefix(h, "Bearer ")
	}
	if presented == "" {
		return false
	}
	for _, k := range keys {
		if subtle.ConstantTimeCompare([]byte(presented), []byte(k)) == 1 {
			return true
		}
	}
	return false
}

// RateLimiter applies a per-client token bucket to ingestion requests
// (POST and pixel GET on /v1/events), shielding the collector from
// misbehaving tags or flooding. Read endpoints are not limited.
//
// Buckets are keyed by client IP. The zero value is invalid; use
// NewRateLimiter.
type RateLimiter struct {
	next    http.Handler
	rate    float64 // tokens per second
	burst   float64
	now     func() time.Time
	mu      sync.Mutex
	buckets map[string]*bucket

	// lastSweep bounds the bucket map: idle entries are dropped
	// periodically so hostile clients cannot grow memory unboundedly.
	lastSweep time.Time
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewRateLimiter wraps next, allowing each client IP ratePerSecond
// sustained ingestion requests with the given burst. A non-positive rate
// disables limiting.
func NewRateLimiter(next http.Handler, ratePerSecond, burst float64) *RateLimiter {
	return &RateLimiter{
		next:    next,
		rate:    ratePerSecond,
		burst:   burst,
		now:     time.Now,
		buckets: map[string]*bucket{},
	}
}

// SetClock overrides the limiter's time source (tests).
func (l *RateLimiter) SetClock(now func() time.Time) { l.now = now }

// ServeHTTP implements http.Handler.
func (l *RateLimiter) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if l.rate <= 0 || r.URL.Path != "/v1/events" {
		l.next.ServeHTTP(w, r)
		return
	}
	if !l.allow(clientIP(r)) {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "ingestion rate limit exceeded")
		return
	}
	l.next.ServeHTTP(w, r)
}

func (l *RateLimiter) allow(key string) bool {
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	if now.Sub(l.lastSweep) > time.Minute {
		l.sweepLocked(now)
	}
	b := l.buckets[key]
	if b == nil {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * l.rate
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// sweepLocked drops buckets that have been idle long enough to refill
// completely — they carry no state worth keeping.
func (l *RateLimiter) sweepLocked(now time.Time) {
	l.lastSweep = now
	idle := time.Duration(float64(time.Second) * (l.burst/l.rate + 60))
	for k, b := range l.buckets {
		if now.Sub(b.last) > idle {
			delete(l.buckets, k)
		}
	}
}

// OverloadGuard sheds ingestion load when the collector is falling
// behind: while the overloaded predicate reports true, POST and pixel
// GET requests on /v1/events are answered with 503 + Retry-After instead
// of being ingested. Clients built on HTTPSink honor the header and back
// off; the idempotent store makes the eventual re-delivery safe. Read
// endpoints are never shed — operators need stats exactly when the
// collector is struggling.
//
// The predicate is typically wired to the journal backlog
// (Journal.Pending) or another durability-lag signal.
type OverloadGuard struct {
	next       http.Handler
	overloaded func() bool
	retryAfter string
	shed       atomic.Int64
}

// NewOverloadGuard wraps next. retryAfter is rounded down to whole
// seconds for the header (minimum 1s).
func NewOverloadGuard(next http.Handler, overloaded func() bool, retryAfter time.Duration) *OverloadGuard {
	secs := int(retryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	return &OverloadGuard{next: next, overloaded: overloaded, retryAfter: strconv.Itoa(secs)}
}

// Shed returns the number of ingestion requests refused so far.
func (g *OverloadGuard) Shed() int64 { return g.shed.Load() }

// RegisterMetrics exports the shed counter on the registry.
func (g *OverloadGuard) RegisterMetrics(r *obs.Registry) {
	r.CounterFunc("qtag_shed_total", "Ingestion requests refused with 503 while the collector was overloaded.", g.shed.Load)
}

// ServeHTTP implements http.Handler.
func (g *OverloadGuard) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v1/events" && g.overloaded != nil && g.overloaded() {
		g.shed.Add(1)
		w.Header().Set("Retry-After", g.retryAfter)
		httpError(w, http.StatusServiceUnavailable, "collector overloaded, retry later")
		return
	}
	g.next.ServeHTTP(w, r)
}

func clientIP(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

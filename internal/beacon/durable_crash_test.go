// Crash-point sweep: the durability layer is driven through the
// deterministic crash harness at every interesting byte offset, and the
// recovery invariants are asserted after each simulated crash:
//
//   - zero loss after fsync: every event acked before the last
//     successful sync is recovered;
//   - zero duplicates: every recovered record lands in the store exactly
//     once (replayed count == store size);
//   - prefix property: the recovered set is exactly the first N events
//     of the submission order — a crash never creates holes;
//   - exactness under FsyncAlways with page-cache loss: recovered ==
//     acked, byte for byte of the contract.
//
// External test package for the same reason as durable_test.go.
package beacon_test

import (
	"sync"
	"testing"
	"time"

	. "qtag/internal/beacon"
	"qtag/internal/faults"
	"qtag/internal/wal"
)

const (
	crashBatchSize = 5
	crashBatches   = 6
	crashTotal     = crashBatchSize * crashBatches
)

// crashWorkload submits the fixed workload through j, returning how
// many events were acked and how many were acked at the time of the
// last known-successful fsync. syncEvery asks for an explicit Sync
// after every second batch (the FsyncInterval regime, where appends
// alone promise nothing).
func crashWorkload(j *WALJournal, policy wal.FsyncPolicy) (acked, synced int) {
	for b := 0; b < crashBatches; b++ {
		batch := make([]Event, 0, crashBatchSize)
		for i := 0; i < crashBatchSize; i++ {
			batch = append(batch, durEvent(b*crashBatchSize+i))
		}
		if err := j.SubmitBatch(batch); err != nil {
			return acked, synced
		}
		acked += crashBatchSize
		switch policy {
		case wal.FsyncAlways, wal.FsyncOnBatch:
			// AppendBatch syncs before acking under both policies.
			synced = acked
		case wal.FsyncInterval:
			if b%2 == 1 {
				if err := j.Sync(); err != nil {
					return acked, synced
				}
				synced = acked
			}
		}
	}
	return acked, synced
}

func crashOpts(dir string, fsys wal.FS, policy wal.FsyncPolicy) wal.Options {
	return wal.Options{
		Dir:          dir,
		FS:           fsys,
		Fsync:        policy,
		FsyncEvery:   time.Hour, // FsyncInterval: only explicit Syncs count
		SegmentBytes: 512,       // force rotations inside the workload
	}
}

func TestCrashPointSweep(t *testing.T) {
	// Dry run on an unarmed harness to learn the workload's total write
	// volume and the byte boundaries of each batch/sync step.
	dryDir := t.TempDir()
	dry := faults.NewCrashFS(nil)
	j, _, err := OpenDurable(crashOpts(dryDir, dry, wal.FsyncOnBatch), NewStore())
	if err != nil {
		t.Fatal(err)
	}
	boundaries := []int64{dry.BytesWritten()} // after Open (segment header)
	for b := 0; b < crashBatches; b++ {
		batch := make([]Event, 0, crashBatchSize)
		for i := 0; i < crashBatchSize; i++ {
			batch = append(batch, durEvent(b*crashBatchSize+i))
		}
		if err := j.SubmitBatch(batch); err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, dry.BytesWritten())
	}
	j.Close()
	total := dry.BytesWritten()
	if acked := int(j.WAL().Appended()); acked != crashTotal {
		t.Fatalf("dry run acked %d, want %d", acked, crashTotal)
	}

	// Sweep offsets: every write boundary ±1 plus every 13th byte.
	offsets := map[int64]bool{}
	for _, b := range boundaries {
		for _, d := range []int64{-1, 0, 1} {
			if b+d > 0 {
				offsets[b+d] = true
			}
		}
	}
	for off := int64(1); off <= total+wal.SegmentHeaderSize; off += 13 {
		offsets[off] = true
	}

	cases := []struct {
		name    string
		policy  wal.FsyncPolicy
		discard bool // lose the page cache at the crash instant
		exact   bool // recovered must equal acked exactly
	}{
		{"always-discard", wal.FsyncAlways, true, true},
		{"always-keep", wal.FsyncAlways, false, false},
		{"batch-discard", wal.FsyncOnBatch, true, false},
		{"interval-discard", wal.FsyncInterval, true, false},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for off := range offsets {
				sweepOne(t, tc.policy, tc.discard, tc.exact, off)
			}
		})
	}
}

// sweepOne crashes one workload run at byte offset off and asserts the
// recovery invariants.
func sweepOne(t *testing.T, policy wal.FsyncPolicy, discard, exact bool, off int64) {
	t.Helper()
	dir := t.TempDir()
	cfs := faults.NewCrashFS(nil)
	cfs.DiscardUnsynced(discard)
	cfs.CrashAfterBytes(off)

	acked, synced := 0, 0
	if j, _, err := OpenDurable(crashOpts(dir, cfs, policy), NewStore()); err == nil {
		acked, synced = crashWorkload(j, policy)
		j.Close() // post-crash close errors are irrelevant
	}
	if policy == wal.FsyncAlways {
		synced = acked
	}

	// "Restart": recover the same directory on the real filesystem.
	store := NewStore()
	j2, rec, err := OpenDurable(crashOpts(dir, nil, policy), store)
	if err != nil {
		t.Fatalf("off=%d: recovery failed: %v (%+v)", off, err, rec)
	}
	recovered := store.Len()

	// Zero duplicates: every replayed record hit the store exactly once.
	if rec.Replayed != recovered {
		t.Fatalf("off=%d: replayed %d but store holds %d — duplicates", off, rec.Replayed, recovered)
	}
	// Zero loss after fsync / no invented events.
	if recovered < synced || recovered > crashTotal {
		t.Fatalf("off=%d: recovered %d, synced %d, acked %d", off, recovered, synced, acked)
	}
	if exact && recovered != acked {
		t.Fatalf("off=%d: FsyncAlways must recover exactly the acked set: recovered %d, acked %d", off, recovered, acked)
	}
	if !discard && recovered < acked {
		t.Fatalf("off=%d: cache-survives crash lost acked data: recovered %d, acked %d", off, recovered, acked)
	}
	// Prefix property: the recovered set is the first N submitted events.
	keys := map[string]bool{}
	for _, e := range store.Events() {
		keys[e.Key()] = true
	}
	for i := 0; i < recovered; i++ {
		if !keys[durEvent(i).Key()] {
			t.Fatalf("off=%d: recovered %d events but event %d is missing — hole in the prefix", off, recovered, i)
		}
	}
	j2.Close()

	// Double restart: the first recovery repaired the directory, so the
	// second must be clean and change nothing.
	store2 := NewStore()
	j3, rec2, err := OpenDurable(crashOpts(dir, nil, policy), store2)
	if err != nil {
		t.Fatalf("off=%d: second recovery failed: %v", off, err)
	}
	defer j3.Close()
	if store2.Len() != recovered {
		t.Fatalf("off=%d: second recovery yielded %d events, first %d", off, store2.Len(), recovered)
	}
	if rec2.TornTail || rec2.TruncatedBytes != 0 {
		t.Fatalf("off=%d: second recovery still dirty: %+v", off, rec2)
	}
}

// TestCrashDuringSnapshotKeepsOldSnapshot crashes in the middle of
// writing a snapshot and verifies recovery falls back cleanly: either
// the old snapshot or a full WAL replay, never data loss.
func TestCrashDuringSnapshotKeepsOldSnapshot(t *testing.T) {
	dir := t.TempDir()
	store := NewStore()
	cfs := faults.NewCrashFS(nil)
	j, _, err := OpenDurable(crashOpts(dir, cfs, wal.FsyncAlways), store)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		e := durEvent(i)
		store.Submit(e)
		if err := j.Submit(e); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := j.Snapshot(store); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 20; i++ {
		e := durEvent(i)
		store.Submit(e)
		if err := j.Submit(e); err != nil {
			t.Fatal(err)
		}
	}
	// Crash partway through the second snapshot's payload.
	cfs.CrashAfterBytes(int64(len(EncodeStoreSnapshot(store)) / 2))
	if _, err := j.Snapshot(store); err == nil {
		t.Fatal("snapshot through a crashed filesystem must fail")
	}
	j.Close()

	restored := NewStore()
	j2, rec, err := OpenDurable(crashOpts(dir, nil, wal.FsyncAlways), restored)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if restored.Len() != 20 {
		t.Fatalf("restored %d events, want 20 (%+v)", restored.Len(), rec)
	}
	if rec.SnapshotIndex != 10 {
		t.Fatalf("recovery used snapshot index %d, want the intact one at 10 (%+v)", rec.SnapshotIndex, rec)
	}
}

// TestCrashPointSweepGroupCommit sweeps crash points through a
// concurrent group-commit workload under FsyncAlways with page-cache
// loss. Group commit coalesces many callers' records into one write +
// one fsync; the contract is unchanged per caller: an acked Submit means
// the fsync covering that record completed before the ack. So after a
// crash at ANY byte offset — including mid-batch, where only part of a
// coalesced buffer reached the disk image —
//
//   - every acked event must be recovered (zero loss after fsync), and
//   - rec.Replayed == store.Len() (zero duplicates).
//
// Unacked events MAY be recovered (a commit that failed after its write
// partially landed): at-least-once, never at-most-zero.
func TestCrashPointSweepGroupCommit(t *testing.T) {
	const (
		gcWorkers   = 6
		gcPerWorker = 15
		gcTotal     = gcWorkers * gcPerWorker
	)
	gcOpts := func(dir string, fsys wal.FS) wal.Options {
		return wal.Options{
			Dir:                dir,
			FS:                 fsys,
			Fsync:              wal.FsyncAlways,
			SegmentBytes:       512, // rotations inside the workload
			GroupCommit:        true,
			GroupCommitMaxWait: 200 * time.Microsecond, // grow batches so crashes land mid-group
		}
	}
	// run executes the concurrent workload against fsys and returns the
	// set of acked (durably promised) event keys.
	run := func(dir string, fsys wal.FS) map[string]bool {
		acked := map[string]bool{}
		j, _, err := OpenDurable(gcOpts(dir, fsys), NewStore())
		if err != nil {
			return acked
		}
		var mu sync.Mutex
		var wg sync.WaitGroup
		for w := 0; w < gcWorkers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < gcPerWorker; i++ {
					e := durEvent(w*gcPerWorker + i)
					if err := j.Submit(e); err != nil {
						return // crashed; this and later events are unacked
					}
					mu.Lock()
					acked[e.Key()] = true
					mu.Unlock()
				}
			}(w)
		}
		wg.Wait()
		j.Close() // post-crash close errors are irrelevant
		return acked
	}

	// Dry run on an unarmed harness to size the sweep.
	dry := faults.NewCrashFS(nil)
	if got := len(run(t.TempDir(), dry)); got != gcTotal {
		t.Fatalf("dry run acked %d, want %d", got, gcTotal)
	}
	total := dry.BytesWritten()

	for off := int64(1); off <= total+wal.SegmentHeaderSize; off += 97 {
		cfs := faults.NewCrashFS(nil)
		cfs.DiscardUnsynced(true) // page-cache loss at the crash instant
		cfs.CrashAfterBytes(off)
		dir := t.TempDir()
		acked := run(dir, cfs)

		store := NewStore()
		j2, rec, err := OpenDurable(gcOpts(dir, nil), store)
		if err != nil {
			t.Fatalf("off=%d: recovery failed: %v (%+v)", off, err, rec)
		}
		if rec.Replayed != store.Len() {
			t.Fatalf("off=%d: replayed %d but store holds %d — duplicates", off, rec.Replayed, store.Len())
		}
		recovered := map[string]bool{}
		for _, e := range store.Events() {
			recovered[e.Key()] = true
		}
		for key := range acked {
			if !recovered[key] {
				t.Fatalf("off=%d: acked event %s lost after crash (acked %d, recovered %d)",
					off, key, len(acked), len(recovered))
			}
		}
		if store.Len() > gcTotal {
			t.Fatalf("off=%d: recovered %d events, more than the %d ever submitted", off, store.Len(), gcTotal)
		}
		j2.Close()
	}
}

// TestCrashSweepIsDeterministic reruns one crash offset twice and
// demands identical outcomes — the harness itself must not flake.
func TestCrashSweepIsDeterministic(t *testing.T) {
	run := func() (int, int, int) {
		dir := t.TempDir()
		cfs := faults.NewCrashFS(nil)
		cfs.DiscardUnsynced(true)
		cfs.CrashAfterBytes(700)
		acked := 0
		if j, _, err := OpenDurable(crashOpts(dir, cfs, wal.FsyncOnBatch), NewStore()); err == nil {
			acked, _ = crashWorkload(j, wal.FsyncOnBatch)
			j.Close()
		}
		store := NewStore()
		j2, rec, err := OpenDurable(crashOpts(dir, nil, wal.FsyncOnBatch), store)
		if err != nil {
			t.Fatal(err)
		}
		j2.Close()
		return acked, store.Len(), rec.Segments
	}
	a1, r1, s1 := run()
	a2, r2, s2 := run()
	if a1 != a2 || r1 != r2 || s1 != s2 {
		t.Fatalf("non-deterministic crash: (%d,%d,%d) vs (%d,%d,%d)", a1, r1, s1, a2, r2, s2)
	}
	if a1 == 0 || a1 == crashTotal {
		t.Fatalf("offset 700 should crash mid-workload, acked %d", a1)
	}
}

package beacon

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func ev(imp, camp string, src Source, typ EventType) Event {
	return Event{ImpressionID: imp, CampaignID: camp, Source: src, Type: typ}
}

func TestEventValidate(t *testing.T) {
	cases := []struct {
		name string
		e    Event
		err  error
	}{
		{"valid served", ev("i1", "c1", "", EventServed), nil},
		{"valid loaded", ev("i1", "c1", SourceQTag, EventLoaded), nil},
		{"valid in-view", ev("i1", "c1", SourceCommercial, EventInView), nil},
		{"valid out-of-view", ev("i1", "c1", SourceQTag, EventOutOfView), nil},
		{"missing impression", ev("", "c1", SourceQTag, EventLoaded), ErrNoImpression},
		{"missing campaign", ev("i1", "", SourceQTag, EventLoaded), ErrNoCampaign},
		{"served with source", ev("i1", "c1", SourceQTag, EventServed), ErrBadSource},
		{"loaded without source", ev("i1", "c1", "", EventLoaded), ErrBadSource},
		{"unknown type", ev("i1", "c1", SourceQTag, "bogus"), ErrBadType},
	}
	for _, c := range cases {
		err := c.e.Validate()
		if c.err == nil && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if c.err != nil && !errors.Is(err, c.err) {
			t.Errorf("%s: error = %v, want %v", c.name, err, c.err)
		}
	}
}

func TestEventKeyAndString(t *testing.T) {
	a := ev("i1", "c1", SourceQTag, EventInView)
	b := a
	b.Seq = 1
	if a.Key() == b.Key() {
		t.Error("seq must differentiate keys")
	}
	if !strings.Contains(a.String(), "in-view") {
		t.Errorf("String = %q", a.String())
	}
	served := ev("i1", "c1", "", EventServed)
	if !strings.Contains(served.String(), "dsp") {
		t.Errorf("served String = %q", served.String())
	}
}

func TestStoreIdempotency(t *testing.T) {
	s := NewStore()
	e := ev("i1", "c1", SourceQTag, EventInView)
	for i := 0; i < 5; i++ {
		if err := s.Submit(e); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d after duplicate submits", s.Len())
	}
	if s.InView("c1", SourceQTag) != 1 {
		t.Errorf("InView = %d", s.InView("c1", SourceQTag))
	}
}

func TestStoreRejectsInvalid(t *testing.T) {
	s := NewStore()
	if err := s.Submit(Event{}); err == nil {
		t.Error("expected validation error")
	}
	if s.Len() != 0 {
		t.Error("invalid event stored")
	}
}

func TestStoreAggregation(t *testing.T) {
	s := NewStore()
	// Campaign c1: 3 served, qtag measures 2, 1 in-view; commercial measures 1, 1 in-view.
	for _, imp := range []string{"a", "b", "c"} {
		mustSubmit(t, s, ev(imp, "c1", "", EventServed))
	}
	mustSubmit(t, s, ev("a", "c1", SourceQTag, EventLoaded))
	mustSubmit(t, s, ev("b", "c1", SourceQTag, EventLoaded))
	mustSubmit(t, s, ev("a", "c1", SourceQTag, EventInView))
	mustSubmit(t, s, ev("a", "c1", SourceQTag, EventOutOfView))
	mustSubmit(t, s, ev("a", "c1", SourceCommercial, EventLoaded))
	mustSubmit(t, s, ev("a", "c1", SourceCommercial, EventInView))
	// Campaign c2: 1 served, nothing measured.
	mustSubmit(t, s, ev("z", "c2", "", EventServed))

	if got := s.Served("c1"); got != 3 {
		t.Errorf("Served(c1) = %d", got)
	}
	if got := s.Served(""); got != 4 {
		t.Errorf("Served(all) = %d", got)
	}
	if got := s.Loaded("c1", SourceQTag); got != 2 {
		t.Errorf("Loaded(c1,qtag) = %d", got)
	}
	if got := s.Loaded("c1", SourceCommercial); got != 1 {
		t.Errorf("Loaded(c1,commercial) = %d", got)
	}
	if got := s.InView("c1", SourceQTag); got != 1 {
		t.Errorf("InView(c1,qtag) = %d", got)
	}
	if got := s.InView("c2", SourceQTag); got != 0 {
		t.Errorf("InView(c2) = %d", got)
	}
	ids := s.CampaignIDs()
	if len(ids) != 2 || ids[0] != "c1" || ids[1] != "c2" {
		t.Errorf("CampaignIDs = %v", ids)
	}
	if got := s.Count(nil); got != 10 {
		t.Errorf("Count(nil) = %d", got)
	}
	counters := s.Counters()
	if counters[CounterKey{CampaignID: "c1", Type: EventServed}] != 3 {
		t.Errorf("counters = %v", counters)
	}
}

func TestStoreEventsSorted(t *testing.T) {
	s := NewStore()
	mustSubmit(t, s, ev("b", "c1", "", EventServed))
	mustSubmit(t, s, ev("a", "c2", "", EventServed))
	mustSubmit(t, s, ev("a", "c1", "", EventServed))
	events := s.Events()
	if len(events) != 3 {
		t.Fatalf("Events len = %d", len(events))
	}
	if events[0].ImpressionID != "a" || events[0].CampaignID != "c1" {
		t.Errorf("sort order wrong: %v", events)
	}
	if events[2].CampaignID != "c2" {
		t.Errorf("sort order wrong: %v", events)
	}
}

func mustSubmit(t *testing.T, s Sink, e Event) {
	t.Helper()
	if err := s.Submit(e); err != nil {
		t.Fatal(err)
	}
}

func TestServerIngestSingleAndBatch(t *testing.T) {
	store := NewStore()
	srv := httptest.NewServer(NewServer(store))
	defer srv.Close()

	// Single event.
	body, _ := json.Marshal(ev("i1", "c1", "", EventServed))
	resp, err := http.Post(srv.URL+"/v1/events", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("single ingest status = %d", resp.StatusCode)
	}

	// Batch.
	batch, _ := json.Marshal([]Event{
		ev("i1", "c1", SourceQTag, EventLoaded),
		ev("i1", "c1", SourceQTag, EventInView),
	})
	resp, err = http.Post(srv.URL+"/v1/events", "application/json", bytes.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	var ir ingestResponse
	json.NewDecoder(resp.Body).Decode(&ir)
	resp.Body.Close()
	if ir.Accepted != 2 || ir.Rejected != 0 {
		t.Errorf("batch response = %+v", ir)
	}
	if store.Len() != 3 {
		t.Errorf("store has %d events", store.Len())
	}
}

func TestServerRejectsGarbage(t *testing.T) {
	srv := httptest.NewServer(NewServer(NewStore()))
	defer srv.Close()
	for _, body := range []string{"", "not json", `{"type":"bogus"}`, `[{"type":"bogus"}]`} {
		resp, err := http.Post(srv.URL+"/v1/events", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode < 400 {
			t.Errorf("body %q: status = %d, want 4xx", body, resp.StatusCode)
		}
	}
}

func TestServerStatsEndpoints(t *testing.T) {
	store := NewStore()
	server := NewServer(store)
	srv := httptest.NewServer(server)
	defer srv.Close()

	sink := &HTTPSink{BaseURL: srv.URL}
	for _, imp := range []string{"a", "b", "c", "d"} {
		mustSubmit(t, sink, ev(imp, "camp-1", "", EventServed))
	}
	mustSubmit(t, sink, ev("a", "camp-1", SourceQTag, EventLoaded))
	mustSubmit(t, sink, ev("b", "camp-1", SourceQTag, EventLoaded))
	mustSubmit(t, sink, ev("c", "camp-1", SourceQTag, EventLoaded))
	mustSubmit(t, sink, ev("a", "camp-1", SourceQTag, EventInView))

	stats, err := sink.FetchStats("camp-1")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Served != 4 {
		t.Errorf("served = %d", stats.Served)
	}
	q := stats.Sources["qtag"]
	if q.Loaded != 3 || q.InView != 1 {
		t.Errorf("qtag stats = %+v", q)
	}
	if q.MeasuredRate != 0.75 {
		t.Errorf("measured rate = %v", q.MeasuredRate)
	}
	if q.ViewabilityRate < 0.33 || q.ViewabilityRate > 0.34 {
		t.Errorf("viewability rate = %v", q.ViewabilityRate)
	}

	global, err := sink.FetchStats("")
	if err != nil {
		t.Fatal(err)
	}
	if global.Served != 4 {
		t.Errorf("global served = %d", global.Served)
	}

	if _, err := sink.FetchStats("no-such-campaign"); err == nil {
		t.Error("unknown campaign should 404")
	}
	if server.Accepted() != 8 {
		t.Errorf("Accepted = %d", server.Accepted())
	}
}

func TestServerHealthz(t *testing.T) {
	srv := httptest.NewServer(NewServer(NewStore()))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status = %d", resp.StatusCode)
	}
}

func TestServerReadyz(t *testing.T) {
	s := NewServer(NewStore())
	srv := httptest.NewServer(s)
	defer srv.Close()
	readyz := func() (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body struct{ Status, Reason string }
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body.Reason
	}

	// No check installed: always ready.
	if code, _ := readyz(); code != http.StatusOK {
		t.Fatalf("default readyz = %d, want 200", code)
	}
	// An installed failing check flips readiness — liveness untouched.
	s.SetReadiness(func() error { return errors.New("wal boot replay in progress") })
	code, reason := readyz()
	if code != http.StatusServiceUnavailable || !strings.Contains(reason, "replay") {
		t.Fatalf("unready readyz = %d (reason %q), want 503 with the reason", code, reason)
	}
	if resp, err := http.Get(srv.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("liveness followed readiness down: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}
	// Boot code swaps the check once recovery completes.
	s.SetReadiness(func() error { return nil })
	if code, _ := readyz(); code != http.StatusOK {
		t.Fatalf("ready readyz = %d, want 200", code)
	}
}

func TestHTTPSinkRetries(t *testing.T) {
	store := NewStore()
	var failures int
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failures < 2 {
			failures++
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		NewServer(store).ServeHTTP(w, r)
	}))
	defer flaky.Close()
	sink := &HTTPSink{BaseURL: flaky.URL, Retries: 3}
	if err := sink.Submit(ev("i1", "c1", "", EventServed)); err != nil {
		t.Fatalf("retry path failed: %v", err)
	}
	if store.Len() != 1 {
		t.Error("event not stored after retries")
	}
	// 4xx does not retry.
	sink2 := &HTTPSink{BaseURL: flaky.URL, Retries: 3}
	err := sink2.Submit(Event{ImpressionID: "x", CampaignID: "c", Type: "bogus"})
	if err == nil {
		t.Error("invalid event should fail")
	}
}

func TestHTTPSinkConnectionRefused(t *testing.T) {
	sink := &HTTPSink{BaseURL: "http://127.0.0.1:1", Retries: 1}
	if err := sink.Submit(ev("i", "c", "", EventServed)); err == nil {
		t.Error("expected connection error")
	}
	if _, err := sink.FetchStats(""); err == nil {
		t.Error("expected stats fetch error")
	}
	if err := sink.SubmitBatch(nil); err != nil {
		t.Errorf("empty batch should be a no-op, got %v", err)
	}
}

func TestLossySink(t *testing.T) {
	store := NewStore()
	drops := 0
	lossy := &LossySink{Next: store, Drop: func(e Event) bool {
		drops++
		return drops%2 == 1 // drop every other event
	}}
	for i := 0; i < 10; i++ {
		mustSubmit(t, lossy, ev(strings.Repeat("x", i+1), "c", "", EventServed))
	}
	if store.Len() != 5 {
		t.Errorf("store has %d events, want 5", store.Len())
	}
}

func TestStampSink(t *testing.T) {
	store := NewStore()
	now := time.Date(2019, 12, 9, 12, 0, 0, 0, time.UTC)
	stamp := &StampSink{Next: store, Now: func() time.Time { return now }}
	mustSubmit(t, stamp, ev("i1", "c1", "", EventServed))
	pre := ev("i2", "c1", "", EventServed)
	pre.At = now.Add(-time.Hour)
	mustSubmit(t, stamp, pre)
	events := store.Events()
	if !events[0].At.Equal(now) {
		t.Errorf("unstamped event got %v", events[0].At)
	}
	if !events[1].At.Equal(now.Add(-time.Hour)) {
		t.Error("pre-stamped event must not be overwritten")
	}
}

func TestSinkFunc(t *testing.T) {
	var got Event
	s := SinkFunc(func(e Event) error { got = e; return nil })
	mustSubmit(t, s, ev("i", "c", "", EventServed))
	if got.ImpressionID != "i" {
		t.Error("SinkFunc did not pass event through")
	}
}

func TestConcurrentSubmit(t *testing.T) {
	s := NewStore()
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 500; i++ {
				s.Submit(Event{
					ImpressionID: strings.Repeat("g", g+1) + string(rune('0'+i%10)),
					CampaignID:   "c",
					Type:         EventServed,
					Seq:          i,
				})
			}
			done <- true
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if s.Len() == 0 {
		t.Error("no events stored")
	}
	_ = s.Events()
	_ = s.Counters()
}

// TestServerConcurrentHTTPSoak hammers the collection server from many
// goroutines over a real socket and verifies exact counters afterwards —
// idempotency plus the sharded store must absorb concurrent duplicates.
func TestServerConcurrentHTTPSoak(t *testing.T) {
	store := NewStore()
	srv := httptest.NewServer(NewServer(store))
	defer srv.Close()

	const workers = 8
	const perWorker = 50
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		go func(g int) {
			sink := &HTTPSink{BaseURL: srv.URL, Retries: 1}
			for i := 0; i < perWorker; i++ {
				imp := fmt.Sprintf("imp-%d", i) // same ids across workers: duplicates
				batch := []Event{
					{ImpressionID: imp, CampaignID: "soak", Type: EventServed},
					{ImpressionID: imp, CampaignID: "soak", Source: SourceQTag, Type: EventLoaded},
				}
				if err := sink.SubmitBatch(batch); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(g)
	}
	for g := 0; g < workers; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	// Every duplicate absorbed: exactly perWorker distinct impressions.
	if got := store.Served("soak"); got != perWorker {
		t.Errorf("served = %d, want %d", got, perWorker)
	}
	if got := store.Loaded("soak", SourceQTag); got != perWorker {
		t.Errorf("loaded = %d, want %d", got, perWorker)
	}
	if store.Len() != 2*perWorker {
		t.Errorf("store len = %d, want %d", store.Len(), 2*perWorker)
	}
}

package beacon

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestJournalRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	events := []Event{
		ev("a", "c1", "", EventServed),
		ev("a", "c1", SourceQTag, EventLoaded),
		ev("a", "c1", SourceQTag, EventInView),
	}
	for _, e := range events {
		mustSubmit(t, j, e)
	}
	if j.Len() != 3 {
		t.Errorf("Len = %d", j.Len())
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 3 {
		t.Errorf("journal lines = %d", got)
	}

	store := NewStore()
	st, err := ReplayJournal(&buf, store)
	if err != nil {
		t.Fatal(err)
	}
	if st.Replayed != 3 || st.Skipped != 0 {
		t.Errorf("replay stats = %+v", st)
	}
	if store.Served("c1") != 1 || store.InView("c1", SourceQTag) != 1 {
		t.Error("replayed store contents wrong")
	}
}

func TestJournalRejectsInvalid(t *testing.T) {
	j := NewJournal(&bytes.Buffer{})
	if err := j.Submit(Event{}); err == nil {
		t.Error("invalid event must not be journalled")
	}
	if j.Len() != 0 {
		t.Error("invalid event counted")
	}
}

func TestReplayTolerantOfCorruption(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	mustSubmit(t, j, ev("a", "c1", "", EventServed))
	mustSubmit(t, j, ev("b", "c1", "", EventServed))
	j.Flush()
	// Simulate a torn tail write plus garbage in the middle.
	content := buf.String()
	lines := strings.SplitAfter(content, "\n")
	corrupted := lines[0] + "NOT JSON AT ALL\n" + `{"type":"bogus"}` + "\n" + lines[1][:len(lines[1])/2]
	store := NewStore()
	st, err := ReplayJournal(strings.NewReader(corrupted), store)
	if err != nil {
		t.Fatal(err)
	}
	if st.Replayed != 1 {
		t.Errorf("replayed = %d, want 1", st.Replayed)
	}
	if st.Skipped != 3 { // garbage line, invalid event, torn tail
		t.Errorf("skipped = %d, want 3", st.Skipped)
	}
	if store.Served("c1") != 1 {
		t.Error("surviving event not replayed")
	}
}

func TestReplayEmptyAndBlankLines(t *testing.T) {
	store := NewStore()
	st, err := ReplayJournal(strings.NewReader("\n\n  \n"), store)
	if err != nil || st.Replayed != 0 || st.Skipped != 0 {
		t.Errorf("blank journal: %+v, %v", st, err)
	}
}

func TestJournalFileAndRestartFlow(t *testing.T) {
	// Full durability flow: journal to a file, "crash", replay into a
	// fresh store, append more, replay everything (idempotently).
	path := filepath.Join(t.TempDir(), "beacons.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	j := NewJournal(f)
	store := NewStore()
	sink := Tee(store, j)
	mustSubmit(t, sink, ev("a", "c1", "", EventServed))
	mustSubmit(t, sink, ev("a", "c1", SourceQTag, EventLoaded))
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: rebuild the store from disk.
	f2, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	restored := NewStore()
	st, err := ReplayJournal(f2, restored)
	if err != nil || st.Replayed != 2 {
		t.Fatalf("replay: %+v, %v", st, err)
	}
	if restored.Served("c1") != 1 || restored.Loaded("c1", SourceQTag) != 1 {
		t.Error("restored store wrong")
	}
	// Replaying again is harmless.
	f3, _ := os.Open(path)
	defer f3.Close()
	ReplayJournal(f3, restored)
	if restored.Len() != 2 {
		t.Errorf("idempotent replay broke: %d events", restored.Len())
	}
}

func TestTeeErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	bad := SinkFunc(func(Event) error { return boom })
	store := NewStore()
	sink := Tee(store, bad)
	if err := sink.Submit(ev("a", "c", "", EventServed)); !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
	// The earlier sink already ingested — that is documented and safe.
	if store.Len() != 1 {
		t.Error("first sink should have ingested")
	}
}

func TestPixelFallbackEndpoint(t *testing.T) {
	store := NewStore()
	server := NewServer(store)
	srv := httptest.NewServer(server)
	defer srv.Close()

	payload := `{"impression_id":"i1","campaign_id":"c1","source":"qtag","type":"in-view"}`
	resp, err := http.Get(srv.URL + "/v1/events?e=" + url.QueryEscape(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "image/gif" {
		t.Errorf("content type = %q", ct)
	}
	if store.InView("c1", SourceQTag) != 1 {
		t.Error("pixel event not ingested")
	}

	// Garbage still yields the GIF (the <img> can't handle errors) but
	// counts as rejected.
	resp2, err := http.Get(srv.URL + "/v1/events?e=garbage")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("garbage status = %d", resp2.StatusCode)
	}
	if server.Rejected() != 1 {
		t.Errorf("rejected = %d", server.Rejected())
	}
	// No parameter at all: just the pixel.
	resp3, _ := http.Get(srv.URL + "/v1/events")
	resp3.Body.Close()
	if store.Len() != 1 {
		t.Errorf("store grew unexpectedly: %d", store.Len())
	}
}

package beacon

import (
	"encoding/json"
	"testing"
	"time"
)

// benchEvents is a realistic ingest batch: production-shaped IDs, traced
// events, populated slicing metadata.
func benchEvents(n int) []Event {
	at := time.Unix(1500000000, 0).UTC()
	oses := []string{"android", "ios", "windows", "macos"}
	sites := []string{"news", "blog", "sports", "video"}
	out := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Event{
			ImpressionID: "load-w3-i004217",
			CampaignID:   "camp-11",
			Type:         EventInView,
			Source:       SourceQTag,
			At:           at,
			Seq:          i % 3,
			Trace:        "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
			Meta:         Meta{OS: oses[i%4], SiteType: sites[i%4], AdSize: "300x250"},
		})
	}
	return out
}

// BenchmarkBinaryCodec's allocs/op figures are gated exactly by `make
// alloc-gate` against the committed ALLOC_BASELINE.txt: encode and the
// pooled alias decode must stay at zero, the copying decodes at their
// fixed arena counts. Only deterministic benchmarks belong under this
// name — encoding/json's internals shift between Go versions, so the
// JSON contrast benches live under a name the gate does not match.
func BenchmarkBinaryCodec(b *testing.B) {
	events := benchEvents(64)
	frame := AppendBinaryEvents(nil, events)
	single := AppendBinaryEvent(nil, events[0])

	b.Run("encode", func(b *testing.B) {
		buf := make([]byte, 0, len(frame))
		b.ReportAllocs()
		b.SetBytes(int64(len(frame)))
		for i := 0; i < b.N; i++ {
			buf = AppendBinaryEvents(buf[:0], events)
		}
		if len(buf) != len(frame) {
			b.Fatal("encode drifted")
		}
	})
	b.Run("decode", func(b *testing.B) {
		// The steady-state ingest path: a pooled decoder that has already
		// grown its scratch. Zero allocs/op, enforced by the gate.
		var dec BatchDecoder
		if _, err := dec.Decode(frame); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.SetBytes(int64(len(frame)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := dec.Decode(frame); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode-copy", func(b *testing.B) {
		// The replay-path decode: one arena string + one []Event per batch.
		b.ReportAllocs()
		b.SetBytes(int64(len(frame)))
		for i := 0; i < b.N; i++ {
			if _, err := DecodeBinaryEvents(frame); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode-event", func(b *testing.B) {
		// The WAL/hint record decode: one arena string per record.
		b.ReportAllocs()
		b.SetBytes(int64(len(single)))
		for i := 0; i < b.N; i++ {
			if _, err := DecodeBinaryEvent(single); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEventKeyAppend is the store's dedup-key path: AppendKey into
// a stack buffer must not allocate (gated).
func BenchmarkEventKeyAppend(b *testing.B) {
	e := benchEvents(1)[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf [96]byte
		key := e.AppendKey(buf[:0])
		if len(key) == 0 {
			b.Fatal("empty key")
		}
	}
}

// JSON contrast benches — published in BENCH_PR10.json for the
// comparison story, excluded from the allocation gate because
// encoding/json allocation counts vary across Go versions.
func BenchmarkJSONCodecContrast(b *testing.B) {
	events := benchEvents(64)
	body, err := json.Marshal(events)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("encode", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(body)))
		for i := 0; i < b.N; i++ {
			if _, err := json.Marshal(events); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(body)))
		for i := 0; i < b.N; i++ {
			var out []Event
			if err := json.Unmarshal(body, &out); err != nil {
				b.Fatal(err)
			}
		}
	})
}

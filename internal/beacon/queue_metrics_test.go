package beacon

import (
	"context"
	"errors"
	"testing"
	"time"

	"qtag/internal/obs"
)

// TestQueueDroppedReasonSplit exercises every way an event leaves the
// queue undelivered and asserts the reason-labeled metric series account
// for each, while the unlabeled total (the pre-split series dashboards
// already chart) still equals overflow + shutdown.
func TestQueueDroppedReasonSplit(t *testing.T) {
	ev := func(id string) Event {
		return Event{ImpressionID: id, CampaignID: "c1", Source: "qtag", Type: EventInView, At: time.Unix(0, 0)}
	}

	// Permanent rejection: flushed into a downstream that refuses it.
	reject := SinkFunc(func(Event) error {
		return &PermanentError{Err: errors.New("server said 422")}
	})
	q := NewQueueSink(reject, QueueOptions{Sleep: func(time.Duration) {}})
	if err := q.Submit(ev("perm")); err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitFor(t, func() bool { return q.Stats().Failed == 1 })
	_ = q.Close(context.Background())

	// Overflow and shutdown drops, sequenced deterministically: the
	// drain blocks mid-delivery of "a" (which stays in the buffer until
	// acked), "b" fills the last slot, "c" overflows. Close force-stops
	// on an expired context, abandoning "b"; "d" arrives after close.
	block := make(chan struct{})
	release := make(chan struct{})
	blocking := SinkFunc(func(Event) error {
		close(block)
		<-release
		return nil
	})
	q2 := NewQueueSink(blocking, QueueOptions{Capacity: 2, Sleep: func(time.Duration) {}})
	if err := q2.Submit(ev("a")); err != nil {
		t.Fatalf("submit a: %v", err)
	}
	<-block // drain is inside deliver("a"); "a" still occupies its slot
	if err := q2.Submit(ev("b")); err != nil {
		t.Fatalf("submit b: %v", err)
	}
	if err := q2.Submit(ev("c")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit c: err = %v, want ErrQueueFull", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	closeDone := make(chan error, 1)
	go func() { closeDone <- q2.Close(ctx) }()
	// Only unblock the in-flight delivery after Close has force-stopped
	// the drain, so it exits before picking up "b".
	waitFor(t, q2.stopped)
	close(release)
	if err := <-closeDone; err == nil {
		t.Fatal("Close with expired ctx should report abandoned events")
	}
	if err := q2.Submit(ev("d")); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("post-close submit: err = %v, want ErrQueueClosed", err)
	}

	reg := obs.NewRegistry()
	q2.RegisterMetrics(reg)
	vals := reg.Values()
	if got := vals[`qtag_queue_dropped_total{reason="overflow"}`]; got != 1 {
		t.Fatalf(`dropped{overflow} = %v, want 1`, got)
	}
	if got := vals[`qtag_queue_dropped_total{reason="shutdown"}`]; got != 2 { // abandoned "b" + post-close "d"
		t.Fatalf(`dropped{shutdown} = %v, want 2`, got)
	}
	if got := vals[`qtag_queue_dropped_total`]; got != 3 {
		t.Fatalf("unlabeled dropped total = %v, want 3 (overflow+shutdown)", got)
	}

	regPerm := obs.NewRegistry()
	q.RegisterMetrics(regPerm)
	permVals := regPerm.Values()
	if got := permVals[`qtag_queue_dropped_total{reason="permanent-error"}`]; got != 1 {
		t.Fatalf(`dropped{permanent-error} = %v, want 1`, got)
	}
	if got := permVals[`qtag_queue_dropped_total`]; got != 0 {
		t.Fatalf("unlabeled total counts permanent rejections (%v); those belong to failed_total", got)
	}
}

// waitFor polls cond for up to 2s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached within 2s")
}

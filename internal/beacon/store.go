package beacon

import (
	"sort"
	"sync"
)

// CounterKey is the aggregation dimension tuple maintained incrementally
// by the store. Slicing queries (per campaign, per OS × site type) reduce
// over these keys, so they never scan raw events.
type CounterKey struct {
	CampaignID string
	Source     Source
	Type       EventType
	OS         string
	SiteType   string
	Exchange   string
	Country    string
}

// Store is an idempotent, thread-safe, in-memory event store with
// incremental aggregation counters. It is the reference implementation of
// the DSP's "distributed monitoring infrastructure" (§5) collapsed to a
// single process; the HTTP Server exposes it over the wire.
type Store struct {
	mu       sync.RWMutex
	shards   [storeShards]map[string]Event
	counters map[CounterKey]int
}

const storeShards = 16

// NewStore returns an empty store.
func NewStore() *Store {
	s := &Store{counters: make(map[CounterKey]int)}
	for i := range s.shards {
		s.shards[i] = make(map[string]Event)
	}
	return s
}

func shardFor(key string) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % storeShards)
}

// Submit validates and stores the event. Duplicate submissions (same
// idempotency key) are silently absorbed: at-least-once delivery from tags
// never inflates counters. Submit implements Sink.
func (s *Store) Submit(e Event) error {
	if err := e.Validate(); err != nil {
		return err
	}
	key := e.Key()
	shard := shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.shards[shard][key]; dup {
		return nil
	}
	s.shards[shard][key] = e
	s.counters[CounterKey{
		CampaignID: e.CampaignID,
		Source:     e.Source,
		Type:       e.Type,
		OS:         e.Meta.OS,
		SiteType:   e.Meta.SiteType,
		Exchange:   e.Meta.Exchange,
		Country:    e.Meta.Country,
	}]++
	return nil
}

// Len returns the number of distinct stored events.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for i := range s.shards {
		n += len(s.shards[i])
	}
	return n
}

// Events returns all stored events sorted by (campaign, impression,
// source, type, seq) for deterministic inspection. It copies; the result
// is safe to retain.
func (s *Store) Events() []Event {
	s.mu.RLock()
	out := make([]Event, 0, 64)
	for i := range s.shards {
		for _, e := range s.shards[i] {
			out = append(out, e)
		}
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.CampaignID != b.CampaignID {
			return a.CampaignID < b.CampaignID
		}
		if a.ImpressionID != b.ImpressionID {
			return a.ImpressionID < b.ImpressionID
		}
		if a.Source != b.Source {
			return a.Source < b.Source
		}
		if a.Type != b.Type {
			return a.Type < b.Type
		}
		return a.Seq < b.Seq
	})
	return out
}

// Count sums counters matching the predicate. A nil predicate matches
// everything.
func (s *Store) Count(match func(CounterKey) bool) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for k, c := range s.counters {
		if match == nil || match(k) {
			n += c
		}
	}
	return n
}

// Counters returns a copy of the aggregation counters.
func (s *Store) Counters() map[CounterKey]int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[CounterKey]int, len(s.counters))
	for k, v := range s.counters {
		out[k] = v
	}
	return out
}

// CampaignIDs returns the distinct campaign ids present, sorted.
func (s *Store) CampaignIDs() []string {
	s.mu.RLock()
	seen := make(map[string]bool)
	for k := range s.counters {
		seen[k.CampaignID] = true
	}
	s.mu.RUnlock()
	out := make([]string, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Served returns the number of served impressions for a campaign ("" for
// all campaigns).
func (s *Store) Served(campaignID string) int {
	return s.Count(func(k CounterKey) bool {
		return k.Type == EventServed && (campaignID == "" || k.CampaignID == campaignID)
	})
}

// Loaded returns the number of impressions a solution checked in on
// (measured) for a campaign ("" for all).
func (s *Store) Loaded(campaignID string, src Source) int {
	return s.Count(func(k CounterKey) bool {
		return k.Type == EventLoaded && k.Source == src &&
			(campaignID == "" || k.CampaignID == campaignID)
	})
}

// InView returns the number of first-cycle in-view impressions for a
// solution and campaign ("" for all). Repeated cycles (Seq > 0) are not
// double counted because Submit dedupes on (impression, source, type,
// seq) and qtag/commercial tags report the criteria being met once.
func (s *Store) InView(campaignID string, src Source) int {
	return s.Count(func(k CounterKey) bool {
		return k.Type == EventInView && k.Source == src &&
			(campaignID == "" || k.CampaignID == campaignID)
	})
}

package beacon

import (
	"sort"
	"sync"
)

// CounterKey is the aggregation dimension tuple maintained incrementally
// by the store. Slicing queries (per campaign, per OS × site type) reduce
// over these keys, so they never scan raw events.
type CounterKey struct {
	CampaignID string
	Source     Source
	Type       EventType
	OS         string
	SiteType   string
	Exchange   string
	Country    string
}

// storeShard is one independently locked partition of the store: its own
// dedup map and its own aggregation counters, so concurrent Submits on
// different impressions never contend on a shared mutex. Read paths
// (Len, Events, Count, …) merge across shards under per-shard RLocks.
type storeShard struct {
	mu       sync.RWMutex
	events   map[string]Event
	counters map[CounterKey]int
}

// Store is an idempotent, thread-safe, in-memory event store with
// incremental aggregation counters, sharded by impression-ID hash so the
// ingest path scales with cores. It is the reference implementation of
// the DSP's "distributed monitoring infrastructure" (§5) collapsed to a
// single process; the HTTP Server exposes it over the wire.
type Store struct {
	shards []storeShard
	mask   uint32 // len(shards)-1; shard count is a power of two

	// observers are invoked, in registration order, for every first-seen
	// event while the event's shard lock is held — duplicates never reach
	// them. See AddObserver.
	observers []func(Event)
	// dupObservers are invoked, in registration order, for every
	// duplicate submission (same idempotency key as a stored event),
	// under the same shard lock. First-seen events never reach them; the
	// two hook sets partition every valid submission. See AddDupObserver.
	dupObservers []func(Event)
}

// DefaultStoreShards is the shard count NewStore picks.
const DefaultStoreShards = 16

// maxStoreShards bounds NewStoreWithShards; beyond this the per-shard
// fixed overhead dominates any contention win.
const maxStoreShards = 1024

// NewStore returns an empty store with DefaultStoreShards shards.
func NewStore() *Store { return NewStoreWithShards(DefaultStoreShards) }

// NewStoreWithShards returns an empty store partitioned into n shards,
// rounded up to the next power of two and clamped to [1, 1024]. One
// shard reproduces the seed single-lock store exactly (the equivalence
// property tests assert this); the shard count never changes observable
// behaviour, only contention.
func NewStoreWithShards(n int) *Store {
	if n < 1 {
		n = 1
	}
	if n > maxStoreShards {
		n = maxStoreShards
	}
	// Round up to a power of two so shard selection is a mask, not a mod.
	size := 1
	for size < n {
		size <<= 1
	}
	s := &Store{shards: make([]storeShard, size), mask: uint32(size - 1)}
	for i := range s.shards {
		s.shards[i].events = make(map[string]Event)
		s.shards[i].counters = make(map[CounterKey]int)
	}
	return s
}

// Shards returns the store's shard count (always a power of two).
func (s *Store) Shards() int { return len(s.shards) }

// AddObserver appends a first-seen-event hook: fn is called exactly
// once per distinct idempotency key, under the event's shard lock, so
// for any one impression the calls are serialized in store-insertion
// order and atomic with the insertion itself. Duplicate submissions
// never fire it — an observer inherits the store's dedup for free,
// which is what lets the streaming aggregation and fraud-detection
// layers stay idempotent under at-least-once beacon delivery and WAL
// replay. Multiple observers fan out in registration order on every
// first-seen event; each sees exactly the same event stream.
//
// AddObserver must be called before the store starts ingesting (it is
// not synchronized against concurrent Submits), and fn must not call
// back into the store.
func (s *Store) AddObserver(fn func(Event)) { s.observers = append(s.observers, fn) }

// SetObserver installs fn as the sole first-seen observer — the
// pre-fan-out API, kept as a compatibility wrapper. Its historical
// replace semantics would silently disconnect whatever is already
// wired (the aggregator, the fraud detector), so a call on a store
// that has observers panics: a straggler SetObserver after -detect
// wiring is a bug, not a request.
//
// Deprecated: use AddObserver, which composes instead of replacing.
func (s *Store) SetObserver(fn func(Event)) {
	if len(s.observers) > 0 {
		panic("beacon: SetObserver would discard registered observers; use AddObserver")
	}
	s.observers = []func(Event){fn}
}

// AddDupObserver appends a duplicate-submission hook: fn is called,
// under the event's shard lock, every time a valid submission is
// absorbed as a duplicate of an already-stored event. First-seen
// events never fire it. Idempotent delivery makes duplicates invisible
// to counters by design, so this hook is the only place duplicate
// *pressure* — HTTP retry storms, bot farms replaying captured beacons
// — is observable; internal/detect feeds its flood detector from it.
// The server journals every accepted submission (not just first-seen
// ones), so a WAL replay into an empty store re-fires dup hooks for
// the same submissions and duplicate statistics rebuild with the rest.
//
// Like AddObserver, it must be registered before ingest starts and fn
// must not call back into the store.
func (s *Store) AddDupObserver(fn func(Event)) { s.dupObservers = append(s.dupObservers, fn) }

// shardFor picks the shard for an event via the shared addressing hash
// (HashID): every event of one impression (and therefore every
// duplicate of one idempotency key) lands in the same shard. The same
// hash drives node selection in internal/cluster, so in-process and
// cross-node routing never disagree about an impression.
func (s *Store) shardFor(e Event) *storeShard {
	return &s.shards[HashID(e.ImpressionID)&s.mask]
}

// Submit validates and stores the event. Duplicate submissions (same
// idempotency key) are silently absorbed: at-least-once delivery from tags
// never inflates counters. Submit implements Sink.
func (s *Store) Submit(e Event) error {
	if err := e.Validate(); err != nil {
		return err
	}
	// The key is built into a stack scratch buffer and the dup check is a
	// string(key) map lookup, which the compiler performs without
	// materializing the string — so the steady state (duplicate and
	// counter-only traffic) allocates nothing for keys. Only a first-seen
	// insert converts for real, because the map must own its key.
	var kb [96]byte
	key := e.AppendKey(kb[:0])
	sh := s.shardFor(e)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, dup := sh.events[string(key)]; dup {
		for _, fn := range s.dupObservers {
			fn(e)
		}
		return nil
	}
	sh.events[string(key)] = e
	sh.counters[CounterKey{
		CampaignID: e.CampaignID,
		Source:     e.Source,
		Type:       e.Type,
		OS:         e.Meta.OS,
		SiteType:   e.Meta.SiteType,
		Exchange:   e.Meta.Exchange,
		Country:    e.Meta.Country,
	}]++
	for _, fn := range s.observers {
		fn(e)
	}
	return nil
}

// Len returns the number of distinct stored events.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.events)
		sh.mu.RUnlock()
	}
	return n
}

// Events returns all stored events sorted by (campaign, impression,
// source, type, seq) for deterministic inspection. It copies; the result
// is safe to retain. The merge takes shard locks one at a time, so the
// result is a consistent snapshot only of each shard, not of the whole
// store — fine for an append-only event set.
func (s *Store) Events() []Event {
	out := make([]Event, 0, 64)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, e := range sh.events {
			out = append(out, e)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.CampaignID != b.CampaignID {
			return a.CampaignID < b.CampaignID
		}
		if a.ImpressionID != b.ImpressionID {
			return a.ImpressionID < b.ImpressionID
		}
		if a.Source != b.Source {
			return a.Source < b.Source
		}
		if a.Type != b.Type {
			return a.Type < b.Type
		}
		return a.Seq < b.Seq
	})
	return out
}

// Count sums counters matching the predicate across all shards. A nil
// predicate matches everything.
func (s *Store) Count(match func(CounterKey) bool) int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, c := range sh.counters {
			if match == nil || match(k) {
				n += c
			}
		}
		sh.mu.RUnlock()
	}
	return n
}

// Counters returns a merged copy of the aggregation counters.
func (s *Store) Counters() map[CounterKey]int {
	out := make(map[CounterKey]int)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, v := range sh.counters {
			out[k] += v
		}
		sh.mu.RUnlock()
	}
	return out
}

// CampaignIDs returns the distinct campaign ids present, sorted.
func (s *Store) CampaignIDs() []string {
	seen := make(map[string]bool)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k := range sh.counters {
			seen[k.CampaignID] = true
		}
		sh.mu.RUnlock()
	}
	out := make([]string, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Served returns the number of served impressions for a campaign ("" for
// all campaigns).
func (s *Store) Served(campaignID string) int {
	return s.Count(func(k CounterKey) bool {
		return k.Type == EventServed && (campaignID == "" || k.CampaignID == campaignID)
	})
}

// Loaded returns the number of impressions a solution checked in on
// (measured) for a campaign ("" for all).
func (s *Store) Loaded(campaignID string, src Source) int {
	return s.Count(func(k CounterKey) bool {
		return k.Type == EventLoaded && k.Source == src &&
			(campaignID == "" || k.CampaignID == campaignID)
	})
}

// InView returns the number of first-cycle in-view impressions for a
// solution and campaign ("" for all). Repeated cycles (Seq > 0) are not
// double counted because Submit dedupes on (impression, source, type,
// seq) and qtag/commercial tags report the criteria being met once.
func (s *Store) InView(campaignID string, src Source) int {
	return s.Count(func(k CounterKey) bool {
		return k.Type == EventInView && k.Source == src &&
			(campaignID == "" || k.CampaignID == campaignID)
	})
}

package beacon

import (
	"log/slog"
	"net/http"
	"strings"
	"time"

	"qtag/internal/obs"
	"qtag/internal/version"
)

// responseRecorder captures the status code and body size a handler
// produced, for the access log and for span attributes.
type responseRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
	wrote  bool
}

func (r *responseRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.status = code
		r.wrote = true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *responseRecorder) Write(p []byte) (int, error) {
	r.wrote = true
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

// Flush forwards http.Flusher so streaming handlers keep working
// behind the recorder.
func (r *responseRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// AccessLogOptions configures AccessLog.
type AccessLogOptions struct {
	// Logger receives the log lines (slog.Default when nil).
	Logger *slog.Logger
	// LogAll emits one INFO line per request. Off by default: at ingest
	// rates an unconditional access log is itself a perf hazard.
	LogAll bool
	// SlowThreshold, when > 0, emits a WARN "slow request" line for any
	// request at least this slow — the flag-gated slow-request log that
	// carries the trace ID for /debug/traces lookup.
	SlowThreshold time.Duration
	// SkipUserAgentPrefixes drops matching requests from the log
	// entirely. Defaults to the cluster probe prefix ("qtag-probe/") so
	// failure-detector traffic cannot flood the log.
	SkipUserAgentPrefixes []string
	// Now overrides the clock (tests).
	Now func() time.Time
}

// AccessLog wraps next with per-request logging: method, path, status,
// response bytes, duration, and the request's trace ID when tracing is
// active. With neither LogAll nor SlowThreshold set it returns next
// unchanged — zero overhead when disabled.
func AccessLog(next http.Handler, opts AccessLogOptions) http.Handler {
	if !opts.LogAll && opts.SlowThreshold <= 0 {
		return next
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.Default()
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	skip := opts.SkipUserAgentPrefixes
	if skip == nil {
		skip = []string{version.ProbeUserAgentPrefix}
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ua := r.Header.Get("User-Agent")
		for _, p := range skip {
			if strings.HasPrefix(ua, p) {
				next.ServeHTTP(w, r)
				return
			}
		}
		start := now()
		rec := &responseRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		elapsed := now().Sub(start)

		slow := opts.SlowThreshold > 0 && elapsed >= opts.SlowThreshold
		if !opts.LogAll && !slow {
			return
		}
		// The server span rewrites the request's traceparent to itself
		// and mirrors the trace ID into the Trace-Id response header;
		// prefer the header (it is set even for new roots).
		traceID := rec.Header().Get(obs.TraceIDResponseHeader)
		if traceID == "" {
			if sc, err := obs.ParseTraceParent(r.Header.Get(obs.TraceParentHeader)); err == nil {
				traceID = sc.TraceID.String()
			}
		}
		attrs := []any{
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", rec.status),
			slog.Int64("bytes", rec.bytes),
			slog.Duration("duration", elapsed),
		}
		if traceID != "" {
			attrs = append(attrs, slog.String("trace_id", traceID))
		}
		switch {
		case slow:
			logger.Warn("slow request", attrs...)
		case rec.status >= 500:
			logger.Error("request", attrs...)
		case rec.status >= 400:
			logger.Warn("request", attrs...)
		default:
			logger.Info("request", attrs...)
		}
	})
}

package beacon

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"qtag/internal/obs"
)

// ErrBreakerOpen is returned by a CircuitBreaker while it is refusing
// traffic. It is retryable (not a PermanentError): a QueueSink above the
// breaker keeps the events buffered and retries after its delay.
var ErrBreakerOpen = errors.New("beacon: circuit breaker open")

// BreakerState enumerates the circuit breaker's states.
type BreakerState int32

// Breaker states, in the classic closed → open → half-open cycle.
const (
	// BreakerClosed passes traffic through, counting consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen refuses traffic until the cool-down elapses.
	BreakerOpen
	// BreakerHalfOpen lets a single probe through; its outcome decides
	// between closing and re-opening.
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Default breaker tuning.
const (
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 30 * time.Second
)

// CircuitBreaker wraps a Sink and stops hammering a downed collector:
// after Threshold consecutive retryable failures it opens and fails fast
// with ErrBreakerOpen for Cooldown, then lets one probe submission
// through (half-open). A successful probe closes the breaker; a failed
// one re-opens it for another cool-down. Permanent errors (4xx) count as
// contact with a live server and do not trip the breaker.
//
// CircuitBreaker implements Sink and BatchSink and is safe for
// concurrent use. The clock is injectable (SetClock) like
// RateLimiter's, so tests and simulations drive state transitions
// deterministically.
type CircuitBreaker struct {
	next      Sink
	batchNext BatchSink // non-nil when next supports batching
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu            sync.Mutex
	state         BreakerState
	failures      int       // consecutive retryable failures while closed
	openedAt      time.Time // when the breaker last opened
	probeInFlight bool      // half-open: a probe is out

	tripped  atomic.Int64
	rejected atomic.Int64
}

// NewCircuitBreaker wraps next. Non-positive threshold or cooldown pick
// the defaults.
func NewCircuitBreaker(next Sink, threshold int, cooldown time.Duration) *CircuitBreaker {
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	b := &CircuitBreaker{next: next, threshold: threshold, cooldown: cooldown, now: time.Now}
	if bn, ok := next.(BatchSink); ok {
		b.batchNext = bn
	}
	return b
}

// SetClock overrides the breaker's time source (tests, simulations).
func (b *CircuitBreaker) SetClock(now func() time.Time) {
	b.mu.Lock()
	b.now = now
	b.mu.Unlock()
}

// State returns the current breaker state (open breakers that have
// finished cooling down still report open until a probe is attempted).
func (b *CircuitBreaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Tripped returns how many times the breaker has opened.
func (b *CircuitBreaker) Tripped() int64 { return b.tripped.Load() }

// Rejected returns how many submissions were refused while open.
func (b *CircuitBreaker) Rejected() int64 { return b.rejected.Load() }

// RegisterMetrics exports the breaker's state and trip/reject counters
// on the registry. The state gauge encodes the classic cycle: 0 closed,
// 1 open, 2 half-open.
func (b *CircuitBreaker) RegisterMetrics(r *obs.Registry) {
	r.GaugeFunc("qtag_breaker_state", "Circuit breaker state: 0 closed, 1 open, 2 half-open.",
		func() float64 { return float64(b.State()) })
	r.CounterFunc("qtag_breaker_trips_total", "Times the breaker has opened.", b.tripped.Load)
	r.CounterFunc("qtag_breaker_rejected_total", "Submissions refused while the breaker was open.", b.rejected.Load)
}

// Submit implements Sink.
func (b *CircuitBreaker) Submit(e Event) error {
	if err := b.allow(); err != nil {
		return err
	}
	err := b.next.Submit(e)
	b.record(err)
	return err
}

// SubmitBatch implements BatchSink. The whole batch counts as one
// request for breaker accounting.
func (b *CircuitBreaker) SubmitBatch(events []Event) error {
	if err := b.allow(); err != nil {
		return err
	}
	var err error
	if b.batchNext != nil {
		err = b.batchNext.SubmitBatch(events)
	} else {
		for _, e := range events {
			if err = b.next.Submit(e); err != nil && !IsPermanent(err) {
				break
			}
		}
	}
	b.record(err)
	return err
}

// allow decides whether a submission may proceed.
func (b *CircuitBreaker) allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			b.rejected.Add(1)
			return ErrBreakerOpen
		}
		b.state = BreakerHalfOpen
		b.probeInFlight = true
		return nil
	default: // half-open
		if b.probeInFlight {
			b.rejected.Add(1)
			return ErrBreakerOpen
		}
		b.probeInFlight = true
		return nil
	}
}

// record folds a submission outcome into the breaker state. Permanent
// errors mean the server is up and talking; they reset the failure
// streak like a success.
func (b *CircuitBreaker) record(err error) {
	failure := err != nil && !IsPermanent(err)
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probeInFlight = false
	if !failure {
		b.state = BreakerClosed
		b.failures = 0
		return
	}
	switch b.state {
	case BreakerHalfOpen:
		// Failed probe: straight back to open for another cool-down.
		b.trip()
	default:
		b.failures++
		if b.state == BreakerClosed && b.failures >= b.threshold {
			b.trip()
		}
	}
}

// trip opens the breaker; callers hold b.mu.
func (b *CircuitBreaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.failures = 0
	b.tripped.Add(1)
}

package beacon

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// scriptedSink fails batches until unblocked; it records delivered events.
type scriptedSink struct {
	mu        sync.Mutex
	failWith  error // returned while set
	delivered []Event
	batches   int
}

func (s *scriptedSink) SubmitBatch(events []Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.batches++
	if s.failWith != nil {
		return s.failWith
	}
	s.delivered = append(s.delivered, events...)
	return nil
}

func (s *scriptedSink) Submit(e Event) error { return s.SubmitBatch([]Event{e}) }

func (s *scriptedSink) setFail(err error) {
	s.mu.Lock()
	s.failWith = err
	s.mu.Unlock()
}

func (s *scriptedSink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.delivered)
}

func drainAndClose(t *testing.T, q *QueueSink) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := q.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestQueueSinkDeliversAll(t *testing.T) {
	next := &scriptedSink{}
	q := NewQueueSink(next, QueueOptions{Capacity: 1000, MaxBatch: 32, RetryDelay: time.Millisecond})
	for i := 0; i < 500; i++ {
		if err := q.Submit(ev(itoa(i), "c1", SourceQTag, EventLoaded)); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	drainAndClose(t, q)
	if next.count() != 500 {
		t.Errorf("delivered %d, want 500", next.count())
	}
	st := q.Stats()
	if st.Enqueued != 500 || st.Flushed != 500 || st.Dropped != 0 || st.Failed != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestQueueSinkRetriesUntilDownstreamHeals(t *testing.T) {
	next := &scriptedSink{}
	next.setFail(errors.New("collector down"))
	q := NewQueueSink(next, QueueOptions{Capacity: 100, MaxBatch: 10, RetryDelay: time.Millisecond})
	for i := 0; i < 50; i++ {
		if err := q.Submit(ev(itoa(i), "c1", SourceQTag, EventLoaded)); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	// Let a few failing flushes happen, then heal.
	time.Sleep(20 * time.Millisecond)
	if next.count() != 0 {
		t.Fatalf("delivered %d during outage", next.count())
	}
	next.setFail(nil)
	drainAndClose(t, q)
	if next.count() != 50 {
		t.Errorf("delivered %d after heal, want 50 (zero loss)", next.count())
	}
	if st := q.Stats(); st.Retried == 0 {
		t.Error("expected retried > 0 during outage")
	}
}

func TestQueueSinkOverflowDropsAndCounts(t *testing.T) {
	next := &scriptedSink{}
	next.setFail(errors.New("collector down"))
	q := NewQueueSink(next, QueueOptions{Capacity: 10, MaxBatch: 4, RetryDelay: time.Hour})
	var full int
	for i := 0; i < 25; i++ {
		if err := q.Submit(ev(itoa(i), "c1", SourceQTag, EventLoaded)); errors.Is(err, ErrQueueFull) {
			full++
		}
	}
	st := q.Stats()
	if st.Dropped < 10 || st.Enqueued > 14 {
		t.Errorf("overflow accounting: %+v (dropped submits seen: %d)", st, full)
	}
	if full != int(st.Dropped) {
		t.Errorf("ErrQueueFull count %d != dropped counter %d", full, st.Dropped)
	}
	if st.Enqueued+st.Dropped != 25 {
		t.Errorf("enqueued+dropped = %d, want 25", st.Enqueued+st.Dropped)
	}
	// Force-stop: the drain goroutine is parked in an hour-long retry
	// delay, so the deadline expires and the buffer is abandoned.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := q.Close(ctx); err == nil {
		t.Error("expected close deadline error with undeliverable buffer")
	}
	// Every submitted event is now accounted for: 10 abandoned in the
	// buffer plus 15 overflow drops.
	if st := q.Stats(); st.Dropped != 25 || st.Flushed != 0 || st.Depth != 0 {
		t.Errorf("after abandon, stats = %+v, want 25 dropped", st)
	}
}

func TestQueueSinkDropsPoisonBatch(t *testing.T) {
	next := &scriptedSink{}
	next.setFail(&PermanentError{Err: errors.New("rejected")})
	q := NewQueueSink(next, QueueOptions{Capacity: 10, MaxBatch: 10, RetryDelay: time.Millisecond})
	for i := 0; i < 5; i++ {
		_ = q.Submit(ev(itoa(i), "c1", SourceQTag, EventLoaded))
	}
	drainAndClose(t, q)
	st := q.Stats()
	if st.Failed != 5 || st.Flushed != 0 {
		t.Errorf("poison batch stats = %+v, want 5 failed", st)
	}
}

func TestQueueSinkSubmitAfterClose(t *testing.T) {
	q := NewQueueSink(&scriptedSink{}, QueueOptions{})
	drainAndClose(t, q)
	if err := q.Submit(ev("i1", "c1", SourceQTag, EventLoaded)); !errors.Is(err, ErrQueueClosed) {
		t.Errorf("submit after close = %v, want ErrQueueClosed", err)
	}
}

// itoa avoids importing strconv in several tests.
func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	pos := len(b)
	for i > 0 {
		pos--
		b[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(b[pos:])
}

package beacon

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// flakyHandler fails the first n requests with the given status before
// delegating to a real collection server.
func flakyHandler(t *testing.T, store *Store, n int, status int, retryAfter string) (http.Handler, *atomic.Int64) {
	t.Helper()
	server := NewServer(store)
	var calls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= int64(n) {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			http.Error(w, "pushback", status)
			return
		}
		server.ServeHTTP(w, r)
	})
	return h, &calls
}

func TestHTTPSink429IsRetried(t *testing.T) {
	store := NewStore()
	h, calls := flakyHandler(t, store, 2, http.StatusTooManyRequests, "")
	srv := httptest.NewServer(h)
	defer srv.Close()

	sink := &HTTPSink{BaseURL: srv.URL, Retries: 3, Sleep: func(time.Duration) {}}
	if err := sink.Submit(ev("i1", "c1", "", EventServed)); err != nil {
		t.Fatalf("429 should be retryable: %v", err)
	}
	if store.Len() != 1 {
		t.Error("event not stored after 429 retries")
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("request count = %d, want 3", got)
	}
	if sink.Retried() != 2 {
		t.Errorf("Retried = %d, want 2", sink.Retried())
	}
}

func TestHTTPSinkHonorsRetryAfter(t *testing.T) {
	store := NewStore()
	h, _ := flakyHandler(t, store, 1, http.StatusServiceUnavailable, "3")
	srv := httptest.NewServer(h)
	defer srv.Close()

	var slept []time.Duration
	sink := &HTTPSink{
		BaseURL: srv.URL,
		Retries: 2,
		Sleep:   func(d time.Duration) { slept = append(slept, d) },
	}
	if err := sink.Submit(ev("i1", "c1", "", EventServed)); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if len(slept) != 1 || slept[0] != 3*time.Second {
		t.Errorf("slept %v, want one 3s delay from Retry-After", slept)
	}
}

func TestHTTPSinkClientErrorIsPermanent(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "bad payload", http.StatusBadRequest)
	}))
	defer srv.Close()

	calls := 0
	sink := &HTTPSink{BaseURL: srv.URL, Retries: 5, Sleep: func(time.Duration) { calls++ }}
	err := sink.Submit(ev("i1", "c1", "", EventServed))
	if err == nil {
		t.Fatal("expected error")
	}
	if !IsPermanent(err) {
		t.Errorf("400 should be permanent, got %v", err)
	}
	if calls != 0 {
		t.Errorf("permanent error slept %d times", calls)
	}
	if sink.Failed() != 1 {
		t.Errorf("Failed = %d, want 1", sink.Failed())
	}
}

func TestHTTPSinkTimeout(t *testing.T) {
	block := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	defer srv.Close()
	defer close(block)

	sink := &HTTPSink{BaseURL: srv.URL, Timeout: 20 * time.Millisecond, Sleep: func(time.Duration) {}}
	err := sink.Submit(ev("i1", "c1", "", EventServed))
	if err == nil {
		t.Fatal("expected timeout error")
	}
	if IsPermanent(err) {
		t.Errorf("timeout must stay retryable, got %v", err)
	}
}

func TestBackoffSchedule(t *testing.T) {
	h := &HTTPSink{BackoffBase: 10 * time.Millisecond, BackoffMax: 40 * time.Millisecond}
	want := []time.Duration{
		10 * time.Millisecond, // attempt 1
		20 * time.Millisecond,
		40 * time.Millisecond,
		40 * time.Millisecond, // capped
	}
	for i, w := range want {
		if got := h.backoff(i+1, errors.New("x")); got != w {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, w)
		}
	}

	// Injected jitter spreads the delay over [delay/2, delay).
	h.Jitter = func() float64 { return 0 }
	if got := h.backoff(1, nil); got != 5*time.Millisecond {
		t.Errorf("jitter floor = %v, want 5ms", got)
	}
	h.Jitter = func() float64 { return 0.9999999 }
	if got := h.backoff(1, nil); got < 9*time.Millisecond || got >= 10*time.Millisecond {
		t.Errorf("jitter ceiling = %v, want just under 10ms", got)
	}

	// Retry-After overrides the schedule; absurd values are capped.
	ra := &statusError{status: 429, retryAfter: time.Hour}
	if got := h.backoff(1, ra); got != maxRetryAfter {
		t.Errorf("retry-after cap = %v, want %v", got, maxRetryAfter)
	}
}

// Equivalence property tests: the PR 4 scalability work (store sharding,
// WAL group commit) must be observationally invisible. For random event
// streams — duplicates, multiple campaigns, mixed sources — a sharded
// store at any shard count produces exactly the seed single-lock store's
// event set, counters and reconciliation output; and a WAL written
// through the group committer replays to state byte-identical to one
// written with per-record appends.
//
// External test package like durable_test.go: everything goes through
// the public API.
package beacon_test

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	. "qtag/internal/beacon"
	"qtag/internal/simrand"
	"qtag/internal/wal"
)

// seedStore is the seed repository's store collapsed to its essentials:
// one mutex, one dedup map, one counter map. It is the equivalence
// oracle the sharded store is compared against.
type seedStore struct {
	mu       sync.Mutex
	events   map[string]Event
	counters map[CounterKey]int
}

func newSeedStore() *seedStore {
	return &seedStore{events: make(map[string]Event), counters: make(map[CounterKey]int)}
}

func (s *seedStore) Submit(e Event) error {
	if err := e.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	key := e.Key()
	if _, dup := s.events[key]; dup {
		return nil
	}
	s.events[key] = e
	s.counters[CounterKey{
		CampaignID: e.CampaignID,
		Source:     e.Source,
		Type:       e.Type,
		OS:         e.Meta.OS,
		SiteType:   e.Meta.SiteType,
		Exchange:   e.Meta.Exchange,
		Country:    e.Meta.Country,
	}]++
	return nil
}

// randomStream draws n events with deliberate collisions: few campaigns
// and impressions, every type/source combination, and enough repeats
// that dedup paths are exercised. Non-key fields (At, Meta) are derived
// from the impression index, so two stream entries with the same
// idempotency key are byte-identical — the precondition for order
// independence (with distinct payloads under one key, "which duplicate
// wins" legitimately depends on arrival order).
func randomStream(seed uint64, n int) []Event {
	rng := simrand.New(seed).Fork("equiv-stream")
	types := []EventType{EventServed, EventLoaded, EventInView, EventOutOfView}
	sources := []Source{SourceQTag, SourceCommercial}
	oses := []string{"android", "ios", ""}
	sites := []string{"news", "video", ""}
	out := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		typ := types[rng.Intn(len(types))]
		imp := rng.Intn(n/4 + 1)
		e := Event{
			ImpressionID: fmt.Sprintf("imp-%d", imp),
			CampaignID:   fmt.Sprintf("camp-%d", imp%3),
			Type:         typ,
			At:           time.Unix(1500000000+int64(imp), 0).UTC(),
			Seq:          imp % 2,
			Meta: Meta{
				OS:       oses[imp%len(oses)],
				SiteType: sites[(imp/3)%len(sites)],
			},
		}
		if typ != EventServed {
			e.Source = sources[imp%len(sources)]
		}
		out = append(out, e)
	}
	return out
}

// reconciliation is the slice of store outputs the stats endpoints and
// end-of-run reconciliation checks read; two equivalent stores must
// agree on every field.
type reconciliation struct {
	Len         int
	CampaignIDs []string
	Counters    map[CounterKey]int
	Served      map[string]int
	Loaded      map[string]map[Source]int
	InView      map[string]map[Source]int
}

func reconcile(s *Store) reconciliation {
	rec := reconciliation{
		Len:         s.Len(),
		CampaignIDs: s.CampaignIDs(),
		Counters:    s.Counters(),
		Served:      map[string]int{},
		Loaded:      map[string]map[Source]int{},
		InView:      map[string]map[Source]int{},
	}
	for _, id := range append([]string{""}, rec.CampaignIDs...) {
		rec.Served[id] = s.Served(id)
		rec.Loaded[id] = map[Source]int{}
		rec.InView[id] = map[Source]int{}
		for _, src := range []Source{SourceQTag, SourceCommercial} {
			rec.Loaded[id][src] = s.Loaded(id, src)
			rec.InView[id][src] = s.InView(id, src)
		}
	}
	return rec
}

func TestStoreShardsRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{-3, 1}, {0, 1}, {1, 1}, {2, 2}, {3, 4}, {8, 8}, {9, 16}, {16, 16}, {17, 32}, {1 << 20, 1024},
	} {
		if got := NewStoreWithShards(tc.in).Shards(); got != tc.want {
			t.Errorf("NewStoreWithShards(%d).Shards() = %d, want %d", tc.in, got, tc.want)
		}
	}
	if got := NewStore().Shards(); got != DefaultStoreShards {
		t.Errorf("NewStore().Shards() = %d, want %d", got, DefaultStoreShards)
	}
}

// TestShardedStoreEquivalence: sequential application of a random
// stream yields identical state at every shard count, matching the seed
// single-lock oracle.
func TestShardedStoreEquivalence(t *testing.T) {
	for _, seed := range []uint64{1, 2019, 0xdeadbeef} {
		stream := randomStream(seed, 600)
		oracle := newSeedStore()
		for _, e := range stream {
			oracle.Submit(e)
		}
		for _, shards := range []int{1, 2, 8, 16} {
			store := NewStoreWithShards(shards)
			for _, e := range stream {
				if err := store.Submit(e); err != nil {
					t.Fatalf("seed=%d shards=%d: submit: %v", seed, shards, err)
				}
			}
			assertMatchesOracle(t, fmt.Sprintf("seed=%d shards=%d", seed, shards), store, oracle)
		}
	}
}

// TestShardedStoreConcurrentEquivalence: the same stream applied from
// many goroutines (interleaving unknown) still converges to the oracle
// state — submission order never matters to an idempotent store.
func TestShardedStoreConcurrentEquivalence(t *testing.T) {
	stream := randomStream(77, 800)
	oracle := newSeedStore()
	for _, e := range stream {
		oracle.Submit(e)
	}
	for _, shards := range []int{1, 2, 8, 16} {
		store := NewStoreWithShards(shards)
		const workers = 8
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				// Striped assignment: every event submitted exactly once,
				// but interleaved across goroutines.
				for i := w; i < len(stream); i += workers {
					store.Submit(stream[i])
				}
				// And a second full pass from the last worker: duplicates
				// from every shard must be absorbed.
				if w == workers-1 {
					for _, e := range stream {
						store.Submit(e)
					}
				}
			}(w)
		}
		wg.Wait()
		assertMatchesOracle(t, fmt.Sprintf("concurrent shards=%d", shards), store, oracle)
	}
}

func assertMatchesOracle(t *testing.T, label string, store *Store, oracle *seedStore) {
	t.Helper()
	// Identical event sets.
	if store.Len() != len(oracle.events) {
		t.Fatalf("%s: Len = %d, oracle %d", label, store.Len(), len(oracle.events))
	}
	for _, e := range store.Events() {
		oe, ok := oracle.events[e.Key()]
		if !ok {
			t.Fatalf("%s: store holds %q, oracle does not", label, e.Key())
		}
		if !reflect.DeepEqual(e, oe) {
			t.Fatalf("%s: event %q differs: %+v vs %+v", label, e.Key(), e, oe)
		}
	}
	// Identical counters.
	if got := store.Counters(); !reflect.DeepEqual(got, oracle.counters) {
		t.Fatalf("%s: counters diverge:\n got %v\nwant %v", label, got, oracle.counters)
	}
}

// TestShardedStoreReconciliationEquivalence: the reconciliation surface
// (Len, CampaignIDs, Served/Loaded/InView at every slice) is identical
// across shard counts.
func TestShardedStoreReconciliationEquivalence(t *testing.T) {
	stream := randomStream(4242, 700)
	var baseline *reconciliation
	for _, shards := range []int{1, 2, 8, 16} {
		store := NewStoreWithShards(shards)
		for _, e := range stream {
			store.Submit(e)
		}
		rec := reconcile(store)
		if baseline == nil {
			baseline = &rec
			continue
		}
		if !reflect.DeepEqual(rec, *baseline) {
			t.Fatalf("shards=%d: reconciliation diverges from shards=1:\n got %+v\nwant %+v", shards, rec, *baseline)
		}
	}
}

// TestGroupCommitWALEquivalence: a WAL filled by concurrent appenders
// through the group committer replays to state byte-identical to a WAL
// filled by sequential per-record appends — grouping changes syscall
// counts, never recovered state.
func TestGroupCommitWALEquivalence(t *testing.T) {
	stream := randomStream(99, 400)

	// Reference: per-record appends, seed configuration.
	refDir := t.TempDir()
	refStore := NewStore()
	refJ, _, err := OpenDurable(wal.Options{Dir: refDir, Fsync: wal.FsyncAlways}, refStore)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range stream {
		// Tee order: store first, then the journal — as the server wires it.
		if err := refStore.Submit(e); err != nil {
			t.Fatal(err)
		}
		if err := refJ.Submit(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := refJ.Close(); err != nil {
		t.Fatal(err)
	}

	// Group commit: the same events from 8 concurrent goroutines.
	gcDir := t.TempDir()
	gcStore := NewStore()
	gcJ, _, err := OpenDurable(wal.Options{
		Dir: gcDir, Fsync: wal.FsyncAlways,
		GroupCommit: true, GroupCommitMaxBatch: 32,
	}, gcStore)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(stream); i += workers {
				if err := gcStore.Submit(stream[i]); err != nil {
					errs <- err
					return
				}
				if err := gcJ.Submit(stream[i]); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if gcJ.WAL().GroupCommits() == 0 {
		t.Fatal("group committer never committed a group")
	}
	if err := gcJ.Close(); err != nil {
		t.Fatal(err)
	}

	// Replay both directories; the restored stores must serialize to the
	// same bytes (EncodeStoreSnapshot sorts deterministically).
	replayRef, replayGC := NewStore(), NewStore()
	if _, err := ReplayWALDir(refDir, replayRef); err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayWALDir(gcDir, replayGC); err != nil {
		t.Fatal(err)
	}
	a, b := EncodeStoreSnapshot(replayRef), EncodeStoreSnapshot(replayGC)
	if !bytes.Equal(a, b) {
		t.Fatalf("replayed state differs: per-record %d bytes, group-commit %d bytes", len(a), len(b))
	}
	if replayRef.Len() == 0 {
		t.Fatal("reference replay restored nothing — vacuous equivalence")
	}
	// And both equal the in-memory state the stores held before the
	// restart (the Tee order guarantee).
	if !bytes.Equal(a, EncodeStoreSnapshot(refStore)) {
		t.Fatal("per-record replay diverges from pre-restart store")
	}
	if !bytes.Equal(b, EncodeStoreSnapshot(gcStore)) {
		t.Fatal("group-commit replay diverges from pre-restart store")
	}
}

// TestGroupCommitBatchEquivalence: SubmitBatch through the group
// committer preserves the per-record WAL's replayed state too, and
// oversized records fail their own caller without poisoning the group.
func TestGroupCommitBatchEquivalence(t *testing.T) {
	stream := randomStream(7, 120)

	refDir, gcDir := t.TempDir(), t.TempDir()
	refJ, _, err := OpenDurable(wal.Options{Dir: refDir, Fsync: wal.FsyncOnBatch}, NewStore())
	if err != nil {
		t.Fatal(err)
	}
	gcJ, _, err := OpenDurable(wal.Options{
		Dir: gcDir, Fsync: wal.FsyncOnBatch, GroupCommit: true,
	}, NewStore())
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(stream); off += 10 {
		batch := stream[off:min(off+10, len(stream))]
		if err := refJ.SubmitBatch(batch); err != nil {
			t.Fatal(err)
		}
		if err := gcJ.SubmitBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := refJ.Close(); err != nil {
		t.Fatal(err)
	}
	if err := gcJ.Close(); err != nil {
		t.Fatal(err)
	}
	replayRef, replayGC := NewStore(), NewStore()
	if _, err := ReplayWALDir(refDir, replayRef); err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayWALDir(gcDir, replayGC); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(EncodeStoreSnapshot(replayRef), EncodeStoreSnapshot(replayGC)) {
		t.Fatal("batched group-commit replay diverges from per-record replay")
	}
}

// TestGroupCommitOversizedRecordIsolated: an over-limit record errors
// back to its caller before it can join (and fail) a group.
func TestGroupCommitOversizedRecordIsolated(t *testing.T) {
	dir := t.TempDir()
	w, _, err := wal.Open(wal.Options{
		Dir: dir, MaxRecordBytes: 64, GroupCommit: true,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(make([]byte, 65)); err == nil {
		t.Fatal("oversized append accepted")
	}
	if err := w.AppendBatch([][]byte{make([]byte, 10), make([]byte, 65)}); err == nil {
		t.Fatal("oversized batch accepted")
	}
	if err := w.Append([]byte("ok")); err != nil {
		t.Fatalf("well-sized append after oversized rejections: %v", err)
	}
	if got := w.Appended(); got != 1 {
		t.Fatalf("appended = %d, want 1 (oversized records must not land)", got)
	}
}

package beacon

// This file is the shared addressing layer's primitive: the one hash
// decision every routing level of the system agrees on. The in-process
// Store shards by it, and the cluster layer's consistent-hash ring
// (internal/cluster.Ring) places both its virtual nodes and its keys
// with it, so "which shard" and "which node" are answers derived from
// the same function of the same ImpressionID. It lives in this package
// (rather than internal/cluster, where the ring is) only because of
// import direction: the store is below the cluster layer.

// HashID is the FNV-1a (32-bit) hash of an impression ID — the routing
// decision shared by store shard selection and cluster node selection.
// Every event of one impression (and therefore every duplicate of one
// idempotency key) hashes identically, which is what makes both levels
// of routing stable under at-least-once delivery.
func HashID(id string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return h
}

package beacon_test

import (
	"fmt"
	"sync"
	"testing"

	. "qtag/internal/beacon"
)

// TestStoreObserverFirstSeenOnly: the observer fires exactly once per
// distinct idempotency key, never for duplicates or invalid events —
// the contract the streaming aggregator's idempotency rests on.
func TestStoreObserverFirstSeenOnly(t *testing.T) {
	store := NewStore()
	var mu sync.Mutex
	seen := map[string]int{}
	store.AddObserver(func(e Event) {
		mu.Lock()
		seen[e.Key()]++
		mu.Unlock()
	})

	e := Event{ImpressionID: "i", CampaignID: "c", Type: EventServed}
	if err := store.Submit(e); err != nil {
		t.Fatalf("submit: %v", err)
	}
	for i := 0; i < 5; i++ {
		store.Submit(e) // duplicates
	}
	store.Submit(Event{Type: EventServed}) // invalid: no ids

	if len(seen) != 1 || seen[e.Key()] != 1 {
		t.Fatalf("observer calls = %v, want exactly one for %q", seen, e.Key())
	}
}

// TestStoreObserverConcurrentExactlyOnce: under concurrent duplicate
// submission across shards, every distinct key is observed exactly once
// (the shard lock serializes observer calls per impression).
func TestStoreObserverConcurrentExactlyOnce(t *testing.T) {
	store := NewStore()
	var mu sync.Mutex
	seen := map[string]int{}
	store.AddObserver(func(e Event) {
		mu.Lock()
		seen[e.Key()]++
		mu.Unlock()
	})

	const keys, workers = 200, 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				store.Submit(Event{
					ImpressionID: fmt.Sprintf("imp-%d", i),
					CampaignID:   "c",
					Type:         EventServed,
				})
			}
		}()
	}
	wg.Wait()
	if len(seen) != keys {
		t.Fatalf("distinct keys observed = %d, want %d", len(seen), keys)
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("key %q observed %d times", k, n)
		}
	}
	if store.Len() != keys {
		t.Fatalf("store len = %d", store.Len())
	}
}

// TestStoreAddObserverFanOut: multiple observers each see every
// first-seen event exactly once, in registration order, and a
// duplicate submission reaches none of them.
func TestStoreAddObserverFanOut(t *testing.T) {
	store := NewStore()
	var order []string
	store.AddObserver(func(e Event) { order = append(order, "first:"+e.Key()) })
	store.AddObserver(func(e Event) { order = append(order, "second:"+e.Key()) })

	e := Event{ImpressionID: "i", CampaignID: "c", Type: EventServed}
	if err := store.Submit(e); err != nil {
		t.Fatalf("submit: %v", err)
	}
	store.Submit(e) // duplicate: neither observer fires

	want := []string{"first:" + e.Key(), "second:" + e.Key()}
	if len(order) != len(want) || order[0] != want[0] || order[1] != want[1] {
		t.Fatalf("fan-out order = %v, want %v", order, want)
	}
}

// TestStoreDupObserver: the duplicate hook fires exactly for absorbed
// duplicates — never for first-seen or invalid events — so first-seen
// and duplicate hooks partition every valid submission.
func TestStoreDupObserver(t *testing.T) {
	store := NewStore()
	var mu sync.Mutex
	first, dups := 0, 0
	store.AddObserver(func(Event) { mu.Lock(); first++; mu.Unlock() })
	store.AddDupObserver(func(Event) { mu.Lock(); dups++; mu.Unlock() })

	e := Event{ImpressionID: "i", CampaignID: "c", Type: EventServed}
	if err := store.Submit(e); err != nil {
		t.Fatalf("submit: %v", err)
	}
	for i := 0; i < 4; i++ {
		store.Submit(e)
	}
	store.Submit(Event{Type: EventServed}) // invalid: reaches neither hook

	if first != 1 || dups != 4 {
		t.Fatalf("first=%d dups=%d, want 1 and 4", first, dups)
	}
}

// TestStoreDupObserverConcurrent: under concurrent duplicate pressure,
// first-seen + duplicate hook counts always sum to the number of valid
// submissions — nothing double-fires, nothing is lost.
func TestStoreDupObserverConcurrent(t *testing.T) {
	store := NewStore()
	var mu sync.Mutex
	first, dups := 0, 0
	store.AddObserver(func(Event) { mu.Lock(); first++; mu.Unlock() })
	store.AddDupObserver(func(Event) { mu.Lock(); dups++; mu.Unlock() })

	const keys, workers = 100, 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				store.Submit(Event{
					ImpressionID: fmt.Sprintf("imp-%d", i),
					CampaignID:   "c",
					Type:         EventServed,
				})
			}
		}()
	}
	wg.Wait()
	if first != keys {
		t.Fatalf("first-seen observations = %d, want %d", first, keys)
	}
	if first+dups != keys*workers {
		t.Fatalf("first+dups = %d, want %d", first+dups, keys*workers)
	}
}

// TestStoreSetObserverGuardsWiredPipeline: the deprecated SetObserver
// wrapper still works as the sole registration on a fresh store, but
// panics rather than silently disconnecting observers already wired
// via AddObserver.
func TestStoreSetObserverGuardsWiredPipeline(t *testing.T) {
	store := NewStore()
	var calls []string
	//lint:ignore SA1019 the deprecated wrapper's compatibility path is exactly what this test covers
	store.SetObserver(func(Event) { calls = append(calls, "legacy") })
	store.Submit(Event{ImpressionID: "i", CampaignID: "c", Type: EventServed})
	if len(calls) != 1 || calls[0] != "legacy" {
		t.Fatalf("calls = %v, want the legacy observer", calls)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("SetObserver silently discarded a wired observer set")
		}
	}()
	//lint:ignore SA1019 asserting the deprecated wrapper's discard guard
	store.SetObserver(func(Event) {})
}

package beacon_test

import (
	"fmt"
	"sync"
	"testing"

	. "qtag/internal/beacon"
)

// TestStoreObserverFirstSeenOnly: the observer fires exactly once per
// distinct idempotency key, never for duplicates or invalid events —
// the contract the streaming aggregator's idempotency rests on.
func TestStoreObserverFirstSeenOnly(t *testing.T) {
	store := NewStore()
	var mu sync.Mutex
	seen := map[string]int{}
	store.SetObserver(func(e Event) {
		mu.Lock()
		seen[e.Key()]++
		mu.Unlock()
	})

	e := Event{ImpressionID: "i", CampaignID: "c", Type: EventServed}
	if err := store.Submit(e); err != nil {
		t.Fatalf("submit: %v", err)
	}
	for i := 0; i < 5; i++ {
		store.Submit(e) // duplicates
	}
	store.Submit(Event{Type: EventServed}) // invalid: no ids

	if len(seen) != 1 || seen[e.Key()] != 1 {
		t.Fatalf("observer calls = %v, want exactly one for %q", seen, e.Key())
	}
}

// TestStoreObserverConcurrentExactlyOnce: under concurrent duplicate
// submission across shards, every distinct key is observed exactly once
// (the shard lock serializes observer calls per impression).
func TestStoreObserverConcurrentExactlyOnce(t *testing.T) {
	store := NewStore()
	var mu sync.Mutex
	seen := map[string]int{}
	store.SetObserver(func(e Event) {
		mu.Lock()
		seen[e.Key()]++
		mu.Unlock()
	})

	const keys, workers = 200, 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				store.Submit(Event{
					ImpressionID: fmt.Sprintf("imp-%d", i),
					CampaignID:   "c",
					Type:         EventServed,
				})
			}
		}()
	}
	wg.Wait()
	if len(seen) != keys {
		t.Fatalf("distinct keys observed = %d, want %d", len(seen), keys)
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("key %q observed %d times", k, n)
		}
	}
	if store.Len() != keys {
		t.Fatalf("store len = %d", store.Len())
	}
}

package webdriver

import (
	"testing"
	"time"

	"qtag/internal/simclock"
	"qtag/internal/simrand"
)

func TestCommandKindStrings(t *testing.T) {
	kinds := map[CommandKind]string{
		KindWait: "wait", KindMoveWindow: "move-window", KindScroll: "scroll",
		KindResize: "resize", KindSwitchTab: "switch-tab", KindObscure: "obscure",
		KindBlur: "blur",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestAutomatable(t *testing.T) {
	if KindObscure.Automatable() {
		t.Error("obscure cannot be automated")
	}
	for _, k := range []CommandKind{KindWait, KindMoveWindow, KindScroll, KindResize, KindSwitchTab, KindBlur} {
		if !k.Automatable() {
			t.Errorf("%v should be automatable", k)
		}
	}
}

func TestContainsRacy(t *testing.T) {
	if (Script{{Kind: KindResize}, {Kind: KindBlur}}).ContainsRacy() {
		t.Error("resize/blur are not racy")
	}
	if !(Script{{Kind: KindMoveWindow}}).ContainsRacy() {
		t.Error("move-window is racy")
	}
	if !(Script{{Kind: KindWait}, {Kind: KindScroll}}).ContainsRacy() {
		t.Error("scroll is racy")
	}
}

func TestSessionFlakesOnlyWhenAutomatedAndRacy(t *testing.T) {
	clock := simclock.New()
	racy := Script{{Kind: KindScroll}}
	safe := Script{{Kind: KindSwitchTab}}

	manual := New(clock, simrand.New(1), false)
	manual.FlakeProbability = 1
	if manual.SessionFlakes(racy) {
		t.Error("manual sessions never flake")
	}

	auto := New(clock, simrand.New(1), true)
	auto.FlakeProbability = 1
	if !auto.SessionFlakes(racy) {
		t.Error("automated racy session must flake at p=1")
	}
	if auto.SessionFlakes(safe) {
		t.Error("non-racy scripts never flake")
	}

	noRNG := New(clock, nil, true)
	noRNG.FlakeProbability = 1
	if noRNG.SessionFlakes(racy) {
		t.Error("nil rng disables flaking")
	}
}

func TestFlakeRateCalibration(t *testing.T) {
	clock := simclock.New()
	d := New(clock, simrand.New(9), true)
	racy := Script{{Kind: KindMoveWindow}}
	flakes := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if d.SessionFlakes(racy) {
			flakes++
		}
	}
	rate := float64(flakes) / n
	if rate < 0.18 || rate > 0.22 {
		t.Errorf("empirical flake rate = %.3f, want ≈%.3f", rate, DefaultFlakeProbability)
	}
}

func TestRunExecutesCommandsInOrder(t *testing.T) {
	clock := simclock.New()
	d := New(clock, nil, true)
	var order []string
	script := Script{
		{At: 200 * time.Millisecond, Kind: KindScroll, Do: func() { order = append(order, "scroll") }},
		{At: 100 * time.Millisecond, Kind: KindResize, Do: func() { order = append(order, "resize") }},
		{At: 300 * time.Millisecond, Kind: KindWait, Do: nil}, // nil Do is fine
	}
	d.Run(script, time.Second)
	if len(order) != 2 || order[0] != "resize" || order[1] != "scroll" {
		t.Errorf("order = %v", order)
	}
	if clock.Now() != time.Second {
		t.Errorf("clock = %v", clock.Now())
	}
}

func TestRunPanicsOnAutomatedObscure(t *testing.T) {
	clock := simclock.New()
	d := New(clock, nil, true)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	d.Run(Script{{Kind: KindObscure, Do: func() {}}}, time.Second)
}

func TestManualCanObscure(t *testing.T) {
	clock := simclock.New()
	d := New(clock, nil, false)
	ran := false
	d.Run(Script{{At: 10 * time.Millisecond, Kind: KindObscure, Do: func() { ran = true }}}, time.Second)
	if !ran {
		t.Error("manual driver should run obscure commands")
	}
}

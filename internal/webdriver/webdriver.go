// Package webdriver simulates the browser-automation layer (Selenium
// WebDriver in the paper) that the certification suite drives scenarios
// with — including its failure mode.
//
// §4.2 reports that 6.6 % of the 36k certification runs registered *no*
// events at all, exclusively in test types 4 (browser moved off-screen)
// and 5 (page scrolled), and that manual repetitions of the same
// scenarios always passed; the authors attribute the failures to the
// automation process rather than to Q-Tag. This package reproduces that
// mechanism: OS-level window manipulation and synthetic scrolling contend
// with the driver's script-injection pipeline, and with a configurable
// probability the measurement tag never attaches to the session, so the
// run ends with no events — exactly the observed artifact. Manual
// sessions (Automated == false) never flake.
package webdriver

import (
	"time"

	"qtag/internal/simclock"
	"qtag/internal/simrand"
)

// CommandKind classifies scripted driver commands. The kinds that perform
// OS-level window manipulation (MoveWindow) or synthetic scrolling
// (Scroll) are the ones that can race the tag injection when automated.
type CommandKind int

// Command kinds.
const (
	// KindWait performs no action (pure delay between actions).
	KindWait CommandKind = iota
	// KindMoveWindow moves the browser window (OS-level manipulation).
	KindMoveWindow
	// KindScroll performs a synthetic scroll.
	KindScroll
	// KindResize resizes the browser window.
	KindResize
	// KindSwitchTab activates another tab.
	KindSwitchTab
	// KindObscure covers the window with another application. Not
	// automatable — ABC runs the corresponding test manually, and so does
	// the paper (10 manual repetitions).
	KindObscure
	// KindBlur removes window focus.
	KindBlur
)

// String implements fmt.Stringer.
func (k CommandKind) String() string {
	switch k {
	case KindMoveWindow:
		return "move-window"
	case KindScroll:
		return "scroll"
	case KindResize:
		return "resize"
	case KindSwitchTab:
		return "switch-tab"
	case KindObscure:
		return "obscure"
	case KindBlur:
		return "blur"
	default:
		return "wait"
	}
}

// Automatable reports whether the command can be executed by the
// automation harness at all.
func (k CommandKind) Automatable() bool { return k != KindObscure }

// racy reports whether the command contends with tag injection when
// issued through the automation pipeline.
func (k CommandKind) racy() bool { return k == KindMoveWindow || k == KindScroll }

// Command is one scripted driver action at a virtual-time offset from
// session start.
type Command struct {
	// At is when the command executes, relative to session start.
	At time.Duration
	// Kind classifies the action (drives the flake model).
	Kind CommandKind
	// Do performs the action against the browser under test.
	Do func()
}

// Script is a timed sequence of commands.
type Script []Command

// ContainsRacy reports whether any command in the script is of a kind
// that can race tag injection under automation.
func (s Script) ContainsRacy() bool {
	for _, c := range s {
		if c.Kind.racy() {
			return true
		}
	}
	return false
}

// DefaultFlakeProbability is calibrated so the full certification matrix
// reproduces the paper's 93.4 % accuracy: failures occur only in the two
// racy test types, which account for 12 000 of the 36 120 runs, so a
// ≈20 % per-run flake rate yields the observed 6.6 % overall failure
// rate.
const DefaultFlakeProbability = 0.199

// Driver executes scenario scripts against a simulated browser session.
type Driver struct {
	clock *simclock.Clock
	rng   *simrand.RNG

	// Automated selects WebDriver-style execution; manual sessions never
	// flake.
	Automated bool
	// FlakeProbability is the per-session probability that a racy script
	// wedges the tag injection (only when Automated).
	FlakeProbability float64
}

// New creates a driver on the given clock. rng drives the flake draw; a
// nil rng disables flaking entirely (useful for deterministic tests).
func New(clock *simclock.Clock, rng *simrand.RNG, automated bool) *Driver {
	return &Driver{
		clock:            clock,
		rng:              rng,
		Automated:        automated,
		FlakeProbability: DefaultFlakeProbability,
	}
}

// SessionFlakes decides — once, at session start — whether this session's
// tag injection is wedged by the automation race. It must be consulted
// before the tag is deployed; a flaked session's tag never attaches, so
// the run registers no events.
func (d *Driver) SessionFlakes(script Script) bool {
	if !d.Automated || d.rng == nil {
		return false
	}
	if !script.ContainsRacy() {
		return false
	}
	return d.rng.Bool(d.FlakeProbability)
}

// Run schedules every command of the script on the clock and advances
// virtual time to total. It panics if an automated session is asked to
// run a non-automatable command — the harness must route those scenarios
// to a manual driver, as ABC (and the paper) do.
func (d *Driver) Run(script Script, total time.Duration) {
	for _, c := range script {
		if d.Automated && !c.Kind.Automatable() {
			panic("webdriver: command " + c.Kind.String() + " cannot be automated")
		}
		if c.Do != nil {
			d.clock.AfterFunc(c.At, c.Do)
		}
	}
	d.clock.Advance(total)
}

package browser

import (
	"fmt"
	"math"
	"testing"
	"time"

	"qtag/internal/dom"
	"qtag/internal/geom"
	"qtag/internal/simclock"
)

const pub = dom.Origin("https://publisher.example")
const dsp = dom.Origin("https://dsp.example")

// newTestPage builds a browser with one window (1280×720 viewport) showing
// a long publisher page, and returns the page plus a 300×250 ad creative
// element placed inside a double cross-domain iframe at adY pixels down
// the page.
func newTestPage(t *testing.T, adY float64) (*simclock.Clock, *Browser, *Page, *dom.Element) {
	t.Helper()
	clock := simclock.New()
	b := New(clock, Options{Profile: CertificationProfiles()[1]}) // Chrome75-Win10
	w := b.OpenWindow(geom.Point{}, geom.Size{W: 1280, H: 720})
	doc := dom.NewDocument(pub, geom.Size{W: 1280, H: 6000})
	page := w.ActiveTab().Navigate(doc)
	outer := doc.Root().AttachIframe(dsp, geom.Rect{X: 200, Y: adY, W: 300, H: 250})
	inner := outer.Root().AttachIframe(dsp, geom.Rect{X: 0, Y: 0, W: 300, H: 250})
	creative := inner.Root().AppendChild("creative", geom.Rect{X: 0, Y: 0, W: 300, H: 250})
	return clock, b, page, creative
}

func countPaints(clock *simclock.Clock, page *Page, el *dom.Element, pt geom.Point, d time.Duration) int {
	n := 0
	obs := page.ObservePaint(el, pt, func(time.Duration) { n++ })
	clock.Advance(d)
	obs.Cancel()
	return n
}

func TestPaintRateInViewport(t *testing.T) {
	clock, b, page, creative := newTestPage(t, 100)
	defer b.Close()
	n := countPaints(clock, page, creative, geom.Point{X: 150, Y: 125}, time.Second)
	if n < 58 || n > 62 {
		t.Errorf("in-viewport paint count over 1s = %d, want ~60", n)
	}
}

func TestNoPaintBelowTheFold(t *testing.T) {
	clock, b, page, creative := newTestPage(t, 3000) // far below 720px viewport
	defer b.Close()
	n := countPaints(clock, page, creative, geom.Point{X: 150, Y: 125}, time.Second)
	if n != 0 {
		t.Errorf("below-the-fold paint count = %d, want 0", n)
	}
}

func TestScrollBringsAdIntoView(t *testing.T) {
	clock, b, page, creative := newTestPage(t, 3000)
	defer b.Close()
	var n int
	page.ObservePaint(creative, geom.Point{X: 150, Y: 125}, func(time.Duration) { n++ })
	clock.Advance(time.Second)
	if n != 0 {
		t.Fatalf("pre-scroll paints = %d", n)
	}
	page.ScrollTo(geom.Point{Y: 2900}) // ad now at viewport y=100..350
	clock.Advance(time.Second)
	if n < 55 {
		t.Errorf("post-scroll paints = %d, want ~60", n)
	}
}

func TestScrollClamped(t *testing.T) {
	_, b, page, _ := newTestPage(t, 100)
	defer b.Close()
	page.ScrollTo(geom.Point{Y: 99999})
	if got := page.Scroll().Y; got != 6000-720 {
		t.Errorf("clamped scroll = %v, want %v", got, 6000-720)
	}
	page.ScrollTo(geom.Point{Y: -50})
	if page.Scroll().Y != 0 {
		t.Errorf("negative scroll should clamp to 0, got %v", page.Scroll().Y)
	}
}

func TestBackgroundTabStopsPainting(t *testing.T) {
	clock, b, page, creative := newTestPage(t, 100)
	defer b.Close()
	var n int
	page.ObservePaint(creative, geom.Point{X: 150, Y: 125}, func(time.Duration) { n++ })
	clock.Advance(500 * time.Millisecond)
	before := n
	if before == 0 {
		t.Fatal("expected paints while active")
	}
	w := page.Tab().Window()
	other := w.NewTab()
	w.ActivateTab(other)
	clock.Advance(time.Second)
	if n != before {
		t.Errorf("background tab painted %d extra frames", n-before)
	}
	// Switching back resumes painting.
	w.ActivateTab(page.Tab())
	clock.Advance(500 * time.Millisecond)
	if n <= before {
		t.Error("painting did not resume after tab reactivation")
	}
}

func TestWindowMovedOffScreenStopsPainting(t *testing.T) {
	clock, b, page, creative := newTestPage(t, 100)
	defer b.Close()
	var n int
	page.ObservePaint(creative, geom.Point{X: 150, Y: 125}, func(time.Duration) { n++ })
	clock.Advance(200 * time.Millisecond)
	before := n
	page.Tab().Window().MoveTo(geom.Point{X: 5000, Y: 5000})
	clock.Advance(time.Second)
	if n != before {
		t.Errorf("off-screen window painted %d frames", n-before)
	}
}

func TestPartiallyOffScreenWindow(t *testing.T) {
	clock, b, page, creative := newTestPage(t, 100)
	defer b.Close()
	// Move the window so its left 600px are off-screen; the ad spans
	// x 200..500 in the viewport, so it becomes entirely invisible.
	page.Tab().Window().MoveTo(geom.Point{X: -600, Y: 0})
	n := countPaints(clock, page, creative, geom.Point{X: 150, Y: 125}, time.Second)
	if n != 0 {
		t.Errorf("ad in off-screen window strip painted %d frames", n)
	}
	// The fraction API agrees: nothing visible.
	if f := page.TrueVisibleFraction(creative); f != 0 {
		t.Errorf("TrueVisibleFraction = %v", f)
	}
	// Move back partially: 100px of the ad on screen (viewport x 200..500
	// at window x −400 → screen −200..100).
	page.Tab().Window().MoveTo(geom.Point{X: -400, Y: 0})
	if f := page.TrueVisibleFraction(creative); math.Abs(f-100.0/300.0) > 1e-9 {
		t.Errorf("partial fraction = %v, want 1/3", f)
	}
}

func TestObscuredWindowStopsPainting(t *testing.T) {
	clock, b, page, creative := newTestPage(t, 100)
	defer b.Close()
	page.Tab().Window().SetObscured(true)
	n := countPaints(clock, page, creative, geom.Point{X: 150, Y: 125}, time.Second)
	if n != 0 {
		t.Errorf("obscured window painted %d frames", n)
	}
	if !page.Tab().Window().Obscured() {
		t.Error("Obscured flag lost")
	}
}

func TestFocusDoesNotAffectPainting(t *testing.T) {
	clock, b, page, creative := newTestPage(t, 100)
	defer b.Close()
	page.Tab().Window().Blur()
	if page.Tab().Window().Focused() {
		t.Error("Blur did not clear focus")
	}
	n := countPaints(clock, page, creative, geom.Point{X: 150, Y: 125}, time.Second)
	if n < 55 {
		t.Errorf("unfocused-but-visible window painted %d frames, want ~60", n)
	}
}

func TestResizeEnlargesViewport(t *testing.T) {
	clock, b, page, creative := newTestPage(t, 800) // just below 720px fold
	defer b.Close()
	if f := page.TrueVisibleFraction(creative); f != 0 {
		t.Fatalf("ad unexpectedly visible: %v", f)
	}
	page.Tab().Window().Resize(geom.Size{W: 1280, H: 1100})
	if f := page.TrueVisibleFraction(creative); f != 1 {
		t.Errorf("after enlarge fraction = %v, want 1", f)
	}
	n := countPaints(clock, page, creative, geom.Point{X: 150, Y: 125}, time.Second)
	if n < 55 {
		t.Errorf("paints after resize = %d", n)
	}
}

func TestCPULoadDegradesRefreshRate(t *testing.T) {
	clock, b, page, creative := newTestPage(t, 100)
	defer b.Close()
	b.SetCPULoad(0.5) // 30 fps effective
	if got := b.EffectiveRefreshRate(); math.Abs(got-30) > 1e-9 {
		t.Fatalf("effective rate = %v", got)
	}
	n := countPaints(clock, page, creative, geom.Point{X: 150, Y: 125}, time.Second)
	if n < 28 || n > 32 {
		t.Errorf("paints under 50%% load = %d, want ~30", n)
	}
	if b.CPULoad() != 0.5 {
		t.Errorf("CPULoad = %v", b.CPULoad())
	}
	b.SetCPULoad(2) // clamped
	if b.CPULoad() != 0.95 {
		t.Errorf("clamped CPULoad = %v", b.CPULoad())
	}
}

func TestHiddenFPSTrickle(t *testing.T) {
	clock := simclock.New()
	prof := CertificationProfiles()[0]
	prof.HiddenFPS = 1
	b := New(clock, Options{Profile: prof})
	defer b.Close()
	w := b.OpenWindow(geom.Point{}, geom.Size{W: 1280, H: 720})
	doc := dom.NewDocument(pub, geom.Size{W: 1280, H: 6000})
	page := w.ActiveTab().Navigate(doc)
	el := doc.Root().AppendChild("div", geom.Rect{X: 0, Y: 3000, W: 10, H: 10}) // hidden below fold
	var n int
	page.ObservePaint(el, geom.Point{X: 5, Y: 3005}, func(time.Duration) { n++ })
	clock.Advance(4 * time.Second)
	if n < 2 || n > 6 {
		t.Errorf("hidden trickle delivered %d callbacks over 4s, want ~4", n)
	}
}

func TestHiddenElementNeverPaints(t *testing.T) {
	clock, b, page, creative := newTestPage(t, 100)
	defer b.Close()
	creative.SetHidden(true)
	b.InvalidateLayout()
	n := countPaints(clock, page, creative, geom.Point{X: 150, Y: 125}, time.Second)
	if n != 0 {
		t.Errorf("display:none element painted %d frames", n)
	}
}

func TestObserverCancel(t *testing.T) {
	clock, b, page, creative := newTestPage(t, 100)
	defer b.Close()
	var n int
	obs := page.ObservePaint(creative, geom.Point{X: 150, Y: 125}, func(time.Duration) { n++ })
	clock.Advance(100 * time.Millisecond)
	obs.Cancel()
	before := n
	clock.Advance(time.Second)
	if n != before {
		t.Errorf("cancelled observer received %d callbacks", n-before)
	}
	if obs.Element() != creative {
		t.Error("Element accessor wrong")
	}
}

func TestTrueVisibleFractionHalf(t *testing.T) {
	_, b, page, creative := newTestPage(t, 100)
	defer b.Close()
	// Scroll so the ad (y 100..350) is half cut by the top edge: scroll to 225.
	page.ScrollTo(geom.Point{Y: 225})
	if f := page.TrueVisibleFraction(creative); math.Abs(f-0.5) > 1e-9 {
		t.Errorf("fraction = %v, want 0.5", f)
	}
}

func TestTrueVisibleFractionFrameClip(t *testing.T) {
	clock := simclock.New()
	b := New(clock, Options{Profile: CertificationProfiles()[0]})
	defer b.Close()
	w := b.OpenWindow(geom.Point{}, geom.Size{W: 1280, H: 720})
	doc := dom.NewDocument(pub, geom.Size{W: 1280, H: 2000})
	page := w.ActiveTab().Navigate(doc)
	// A 300×250 frame whose creative overflows it by 100%: only half the
	// creative can ever show.
	frame := doc.Root().AttachIframe(dsp, geom.Rect{X: 0, Y: 0, W: 300, H: 250})
	big := frame.Root().AppendChild("creative", geom.Rect{X: 0, Y: 0, W: 600, H: 250})
	if f := page.TrueVisibleFraction(big); math.Abs(f-0.5) > 1e-9 {
		t.Errorf("frame-clipped fraction = %v, want 0.5", f)
	}
}

func TestPointVisibleEdges(t *testing.T) {
	_, b, page, creative := newTestPage(t, 100)
	defer b.Close()
	if !page.PointVisible(creative, geom.Point{X: 0, Y: 0}) {
		t.Error("creative origin should be visible")
	}
	// A point outside the inner frame box is clipped even though the
	// element rect claims it.
	if page.PointVisible(creative, geom.Point{X: 301, Y: 10}) {
		t.Error("point beyond frame width should be clipped")
	}
}

func TestWindowAccessors(t *testing.T) {
	clock := simclock.New()
	b := New(clock, Options{Profile: BraveProfile()})
	defer b.Close()
	w := b.OpenWindow(geom.Point{X: 10, Y: 20}, geom.Size{W: 800, H: 600})
	if w.Pos() != (geom.Point{X: 10, Y: 20}) || w.Size() != (geom.Size{W: 800, H: 600}) {
		t.Error("pos/size accessors wrong")
	}
	if w.ScreenRect() != (geom.Rect{X: 10, Y: 20, W: 800, H: 600}) {
		t.Error("ScreenRect wrong")
	}
	if !w.Focused() {
		t.Error("first window should be focused")
	}
	w2 := b.OpenWindow(geom.Point{}, geom.Size{W: 100, H: 100})
	if w2.Focused() {
		t.Error("second window should not steal focus on open")
	}
	w2.Focus()
	if w.Focused() || !w2.Focused() {
		t.Error("Focus should be exclusive")
	}
	if len(b.Windows()) != 2 {
		t.Error("Windows() wrong")
	}
	if b.String() == "" || w.Browser() != b {
		t.Error("misc accessors")
	}
}

func TestActivateForeignTabPanics(t *testing.T) {
	clock := simclock.New()
	b := New(clock, Options{Profile: CertificationProfiles()[0]})
	defer b.Close()
	w1 := b.OpenWindow(geom.Point{}, geom.Size{W: 100, H: 100})
	w2 := b.OpenWindow(geom.Point{}, geom.Size{W: 100, H: 100})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	w1.ActivateTab(w2.ActiveTab())
}

func TestMobileDefaults(t *testing.T) {
	clock := simclock.New()
	b := New(clock, Options{Profile: AndroidChromeProfile()})
	defer b.Close()
	if b.Screen() != (geom.Size{W: 412, H: 869}) {
		t.Errorf("mobile default screen = %v", b.Screen())
	}
	if b.Profile().Device != Mobile || b.Profile().Site != SiteBrowser {
		t.Error("profile fields wrong")
	}
}

func TestProfileStockLists(t *testing.T) {
	certs := CertificationProfiles()
	if len(certs) != 6 {
		t.Fatalf("want 6 certification profiles, got %d", len(certs))
	}
	names := map[string]bool{}
	for _, p := range certs {
		if names[p.Name] {
			t.Errorf("duplicate profile %q", p.Name)
		}
		names[p.Name] = true
		if !p.SupportsFrameCallbacks {
			t.Errorf("%s should support frame callbacks", p.Name)
		}
		if p.RefreshRate != 60 {
			t.Errorf("%s refresh rate = %v", p.Name, p.RefreshRate)
		}
	}
	// IE11 lacks IntersectionObserver; modern Chrome has it.
	for _, p := range certs {
		if p.Browser == "IE" && p.SupportsIntersectionObserver {
			t.Error("IE11 must not support IntersectionObserver")
		}
		if p.Browser == "Chrome" && !p.SupportsIntersectionObserver {
			t.Error("Chrome should support IntersectionObserver")
		}
	}
	for _, p := range PrivacyProfiles() {
		if !p.BlocksThirdPartyCookies {
			t.Errorf("%s should block third-party cookies", p.Name)
		}
		if p.BuiltinAdBlock {
			t.Errorf("%s should not block ads", p.Name)
		}
	}
	if !BraveProfile().BuiltinAdBlock {
		t.Error("Brave must have builtin adblock")
	}
	if AndroidWebViewProfile(true).SupportsIntersectionObserver {
		t.Error("old Android webview must lack IntersectionObserver")
	}
	if !AndroidWebViewProfile(false).SupportsIntersectionObserver {
		t.Error("new Android webview should have IntersectionObserver")
	}
	if !IOSWebViewProfile(true).SupportsIntersectionObserver || IOSWebViewProfile(false).SupportsIntersectionObserver {
		t.Error("iOS webview modern flag wiring wrong")
	}
	if AndroidWebViewProfile(true).Site != SiteApp || IOSSafariProfile().Site != SiteBrowser {
		t.Error("site types wrong")
	}
	if got := (Profile{Browser: "X", Version: 1, OS: Windows, OSVersion: "10"}).String(); got == "" {
		t.Error("Profile.String empty")
	}
	if Desktop.String() != "desktop" || Mobile.String() != "mobile" ||
		SiteApp.String() != "app" || SiteBrowser.String() != "browser" {
		t.Error("enum strings wrong")
	}
}

func TestCloseStopsFrames(t *testing.T) {
	clock, b, page, creative := newTestPage(t, 100)
	var n int
	page.ObservePaint(creative, geom.Point{X: 150, Y: 125}, func(time.Duration) { n++ })
	b.Close()
	clock.Advance(time.Second)
	if n != 0 {
		t.Errorf("closed browser painted %d frames", n)
	}
	b.Close() // double close is safe
}

func TestViewportRectInContent(t *testing.T) {
	_, b, page, _ := newTestPage(t, 100)
	defer b.Close()
	page.ScrollTo(geom.Point{Y: 500})
	got := page.ViewportRectInContent()
	if got != (geom.Rect{X: 0, Y: 500, W: 1280, H: 720}) {
		t.Errorf("ViewportRectInContent = %v", got)
	}
}

func TestTwoWindowsRenderIndependently(t *testing.T) {
	clock := simclock.New()
	b := New(clock, Options{Profile: CertificationProfiles()[0]})
	defer b.Close()
	// Two side-by-side windows, each with its own page and ad.
	mk := func(pos geom.Point) (*Page, *dom.Element) {
		w := b.OpenWindow(pos, geom.Size{W: 800, H: 600})
		doc := dom.NewDocument(pub, geom.Size{W: 800, H: 2000})
		page := w.ActiveTab().Navigate(doc)
		el := doc.Root().AppendChild("ad", geom.Rect{X: 100, Y: 100, W: 300, H: 250})
		return page, el
	}
	p1, e1 := mk(geom.Point{X: 0, Y: 0})
	p2, e2 := mk(geom.Point{X: 900, Y: 0})
	var n1, n2 int
	p1.ObservePaint(e1, geom.Point{X: 150, Y: 125}, func(time.Duration) { n1++ })
	p2.ObservePaint(e2, geom.Point{X: 150, Y: 125}, func(time.Duration) { n2++ })
	clock.Advance(time.Second)
	if n1 < 55 || n2 < 55 {
		t.Fatalf("both windows should paint: %d / %d", n1, n2)
	}
	// Moving only window 2 off-screen stops only its paints.
	p2.Tab().Window().MoveTo(geom.Point{X: 5000, Y: 0})
	m1, m2 := n1, n2
	clock.Advance(time.Second)
	if n1-m1 < 55 {
		t.Errorf("window 1 paints stalled: +%d", n1-m1)
	}
	if n2 != m2 {
		t.Errorf("off-screen window 2 painted +%d", n2-m2)
	}
}

func TestInnerIframeScrollAffectsPainting(t *testing.T) {
	clock := simclock.New()
	b := New(clock, Options{Profile: CertificationProfiles()[0]})
	defer b.Close()
	w := b.OpenWindow(geom.Point{}, geom.Size{W: 1280, H: 720})
	doc := dom.NewDocument(pub, geom.Size{W: 1280, H: 2000})
	page := w.ActiveTab().Navigate(doc)
	// A scrollable 300×250 iframe whose content is 300×500.
	frameDoc := doc.Root().AttachIframe(dsp, geom.Rect{X: 100, Y: 100, W: 300, H: 250})
	el := frameDoc.Root().AppendChild("content", geom.Rect{X: 0, Y: 400, W: 10, H: 10})
	var n int
	page.ObservePaint(el, geom.Point{X: 5, Y: 405}, func(time.Duration) { n++ })
	clock.Advance(500 * time.Millisecond)
	if n != 0 {
		t.Fatalf("content below the iframe viewport painted %d frames", n)
	}
	// Scrolling the iframe's own document brings the element into its box.
	frameDoc.SetScroll(geom.Point{Y: 250})
	b.InvalidateLayout()
	clock.Advance(500 * time.Millisecond)
	if n < 25 {
		t.Errorf("scrolled-in iframe content painted only %d frames", n)
	}
}

func TestDeeplyNestedIframes(t *testing.T) {
	clock := simclock.New()
	b := New(clock, Options{Profile: CertificationProfiles()[0]})
	defer b.Close()
	w := b.OpenWindow(geom.Point{}, geom.Size{W: 1280, H: 720})
	doc := dom.NewDocument(pub, geom.Size{W: 1280, H: 2000})
	page := w.ActiveTab().Navigate(doc)
	// Four nested cross-origin iframes, each inset by 10px.
	cur := doc.Root()
	x, y := 100.0, 100.0
	for i := 0; i < 4; i++ {
		origin := dom.Origin(fmt.Sprintf("https://layer%d.example", i))
		child := cur.AttachIframe(origin, geom.Rect{X: x, Y: y, W: 300 - float64(i)*20, H: 250 - float64(i)*20})
		cur = child.Root()
		x, y = 10, 10
	}
	el := cur.AppendChild("pixel", geom.Rect{X: 5, Y: 5, W: 1, H: 1})
	if got := len(el.FrameChain()); got != 4 {
		t.Fatalf("chain depth = %d", got)
	}
	var n int
	page.ObservePaint(el, geom.Point{X: 5.5, Y: 5.5}, func(time.Duration) { n++ })
	clock.Advance(500 * time.Millisecond)
	if n < 25 {
		t.Errorf("deeply nested pixel painted %d frames", n)
	}
	if f := page.TrueVisibleFraction(el); f != 1 {
		t.Errorf("nested pixel fraction = %v", f)
	}
}

// Package browser simulates the browsing environments Q-Tag runs in.
//
// It models the pieces of a browser that matter to viewability
// measurement: windows positioned on a screen, tabs of which one is
// active, pages with a scrollable viewport over a DOM (package dom), and —
// crucially — a compositor that paints content at the device refresh rate
// *only while that content is actually renderable*. Content that is
// scrolled out of the viewport, in a background tab, in an off-screen or
// occluded window, or display:none receives no paint callbacks (or a
// heavily throttled trickle, per the profile's HiddenFPS), which is the
// physical signal Q-Tag's refresh-rate technique measures (§3 of the
// paper).
//
// The whole simulation runs on a virtual clock (package simclock); a
// multi-second browsing session executes in microseconds of real time and
// is fully deterministic.
package browser

import (
	"fmt"
	"time"

	"qtag/internal/geom"
	"qtag/internal/simclock"
)

// Browser is one simulated browser instance on a device.
type Browser struct {
	clock   *simclock.Clock
	profile Profile
	screen  geom.Size
	windows []*Window

	cpuLoad     float64 // 0 (idle) .. <1 (saturated)
	frameTicker *simclock.Timer
	frameSeq    uint64 // monotonically increasing frame counter

	// layoutEpoch is bumped by every mutation that can change whether any
	// point is renderable (scroll, resize, move, tab switch, occlusion,
	// visibility toggles). Paint observers cache their renderability per
	// epoch, which keeps frame ticks cheap.
	layoutEpoch uint64

	// adBlockExtension models an installed content blocker (Adblock
	// Plus); Brave-style built-in blocking lives on the Profile.
	adBlockExtension bool
}

// SetAdBlockExtension installs or removes an Adblock-Plus-style extension
// (§4.3). Extensions block third-party ad connections before any delivery
// happens.
func (b *Browser) SetAdBlockExtension(enabled bool) { b.adBlockExtension = enabled }

// BlocksAds reports whether ad delivery is blocked, either by an installed
// extension or by the profile's built-in blocker (Brave).
func (b *Browser) BlocksAds() bool {
	return b.adBlockExtension || b.profile.BuiltinAdBlock
}

// Options configures a new Browser.
type Options struct {
	// Profile is the browsing environment; required.
	Profile Profile
	// Screen is the physical screen size in CSS pixels. Defaults to
	// 1920×1080 for desktop profiles and 412×869 for mobile ones.
	Screen geom.Size
}

// New creates a browser on the given virtual clock and starts its
// compositor frame loop.
func New(clock *simclock.Clock, opts Options) *Browser {
	screen := opts.Screen
	if screen.W == 0 || screen.H == 0 {
		if opts.Profile.Device == Mobile {
			screen = geom.Size{W: 412, H: 869}
		} else {
			screen = geom.Size{W: 1920, H: 1080}
		}
	}
	b := &Browser{clock: clock, profile: opts.Profile, screen: screen}
	b.armFrameLoop()
	return b
}

// Clock returns the virtual clock driving this browser.
func (b *Browser) Clock() *simclock.Clock { return b.clock }

// Profile returns the browsing environment description.
func (b *Browser) Profile() Profile { return b.profile }

// Screen returns the screen size.
func (b *Browser) Screen() geom.Size { return b.screen }

// EffectiveRefreshRate returns the compositor rate after CPU-load
// degradation: rate × (1 − load).
func (b *Browser) EffectiveRefreshRate() float64 {
	return b.profile.RefreshRate * (1 - b.cpuLoad)
}

// SetCPULoad sets the CPU saturation in [0, 0.95]; the paper's threshold
// discussion (§3) hinges on loaded devices refreshing below 60 fps. The
// frame loop is re-armed at the degraded rate.
func (b *Browser) SetCPULoad(load float64) {
	b.cpuLoad = geom.Clamp(load, 0, 0.95)
	b.armFrameLoop()
	b.InvalidateLayout()
}

// CPULoad returns the current CPU saturation.
func (b *Browser) CPULoad() float64 { return b.cpuLoad }

// Close stops the compositor loop. The browser must not be used after
// Close.
func (b *Browser) Close() {
	if b.frameTicker != nil {
		b.frameTicker.Stop()
		b.frameTicker = nil
	}
}

func (b *Browser) armFrameLoop() {
	if b.frameTicker != nil {
		b.frameTicker.Stop()
	}
	rate := b.EffectiveRefreshRate()
	if rate <= 0 {
		b.frameTicker = nil
		return
	}
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	b.frameTicker = b.clock.Every(interval, b.frame)
}

// frame is one compositor tick: every paint observer on every page gets a
// callback if its target is renderable right now, or a throttled trickle
// callback if the profile has HiddenFPS > 0.
func (b *Browser) frame() {
	b.frameSeq++
	now := b.clock.Now()
	var hiddenEvery uint64
	if b.profile.HiddenFPS > 0 {
		ratio := b.EffectiveRefreshRate() / b.profile.HiddenFPS
		if ratio < 1 {
			ratio = 1
		}
		hiddenEvery = uint64(ratio)
	}
	for _, w := range b.windows {
		for _, tab := range w.tabs {
			pg := tab.page
			if pg == nil {
				continue
			}
			for _, obs := range pg.observers {
				if obs.cancelled {
					continue
				}
				if obs.epoch != b.layoutEpoch {
					obs.renderable = pg.pointRenderable(obs)
					obs.epoch = b.layoutEpoch
				}
				if obs.renderable {
					obs.fn(now)
				} else if hiddenEvery > 0 && b.frameSeq%hiddenEvery == 0 {
					obs.fn(now)
				}
			}
		}
	}
}

// InvalidateLayout forces renderability to be recomputed on the next
// frame. Browser-level mutators call it automatically; call it manually
// after mutating DOM geometry directly (dom.Element.SetRect etc.).
func (b *Browser) InvalidateLayout() { b.layoutEpoch++ }

// OpenWindow creates a window at the given screen position and viewport
// size, with one empty tab, and returns it. The first window opened is
// focused.
func (b *Browser) OpenWindow(pos geom.Point, size geom.Size) *Window {
	w := &Window{browser: b, pos: pos, size: size, onScreenOverride: true}
	w.focused = len(b.windows) == 0
	tab := &Tab{window: w}
	w.tabs = []*Tab{tab}
	w.active = 0
	b.windows = append(b.windows, w)
	b.InvalidateLayout()
	return w
}

// Windows returns the open windows in creation order.
func (b *Browser) Windows() []*Window { return b.windows }

// String implements fmt.Stringer.
func (b *Browser) String() string {
	return fmt.Sprintf("Browser(%s, %d windows, %.0ffps)", b.profile.Name, len(b.windows), b.EffectiveRefreshRate())
}

package browser

import (
	"qtag/internal/dom"
	"qtag/internal/geom"
)

// Window is one browser window: a viewport-sized area positioned on the
// screen, holding one or more tabs of which exactly one is active.
type Window struct {
	browser *Browser
	pos     geom.Point
	size    geom.Size
	tabs    []*Tab
	active  int

	focused  bool
	obscured bool // fully covered by another application (§4.2 test 6)
	// onScreenOverride exists only so the zero value is invalid; windows
	// are always created on-screen and moved with MoveTo.
	onScreenOverride bool
}

// Browser returns the owning browser.
func (w *Window) Browser() *Browser { return w.browser }

// Pos returns the window's top-left position on the screen.
func (w *Window) Pos() geom.Point { return w.pos }

// Size returns the window's viewport size.
func (w *Window) Size() geom.Size { return w.size }

// ScreenRect returns the window's viewport rectangle in screen
// coordinates.
func (w *Window) ScreenRect() geom.Rect { return w.size.Rect(w.pos) }

// MoveTo moves the window to a new screen position. Positions outside the
// screen are legal — that is exactly certification test 4 ("browser moved
// off-screen").
func (w *Window) MoveTo(pos geom.Point) {
	w.pos = pos
	w.browser.InvalidateLayout()
}

// Resize changes the viewport size (certification test 2). Pages keep
// their scroll offsets, clamped to the new maximums.
func (w *Window) Resize(size geom.Size) {
	w.size = size
	for _, t := range w.tabs {
		if t.page != nil {
			t.page.clampScroll()
		}
	}
	w.browser.InvalidateLayout()
}

// SetObscured marks the window as fully covered by another application
// (certification test 6). Obscured windows render nothing.
func (w *Window) SetObscured(obscured bool) {
	w.obscured = obscured
	w.browser.InvalidateLayout()
}

// Obscured reports whether the window is covered by another application.
func (w *Window) Obscured() bool { return w.obscured }

// Focus gives the window input focus. Focus has no effect on rendering —
// certification test 3 ("out of focus") passes precisely because browsers
// keep painting unfocused-but-visible windows.
func (w *Window) Focus() {
	for _, other := range w.browser.windows {
		other.focused = false
	}
	w.focused = true
}

// Blur removes input focus.
func (w *Window) Blur() { w.focused = false }

// Focused reports whether the window has input focus.
func (w *Window) Focused() bool { return w.focused }

// OnScreenRegion returns the part of the viewport (in viewport
// coordinates) that is physically on the screen. It is empty when the
// window has been moved fully off-screen.
func (w *Window) OnScreenRegion() geom.Rect {
	screen := geom.Rect{W: w.browser.screen.W, H: w.browser.screen.H}
	visible := w.ScreenRect().Intersect(screen)
	if visible.Empty() {
		return geom.Rect{}
	}
	return visible.Translate(-w.pos.X, -w.pos.Y)
}

// Tabs returns the window's tabs in creation order.
func (w *Window) Tabs() []*Tab { return w.tabs }

// ActiveTab returns the currently rendered tab.
func (w *Window) ActiveTab() *Tab { return w.tabs[w.active] }

// NewTab opens a new (empty, inactive) tab and returns it.
func (w *Window) NewTab() *Tab {
	t := &Tab{window: w}
	w.tabs = append(w.tabs, t)
	return t
}

// ActivateTab makes t the rendered tab (certification test 7 switches
// away from the ad's tab). It panics if t belongs to another window.
func (w *Window) ActivateTab(t *Tab) {
	for i, tab := range w.tabs {
		if tab == t {
			w.active = i
			w.browser.InvalidateLayout()
			return
		}
	}
	panic("browser: ActivateTab with foreign tab")
}

// Tab is one tab in a window. A tab renders only while it is its window's
// active tab.
type Tab struct {
	window *Window
	page   *Page
}

// Window returns the owning window.
func (t *Tab) Window() *Window { return t.window }

// Active reports whether this tab is its window's active tab.
func (t *Tab) Active() bool { return t.window.tabs[t.window.active] == t }

// Page returns the tab's current page, or nil before navigation.
func (t *Tab) Page() *Page { return t.page }

// Navigate loads a document into the tab, replacing any current page, and
// returns the new Page.
func (t *Tab) Navigate(doc *dom.Document) *Page {
	p := &Page{tab: t, doc: doc}
	t.page = p
	t.window.browser.InvalidateLayout()
	return p
}

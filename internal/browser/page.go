package browser

import (
	"time"

	"qtag/internal/dom"
	"qtag/internal/geom"
)

// Page is a document loaded in a tab, together with its viewport scroll
// state and its registered paint observers.
type Page struct {
	tab       *Tab
	doc       *dom.Document
	observers []*PaintObserver
}

// Tab returns the tab displaying this page.
func (p *Page) Tab() *Tab { return p.tab }

// Document returns the page's top-level document.
func (p *Page) Document() *dom.Document { return p.doc }

// Viewport returns the viewport size (the window's content size).
func (p *Page) Viewport() geom.Size { return p.tab.window.size }

// Scroll returns the current scroll offset of the top document.
func (p *Page) Scroll() geom.Point { return p.doc.Scroll() }

// ScrollTo scrolls the top document, clamping to the scrollable range
// (certification test 5 scrolls the ad out of the viewport).
func (p *Page) ScrollTo(offset geom.Point) {
	p.doc.SetScroll(offset)
	p.clampScroll()
	p.tab.window.browser.InvalidateLayout()
}

func (p *Page) clampScroll() {
	content := p.doc.Size()
	vp := p.Viewport()
	maxX := content.W - vp.W
	if maxX < 0 {
		maxX = 0
	}
	maxY := content.H - vp.H
	if maxY < 0 {
		maxY = 0
	}
	s := p.doc.Scroll()
	p.doc.SetScroll(geom.Point{X: geom.Clamp(s.X, 0, maxX), Y: geom.Clamp(s.Y, 0, maxY)})
}

// ViewportRectInContent returns the viewport window expressed in
// top-document content coordinates.
func (p *Page) ViewportRectInContent() geom.Rect {
	s := p.doc.Scroll()
	vp := p.Viewport()
	return geom.Rect{X: s.X, Y: s.Y, W: vp.W, H: vp.H}
}

// rendering reports whether the page renders at all: its tab is active and
// its window is neither obscured nor fully off-screen.
func (p *Page) rendering() bool {
	if !p.tab.Active() {
		return false
	}
	w := p.tab.window
	if w.obscured {
		return false
	}
	return !w.OnScreenRegion().Empty()
}

// TrueVisibleFraction returns the exact fraction of the element's area
// currently exposed to the user, accounting for frame clipping, page
// scroll, the viewport, window screen position, window occlusion and tab
// state. This is compositor ground truth (used by the oracle and by
// intersection-observer-capable verifier tags); it is not subject to SOP.
func (p *Page) TrueVisibleFraction(el *dom.Element) float64 {
	if el.EffectivelyHidden() || !p.rendering() {
		return 0
	}
	area := el.Rect().Area()
	if area == 0 {
		return 0
	}
	visible := el.AbsoluteVisibleRect() // clipped by ancestor frames, content coords
	if visible.Empty() {
		return 0
	}
	// Content → viewport coordinates.
	s := p.doc.Scroll()
	visible = visible.Translate(-s.X, -s.Y)
	vp := p.Viewport()
	visible = visible.Intersect(geom.Rect{W: vp.W, H: vp.H})
	if visible.Empty() {
		return 0
	}
	// Clip by the on-screen part of the window.
	visible = visible.Intersect(p.tab.window.OnScreenRegion())
	return visible.Area() / area
}

// PointVisible reports whether a specific point of an element (given in
// the element's own document content coordinates) is currently exposed.
func (p *Page) PointVisible(el *dom.Element, pt geom.Point) bool {
	if el.EffectivelyHidden() || !p.rendering() {
		return false
	}
	// The point must survive clipping by each ancestor frame viewport.
	if !pointVisibleThroughFrames(el, pt) {
		return false
	}
	abs := el.AbsolutePoint(pt)
	s := p.doc.Scroll()
	vpPt := geom.Point{X: abs.X - s.X, Y: abs.Y - s.Y}
	vp := p.Viewport()
	if !(geom.Rect{W: vp.W, H: vp.H}).Contains(vpPt) {
		return false
	}
	return p.tab.window.OnScreenRegion().Contains(vpPt)
}

// pointVisibleThroughFrames walks the frame chain checking the point
// against each intermediate frame viewport.
func pointVisibleThroughFrames(el *dom.Element, pt geom.Point) bool {
	x, y := pt.X, pt.Y
	for d := el.Document(); d.HostFrame() != nil; d = d.HostFrame().Document() {
		host := d.HostFrame()
		sc := d.Scroll()
		clip := geom.Rect{X: sc.X, Y: sc.Y, W: host.Rect().W, H: host.Rect().H}
		if !clip.Contains(geom.Point{X: x, Y: y}) {
			return false
		}
		x += host.Rect().X - sc.X
		y += host.Rect().Y - sc.Y
	}
	return true
}

// PaintFunc is a per-frame paint callback; t is the virtual time of the
// compositor tick.
type PaintFunc func(t time.Duration)

// PaintObserver is a registration created by ObservePaint. The compositor
// invokes its callback on every frame in which the observed point is
// renderable (plus a HiddenFPS trickle when it is not).
type PaintObserver struct {
	page      *Page
	el        *dom.Element
	pt        geom.Point // in el's document content coordinates
	fn        PaintFunc
	cancelled bool

	// renderability cache, validated against Browser.layoutEpoch
	epoch      uint64
	renderable bool
}

// Cancel detaches the observer; its callback will not be invoked again.
func (o *PaintObserver) Cancel() { o.cancelled = true }

// Element returns the observed element.
func (o *PaintObserver) Element() *dom.Element { return o.el }

// ObservePaint registers a paint callback for a point of an element (point
// given in the element's document content coordinates, typically the
// center of a 1×1 monitoring pixel). This is the simulated equivalent of
// animating an element and observing its paint/refresh rate, the core
// mechanism of the paper's §3.
func (p *Page) ObservePaint(el *dom.Element, pt geom.Point, fn PaintFunc) *PaintObserver {
	obs := &PaintObserver{page: p, el: el, pt: pt, fn: fn}
	// Force recomputation on the first frame regardless of current epoch.
	obs.epoch = p.tab.window.browser.layoutEpoch - 1
	p.observers = append(p.observers, obs)
	return obs
}

// pointRenderable evaluates whether an observer's point is renderable
// right now. Called lazily by the frame loop when the layout epoch moves.
func (p *Page) pointRenderable(o *PaintObserver) bool {
	return p.PointVisible(o.el, o.pt)
}

package browser

import "fmt"

// DeviceType distinguishes desktop machines from mobile devices.
type DeviceType int

const (
	// Desktop is a desktop or laptop computer.
	Desktop DeviceType = iota
	// Mobile is a phone or tablet.
	Mobile
)

// String implements fmt.Stringer.
func (d DeviceType) String() string {
	if d == Mobile {
		return "mobile"
	}
	return "desktop"
}

// SiteType distinguishes ads shown in a regular browser from ads shown
// inside an app's embedded webview, matching the paper's Table 2 split.
type SiteType int

const (
	// SiteBrowser is a full web browser.
	SiteBrowser SiteType = iota
	// SiteApp is an in-app webview.
	SiteApp
)

// String implements fmt.Stringer.
func (s SiteType) String() string {
	if s == SiteApp {
		return "app"
	}
	return "browser"
}

// OS is the operating-system family.
type OS string

// Operating systems appearing in the paper's evaluation.
const (
	Windows OS = "Windows"
	MacOS   OS = "macOS"
	Android OS = "Android"
	IOS     OS = "iOS"
)

// Profile describes a browsing environment: the browser build, the host
// OS, the device class, and the capability flags that determine which
// measurement techniques can work there.
//
// The capability flags are the crux of the reproduction: Q-Tag needs only
// script execution plus frame callbacks (SupportsFrameCallbacks), while
// geometry-based verifiers additionally need either a same-origin path to
// the top window or a cross-origin visibility API
// (SupportsIntersectionObserver), which 2019-era in-app webviews often
// lacked.
type Profile struct {
	// Name is a short human-readable identifier, e.g. "Chrome75-Win10".
	Name string
	// Browser is the browser family ("Chrome", "Firefox", ...).
	Browser string
	// Version is the browser major version.
	Version int
	// OS and OSVersion identify the host platform.
	OS        OS
	OSVersion string
	// Device is the device class.
	Device DeviceType
	// Site is whether pages render in a browser or an in-app webview.
	Site SiteType

	// RefreshRate is the device refresh rate in frames per second for
	// content in the viewport (the paper cites 60+ fps).
	RefreshRate float64
	// HiddenFPS is the throttled callback rate for content that is not
	// being rendered (below the fold, background tab, occluded window);
	// "close to 0" per the paper. Zero means fully suspended.
	HiddenFPS float64

	// SupportsFrameCallbacks reports requestAnimationFrame-style paint
	// callbacks, the only browser facility Q-Tag requires.
	SupportsFrameCallbacks bool
	// SupportsIntersectionObserver reports a cross-origin-capable
	// visibility API usable by geometry-based verifiers.
	SupportsIntersectionObserver bool
	// BlocksThirdPartyCookies reports default third-party-cookie blocking
	// (the §4.3 privacy-browser configurations). It never affects script
	// execution.
	BlocksThirdPartyCookies bool
	// BuiltinAdBlock reports a built-in content blocker (Brave) that
	// prevents ad delivery entirely.
	BuiltinAdBlock bool
}

// String implements fmt.Stringer.
func (p Profile) String() string {
	return fmt.Sprintf("%s %d on %s %s (%s/%s)", p.Browser, p.Version, p.OS, p.OSVersion, p.Device, p.Site)
}

func desktop(name, family string, version int, os OS, osVersion string) Profile {
	return Profile{
		Name: name, Browser: family, Version: version, OS: os, OSVersion: osVersion,
		Device: Desktop, Site: SiteBrowser,
		RefreshRate: 60, HiddenFPS: 0,
		SupportsFrameCallbacks:       true,
		SupportsIntersectionObserver: family != "IE", // IE11 never shipped it
	}
}

// CertificationProfiles returns the six browser–OS combinations used in
// the §4.2 certification replication: Firefox 67 / Chrome 75 / IE 11 on
// Windows 10 and Safari 12 / Firefox 68 / Chrome 76 on macOS 10.14.
func CertificationProfiles() []Profile {
	return []Profile{
		desktop("Firefox67-Win10", "Firefox", 67, Windows, "10"),
		desktop("Chrome75-Win10", "Chrome", 75, Windows, "10"),
		desktop("IE11-Win10", "IE", 11, Windows, "10"),
		desktop("Safari12-macOS10.14", "Safari", 12, MacOS, "10.14"),
		desktop("Firefox68-macOS10.14", "Firefox", 68, MacOS, "10.14"),
		desktop("Chrome76-macOS10.14", "Chrome", 76, MacOS, "10.14"),
	}
}

// PrivacyProfiles returns the §4.3 privacy-enhanced configurations:
// Chrome 77, Safari 13 and Firefox 69 with third-party cookies blocked by
// default.
func PrivacyProfiles() []Profile {
	mk := func(name, family string, version int, os OS, osv string) Profile {
		p := desktop(name, family, version, os, osv)
		p.BlocksThirdPartyCookies = true
		return p
	}
	return []Profile{
		mk("Chrome77-privacy", "Chrome", 77, Windows, "10"),
		mk("Safari13-privacy", "Safari", 13, MacOS, "10.15"),
		mk("Firefox69-privacy", "Firefox", 69, Windows, "10"),
	}
}

// BraveProfile returns a Brave configuration whose built-in shields block
// ad delivery (§4.3).
func BraveProfile() Profile {
	p := desktop("Brave", "Brave", 1, Windows, "10")
	p.BuiltinAdBlock = true
	return p
}

// AndroidWebViewProfile returns an in-app Android webview. The oldWebView
// flag models 2019-era system webviews without IntersectionObserver — the
// population responsible for the commercial solution's 53.4 % measured
// rate in Table 2.
func AndroidWebViewProfile(oldWebView bool) Profile {
	return Profile{
		Name: "AndroidWebView", Browser: "WebView", Version: 66, OS: Android, OSVersion: "9",
		Device: Mobile, Site: SiteApp,
		RefreshRate: 60, HiddenFPS: 0,
		SupportsFrameCallbacks:       true,
		SupportsIntersectionObserver: !oldWebView,
	}
}

// IOSWebViewProfile returns an in-app iOS WKWebView; modern is false for
// legacy UIWebView-era containers lacking visibility APIs.
func IOSWebViewProfile(modern bool) Profile {
	return Profile{
		Name: "iOSWKWebView", Browser: "WKWebView", Version: 12, OS: IOS, OSVersion: "12",
		Device: Mobile, Site: SiteApp,
		RefreshRate: 60, HiddenFPS: 0,
		SupportsFrameCallbacks:       true,
		SupportsIntersectionObserver: modern,
	}
}

// AndroidChromeProfile returns Chrome on Android (mobile browser traffic).
func AndroidChromeProfile() Profile {
	return Profile{
		Name: "Chrome-Android", Browser: "Chrome", Version: 76, OS: Android, OSVersion: "9",
		Device: Mobile, Site: SiteBrowser,
		RefreshRate: 60, HiddenFPS: 0,
		SupportsFrameCallbacks:       true,
		SupportsIntersectionObserver: true,
	}
}

// IOSSafariProfile returns Safari on iOS (mobile browser traffic).
func IOSSafariProfile() Profile {
	return Profile{
		Name: "Safari-iOS", Browser: "Safari", Version: 12, OS: IOS, OSVersion: "12",
		Device: Mobile, Site: SiteBrowser,
		RefreshRate: 60, HiddenFPS: 0,
		SupportsFrameCallbacks:       true,
		SupportsIntersectionObserver: true,
	}
}

package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// hookFS decorates a real FS with injectable failures, for exercising
// the WAL's error paths without the internal/faults package (which
// would be an import cycle from here).
type hookFS struct {
	FS
	mkdirErr   error
	openErr    error
	createErr  error
	readErr    error
	listErr    error
	renameErr  error
	removeErr  error
	syncDirErr error
	// createHook, when set, decides per-path whether Create fails.
	createHook func(name string) error
	// wrap, when set, decorates every opened/created file.
	wrap func(File) File
}

func (h *hookFS) MkdirAll(dir string) error {
	if h.mkdirErr != nil {
		return h.mkdirErr
	}
	return h.FS.MkdirAll(dir)
}

func (h *hookFS) OpenAppend(name string) (File, error) {
	if h.openErr != nil {
		return nil, h.openErr
	}
	f, err := h.FS.OpenAppend(name)
	if err == nil && h.wrap != nil {
		f = h.wrap(f)
	}
	return f, err
}

func (h *hookFS) Create(name string) (File, error) {
	if h.createErr != nil {
		return nil, h.createErr
	}
	if h.createHook != nil {
		if err := h.createHook(name); err != nil {
			return nil, err
		}
	}
	f, err := h.FS.Create(name)
	if err == nil && h.wrap != nil {
		f = h.wrap(f)
	}
	return f, err
}

func (h *hookFS) ReadFile(name string) ([]byte, error) {
	if h.readErr != nil {
		return nil, h.readErr
	}
	return h.FS.ReadFile(name)
}

func (h *hookFS) List(dir string) ([]string, error) {
	if h.listErr != nil {
		return nil, h.listErr
	}
	return h.FS.List(dir)
}

func (h *hookFS) Rename(oldPath, newPath string) error {
	if h.renameErr != nil {
		return h.renameErr
	}
	return h.FS.Rename(oldPath, newPath)
}

func (h *hookFS) Remove(name string) error {
	if h.removeErr != nil {
		return h.removeErr
	}
	return h.FS.Remove(name)
}

func (h *hookFS) SyncDir(dir string) error {
	if h.syncDirErr != nil {
		return h.syncDirErr
	}
	return h.FS.SyncDir(dir)
}

// hookErrs is the injectable write/sync/truncate failure config;
// writeErr fires after writeOK more successful writes, and partial>=0
// makes the failing write land that many bytes first. It is shared by
// every file the wrapping hookFS opens (rotation keeps two files live
// at once), and tests mutate it mid-run.
type hookErrs struct {
	writeOK  int
	writeErr error
	partial  int
	syncErr  error
	truncErr error
}

// bind attaches the shared config to one opened file.
func (e *hookErrs) bind(f File) File { return &hookFile{File: f, errs: e} }

// hookFile decorates one File with the shared failure config.
type hookFile struct {
	File
	errs *hookErrs
}

func (h *hookFile) Write(p []byte) (int, error) {
	e := h.errs
	if e.writeErr != nil && e.writeOK <= 0 {
		n := 0
		if e.partial > 0 && e.partial < len(p) {
			n, _ = h.File.Write(p[:e.partial])
		}
		return n, e.writeErr
	}
	e.writeOK--
	return h.File.Write(p)
}

func (h *hookFile) Sync() error {
	if h.errs.syncErr != nil {
		return h.errs.syncErr
	}
	return h.File.Sync()
}

func (h *hookFile) Truncate(size int64) error {
	if h.errs.truncErr != nil {
		return h.errs.truncErr
	}
	return h.File.Truncate(size)
}

func TestAccessorsAndIsDiskFull(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if w.Dir() != dir {
		t.Fatalf("Dir = %q", w.Dir())
	}
	if w.ActiveSegmentBytes() != SegmentHeaderSize {
		t.Fatalf("empty active segment = %d bytes", w.ActiveSegmentBytes())
	}
	if err := w.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if w.Appended() != 1 || w.AppendErrors() != 0 || w.DiskFull() {
		t.Fatalf("counters: appended=%d errs=%d full=%v", w.Appended(), w.AppendErrors(), w.DiskFull())
	}
	if w.Pending() != 1 { // FsyncOnBatch: a lone Append is unsynced
		t.Fatalf("pending = %d", w.Pending())
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if w.Pending() != 0 || w.Syncs() == 0 {
		t.Fatalf("after Sync: pending=%d syncs=%d", w.Pending(), w.Syncs())
	}
	if IsDiskFull(nil) || IsDiskFull(errors.New("nope")) {
		t.Fatal("IsDiskFull false positives")
	}
	if !IsDiskFull(syscall.ENOSPC) || !IsDiskFull(fmt.Errorf("wrap: %w", syscall.EDQUOT)) {
		t.Fatal("IsDiskFull false negatives")
	}
}

func TestExplicitRotateAndClosedOps(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Rotating an empty active segment is a no-op.
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	if got := w.Segments(); got != 1 {
		t.Fatalf("empty rotate created a segment: %d", got)
	}
	if err := w.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	if got, rot := w.Segments(), w.Rotations(); got != 2 || rot != 1 {
		t.Fatalf("after rotate: segments=%d rotations=%d", got, rot)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := w.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if err := w.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("sync after close: %v", err)
	}
	if err := w.Rotate(); !errors.Is(err, ErrClosed) {
		t.Fatalf("rotate after close: %v", err)
	}
	if err := w.AppendBatch(nil); err != nil { // empty batch short-circuits
		t.Fatal(err)
	}
}

func TestOpenErrorPaths(t *testing.T) {
	if _, _, err := Open(Options{}, nil); err == nil {
		t.Fatal("Open without Dir must fail")
	}
	boom := errors.New("boom")
	if _, _, err := Open(Options{Dir: t.TempDir(), FS: &hookFS{FS: OS, mkdirErr: boom}}, nil); !errors.Is(err, boom) {
		t.Fatalf("mkdir error: %v", err)
	}
	if _, _, err := Open(Options{Dir: t.TempDir(), FS: &hookFS{FS: OS, listErr: boom}}, nil); !errors.Is(err, boom) {
		t.Fatalf("list error: %v", err)
	}
	// A readable dir whose segment cannot be read.
	dir := t.TempDir()
	w, _, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	w.Append([]byte("x"))
	w.Close()
	if _, _, err := Open(Options{Dir: dir, FS: &hookFS{FS: OS, readErr: boom}}, nil); !errors.Is(err, boom) {
		t.Fatalf("read error: %v", err)
	}
	// A replay callback error aborts Open.
	if _, _, err := Open(Options{Dir: dir}, func(uint64, []byte) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("replay error: %v", err)
	}
	// Create failing on a fresh dir.
	if _, _, err := Open(Options{Dir: t.TempDir(), FS: &hookFS{FS: OS, createErr: syscall.ENOSPC}}, nil); !IsDiskFull(err) {
		t.Fatalf("create error: %v", err)
	}
}

func TestAppendWriteErrorPaths(t *testing.T) {
	boom := errors.New("boom")
	t.Run("clean failure", func(t *testing.T) {
		hf := &hookErrs{}
		fsys := &hookFS{FS: OS, wrap: hf.bind}
		w, _, err := Open(Options{Dir: t.TempDir(), FS: fsys}, nil)
		if err != nil {
			t.Fatal(err)
		}
		hf.writeErr = syscall.ENOSPC
		if err := w.Append([]byte("x")); !IsDiskFull(err) {
			t.Fatalf("want ENOSPC, got %v", err)
		}
		if w.AppendErrors() != 1 || !w.DiskFull() {
			t.Fatalf("errs=%d full=%v", w.AppendErrors(), w.DiskFull())
		}
		// Space frees up: the append succeeds and the alarm clears.
		hf.writeErr = nil
		if err := w.Append([]byte("x")); err != nil || w.DiskFull() {
			t.Fatalf("recovered append: %v full=%v", err, w.DiskFull())
		}
		w.Close()
	})
	t.Run("partial write rolled back", func(t *testing.T) {
		hf := &hookErrs{}
		fsys := &hookFS{FS: OS, wrap: hf.bind}
		dir := t.TempDir()
		w, _, err := Open(Options{Dir: dir, FS: fsys}, nil)
		if err != nil {
			t.Fatal(err)
		}
		w.Append([]byte("good"))
		hf.writeErr, hf.partial = boom, 3
		if err := w.Append([]byte("torn-record")); !errors.Is(err, boom) {
			t.Fatalf("torn append: %v", err)
		}
		hf.writeErr, hf.partial = nil, 0
		if err := w.Append([]byte("after")); err != nil {
			t.Fatal(err)
		}
		w.Close()
		var recs []string
		if _, _, err := Open(Options{Dir: dir}, func(_ uint64, p []byte) error {
			recs = append(recs, string(p))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(recs) != 2 || recs[0] != "good" || recs[1] != "after" {
			t.Fatalf("recovered %q", recs)
		}
	})
	t.Run("partial write with failed rollback poisons segment", func(t *testing.T) {
		hf := &hookErrs{}
		fsys := &hookFS{FS: OS, wrap: hf.bind}
		dir := t.TempDir()
		w, _, err := Open(Options{Dir: dir, FS: fsys}, nil)
		if err != nil {
			t.Fatal(err)
		}
		w.Append([]byte("good"))
		hf.writeErr, hf.partial, hf.truncErr = boom, 3, boom
		if err := w.Append([]byte("torn")); !errors.Is(err, boom) {
			t.Fatalf("torn append: %v", err)
		}
		// The next append must rotate away from the poisoned segment.
		hf.writeErr, hf.partial, hf.truncErr = nil, 0, nil
		if err := w.Append([]byte("fresh")); err != nil {
			t.Fatal(err)
		}
		if w.Segments() != 2 {
			t.Fatalf("poisoned segment not rotated: %d segments", w.Segments())
		}
		w.Close()
		var recs []string
		if _, _, err := Open(Options{Dir: dir}, func(_ uint64, p []byte) error {
			recs = append(recs, string(p))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(recs) != 2 || recs[0] != "good" || recs[1] != "fresh" {
			t.Fatalf("recovered %q", recs)
		}
	})
	t.Run("sync failure surfaces", func(t *testing.T) {
		hf := &hookErrs{}
		fsys := &hookFS{FS: OS, wrap: hf.bind}
		w, _, err := Open(Options{Dir: t.TempDir(), FS: fsys}, nil)
		if err != nil {
			t.Fatal(err)
		}
		w.Append([]byte("x"))
		hf.syncErr = syscall.ENOSPC
		if err := w.Sync(); !IsDiskFull(err) {
			t.Fatalf("sync: %v", err)
		}
		if !w.DiskFull() {
			t.Fatal("sync ENOSPC must raise the disk-full flag")
		}
		hf.syncErr = boom
		if err := w.Rotate(); !errors.Is(err, boom) {
			t.Fatalf("rotate with failing sync: %v", err)
		}
	})
}

func TestRotateCreateFailureKeepsOldSegmentActive(t *testing.T) {
	// ENOSPC at rotation: creating the replacement segment fails. The
	// old segment must stay active (and writable) so the WAL self-heals
	// once space is freed, instead of wedging against a closed file.
	fail := false
	fsys := &hookFS{FS: OS, createHook: func(name string) error {
		if fail && strings.HasSuffix(name, ".seg") {
			return syscall.ENOSPC
		}
		return nil
	}}
	dir := t.TempDir()
	w, _, err := Open(Options{Dir: dir, FS: fsys, SegmentBytes: 32}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("0123456789abcdef")); err != nil {
		t.Fatal(err)
	}
	fail = true
	// The next append must rotate; the rotation's create fails.
	if err := w.Append([]byte("second-record-xx")); !IsDiskFull(err) {
		t.Fatalf("append during failed rotation: %v", err)
	}
	if !w.DiskFull() {
		t.Fatal("failed segment create must raise the disk-full flag")
	}
	// Space frees up: the very next append rotates and lands.
	fail = false
	if err := w.Append([]byte("third-record-xxx")); err != nil {
		t.Fatalf("append after space freed: %v", err)
	}
	if w.Segments() != 2 {
		t.Fatalf("segments = %d, want 2", w.Segments())
	}
	w.Close()
	var recs []string
	if _, _, err := Open(Options{Dir: dir}, func(_ uint64, p []byte) error {
		recs = append(recs, string(p))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0] != "0123456789abcdef" || recs[1] != "third-record-xxx" {
		t.Fatalf("recovered %q", recs)
	}
}

func TestSkipTo(t *testing.T) {
	t.Run("past records", func(t *testing.T) {
		dir := t.TempDir()
		w, _, err := Open(Options{Dir: dir}, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if err := w.Append([]byte("rec")); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.SkipTo(2); err != nil { // behind: no-op
			t.Fatal(err)
		}
		if got := w.NextIndex(); got != 4 {
			t.Fatalf("NextIndex after backward SkipTo = %d", got)
		}
		if err := w.SkipTo(10); err != nil {
			t.Fatal(err)
		}
		if got := w.NextIndex(); got != 10 {
			t.Fatalf("NextIndex = %d, want 10", got)
		}
		if err := w.Append([]byte("after-skip")); err != nil {
			t.Fatal(err)
		}
		w.Close()
		// The jump survives recovery: the new segment's header declares it.
		var idx []uint64
		w2, _, err := Open(Options{Dir: dir}, func(i uint64, _ []byte) error {
			idx = append(idx, i)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		defer w2.Close()
		want := []uint64{1, 2, 3, 10}
		if len(idx) != len(want) {
			t.Fatalf("recovered indices %v, want %v", idx, want)
		}
		for i := range want {
			if idx[i] != want[i] {
				t.Fatalf("recovered indices %v, want %v", idx, want)
			}
		}
		if got := w2.NextIndex(); got != 11 {
			t.Fatalf("NextIndex after recovery = %d, want 11", got)
		}
	})
	t.Run("empty active segment is replaced", func(t *testing.T) {
		dir := t.TempDir()
		w, _, err := Open(Options{Dir: dir}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.SkipTo(7); err != nil {
			t.Fatal(err)
		}
		if got := w.Segments(); got != 1 {
			t.Fatalf("empty segment not retired: %d segments", got)
		}
		if err := w.Append([]byte("x")); err != nil {
			t.Fatal(err)
		}
		w.Close()
		var idx []uint64
		w2, _, err := Open(Options{Dir: dir}, func(i uint64, _ []byte) error {
			idx = append(idx, i)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		defer w2.Close()
		if len(idx) != 1 || idx[0] != 7 {
			t.Fatalf("recovered indices %v, want [7]", idx)
		}
	})
	t.Run("closed", func(t *testing.T) {
		w, _, err := Open(Options{Dir: t.TempDir()}, nil)
		if err != nil {
			t.Fatal(err)
		}
		w.Close()
		if err := w.SkipTo(5); !errors.Is(err, ErrClosed) {
			t.Fatalf("SkipTo after close: %v", err)
		}
	})
	t.Run("create failure restores index", func(t *testing.T) {
		fsys := &hookFS{FS: OS}
		w, _, err := Open(Options{Dir: t.TempDir(), FS: fsys}, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		boom := errors.New("boom")
		fsys.createErr = boom
		if err := w.SkipTo(9); !errors.Is(err, boom) {
			t.Fatalf("SkipTo with failing create: %v", err)
		}
		if got := w.NextIndex(); got != 1 {
			t.Fatalf("NextIndex after failed SkipTo = %d, want 1", got)
		}
		fsys.createErr = nil
		if err := w.Append([]byte("x")); err != nil {
			t.Fatalf("append after failed SkipTo: %v", err)
		}
	})
}

func TestSyncDirFailurePaths(t *testing.T) {
	boom := errors.New("boom")
	// Segment creation surfaces a directory-sync failure.
	if _, _, err := Open(Options{Dir: t.TempDir(), FS: &hookFS{FS: OS, syncDirErr: boom}}, nil); !errors.Is(err, boom) {
		t.Fatalf("open with failing dir sync: %v", err)
	}
}

func TestCompactRemoveFailureKeepsSegment(t *testing.T) {
	fsys := &hookFS{FS: OS}
	w, _, err := Open(Options{Dir: t.TempDir(), FS: fsys, SegmentBytes: 32}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < 6; i++ {
		if err := w.Append([]byte("0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	sealed := w.Segments() - 1
	if sealed < 2 {
		t.Fatalf("want several sealed segments, got %d", sealed)
	}
	boom := errors.New("boom")
	fsys.removeErr = boom
	removed, err := w.Compact(w.LastIndex())
	if removed != 0 || !errors.Is(err, boom) {
		t.Fatalf("compact with failing remove: removed=%d err=%v", removed, err)
	}
	fsys.removeErr = nil
	removed, err = w.Compact(w.LastIndex())
	if err != nil || removed != sealed {
		t.Fatalf("retry compact: removed=%d err=%v", removed, err)
	}
}

func TestRecoverQuarantineWriteFailure(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		w.Append([]byte("0123456789abcdef"))
	}
	w.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	data, _ := os.ReadFile(segs[0])
	data[SegmentHeaderSize+RecordHeaderSize] ^= 0xff // corrupt record 1's payload
	os.WriteFile(segs[0], data, 0o644)

	boom := errors.New("boom")
	fsys := &hookFS{FS: OS, createHook: func(name string) error {
		if strings.HasSuffix(name, ".quarantine") {
			return boom
		}
		return nil
	}}
	if _, _, err := Open(Options{Dir: dir, FS: fsys}, nil); !errors.Is(err, boom) {
		t.Fatalf("recovery with failing quarantine create: %v", err)
	}
}

func TestRecoverRenameFailureOnBadHeader(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(Options{Dir: dir, SegmentBytes: 32}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		w.Append([]byte("0123456789abcdef"))
	}
	w.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) < 2 {
		t.Fatalf("need a mid-stream segment, have %d", len(segs))
	}
	// Smash the first segment's magic: recovery wants to rename it aside.
	data, _ := os.ReadFile(segs[0])
	copy(data, "XXXXXXXX")
	os.WriteFile(segs[0], data, 0o644)
	boom := errors.New("boom")
	if _, _, err := Open(Options{Dir: dir, FS: &hookFS{FS: OS, renameErr: boom}}, nil); !errors.Is(err, boom) {
		t.Fatalf("recovery with failing rename: %v", err)
	}
	// Without injection the rename succeeds and recovery continues.
	w2, res, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if res.Quarantined != 1 || len(res.QuarantineFiles) != 1 {
		t.Fatalf("bad-header segment not quarantined: %+v", res)
	}
}

func TestScanDamageBranches(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(Options{Dir: dir, SegmentBytes: 32}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		w.Append([]byte("0123456789abcdef"))
	}
	w.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) < 3 {
		t.Fatalf("need >=3 segments, have %d", len(segs))
	}
	// Segment 0: unreadable header. Segment 1: torn mid-stream (framing
	// lost). Last segment: torn tail plus a trailing stub file.
	data, _ := os.ReadFile(segs[0])
	copy(data, "XXXXXXXX")
	os.WriteFile(segs[0], data, 0o644)
	data, _ = os.ReadFile(segs[1])
	os.WriteFile(segs[1], data[:SegmentHeaderSize+3], 0o644)
	last := segs[len(segs)-1]
	f, _ := os.OpenFile(last, os.O_APPEND|os.O_WRONLY, 0)
	f.Write([]byte{9, 9})
	f.Close()
	os.WriteFile(filepath.Join(dir, segmentName(1<<40)), []byte("QW"), 0o644)

	var got int
	res, err := Scan(nil, dir, func(uint64, []byte) error { got++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	// Three quarantined chunks: the bad-header file, the torn mid-stream
	// remainder, and the garbage appended to the now-non-final segment
	// (the stub is the final file, whose short header is the torn tail).
	if res.Quarantined != 3 {
		t.Fatalf("quarantined = %d (%+v)", res.Quarantined, res)
	}
	if !res.TornTail || res.TruncatedBytes == 0 {
		t.Fatalf("torn tail not reported: %+v", res)
	}
	if got != 4 { // 6 records minus one per damaged segment
		t.Fatalf("scanned %d records, want 4", got)
	}
	// A scan replay error aborts.
	boom := errors.New("boom")
	if _, err := Scan(nil, dir, func(uint64, []byte) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("scan replay error: %v", err)
	}
	// And a read failure surfaces.
	if _, err := Scan(&hookFS{FS: OS, readErr: boom}, dir, nil); !errors.Is(err, boom) {
		t.Fatalf("scan read error: %v", err)
	}
	if _, err := Scan(&hookFS{FS: OS, listErr: boom}, dir, nil); !errors.Is(err, boom) {
		t.Fatalf("scan list error: %v", err)
	}
}

func TestSnapshotErrorPaths(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("boom")
	at := time.Unix(100, 0)
	if _, err := WriteSnapshot(&hookFS{FS: OS, mkdirErr: boom}, dir, 1, at, []byte("p")); !errors.Is(err, boom) {
		t.Fatalf("mkdir: %v", err)
	}
	if _, err := WriteSnapshot(&hookFS{FS: OS, createErr: boom}, dir, 1, at, []byte("p")); !errors.Is(err, boom) {
		t.Fatalf("create: %v", err)
	}
	hf := &hookErrs{writeErr: boom}
	if _, err := WriteSnapshot(&hookFS{FS: OS, wrap: hf.bind}, dir, 1, at, []byte("p")); !errors.Is(err, boom) {
		t.Fatalf("write: %v", err)
	}
	if _, err := WriteSnapshot(&hookFS{FS: OS, renameErr: boom}, dir, 1, at, []byte("p")); !errors.Is(err, boom) {
		t.Fatalf("rename: %v", err)
	}
	if _, err := WriteSnapshot(&hookFS{FS: OS, syncDirErr: boom}, dir, 1, at, []byte("p")); !errors.Is(err, boom) {
		t.Fatalf("dir sync: %v", err)
	}
	// None of the failures may leave a loadable snapshot behind.
	if snap, _, err := LoadSnapshot(nil, dir); err != nil || snap != nil {
		t.Fatalf("partial snapshot visible: %v %v", snap, err)
	}
	// Junk names and short/mismatched files are skipped, not fatal.
	os.WriteFile(filepath.Join(dir, "snap-zz.snap"), []byte("junk"), 0o644)
	os.WriteFile(filepath.Join(dir, "snap-00000000000000ff.snap"), []byte("short"), 0o644)
	if snap, corrupt, err := LoadSnapshot(nil, dir); err != nil || snap != nil || corrupt != 1 {
		t.Fatalf("junk dir: snap=%v corrupt=%d err=%v", snap, corrupt, err)
	}
	// Length-mismatch branch of decodeSnapshot.
	path, err := WriteSnapshot(nil, dir, 7, at, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	os.WriteFile(path, data[:len(data)-2], 0o644)
	if snap, corrupt, err := LoadSnapshot(nil, dir); err != nil || snap != nil || corrupt != 2 {
		t.Fatalf("truncated snapshot: snap=%v corrupt=%d err=%v", snap, corrupt, err)
	}
	if _, _, err := LoadSnapshot(&hookFS{FS: OS, readErr: boom}, dir); !errors.Is(err, boom) {
		t.Fatalf("load read error: %v", err)
	}
	if _, _, err := LoadSnapshot(&hookFS{FS: OS, listErr: boom}, dir); !errors.Is(err, boom) {
		t.Fatalf("load list error: %v", err)
	}
}

package wal

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func openGC(t *testing.T, opts Options) *WAL {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	opts.GroupCommit = true
	w, _, err := Open(opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestGroupCommitConcurrentAppends(t *testing.T) {
	var obsMu sync.Mutex
	observed := 0
	w := openGC(t, Options{
		Fsync: FsyncAlways,
		CommitObserver: func(records int, latency time.Duration) {
			obsMu.Lock()
			observed += records
			obsMu.Unlock()
			if records <= 0 || latency < 0 {
				t.Errorf("bad observation: records=%d latency=%v", records, latency)
			}
		},
	})
	defer w.Close()
	if !w.GroupCommitEnabled() {
		t.Fatal("group commit not enabled")
	}

	const (
		workers = 8
		each    = 40
	)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := w.Append(fmt.Appendf(nil, "rec-%d-%d", g, i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := w.Appended(); got != workers*each {
		t.Fatalf("appended %d, want %d", got, workers*each)
	}
	if w.GroupCommits() == 0 || w.GroupCommits() > int64(workers*each) {
		t.Fatalf("implausible group commit count %d", w.GroupCommits())
	}
	obsMu.Lock()
	defer obsMu.Unlock()
	if observed != workers*each {
		t.Fatalf("observer saw %d records, want %d", observed, workers*each)
	}
}

func TestGroupCommitMaxWaitGrowsBatches(t *testing.T) {
	w := openGC(t, Options{
		Fsync:               FsyncAlways,
		GroupCommitMaxWait:  2 * time.Millisecond,
		GroupCommitMaxBatch: 8,
	})
	defer w.Close()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if err := w.Append(fmt.Appendf(nil, "w-%d-%d", g, i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := w.Appended(); got != 160 {
		t.Fatalf("appended %d, want 160", got)
	}
	// With 16 concurrent callers and a held-open group, commits must be
	// meaningfully amortized (strictly fewer than records).
	if gc := w.GroupCommits(); gc >= 160 || gc == 0 {
		t.Fatalf("group commits %d show no amortization over 160 records", gc)
	}
}

func TestGroupCommitAppendBatchAndReplay(t *testing.T) {
	dir := t.TempDir()
	w := openGC(t, Options{Dir: dir, Fsync: FsyncOnBatch})
	if err := w.AppendBatch([][]byte{[]byte("a"), []byte("b"), []byte("c")}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("d")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var got []string
	w2, rec, err := Open(Options{Dir: dir}, func(index uint64, payload []byte) error {
		got = append(got, string(payload))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if rec.Records != 4 || len(got) != 4 {
		t.Fatalf("replayed %d records (%v), want 4", rec.Records, got)
	}
	want := []string{"a", "b", "c", "d"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replay order %v, want %v", got, want)
		}
	}
}

func TestGroupCommitCloseDrainsQueue(t *testing.T) {
	dir := t.TempDir()
	w := openGC(t, Options{Dir: dir, Fsync: FsyncAlways, GroupCommitMaxWait: time.Millisecond})
	var wg sync.WaitGroup
	errs := make([]error, 32)
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			errs[g] = w.Append(fmt.Appendf(nil, "drain-%d", g))
		}(g)
	}
	wg.Wait() // all in-flight appends acked before Close below
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	acked := 0
	for _, err := range errs {
		if err == nil {
			acked++
		}
	}
	if err := w.Append([]byte("late")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close = %v, want ErrClosed", err)
	}
	if err := w.AppendBatch([][]byte{[]byte("late")}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append batch after close = %v, want ErrClosed", err)
	}
	// Every acked record must be on disk.
	n := 0
	w2, _, err := Open(Options{Dir: dir}, func(uint64, []byte) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if n != acked {
		t.Fatalf("recovered %d records, acked %d", n, acked)
	}
}

func TestGroupCommitOversizedFailsCallerOnly(t *testing.T) {
	w := openGC(t, Options{Fsync: FsyncAlways, MaxRecordBytes: 32})
	defer w.Close()
	big := make([]byte, 64)
	if err := w.Append(big); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("oversized append = %v, want ErrRecordTooLarge", err)
	}
	if err := w.AppendBatch([][]byte{[]byte("ok"), big}); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("oversized batch = %v, want ErrRecordTooLarge", err)
	}
	if err := w.Append([]byte("fits")); err != nil {
		t.Fatalf("good append after oversized rejections: %v", err)
	}
	if got := w.Appended(); got != 1 {
		t.Fatalf("appended %d, want 1 (rejections must not reach the log)", got)
	}
}

func TestGroupQueueDepth(t *testing.T) {
	w := openGC(t, Options{Fsync: FsyncAlways})
	if d := w.GroupQueueDepth(); d != 0 {
		t.Fatalf("idle queue depth %d, want 0", d)
	}
	if err := w.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if d := w.GroupQueueDepth(); d != 0 {
		t.Fatalf("closed queue depth %d, want 0", d)
	}
}

func TestGroupCommitDisabledAccessors(t *testing.T) {
	w, _, err := Open(Options{Dir: t.TempDir()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if w.GroupCommitEnabled() {
		t.Fatal("group commit reported enabled without the option")
	}
	if w.GroupCommits() != 0 || w.GroupQueueDepth() != 0 {
		t.Fatal("group commit counters nonzero without the option")
	}
	if err := w.Append([]byte("direct")); err != nil {
		t.Fatal(err)
	}
}

package wal

import (
	"runtime"
	"sync"
	"time"
)

// commitReq is one caller's pending append: its framed payloads, whether
// it came from AppendBatch (the FsyncOnBatch trigger), and the channel
// the commit outcome is delivered on.
type commitReq struct {
	payloads [][]byte
	batch    bool
	enqueued time.Time
	err      chan error
}

// groupCommitter serializes concurrent Append callers through one
// committer goroutine: callers enqueue records and block; the committer
// drains the queue, writes one coalesced frame and performs one fsync
// per group (policy permitting), then releases every caller in the
// group. Per-caller durability semantics are unchanged — an Append under
// FsyncAlways still returns only after the fsync covering its record —
// but the syscall cost is amortized across every caller that queued up
// while the previous fsync was in flight (natural batching). MaxWait > 0
// additionally holds small groups open for a bounded wait to grow them.
type groupCommitter struct {
	w        *WAL
	maxBatch int
	maxWait  time.Duration
	observe  func(records int, latency time.Duration)
	now      func() time.Time

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*commitReq
	stopped bool
	done    chan struct{}
}

func newGroupCommitter(w *WAL) *groupCommitter {
	g := &groupCommitter{
		w:        w,
		maxBatch: w.opts.GroupCommitMaxBatch,
		maxWait:  w.opts.GroupCommitMaxWait,
		observe:  w.opts.CommitObserver,
		now:      w.opts.Now,
		done:     make(chan struct{}),
	}
	g.cond = sync.NewCond(&g.mu)
	go g.run()
	return g
}

// submit enqueues one caller's records and blocks until the group commit
// covering them completes (or fails — every caller in a failed group
// gets the error; retrying re-appends the whole request, which is safe
// because replay feeds an idempotent store).
func (g *groupCommitter) submit(payloads [][]byte, batch bool) error {
	req := &commitReq{payloads: payloads, batch: batch, enqueued: g.now(), err: make(chan error, 1)}
	g.mu.Lock()
	if g.stopped {
		g.mu.Unlock()
		return ErrClosed
	}
	g.queue = append(g.queue, req)
	if len(g.queue) == 1 {
		g.cond.Signal()
	}
	g.mu.Unlock()
	return <-req.err
}

// depth returns the number of callers waiting for a commit.
func (g *groupCommitter) depth() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.queue)
}

// stop drains the queue (remaining requests are committed, not dropped)
// and retires the committer goroutine. Idempotent; safe to call
// concurrently with submit — later submits fail with ErrClosed.
func (g *groupCommitter) stop() {
	g.mu.Lock()
	if !g.stopped {
		g.stopped = true
		g.cond.Broadcast()
	}
	g.mu.Unlock()
	<-g.done
}

// run is the committer loop.
func (g *groupCommitter) run() {
	defer close(g.done)
	for {
		g.mu.Lock()
		for len(g.queue) == 0 && !g.stopped {
			g.cond.Wait()
		}
		if len(g.queue) == 0 {
			g.mu.Unlock()
			return // stopped and drained
		}
		take, records := g.takeLocked(nil, 0)
		g.mu.Unlock()
		if records < g.maxBatch && g.maxWait > 0 {
			// Hold the group open to let concurrent callers join — but
			// adaptively, not with one fixed sleep: yield so blocked
			// handlers get scheduled and enqueue, and close the group as
			// soon as arrivals dry up, it fills, or maxWait elapses. Real
			// time, deliberately: this is a latency/throughput trade on
			// the live ingest path, not part of the simulated clock domain.
			deadline := time.Now().Add(g.maxWait)
			idle := 0
			for records < g.maxBatch && idle < 2 && time.Now().Before(deadline) {
				runtime.Gosched()
				g.mu.Lock()
				prev := records
				take, records = g.takeLocked(take, records)
				g.mu.Unlock()
				if records == prev {
					idle++
				} else {
					idle = 0
				}
			}
		}
		g.commit(take, records)
	}
}

// takeLocked moves requests from the queue into the in-progress group
// until the group reaches maxBatch records (a request is never split, so
// one oversized AppendBatch can exceed it).
func (g *groupCommitter) takeLocked(group []*commitReq, records int) ([]*commitReq, int) {
	for len(g.queue) > 0 && records < g.maxBatch {
		req := g.queue[0]
		g.queue = g.queue[1:]
		group = append(group, req)
		records += len(req.payloads)
	}
	return group, records
}

// commit writes one coalesced group and releases its callers.
func (g *groupCommitter) commit(group []*commitReq, records int) {
	payloads := make([][]byte, 0, records)
	batch := false
	for _, req := range group {
		payloads = append(payloads, req.payloads...)
		batch = batch || req.batch
	}
	err := g.w.append(payloads, batch)
	if err == nil {
		g.w.groupCommits.Add(1)
	}
	if g.observe != nil {
		g.observe(records, g.now().Sub(group[0].enqueued))
	}
	for _, req := range group {
		req.err <- err
	}
}

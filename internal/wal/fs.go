package wal

import (
	"io"
	"os"
	"sort"
)

// File is the slice of *os.File the WAL needs. The fault-injection
// harness (internal/faults.CrashFS) wraps it to tear writes at exact
// byte offsets and to drop unsynced data on a simulated crash.
type File interface {
	io.Writer
	Sync() error
	Truncate(size int64) error
	Close() error
}

// FS is the filesystem seam under the WAL. Paths are full paths (the
// WAL joins its directory itself). The OS variable is the real
// implementation; internal/faults provides crash- and ENOSPC-injecting
// wrappers.
type FS interface {
	MkdirAll(dir string) error
	// OpenAppend opens name for appending, creating it when absent.
	OpenAppend(name string) (File, error)
	// Create opens name for writing, truncating any existing content.
	Create(name string) (File, error)
	ReadFile(name string) ([]byte, error)
	// List returns the entry names (not paths) of dir, sorted.
	List(dir string) ([]string, error)
	Rename(oldPath, newPath string) error
	Remove(name string) error
	// SyncDir fsyncs the directory itself, making entry mutations
	// (create, rename) durable: without it a power loss can make a
	// freshly created segment or a renamed snapshot vanish even though
	// the file's own contents were fsynced.
	SyncDir(dir string) error
}

// OS is the real-filesystem FS.
var OS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
}

// Create truncates, then appends: O_APPEND makes every write land at
// the current end of file regardless of the descriptor's offset, so
// rolling back a torn write with Truncate and continuing to append
// cannot leave a zero-filled hole.
func (osFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_TRUNC|os.O_RDWR|os.O_APPEND, 0o644)
}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) List(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Segment and record framing constants. All integers are little-endian.
const (
	// segMagic opens every segment file; a file that does not start with
	// it is not (or no longer) a valid segment.
	segMagic = "QWALSEG1"
	// SegmentHeaderSize is magic (8) + first record index (8).
	SegmentHeaderSize = 16
	// RecordHeaderSize is payload length (4) + CRC32C of the payload (4).
	RecordHeaderSize = 8
	// DefaultMaxRecordBytes bounds a single record payload. Recovery uses
	// the bound to tell a corrupted length prefix from a huge record: a
	// length above it means framing is lost, not that a 4 GiB beacon
	// arrived.
	DefaultMaxRecordBytes = 16 << 20
)

// Codec and recovery errors.
var (
	// ErrShortRecord reports that the data ends before the framed record
	// does — the signature of a torn tail write.
	ErrShortRecord = errors.New("wal: record extends past end of data")
	// ErrChecksum reports a structurally complete record whose payload
	// does not match its CRC32C — mid-stream corruption.
	ErrChecksum = errors.New("wal: record checksum mismatch")
	// ErrRecordTooLarge reports a length prefix above the configured
	// bound; during recovery it means framing is lost from here on.
	ErrRecordTooLarge = errors.New("wal: record length exceeds limit")
	// ErrBadSegmentHeader reports a segment file without a valid header.
	ErrBadSegmentHeader = errors.New("wal: bad segment header")
	// ErrClosed is returned by operations on a closed WAL.
	ErrClosed = errors.New("wal: closed")
)

// castagnoli is the CRC32C polynomial table — the checksum used by
// production journals (ext4, Snappy, iSCSI) because it detects the short
// burst errors torn writes produce and has hardware support.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32C of p.
func Checksum(p []byte) uint32 { return crc32.Checksum(p, castagnoli) }

// EncodeRecord appends the framed record — length, CRC32C, payload — to
// dst and returns the extended slice.
func EncodeRecord(dst, payload []byte) []byte {
	var hdr [RecordHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], Checksum(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// DecodeRecord parses one framed record from the front of b. maxBytes
// bounds the accepted payload length (DefaultMaxRecordBytes when <= 0).
//
// On success it returns the payload (aliasing b — copy before retaining)
// and the total frame size. On ErrChecksum, n still reports the frame
// size so a scanner can quarantine the frame and resynchronise at the
// next record boundary. On ErrShortRecord and ErrRecordTooLarge, n is 0:
// framing is lost and the caller decides between truncation (torn tail)
// and quarantine (mid-stream).
func DecodeRecord(b []byte, maxBytes int) (payload []byte, n int, err error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxRecordBytes
	}
	if len(b) < RecordHeaderSize {
		return nil, 0, ErrShortRecord
	}
	length := binary.LittleEndian.Uint32(b[0:4])
	if uint64(length) > uint64(maxBytes) {
		return nil, 0, fmt.Errorf("%w: %d > %d", ErrRecordTooLarge, length, maxBytes)
	}
	n = RecordHeaderSize + int(length)
	if len(b) < n {
		return nil, 0, ErrShortRecord
	}
	payload = b[RecordHeaderSize:n]
	if Checksum(payload) != binary.LittleEndian.Uint32(b[4:8]) {
		return nil, n, ErrChecksum
	}
	return payload, n, nil
}

// encodeSegmentHeader renders the 16-byte segment header for a segment
// whose first record has the given index.
func encodeSegmentHeader(firstIndex uint64) []byte {
	h := make([]byte, SegmentHeaderSize)
	copy(h, segMagic)
	binary.LittleEndian.PutUint64(h[8:16], firstIndex)
	return h
}

// parseSegmentHeader validates the header and returns the first record
// index declared by the segment.
func parseSegmentHeader(b []byte) (uint64, error) {
	if len(b) < SegmentHeaderSize || string(b[:8]) != segMagic {
		return 0, ErrBadSegmentHeader
	}
	return binary.LittleEndian.Uint64(b[8:16]), nil
}

package wal

import (
	"errors"
	"fmt"
	"time"
)

// RecoverResult is the exact loss/duplication accounting of one recovery
// (or read-only Scan) pass over a WAL directory.
type RecoverResult struct {
	// Segments counts segment files scanned (including quarantined ones).
	Segments int
	// Records counts valid records replayed.
	Records int
	// Quarantined counts corrupted chunks set aside: checksum-failed
	// records, lost-framing remainders of non-final segments, and whole
	// segments with an unreadable header.
	Quarantined int
	// QuarantinedBytes is the total size of quarantined data.
	QuarantinedBytes int64
	// QuarantineFiles lists the sidecar/renamed files recovery produced
	// (empty for a read-only Scan).
	QuarantineFiles []string
	// TornTail reports that the final segment ended mid-record — the
	// signature of a crash between the last fsync and the tear.
	TornTail bool
	// TruncatedBytes is the size of the torn tail discarded from the
	// final segment.
	TruncatedBytes int64
	// Duration is the wall time the pass took (set by Open).
	Duration time.Duration
}

// segmentScan is the outcome of scanning one segment's bytes.
type segmentScan struct {
	next        uint64   // index after the last frame seen
	good        int64    // end offset of the last structurally sound frame
	records     int      // valid records replayed
	quarantined [][]byte // checksum-failed frames, in order
	torn        bool     // data ends in an incomplete / unframeable region
	tornChunk   []byte   // the unframeable remainder (aliases data)
}

// scanSegment walks the records of one segment (data includes the
// header, already validated to declare firstIndex). Valid records are
// passed to replay in order; a replay error aborts the scan.
func scanSegment(data []byte, firstIndex uint64, maxRecord int, replay func(uint64, []byte) error) (segmentScan, error) {
	sc := segmentScan{next: firstIndex, good: SegmentHeaderSize}
	off := SegmentHeaderSize
	for off < len(data) {
		payload, n, err := DecodeRecord(data[off:], maxRecord)
		switch {
		case err == nil:
			if replay != nil {
				if rerr := replay(sc.next, payload); rerr != nil {
					return sc, rerr
				}
			}
			sc.records++
			sc.next++
			off += n
			sc.good = int64(off)
		case errors.Is(err, ErrChecksum):
			// The frame is structurally intact: quarantine it and
			// resynchronise at the next record boundary. The corrupted
			// record still consumed its index when it was written.
			sc.quarantined = append(sc.quarantined, data[off:off+n])
			sc.next++
			off += n
			sc.good = int64(off)
		default:
			// ErrShortRecord / ErrRecordTooLarge: framing is lost from
			// here to the end of the segment.
			sc.torn = true
			sc.tornChunk = data[off:]
			off = len(data)
		}
	}
	return sc, nil
}

// recover scans the segments of w.opts.Dir in order, replaying valid
// records, truncating the final segment's torn tail, quarantining
// mid-stream corruption, and leaving w positioned to append.
func (w *WAL) recover(replay func(uint64, []byte) error, res *RecoverResult) error {
	segs, err := listSegments(w.fs, w.opts.Dir)
	if err != nil {
		return fmt.Errorf("wal: list segments: %w", err)
	}
	adopted := false
	for i, seg := range segs {
		isLast := i == len(segs)-1
		data, err := w.fs.ReadFile(seg.path)
		if err != nil {
			return fmt.Errorf("wal: read segment: %w", err)
		}
		res.Segments++
		firstIndex, herr := parseSegmentHeader(data)
		if herr != nil {
			if isLast && len(data) < SegmentHeaderSize {
				// Torn segment creation: the crash hit between Create
				// and the header sync. Nothing could have been stored;
				// drop the stub and recreate the segment below.
				res.TornTail = true
				res.TruncatedBytes += int64(len(data))
				if err := w.fs.Remove(seg.path); err != nil {
					return fmt.Errorf("wal: drop torn segment stub: %w", err)
				}
				continue
			}
			// Unreadable header mid-stream: the segment's framing is
			// gone wholesale. Quarantine the file and move on.
			qpath := seg.path + ".quarantine"
			if err := w.fs.Rename(seg.path, qpath); err != nil {
				return fmt.Errorf("wal: quarantine segment: %w", err)
			}
			res.Quarantined++
			res.QuarantinedBytes += int64(len(data))
			res.QuarantineFiles = append(res.QuarantineFiles, qpath)
			continue
		}
		sc, err := scanSegment(data, firstIndex, w.opts.MaxRecordBytes, replay)
		if err != nil {
			return err
		}
		res.Records += sc.records
		w.nextIndex = sc.next

		// Quarantine sidecar: rewritten from scratch each recovery so
		// its contents are a deterministic function of the segment.
		chunks := sc.quarantined
		if sc.torn && !isLast {
			// A mid-stream segment that loses framing cannot be
			// truncated (later records live in later segments); its
			// remainder is quarantined instead.
			chunks = append(chunks, sc.tornChunk)
		}
		if len(chunks) > 0 {
			qpath := seg.path + ".quarantine"
			if err := writeQuarantine(w.fs, qpath, chunks); err != nil {
				return err
			}
			res.Quarantined += len(chunks)
			for _, c := range chunks {
				res.QuarantinedBytes += int64(len(c))
			}
			res.QuarantineFiles = append(res.QuarantineFiles, qpath)
		}

		if !isLast {
			w.sealed = append(w.sealed, sealedSeg{path: seg.path, first: firstIndex, last: sc.next - 1})
			continue
		}

		// Final segment: truncate the torn tail and adopt it as active.
		f, err := w.fs.OpenAppend(seg.path)
		if err != nil {
			return fmt.Errorf("wal: reopen segment: %w", err)
		}
		if sc.torn {
			if err := f.Truncate(sc.good); err != nil {
				f.Close()
				return fmt.Errorf("wal: truncate torn tail: %w", err)
			}
			if err := f.Sync(); err != nil {
				f.Close()
				return fmt.Errorf("wal: sync truncated segment: %w", err)
			}
			res.TornTail = true
			res.TruncatedBytes += int64(len(sc.tornChunk))
		}
		w.active = f
		w.activePath = seg.path
		w.activeStart = firstIndex
		w.activeSize = sc.good
		w.activeBirth = w.opts.Now()
		adopted = true
	}
	if !adopted {
		w.mu.Lock()
		err := w.createActiveLocked()
		w.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// writeQuarantine (re)writes one quarantine sidecar from the chunks.
func writeQuarantine(fsys FS, path string, chunks [][]byte) error {
	f, err := fsys.Create(path)
	if err != nil {
		return fmt.Errorf("wal: create quarantine sidecar: %w", err)
	}
	for _, c := range chunks {
		if _, err := f.Write(c); err != nil {
			f.Close()
			return fmt.Errorf("wal: write quarantine sidecar: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: sync quarantine sidecar: %w", err)
	}
	return f.Close()
}

// Scan is the read-only twin of Open's recovery: it walks the segments
// of dir in order, passing every valid record to replay, and reports the
// same accounting — without truncating, quarantining, or creating
// anything. qtag-replay uses it to read a live (or crashed) WAL
// directory non-invasively.
func Scan(fsys FS, dir string, replay func(index uint64, payload []byte) error) (RecoverResult, error) {
	if fsys == nil {
		fsys = OS
	}
	var res RecoverResult
	segs, err := listSegments(fsys, dir)
	if err != nil {
		return res, fmt.Errorf("wal: list segments: %w", err)
	}
	for i, seg := range segs {
		isLast := i == len(segs)-1
		data, err := fsys.ReadFile(seg.path)
		if err != nil {
			return res, fmt.Errorf("wal: read segment: %w", err)
		}
		res.Segments++
		firstIndex, herr := parseSegmentHeader(data)
		if herr != nil {
			if isLast && len(data) < SegmentHeaderSize {
				res.TornTail = true
				res.TruncatedBytes += int64(len(data))
				continue
			}
			res.Quarantined++
			res.QuarantinedBytes += int64(len(data))
			continue
		}
		sc, err := scanSegment(data, firstIndex, 0, replay)
		if err != nil {
			return res, err
		}
		res.Records += sc.records
		res.Quarantined += len(sc.quarantined)
		for _, c := range sc.quarantined {
			res.QuarantinedBytes += int64(len(c))
		}
		if sc.torn {
			if isLast {
				res.TornTail = true
				res.TruncatedBytes += int64(len(sc.tornChunk))
			} else {
				res.Quarantined++
				res.QuarantinedBytes += int64(len(sc.tornChunk))
			}
		}
	}
	return res, nil
}

// Package wal is a crash-safe, segmented write-ahead journal: the
// durability layer under the beacon collection server's in-memory store.
//
// Layout: a WAL directory holds numbered segment files
// (wal-<firstIndex>.seg), each a 16-byte header followed by
// length-prefixed, CRC32C-checksummed records, plus at most one
// checksummed snapshot (snap-<lastIndex>.snap) and any quarantine
// sidecars produced by recovery (*.quarantine).
//
// Guarantees:
//
//   - Append durability follows the fsync policy: FsyncAlways syncs every
//     append, FsyncOnBatch syncs at the end of each AppendBatch, and
//     FsyncInterval syncs when FsyncEvery has elapsed (checked on append;
//     pair it with a periodic Sync for idle streams).
//   - Recovery (Open) scans segments in index order, replays every valid
//     record, truncates a torn tail (a crash mid-write loses at most the
//     records appended after the last fsync), and quarantines corrupted
//     mid-stream records into a <segment>.quarantine sidecar instead of
//     aborting — with exact loss accounting in RecoverResult.
//   - Snapshot + Compact bound disk use: a snapshot covering records
//     [1, lastIndex] lets Compact retire every sealed segment whose
//     records are all <= lastIndex.
//
// The package has no dependencies beyond the standard library; callers
// decide what record payloads mean (internal/beacon stores JSONL-encoded
// events, keeping qtag-replay compatibility).
package wal

import (
	"errors"
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// FsyncPolicy selects when appends are forced to stable storage.
type FsyncPolicy int

const (
	// FsyncOnBatch syncs at the end of every AppendBatch (and on
	// rotation and Close). Single Appends are not synced — the default
	// trade: one fsync per queue flush.
	FsyncOnBatch FsyncPolicy = iota
	// FsyncAlways syncs after every Append and AppendBatch.
	FsyncAlways
	// FsyncInterval syncs when FsyncEvery has elapsed since the last
	// sync, checked after each append.
	FsyncInterval
)

// String implements fmt.Stringer.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	default:
		return "batch"
	}
}

// ParseFsyncPolicy maps a flag value onto a policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "batch", "on-batch", "onbatch":
		return FsyncOnBatch, nil
	}
	return FsyncOnBatch, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or batch)", s)
}

// Options tunes a WAL. Dir is required; everything else has defaults.
type Options struct {
	// Dir is the WAL directory; created when absent.
	Dir string
	// SegmentBytes rotates the active segment when appending would push
	// it past this size. Default 64 MiB. A record larger than the limit
	// still lands in one (oversized) segment.
	SegmentBytes int64
	// SegmentAge rotates the active segment when it has been open longer
	// than this (0 disables age rotation).
	SegmentAge time.Duration
	// Fsync selects the durability policy; FsyncOnBatch by default.
	Fsync FsyncPolicy
	// FsyncEvery is the FsyncInterval period. Default 1s.
	FsyncEvery time.Duration
	// MaxRecordBytes bounds one record payload. Default 16 MiB.
	MaxRecordBytes int
	// FS is the filesystem seam; the real filesystem when nil.
	FS FS
	// Now is the clock; time.Now when nil.
	Now func() time.Time

	// GroupCommit routes concurrent Append/AppendBatch callers through a
	// single committer goroutine that writes one coalesced buffer and
	// performs one fsync per group. Per-caller durability is unchanged —
	// an Append under FsyncAlways still returns only after the fsync
	// covering its record — but the fsync cost is amortized across every
	// caller that arrived while the previous group was committing.
	GroupCommit bool
	// GroupCommitMaxBatch caps the records coalesced into one group.
	// Default 256.
	GroupCommitMaxBatch int
	// GroupCommitMaxWait, when > 0, holds a group below MaxBatch open for
	// this long so more callers can join before the write. Default 0: no
	// added latency, batching comes only from fsync backpressure.
	GroupCommitMaxWait time.Duration
	// CommitObserver, when set, is called after every group commit with
	// the number of records in the group and the wall time from the first
	// caller's enqueue to commit completion (per Now). It must be safe
	// for use from the committer goroutine.
	CommitObserver func(records int, latency time.Duration)
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.FsyncEvery <= 0 {
		o.FsyncEvery = time.Second
	}
	if o.MaxRecordBytes <= 0 {
		o.MaxRecordBytes = DefaultMaxRecordBytes
	}
	if o.GroupCommitMaxBatch <= 0 {
		o.GroupCommitMaxBatch = 256
	}
	if o.FS == nil {
		o.FS = OS
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// sealedSeg is one closed segment: its file and the record index range
// it covers.
type sealedSeg struct {
	path  string
	first uint64
	last  uint64
}

// WAL is a segmented, checksummed append-only journal. It is safe for
// concurrent use.
type WAL struct {
	opts Options
	fs   FS

	mu          sync.Mutex
	sealed      []sealedSeg
	active      File
	activePath  string
	activeStart uint64 // first record index of the active segment
	activeSize  int64
	activeBirth time.Time
	nextIndex   uint64 // index the next appended record will get
	pending     int    // records appended since the last successful sync
	lastSync    time.Time
	torn        bool // a failed partial write could not be rolled back
	closed      bool

	// gc is the group committer; nil unless Options.GroupCommit. It sits
	// in front of mu: group-mode appends enqueue on gc and the committer
	// goroutine is the only append path that takes mu.
	gc *groupCommitter

	appended     atomic.Int64
	syncs        atomic.Int64
	rotations    atomic.Int64
	appendErrs   atomic.Int64
	groupCommits atomic.Int64
	diskFull     atomic.Bool
}

func segmentName(firstIndex uint64) string { return fmt.Sprintf("wal-%016x.seg", firstIndex) }

// parseSegmentName extracts the first record index from a segment file
// name, reporting whether the name is a segment at all.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg")
	if len(hex) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hex, 16, 64)
	return v, err == nil
}

// listSegments returns the segment files in dir ordered by first record
// index. A missing directory yields an empty list.
func listSegments(fsys FS, dir string) ([]sealedSeg, error) {
	names, err := fsys.List(dir)
	if err != nil {
		if errors.Is(err, syscall.ENOENT) {
			return nil, nil
		}
		return nil, err
	}
	segs := make([]sealedSeg, 0, len(names))
	for _, name := range names {
		if first, ok := parseSegmentName(name); ok {
			segs = append(segs, sealedSeg{path: filepath.Join(dir, name), first: first})
		}
	}
	// names are sorted and the index is fixed-width hex, so segs is
	// already in index order.
	return segs, nil
}

// Open recovers the WAL in dir and returns it positioned to append.
// Every valid record is passed to replay in index order (replay may be
// nil to validate without consuming); a replay error aborts Open.
// Recovery truncates a torn tail on the final segment and quarantines
// corrupted mid-stream records into <segment>.quarantine sidecars; the
// exact accounting comes back in RecoverResult.
func Open(opts Options, replay func(index uint64, payload []byte) error) (*WAL, RecoverResult, error) {
	opts = opts.withDefaults()
	var res RecoverResult
	if opts.Dir == "" {
		return nil, res, errors.New("wal: Options.Dir is required")
	}
	start := opts.Now()
	if err := opts.FS.MkdirAll(opts.Dir); err != nil {
		return nil, res, fmt.Errorf("wal: create dir: %w", err)
	}
	w := &WAL{opts: opts, fs: opts.FS, nextIndex: 1, lastSync: start}
	if err := w.recover(replay, &res); err != nil {
		return nil, res, err
	}
	res.Duration = opts.Now().Sub(start)
	if opts.GroupCommit {
		w.gc = newGroupCommitter(w)
	}
	return w, res, nil
}

// append frames the payloads and writes them as one Write call,
// applying rotation and the fsync policy. batch reports whether the
// call came from AppendBatch (for FsyncOnBatch).
func (w *WAL) append(payloads [][]byte, batch bool) error {
	frame := make([]byte, 0, 64)
	for _, p := range payloads {
		if len(p) > w.opts.MaxRecordBytes {
			return fmt.Errorf("%w: %d > %d", ErrRecordTooLarge, len(p), w.opts.MaxRecordBytes)
		}
		frame = EncodeRecord(frame, p)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if w.torn {
		// A previous partial write could not be rolled back; the active
		// segment's tail is garbage. Seal it (recovery will truncate the
		// tear) and continue on a fresh segment.
		if err := w.rotateLocked(); err != nil {
			return err
		}
		w.torn = false
	}
	if w.shouldRotateLocked(int64(len(frame))) {
		if err := w.rotateLocked(); err != nil {
			return err
		}
	}
	n, err := w.active.Write(frame)
	if err != nil {
		w.appendErrs.Add(1)
		if IsDiskFull(err) {
			w.diskFull.Store(true)
		}
		if n > 0 {
			// Partial write: roll the file back to the last record
			// boundary so the next append does not interleave with a
			// torn frame. If even that fails, poison the segment.
			if terr := w.active.Truncate(w.activeSize); terr != nil {
				w.torn = true
			}
		}
		return fmt.Errorf("wal: append: %w", err)
	}
	w.diskFull.Store(false)
	w.activeSize += int64(n)
	w.nextIndex += uint64(len(payloads))
	w.pending += len(payloads)
	w.appended.Add(int64(len(payloads)))
	switch w.opts.Fsync {
	case FsyncAlways:
		return w.syncLocked()
	case FsyncOnBatch:
		if batch {
			return w.syncLocked()
		}
	case FsyncInterval:
		if w.opts.Now().Sub(w.lastSync) >= w.opts.FsyncEvery {
			return w.syncLocked()
		}
	}
	return nil
}

// Append writes one record. Durability follows the fsync policy. With
// group commit enabled, concurrent Appends coalesce into one write and
// one fsync; each call still returns only after the fsync covering its
// record (policy permitting).
func (w *WAL) Append(payload []byte) error {
	if w.gc != nil {
		if len(payload) > w.opts.MaxRecordBytes {
			return fmt.Errorf("%w: %d > %d", ErrRecordTooLarge, len(payload), w.opts.MaxRecordBytes)
		}
		return w.gc.submit([][]byte{payload}, false)
	}
	return w.append([][]byte{payload}, false)
}

// AppendBatch writes the payloads as consecutive records in one write
// call; under FsyncOnBatch the batch is synced before returning.
func (w *WAL) AppendBatch(payloads [][]byte) error {
	if len(payloads) == 0 {
		return nil
	}
	if w.gc != nil {
		// Size-check here, not in the committer: an oversized record must
		// fail its own caller, never an innocent group member.
		for _, p := range payloads {
			if len(p) > w.opts.MaxRecordBytes {
				return fmt.Errorf("%w: %d > %d", ErrRecordTooLarge, len(p), w.opts.MaxRecordBytes)
			}
		}
		return w.gc.submit(payloads, true)
	}
	return w.append(payloads, true)
}

// shouldRotateLocked reports whether the active segment must be sealed
// before writing incoming more bytes.
func (w *WAL) shouldRotateLocked(incoming int64) bool {
	if w.activeSize <= SegmentHeaderSize {
		return false // never rotate an empty segment
	}
	if w.activeSize+incoming > w.opts.SegmentBytes {
		return true
	}
	return w.opts.SegmentAge > 0 && w.opts.Now().Sub(w.activeBirth) >= w.opts.SegmentAge
}

// rotateLocked seals the active segment and opens a fresh one. An empty
// active segment is left in place. The replacement is created (and its
// directory entry fsynced) BEFORE the old segment is closed: if creation
// fails — ENOSPC at rotation is the classic case — the old file stays
// active and the next append simply retries the rotation, instead of
// wedging every future append against a closed file.
func (w *WAL) rotateLocked() error {
	if w.activeSize <= SegmentHeaderSize {
		return nil
	}
	if err := w.syncLocked(); err != nil {
		return err
	}
	old, oldPath, oldStart, oldLast := w.active, w.activePath, w.activeStart, w.nextIndex-1
	if err := w.createActiveLocked(); err != nil {
		return err // old segment untouched, still active
	}
	w.sealed = append(w.sealed, sealedSeg{path: oldPath, first: oldStart, last: oldLast})
	w.rotations.Add(1)
	if err := old.Close(); err != nil {
		// The data is already synced; a close failure costs a descriptor,
		// not durability. The new segment stays active.
		return fmt.Errorf("wal: seal segment: %w", err)
	}
	return nil
}

// createActiveLocked opens a brand-new active segment whose first record
// index is nextIndex. The header is written and synced — and the
// directory entry fsynced — immediately, so a crash right after rotation
// leaves a well-formed, durably linked empty segment. On failure w's
// active-segment fields are untouched.
func (w *WAL) createActiveLocked() error {
	path := filepath.Join(w.opts.Dir, segmentName(w.nextIndex))
	f, err := w.fs.Create(path)
	if err != nil {
		if IsDiskFull(err) {
			w.diskFull.Store(true)
		}
		return fmt.Errorf("wal: create segment: %w", err)
	}
	if _, err := f.Write(encodeSegmentHeader(w.nextIndex)); err != nil {
		f.Close()
		if IsDiskFull(err) {
			w.diskFull.Store(true)
		}
		return fmt.Errorf("wal: write segment header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: sync segment header: %w", err)
	}
	if err := w.fs.SyncDir(w.opts.Dir); err != nil {
		f.Close()
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	w.active = f
	w.activePath = path
	w.activeStart = w.nextIndex
	w.activeSize = SegmentHeaderSize
	w.activeBirth = w.opts.Now()
	return nil
}

func (w *WAL) syncLocked() error {
	if err := w.active.Sync(); err != nil {
		if IsDiskFull(err) {
			w.diskFull.Store(true)
		}
		return fmt.Errorf("wal: sync: %w", err)
	}
	w.pending = 0
	w.lastSync = w.opts.Now()
	w.syncs.Add(1)
	return nil
}

// SetFsyncPolicy switches the durability policy at runtime. The
// admission layer's disk watermark uses this to degrade fsync=always to
// fsync=batch when free space runs low (fewer barriers, less write
// amplification) and to restore the original policy once space is
// reclaimed. Safe under concurrent appends: append reads the policy
// under the same mutex.
func (w *WAL) SetFsyncPolicy(p FsyncPolicy) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.opts.Fsync = p
}

// FsyncPolicyNow reports the currently active durability policy.
func (w *WAL) FsyncPolicyNow() FsyncPolicy {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.opts.Fsync
}

// Sync forces everything appended so far to stable storage.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	return w.syncLocked()
}

// SyncIndex forces everything appended so far to stable storage and
// returns the index of the last durable record (0 when the WAL holds
// none). Snapshot coverage must be captured through this, not
// LastIndex: under the batch/interval fsync policies LastIndex can run
// ahead of the durable tail, and a crash would leave a snapshot
// claiming to cover records the WAL lost.
func (w *WAL) SyncIndex() (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	if err := w.syncLocked(); err != nil {
		return 0, err
	}
	return w.nextIndex - 1, nil
}

// SkipTo advances the WAL so the next appended record gets index at
// least next (no-op when it already would). Recovery can leave
// nextIndex behind a published snapshot's coverage — a truncated torn
// tail or a quarantined final segment rewinds it — and appends would
// then reuse indices the snapshot already covers, which the replay
// skip would silently drop on the NEXT recovery. The jump is made
// durable by sealing the active segment and starting a fresh one whose
// header declares the new first index.
func (w *WAL) SkipTo(next uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if next <= w.nextIndex {
		return nil
	}
	hasRecords := w.activeSize > SegmentHeaderSize
	if hasRecords {
		if err := w.syncLocked(); err != nil {
			return err
		}
	}
	old, oldPath, oldStart, oldLast := w.active, w.activePath, w.activeStart, w.nextIndex-1
	prev := w.nextIndex
	w.nextIndex = next
	if err := w.createActiveLocked(); err != nil {
		w.nextIndex = prev
		return err
	}
	if hasRecords {
		w.sealed = append(w.sealed, sealedSeg{path: oldPath, first: oldStart, last: oldLast})
		w.rotations.Add(1)
		if err := old.Close(); err != nil {
			return fmt.Errorf("wal: seal segment: %w", err)
		}
		return nil
	}
	// The outgoing active segment held no records: retire the empty
	// file. Best effort — a leftover empty segment is recovered as an
	// empty sealed segment and compacted away later.
	old.Close()
	w.fs.Remove(oldPath)
	return nil
}

// Rotate seals the active segment and starts a new one (no-op when the
// active segment holds no records).
func (w *WAL) Rotate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	return w.rotateLocked()
}

// Close syncs and closes the active segment. Close is idempotent. With
// group commit enabled the committer is drained first — queued appends
// are committed, not dropped — before the segment is sealed.
func (w *WAL) Close() error {
	if w.gc != nil {
		// Outside w.mu: the committer's final groups need the lock.
		w.gc.stop()
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	serr := w.syncLocked()
	cerr := w.active.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// Compact removes every sealed segment whose records are all covered by
// a snapshot at upTo (record indexes <= upTo). The active segment is
// never removed. It returns the number of segments retired.
func (w *WAL) Compact(upTo uint64) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	removed := 0
	var firstErr error
	keep := w.sealed[:0]
	for _, s := range w.sealed {
		if s.last <= upTo {
			if err := w.fs.Remove(s.path); err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("wal: compact: %w", err)
				}
				keep = append(keep, s)
				continue
			}
			removed++
			continue
		}
		keep = append(keep, s)
	}
	w.sealed = keep
	return removed, firstErr
}

// Dir returns the WAL directory.
func (w *WAL) Dir() string { return w.opts.Dir }

// NextIndex returns the index the next appended record will get.
func (w *WAL) NextIndex() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextIndex
}

// LastIndex returns the index of the most recently appended record (0
// when the WAL holds none).
func (w *WAL) LastIndex() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextIndex - 1
}

// Segments returns the number of live segment files (sealed + active).
func (w *WAL) Segments() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.sealed) + 1
}

// ActiveSegmentBytes returns the size of the active segment file.
func (w *WAL) ActiveSegmentBytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.activeSize
}

// Pending returns the number of records appended since the last
// successful sync — the window a crash can lose.
func (w *WAL) Pending() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.pending
}

// Appended returns the number of records appended since Open.
func (w *WAL) Appended() int64 { return w.appended.Load() }

// GroupCommitEnabled reports whether appends go through the group
// committer.
func (w *WAL) GroupCommitEnabled() bool { return w.gc != nil }

// GroupCommits returns the number of successful group commits since
// Open (0 when group commit is disabled). Appended()/GroupCommits() is
// the amortization ratio.
func (w *WAL) GroupCommits() int64 { return w.groupCommits.Load() }

// GroupQueueDepth returns the number of callers waiting on the group
// committer (0 when group commit is disabled).
func (w *WAL) GroupQueueDepth() int {
	if w.gc == nil {
		return 0
	}
	return w.gc.depth()
}

// Syncs returns the number of successful fsyncs since Open.
func (w *WAL) Syncs() int64 { return w.syncs.Load() }

// Rotations returns the number of segment rotations since Open.
func (w *WAL) Rotations() int64 { return w.rotations.Load() }

// AppendErrors returns the number of failed appends since Open.
func (w *WAL) AppendErrors() int64 { return w.appendErrs.Load() }

// DiskFull reports whether the most recent append or sync failed with
// an out-of-space error; it resets on the next successful append.
func (w *WAL) DiskFull() bool { return w.diskFull.Load() }

// IsDiskFull reports whether err is an out-of-space condition.
func IsDiskFull(err error) bool {
	return errors.Is(err, syscall.ENOSPC) || errors.Is(err, syscall.EDQUOT)
}

package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"
)

// Snapshot framing: magic (8) | lastIndex (8) | createdAt unix-nanos (8)
// | payload length (8) | CRC32C(payload) (4) | payload.
const (
	snapMagic      = "QWALSNP1"
	snapHeaderSize = 8 + 8 + 8 + 8 + 4
)

// ErrBadSnapshot reports a snapshot file that fails structural or
// checksum validation.
var ErrBadSnapshot = errors.New("wal: bad snapshot")

// Snapshot is one loaded snapshot file.
type Snapshot struct {
	// LastIndex is the highest WAL record index the snapshot covers:
	// every record with index <= LastIndex is reflected in Payload.
	LastIndex uint64
	// CreatedAt is the snapshot's creation time (for age metrics).
	CreatedAt time.Time
	// Payload is the caller-defined serialized state.
	Payload []byte
	// Path is the file the snapshot was loaded from.
	Path string
}

func snapshotName(lastIndex uint64) string { return fmt.Sprintf("snap-%016x.snap", lastIndex) }

func parseSnapshotName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap")
	if len(hex) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hex, 16, 64)
	return v, err == nil
}

// WriteSnapshot atomically persists a snapshot covering WAL records
// [1, lastIndex]: the file is assembled under a temporary name, synced,
// renamed into place, and only then are older snapshots deleted — a
// crash at any point leaves at least one valid snapshot behind.
func WriteSnapshot(fsys FS, dir string, lastIndex uint64, at time.Time, payload []byte) (string, error) {
	if fsys == nil {
		fsys = OS
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return "", fmt.Errorf("wal: snapshot dir: %w", err)
	}
	final := filepath.Join(dir, snapshotName(lastIndex))
	tmp := final + ".tmp"
	hdr := make([]byte, snapHeaderSize)
	copy(hdr, snapMagic)
	binary.LittleEndian.PutUint64(hdr[8:16], lastIndex)
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(at.UnixNano()))
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[32:36], Checksum(payload))
	f, err := fsys.Create(tmp)
	if err != nil {
		return "", fmt.Errorf("wal: create snapshot: %w", err)
	}
	write := func() error {
		if _, err := f.Write(hdr); err != nil {
			return err
		}
		if _, err := f.Write(payload); err != nil {
			return err
		}
		return f.Sync()
	}
	if err := write(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return "", fmt.Errorf("wal: write snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return "", fmt.Errorf("wal: close snapshot: %w", err)
	}
	if err := fsys.Rename(tmp, final); err != nil {
		fsys.Remove(tmp)
		return "", fmt.Errorf("wal: publish snapshot: %w", err)
	}
	// The rename is only durable once the directory entry is fsynced;
	// until then a power loss could roll the directory back and make
	// the snapshot vanish. Callers (Compact) must not delete the
	// segments it covers before this point.
	if err := fsys.SyncDir(dir); err != nil {
		fsys.Remove(final) // publish failed: don't leave a maybe-durable snapshot
		return "", fmt.Errorf("wal: sync snapshot dir: %w", err)
	}
	// The new snapshot is durable; older ones are now redundant.
	names, err := fsys.List(dir)
	if err != nil {
		return final, nil // best effort — stale snapshots are harmless
	}
	for _, name := range names {
		if idx, ok := parseSnapshotName(name); ok && idx < lastIndex {
			fsys.Remove(filepath.Join(dir, name))
		}
	}
	return final, nil
}

// LoadSnapshot returns the newest valid snapshot in dir (nil when none
// exists) plus the number of corrupt snapshot files skipped on the way.
// A snapshot failing its checksum is skipped, not fatal: recovery falls
// back to an older snapshot or a full WAL replay.
func LoadSnapshot(fsys FS, dir string) (*Snapshot, int, error) {
	if fsys == nil {
		fsys = OS
	}
	names, err := fsys.List(dir)
	if err != nil {
		if errors.Is(err, syscall.ENOENT) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("wal: list snapshots: %w", err)
	}
	// names are sorted ascending and the index is fixed-width hex, so
	// walk backwards for newest-first.
	corrupt := 0
	for i := len(names) - 1; i >= 0; i-- {
		if _, ok := parseSnapshotName(names[i]); !ok {
			continue
		}
		path := filepath.Join(dir, names[i])
		data, err := fsys.ReadFile(path)
		if err != nil {
			return nil, corrupt, fmt.Errorf("wal: read snapshot: %w", err)
		}
		snap, err := decodeSnapshot(data)
		if err != nil {
			corrupt++
			continue
		}
		snap.Path = path
		return snap, corrupt, nil
	}
	return nil, corrupt, nil
}

func decodeSnapshot(b []byte) (*Snapshot, error) {
	if len(b) < snapHeaderSize || string(b[:8]) != snapMagic {
		return nil, fmt.Errorf("%w: header", ErrBadSnapshot)
	}
	length := binary.LittleEndian.Uint64(b[24:32])
	if uint64(len(b)-snapHeaderSize) != length {
		return nil, fmt.Errorf("%w: payload length %d, have %d bytes", ErrBadSnapshot, length, len(b)-snapHeaderSize)
	}
	payload := b[snapHeaderSize:]
	if Checksum(payload) != binary.LittleEndian.Uint32(b[32:36]) {
		return nil, fmt.Errorf("%w: checksum", ErrBadSnapshot)
	}
	return &Snapshot{
		LastIndex: binary.LittleEndian.Uint64(b[8:16]),
		CreatedAt: time.Unix(0, int64(binary.LittleEndian.Uint64(b[16:24]))),
		Payload:   payload,
	}, nil
}

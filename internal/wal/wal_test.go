package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func payloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf(`{"rec":%d,"pad":"xxxxxxxxxxxxxxxx"}`, i))
	}
	return out
}

// collectReplay returns a replay callback appending (index, payload)
// pairs into the given slices.
func collectReplay(idx *[]uint64, recs *[][]byte) func(uint64, []byte) error {
	return func(i uint64, p []byte) error {
		*idx = append(*idx, i)
		*recs = append(*recs, append([]byte(nil), p...))
		return nil
	}
}

func TestRecordCodecRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("ab"), 1000)} {
		frame := EncodeRecord(nil, payload)
		got, n, err := DecodeRecord(frame, 0)
		if err != nil || n != len(frame) {
			t.Fatalf("decode: n=%d err=%v", n, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("payload mismatch: %q != %q", got, payload)
		}
	}
}

func TestRecordCodecErrors(t *testing.T) {
	frame := EncodeRecord(nil, []byte("hello world"))
	if _, _, err := DecodeRecord(frame[:5], 0); !errors.Is(err, ErrShortRecord) {
		t.Fatalf("short header: %v", err)
	}
	if _, _, err := DecodeRecord(frame[:len(frame)-1], 0); !errors.Is(err, ErrShortRecord) {
		t.Fatalf("short payload: %v", err)
	}
	corrupt := append([]byte(nil), frame...)
	corrupt[RecordHeaderSize] ^= 0x40
	_, n, err := DecodeRecord(corrupt, 0)
	if !errors.Is(err, ErrChecksum) || n != len(frame) {
		t.Fatalf("corrupt payload: n=%d err=%v", n, err)
	}
	big := EncodeRecord(nil, bytes.Repeat([]byte("x"), 100))
	if _, _, err := DecodeRecord(big, 10); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("oversized: %v", err)
	}
}

func TestOpenAppendReopenReplay(t *testing.T) {
	dir := t.TempDir()
	w, res, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Segments != 0 || res.Records != 0 {
		t.Fatalf("fresh dir recovery: %+v", res)
	}
	ps := payloads(10)
	for _, p := range ps[:5] {
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.AppendBatch(ps[5:]); err != nil {
		t.Fatal(err)
	}
	if got := w.LastIndex(); got != 10 {
		t.Fatalf("LastIndex = %d, want 10", got)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal("second Close must be a no-op:", err)
	}
	if err := w.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}

	var idx []uint64
	var recs [][]byte
	w2, res2, err := Open(Options{Dir: dir}, collectReplay(&idx, &recs))
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if res2.Records != 10 || res2.Segments != 1 || res2.Quarantined != 0 || res2.TornTail {
		t.Fatalf("recovery: %+v", res2)
	}
	for i, p := range recs {
		if idx[i] != uint64(i+1) || !bytes.Equal(p, ps[i]) {
			t.Fatalf("record %d: idx=%d payload=%q", i, idx[i], p)
		}
	}
	if w2.NextIndex() != 11 {
		t.Fatalf("NextIndex = %d, want 11", w2.NextIndex())
	}
}

func TestRotationBySize(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(Options{Dir: dir, SegmentBytes: 200}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ps := payloads(20)
	for _, p := range ps {
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if w.Segments() < 3 {
		t.Fatalf("expected several segments, got %d", w.Segments())
	}
	if w.Rotations() != int64(w.Segments()-1) {
		t.Fatalf("rotations %d vs segments %d", w.Rotations(), w.Segments())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var idx []uint64
	var recs [][]byte
	w2, res, err := Open(Options{Dir: dir, SegmentBytes: 200}, collectReplay(&idx, &recs))
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if res.Records != 20 || res.Segments < 3 {
		t.Fatalf("recovery across segments: %+v", res)
	}
	for i := range recs {
		if !bytes.Equal(recs[i], ps[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestRotationByAge(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	w, _, err := Open(Options{Dir: dir, SegmentAge: time.Minute, Now: clock}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append([]byte("a")); err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Minute)
	if err := w.Append([]byte("b")); err != nil {
		t.Fatal(err)
	}
	if w.Segments() != 2 {
		t.Fatalf("age rotation: %d segments", w.Segments())
	}
}

func TestFsyncPolicies(t *testing.T) {
	t.Run("always", func(t *testing.T) {
		w, _, err := Open(Options{Dir: t.TempDir(), Fsync: FsyncAlways}, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		w.Append([]byte("a"))
		if w.Pending() != 0 {
			t.Fatalf("FsyncAlways left %d pending", w.Pending())
		}
	})
	t.Run("batch", func(t *testing.T) {
		w, _, err := Open(Options{Dir: t.TempDir(), Fsync: FsyncOnBatch}, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		w.Append([]byte("a"))
		if w.Pending() != 1 {
			t.Fatalf("single append under FsyncOnBatch should stay pending, got %d", w.Pending())
		}
		w.AppendBatch([][]byte{[]byte("b"), []byte("c")})
		if w.Pending() != 0 {
			t.Fatalf("AppendBatch under FsyncOnBatch left %d pending", w.Pending())
		}
	})
	t.Run("interval", func(t *testing.T) {
		now := time.Unix(1000, 0)
		clock := func() time.Time { return now }
		w, _, err := Open(Options{Dir: t.TempDir(), Fsync: FsyncInterval, FsyncEvery: time.Second, Now: clock}, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		w.Append([]byte("a"))
		if w.Pending() != 1 {
			t.Fatalf("interval not elapsed, want pending 1, got %d", w.Pending())
		}
		now = now.Add(2 * time.Second)
		w.Append([]byte("b"))
		if w.Pending() != 0 {
			t.Fatalf("interval elapsed, want pending 0, got %d", w.Pending())
		}
	})
}

func TestParseFsyncPolicy(t *testing.T) {
	for in, want := range map[string]FsyncPolicy{
		"always": FsyncAlways, "Interval": FsyncInterval, "batch": FsyncOnBatch, "on-batch": FsyncOnBatch,
	} {
		got, err := ParseFsyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFsyncPolicy("bogus"); err == nil {
		t.Fatal("bogus policy accepted")
	}
	if FsyncAlways.String() != "always" || FsyncOnBatch.String() != "batch" || FsyncInterval.String() != "interval" {
		t.Fatal("FsyncPolicy.String mismatch")
	}
}

func TestCompactRetiresCoveredSegments(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(Options{Dir: dir, SegmentBytes: 150}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ps := payloads(12)
	for _, p := range ps {
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	total := w.Segments()
	if total < 4 {
		t.Fatalf("want >= 4 segments, got %d", total)
	}
	// Compacting to 0 removes nothing.
	if n, err := w.Compact(0); n != 0 || err != nil {
		t.Fatalf("Compact(0) = %d, %v", n, err)
	}
	// Compacting the full range removes all sealed segments but never
	// the active one.
	n, err := w.Compact(w.LastIndex())
	if err != nil {
		t.Fatal(err)
	}
	if n != total-1 || w.Segments() != 1 {
		t.Fatalf("Compact removed %d, %d segments remain", n, w.Segments())
	}
	if err := w.Append([]byte("after-compact")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Recovery over a compacted directory starts from the surviving
	// segment's declared first index.
	var idx []uint64
	var recs [][]byte
	_, res, err := Open(Options{Dir: dir}, collectReplay(&idx, &recs))
	if err != nil {
		t.Fatal(err)
	}
	if res.Records == 0 || res.Records > len(ps)+1 {
		t.Fatalf("recovery after compact: %+v", res)
	}
	if idx[len(idx)-1] != 13 || !bytes.Equal(recs[len(recs)-1], []byte("after-compact")) {
		t.Fatalf("last record: idx=%d payload=%q", idx[len(idx)-1], recs[len(recs)-1])
	}
}

func TestRejectOversizedRecord(t *testing.T) {
	w, _, err := Open(Options{Dir: t.TempDir(), MaxRecordBytes: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(bytes.Repeat([]byte("x"), 9)); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("oversized append: %v", err)
	}
	if err := w.Append([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	if w.LastIndex() != 1 {
		t.Fatalf("rejected record consumed an index: last=%d", w.LastIndex())
	}
}

// segPath returns the path of the idx-th segment file in dir (sorted).
func segPath(t *testing.T, dir string, idx int) string {
	t.Helper()
	segs, err := listSegments(OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if idx >= len(segs) {
		t.Fatalf("want segment %d, have %d", idx, len(segs))
	}
	return segs[idx].path
}

func TestRecoveryTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ps := payloads(5)
	for _, p := range ps {
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: chop the last 10 bytes, splitting the final record.
	path := segPath(t, dir, 0)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}

	var idx []uint64
	var recs [][]byte
	w2, res, err := Open(Options{Dir: dir}, collectReplay(&idx, &recs))
	if err != nil {
		t.Fatal(err)
	}
	if !res.TornTail || res.Records != 4 || res.Quarantined != 0 {
		t.Fatalf("torn tail recovery: %+v", res)
	}
	if res.TruncatedBytes == 0 {
		t.Fatal("no truncation accounted")
	}
	// The torn record's index is reused: appending continues where the
	// valid prefix ended.
	if w2.NextIndex() != 5 {
		t.Fatalf("NextIndex = %d, want 5", w2.NextIndex())
	}
	if err := w2.Append([]byte("recovered")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	var recs2 [][]byte
	var idx2 []uint64
	_, res3, err := Open(Options{Dir: dir}, collectReplay(&idx2, &recs2))
	if err != nil {
		t.Fatal(err)
	}
	if res3.TornTail || res3.Records != 5 {
		t.Fatalf("post-repair recovery: %+v", res3)
	}
	if !bytes.Equal(recs2[4], []byte("recovered")) {
		t.Fatalf("appended-after-tear record = %q", recs2[4])
	}
}

func TestRecoveryQuarantinesCorruptMidStreamRecord(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ps := payloads(6)
	for _, p := range ps {
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one bit inside the payload of record 3 (records are equal
	// sized here, so compute its offset directly).
	frame := len(EncodeRecord(nil, ps[0]))
	path := segPath(t, dir, 0)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := SegmentHeaderSize + 2*frame + RecordHeaderSize + 3
	data[off] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var idx []uint64
	var recs [][]byte
	w2, res, err := Open(Options{Dir: dir}, collectReplay(&idx, &recs))
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if res.Records != 5 || res.Quarantined != 1 || res.TornTail {
		t.Fatalf("mid-stream corruption recovery: %+v", res)
	}
	// Records after the corrupt one are still replayed, with their
	// original indexes (the corrupt record keeps its index 3).
	wantIdx := []uint64{1, 2, 4, 5, 6}
	for i, want := range wantIdx {
		if idx[i] != want {
			t.Fatalf("replayed indexes %v, want %v", idx, wantIdx)
		}
	}
	// The sidecar holds exactly the corrupted frame, deterministically.
	side, err := os.ReadFile(path + ".quarantine")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(side, data[SegmentHeaderSize+2*frame:SegmentHeaderSize+3*frame]) {
		t.Fatal("quarantine sidecar != corrupted frame bytes")
	}
	if res.QuarantinedBytes != int64(frame) {
		t.Fatalf("QuarantinedBytes = %d, want %d", res.QuarantinedBytes, frame)
	}

	// A second recovery of the same directory is byte-identical: same
	// stats, same sidecar.
	w3, res2, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	if res2.Records != res.Records+0 || res2.Quarantined != 1 {
		t.Fatalf("second recovery drifted: %+v vs %+v", res2, res)
	}
	side2, err := os.ReadFile(path + ".quarantine")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(side, side2) {
		t.Fatal("quarantine sidecar not deterministic across recoveries")
	}
}

func TestRecoveryQuarantinesBadHeaderSegment(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(Options{Dir: dir, SegmentBytes: 150}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ps := payloads(8)
	for _, p := range ps {
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if w.Segments() < 3 {
		t.Fatalf("want >= 3 segments, got %d", w.Segments())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Destroy the header of the middle segment.
	path := segPath(t, dir, 1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	copy(data, "GARBAGE!")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, res, err := Open(Options{Dir: dir, SegmentBytes: 150}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if res.Quarantined != 1 || res.QuarantinedBytes != int64(len(data)) {
		t.Fatalf("bad header recovery: %+v", res)
	}
	if _, err := os.Stat(path + ".quarantine"); err != nil {
		t.Fatal("quarantined segment not renamed:", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("bad segment still present under its original name")
	}
}

func TestRecoveryDropsTornSegmentStub(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash between segment Create and the header write: a
	// too-short stub with a name sorting after the real segment.
	stub := filepath.Join(dir, segmentName(99))
	if err := os.WriteFile(stub, []byte("QWAL"), 0o644); err != nil {
		t.Fatal(err)
	}
	w2, res, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if res.Records != 1 || !res.TornTail || res.TruncatedBytes != 4 {
		t.Fatalf("stub recovery: %+v", res)
	}
	if _, err := os.Stat(stub); !os.IsNotExist(err) {
		t.Fatal("torn stub still present")
	}
}

func TestScanIsReadOnlyAndMatchesRecovery(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(Options{Dir: dir, SegmentBytes: 150}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ps := payloads(8)
	for _, p := range ps {
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the final segment.
	path := segPath(t, dir, 2)
	data, _ := os.ReadFile(path)
	os.WriteFile(path, data[:len(data)-5], 0o644)

	before, _ := os.ReadDir(dir)
	var recs [][]byte
	var idx []uint64
	res, err := Scan(nil, dir, collectReplay(&idx, &recs))
	if err != nil {
		t.Fatal(err)
	}
	if !res.TornTail || res.TruncatedBytes == 0 {
		t.Fatalf("scan of torn dir: %+v", res)
	}
	after, _ := os.ReadDir(dir)
	if len(before) != len(after) {
		t.Fatal("Scan mutated the directory")
	}
	got, _ := os.ReadFile(path)
	if !bytes.Equal(got, data[:len(data)-5]) {
		t.Fatal("Scan truncated the torn segment")
	}
	// Scan of a missing directory is empty, not an error.
	if res, err := Scan(nil, filepath.Join(dir, "missing"), nil); err != nil || res.Segments != 0 {
		t.Fatalf("scan of missing dir: %+v, %v", res, err)
	}
}

func TestSnapshotWriteLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	at := time.Unix(1234, 5678)
	payload := []byte("state-of-the-world")
	path, err := WriteSnapshot(nil, dir, 42, at, payload)
	if err != nil {
		t.Fatal(err)
	}
	snap, corrupt, err := LoadSnapshot(nil, dir)
	if err != nil || corrupt != 0 {
		t.Fatalf("load: corrupt=%d err=%v", corrupt, err)
	}
	if snap == nil || snap.LastIndex != 42 || !snap.CreatedAt.Equal(at) || !bytes.Equal(snap.Payload, payload) || snap.Path != path {
		t.Fatalf("snapshot mismatch: %+v", snap)
	}
	// A newer snapshot supersedes and retires the old one.
	if _, err := WriteSnapshot(nil, dir, 100, at.Add(time.Hour), []byte("newer")); err != nil {
		t.Fatal(err)
	}
	snap2, _, err := LoadSnapshot(nil, dir)
	if err != nil || snap2.LastIndex != 100 {
		t.Fatalf("newest snapshot: %+v, %v", snap2, err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("older snapshot not retired")
	}
}

func TestLoadSnapshotSkipsCorrupt(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteSnapshot(nil, dir, 10, time.Unix(1, 0), []byte("old-but-good")); err != nil {
		t.Fatal(err)
	}
	// Forge a newer, corrupt snapshot.
	newer := filepath.Join(dir, snapshotName(20))
	good, _ := os.ReadFile(filepath.Join(dir, snapshotName(10)))
	bad := append([]byte(nil), good...)
	bad[len(bad)-1] ^= 0xff
	if err := os.WriteFile(newer, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	snap, corrupt, err := LoadSnapshot(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if corrupt != 1 || snap == nil || snap.LastIndex != 10 {
		t.Fatalf("fallback: corrupt=%d snap=%+v", corrupt, snap)
	}
	// Nothing at all → nil without error.
	snap, corrupt, err = LoadSnapshot(nil, t.TempDir())
	if err != nil || snap != nil || corrupt != 0 {
		t.Fatalf("empty dir: %+v %d %v", snap, corrupt, err)
	}
	snap, corrupt, err = LoadSnapshot(nil, filepath.Join(dir, "missing"))
	if err != nil || snap != nil || corrupt != 0 {
		t.Fatalf("missing dir: %+v %d %v", snap, corrupt, err)
	}
}

func TestConcurrentAppendsRecoverCompletely(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(Options{Dir: dir, SegmentBytes: 4096}, nil)
	if err != nil {
		t.Fatal(err)
	}
	const writers, each = 8, 50
	done := make(chan struct{})
	for g := 0; g < writers; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < each; i++ {
				if err := w.Append([]byte(fmt.Sprintf("g%02d-%03d", g, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < writers; g++ {
		<-done
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	_, res, err := Open(Options{Dir: dir}, func(_ uint64, p []byte) error {
		seen[string(p)] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != writers*each || len(seen) != writers*each {
		t.Fatalf("recovered %d records, %d distinct; want %d", res.Records, len(seen), writers*each)
	}
}

package dom

import (
	"errors"
	"testing"
	"testing/quick"

	"qtag/internal/geom"
)

const (
	pub      = Origin("https://publisher.example")
	exchange = Origin("https://exchange.example")
	dsp      = Origin("https://dsp.example")
)

func pageSize() geom.Size { return geom.Size{W: 1280, H: 4000} }

func TestNewDocument(t *testing.T) {
	d := NewDocument(pub, pageSize())
	if d.Origin() != pub {
		t.Errorf("Origin = %q", d.Origin())
	}
	if !d.IsTop() || d.Top() != d || d.Depth() != 0 {
		t.Error("fresh document should be its own top")
	}
	if d.Root() == nil || d.Root().Tag() != "body" {
		t.Error("root should be a body element")
	}
	if got := d.Root().Rect(); got != (geom.Rect{W: 1280, H: 4000}) {
		t.Errorf("root rect = %v", got)
	}
}

func TestAppendChild(t *testing.T) {
	d := NewDocument(pub, pageSize())
	r := geom.Rect{X: 10, Y: 20, W: 300, H: 250}
	div := d.Root().AppendChild("div", r)
	if div.Rect() != r || div.Tag() != "div" {
		t.Error("child rect/tag wrong")
	}
	if div.Parent() != d.Root() || div.Document() != d {
		t.Error("child linkage wrong")
	}
	if len(d.Root().Children()) != 1 {
		t.Error("children slice wrong")
	}
	if div.ID() == d.Root().ID() {
		t.Error("ids must be unique")
	}
}

// buildDoubleIframe reproduces the paper's canonical delivery structure: a
// publisher page containing an exchange iframe containing a DSP iframe
// containing the creative.
func buildDoubleIframe(t *testing.T, adPos geom.Point) (top *Document, creative *Element) {
	t.Helper()
	top = NewDocument(pub, pageSize())
	outer := top.Root().AttachIframe(exchange, geom.Rect{X: adPos.X, Y: adPos.Y, W: 300, H: 250})
	inner := outer.Root().AttachIframe(dsp, geom.Rect{X: 0, Y: 0, W: 300, H: 250})
	creative = inner.Root().AppendChild("creative", geom.Rect{X: 0, Y: 0, W: 300, H: 250})
	return top, creative
}

func TestAttachIframe(t *testing.T) {
	top, creative := buildDoubleIframe(t, geom.Point{X: 100, Y: 600})
	inner := creative.Document()
	if inner.IsTop() {
		t.Error("creative doc should not be top")
	}
	if inner.Top() != top {
		t.Error("Top() should find the publisher document")
	}
	if inner.Depth() != 2 {
		t.Errorf("Depth = %d, want 2", inner.Depth())
	}
	if inner.Origin() != dsp {
		t.Errorf("inner origin = %q", inner.Origin())
	}
	if inner.HostFrame() == nil || inner.HostFrame().ContentDocument() != inner {
		t.Error("host frame linkage broken")
	}
	if got := inner.Size(); got != (geom.Size{W: 300, H: 250}) {
		t.Errorf("iframe content size = %v", got)
	}
}

func TestFrameChain(t *testing.T) {
	top, creative := buildDoubleIframe(t, geom.Point{X: 0, Y: 0})
	chain := creative.FrameChain()
	if len(chain) != 2 {
		t.Fatalf("chain length = %d", len(chain))
	}
	if chain[0].Document() != top {
		t.Error("outermost frame should live in the top document")
	}
	if chain[1].Document().Origin() != exchange {
		t.Error("second frame should live in the exchange document")
	}
	if len(top.Root().FrameChain()) != 0 {
		t.Error("top elements have empty chains")
	}
}

func TestAbsoluteRect(t *testing.T) {
	_, creative := buildDoubleIframe(t, geom.Point{X: 100, Y: 600})
	got := creative.AbsoluteRect()
	want := geom.Rect{X: 100, Y: 600, W: 300, H: 250}
	if got != want {
		t.Errorf("AbsoluteRect = %v, want %v", got, want)
	}
}

func TestAbsoluteRectWithInnerOffset(t *testing.T) {
	top := NewDocument(pub, pageSize())
	outer := top.Root().AttachIframe(exchange, geom.Rect{X: 50, Y: 100, W: 400, H: 300})
	el := outer.Root().AppendChild("pixel", geom.Rect{X: 10, Y: 20, W: 1, H: 1})
	got := el.AbsoluteRect()
	want := geom.Rect{X: 60, Y: 120, W: 1, H: 1}
	if got != want {
		t.Errorf("AbsoluteRect = %v, want %v", got, want)
	}
}

func TestAbsoluteRectAppliesIntermediateScroll(t *testing.T) {
	top := NewDocument(pub, pageSize())
	frame := top.Root().AttachIframe(exchange, geom.Rect{X: 0, Y: 0, W: 300, H: 250})
	frame.SetScroll(geom.Point{X: 0, Y: 40})
	el := frame.Root().AppendChild("div", geom.Rect{X: 0, Y: 100, W: 10, H: 10})
	got := el.AbsoluteRect()
	want := geom.Rect{X: 0, Y: 60, W: 10, H: 10}
	if got != want {
		t.Errorf("AbsoluteRect with scrolled frame = %v, want %v", got, want)
	}
}

func TestAbsoluteVisibleRectClipsToFrame(t *testing.T) {
	top := NewDocument(pub, pageSize())
	frame := top.Root().AttachIframe(exchange, geom.Rect{X: 100, Y: 100, W: 200, H: 200})
	// Element hangs 50px past the right edge of its frame.
	el := frame.Root().AppendChild("div", geom.Rect{X: 150, Y: 0, W: 100, H: 100})
	got := el.AbsoluteVisibleRect()
	want := geom.Rect{X: 250, Y: 100, W: 50, H: 100}
	if got != want {
		t.Errorf("clipped rect = %v, want %v", got, want)
	}
	// An element fully outside the frame viewport is invisible.
	out := frame.Root().AppendChild("div", geom.Rect{X: 300, Y: 0, W: 50, H: 50})
	if !out.AbsoluteVisibleRect().Empty() {
		t.Error("out-of-frame element should have empty visible rect")
	}
}

func TestAbsolutePoint(t *testing.T) {
	_, creative := buildDoubleIframe(t, geom.Point{X: 100, Y: 600})
	p := creative.AbsolutePoint(geom.Point{X: 150, Y: 125})
	if p != (geom.Point{X: 250, Y: 725}) {
		t.Errorf("AbsolutePoint = %v", p)
	}
}

func TestSameOriginPolicyDeniesCrossOrigin(t *testing.T) {
	_, creative := buildDoubleIframe(t, geom.Point{X: 100, Y: 600})
	_, err := creative.BoundingRectInTop()
	if !errors.Is(err, ErrCrossOrigin) {
		t.Fatalf("expected ErrCrossOrigin, got %v", err)
	}
	if creative.Document().SameOriginWithTop() {
		t.Error("double cross-domain iframe must not be same-origin with top")
	}
}

func TestSameOriginAllowsFriendlyIframe(t *testing.T) {
	top := NewDocument(pub, pageSize())
	friendly := top.Root().AttachIframe(pub, geom.Rect{X: 10, Y: 10, W: 300, H: 250})
	el := friendly.Root().AppendChild("creative", geom.Rect{X: 0, Y: 0, W: 300, H: 250})
	r, err := el.BoundingRectInTop()
	if err != nil {
		t.Fatalf("friendly iframe should be allowed: %v", err)
	}
	if r != (geom.Rect{X: 10, Y: 10, W: 300, H: 250}) {
		t.Errorf("rect = %v", r)
	}
}

func TestSameOriginMixedChainDenied(t *testing.T) {
	// pub → pub (friendly) → dsp: the innermost is cross-origin with top.
	top := NewDocument(pub, pageSize())
	friendly := top.Root().AttachIframe(pub, geom.Rect{X: 0, Y: 0, W: 400, H: 400})
	inner := friendly.Root().AttachIframe(dsp, geom.Rect{X: 0, Y: 0, W: 300, H: 250})
	el := inner.Root().AppendChild("creative", geom.Rect{W: 300, H: 250})
	if _, err := el.BoundingRectInTop(); !errors.Is(err, ErrCrossOrigin) {
		t.Errorf("expected denial, got %v", err)
	}
	// And the reverse sandwich: dsp content inside dsp iframe inside pub top
	// is still denied because the top is pub.
	top2 := NewDocument(pub, pageSize())
	d1 := top2.Root().AttachIframe(dsp, geom.Rect{W: 300, H: 250})
	d2 := d1.Root().AttachIframe(dsp, geom.Rect{W: 300, H: 250})
	el2 := d2.Root().AppendChild("creative", geom.Rect{W: 300, H: 250})
	if _, err := el2.BoundingRectInTop(); !errors.Is(err, ErrCrossOrigin) {
		t.Errorf("expected denial for dsp-in-dsp-in-pub, got %v", err)
	}
}

func TestTopDocumentGeometryAllowed(t *testing.T) {
	top := NewDocument(pub, pageSize())
	el := top.Root().AppendChild("div", geom.Rect{X: 5, Y: 6, W: 7, H: 8})
	r, err := el.BoundingRectInTop()
	if err != nil || r != (geom.Rect{X: 5, Y: 6, W: 7, H: 8}) {
		t.Errorf("top-level element rect = %v, err = %v", r, err)
	}
}

func TestScrollClamping(t *testing.T) {
	d := NewDocument(pub, pageSize())
	d.SetScroll(geom.Point{X: -10, Y: -20})
	if d.Scroll() != (geom.Point{}) {
		t.Errorf("negative scroll should clamp to origin, got %v", d.Scroll())
	}
	d.SetScroll(geom.Point{X: 3, Y: 700})
	if d.Scroll() != (geom.Point{X: 3, Y: 700}) {
		t.Errorf("scroll = %v", d.Scroll())
	}
}

func TestHiddenPropagation(t *testing.T) {
	top, creative := buildDoubleIframe(t, geom.Point{})
	if creative.EffectivelyHidden() {
		t.Error("nothing hidden yet")
	}
	// Hiding the outer iframe element hides everything inside it.
	outerFrame := creative.FrameChain()[0]
	outerFrame.SetHidden(true)
	if !creative.EffectivelyHidden() {
		t.Error("creative inside hidden frame should be effectively hidden")
	}
	outerFrame.SetHidden(false)
	creative.SetHidden(true)
	if !creative.Hidden() || !creative.EffectivelyHidden() {
		t.Error("own hidden flag should count")
	}
	_ = top
}

func TestWalk(t *testing.T) {
	top, creative := buildDoubleIframe(t, geom.Point{})
	var tags []string
	top.Root().Walk(func(e *Element) bool {
		tags = append(tags, e.Tag())
		return true
	})
	// body(top) → iframe → body(exchange) → iframe → body(dsp) → creative
	want := []string{"body", "iframe", "body", "iframe", "body", "creative"}
	if len(tags) != len(want) {
		t.Fatalf("walk visited %v", tags)
	}
	for i := range want {
		if tags[i] != want[i] {
			t.Fatalf("walk order = %v, want %v", tags, want)
		}
	}
	// Early termination.
	count := 0
	top.Root().Walk(func(e *Element) bool {
		count++
		return e != creative.FrameChain()[0] // stop at the first iframe
	})
	if count != 2 {
		t.Errorf("early-stop walk visited %d nodes, want 2", count)
	}
}

func TestElementString(t *testing.T) {
	d := NewDocument(pub, pageSize())
	el := d.Root().AppendChild("div", geom.Rect{X: 1, Y: 2, W: 3, H: 4})
	s := el.String()
	if s == "" || s[0] != '<' {
		t.Errorf("String = %q", s)
	}
}

func TestSetRectMovesAbsolute(t *testing.T) {
	top := NewDocument(pub, pageSize())
	frame := top.Root().AttachIframe(exchange, geom.Rect{X: 100, Y: 100, W: 300, H: 250})
	el := frame.Root().AppendChild("div", geom.Rect{X: 0, Y: 0, W: 10, H: 10})
	before := el.AbsoluteRect()
	frame.HostFrame().SetRect(geom.Rect{X: 200, Y: 100, W: 300, H: 250})
	after := el.AbsoluteRect()
	if after.X-before.X != 100 {
		t.Errorf("moving the frame should move content: before %v after %v", before, after)
	}
}

// Property: AbsolutePoint agrees with AbsoluteRect's origin for random
// nested frame offsets and scrolls.
func TestAbsolutePointMatchesRectProperty(t *testing.T) {
	f := func(ox, oy, ix, iy, sx, sy uint16) bool {
		top := NewDocument(pub, geom.Size{W: 2000, H: 4000})
		outer := top.Root().AttachIframe(exchange, geom.Rect{
			X: float64(ox % 1500), Y: float64(oy % 3000), W: 400, H: 300,
		})
		outer.SetScroll(geom.Point{X: float64(sx % 50), Y: float64(sy % 50)})
		inner := outer.Root().AttachIframe(dsp, geom.Rect{
			X: float64(ix % 100), Y: float64(iy % 100), W: 300, H: 250,
		})
		el := inner.Root().AppendChild("div", geom.Rect{X: 7, Y: 11, W: 20, H: 10})
		r := el.AbsoluteRect()
		p := el.AbsolutePoint(geom.Point{X: 7, Y: 11})
		return r.Min() == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: AbsoluteVisibleRect is always contained in AbsoluteRect and
// never larger.
func TestVisibleRectContainedProperty(t *testing.T) {
	f := func(ex, ey uint16) bool {
		top := NewDocument(pub, geom.Size{W: 1000, H: 1000})
		frame := top.Root().AttachIframe(dsp, geom.Rect{X: 100, Y: 100, W: 200, H: 200})
		el := frame.Root().AppendChild("div", geom.Rect{
			X: float64(ex%400) - 100, Y: float64(ey%400) - 100, W: 80, H: 60,
		})
		vis := el.AbsoluteVisibleRect()
		if vis.Empty() {
			return true
		}
		abs := el.AbsoluteRect()
		return abs.ContainsRect(vis) && vis.Area() <= abs.Area()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

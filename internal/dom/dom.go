// Package dom implements the minimal document object model the Q-Tag
// simulator needs: documents with element trees, nested iframes that may
// belong to different origins, and a Same-Origin-Policy-guarded geometry
// API.
//
// The model captures exactly the structural facts the paper's technique
// depends on:
//
//   - Ads are delivered inside (often doubly) nested cross-domain iframes
//     (§3, §4.2 footnote 2).
//   - A script inside a cross-domain iframe cannot learn its position in
//     the top-level viewport because SOP denies it access to ancestor
//     browsing contexts (§3). The compositor, in contrast, always knows
//     true geometry; package render consumes the unguarded accessors.
//
// Coordinates: every element's Rect is expressed in its own document's
// content coordinate space. Conversion to the top document's content space
// (and clipping by each intermediate iframe viewport) is provided by
// AbsoluteRect / AbsoluteVisibleRect.
package dom

import (
	"errors"
	"fmt"

	"qtag/internal/geom"
)

// Origin is a web origin in the scheme://host sense. Two documents are
// same-origin exactly when their Origin values are equal.
type Origin string

// ErrCrossOrigin is returned by SOP-guarded APIs when a frame boundary on
// the path to the top document belongs to a different origin.
var ErrCrossOrigin = errors.New("dom: cross-origin access denied by same-origin policy")

// Document is one browsing context: the top-level page or the content
// document of an iframe.
type Document struct {
	origin    Origin
	size      geom.Size
	scroll    geom.Point
	root      *Element
	hostFrame *Element // the iframe element embedding this document; nil at top
	nextID    int
}

// NewDocument creates a top-level document with the given origin and
// content size.
func NewDocument(origin Origin, size geom.Size) *Document {
	d := &Document{origin: origin, size: size}
	d.root = &Element{doc: d, tag: "body", rect: geom.Rect{W: size.W, H: size.H}, id: d.allocID()}
	return d
}

func (d *Document) allocID() int {
	d.nextID++
	return d.nextID
}

// Origin returns the document's origin.
func (d *Document) Origin() Origin { return d.origin }

// Size returns the document's content size.
func (d *Document) Size() geom.Size { return d.size }

// Root returns the document's root (body) element.
func (d *Document) Root() *Element { return d.root }

// HostFrame returns the iframe element embedding this document, or nil for
// the top-level document.
func (d *Document) HostFrame() *Element { return d.hostFrame }

// IsTop reports whether this is the top-level document.
func (d *Document) IsTop() bool { return d.hostFrame == nil }

// Top returns the top-level document of the frame tree.
func (d *Document) Top() *Document {
	t := d
	for t.hostFrame != nil {
		t = t.hostFrame.doc
	}
	return t
}

// Depth returns the number of frame boundaries between this document and
// the top (0 for the top document itself).
func (d *Document) Depth() int {
	n := 0
	for t := d; t.hostFrame != nil; t = t.hostFrame.doc {
		n++
	}
	return n
}

// SetScroll sets the document's scroll offset. Offsets are clamped to
// non-negative values; clamping against the viewport is the browser's job
// since the document does not know the viewport size.
func (d *Document) SetScroll(p geom.Point) {
	if p.X < 0 {
		p.X = 0
	}
	if p.Y < 0 {
		p.Y = 0
	}
	d.scroll = p
}

// Scroll returns the current scroll offset.
func (d *Document) Scroll() geom.Point { return d.scroll }

// SameOriginWithTop reports whether every document from d up to and
// including the top shares d's origin — the condition under which a script
// in d may read geometry relative to the top viewport.
func (d *Document) SameOriginWithTop() bool {
	for t := d; t.hostFrame != nil; t = t.hostFrame.doc {
		if t.hostFrame.doc.origin != d.origin {
			return false
		}
	}
	return true
}

// Element is a node in a document's element tree.
type Element struct {
	doc      *Document
	parent   *Element
	children []*Element
	tag      string
	rect     geom.Rect // in the owning document's content coordinates
	hidden   bool      // CSS display:none-like flag
	childDoc *Document // non-nil iff this element is an iframe
	id       int
}

// AppendChild creates a child element with the given tag, positioned at
// rect (in the document's content coordinates), and returns it.
func (e *Element) AppendChild(tag string, rect geom.Rect) *Element {
	child := &Element{doc: e.doc, parent: e, tag: tag, rect: rect, id: e.doc.allocID()}
	e.children = append(e.children, child)
	return child
}

// AttachIframe creates an iframe element at rect whose content document has
// the given origin and a content size equal to the iframe's box. It
// returns the new content document; the iframe element is reachable via
// its HostFrame.
func (e *Element) AttachIframe(origin Origin, rect geom.Rect) *Document {
	frame := e.AppendChild("iframe", rect)
	child := NewDocument(origin, geom.Size{W: rect.W, H: rect.H})
	child.hostFrame = frame
	frame.childDoc = child
	return child
}

// Document returns the document owning this element.
func (e *Element) Document() *Document { return e.doc }

// Parent returns the element's parent, or nil for a root.
func (e *Element) Parent() *Element { return e.parent }

// Children returns the element's children; the slice must not be mutated.
func (e *Element) Children() []*Element { return e.children }

// ContentDocument returns the iframe's content document, or nil when the
// element is not an iframe.
func (e *Element) ContentDocument() *Document { return e.childDoc }

// Tag returns the element's tag name.
func (e *Element) Tag() string { return e.tag }

// ID returns the element's document-unique id.
func (e *Element) ID() int { return e.id }

// Rect returns the element's box in its document's content coordinates.
func (e *Element) Rect() geom.Rect { return e.rect }

// SetRect moves/resizes the element.
func (e *Element) SetRect(r geom.Rect) { e.rect = r }

// SetHidden toggles a display:none-like flag; hidden elements (and their
// subtrees) are never painted.
func (e *Element) SetHidden(h bool) { e.hidden = h }

// Hidden reports the element's own hidden flag (not ancestors').
func (e *Element) Hidden() bool { return e.hidden }

// EffectivelyHidden reports whether the element or any ancestor element /
// host frame is hidden.
func (e *Element) EffectivelyHidden() bool {
	for el := e; el != nil; {
		if el.hidden {
			return true
		}
		if el.parent != nil {
			el = el.parent
		} else if el.doc.hostFrame != nil {
			el = el.doc.hostFrame
		} else {
			el = nil
		}
	}
	return false
}

// FrameChain returns the iframe elements crossed walking from the top
// document down to e's document, outermost first. It is empty when e lives
// in the top document.
func (e *Element) FrameChain() []*Element {
	var rev []*Element
	for d := e.doc; d.hostFrame != nil; d = d.hostFrame.doc {
		rev = append(rev, d.hostFrame)
	}
	chain := make([]*Element, len(rev))
	for i, f := range rev {
		chain[len(rev)-1-i] = f
	}
	return chain
}

// AbsoluteRect returns the element's box in the *top document's* content
// coordinate space, applying each intermediate document's scroll offset.
// This is engine-internal truth: it ignores SOP (the compositor always
// knows real geometry). The top document's own scroll is *not* applied;
// mapping content space to the viewport is the browser's responsibility.
func (e *Element) AbsoluteRect() geom.Rect {
	r := e.rect
	for d := e.doc; d.hostFrame != nil; d = d.hostFrame.doc {
		// Content coordinates inside d map onto d's host frame box in the
		// parent document, shifted by d's own scroll offset.
		host := d.hostFrame
		r = r.Translate(host.rect.X-d.scroll.X, host.rect.Y-d.scroll.Y)
	}
	return r
}

// AbsoluteVisibleRect returns the portion of the element's box that
// survives clipping by every ancestor iframe viewport, in top-document
// content coordinates. The result is empty when the element is scrolled or
// positioned fully outside any ancestor frame.
func (e *Element) AbsoluteVisibleRect() geom.Rect {
	r := e.rect
	for d := e.doc; d.hostFrame != nil; d = d.hostFrame.doc {
		host := d.hostFrame
		// Clip against the frame's viewport in the child content space:
		// the visible window is [scroll, scroll+frameSize).
		clip := geom.Rect{X: d.scroll.X, Y: d.scroll.Y, W: host.rect.W, H: host.rect.H}
		r = r.Intersect(clip)
		if r.Empty() {
			return geom.Rect{}
		}
		r = r.Translate(host.rect.X-d.scroll.X, host.rect.Y-d.scroll.Y)
	}
	return r
}

// AbsolutePoint maps a point expressed in e's document content coordinates
// into top-document content coordinates.
func (e *Element) AbsolutePoint(p geom.Point) geom.Point {
	r := geom.Rect{X: p.X, Y: p.Y}
	for d := e.doc; d.hostFrame != nil; d = d.hostFrame.doc {
		host := d.hostFrame
		r = r.Translate(host.rect.X-d.scroll.X, host.rect.Y-d.scroll.Y)
	}
	return geom.Point{X: r.X, Y: r.Y}
}

// BoundingRectInTop is the SOP-guarded geometry API: it returns the
// element's box in top-document content coordinates if and only if every
// browsing context from the element's document up to the top shares the
// element's origin. Scripts (ad tags) must use this accessor; the
// commercial geometry-based tag's measured-rate deficit comes precisely
// from the ErrCrossOrigin path.
func (e *Element) BoundingRectInTop() (geom.Rect, error) {
	if !e.doc.SameOriginWithTop() {
		return geom.Rect{}, ErrCrossOrigin
	}
	return e.AbsoluteRect(), nil
}

// Walk visits e and every descendant element (crossing into iframe content
// documents) in depth-first order. Returning false from visit stops the
// walk.
func (e *Element) Walk(visit func(*Element) bool) bool {
	if !visit(e) {
		return false
	}
	for _, c := range e.children {
		if !c.Walk(visit) {
			return false
		}
	}
	if e.childDoc != nil {
		if !e.childDoc.root.Walk(visit) {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer.
func (e *Element) String() string {
	return fmt.Sprintf("<%s#%d %v origin=%s>", e.tag, e.id, e.rect, e.doc.origin)
}

package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.StdDev() != 0 || s.Sum() != 0 {
		t.Error("empty summary should be all zeros")
	}
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	s.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if !approx(s.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v", s.Mean())
	}
	if !approx(s.StdDev(), 2, 1e-12) {
		t.Errorf("StdDev = %v", s.StdDev())
	}
	if !approx(s.SampleVariance(), 32.0/7.0, 1e-12) {
		t.Errorf("SampleVariance = %v", s.SampleVariance())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if !approx(s.Sum(), 40, 1e-9) {
		t.Errorf("Sum = %v", s.Sum())
	}
}

func TestSummarySingle(t *testing.T) {
	var s Summary
	s.Add(42)
	if s.Mean() != 42 || s.StdDev() != 0 || s.SampleVariance() != 0 {
		t.Error("single-sample summary wrong")
	}
	if s.Min() != 42 || s.Max() != 42 {
		t.Error("single-sample min/max wrong")
	}
}

func TestSummaryNumericalStability(t *testing.T) {
	// Large offset + small variance is where naive sum-of-squares breaks.
	var s Summary
	base := 1e9
	for i := 0; i < 1000; i++ {
		s.Add(base + float64(i%2)) // values 1e9 and 1e9+1
	}
	if !approx(s.Mean(), base+0.5, 1e-3) {
		t.Errorf("mean = %v", s.Mean())
	}
	if !approx(s.StdDev(), 0.5, 1e-6) {
		t.Errorf("stddev = %v", s.StdDev())
	}
}

func TestMeanAndStdDevHelpers(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if !approx(Mean(xs), 2.5, 1e-12) {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) should be 0")
	}
	if !approx(StdDev(xs), math.Sqrt(1.25), 1e-12) {
		t.Errorf("StdDev = %v", StdDev(xs))
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	if got := Percentile(xs, 0); got != 15 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 50 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 35 {
		t.Errorf("p50 = %v", got)
	}
	if got := Percentile(xs, 25); got != 20 {
		t.Errorf("p25 = %v", got)
	}
	// Interpolation between order statistics.
	if got := Percentile([]float64{10, 20}, 50); got != 15 {
		t.Errorf("interp p50 = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
	if got := Percentile([]float64{7}, 90); got != 7 {
		t.Errorf("single percentile = %v", got)
	}
	if got := Median(xs); got != 35 {
		t.Errorf("Median = %v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentileOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Percentile([]float64{1}, 101)
}

func TestRate(t *testing.T) {
	var r Rate
	if r.Value() != 0 {
		t.Error("empty rate should be 0")
	}
	for i := 0; i < 10; i++ {
		r.Observe(i < 7)
	}
	if !approx(r.Value(), 0.7, 1e-12) || !approx(r.Percent(), 70, 1e-12) {
		t.Errorf("rate = %v", r.Value())
	}
	var r2 Rate
	r2.Observe(true)
	r.Merge(r2)
	if r.Hits != 8 || r.Total != 11 {
		t.Errorf("merge = %+v", r)
	}
	if r.String() != "8/11 (72.7%)" {
		t.Errorf("String = %q", r.String())
	}
}

func TestWilsonInterval(t *testing.T) {
	r := Rate{Hits: 93, Total: 100}
	lo, hi := r.WilsonInterval()
	if lo >= hi {
		t.Fatal("degenerate interval")
	}
	if lo < 0.85 || hi > 0.98 {
		t.Errorf("interval [%v, %v] implausible for 93/100", lo, hi)
	}
	if v := r.Value(); v < lo || v > hi {
		t.Error("point estimate outside interval")
	}
	// Edge cases stay in [0, 1].
	for _, rr := range []Rate{{0, 10}, {10, 10}, {0, 0}} {
		lo, hi := rr.WilsonInterval()
		if lo < 0 || hi > 1 || lo > hi {
			t.Errorf("interval out of bounds for %+v: [%v, %v]", rr, lo, hi)
		}
	}
}

func TestMeanAbsError(t *testing.T) {
	got := MeanAbsError([]float64{1, 2, 3}, []float64{1, 4, 0})
	if !approx(got, (0+2+3)/3.0, 1e-12) {
		t.Errorf("MeanAbsError = %v", got)
	}
	if MeanAbsError(nil, nil) != 0 {
		t.Error("empty MAE should be 0")
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	MeanAbsError([]float64{1}, []float64{1, 2})
}

func TestRelativeError(t *testing.T) {
	if !approx(RelativeError(110, 100), 0.1, 1e-12) {
		t.Error("RelativeError wrong")
	}
	if !approx(RelativeError(3, 0), 3, 1e-12) {
		t.Error("RelativeError at zero reference wrong")
	}
}

// Property: Welford summary matches the two-pass computation.
func TestSummaryMatchesTwoPass(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			xs = append(xs, math.Mod(v, 1e6))
		}
		if len(xs) == 0 {
			return true
		}
		var s Summary
		s.AddAll(xs)
		mean := Mean(xs)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		wantVar := ss / float64(len(xs))
		return approx(s.Mean(), mean, 1e-6*(1+math.Abs(mean))) &&
			approx(s.Variance(), wantVar, 1e-6*(1+wantVar))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPercentileMonotone(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p1 := float64(a % 101)
		p2 := float64(b % 101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		v1 := Percentile(xs, p1)
		v2 := Percentile(xs, p2)
		lo := Percentile(xs, 0)
		hi := Percentile(xs, 100)
		return v1 <= v2 && v1 >= lo && v2 <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

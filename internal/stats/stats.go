// Package stats provides the descriptive statistics used when assembling
// the paper's tables and figures: running means, standard deviations,
// percentiles, rate/proportion helpers and simple error metrics.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates a stream of float64 observations using Welford's
// online algorithm, so means and variances stay numerically stable even
// over millions of samples. The zero value is ready to use.
type Summary struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// AddAll records every observation in xs.
func (s *Summary) AddAll(xs []float64) {
	for _, x := range xs {
		s.Add(x)
	}
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the arithmetic mean (0 for an empty summary).
func (s *Summary) Mean() float64 { return s.mean }

// Variance returns the population variance.
func (s *Summary) Variance() float64 {
	if s.n == 0 {
		return 0
	}
	return s.m2 / float64(s.n)
}

// SampleVariance returns the unbiased (n−1) variance; 0 when n < 2.
func (s *Summary) SampleVariance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the population standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// SampleStdDev returns the sample standard deviation.
func (s *Summary) SampleStdDev() float64 { return math.Sqrt(s.SampleVariance()) }

// Min returns the smallest observation (0 for an empty summary).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 for an empty summary).
func (s *Summary) Max() float64 { return s.max }

// Sum returns the total of all observations.
func (s *Summary) Sum() float64 { return s.mean * float64(s.n) }

// String implements fmt.Stringer.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4f sd=%.4f min=%.4f max=%.4f",
		s.n, s.Mean(), s.StdDev(), s.min, s.max)
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	var s Summary
	s.AddAll(xs)
	return s.StdDev()
}

// Percentile returns the p-th percentile (p in [0, 100]) of xs using linear
// interpolation between order statistics. It returns 0 for empty input and
// panics on out-of-range p.
func Percentile(xs []float64, p float64) float64 {
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range", p))
	}
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Rate is a counted proportion: Hits out of Total trials.
type Rate struct {
	Hits  int
	Total int
}

// Observe records one trial with the given outcome.
func (r *Rate) Observe(hit bool) {
	r.Total++
	if hit {
		r.Hits++
	}
}

// Value returns Hits/Total, or 0 when no trials were recorded.
func (r Rate) Value() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Total)
}

// Percent returns the rate as a percentage.
func (r Rate) Percent() float64 { return r.Value() * 100 }

// Merge adds another rate's counts into r.
func (r *Rate) Merge(o Rate) {
	r.Hits += o.Hits
	r.Total += o.Total
}

// String implements fmt.Stringer.
func (r Rate) String() string {
	return fmt.Sprintf("%d/%d (%.1f%%)", r.Hits, r.Total, r.Percent())
}

// WilsonInterval returns the 95 % Wilson score interval for the rate,
// clamped to [0,1]. It is the standard interval for proportions and
// behaves sensibly near 0 and 1 where the normal approximation fails.
func (r Rate) WilsonInterval() (lo, hi float64) {
	if r.Total == 0 {
		return 0, 1
	}
	const z = 1.959964 // 97.5th normal percentile
	n := float64(r.Total)
	p := r.Value()
	denom := 1 + z*z/n
	center := (p + z*z/(2*n)) / denom
	half := z * math.Sqrt(p*(1-p)/n+z*z/(4*n*n)) / denom
	lo = math.Max(0, center-half)
	hi = math.Min(1, center+half)
	return lo, hi
}

// MeanAbsError returns the mean of |got[i]−want[i]|. The slices must have
// equal length.
func MeanAbsError(got, want []float64) float64 {
	if len(got) != len(want) {
		panic("stats: MeanAbsError length mismatch")
	}
	if len(got) == 0 {
		return 0
	}
	var sum float64
	for i := range got {
		sum += math.Abs(got[i] - want[i])
	}
	return sum / float64(len(got))
}

// RelativeError returns |got−want| / |want|; when want is 0 it returns
// |got| so the metric stays finite.
func RelativeError(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

package qtag

import (
	"fmt"
	"math"
	"sort"

	"qtag/internal/geom"
)

// Method selects how the area estimator converts the set of visible
// monitoring pixels into an estimated visible fraction ("we compute the
// area associated with the visible monitoring pixels", §3).
type Method int

const (
	// MethodRectInference exploits the structure of the problem: the
	// visible part of a creative is always its intersection with an
	// axis-aligned rectangle (the viewport, possibly further clipped by
	// the screen), so the estimator infers that rectangle's edges from
	// the visible/invisible pixel pattern. An invisible pixel constrains
	// an edge only when its invisibility cannot be explained by the other
	// axis. This is the default estimator and the one that reproduces
	// Figure 2: X and + perform equally under axis-aligned sliding (each
	// axis is resolved by the pixels aligned with it) while + collapses
	// under diagonal sliding (no pixels in the visible corner) and dice
	// is coarse everywhere (few distinct coordinate levels).
	MethodRectInference Method = iota
	// MethodVoronoi attributes each creative point to its nearest pixel
	// and sums the cells of visible pixels. Ablation (DESIGN.md A3).
	MethodVoronoi
	// MethodUniform counts visible pixels / total pixels. Ablation.
	MethodUniform
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodVoronoi:
		return "voronoi"
	case MethodUniform:
		return "uniform"
	default:
		return "rect-inference"
	}
}

// voronoiGrid is the rasterization resolution used to compute Voronoi
// cell areas for MethodVoronoi.
const voronoiGrid = 96

// AreaEstimator converts visibility bits of a pixel set into an estimated
// visible fraction of the creative. It is pure geometry — no browser
// state — so both the live tag and the §4.1 theoretical-layout evaluation
// share it.
type AreaEstimator struct {
	points  []geom.Point
	size    geom.Size
	method  Method
	weights []float64 // per-pixel area fractions (voronoi/uniform)
}

// NewAreaEstimator precomputes an estimator for pixels at the given
// positions inside a creative of the given size.
func NewAreaEstimator(points []geom.Point, size geom.Size, method Method) *AreaEstimator {
	if len(points) == 0 {
		panic("qtag: AreaEstimator needs at least one pixel")
	}
	e := &AreaEstimator{points: points, size: size, method: method}
	switch method {
	case MethodRectInference:
		// No precomputation beyond the points themselves.
	case MethodUniform:
		e.weights = make([]float64, len(points))
		for i := range e.weights {
			e.weights[i] = 1 / float64(len(points))
		}
	case MethodVoronoi:
		e.weights = make([]float64, len(points))
		e.computeVoronoiWeights()
	default:
		panic(fmt.Sprintf("qtag: unknown estimator method %d", method))
	}
	return e
}

// computeVoronoiWeights rasterizes the creative into a grid and attributes
// each grid cell to the nearest pixel (distance normalised per axis so
// wide banners partition sensibly).
func (e *AreaEstimator) computeVoronoiWeights() {
	size := e.size
	cellW := size.W / voronoiGrid
	cellH := size.H / voronoiGrid
	cellFrac := 1.0 / (voronoiGrid * voronoiGrid)
	distSq := func(p geom.Point, x, y float64) float64 {
		dx := (p.X - x) / size.W
		dy := (p.Y - y) / size.H
		return dx*dx + dy*dy
	}
	for gy := 0; gy < voronoiGrid; gy++ {
		cy := (float64(gy) + 0.5) * cellH
		for gx := 0; gx < voronoiGrid; gx++ {
			cx := (float64(gx) + 0.5) * cellW
			best := 0
			bestD := distSq(e.points[0], cx, cy)
			for i := 1; i < len(e.points); i++ {
				if d := distSq(e.points[i], cx, cy); d < bestD {
					bestD = d
					best = i
				}
			}
			e.weights[best] += cellFrac
		}
	}
}

// NumPixels returns the number of monitoring pixels.
func (e *AreaEstimator) NumPixels() int { return len(e.points) }

// Points returns the pixel positions (not a copy; do not mutate).
func (e *AreaEstimator) Points() []geom.Point { return e.points }

// Estimate returns the estimated visible fraction of the creative given
// per-pixel visibility bits. It panics when the bit vector length does not
// match the pixel count.
func (e *AreaEstimator) Estimate(visible []bool) float64 {
	if len(visible) != len(e.points) {
		panic(fmt.Sprintf("qtag: Estimate got %d bits for %d pixels", len(visible), len(e.points)))
	}
	switch e.method {
	case MethodRectInference:
		return e.rectInfer(visible)
	default:
		var frac float64
		for i, v := range visible {
			if v {
				frac += e.weights[i]
			}
		}
		return math.Min(frac, 1)
	}
}

// EstimateClip returns the estimated visible fraction if the creative were
// clipped by the given rectangle (both in creative-local coordinates):
// pixel i is visible iff it lies inside clip. This is the theoretical
// (§4.1) evaluation path, bypassing the refresh-rate machinery.
func (e *AreaEstimator) EstimateClip(clip geom.Rect) float64 {
	visible := make([]bool, len(e.points))
	for i, p := range e.points {
		visible[i] = clip.Contains(p)
	}
	return e.Estimate(visible)
}

// rectInfer implements MethodRectInference.
//
// Model: visible region = creative ∩ V for an unknown axis-aligned
// rectangle V. The bounding box B of the visible pixels lies inside V.
// For each of B's four edges we look for invisible pixels beyond the edge
// whose *other* coordinate falls inside B's span on the perpendicular
// axis — such a pixel's invisibility can only be explained by this edge
// of V, so V's edge lies between B's edge and that pixel. We place the
// estimated edge half a coordinate-level beyond B (capped by the
// constraint); with no constraining pixel at all the edge extends to the
// creative boundary, reflecting the prior that viewport edges usually lie
// outside the ad.
func (e *AreaEstimator) rectInfer(visible []bool) float64 {
	adArea := e.size.W * e.size.H
	if adArea <= 0 {
		return 0
	}
	// Bounding box of visible pixels.
	first := true
	var minX, maxX, minY, maxY float64
	for i, v := range visible {
		if !v {
			continue
		}
		p := e.points[i]
		if first {
			minX, maxX, minY, maxY = p.X, p.X, p.Y, p.Y
			first = false
			continue
		}
		minX = math.Min(minX, p.X)
		maxX = math.Max(maxX, p.X)
		minY = math.Min(minY, p.Y)
		maxY = math.Max(maxY, p.Y)
	}
	if first {
		return 0 // nothing visible
	}

	xHi := e.inferEdge(visible, maxX, minY, maxY, +1, false)
	xLo := e.inferEdge(visible, minX, minY, maxY, -1, false)
	yHi := e.inferEdge(visible, maxY, minX, maxX, +1, true)
	yLo := e.inferEdge(visible, minY, minX, maxX, -1, true)

	w := geom.Clamp(xHi, 0, e.size.W) - geom.Clamp(xLo, 0, e.size.W)
	h := geom.Clamp(yHi, 0, e.size.H) - geom.Clamp(yLo, 0, e.size.H)
	if w <= 0 || h <= 0 {
		return 0
	}
	return math.Min(w*h/adArea, 1)
}

// inferEdge estimates one edge of the clip rectangle.
//
//   - edge: the bounding-box coordinate on this axis (max for dir=+1,
//     min for dir=-1);
//   - perpLo/perpHi: the bounding box span on the perpendicular axis;
//   - dir: +1 for the high edge, −1 for the low edge;
//   - yAxis: true when inferring a y edge.
//
// The returned coordinate is edge + dir·expansion.
func (e *AreaEstimator) inferEdge(visible []bool, edge, perpLo, perpHi float64, dir float64, yAxis bool) float64 {
	adMax := e.size.W
	if yAxis {
		adMax = e.size.H
	}
	const eps = 1e-9

	// Nearest invisible pixel beyond the edge whose perpendicular
	// coordinate lies within the bounding box span: its invisibility must
	// be due to this edge.
	constraint := math.Inf(1)
	for i, v := range visible {
		if v {
			continue
		}
		p := e.points[i]
		coord, perp := p.X, p.Y
		if yAxis {
			coord, perp = p.Y, p.X
		}
		if perp < perpLo-eps || perp > perpHi+eps {
			continue
		}
		if d := dir * (coord - edge); d > eps {
			constraint = math.Min(constraint, d)
		}
	}
	if math.IsInf(constraint, 1) {
		// Unconstrained: the clip edge is beyond every pixel on this
		// side; extend to the creative boundary.
		if dir > 0 {
			return adMax
		}
		return 0
	}

	// Constrained: expand by half the distance to the next coordinate
	// level of the layout (the natural resolution of this axis), capped
	// at half the distance to the constraining pixel.
	next := e.nextLevel(edge, dir, yAxis)
	expansion := constraint / 2
	if next > 0 {
		expansion = math.Min(expansion, next/2)
	}
	return edge + dir*expansion
}

// nextLevel returns the distance from coord to the nearest distinct pixel
// coordinate level strictly beyond it in direction dir along the chosen
// axis, or 0 when none exists.
func (e *AreaEstimator) nextLevel(coord, dir float64, yAxis bool) float64 {
	const eps = 1e-9
	best := math.Inf(1)
	for _, p := range e.points {
		c := p.X
		if yAxis {
			c = p.Y
		}
		if d := dir * (c - coord); d > eps {
			best = math.Min(best, d)
		}
	}
	if math.IsInf(best, 1) {
		return 0
	}
	return best
}

// levels returns the sorted distinct coordinate levels of the layout
// along one axis; exposed for diagnostics and tests.
func (e *AreaEstimator) levels(yAxis bool) []float64 {
	set := make(map[float64]bool, len(e.points))
	for _, p := range e.points {
		c := p.X
		if yAxis {
			c = p.Y
		}
		set[math.Round(c*1e9)/1e9] = true
	}
	out := make([]float64, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Float64s(out)
	return out
}

package qtag

import (
	"fmt"
	"time"

	"qtag/internal/adtag"
	"qtag/internal/beacon"
	"qtag/internal/browser"
	"qtag/internal/dom"
	"qtag/internal/geom"
	"qtag/internal/obs"
	"qtag/internal/viewability"
)

// DefaultPixelCount is the paper's recommended pixel count (§4.1: "25
// pixels seem to be a good trade-off").
const DefaultPixelCount = 25

// DefaultFPSThreshold is the paper's conservative visibility threshold:
// pixels refreshing at ≥ 20 fps are considered visible (§3).
const DefaultFPSThreshold = 20.0

// DefaultSampleInterval is how often the tag evaluates pixel refresh rates
// and the viewability condition.
const DefaultSampleInterval = 100 * time.Millisecond

// Config tunes a Q-Tag instance. The zero value selects the paper's
// defaults (25-pixel X layout, 20 fps threshold, rectangle-inference
// area estimation).
type Config struct {
	// Layout is the monitoring-pixel arrangement.
	Layout Layout
	// PixelCount is the number of monitoring pixels (default 25).
	PixelCount int
	// FPSThreshold is the refresh rate at or above which a pixel is
	// classified visible (default 20).
	FPSThreshold float64
	// SampleInterval is the evaluation period (default 100 ms).
	SampleInterval time.Duration
	// Method selects the area estimator (default rectangle inference).
	Method Method
	// Criteria overrides the viewability criteria; when nil they derive
	// from the impression's ad format per the IAB/MRC standard.
	Criteria *viewability.Criteria
}

func (c Config) withDefaults() Config {
	if c.PixelCount == 0 {
		c.PixelCount = DefaultPixelCount
	}
	if c.FPSThreshold == 0 {
		c.FPSThreshold = DefaultFPSThreshold
	}
	if c.SampleInterval == 0 {
		c.SampleInterval = DefaultSampleInterval
	}
	return c
}

// Tag is the Q-Tag measurement solution. It implements adtag.Tag.
type Tag struct {
	cfg Config
}

// New returns a Q-Tag with the given configuration.
func New(cfg Config) *Tag { return &Tag{cfg: cfg.withDefaults()} }

// Name implements adtag.Tag.
func (t *Tag) Name() string { return string(beacon.SourceQTag) }

// Deploy implements adtag.Tag: it plants the monitoring pixels, starts
// observing their paint rates, and runs the viewability state machine
// until the criteria are met (in-view beacon) and subsequently lost
// (out-of-view beacon).
//
// Deploy sends the loaded beacon — the signal that lets the monitoring
// server count this impression as *measured* — only after the pixel
// observers attach successfully. In an environment without frame
// callbacks the tag cannot measure, returns an error, and the impression
// stays unmeasured.
func (t *Tag) Deploy(rt *adtag.Runtime) error {
	size := rt.CreativeSize()
	points := Points(t.cfg.Layout, t.cfg.PixelCount, size)
	est := NewAreaEstimator(points, size, t.cfg.Method)

	d := &deployment{
		cfg:      t.cfg,
		rt:       rt,
		size:     size,
		est:      est,
		criteria: t.criteria(rt),
	}
	// Attach a paint observer to every monitoring pixel before declaring
	// the impression measured.
	if err := d.plant(points); err != nil {
		return err
	}
	rt.Trace(obs.StageClassified, fmt.Sprintf("pixels=%d fps>=%g", len(points), t.cfg.FPSThreshold))
	if err := rt.SendBeacon(beacon.SourceQTag, beacon.EventLoaded, 0); err != nil {
		return fmt.Errorf("qtag: loaded beacon: %w", err)
	}
	d.ticker = rt.Every(t.cfg.SampleInterval, d.sample)
	return nil
}

func (t *Tag) criteria(rt *adtag.Runtime) viewability.Criteria {
	if t.cfg.Criteria != nil {
		return *t.cfg.Criteria
	}
	return viewability.StandardCriteria(rt.Impression().Format)
}

// deployment is the per-impression state machine.
type deployment struct {
	cfg      Config
	rt       *adtag.Runtime
	size     geom.Size
	est      *AreaEstimator
	criteria viewability.Criteria

	counts    []int  // paints per pixel since the last sample
	visible   []bool // per-pixel visibility classification (scratch)
	pixels    []*dom.Element
	observers []*browser.PaintObserver

	inRun      bool
	runStart   time.Duration
	inViewSent bool
	outSent    bool
	ticker     interface{ Stop() }
}

// plant creates the monitoring pixels for the given layout points and
// attaches their paint observers.
func (d *deployment) plant(points []geom.Point) error {
	d.counts = make([]int, len(points))
	d.visible = make([]bool, len(points))
	d.pixels = d.pixels[:0]
	d.observers = d.observers[:0]
	for i, p := range points {
		px := d.rt.CreatePixel(p)
		d.pixels = append(d.pixels, px)
		i := i
		obs, err := d.rt.ObservePixelPaints(px, func(time.Duration) { d.counts[i]++ })
		if err != nil {
			return fmt.Errorf("qtag: deploy pixel %d: %w", i, err)
		}
		d.observers = append(d.observers, obs)
	}
	return nil
}

// replant handles responsive creatives: when the creative box changes
// size the old pixel grid measures stale geometry (a shrunken creative
// would clip its own pixels and read as out of view), so the tag retires
// the old pixels and lays out a fresh grid for the new box. The dwell
// run restarts — visibility across the relayout cannot be certified.
func (d *deployment) replant(size geom.Size) {
	for _, obs := range d.observers {
		obs.Cancel()
	}
	for _, px := range d.pixels {
		px.SetHidden(true)
	}
	d.size = size
	points := Points(d.cfg.Layout, d.cfg.PixelCount, size)
	d.est = NewAreaEstimator(points, size, d.cfg.Method)
	// plant cannot fail here: frame-callback support was proven at deploy.
	_ = d.plant(points)
	d.inRun = false
}

// sample runs once per SampleInterval: estimate per-pixel fps from paint
// counts, classify visibility against the fps threshold, estimate the
// visible area, and advance the viewability state machine.
func (d *deployment) sample() {
	if cur := d.rt.CreativeSize(); cur != d.size {
		d.replant(cur)
		return // counts from the old grid are meaningless this round
	}
	secs := d.cfg.SampleInterval.Seconds()
	for i, c := range d.counts {
		fps := float64(c) / secs
		d.visible[i] = fps >= d.cfg.FPSThreshold
		d.counts[i] = 0
	}
	frac := d.est.Estimate(d.visible)
	now := d.rt.Now()

	if frac >= d.criteria.AreaFraction {
		if !d.inRun {
			d.inRun = true
			// The condition held throughout the sample window that just
			// closed (that is what the fps counts certify), so the run
			// starts at the window's opening boundary.
			d.runStart = now - d.cfg.SampleInterval
		}
		if !d.inViewSent && now-d.runStart >= d.criteria.Dwell {
			d.inViewSent = true
			_ = d.rt.SendBeacon(beacon.SourceQTag, beacon.EventInView, 0)
		}
		return
	}

	d.inRun = false
	if d.inViewSent && !d.outSent {
		d.outSent = true
		_ = d.rt.SendBeacon(beacon.SourceQTag, beacon.EventOutOfView, 0)
		// Measurement complete: in-view and out-of-view both recorded.
		d.ticker.Stop()
	}
}

// EstimateVisibleFraction is a convenience for tests and the §4.1
// evaluation: the estimated visible fraction for a creative of the given
// size clipped to clip, using cfg's layout parameters.
func EstimateVisibleFraction(cfg Config, size geom.Size, clip geom.Rect) float64 {
	cfg = cfg.withDefaults()
	points := Points(cfg.Layout, cfg.PixelCount, size)
	est := NewAreaEstimator(points, size, cfg.Method)
	return est.EstimateClip(clip)
}

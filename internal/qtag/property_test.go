package qtag

import (
	"math"
	"testing"
	"testing/quick"

	"qtag/internal/geom"
)

// TestEstimateBoundedForAllPatterns: for every method and arbitrary
// visibility bit patterns, the estimate stays in [0, 1].
func TestEstimateBoundedForAllPatterns(t *testing.T) {
	for _, m := range []Method{MethodRectInference, MethodVoronoi, MethodUniform} {
		est := NewAreaEstimator(Points(LayoutX, 25, ad300x250), ad300x250, m)
		f := func(bits uint32) bool {
			visible := make([]bool, 25)
			for i := range visible {
				visible[i] = bits&(1<<uint(i)) != 0
			}
			v := est.Estimate(visible)
			return v >= 0 && v <= 1 && !math.IsNaN(v)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
			t.Errorf("%v: %v", m, err)
		}
	}
}

// TestEstimateAllOrNothing: all-visible estimates 1, none-visible 0, for
// every layout and method.
func TestEstimateAllOrNothing(t *testing.T) {
	for _, m := range []Method{MethodRectInference, MethodVoronoi, MethodUniform} {
		for _, l := range Layouts() {
			est := NewAreaEstimator(Points(l, 25, ad300x250), ad300x250, m)
			all := make([]bool, 25)
			for i := range all {
				all[i] = true
			}
			if v := est.Estimate(all); math.Abs(v-1) > 1e-9 {
				t.Errorf("%v/%v all-visible = %v", l, m, v)
			}
			if v := est.Estimate(make([]bool, 25)); v != 0 {
				t.Errorf("%v/%v none-visible = %v", l, m, v)
			}
		}
	}
}

// TestEstimateClipMonotone: growing the clip rectangle never decreases
// the rect-inference estimate (more visible pixels, fewer constraints).
func TestEstimateClipMonotone(t *testing.T) {
	est := NewAreaEstimator(Points(LayoutX, 25, ad300x250), ad300x250, MethodRectInference)
	f := func(a, b, c, d uint16) bool {
		// Random inner clip anchored at the origin side.
		w1 := float64(a%300) + 1
		h1 := float64(b%250) + 1
		dw := float64(c % 100)
		dh := float64(d % 100)
		inner := geom.Rect{X: -1, Y: -1, W: w1, H: h1}
		outer := geom.Rect{X: -1, Y: -1, W: w1 + dw, H: h1 + dh}
		return est.EstimateClip(outer) >= est.EstimateClip(inner)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestEstimateClipAccuracyBound: for axis-aligned corner clips the
// rect-inference error is bounded by the layout's level resolution.
func TestEstimateClipAccuracyBound(t *testing.T) {
	est := NewAreaEstimator(Points(LayoutX, 25, ad300x250), ad300x250, MethodRectInference)
	f := func(a uint16) bool {
		f1 := float64(a%1000) / 1000
		clip := geom.Rect{X: -1, Y: -1, W: 302, H: 1 + f1*250}
		got := est.EstimateClip(clip)
		// Vertical-cut error bound: half the coarsest level gap (~H/11).
		return math.Abs(got-f1) <= 250.0/11/2/250+0.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestPointsPropertyRandomSizes: layouts produce exactly n in-bounds,
// distinct points for arbitrary creative sizes.
func TestPointsPropertyRandomSizes(t *testing.T) {
	f := func(wRaw, hRaw uint16, nRaw uint8, lRaw uint8) bool {
		w := float64(wRaw%2000) + 10
		h := float64(hRaw%2000) + 10
		n := int(nRaw%56) + 5 // 5..60
		l := Layouts()[int(lRaw)%3]
		pts := Points(l, n, geom.Size{W: w, H: h})
		if len(pts) != n {
			return false
		}
		for _, p := range pts {
			if p.X < 0 || p.X > w || p.Y < 0 || p.Y > h {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestEstimatorSymmetry: the X layout is symmetric, so mirrored clips
// yield (nearly) identical estimates.
func TestEstimatorSymmetry(t *testing.T) {
	est := NewAreaEstimator(Points(LayoutX, 25, ad300x250), ad300x250, MethodRectInference)
	f := func(a uint16) bool {
		frac := float64(a%900)/1000 + 0.05
		top := geom.Rect{X: -1, Y: -1, W: 302, H: 1 + frac*250}
		bottom := geom.Rect{X: -1, Y: 250 - frac*250, W: 302, H: frac*250 + 1}
		left := geom.Rect{X: -1, Y: -1, W: 1 + frac*300, H: 252}
		right := geom.Rect{X: 300 - frac*300, Y: -1, W: frac*300 + 1, H: 252}
		const tol = 0.02
		return math.Abs(est.EstimateClip(top)-est.EstimateClip(bottom)) < tol &&
			math.Abs(est.EstimateClip(left)-est.EstimateClip(right)) < tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

package qtag

import (
	"fmt"
	"strings"

	"qtag/internal/geom"
)

// GenerateJS emits the deployable JavaScript ad tag implementing this
// configuration — the artifact a DSP actually ships inside its creatives
// (the paper's Q-Tag is "a piece of code (typically JavaScript)", §3).
//
// The emitted tag is self-contained ES5 (2019-era webview compatible):
// it plants the monitoring pixels as absolutely-positioned 1×1 elements
// animated with requestAnimationFrame, counts per-pixel frame callbacks,
// classifies pixels against the fps threshold every sample interval,
// estimates the exposed area with the same rectangle-inference algorithm
// as AreaEstimator (the Go and JS implementations are kept in lockstep
// by TestGenerateJS*), runs the area/dwell state machine, and reports
// loaded / in-view / out-of-view via navigator.sendBeacon with an image
// fallback.
//
// endpoint is the collection server's ingest URL (POST /v1/events);
// size is the creative's dimensions, needed to bake the pixel layout in.
func GenerateJS(cfg Config, endpoint string, size geom.Size) string {
	cfg = cfg.withDefaults()
	points := Points(cfg.Layout, cfg.PixelCount, size)

	var coords strings.Builder
	for i, p := range points {
		if i > 0 {
			coords.WriteString(",")
		}
		fmt.Fprintf(&coords, "[%.2f,%.2f]", p.X, p.Y)
	}

	criteria := "null"
	if cfg.Criteria != nil {
		criteria = fmt.Sprintf("{area:%.4f,dwellMs:%d}",
			cfg.Criteria.AreaFraction, cfg.Criteria.Dwell.Milliseconds())
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, jsHeader, cfg.Layout, cfg.PixelCount, cfg.FPSThreshold)
	fmt.Fprintf(&sb, `(function () {
  'use strict';
  var ENDPOINT = %q;
  var PIXELS = [%s];            // layout: %s, creative %gx%g
  var FPS_THRESHOLD = %g;       // pixels refreshing at >= this are visible
  var SAMPLE_MS = %d;           // evaluation period
  var AD_W = %g, AD_H = %g;
  var CRITERIA_OVERRIDE = %s;   // null -> derive from data-format
`, endpoint, coords.String(), cfg.Layout, size.W, size.H,
		cfg.FPSThreshold, cfg.SampleInterval.Milliseconds(), size.W, size.H, criteria)
	sb.WriteString(jsBody)
	return sb.String()
}

const jsHeader = `/*!
 * q-tag: transparent viewability measurement (CoNEXT'19 reproduction).
 * layout=%v pixels=%d fpsThreshold=%g
 * Deployed inside the creative iframe; requires no cross-origin access.
 */
`

// jsBody is the configuration-independent remainder of the tag. It
// mirrors, in order: adtag pixel creation, the per-pixel fps monitor, the
// rectangle-inference estimator (AreaEstimator.rectInfer / inferEdge /
// nextLevel), and the deployment state machine (deployment.sample).
const jsBody = `
  function criteriaFor(format) {
    if (CRITERIA_OVERRIDE) return CRITERIA_OVERRIDE;
    if (format === 'video') return { area: 0.5, dwellMs: 2000 };
    if (format === 'large-display') return { area: 0.3, dwellMs: 1000 };
    return { area: 0.5, dwellMs: 1000 };
  }

  var script = document.currentScript || (function () {
    var ss = document.getElementsByTagName('script');
    return ss[ss.length - 1];
  })();
  var impressionId = script.getAttribute('data-impression') || '';
  var campaignId = script.getAttribute('data-campaign') || '';
  var criteria = criteriaFor(script.getAttribute('data-format') || 'display');

  function sendBeacon(type) {
    var payload = JSON.stringify({
      impression_id: impressionId,
      campaign_id: campaignId,
      source: 'qtag',
      type: type,
      at: new Date().toISOString()
    });
    if (navigator.sendBeacon && navigator.sendBeacon(ENDPOINT, payload)) return;
    var img = new Image(1, 1); // legacy fallback: GET pixel
    img.src = ENDPOINT + '?e=' + encodeURIComponent(payload);
  }

  // --- monitoring pixels -------------------------------------------------
  // Each pixel is a 1x1 absolutely positioned element whose style is
  // toggled every animation frame; browsers only deliver/paint frames for
  // content they actually render, so the callback rate IS the refresh
  // rate the paper measures.
  var counts = new Array(PIXELS.length);
  var visible = new Array(PIXELS.length);
  for (var i = 0; i < PIXELS.length; i++) counts[i] = 0;

  function plantPixel(idx, x, y) {
    var el = document.createElement('div');
    el.style.cssText = 'position:absolute;width:1px;height:1px;' +
      'pointer-events:none;opacity:0.01;' +
      'left:' + Math.min(x, AD_W - 1) + 'px;top:' + Math.min(y, AD_H - 1) + 'px';
    document.body.appendChild(el);
    var flip = false;
    function frame() {
      counts[idx]++;
      flip = !flip;
      el.style.transform = flip ? 'translateZ(0)' : 'none';
      el.__raf = window.requestAnimationFrame(frame);
    }
    el.__raf = window.requestAnimationFrame(frame);
    return el;
  }

  if (!window.requestAnimationFrame) return; // cannot measure: stay silent
  var els = [];
  for (var p = 0; p < PIXELS.length; p++) {
    els.push(plantPixel(p, PIXELS[p][0], PIXELS[p][1]));
  }
  sendBeacon('loaded');

  // --- rectangle-inference area estimator --------------------------------
  function nextLevel(coord, dir, yAxis) {
    var best = Infinity;
    for (var i = 0; i < PIXELS.length; i++) {
      var c = yAxis ? PIXELS[i][1] : PIXELS[i][0];
      var d = dir * (c - coord);
      if (d > 1e-9 && d < best) best = d;
    }
    return best === Infinity ? 0 : best;
  }

  function inferEdge(edge, perpLo, perpHi, dir, yAxis) {
    var adMax = yAxis ? AD_H : AD_W;
    var constraint = Infinity;
    for (var i = 0; i < PIXELS.length; i++) {
      if (visible[i]) continue;
      var coord = yAxis ? PIXELS[i][1] : PIXELS[i][0];
      var perp = yAxis ? PIXELS[i][0] : PIXELS[i][1];
      if (perp < perpLo - 1e-9 || perp > perpHi + 1e-9) continue;
      var d = dir * (coord - edge);
      if (d > 1e-9 && d < constraint) constraint = d;
    }
    if (constraint === Infinity) return dir > 0 ? adMax : 0;
    var expansion = constraint / 2;
    var next = nextLevel(edge, dir, yAxis);
    if (next > 0 && next / 2 < expansion) expansion = next / 2;
    return edge + dir * expansion;
  }

  function estimate() {
    var minX = Infinity, maxX = -Infinity, minY = Infinity, maxY = -Infinity, any = false;
    for (var i = 0; i < PIXELS.length; i++) {
      if (!visible[i]) continue;
      any = true;
      if (PIXELS[i][0] < minX) minX = PIXELS[i][0];
      if (PIXELS[i][0] > maxX) maxX = PIXELS[i][0];
      if (PIXELS[i][1] < minY) minY = PIXELS[i][1];
      if (PIXELS[i][1] > maxY) maxY = PIXELS[i][1];
    }
    if (!any) return 0;
    var xHi = inferEdge(maxX, minY, maxY, +1, false);
    var xLo = inferEdge(minX, minY, maxY, -1, false);
    var yHi = inferEdge(maxY, minX, maxX, +1, true);
    var yLo = inferEdge(minY, minX, maxX, -1, true);
    var w = Math.min(xHi, AD_W) - Math.max(xLo, 0);
    var h = Math.min(yHi, AD_H) - Math.max(yLo, 0);
    if (w <= 0 || h <= 0) return 0;
    var frac = (w * h) / (AD_W * AD_H);
    return frac > 1 ? 1 : frac;
  }

  // --- viewability state machine ------------------------------------------
  var inRun = false, runStart = 0, inViewSent = false, outSent = false;
  var timer = window.setInterval(function () {
    var now = Date.now();
    for (var i = 0; i < PIXELS.length; i++) {
      visible[i] = (counts[i] * 1000 / SAMPLE_MS) >= FPS_THRESHOLD;
      counts[i] = 0;
    }
    var frac = estimate();
    if (frac >= criteria.area) {
      if (!inRun) { inRun = true; runStart = now - SAMPLE_MS; }
      if (!inViewSent && now - runStart >= criteria.dwellMs) {
        inViewSent = true;
        sendBeacon('in-view');
      }
      return;
    }
    inRun = false;
    if (inViewSent && !outSent) {
      outSent = true;
      sendBeacon('out-of-view');
      window.clearInterval(timer);
      for (var j = 0; j < els.length; j++) {
        window.cancelAnimationFrame(els[j].__raf);
      }
    }
  }, SAMPLE_MS);
})();
`

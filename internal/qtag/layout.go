// Package qtag implements the paper's primary contribution: the Q-Tag
// viewability measurement technique (§3).
//
// Q-Tag deploys monitoring pixels inside the ad's iframe in a chosen
// layout (the paper's default is 25 pixels in an "X layout"), observes the
// refresh/paint rate of each pixel, classifies pixels refreshing at ≥ 20
// fps as visible, estimates the exposed area of the creative from the
// visible pixel set, and runs the IAB/MRC viewability state machine on the
// estimate. When the standard's criteria are met it beacons an in-view
// event to the monitoring server; if visibility is later lost it beacons
// out-of-view.
package qtag

import (
	"fmt"

	"qtag/internal/geom"
)

// Layout enumerates the monitoring-pixel arrangements compared in §4.1 /
// Figure 2.
type Layout int

const (
	// LayoutX places pixels along both diagonals plus the center and the
	// four side midpoints (Figure 2.A). The paper's recommended layout.
	LayoutX Layout = iota
	// LayoutDice clusters pixels at the five positions of a dice "5" face
	// (Figure 2.B). The worst performer.
	LayoutDice
	// LayoutPlus places pixels along the vertical and horizontal center
	// lines (Figure 2.C).
	LayoutPlus
)

// String implements fmt.Stringer.
func (l Layout) String() string {
	switch l {
	case LayoutX:
		return "X"
	case LayoutDice:
		return "dice"
	case LayoutPlus:
		return "+"
	default:
		return fmt.Sprintf("Layout(%d)", int(l))
	}
}

// Layouts returns all layouts in Figure 2 order.
func Layouts() []Layout { return []Layout{LayoutX, LayoutDice, LayoutPlus} }

// Points returns the positions of n monitoring pixels arranged in the
// given layout within a w×h creative, in creative-local coordinates. It
// panics for n < 5 (every layout needs its anchors) or non-positive
// dimensions.
//
// For the paper's canonical 25-pixel X layout the arrangement is exactly
// §3's: ten pixels per diagonal (excluding the center), the center pixel,
// and one pixel at each side midpoint.
func Points(l Layout, n int, size geom.Size) []geom.Point {
	if n < 5 {
		panic(fmt.Sprintf("qtag: layout needs at least 5 pixels, got %d", n))
	}
	if size.W <= 0 || size.H <= 0 {
		panic(fmt.Sprintf("qtag: invalid creative size %v", size))
	}
	switch l {
	case LayoutDice:
		return dicePoints(n, size)
	case LayoutPlus:
		return plusPoints(n, size)
	default:
		return xPoints(n, size)
	}
}

// xPoints: center + 4 side midpoints + the remaining n−5 pixels split
// across the two diagonals.
func xPoints(n int, size geom.Size) []geom.Point {
	w, h := size.W, size.H
	pts := []geom.Point{
		{X: w / 2, Y: h / 2}, // center
		{X: w / 2, Y: 0},     // top midpoint
		{X: w / 2, Y: h},     // bottom midpoint
		{X: 0, Y: h / 2},     // left midpoint
		{X: w, Y: h / 2},     // right midpoint
	}
	rest := n - 5
	main := (rest + 1) / 2 // main diagonal gets the odd pixel
	anti := rest - main
	// Main diagonal (0,0)→(w,h), parameter t in (0,1); skip t=0.5 (center).
	for _, t := range diagParams(main) {
		pts = append(pts, geom.Point{X: t * w, Y: t * h})
	}
	// Anti-diagonal (w,0)→(0,h).
	for _, t := range diagParams(anti) {
		pts = append(pts, geom.Point{X: w - t*w, Y: t * h})
	}
	return pts
}

// diagParams returns k parameters evenly spaced in (0,1) avoiding 0.5
// exactly (the center pixel is placed separately). For even k the
// standard spacing i/(k+1) never hits 0.5 when k is even... it does when
// k is odd, in which case the colliding parameter is nudged.
func diagParams(k int) []float64 {
	out := make([]float64, 0, k)
	for i := 1; i <= k; i++ {
		t := float64(i) / float64(k+1)
		if t == 0.5 {
			t += 0.5 / float64(k+1) / 2
		}
		out = append(out, t)
	}
	return out
}

// dicePoints: the n pixels are distributed round-robin over the five
// anchors of a dice "5" face (the four quarter points and the center),
// with members of each cluster packed tightly (3-pixel pitch) around the
// anchor. Clustering is what makes the layout coarse: the whole cluster
// becomes visible or invisible almost simultaneously.
func dicePoints(n int, size geom.Size) []geom.Point {
	w, h := size.W, size.H
	anchors := []geom.Point{
		{X: w / 4, Y: h / 4},
		{X: 3 * w / 4, Y: h / 4},
		{X: w / 2, Y: h / 2},
		{X: w / 4, Y: 3 * h / 4},
		{X: 3 * w / 4, Y: 3 * h / 4},
	}
	// Tight spiral offsets around the anchor, a few pixels apart.
	offsets := []geom.Point{
		{X: 0, Y: 0}, {X: 3, Y: 0}, {X: -3, Y: 0}, {X: 0, Y: 3}, {X: 0, Y: -3},
		{X: 3, Y: 3}, {X: -3, Y: -3}, {X: 3, Y: -3}, {X: -3, Y: 3},
		{X: 6, Y: 0}, {X: -6, Y: 0}, {X: 0, Y: 6}, {X: 0, Y: -6},
	}
	pts := make([]geom.Point, 0, n)
	for i := 0; i < n; i++ {
		a := anchors[i%len(anchors)]
		o := offsets[(i/len(anchors))%len(offsets)]
		pts = append(pts, geom.Point{
			X: geom.Clamp(a.X+o.X, 0, w),
			Y: geom.Clamp(a.Y+o.Y, 0, h),
		})
	}
	return pts
}

// plusPoints: center + the remaining n−1 pixels split between the
// vertical and horizontal center lines.
func plusPoints(n int, size geom.Size) []geom.Point {
	w, h := size.W, size.H
	pts := []geom.Point{{X: w / 2, Y: h / 2}}
	rest := n - 1
	vert := (rest + 1) / 2
	horiz := rest - vert
	for _, t := range diagParams(vert) {
		pts = append(pts, geom.Point{X: w / 2, Y: t * h})
	}
	for _, t := range diagParams(horiz) {
		pts = append(pts, geom.Point{X: t * w, Y: h / 2})
	}
	return pts
}

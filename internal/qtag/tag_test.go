package qtag

import (
	"testing"
	"time"

	"qtag/internal/adtag"
	"qtag/internal/beacon"
	"qtag/internal/browser"
	"qtag/internal/dom"
	"qtag/internal/geom"
	"qtag/internal/simclock"
	"qtag/internal/viewability"
)

const (
	pubOrigin = dom.Origin("https://publisher.example")
	dspOrigin = dom.Origin("https://dsp.example")
)

// fixture is a deployed Q-Tag on a simulated page with a double
// cross-domain iframe ad, ready for scenario scripting.
type fixture struct {
	clock    *simclock.Clock
	browser  *browser.Browser
	page     *browser.Page
	creative *dom.Element
	store    *beacon.Store
	rt       *adtag.Runtime
}

func deployFixture(t *testing.T, prof browser.Profile, adY float64, format viewability.Format, cfg Config) *fixture {
	t.Helper()
	clock := simclock.New()
	b := browser.New(clock, browser.Options{Profile: prof})
	w := b.OpenWindow(geom.Point{}, geom.Size{W: 1280, H: 720})
	doc := dom.NewDocument(pubOrigin, geom.Size{W: 1280, H: 6000})
	page := w.ActiveTab().Navigate(doc)
	outer := doc.Root().AttachIframe(dspOrigin, geom.Rect{X: 200, Y: adY, W: 300, H: 250})
	inner := outer.Root().AttachIframe(dspOrigin, geom.Rect{X: 0, Y: 0, W: 300, H: 250})
	creative := inner.Root().AppendChild("creative", geom.Rect{X: 0, Y: 0, W: 300, H: 250})
	store := beacon.NewStore()
	rt := adtag.NewRuntime(page, creative, store, adtag.Impression{
		ID: "imp-1", CampaignID: "camp-1", Format: format,
	})
	if err := New(cfg).Deploy(rt); err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	return &fixture{clock: clock, browser: b, page: page, creative: creative, store: store, rt: rt}
}

func (f *fixture) has(typ beacon.EventType) bool {
	for _, e := range f.store.Events() {
		if e.Type == typ && e.Source == beacon.SourceQTag {
			return true
		}
	}
	return false
}

func (f *fixture) eventTime(typ beacon.EventType) (time.Duration, bool) {
	for _, e := range f.store.Events() {
		if e.Type == typ && e.Source == beacon.SourceQTag {
			return e.At.Sub(simclock.Epoch), true
		}
	}
	return 0, false
}

func chrome() browser.Profile { return browser.CertificationProfiles()[1] }

func TestDeploySendsLoaded(t *testing.T) {
	f := deployFixture(t, chrome(), 100, viewability.Display, Config{})
	defer f.browser.Close()
	if !f.has(beacon.EventLoaded) {
		t.Fatal("loaded beacon missing after deploy")
	}
	if f.store.Loaded("camp-1", beacon.SourceQTag) != 1 {
		t.Error("store should count 1 loaded")
	}
}

func TestInViewAfterOneSecond(t *testing.T) {
	f := deployFixture(t, chrome(), 100, viewability.Display, Config{})
	defer f.browser.Close()
	f.clock.Advance(900 * time.Millisecond)
	if f.has(beacon.EventInView) {
		t.Fatal("in-view sent before 1s dwell")
	}
	f.clock.Advance(400 * time.Millisecond)
	if !f.has(beacon.EventInView) {
		t.Fatal("in-view not sent after 1.3s of full visibility")
	}
	at, _ := f.eventTime(beacon.EventInView)
	if at < 900*time.Millisecond || at > 1300*time.Millisecond {
		t.Errorf("in-view at %v, want ≈1s", at)
	}
	if f.has(beacon.EventOutOfView) {
		t.Error("out-of-view must not fire while still visible")
	}
}

func TestNoInViewBelowTheFold(t *testing.T) {
	f := deployFixture(t, chrome(), 3000, viewability.Display, Config{})
	defer f.browser.Close()
	f.clock.Advance(5 * time.Second)
	if !f.has(beacon.EventLoaded) {
		t.Error("loaded should still fire below the fold")
	}
	if f.has(beacon.EventInView) {
		t.Error("in-view must not fire for an ad below the fold")
	}
}

func TestInViewAfterScrollDown(t *testing.T) {
	f := deployFixture(t, chrome(), 3000, viewability.Display, Config{})
	defer f.browser.Close()
	f.clock.Advance(2 * time.Second)
	f.page.ScrollTo(geom.Point{Y: 2900})
	f.clock.Advance(1500 * time.Millisecond)
	if !f.has(beacon.EventInView) {
		t.Fatal("in-view should fire after scrolling the ad into view for 1.5s")
	}
	at, _ := f.eventTime(beacon.EventInView)
	if at < 2900*time.Millisecond || at > 3400*time.Millisecond {
		t.Errorf("in-view at %v, want ≈3.0–3.2s", at)
	}
}

func TestOutOfViewAfterScrollAway(t *testing.T) {
	f := deployFixture(t, chrome(), 100, viewability.Display, Config{})
	defer f.browser.Close()
	f.clock.Advance(1500 * time.Millisecond) // in-view fires ~1s
	if !f.has(beacon.EventInView) {
		t.Fatal("precondition: in-view")
	}
	f.page.ScrollTo(geom.Point{Y: 2000}) // ad leaves viewport
	f.clock.Advance(500 * time.Millisecond)
	if !f.has(beacon.EventOutOfView) {
		t.Fatal("out-of-view should fire after scrolling away")
	}
}

func TestShortExposureDoesNotCount(t *testing.T) {
	f := deployFixture(t, chrome(), 100, viewability.Display, Config{})
	defer f.browser.Close()
	f.clock.Advance(600 * time.Millisecond) // visible 0.6s
	f.page.ScrollTo(geom.Point{Y: 2000})    // hide before 1s
	f.clock.Advance(3 * time.Second)
	if f.has(beacon.EventInView) {
		t.Error("0.6s exposure must not trigger in-view")
	}
	if f.has(beacon.EventOutOfView) {
		t.Error("out-of-view only fires after an in-view")
	}
}

func TestInterruptedDwellRestarts(t *testing.T) {
	f := deployFixture(t, chrome(), 100, viewability.Display, Config{})
	defer f.browser.Close()
	f.clock.Advance(600 * time.Millisecond)
	f.page.ScrollTo(geom.Point{Y: 2000}) // interrupt
	f.clock.Advance(500 * time.Millisecond)
	f.page.ScrollTo(geom.Point{Y: 0}) // back
	f.clock.Advance(700 * time.Millisecond)
	if f.has(beacon.EventInView) {
		t.Error("dwell must restart after interruption")
	}
	f.clock.Advance(600 * time.Millisecond) // now >1s continuous
	if !f.has(beacon.EventInView) {
		t.Error("in-view should fire after uninterrupted second attempt")
	}
}

func TestHalfVisibleCountsForDisplay(t *testing.T) {
	// Scroll so exactly 52% of the ad is visible (display needs ≥50%).
	f := deployFixture(t, chrome(), 100, viewability.Display, Config{})
	defer f.browser.Close()
	// Ad spans y 100..350; viewport top at 220 leaves 130/250 = 52%.
	f.page.ScrollTo(geom.Point{Y: 220})
	f.clock.Advance(2 * time.Second)
	if !f.has(beacon.EventInView) {
		t.Error("52% visibility should satisfy the display criteria")
	}
}

func TestFortyPercentDoesNotCountForDisplay(t *testing.T) {
	f := deployFixture(t, chrome(), 100, viewability.Display, Config{})
	defer f.browser.Close()
	// Viewport top at 250 leaves 100/250 = 40% visible.
	f.page.ScrollTo(geom.Point{Y: 250})
	f.clock.Advance(3 * time.Second)
	if f.has(beacon.EventInView) {
		t.Error("40% visibility must not satisfy the 50% display criteria")
	}
}

func TestVideoNeedsTwoSeconds(t *testing.T) {
	f := deployFixture(t, chrome(), 100, viewability.Video, Config{})
	defer f.browser.Close()
	f.clock.Advance(1500 * time.Millisecond)
	if f.has(beacon.EventInView) {
		t.Error("video in-view before 2s")
	}
	f.clock.Advance(800 * time.Millisecond)
	if !f.has(beacon.EventInView) {
		t.Error("video in-view missing after 2.3s")
	}
}

func TestLargeDisplayRelaxedThreshold(t *testing.T) {
	// 40% visible satisfies large display (≥30%) but not display (≥50%).
	f := deployFixture(t, chrome(), 100, viewability.LargeDisplay, Config{})
	defer f.browser.Close()
	f.page.ScrollTo(geom.Point{Y: 250}) // 40% visible
	f.clock.Advance(2 * time.Second)
	if !f.has(beacon.EventInView) {
		t.Error("40% should satisfy the large-display 30% bar")
	}
}

func TestTabSwitchTriggersOutOfView(t *testing.T) {
	f := deployFixture(t, chrome(), 100, viewability.Display, Config{})
	defer f.browser.Close()
	f.clock.Advance(1500 * time.Millisecond)
	w := f.page.Tab().Window()
	w.ActivateTab(w.NewTab())
	f.clock.Advance(500 * time.Millisecond)
	if !f.has(beacon.EventOutOfView) {
		t.Error("tab switch should trigger out-of-view after in-view")
	}
}

func TestDegradedCPUStillMeasures(t *testing.T) {
	// 50% CPU load → 30 fps, still above the 20 fps threshold.
	f := deployFixture(t, chrome(), 100, viewability.Display, Config{})
	defer f.browser.Close()
	f.browser.SetCPULoad(0.5)
	f.clock.Advance(2 * time.Second)
	if !f.has(beacon.EventInView) {
		t.Error("30fps device should still measure in-view with the 20fps threshold")
	}
}

func TestThresholdInsensitivity(t *testing.T) {
	// Paper §3: thresholds of 20/30/40/50 fps make no major difference on
	// healthy devices.
	for _, thr := range []float64{20, 30, 40, 50} {
		f := deployFixture(t, chrome(), 100, viewability.Display, Config{FPSThreshold: thr})
		f.clock.Advance(2 * time.Second)
		if !f.has(beacon.EventInView) {
			t.Errorf("threshold %v: in-view missing", thr)
		}
		f.browser.Close()
	}
}

func TestNoFrameCallbacksFailsDeploy(t *testing.T) {
	prof := chrome()
	prof.SupportsFrameCallbacks = false
	clock := simclock.New()
	b := browser.New(clock, browser.Options{Profile: prof})
	defer b.Close()
	w := b.OpenWindow(geom.Point{}, geom.Size{W: 1280, H: 720})
	doc := dom.NewDocument(pubOrigin, geom.Size{W: 1280, H: 2000})
	page := w.ActiveTab().Navigate(doc)
	frame := doc.Root().AttachIframe(dspOrigin, geom.Rect{X: 0, Y: 0, W: 300, H: 250})
	creative := frame.Root().AppendChild("creative", geom.Rect{W: 300, H: 250})
	store := beacon.NewStore()
	rt := adtag.NewRuntime(page, creative, store, adtag.Impression{ID: "i", CampaignID: "c"})
	if err := New(Config{}).Deploy(rt); err == nil {
		t.Fatal("Deploy should fail without frame callbacks")
	}
	if store.Loaded("c", beacon.SourceQTag) != 0 {
		t.Error("no loaded beacon may be sent when deployment fails")
	}
}

func TestInViewSentExactlyOnce(t *testing.T) {
	f := deployFixture(t, chrome(), 100, viewability.Display, Config{})
	defer f.browser.Close()
	f.clock.Advance(5 * time.Second)
	count := 0
	for _, e := range f.store.Events() {
		if e.Type == beacon.EventInView {
			count++
		}
	}
	if count != 1 {
		t.Errorf("in-view sent %d times, want exactly 1", count)
	}
}

func TestTagStopsAfterOutOfView(t *testing.T) {
	f := deployFixture(t, chrome(), 100, viewability.Display, Config{})
	defer f.browser.Close()
	f.clock.Advance(1500 * time.Millisecond)
	f.page.ScrollTo(geom.Point{Y: 2000})
	f.clock.Advance(500 * time.Millisecond)
	events := f.store.Len()
	// Bring the ad back: measurement is complete, nothing new may fire.
	f.page.ScrollTo(geom.Point{Y: 0})
	f.clock.Advance(3 * time.Second)
	if f.store.Len() != events {
		t.Errorf("tag emitted %d extra events after completing its measurement", f.store.Len()-events)
	}
}

func TestCriteriaOverride(t *testing.T) {
	crit := viewability.Criteria{AreaFraction: 0.9, Dwell: 3 * time.Second}
	f := deployFixture(t, chrome(), 100, viewability.Display, Config{Criteria: &crit})
	defer f.browser.Close()
	f.clock.Advance(2 * time.Second)
	if f.has(beacon.EventInView) {
		t.Error("override dwell of 3s not honoured")
	}
	f.clock.Advance(1500 * time.Millisecond)
	if !f.has(beacon.EventInView) {
		t.Error("in-view missing after override dwell elapsed")
	}
}

func TestTagName(t *testing.T) {
	if New(Config{}).Name() != "qtag" {
		t.Error("tag name wrong")
	}
}

func TestEstimateVisibleFractionHelper(t *testing.T) {
	got := EstimateVisibleFraction(Config{}, geom.Size{W: 300, H: 250},
		geom.Rect{X: -1, Y: -1, W: 302, H: 252})
	if got != 1 {
		t.Errorf("full clip fraction = %v", got)
	}
}

func BenchmarkTagSecondOfMeasurement(b *testing.B) {
	clock := simclock.New()
	br := browser.New(clock, browser.Options{Profile: browser.CertificationProfiles()[1]})
	defer br.Close()
	w := br.OpenWindow(geom.Point{}, geom.Size{W: 1280, H: 720})
	doc := dom.NewDocument(pubOrigin, geom.Size{W: 1280, H: 6000})
	page := w.ActiveTab().Navigate(doc)
	frame := doc.Root().AttachIframe(dspOrigin, geom.Rect{X: 200, Y: 100, W: 300, H: 250})
	creative := frame.Root().AppendChild("creative", geom.Rect{W: 300, H: 250})
	store := beacon.NewStore()
	rt := adtag.NewRuntime(page, creative, store, adtag.Impression{ID: "i", CampaignID: "c"})
	if err := New(Config{}).Deploy(rt); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clock.Advance(time.Second)
	}
}

// TestFlickerAtSampleBoundaries: visibility flapping faster than the
// dwell must never produce an in-view, even when flips align with sample
// boundaries.
func TestFlickerAtSampleBoundaries(t *testing.T) {
	f := deployFixture(t, chrome(), 100, viewability.Display, Config{})
	defer f.browser.Close()
	for i := 0; i < 12; i++ {
		f.clock.Advance(400 * time.Millisecond)
		if i%2 == 0 {
			f.page.ScrollTo(geom.Point{Y: 2000}) // hide
		} else {
			f.page.ScrollTo(geom.Point{Y: 0}) // show
		}
	}
	if f.has(beacon.EventInView) {
		t.Error("400ms flicker must never satisfy the 1s dwell")
	}
}

// TestWindowMoveAfterInView mirrors certification test 4 at the tag
// level: in-view latches, then moving the window off-screen produces
// out-of-view.
func TestWindowMoveAfterInView(t *testing.T) {
	f := deployFixture(t, chrome(), 100, viewability.Display, Config{})
	defer f.browser.Close()
	f.clock.Advance(1500 * time.Millisecond)
	if !f.has(beacon.EventInView) {
		t.Fatal("precondition failed")
	}
	f.page.Tab().Window().MoveTo(geom.Point{X: 9000, Y: 9000})
	f.clock.Advance(500 * time.Millisecond)
	if !f.has(beacon.EventOutOfView) {
		t.Error("off-screen move should register out-of-view")
	}
}

// TestSmallBannerMeasured: the 320×50 banner of the §5 campaigns works
// with the default 25-pixel layout.
func TestSmallBannerMeasured(t *testing.T) {
	clock := simclock.New()
	b := browser.New(clock, browser.Options{Profile: browser.AndroidChromeProfile()})
	defer b.Close()
	w := b.OpenWindow(geom.Point{}, geom.Size{W: 412, H: 800})
	doc := dom.NewDocument(pubOrigin, geom.Size{W: 412, H: 2000})
	page := w.ActiveTab().Navigate(doc)
	frame := doc.Root().AttachIframe(dspOrigin, geom.Rect{X: 46, Y: 100, W: 320, H: 50})
	creative := frame.Root().AppendChild("creative", geom.Rect{W: 320, H: 50})
	store := beacon.NewStore()
	rt := adtag.NewRuntime(page, creative, store, adtag.Impression{
		ID: "i", CampaignID: "c", Format: viewability.Display,
	})
	if err := New(Config{}).Deploy(rt); err != nil {
		t.Fatal(err)
	}
	clock.Advance(1500 * time.Millisecond)
	if store.InView("c", beacon.SourceQTag) != 1 {
		t.Error("320x50 banner in-view missing")
	}
}

// TestAlternativeLayoutsAlsoMeasure: the dice and + layouts, while less
// accurate, still drive the state machine correctly for a fully visible
// ad.
func TestAlternativeLayoutsAlsoMeasure(t *testing.T) {
	for _, l := range []Layout{LayoutDice, LayoutPlus} {
		f := deployFixture(t, chrome(), 100, viewability.Display, Config{Layout: l})
		f.clock.Advance(1500 * time.Millisecond)
		if !f.has(beacon.EventInView) {
			t.Errorf("layout %v: in-view missing", l)
		}
		f.browser.Close()
	}
}

// TestNinePixelConfig: the smallest Figure 2 configuration still works
// end to end.
func TestNinePixelConfig(t *testing.T) {
	f := deployFixture(t, chrome(), 100, viewability.Display, Config{PixelCount: 9})
	defer f.browser.Close()
	f.clock.Advance(1500 * time.Millisecond)
	if !f.has(beacon.EventInView) {
		t.Error("9-pixel config in-view missing")
	}
}

// TestResponsiveCreativeResize: when the creative box changes size
// mid-measurement (responsive ads), the tag re-plants its pixel grid and
// keeps measuring the new geometry instead of reading clipped stale
// pixels as out-of-view.
func TestResponsiveCreativeResize(t *testing.T) {
	f := deployFixture(t, chrome(), 100, viewability.Display, Config{})
	defer f.browser.Close()
	f.clock.Advance(400 * time.Millisecond) // mid-dwell

	// The publisher swaps the slot to a 320x50 banner: resize the iframe
	// chain and the creative.
	inner := f.creative.Document()
	outerFrame := f.creative.FrameChain()[0]
	innerFrame := f.creative.FrameChain()[1]
	outerFrame.SetRect(geom.Rect{X: 200, Y: 100, W: 320, H: 50})
	innerFrame.SetRect(geom.Rect{X: 0, Y: 0, W: 320, H: 50})
	f.creative.SetRect(geom.Rect{X: 0, Y: 0, W: 320, H: 50})
	_ = inner
	f.browser.InvalidateLayout()

	// The resized (still fully visible) creative must reach in-view: the
	// dwell restarts at the relayout, so allow a bit over 1s.
	f.clock.Advance(1600 * time.Millisecond)
	if !f.has(beacon.EventInView) {
		t.Fatal("in-view missing after responsive resize")
	}
	// And visibility loss on the new geometry still registers.
	f.page.ScrollTo(geom.Point{Y: 2000})
	f.clock.Advance(500 * time.Millisecond)
	if !f.has(beacon.EventOutOfView) {
		t.Error("out-of-view missing after resize + scroll")
	}
}

// TestShrinkWithoutReplantWouldMisread documents why replanting matters:
// after a shrink the retired grid is hidden and a fresh in-bounds grid
// measures the new box — the count of active monitoring pixels stays
// constant.
func TestShrinkKeepsPixelBudget(t *testing.T) {
	f := deployFixture(t, chrome(), 100, viewability.Display, Config{})
	defer f.browser.Close()
	f.clock.Advance(300 * time.Millisecond)
	f.creative.SetRect(geom.Rect{X: 0, Y: 0, W: 200, H: 150})
	f.browser.InvalidateLayout()
	f.clock.Advance(300 * time.Millisecond) // replant happens on next sample

	active := 0
	f.creative.Walk(func(e *dom.Element) bool {
		if e.Tag() == "monitor-pixel" && !e.Hidden() {
			r := e.Rect()
			if r.MaxX() > 200 || r.MaxY() > 150 {
				t.Errorf("active pixel outside the shrunken creative: %v", r)
			}
			active++
		}
		return true
	})
	if active != DefaultPixelCount {
		t.Errorf("active pixels = %d, want %d", active, DefaultPixelCount)
	}
}

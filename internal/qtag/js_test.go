package qtag

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"qtag/internal/geom"
	"qtag/internal/viewability"
)

func genDefault() string {
	return GenerateJS(Config{}, "https://monitor.example/v1/events", geom.Size{W: 300, H: 250})
}

func TestGenerateJSStructure(t *testing.T) {
	js := genDefault()
	required := []string{
		"'use strict'",
		`ENDPOINT = "https://monitor.example/v1/events"`,
		"requestAnimationFrame",
		"navigator.sendBeacon",
		"sendBeacon('loaded')",
		"sendBeacon('in-view')",
		"sendBeacon('out-of-view')",
		"FPS_THRESHOLD = 20",
		"SAMPLE_MS = 100",
		"AD_W = 300, AD_H = 250",
		"CRITERIA_OVERRIDE = null",
		"inferEdge",   // the rectangle-inference estimator travelled with it
		"data-format", // per-format criteria selection (§3: "our tag can identify the type of ad")
	}
	for _, want := range required {
		if !strings.Contains(js, want) {
			t.Errorf("generated tag missing %q", want)
		}
	}
	// Balanced braces/parens — a cheap syntactic sanity check.
	if strings.Count(js, "{") != strings.Count(js, "}") {
		t.Error("unbalanced braces")
	}
	if strings.Count(js, "(") != strings.Count(js, ")") {
		t.Error("unbalanced parentheses")
	}
}

// TestGenerateJSBakesLayout checks that the emitted pixel coordinates are
// exactly the Go layout's — the lockstep guarantee the doc comment
// promises.
func TestGenerateJSBakesLayout(t *testing.T) {
	js := genDefault()
	points := Points(LayoutX, 25, geom.Size{W: 300, H: 250})
	if len(points) != 25 {
		t.Fatal("layout size wrong")
	}
	for _, p := range points {
		pair := fmt.Sprintf("[%.2f,%.2f]", p.X, p.Y)
		if !strings.Contains(js, pair) {
			t.Errorf("coordinate %s not baked into the tag", pair)
		}
	}
	// Count the pairs: exactly 25.
	if got := strings.Count(js, "],["); got != 24 {
		t.Errorf("expected 25 coordinate pairs, separators = %d", got)
	}
}

func TestGenerateJSVideoCriteria(t *testing.T) {
	js := genDefault()
	if !strings.Contains(js, "{ area: 0.5, dwellMs: 2000 }") {
		t.Error("video criteria missing")
	}
	if !strings.Contains(js, "{ area: 0.3, dwellMs: 1000 }") {
		t.Error("large-display criteria missing")
	}
	if !strings.Contains(js, "{ area: 0.5, dwellMs: 1000 }") {
		t.Error("display criteria missing")
	}
}

func TestGenerateJSCriteriaOverride(t *testing.T) {
	crit := viewability.Criteria{AreaFraction: 0.75, Dwell: 1500 * time.Millisecond}
	js := GenerateJS(Config{Criteria: &crit}, "https://m.example", geom.Size{W: 300, H: 250})
	if !strings.Contains(js, "CRITERIA_OVERRIDE = {area:0.7500,dwellMs:1500}") {
		t.Error("criteria override not baked")
	}
}

func TestGenerateJSCustomConfig(t *testing.T) {
	js := GenerateJS(Config{
		Layout: LayoutPlus, PixelCount: 9, FPSThreshold: 30,
		SampleInterval: 250 * time.Millisecond,
	}, "https://m.example", geom.Size{W: 320, H: 50})
	if !strings.Contains(js, "FPS_THRESHOLD = 30") {
		t.Error("threshold not baked")
	}
	if !strings.Contains(js, "SAMPLE_MS = 250") {
		t.Error("sample interval not baked")
	}
	if !strings.Contains(js, "AD_W = 320, AD_H = 50") {
		t.Error("creative size not baked")
	}
	if got := strings.Count(js, "],["); got != 8 {
		t.Errorf("expected 9 coordinate pairs, separators = %d", got)
	}
	if !strings.Contains(js, "layout=+ pixels=9") {
		t.Error("header metadata wrong")
	}
}

func TestGenerateJSNoTemplatePlaceholders(t *testing.T) {
	js := genDefault()
	for _, bad := range []string{"%s", "%d", "%g", "%q", "%!", "(MISSING)"} {
		if strings.Contains(js, bad) {
			t.Errorf("unexpanded placeholder %q in output", bad)
		}
	}
}

func BenchmarkGenerateJS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		GenerateJS(Config{}, "https://m.example/v1/events", geom.Size{W: 300, H: 250})
	}
}

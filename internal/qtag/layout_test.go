package qtag

import (
	"math"
	"testing"

	"qtag/internal/geom"
)

var ad300x250 = geom.Size{W: 300, H: 250}

func TestPointsCount(t *testing.T) {
	for _, l := range Layouts() {
		for _, n := range []int{5, 9, 13, 21, 25, 40, 60} {
			pts := Points(l, n, ad300x250)
			if len(pts) != n {
				t.Errorf("%v layout with n=%d produced %d points", l, n, len(pts))
			}
			for i, p := range pts {
				if p.X < 0 || p.X > ad300x250.W || p.Y < 0 || p.Y > ad300x250.H {
					t.Errorf("%v n=%d point %d out of bounds: %v", l, n, i, p)
				}
			}
		}
	}
}

func TestPointsPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Points(LayoutX, 4, ad300x250) },
		func() { Points(LayoutX, 25, geom.Size{W: 0, H: 250}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// TestCanonicalXLayout verifies the paper's exact 25-pixel arrangement:
// center, four side midpoints, ten pixels per diagonal excluding the
// center (§3 / Figure 2.A).
func TestCanonicalXLayout(t *testing.T) {
	pts := Points(LayoutX, 25, ad300x250)
	if len(pts) != 25 {
		t.Fatalf("got %d points", len(pts))
	}
	has := func(x, y float64) bool {
		for _, p := range pts {
			if math.Abs(p.X-x) < 1e-9 && math.Abs(p.Y-y) < 1e-9 {
				return true
			}
		}
		return false
	}
	if !has(150, 125) {
		t.Error("missing center pixel")
	}
	for _, m := range [][2]float64{{150, 0}, {150, 250}, {0, 125}, {300, 125}} {
		if !has(m[0], m[1]) {
			t.Errorf("missing side midpoint (%v,%v)", m[0], m[1])
		}
	}
	// Count pixels on each diagonal (excluding center and midpoints).
	onMain, onAnti := 0, 0
	for _, p := range pts {
		if math.Abs(p.X-150) < 1e-9 && math.Abs(p.Y-125) < 1e-9 {
			continue // center
		}
		if math.Abs(p.X/300-p.Y/250) < 1e-9 {
			onMain++
		}
		if math.Abs(p.X/300-(1-p.Y/250)) < 1e-9 {
			onAnti++
		}
	}
	if onMain != 10 || onAnti != 10 {
		t.Errorf("diagonal pixel counts = %d/%d, want 10/10", onMain, onAnti)
	}
}

func TestPlusLayoutOnCenterLines(t *testing.T) {
	pts := Points(LayoutPlus, 25, ad300x250)
	for _, p := range pts {
		onV := math.Abs(p.X-150) < 1e-9
		onH := math.Abs(p.Y-125) < 1e-9
		if !onV && !onH {
			t.Errorf("plus-layout pixel off the center lines: %v", p)
		}
	}
}

func TestDiceLayoutClusters(t *testing.T) {
	pts := Points(LayoutDice, 25, ad300x250)
	anchors := []geom.Point{{X: 75, Y: 62.5}, {X: 225, Y: 62.5}, {X: 150, Y: 125}, {X: 75, Y: 187.5}, {X: 225, Y: 187.5}}
	for i, p := range pts {
		near := false
		for _, a := range anchors {
			if math.Hypot(p.X-a.X, p.Y-a.Y) < 15 {
				near = true
				break
			}
		}
		if !near {
			t.Errorf("dice pixel %d = %v not near any anchor", i, p)
		}
	}
}

func TestNoDuplicatePoints(t *testing.T) {
	for _, l := range Layouts() {
		for _, n := range []int{9, 25, 41} {
			pts := Points(l, n, ad300x250)
			seen := map[[2]float64]bool{}
			for _, p := range pts {
				k := [2]float64{math.Round(p.X * 1e6), math.Round(p.Y * 1e6)}
				if seen[k] {
					t.Errorf("%v n=%d duplicate point %v", l, n, p)
				}
				seen[k] = true
			}
		}
	}
}

func TestLayoutString(t *testing.T) {
	if LayoutX.String() != "X" || LayoutDice.String() != "dice" || LayoutPlus.String() != "+" {
		t.Error("layout names wrong")
	}
	if Layout(42).String() != "Layout(42)" {
		t.Error("unknown layout name wrong")
	}
}

func TestEstimatorFullVisibilityAllMethods(t *testing.T) {
	full := geom.Rect{X: -1, Y: -1, W: 302, H: 252}
	for _, method := range []Method{MethodRectInference, MethodVoronoi, MethodUniform} {
		for _, l := range Layouts() {
			est := NewAreaEstimator(Points(l, 25, ad300x250), ad300x250, method)
			if est.NumPixels() != 25 {
				t.Fatalf("NumPixels = %d", est.NumPixels())
			}
			if got := est.EstimateClip(full); math.Abs(got-1) > 1e-9 {
				t.Errorf("%v/%v full-visibility estimate = %v, want 1", l, method, got)
			}
			if got := est.EstimateClip(geom.Rect{}); got != 0 {
				t.Errorf("%v/%v empty estimate = %v, want 0", l, method, got)
			}
		}
	}
}

func TestEstimatorFullAndEmpty(t *testing.T) {
	est := NewAreaEstimator(Points(LayoutX, 25, ad300x250), ad300x250, MethodRectInference)
	full := geom.Rect{X: -1, Y: -1, W: 302, H: 252}
	if got := est.EstimateClip(full); math.Abs(got-1) > 1e-9 {
		t.Errorf("full visibility estimate = %v", got)
	}
	if got := est.EstimateClip(geom.Rect{}); got != 0 {
		t.Errorf("empty estimate = %v", got)
	}
}

func TestEstimatorHalfVertical(t *testing.T) {
	for _, l := range []Layout{LayoutX, LayoutPlus} {
		est := NewAreaEstimator(Points(l, 25, ad300x250), ad300x250, MethodRectInference)
		// Top 52% strip visible: past the center-line pixels, so the
		// estimate must be near but not wildly off 0.52.
		clip := geom.Rect{X: -1, Y: -1, W: 302, H: 1 + 0.52*250}
		got := est.EstimateClip(clip)
		if math.Abs(got-0.52) > 0.10 {
			t.Errorf("%v half-vertical estimate = %v, want ~0.52", l, got)
		}
	}
}

func TestEstimateMismatchedBitsPanics(t *testing.T) {
	est := NewAreaEstimator(Points(LayoutX, 25, ad300x250), ad300x250, MethodRectInference)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	est.Estimate(make([]bool, 5))
}

func TestEstimatorEmptyPointsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewAreaEstimator(nil, ad300x250, MethodRectInference)
}

func TestMethodString(t *testing.T) {
	if MethodRectInference.String() != "rect-inference" ||
		MethodVoronoi.String() != "voronoi" || MethodUniform.String() != "uniform" {
		t.Error("method names wrong")
	}
}

// TestRectInferenceBeatsAblations confirms the design choice (DESIGN.md
// A3): rectangle inference dominates both ablation estimators for the X
// layout averaged over the three sliding scenarios.
func TestRectInferenceBeatsAblations(t *testing.T) {
	avgFor := func(m Method) float64 {
		var sum float64
		for _, dir := range []string{"vertical", "horizontal", "diagonal"} {
			est := NewAreaEstimator(Points(LayoutX, 25, ad300x250), ad300x250, m)
			const steps = 100
			for i := 0; i <= steps; i++ {
				f := float64(i) / steps
				var clip geom.Rect
				var truth float64
				switch dir {
				case "vertical":
					clip = geom.Rect{X: -1, Y: -1, W: 302, H: 1 + f*250}
					truth = f
				case "horizontal":
					clip = geom.Rect{X: -1, Y: -1, W: 1 + f*300, H: 252}
					truth = f
				default:
					clip = geom.Rect{X: -1, Y: -1, W: 1 + f*300, H: 1 + f*250}
					truth = f * f
				}
				sum += math.Abs(est.EstimateClip(clip) - truth)
			}
		}
		return sum / (3 * 101)
	}
	rect := avgFor(MethodRectInference)
	voronoi := avgFor(MethodVoronoi)
	uniform := avgFor(MethodUniform)
	if rect >= voronoi || rect >= uniform {
		t.Errorf("rect-inference (%.4f) should beat voronoi (%.4f) and uniform (%.4f)", rect, voronoi, uniform)
	}
}

// meanSlideError computes the mean absolute error of the layout's area
// estimate across a sliding sweep; dir selects the Figure 2 scenario.
func meanSlideError(l Layout, n int, dir string) float64 {
	est := NewAreaEstimator(Points(l, n, ad300x250), ad300x250, MethodRectInference)
	const steps = 200
	var sum float64
	for i := 0; i <= steps; i++ {
		f := float64(i) / steps
		var clip geom.Rect
		var truth float64
		switch dir {
		case "vertical": // ad enters from the top: top f of the ad visible
			clip = geom.Rect{X: -1, Y: -1, W: 302, H: 1 + f*250}
			truth = f
		case "horizontal":
			clip = geom.Rect{X: -1, Y: -1, W: 1 + f*300, H: 252}
			truth = f
		default: // diagonal: corner rectangle
			clip = geom.Rect{X: -1, Y: -1, W: 1 + f*300, H: 1 + f*250}
			truth = f * f
		}
		sum += math.Abs(est.EstimateClip(clip) - truth)
	}
	return sum / (steps + 1)
}

// TestFigure2LayoutOrdering checks the paper's §4.1 findings: the dice
// layout is worst, X and + are comparable on axis-aligned sliding, and X
// beats + on diagonal sliding.
func TestFigure2LayoutOrdering(t *testing.T) {
	const n = 25
	for _, dir := range []string{"vertical", "horizontal"} {
		x := meanSlideError(LayoutX, n, dir)
		plus := meanSlideError(LayoutPlus, n, dir)
		dice := meanSlideError(LayoutDice, n, dir)
		if dice <= x || dice <= plus {
			t.Errorf("%s: dice (%.4f) should be worse than X (%.4f) and + (%.4f)", dir, dice, x, plus)
		}
		if math.Abs(x-plus) > 0.035 {
			t.Errorf("%s: X (%.4f) and + (%.4f) should be comparable", dir, x, plus)
		}
	}
	xd := meanSlideError(LayoutX, n, "diagonal")
	plusd := meanSlideError(LayoutPlus, n, "diagonal")
	diced := meanSlideError(LayoutDice, n, "diagonal")
	if xd >= plusd {
		t.Errorf("diagonal: X (%.4f) should beat + (%.4f)", xd, plusd)
	}
	if diced <= xd {
		t.Errorf("diagonal: dice (%.4f) should be worse than X (%.4f)", diced, xd)
	}
}

// TestFigure2ErrorDecreasesWithPixels checks the error-vs-pixel-count
// trend: error at 21+ pixels is clearly below error at 9, and the curve
// flattens (going 25→60 buys much less than 9→25).
func TestFigure2ErrorDecreasesWithPixels(t *testing.T) {
	avg := func(n int) float64 {
		return (meanSlideError(LayoutX, n, "vertical") +
			meanSlideError(LayoutX, n, "horizontal") +
			meanSlideError(LayoutX, n, "diagonal")) / 3
	}
	e9, e21, e25, e60 := avg(9), avg(21), avg(25), avg(60)
	if e21 >= e9 {
		t.Errorf("error should drop 9→21 pixels: %.4f vs %.4f", e9, e21)
	}
	if e60 >= e25 {
		t.Errorf("error should not rise 25→60 pixels: %.4f vs %.4f", e25, e60)
	}
	drop1 := e9 - e25
	drop2 := e25 - e60
	if drop2 > drop1 {
		t.Errorf("curve should flatten: 9→25 drop %.4f, 25→60 drop %.4f", drop1, drop2)
	}
}

func TestWideBannerLayout(t *testing.T) {
	// 320×50 banners must still produce sane estimates.
	size := geom.Size{W: 320, H: 50}
	est := NewAreaEstimator(Points(LayoutX, 25, size), size, MethodRectInference)
	got := est.EstimateClip(geom.Rect{X: -1, Y: -1, W: 162, H: 52}) // left half
	if math.Abs(got-0.5) > 0.1 {
		t.Errorf("wide banner half estimate = %v", got)
	}
}

func BenchmarkVoronoiPrecompute(b *testing.B) {
	pts := Points(LayoutX, 25, ad300x250)
	for i := 0; i < b.N; i++ {
		NewAreaEstimator(pts, ad300x250, MethodVoronoi)
	}
}

func BenchmarkEstimate(b *testing.B) {
	est := NewAreaEstimator(Points(LayoutX, 25, ad300x250), ad300x250, MethodRectInference)
	bits := make([]bool, 25)
	for i := range bits {
		bits[i] = i%2 == 0
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est.Estimate(bits)
	}
}

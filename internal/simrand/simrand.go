// Package simrand provides the deterministic random-number machinery the
// Q-Tag simulator is built on.
//
// Every stochastic component in the repository (campaign traffic, user
// behaviour, automation flakiness, device mixes) draws from a *RNG seeded
// explicitly by the caller, so any experiment — including the full
// paper-reproduction benchmarks — replays bit-identically from its seed.
//
// The generator is splitmix64: tiny state, excellent statistical quality for
// simulation purposes, and trivially forkable, which lets independent
// subsystems derive private streams from one experiment seed without
// correlating their draws.
package simrand

import "math"

// RNG is a deterministic pseudo-random number generator (splitmix64).
// It is not safe for concurrent use; fork per-goroutine streams with Fork.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed. Distinct seeds yield
// independent-looking streams; the zero seed is valid.
func New(seed uint64) *RNG { return &RNG{state: seed} }

// Fork derives a new generator whose stream is independent of the parent's
// subsequent draws. The label decorrelates sibling forks made at the same
// parent state.
func (r *RNG) Fork(label string) *RNG {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return New(r.Uint64() ^ h)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("simrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Normal returns a draw from the normal distribution with the given mean
// and standard deviation, using the Marsaglia polar method.
func (r *RNG) Normal(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// LogNormal returns exp(Normal(mu, sigma)); mu and sigma parameterise the
// underlying normal, not the resulting distribution's mean.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Exponential returns a draw from the exponential distribution with the
// given mean (i.e. rate 1/mean).
func (r *RNG) Exponential(mean float64) float64 {
	return -mean * math.Log(1-r.Float64())
}

// Beta returns a draw from the Beta(alpha, beta) distribution via Jöhnk's
// gamma-ratio construction. Both parameters must be positive.
func (r *RNG) Beta(alpha, beta float64) float64 {
	x := r.gamma(alpha)
	y := r.gamma(beta)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}

// gamma samples Gamma(shape, 1) using Marsaglia & Tsang's method, with the
// standard boost for shape < 1.
func (r *RNG) gamma(shape float64) float64 {
	if shape < 1 {
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Normal(0, 1)
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// BetaMeanConc returns a Beta draw parameterised by its mean in (0,1) and a
// concentration k > 0 (alpha+beta); larger k concentrates mass around the
// mean. This is the natural parameterisation for per-campaign rate spread.
func (r *RNG) BetaMeanConc(mean, k float64) float64 {
	mean = clamp(mean, 1e-6, 1-1e-6)
	return r.Beta(mean*k, (1-mean)*k)
}

// Weighted draws an index in [0, len(weights)) with probability
// proportional to weights[i]. Non-positive weights are treated as zero. It
// panics if all weights are zero or the slice is empty.
func (r *RNG) Weighted(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("simrand: Weighted with no positive weight")
	}
	target := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		target -= w
		if target < 0 {
			return i
		}
	}
	// Floating-point slack: fall back to the last positive weight.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	panic("unreachable")
}

// Shuffle permutes the n elements addressed by swap uniformly at random
// (Fisher–Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

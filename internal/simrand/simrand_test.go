package simrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d identical draws from distinct seeds", same)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(7)
	f1 := parent.Fork("alpha")
	f2 := parent.Fork("beta")
	if f1.Uint64() == f2.Uint64() {
		t.Error("sibling forks produced identical first draw")
	}
	// Forks with the same label at the same parent state must differ because
	// the parent stream advances.
	p := New(7)
	g1 := p.Fork("x")
	g2 := p.Fork("x")
	if g1.Uint64() == g2.Uint64() {
		t.Error("sequential same-label forks should not collide")
	}
}

func TestFloat64Bounds(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntn(t *testing.T) {
	r := New(9)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[r.Intn(10)]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Errorf("bucket %d count %d far from uniform", i, c)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestRange(t *testing.T) {
	r := New(11)
	for i := 0; i < 1000; i++ {
		v := r.Range(5, 10)
		if v < 5 || v >= 10 {
			t.Fatalf("Range out of bounds: %v", v)
		}
	}
}

func TestBool(t *testing.T) {
	r := New(13)
	if r.Bool(0) {
		t.Error("Bool(0) must be false")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) must be true")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bool(0.3) empirical p = %v", p)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(17)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.Normal(10, 3)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("normal mean = %v", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.05 {
		t.Errorf("normal stddev = %v", math.Sqrt(variance))
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(19)
	for i := 0; i < 10000; i++ {
		if r.LogNormal(0, 1) <= 0 {
			t.Fatal("LogNormal must be positive")
		}
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(23)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exponential(4)
		if v < 0 {
			t.Fatal("exponential draw negative")
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-4) > 0.1 {
		t.Errorf("exponential mean = %v, want ~4", mean)
	}
}

func TestBetaBoundsAndMean(t *testing.T) {
	r := New(29)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Beta(2, 6)
		if v < 0 || v > 1 {
			t.Fatalf("beta out of bounds: %v", v)
		}
		sum += v
	}
	// Mean of Beta(2,6) is 0.25.
	if mean := sum / n; math.Abs(mean-0.25) > 0.01 {
		t.Errorf("Beta(2,6) mean = %v, want ~0.25", mean)
	}
}

func TestBetaMeanConc(t *testing.T) {
	r := New(31)
	const n = 50000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.BetaMeanConc(0.93, 200)
	}
	if mean := sum / n; math.Abs(mean-0.93) > 0.01 {
		t.Errorf("BetaMeanConc mean = %v, want ~0.93", mean)
	}
	// Degenerate means are clamped rather than panicking.
	if v := r.BetaMeanConc(0, 10); v < 0 || v > 1 {
		t.Errorf("clamped beta out of bounds: %v", v)
	}
	if v := r.BetaMeanConc(1, 10); v < 0 || v > 1 {
		t.Errorf("clamped beta out of bounds: %v", v)
	}
}

func TestWeighted(t *testing.T) {
	r := New(37)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Weighted(weights)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight bucket drawn %d times", counts[1])
	}
	p0 := float64(counts[0]) / n
	if math.Abs(p0-0.25) > 0.01 {
		t.Errorf("bucket 0 p = %v, want ~0.25", p0)
	}
	defer func() {
		if recover() == nil {
			t.Error("Weighted with all-zero weights should panic")
		}
	}()
	r.Weighted([]float64{0, 0})
}

func TestWeightedNegativeTreatedAsZero(t *testing.T) {
	r := New(41)
	for i := 0; i < 1000; i++ {
		if got := r.Weighted([]float64{-5, 2}); got != 1 {
			t.Fatalf("negative weight bucket drawn (got %d)", got)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(43)
	p := r.Perm(50)
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestShuffleUniformish(t *testing.T) {
	r := New(47)
	// Position of element 0 after shuffling [0,1,2] should be ~uniform.
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		s := []int{0, 1, 2}
		r.Shuffle(3, func(a, b int) { s[a], s[b] = s[b], s[a] })
		for pos, v := range s {
			if v == 0 {
				counts[pos]++
			}
		}
	}
	for pos, c := range counts {
		if c < 8500 || c > 11500 {
			t.Errorf("element 0 at position %d count %d, want ~10000", pos, c)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormal(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Normal(0, 1)
	}
}
